// Command cachesim is a Dinero-style trace-driven cache simulator. It
// reads a din-format trace from a file (or stdin), or generates the trace
// of a named benchmark kernel, and reports hit/miss statistics with 3C
// miss classification.
//
// Usage:
//
//	cachesim -size 64 -line 8 -assoc 2 -trace refs.din
//	cachesim -size 64 -line 8 -kernel compress -optimized
//	cachesim -kernel sor -tiling 4 -dump-trace sor.din
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"memexplore"
	"memexplore/internal/cachesim"
	"memexplore/internal/trace"
)

func main() {
	var (
		size      = flag.Int("size", 64, "cache size in bytes (power of two)")
		line      = flag.Int("line", 8, "line size in bytes (power of two)")
		assoc     = flag.Int("assoc", 1, "set associativity (power of two)")
		repl      = flag.String("repl", "lru", "replacement policy: lru, fifo, random")
		wthrough  = flag.Bool("write-through", false, "write-through instead of write-back")
		noalloc   = flag.Bool("no-write-allocate", false, "do not allocate on write misses")
		traceFile = flag.String("trace", "", "din-format trace file ('-' for stdin)")
		kernel    = flag.String("kernel", "", "generate the trace of this benchmark kernel instead")
		nestFile  = flag.String("file", "", "generate the trace of a kernel parsed from this nest file")
		tiling    = flag.Int("tiling", 1, "tile the kernel's loops with this size")
		optimized = flag.Bool("optimized", false, "apply the §4.1 off-chip assignment to the kernel")
		dump      = flag.String("dump-trace", "", "write the generated trace to this din file and exit")
		sweep     = flag.String("sweep-sizes", "", "simulate several cache sizes in one pass (comma-separated bytes) and print a table")
	)
	flag.Parse()

	tr, err := loadTrace(*traceFile, *kernel, *nestFile, *tiling, *optimized, *line, *size)
	if err != nil {
		fatal(err)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		writeFn := tr.WriteDin
		if strings.HasSuffix(*dump, ".gz") {
			writeFn = tr.WriteDinGz
		}
		if err := writeFn(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d references to %s\n", tr.Len(), *dump)
		return
	}

	cfg := cachesim.DefaultConfig(*size, *line, *assoc)
	switch *repl {
	case "lru":
		cfg.Replacement = cachesim.LRU
	case "fifo":
		cfg.Replacement = cachesim.FIFO
	case "random":
		cfg.Replacement = cachesim.Random
	default:
		fatal(fmt.Errorf("unknown replacement policy %q", *repl))
	}
	cfg.WriteBack = !*wthrough
	cfg.WriteAllocate = !*noalloc

	if *sweep != "" {
		if err := runSweep(cfg, tr, *sweep); err != nil {
			fatal(err)
		}
		return
	}

	st, err := cachesim.RunTrace(cfg, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("configuration   %s\n", cfg)
	fmt.Printf("references      %d (reads %d, writes %d, fetches %d)\n", st.Accesses, st.Reads, st.Writes, st.Fetches)
	fmt.Printf("hits            %d (%.4f)\n", st.Hits, st.HitRate())
	fmt.Printf("misses          %d (%.4f)\n", st.Misses, st.MissRate())
	fmt.Printf("  compulsory    %d\n", st.CompulsoryMisses)
	fmt.Printf("  capacity      %d\n", st.CapacityMisses)
	fmt.Printf("  conflict      %d\n", st.ConflictMisses)
	fmt.Printf("lines fetched   %d\n", st.LinesFetched)
	fmt.Printf("write-backs     %d\n", st.WriteBacks)
	fmt.Printf("write-throughs  %d\n", st.WriteThroughs)
}

func loadTrace(traceFile, kernel, nestFile string, tiling int, optimized bool, lineBytes, sizeBytes int) (*trace.Trace, error) {
	given := 0
	for _, s := range []string{traceFile, kernel, nestFile} {
		if s != "" {
			given++
		}
	}
	if given > 1 {
		return nil, fmt.Errorf("give only one of -trace, -kernel, -file")
	}
	var n *memexplore.Nest
	switch {
	case traceFile != "":
		var f *os.File
		if traceFile == "-" {
			f = os.Stdin
		} else {
			var err error
			f, err = os.Open(traceFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()
		}
		return trace.ReadDinAuto(f)
	case kernel != "":
		var err error
		n, err = memexplore.Kernel(kernel)
		if err != nil {
			return nil, err
		}
	case nestFile != "":
		f, err := os.Open(nestFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		n, err = memexplore.ParseKernelReader(f)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("give -trace <file>, -kernel <name> (see 'memexplore -list'), or -file <nest>")
	}
	if tiling > 1 {
		var err error
		n, err = memexplore.Tile(n, tiling)
		if err != nil {
			return nil, err
		}
	}
	lay := memexplore.SequentialLayout(n, 0)
	if optimized {
		plan, err := memexplore.OptimizeLayout(n, lineBytes, sizeBytes/lineBytes)
		if err != nil {
			return nil, err
		}
		lay = plan.Layout
	}
	return n.Generate(lay)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachesim:", err)
	os.Exit(1)
}

// runSweep simulates all requested sizes in one pass over the trace
// (cachesim.Batch) and prints a table.
func runSweep(base cachesim.Config, tr *trace.Trace, sizesCSV string) error {
	var cfgs []cachesim.Config
	for _, f := range strings.Split(sizesCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		size, err := strconv.Atoi(f)
		if err != nil {
			return fmt.Errorf("bad size %q: %w", f, err)
		}
		cfg := base
		cfg.SizeBytes = size
		if cfg.Assoc > cfg.NumLines() {
			cfg.Assoc = cfg.NumLines()
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		cfgs = append(cfgs, cfg)
	}
	if len(cfgs) == 0 {
		return fmt.Errorf("empty size list %q", sizesCSV)
	}
	stats, err := cachesim.RunBatch(cfgs, tr)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %10s %10s %10s\n", "configuration", "hits", "misses", "missrate")
	for i, cfg := range cfgs {
		fmt.Printf("%-18s %10d %10d %10.4f\n", cfg.String(), stats[i].Hits, stats[i].Misses, stats[i].MissRate())
	}
	return nil
}
