package main

import (
	"os"
	"testing"

	"memexplore/internal/cachesim"
)

func TestLoadTraceKernel(t *testing.T) {
	tr, err := loadTrace("", "matadd", "", 1, false, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 108 {
		t.Errorf("matadd trace = %d refs, want 108", tr.Len())
	}
	// Tiled variant still generates.
	tiled, err := loadTrace("", "matadd", "", 2, false, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Len() != tr.Len() {
		t.Errorf("tiling changed the reference count: %d vs %d", tiled.Len(), tr.Len())
	}
	// Optimized layout path.
	if _, err := loadTrace("", "compress", "", 1, true, 8, 64); err != nil {
		t.Errorf("optimized load: %v", err)
	}
}

func TestLoadTraceDin(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.din"
	if err := os.WriteFile(path, []byte("0 10\n1 20\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := loadTrace(path, "", "", 1, false, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.At(0).Addr != 0x10 {
		t.Errorf("din trace = %+v", tr.Refs())
	}
}

func TestLoadTraceNestFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/k.nest"
	src := "// tiny\nint8 a[8]\nfor i = 0, 7\na[i]\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := loadTrace("", "", path, 1, false, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 8 {
		t.Errorf("nest trace = %d refs", tr.Len())
	}
}

func TestLoadTraceErrors(t *testing.T) {
	if _, err := loadTrace("", "", "", 1, false, 8, 64); err == nil {
		t.Error("no source should fail")
	}
	if _, err := loadTrace("x.din", "compress", "", 1, false, 8, 64); err == nil {
		t.Error("two sources should fail")
	}
	if _, err := loadTrace("", "nope", "", 1, false, 8, 64); err == nil {
		t.Error("unknown kernel should fail")
	}
	if _, err := loadTrace("/nonexistent.din", "", "", 1, false, 8, 64); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunSweepValidation(t *testing.T) {
	tr, err := loadTrace("", "matadd", "", 1, false, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	base := cachesim.DefaultConfig(64, 8, 1)
	if err := runSweep(base, tr, "16,32,64"); err != nil {
		t.Errorf("sweep failed: %v", err)
	}
	if err := runSweep(base, tr, "x"); err == nil {
		t.Error("bad size should fail")
	}
	if err := runSweep(base, tr, " , "); err == nil {
		t.Error("empty list should fail")
	}
	if err := runSweep(base, tr, "48"); err == nil {
		t.Error("non-power-of-two size should fail")
	}
}
