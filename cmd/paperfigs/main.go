// Command paperfigs regenerates every table and figure of the paper's
// evaluation section and prints them with REPRODUCED/DIVERGED findings.
//
// Usage:
//
//	paperfigs            # all exhibits, paper order
//	paperfigs -only fig05
//	paperfigs -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memexplore/internal/figures"
)

func main() {
	only := flag.String("only", "", "run a single exhibit by id (e.g. fig05, sec5)")
	list := flag.Bool("list", false, "list exhibit ids and exit")
	outDir := flag.String("out", "", "also write each exhibit to <dir>/<id>.txt")
	flag.Parse()

	entries := figures.All()
	if *list {
		for _, e := range entries {
			fmt.Printf("%-9s %s\n", e.ID, e.Desc)
		}
		return
	}
	if *only != "" {
		e, err := figures.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		entries = []figures.Entry{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	diverged := 0
	for _, e := range entries {
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "==== %s ====\n%s\n\n", res.ID, res.Title)
		for _, tbl := range res.Tables {
			if err := tbl.Render(&sb); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sb.WriteByte('\n')
		}
		for _, f := range res.Findings {
			fmt.Fprintln(&sb, "  *", f)
			if strings.HasPrefix(f, "[DIVERGED] ") {
				diverged++
			}
		}
		fmt.Println(sb.String())
		if *outDir != "" {
			path := filepath.Join(*outDir, res.ID+".txt")
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if diverged > 0 {
		fmt.Fprintf(os.Stderr, "%d finding(s) diverged from the paper\n", diverged)
		os.Exit(1)
	}
}
