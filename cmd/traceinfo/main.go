// Command traceinfo profiles a memory-reference trace: access mix,
// footprint, stride histogram, and the reuse-distance curve that predicts
// fully associative miss rates at every capacity.
//
// Usage:
//
//	traceinfo -kernel compress
//	traceinfo -trace refs.din -line 8
//	cachesim -kernel sor -dump-trace - | traceinfo -trace -
package main

import (
	"flag"
	"fmt"
	"os"

	"memexplore"
	"memexplore/internal/trace"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "din-format trace file ('-' for stdin)")
		kernel    = flag.String("kernel", "", "profile this benchmark kernel's trace instead")
		tiling    = flag.Int("tiling", 1, "tile the kernel's loops with this size")
		line      = flag.Int("line", 8, "line size for the reuse-distance analysis")
	)
	flag.Parse()

	tr, err := load(*traceFile, *kernel, *tiling)
	if err != nil {
		fatal(err)
	}

	fmt.Print(trace.Analyze(tr))

	h, err := memexplore.ComputeReuse(tr, *line)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nreuse-distance analysis (line %d bytes):\n", *line)
	fmt.Printf("working set     %d lines (%d bytes)\n", h.WorkingSet(), h.WorkingSet()*uint64(*line))
	fmt.Printf("max distance    %d\n", h.MaxDistance())
	fmt.Println("fully associative LRU miss rate by capacity:")
	for _, capLines := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		fmt.Printf("  %4d lines (%6d B): %.4f\n", capLines, capLines**line, h.MissRate(capLines))
	}
	if knees := h.Knees(0.01); len(knees) > 0 {
		fmt.Printf("working-set knees (≥1%% drop): %v lines\n", knees)
	}
}

func load(traceFile, kernel string, tiling int) (*trace.Trace, error) {
	switch {
	case traceFile != "" && kernel != "":
		return nil, fmt.Errorf("give either -trace or -kernel, not both")
	case traceFile != "":
		f := os.Stdin
		if traceFile != "-" {
			var err error
			f, err = os.Open(traceFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()
		}
		return trace.ReadDinAuto(f)
	case kernel != "":
		n, err := memexplore.Kernel(kernel)
		if err != nil {
			return nil, err
		}
		if tiling > 1 {
			n, err = memexplore.Tile(n, tiling)
			if err != nil {
				return nil, err
			}
		}
		return n.Generate(memexplore.SequentialLayout(n, 0))
	default:
		return nil, fmt.Errorf("give -trace <file> or -kernel <name>")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
