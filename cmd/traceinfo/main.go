// Command traceinfo profiles a memory-reference trace: access mix,
// footprint, stride histogram, and the reuse-distance curve that predicts
// fully associative miss rates at every capacity. For columnar mxt v2
// artifacts it also reports the MXTI01 index footer — per-chunk frames
// and granule summaries, the encode-time profile, and any transcode-time
// sampling baked into the artifact.
//
// Usage:
//
//	traceinfo -kernel compress
//	traceinfo -trace refs.din -line 8
//	traceinfo -trace app.mxt
//	cachesim -kernel sor -dump-trace - | traceinfo -trace -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memexplore"
	"memexplore/internal/trace"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "trace file: din or mxt binary, gzip ok ('-' for stdin)")
		kernel    = flag.String("kernel", "", "profile this benchmark kernel's trace instead")
		tiling    = flag.Int("tiling", 1, "tile the kernel's loops with this size")
		line      = flag.Int("line", 8, "line size for the reuse-distance analysis")
	)
	flag.Parse()

	tr, ix, err := load(*traceFile, *kernel, *tiling)
	if err != nil {
		fatal(err)
	}

	fmt.Print(trace.Analyze(tr))
	if ix != nil {
		fmt.Println()
		printIndex(os.Stdout, ix)
	}

	h, err := memexplore.ComputeReuse(tr, *line)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nreuse-distance analysis (line %d bytes):\n", *line)
	fmt.Printf("working set     %d lines (%d bytes)\n", h.WorkingSet(), h.WorkingSet()*uint64(*line))
	fmt.Printf("max distance    %d\n", h.MaxDistance())
	fmt.Println("fully associative LRU miss rate by capacity:")
	for _, capLines := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		fmt.Printf("  %4d lines (%6d B): %.4f\n", capLines, capLines**line, h.MissRate(capLines))
	}
	if knees := h.Knees(0.01); len(knees) > 0 {
		fmt.Printf("working-set knees (≥1%% drop): %v lines\n", knees)
	}
}

// load reads the trace into memory. For file input it streams through the
// format-autodetecting extrace reader (din, mxt, mxt v2, gzip) and also
// probes for an mxt v2 MXTI01 index footer when the source is seekable;
// ix is nil when there is none.
func load(traceFile, kernel string, tiling int) (*trace.Trace, *memexplore.TraceIndex, error) {
	switch {
	case traceFile != "" && kernel != "":
		return nil, nil, fmt.Errorf("give either -trace or -kernel, not both")
	case traceFile != "":
		f := os.Stdin
		if traceFile != "-" {
			var err error
			f, err = os.Open(traceFile)
			if err != nil {
				return nil, nil, err
			}
			defer f.Close()
		}
		ix := memexplore.ProbeTraceIndex(f)
		tr, err := readAll(f)
		if err != nil {
			return nil, nil, err
		}
		return tr, ix, nil
	case kernel != "":
		n, err := memexplore.Kernel(kernel)
		if err != nil {
			return nil, nil, err
		}
		if tiling > 1 {
			n, err = memexplore.Tile(n, tiling)
			if err != nil {
				return nil, nil, err
			}
		}
		tr, err := n.Generate(memexplore.SequentialLayout(n, 0))
		return tr, nil, err
	default:
		return nil, nil, fmt.Errorf("give -trace <file> or -kernel <name>")
	}
}

// readAll drains a trace stream into memory via the streaming reader.
func readAll(r io.Reader) (*trace.Trace, error) {
	rd := memexplore.NewTraceReader(r, memexplore.TraceIngestOptions{})
	defer rd.Close()
	tr := trace.New(0)
	buf := make([]memexplore.TraceRef, 4096)
	for {
		n, err := rd.Read(buf)
		for _, ref := range buf[:n] {
			tr.Append(ref)
		}
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// indexChunkLines bounds the per-chunk listing; larger indexes are
// summarized with a trailing count.
const indexChunkLines = 8

// printIndex renders the MXTI01 index footer report.
func printIndex(w io.Writer, ix *memexplore.TraceIndex) {
	fmt.Fprintln(w, "mxt v2 index (MXTI01):")
	var bytes int64
	for i := range ix.Chunks {
		bytes += ix.Chunks[i].Bytes
	}
	fmt.Fprintf(w, "chunks          %d (%d records, %d payload bytes)\n", len(ix.Chunks), ix.Records, bytes)
	if ix.Sampled {
		fmt.Fprintf(w, "stored sample   rate %g, seed %d, %d-byte granule (%d source records)\n",
			ix.SampleRate, ix.SampleSeed, ix.SampleGranule, ix.SourceRecords)
	}
	if ix.HasProfile {
		fmt.Fprintln(w, "profile         encode-time ingest profile present (skip-safe)")
	}
	for i := range ix.Chunks {
		if i == indexChunkLines {
			fmt.Fprintf(w, "  ... and %d more chunks\n", len(ix.Chunks)-indexChunkLines)
			break
		}
		e := &ix.Chunks[i]
		granules := "summary overflowed"
		if len(e.Granules) > 0 {
			granules = fmt.Sprintf("%d granules in [%#x, %#x]", len(e.Granules), e.MinGranule, e.MaxGranule)
		}
		fmt.Fprintf(w, "  chunk %3d: %6d bytes at %8d, %5d records (r %d / w %d / f %d), %s\n",
			i, e.Bytes, e.Offset, e.Records, e.Reads, e.Writes, e.Fetches(), granules)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
