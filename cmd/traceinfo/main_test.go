package main

import (
	"os"
	"testing"
)

func TestLoadKernel(t *testing.T) {
	tr, err := load("", "matadd", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 108 {
		t.Errorf("trace = %d refs", tr.Len())
	}
	tiled, err := load("", "matadd", 3)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Len() != tr.Len() {
		t.Errorf("tiling changed count: %d", tiled.Len())
	}
}

func TestLoadDin(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.din"
	if err := os.WriteFile(path, []byte("0 ff\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := load(path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.At(0).Addr != 0xff {
		t.Errorf("trace = %+v", tr.Refs())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := load("", "", 1); err == nil {
		t.Error("no source should fail")
	}
	if _, err := load("x", "y", 1); err == nil {
		t.Error("two sources should fail")
	}
	if _, err := load("", "nope", 1); err == nil {
		t.Error("unknown kernel should fail")
	}
}
