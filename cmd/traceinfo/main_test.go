package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"memexplore"
	"memexplore/internal/trace"
)

func TestLoadKernel(t *testing.T) {
	tr, _, err := load("", "matadd", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 108 {
		t.Errorf("trace = %d refs", tr.Len())
	}
	tiled, _, err := load("", "matadd", 3)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Len() != tr.Len() {
		t.Errorf("tiling changed count: %d", tiled.Len())
	}
}

func TestLoadDin(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.din"
	if err := os.WriteFile(path, []byte("0 ff\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, ix, err := load(path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.At(0).Addr != 0xff {
		t.Errorf("trace = %+v", tr.Refs())
	}
	if ix != nil {
		t.Errorf("din input reported an mxt index: %+v", ix)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := load("", "", 1); err == nil {
		t.Error("no source should fail")
	}
	if _, _, err := load("x", "y", 1); err == nil {
		t.Error("two sources should fail")
	}
	if _, _, err := load("", "nope", 1); err == nil {
		t.Error("unknown kernel should fail")
	}
}

// TestIndexReportGolden pins the MXTI01 report for a known artifact: a
// three-record v2 trace loads through the mxt path, surfaces its index,
// and renders exactly this text.
func TestIndexReportGolden(t *testing.T) {
	refs := []memexplore.TraceRef{
		{Addr: 0x1000, Kind: trace.Read},
		{Addr: 0x1040, Kind: trace.Write, Size: 4},
		{Addr: 0x2000, Kind: trace.Fetch},
	}
	var buf bytes.Buffer
	if _, err := memexplore.WriteBinaryV2Trace(&buf, trace.FromRefs(refs)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.mxt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	tr, ix, err := load(path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(refs) {
		t.Fatalf("loaded %d refs, want %d", tr.Len(), len(refs))
	}
	if ix == nil {
		t.Fatal("mxt v2 artifact has no index")
	}

	var out bytes.Buffer
	printIndex(&out, ix)
	want := "mxt v2 index (MXTI01):\n" +
		"chunks          1 (3 records, 26 payload bytes)\n" +
		"profile         encode-time ingest profile present (skip-safe)\n" +
		"  chunk   0:     26 bytes at        8,     3 records (r 1 / w 1 / f 1), 3 granules in [0x40, 0x80]\n"
	if got := out.String(); got != want {
		t.Errorf("index report:\n%s\nwant:\n%s", got, want)
	}
}
