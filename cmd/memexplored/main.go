// Command memexplored serves the MemExplore sweep as a long-running
// HTTP/JSON API: POST /v1/explore and /v1/aggregate run (or recall from
// the result cache) design-space sweeps, POST /v1/jobs runs them
// asynchronously with progress polling and SSE streaming under
// /v1/jobs/{id}, GET /v1/kernels lists the registry, /healthz and
// /debug/vars expose liveness and counters. See docs/SERVICE.md for the
// wire reference and curl examples.
//
// Usage:
//
//	memexplored [-addr :8080] [-sweeps 4] [-workers 0] [-cache 128] [-max-body 8388608]
//	            [-jobs 2] [-job-ttl 15m] [-job-cache 256] [-jobs-dir DIR]
//	            [-peers URL,URL] [-drain 30s] [-pprof]
//
// SIGINT/SIGTERM trigger a graceful shutdown: new sweeps and job
// submissions are rejected with 503 while in-flight work drains for up
// to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memexplore/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "memexplored:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until ctx is canceled. When ready is
// non-nil the bound listen address is sent on it once the listener is
// up — the smoke test uses this with -addr 127.0.0.1:0.
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("memexplored", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	sweeps := fs.Int("sweeps", 4, "max concurrent sweeps (worker pool size)")
	workers := fs.Int("workers", 0, "goroutines per sweep (0 = GOMAXPROCS)")
	cacheN := fs.Int("cache", 128, "result-cache capacity in entries (negative disables)")
	maxBody := fs.Int64("max-body", 0, "request-body size limit in bytes (0 = 8 MiB default)")
	jobSlots := fs.Int("jobs", 2, "max concurrently running async jobs")
	jobTTL := fs.Duration("job-ttl", 15*time.Minute, "how long finished job records stay readable (in-memory store)")
	jobCap := fs.Int("job-cache", 256, "in-memory job store capacity in records")
	jobsDir := fs.String("jobs-dir", "", "store job records as files under this directory (shared result tier; overrides -job-cache, -job-ttl becomes the cleanup TTL)")
	peers := fs.String("peers", "", "comma-separated base URLs of sibling replicas for distributed sweeps (e.g. http://host:8081,http://host:8082)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof profiling handlers under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := service.Config{
		MaxConcurrentSweeps: *sweeps,
		SweepWorkers:        *workers,
		CacheEntries:        *cacheN,
		MaxBodyBytes:        *maxBody,
		MaxConcurrentJobs:   *jobSlots,
		JobTTL:              *jobTTL,
		JobCapacity:         *jobCap,
		JobsDir:             *jobsDir,
		Peers:               splitPeers(*peers),
	}
	return serve(ctx, *addr, cfg, *drain, *pprofOn, logw, ready)
}

// splitPeers parses the -peers list, dropping empty entries and
// trailing slashes so "http://a:8081/," round-trips cleanly.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// debugMux wraps the service handler with the net/http/pprof endpoints
// mounted explicitly (the daemon never serves http.DefaultServeMux, so
// the profiling handlers exist only behind -pprof).
func debugMux(svc http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", svc)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the daemon until ctx is canceled, then drains gracefully.
func serve(ctx context.Context, addr string, cfg service.Config, drain time.Duration, pprofOn bool, logw io.Writer, ready chan<- string) error {
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger := log.New(logw, "memexplored ", log.LstdFlags)
	var handler http.Handler = svc
	if pprofOn {
		handler = debugMux(svc)
		logger.Printf("pprof enabled under /debug/pprof/")
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Printf("listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down: draining in-flight sweeps for up to %s", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	logger.Printf("bye")
	return nil
}
