package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeSmoke boots the daemon on an ephemeral port, runs the
// acceptance path — a compress sweep served end-to-end, then the same
// request answered from the result cache — and shuts down gracefully.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-sweeps", "2", "-drain", "5s"}, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := `{"kernel":"compress","options":{"cache_sizes":[32,64],"line_sizes":[4,8],"assocs":[1],"tilings":[1]}}`
	post := func() (cached bool, points int) {
		t.Helper()
		resp, err := http.Post(base+"/v1/explore", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("explore = %d: %s", resp.StatusCode, b)
		}
		var out struct {
			Cached bool `json:"cached"`
			Points int  `json:"points"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Cached, out.Points
	}
	if cached, points := post(); cached || points == 0 {
		t.Fatalf("first sweep: cached=%v points=%d", cached, points)
	}
	if cached, _ := post(); !cached {
		t.Error("repeated request not served from the cache")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never shut down")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, nil); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, io.Discard, nil); err == nil {
		t.Error("unlistenable address should fail")
	}
}

// TestPprofFlag pins the -pprof debug mux: profiling handlers exist only
// when the flag is set, and the service API keeps working behind them.
func TestPprofFlag(t *testing.T) {
	boot := func(t *testing.T, args ...string) (base string, shutdown func()) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(ctx, args, io.Discard, ready) }()
		select {
		case addr := <-ready:
			base = "http://" + addr
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		return base, func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("daemon never shut down")
			}
		}
	}
	get := func(t *testing.T, url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	base, shutdown := boot(t, "-addr", "127.0.0.1:0", "-drain", "5s", "-pprof")
	if code := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index = %d with -pprof, want 200", code)
	}
	if code := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline = %d with -pprof, want 200", code)
	}
	if code := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d behind the debug mux, want 200", code)
	}
	shutdown()

	base, shutdown = boot(t, "-addr", "127.0.0.1:0", "-drain", "5s")
	defer shutdown()
	if code := get(t, base+"/debug/pprof/"); code == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
}
