package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"memexplore"
	"memexplore/internal/core"
	"memexplore/internal/kernels"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("16, 32,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 32, 64}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("parseInts[%d] = %d, want %d", i, got[i], w)
		}
	}
	if _, err := parseInts("a,b"); err == nil {
		t.Error("bad integers should fail")
	}
	if _, err := parseInts(" ,, "); err == nil {
		t.Error("empty list should fail")
	}
}

func exploreSample(t *testing.T) []memexplore.Metrics {
	t.Helper()
	opts := core.DefaultOptions()
	opts.CacheSizes = []int{32, 64}
	opts.LineSizes = []int{4, 8}
	opts.Assocs = []int{1}
	opts.Tilings = []int{1}
	ms, err := core.Explore(kernels.MatAdd(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestWriteCSVShape(t *testing.T) {
	ms := exploreSample(t)
	var buf bytes.Buffer
	// openOut with "-" writes to stdout; exercise the encoder directly by
	// writing to a temp file instead.
	dir := t.TempDir()
	path := dir + "/out.csv"
	if err := writeCSV(path, ms); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) != len(ms)+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), len(ms)+1)
	}
	if !strings.HasPrefix(lines[0], "cache,line,assoc,tiling") {
		t.Errorf("header = %q", lines[0])
	}
	if cols := strings.Count(lines[1], ","); cols != strings.Count(lines[0], ",") {
		t.Errorf("row/header column mismatch: %d vs %d", cols, strings.Count(lines[0], ","))
	}
	_ = buf
}

func TestWriteJSONShape(t *testing.T) {
	ms := exploreSample(t)
	dir := t.TempDir()
	path := dir + "/out.json"
	if err := writeJSON(path, ms); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(data), "[") {
		t.Errorf("json should be an array: %q", data[:20])
	}
	if !strings.Contains(data, "\"cache_size\": 32") {
		t.Error("json missing cache_size field")
	}
}

func TestOpenOutErrors(t *testing.T) {
	if _, _, err := openOut("/nonexistent-dir-xyz/file"); err == nil {
		t.Error("uncreatable path should fail")
	}
	w, closeFn, err := openOut("-")
	if err != nil || w == nil {
		t.Fatalf("stdout open failed: %v", err)
	}
	closeFn()
}

// readFile is a tiny helper kept local to avoid importing os in the test
// twice over.
func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func TestLoadProgram(t *testing.T) {
	ws, err := loadProgram("mpeg")
	if err != nil || len(ws) != 9 {
		t.Fatalf("mpeg program: %d kernels, %v", len(ws), err)
	}
	dir := t.TempDir()
	path := dir + "/p.txt"
	nest := dir + "/k.nest"
	if err := os.WriteFile(nest, []byte("// k\nint8 a[8]\nfor i = 0, 7\na[i]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := "# program\ndequant 3\n" + nest + " 2\n"
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	ws, err = loadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Trip != 3 || ws[1].Trip != 2 {
		t.Fatalf("program = %+v", ws)
	}
	if ws[1].Nest.Name != "k" {
		t.Errorf("nest-file kernel name = %q", ws[1].Nest.Name)
	}

	bad := dir + "/bad.txt"
	for i, content := range []string{"", "dequant\n", "dequant x\n", "nope 3\n"} {
		if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadProgram(bad); err == nil {
			t.Errorf("bad program %d should fail", i)
		}
	}
	if _, err := loadProgram("/nonexistent-program-file"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestBuildOptions(t *testing.T) {
	opts := buildOptions("32,64", "4", "1,2", "1", 2.31, true)
	if len(opts.CacheSizes) != 2 || opts.CacheSizes[0] != 32 {
		t.Errorf("sizes = %v", opts.CacheSizes)
	}
	if opts.OptimizeLayout {
		t.Error("unoptimized flag ignored")
	}
	if opts.Energy.Main.EmNJ != 2.31 {
		t.Errorf("Em = %v", opts.Energy.Main.EmNJ)
	}
	if err := opts.Validate(); err != nil {
		t.Errorf("built options invalid: %v", err)
	}
}
