// Command memexplore runs the paper's exploration algorithm for one
// benchmark kernel and reports the configuration space with the bounded
// and unbounded optima.
//
// Usage:
//
//	memexplore -kernel compress
//	memexplore -kernel sor -em 43.56 -cycle-bound 30000
//	memexplore -kernel matmul -unoptimized -pareto
//	memexplore -trace app.din.gz
//	memexplore -trace app.din.gz -convert app.mxt.gz
//	memexplore -trace app.mxt.gz -sample-rate 0.01 -dominant-eps 0.05
//	memexplore -search -budget-evals 2000 -seed 7 -sizes 16,32,...,1048576
//	memexplore -list
//	memexplore -server http://localhost:8080 -kernel compress -wait
//	memexplore -server http://localhost:8080 -job 4f1c... -wait
//
// With -trace the workload is a recorded application trace (din text or
// mxt binary, optionally gzipped; "-" reads stdin) streamed through the
// sweep in one constant-memory pass instead of a generated kernel.
//
// With -search the configuration space is explored by a budgeted,
// seeded NSGA-II evolution (see docs/SEARCH.md) instead of an
// exhaustive sweep — for spaces too large to enumerate. The report is
// the evolved Pareto archive rather than the full sweep.
//
// With -server the sweep is submitted to a running memexplored as an
// async job instead of running locally; -wait polls it to completion
// and renders the result, and -job fetches or awaits an existing job id.
package main

import (
	"compress/gzip"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"memexplore"
	"memexplore/internal/report"
)

func main() {
	var (
		kernelName  = flag.String("kernel", "compress", "benchmark kernel to explore (see -list)")
		kernelFile  = flag.String("file", "", "explore a kernel parsed from this file (overrides -kernel; see the README for the nest syntax)")
		list        = flag.Bool("list", false, "list available kernels and exit")
		sizes       = flag.String("sizes", "16,32,64,128,256,512,1024", "candidate cache sizes T in bytes")
		lines       = flag.String("lines", "4,8,16,32,64", "candidate line sizes L in bytes")
		assocs      = flag.String("assocs", "1,2,4,8", "candidate set associativities S")
		tilings     = flag.String("tilings", "1,2,4,8,16", "candidate tiling sizes B")
		em          = flag.Float64("em", 4.95, "main-memory energy per access in nJ (paper parts: 4.95, 2.31, 43.56)")
		unoptimized = flag.Bool("unoptimized", false, "disable the §4.1 off-chip memory assignment")
		cycleBound  = flag.Float64("cycle-bound", 0, "report the min-energy configuration under this cycle bound")
		energyBound = flag.Float64("energy-bound", 0, "report the min-time configuration under this energy bound (nJ)")
		pareto      = flag.Bool("pareto", false, "print the cycles/energy Pareto frontier")
		top         = flag.Int("top", 10, "print the N lowest-energy configurations (0 = all)")
		workers     = flag.Int("parallel", 0, "explore with this many workers (0 = sequential)")
		icacheMode  = flag.Bool("icache", false, "explore an instruction cache for the kernel instead of a data cache (§6 extension)")
		program     = flag.String("program", "", "aggregate a whole program: 'mpeg' or a file of '<kernel|nestfile> <trip>' lines (§5)")
		repl        = flag.String("repl", "lru", "replacement policy: lru, fifo, random")
		victim      = flag.Int("victim", 0, "attach a fully associative victim buffer of N lines to every cache")
		writeThru   = flag.Bool("write-through", false, "write-through instead of write-back caches")
		csvPath     = flag.String("csv", "", "write the full sweep as CSV to this file ('-' for stdout)")
		jsonPath    = flag.String("json", "", "write the full sweep as JSON to this file ('-' for stdout)")
		tracePath   = flag.String("trace", "", "sweep a recorded trace file (din or mxt binary, .gz ok; '-' for stdin) instead of a kernel")
		skipBad     = flag.Bool("skip-malformed", false, "with -trace, skip malformed records instead of failing")
		maxRecords  = flag.Int64("max-records", 0, "with -trace, fail after this many records (0 = unlimited)")
		sampleRate  = flag.Float64("sample-rate", 0, "with -trace, simulate only this fraction of cache blocks (SHARDS spatial sampling; 0 or 1 = exact); with -convert, bake the sample into the artifact")
		sampleSeed  = flag.Uint64("sample-seed", 0, "with -trace, hash seed selecting which blocks -sample-rate keeps")
		dominantEps = flag.Float64("dominant-eps", 0, "with -trace, skip blocks outside the dominant set covering 1-eps of transitions (needs a seekable file; 0 = off)")
		convertPath = flag.String("convert", "", "with -trace, transcode the trace to columnar mxt v2 at this path instead of sweeping ('-' for stdout, .gz compresses)")
		engineName  = flag.String("engine", "auto", "sweep engine: auto, per-point, batched, inclusion (debugging/benchmarking; results are identical)")
		simWorkers  = flag.Int("workers", 0, "simulation workers fanning each trace chunk across pass-unit shards (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		searchMode  = flag.Bool("search", false, "run a budgeted NSGA-II search over the configuration space instead of an exhaustive sweep")
		budgetEvals = flag.Int("budget-evals", 0, "with -search, stop once this many distinct configurations have been evaluated (default 2000 when no other bound is set)")
		budgetGens  = flag.Int("budget-gens", 0, "with -search, stop after this many generations (0 = unbounded)")
		budgetMS    = flag.Int64("budget-ms", 0, "with -search, stop after this wall-clock budget in milliseconds (0 = unbounded; breaks bit-reproducibility)")
		searchSeed  = flag.Uint64("seed", 0, "with -search, random seed — the same seed and budget reproduce the archive exactly")
		popSize     = flag.Int("pop", 0, "with -search, NSGA-II population size (0 = default)")
		serverURL   = flag.String("server", "", "submit the sweep to this memexplored base URL as an async job instead of running locally")
		shards      = flag.Int("shards", 0, "with -server and -trace, distribute the sweep across this many replica shards (-1 = one per replica, 0/1 = local to the server)")
		jobID       = flag.String("job", "", "with -server, fetch (or with -wait, await) this existing job id instead of submitting")
		waitJob     = flag.Bool("wait", false, "with -server, poll the job until it finishes and render its result")
	)
	flag.Parse()

	if *list {
		for _, n := range memexplore.KernelNames() {
			fmt.Println(n)
		}
		return
	}

	opts := buildOptions(*sizes, *lines, *assocs, *tilings, *em, *unoptimized)
	switch *repl {
	case "lru": // default
	case "fifo":
		opts.Replacement = memexplore.FIFO
	case "random":
		opts.Replacement = memexplore.RandomReplacement
	default:
		fatal(fmt.Errorf("unknown replacement policy %q", *repl))
	}
	opts.VictimLines = *victim
	opts.WriteThrough = *writeThru
	engine, err := memexplore.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	opts.Engine = engine
	opts.Workers = *simWorkers
	opts.SampleRate = *sampleRate
	opts.SampleSeed = *sampleSeed
	opts.DominantEps = *dominantEps

	if *serverURL != "" || *jobID != "" {
		if *serverURL == "" {
			fatal(fmt.Errorf("-job requires -server"))
		}
		if *searchMode {
			fatal(fmt.Errorf("-search runs locally; POST the request to the server's /v1/search endpoint instead"))
		}
		if *shards != 0 && *tracePath == "" {
			fatal(fmt.Errorf("-shards distributes a trace sweep; it requires -trace"))
		}
		ing := memexplore.TraceIngestOptions{MaxRecords: *maxRecords, SkipMalformed: *skipBad}
		ro := reportOpts{top: *top, cycleBound: *cycleBound, energyBound: *energyBound, pareto: *pareto}
		if err := runClient(*serverURL, *jobID, *waitJob, *tracePath,
			*kernelName, *kernelFile, opts, ing, *shards, *cycleBound, *energyBound, ro); err != nil {
			fatal(err)
		}
		return
	}

	if *shards != 0 {
		fatal(fmt.Errorf("-shards requires -server: distribution runs across memexplored replicas"))
	}

	if *program != "" {
		if err := runProgram(*program, opts); err != nil {
			fatal(err)
		}
		return
	}

	if *convertPath != "" {
		if *tracePath == "" {
			fatal(fmt.Errorf("-convert requires -trace"))
		}
		ing := memexplore.TraceIngestOptions{MaxRecords: *maxRecords, SkipMalformed: *skipBad}
		wo := memexplore.TraceWriterOptions{SampleRate: *sampleRate, SampleSeed: *sampleSeed}
		if err := runConvert(*tracePath, *convertPath, ing, wo); err != nil {
			fatal(err)
		}
		return
	}

	if *searchMode {
		if *icacheMode || *program != "" {
			fatal(fmt.Errorf("-search explores a data cache for one kernel or trace; it cannot combine with -icache or -program"))
		}
		sopts := memexplore.SearchOptions{Seed: *searchSeed, PopSize: *popSize}
		budget := memexplore.SearchBudget{
			MaxEvaluations: *budgetEvals,
			MaxGenerations: *budgetGens,
			WallClock:      time.Duration(*budgetMS) * time.Millisecond,
		}
		if budget.MaxEvaluations == 0 && budget.MaxGenerations == 0 && budget.WallClock == 0 {
			budget.MaxEvaluations = 2000
		}
		ing := memexplore.TraceIngestOptions{MaxRecords: *maxRecords, SkipMalformed: *skipBad}
		err := runSearch(*kernelName, *kernelFile, *tracePath, opts, ing, sopts, budget,
			*workers, *csvPath, *jsonPath,
			reportOpts{top: *top, cycleBound: *cycleBound, energyBound: *energyBound, pareto: *pareto})
		if err != nil {
			fatal(err)
		}
		return
	}

	if *tracePath != "" {
		ing := memexplore.TraceIngestOptions{MaxRecords: *maxRecords, SkipMalformed: *skipBad}
		err := runTrace(*tracePath, opts, ing, *csvPath, *jsonPath,
			reportOpts{top: *top, cycleBound: *cycleBound, energyBound: *energyBound, pareto: *pareto})
		if err != nil {
			fatal(err)
		}
		return
	}

	kern, err := loadKernel(*kernelName, *kernelFile)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("kernel %s:\n%s\n", kern.Name, kern)
	if lines, err := memexplore.MinCacheLines(kern, opts.LineSizes[0]); err == nil {
		fmt.Printf("analytical minimum: %d cache lines (%d bytes at L=%d)\n\n",
			lines, lines*opts.LineSizes[0], opts.LineSizes[0])
	}

	var ms []memexplore.Metrics
	switch {
	case *icacheMode:
		ms, err = memexplore.ExploreICache(kern, memexplore.DefaultCodeGen(), opts)
	case *workers > 0:
		ms, err = memexplore.ExploreParallel(kern, opts, *workers)
	default:
		ms, err = memexplore.Explore(kern, opts)
	}
	if err != nil {
		fatal(err)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, ms); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, ms); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" || *jsonPath != "" {
		return
	}

	if !*icacheMode {
		if plan := opts.Plan(); plan.Workloads < len(ms) {
			fmt.Printf("evaluated %d configurations over %d workload traces (%d trace passes saved by batching)\n",
				len(ms), plan.Workloads, len(ms)-plan.Workloads)
			if plan.InclusionGroups > 0 {
				fmt.Printf("inclusion engine: %d stack groups cover %d configurations, %d fall back — %.1f configs per pass\n",
					plan.InclusionGroups, plan.InclusionConfigs, plan.FallbackConfigs, plan.ConfigsPerPass())
			}
			fmt.Println()
		}
	}

	if err := reportSweep(ms, reportOpts{top: *top, cycleBound: *cycleBound, energyBound: *energyBound, pareto: *pareto}); err != nil {
		fatal(err)
	}
}

// reportOpts selects what the sweep report prints.
type reportOpts struct {
	top         int
	cycleBound  float64
	energyBound float64
	pareto      bool
}

// reportSweep prints the top-N energy table, the optima and the optional
// bounded selections and Pareto frontier — shared by the kernel and
// trace modes.
func reportSweep(ms []memexplore.Metrics, ro reportOpts) error {
	byEnergy := append([]memexplore.Metrics(nil), ms...)
	sort.SliceStable(byEnergy, func(i, j int) bool { return byEnergy[i].EnergyNJ < byEnergy[j].EnergyNJ })
	if ro.top > 0 && len(byEnergy) > ro.top {
		byEnergy = byEnergy[:ro.top]
	}
	tbl := report.New(fmt.Sprintf("lowest-energy configurations (%d of %d evaluated)", len(byEnergy), len(ms)),
		"config", "missrate", "cycles", "energy(nJ)")
	for _, m := range byEnergy {
		tbl.MustAdd(m.Label(), report.F(m.MissRate), report.F(m.Cycles), report.F(m.EnergyNJ))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	if minE, ok := memexplore.MinEnergy(ms); ok {
		fmt.Printf("minimum energy: %s  (%.0f nJ, %.0f cycles)\n", minE.Label(), minE.EnergyNJ, minE.Cycles)
	}
	if minC, ok := memexplore.MinCycles(ms); ok {
		fmt.Printf("minimum cycles: %s  (%.0f cycles, %.0f nJ)\n", minC.Label(), minC.Cycles, minC.EnergyNJ)
	}
	if m, ok := memexplore.MinEDP(ms); ok {
		fmt.Printf("minimum EDP:    %s  (%.3g nJ·cycles)\n", m.Label(), m.EDP())
	}
	if ro.cycleBound > 0 {
		if m, ok := memexplore.MinEnergyUnderCycleBound(ms, ro.cycleBound); ok {
			fmt.Printf("min energy under %.0f cycles: %s (%.0f nJ, %.0f cycles)\n",
				ro.cycleBound, m.Label(), m.EnergyNJ, m.Cycles)
		} else {
			fmt.Printf("no configuration meets the cycle bound %.0f\n", ro.cycleBound)
		}
	}
	if ro.energyBound > 0 {
		if m, ok := memexplore.MinCyclesUnderEnergyBound(ms, ro.energyBound); ok {
			fmt.Printf("min cycles under %.0f nJ: %s (%.0f cycles, %.0f nJ)\n",
				ro.energyBound, m.Label(), m.Cycles, m.EnergyNJ)
		} else {
			fmt.Printf("no configuration meets the energy bound %.0f nJ\n", ro.energyBound)
		}
	}
	if ro.pareto {
		fmt.Println()
		ptbl := report.New("cycles/energy Pareto frontier", "config", "cycles", "energy(nJ)")
		for _, m := range memexplore.ParetoFrontier(ms) {
			ptbl.MustAdd(m.Label(), report.F(m.Cycles), report.F(m.EnergyNJ))
		}
		if err := ptbl.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runTrace streams a recorded trace file through the sweep and reports
// the ingest profile alongside the usual sweep summary.
// runSearch runs the budgeted NSGA-II search over a kernel or trace
// workload and reports the evolved Pareto archive with the usual sweep
// report (the "evaluated" counts in the tables are archive sizes, since
// only the archive survives the search).
func runSearch(kernelName, kernelFile, tracePath string, opts memexplore.Options,
	ing memexplore.TraceIngestOptions, sopts memexplore.SearchOptions,
	budget memexplore.SearchBudget, workers int, csvPath, jsonPath string, ro reportOpts) error {
	var res memexplore.SearchResult
	if tracePath != "" {
		if tracePath == "-" {
			return fmt.Errorf("-search needs a seekable trace file, not stdin: each generation rewinds and re-streams the trace")
		}
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		var st memexplore.TraceIngestStats
		res, st, err = memexplore.SearchTrace(context.Background(), f, opts, ing, sopts, budget)
		if err != nil {
			return err
		}
		fmt.Printf("trace %s: %s\n", tracePath, st)
	} else {
		kern, err := loadKernel(kernelName, kernelFile)
		if err != nil {
			return err
		}
		fmt.Printf("kernel %s:\n%s\n", kern.Name, kern)
		res, err = memexplore.SearchKernel(context.Background(), kern, opts, sopts, budget, workers)
		if err != nil {
			return err
		}
	}
	fmt.Printf("guided search: evaluated %d of %d configurations in %d generations (%d memo hits), stopped by %s\n",
		res.Evaluations, res.SpacePoints, res.Generations, res.MemoHits, res.Stopped)
	fmt.Printf("Pareto archive: %d configurations\n\n", len(res.Archive))

	if csvPath != "" {
		if err := writeCSV(csvPath, res.Archive); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, res.Archive); err != nil {
			return err
		}
	}
	if csvPath != "" || jsonPath != "" {
		return nil
	}
	return reportSweep(res.Archive, ro)
}

func runTrace(path string, opts memexplore.Options, ing memexplore.TraceIngestOptions,
	csvPath, jsonPath string, ro reportOpts) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	ms, st, err := memexplore.ExploreTrace(in, opts, ing)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %s\n", path, st)
	if st.Mmap {
		fmt.Printf("ingest: memory-mapped %d bytes (zero-copy decode)\n", st.BytesRead)
	}
	if st.ChunksSkipped > 0 {
		fmt.Printf("ingest: index skipped %d chunks (%d records) without decoding\n",
			st.ChunksSkipped, st.RecordsSkipped)
	}
	if st.StoredSampleRate > 0 {
		fmt.Printf("stored sample: artifact keeps rate %g (seed %d) of %d source records\n",
			st.StoredSampleRate, st.StoredSampleSeed, st.StoredSourceRecords)
	}
	if len(ms) > 0 && (ms[0].SampleRate > 0 || ms[0].SampledRecords > 0) {
		maxCI := 0.0
		for _, m := range ms {
			if m.MissRateCI > maxCI {
				maxCI = m.MissRateCI
			}
		}
		seed := opts.SampleSeed
		if st.StoredSampleRate > 0 {
			seed = st.StoredSampleSeed
		}
		fmt.Printf("sampled: %d of %d records simulated", ms[0].SampledRecords, st.Records)
		if ms[0].SampleRate > 0 {
			fmt.Printf(" (rate %g, seed %d)", ms[0].SampleRate, seed)
		}
		if ms[0].SkippedShare > 0 {
			fmt.Printf(", %.1f%% skipped as dominant-filter cold", 100*ms[0].SkippedShare)
		}
		if maxCI > 0 {
			fmt.Printf(", miss-rate 95%% CI ≤ ±%.4f", maxCI)
		}
		fmt.Println()
	}
	if plan, err := memexplore.TraceSweepPlan(opts); err == nil {
		if plan.InclusionGroups > 0 {
			fmt.Printf("inclusion engine: %d stack groups cover %d configurations, %d fall back — %.1f configs per pass\n",
				plan.InclusionGroups, plan.InclusionConfigs, plan.FallbackConfigs, plan.ConfigsPerPass())
		}
		if len(plan.Shards) > 1 {
			fmt.Printf("pipelined engine: %d pass units sharded across %d workers %v\n",
				plan.PassUnits(), len(plan.Shards), plan.Shards)
		}
	}
	fmt.Println()

	if csvPath != "" {
		if err := writeCSV(csvPath, ms); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, ms); err != nil {
			return err
		}
	}
	if csvPath != "" || jsonPath != "" {
		return nil
	}
	return reportSweep(ms, ro)
}

// runConvert transcodes a trace into the columnar mxt v2 format —
// the fast path for traces that will be swept repeatedly. An output
// name ending in .gz is gzip-compressed (which forfeits the mmap fast
// path and up-front index skipping on later sweeps). A non-zero
// -sample-rate bakes transcode-time spatial sampling into the artifact,
// recorded in its index footer so sweeps rescale automatically.
func runConvert(inPath, outPath string, ing memexplore.TraceIngestOptions, wo memexplore.TraceWriterOptions) error {
	var in io.Reader = os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var out io.Writer = os.Stdout
	var file *os.File
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		file = f
		out = f
	}
	var zw *gzip.Writer
	if strings.HasSuffix(outPath, ".gz") {
		zw = gzip.NewWriter(out)
		out = zw
	}
	n, st, err := memexplore.TranscodeTraceV2Options(out, in, ing, wo)
	if err == nil && zw != nil {
		err = zw.Close()
	}
	if file != nil {
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "transcoded %s: %s -> %d mxt v2 records (%s)\n", inPath, st, n, outPath)
	if wo.SampleRate > 0 {
		fmt.Fprintf(os.Stderr, "sampled at transcode time: rate %g, seed %d (recorded in the index footer)\n",
			wo.SampleRate, wo.SampleSeed)
	}
	return nil
}

func mustParseInts(list string) []int {
	out, err := parseInts(list)
	if err != nil {
		fatal(err)
	}
	return out
}

// parseInts parses a comma-separated integer list.
func parseInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list %q", list)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memexplore:", err)
	os.Exit(1)
}

// writeCSV dumps the sweep as comma-separated values.
func writeCSV(path string, ms []memexplore.Metrics) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeFn()
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"cache", "line", "assoc", "tiling", "optimized",
		"accesses", "hits", "misses", "missrate",
		"cycles", "energy_nj", "e_dec", "e_cell", "e_io", "e_main", "addbs",
	}); err != nil {
		return err
	}
	for _, m := range ms {
		rec := []string{
			strconv.Itoa(m.CacheSize), strconv.Itoa(m.LineSize),
			strconv.Itoa(m.Assoc), strconv.Itoa(m.Tiling),
			strconv.FormatBool(m.Optimized),
			strconv.FormatUint(m.Accesses, 10), strconv.FormatUint(m.Hits, 10),
			strconv.FormatUint(m.Misses, 10),
			strconv.FormatFloat(m.MissRate, 'g', 8, 64),
			strconv.FormatFloat(m.Cycles, 'g', 10, 64),
			strconv.FormatFloat(m.EnergyNJ, 'g', 10, 64),
			strconv.FormatFloat(m.Energy.DecNJ, 'g', 8, 64),
			strconv.FormatFloat(m.Energy.CellNJ, 'g', 8, 64),
			strconv.FormatFloat(m.Energy.IONJ, 'g', 8, 64),
			strconv.FormatFloat(m.Energy.MainNJ, 'g', 8, 64),
			strconv.FormatFloat(m.AddBS, 'g', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeJSON dumps the sweep as a JSON array.
func writeJSON(path string, ms []memexplore.Metrics) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeFn()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}

// openOut opens path for writing, treating "-" as stdout.
func openOut(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// loadKernel resolves the workload: a file (parsed nest syntax) when given,
// else the named built-in benchmark.
func loadKernel(name, file string) (*memexplore.Nest, error) {
	if file == "" {
		return memexplore.Kernel(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return memexplore.ParseKernelReader(f)
}

// buildOptions assembles exploration options from the geometry flags.
func buildOptions(sizes, lines, assocs, tilings string, em float64, unoptimized bool) memexplore.Options {
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = mustParseInts(sizes)
	opts.LineSizes = mustParseInts(lines)
	opts.Assocs = mustParseInts(assocs)
	opts.Tilings = mustParseInts(tilings)
	opts.OptimizeLayout = !unoptimized
	part := opts.Energy.Main
	part.EmNJ = em
	part.Name = fmt.Sprintf("main memory (Em=%.2f nJ)", em)
	opts.Energy = memexplore.DefaultEnergyParams(part)
	return opts
}

// runProgram aggregates a multi-kernel program (§5): "mpeg" uses the
// built-in decoder; otherwise the argument is a file of
// "<kernel-name-or-nest-file> <trip>" lines.
func runProgram(spec string, opts memexplore.Options) error {
	ws, err := loadProgram(spec)
	if err != nil {
		return err
	}
	agg, perKernel, err := memexplore.Aggregate(ws, opts)
	if err != nil {
		return err
	}
	tbl := report.New("per-kernel minimum-energy configurations", "kernel", "trip", "config", "energy(nJ)", "cycles")
	for _, k := range ws {
		best, ok := memexplore.MinEnergy(perKernel[k.Nest.Name])
		if !ok {
			continue
		}
		tbl.MustAdd(k.Nest.Name, fmt.Sprintf("%d", k.Trip), best.Label(), report.F(best.EnergyNJ), report.F(best.Cycles))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if minE, ok := memexplore.MinEnergy(agg); ok {
		fmt.Printf("program minimum energy: %s  (%.0f nJ, %.0f cycles)\n", minE.Label(), minE.EnergyNJ, minE.Cycles)
	}
	if minC, ok := memexplore.MinCycles(agg); ok {
		fmt.Printf("program minimum cycles: %s  (%.0f cycles, %.0f nJ)\n", minC.Label(), minC.Cycles, minC.EnergyNJ)
	}
	return nil
}

// loadProgram parses a program specification.
func loadProgram(spec string) ([]memexplore.WeightedKernel, error) {
	if spec == "mpeg" {
		return memexplore.MPEGDecoder(), nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, err
	}
	var ws []memexplore.WeightedKernel
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("program line %d: want \"<kernel|nestfile> <trip>\", got %q", ln+1, line)
		}
		trip, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("program line %d: bad trip %q: %w", ln+1, fields[1], err)
		}
		var n *memexplore.Nest
		if strings.ContainsAny(fields[0], "./") {
			f, err := os.Open(fields[0])
			if err != nil {
				return nil, err
			}
			n, err = memexplore.ParseKernelReader(f)
			f.Close()
			if err != nil {
				return nil, err
			}
		} else {
			n, err = memexplore.Kernel(fields[0])
			if err != nil {
				return nil, err
			}
		}
		ws = append(ws, memexplore.WeightedKernel{Nest: n, Trip: trip})
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("program %q lists no kernels", spec)
	}
	return ws, nil
}
