package main

// Client mode: with -server the CLI does not sweep locally but submits
// the work to a running memexplored as an async job (POST /v1/jobs),
// prints the job id, and with -wait polls it to completion and renders
// the result with the same report the local modes use. -job fetches or
// awaits an existing job instead of submitting. The wire mirrors below
// are deliberately local structs: they document what any external
// client of the v1 API needs to know.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"memexplore"
)

// jobPollInterval is the -wait polling cadence.
const jobPollInterval = 250 * time.Millisecond

// optionsHeader mirrors service.OptionsHeader.
const optionsHeader = "X-Memexplore-Options"

// jobProgress mirrors the jobs progress object.
type jobProgress struct {
	Records       int64 `json:"records"`
	Chunks        int64 `json:"chunks"`
	Points        int64 `json:"points"`
	PointsDone    int64 `json:"points_done"`
	PassUnits     int64 `json:"pass_units"`
	PassUnitsDone int64 `json:"pass_units_done"`
}

// jobFailure mirrors the v1 error detail ({code, message, field}).
type jobFailure struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

func (f jobFailure) String() string {
	if f.Field != "" {
		return fmt.Sprintf("%s (%s): %s", f.Code, f.Field, f.Message)
	}
	return fmt.Sprintf("%s: %s", f.Code, f.Message)
}

// jobRecord mirrors the job record served under /v1/jobs/{id}.
type jobRecord struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	State    string          `json:"state"`
	Cached   bool            `json:"cached"`
	Progress jobProgress     `json:"progress"`
	Result   json.RawMessage `json:"result"`
	Error    *jobFailure     `json:"error"`
}

// terminal mirrors jobs.State.Terminal.
func (r jobRecord) terminal() bool {
	return r.State == "done" || r.State == "failed" || r.State == "canceled"
}

// errorEnvelope mirrors the uniform v1 error body.
type errorEnvelope struct {
	Error jobFailure `json:"error"`
}

// sweepResult is the slice of an explore/explore-trace result body the
// report needs.
type sweepResult struct {
	Kernel  string               `json:"kernel"`
	Cached  bool                 `json:"cached"`
	Engine  string               `json:"engine"`
	Points  int                  `json:"points"`
	Metrics []memexplore.Metrics `json:"metrics"`
}

// client talks to one memexplored.
type client struct {
	base string
	hc   http.Client
}

func newClient(base string) *client {
	return &client{base: strings.TrimRight(base, "/")}
}

// do issues one request and decodes error envelopes into Go errors.
func (c *client) do(method, path string, header http.Header, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		var env errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && env.Error.Code != "" {
			return nil, fmt.Errorf("server: %s", env.Error)
		}
		return nil, fmt.Errorf("server: unexpected status %s", resp.Status)
	}
	return resp, nil
}

// decodeInto drains one response into dst.
func decodeInto(resp *http.Response, dst any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(dst)
}

// getJob fetches one job record.
func (c *client) getJob(id string) (jobRecord, error) {
	resp, err := c.do("GET", "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return jobRecord{}, err
	}
	var rec jobRecord
	return rec, decodeInto(resp, &rec)
}

// submitExplore submits an "explore" job built from the kernel flags.
func (c *client) submitExplore(kernelName, kernelFile string, opts memexplore.Options, cycleBound, energyBound float64) (jobRecord, error) {
	optsJSON, err := json.Marshal(opts)
	if err != nil {
		return jobRecord{}, err
	}
	body := struct {
		Kind          string          `json:"kind"`
		Kernel        string          `json:"kernel,omitempty"`
		Source        string          `json:"source,omitempty"`
		Options       json.RawMessage `json:"options,omitempty"`
		CycleBound    float64         `json:"cycle_bound,omitempty"`
		EnergyBoundNJ float64         `json:"energy_bound_nj,omitempty"`
	}{Kind: "explore", Options: optsJSON, CycleBound: cycleBound, EnergyBoundNJ: energyBound}
	if kernelFile != "" {
		src, err := os.ReadFile(kernelFile)
		if err != nil {
			return jobRecord{}, err
		}
		body.Source = string(src)
	} else {
		body.Kernel = kernelName
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return jobRecord{}, err
	}
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	resp, err := c.do("POST", "/v1/jobs", hdr, bytes.NewReader(payload))
	if err != nil {
		return jobRecord{}, err
	}
	var rec jobRecord
	return rec, decodeInto(resp, &rec)
}

// submitTrace submits an "explore-trace" job: the trace file is the
// request body, the sweep options ride in the X-Memexplore-Options
// header.
func (c *client) submitTrace(path string, opts memexplore.Options, ing memexplore.TraceIngestOptions, shards int, cycleBound, energyBound float64) (jobRecord, error) {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return jobRecord{}, err
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		return jobRecord{}, err
	}
	optsJSON, err := json.Marshal(opts)
	if err != nil {
		return jobRecord{}, err
	}
	tr := struct {
		Kind          string          `json:"kind"`
		Options       json.RawMessage `json:"options,omitempty"`
		MaxRecords    int64           `json:"max_records,omitempty"`
		SkipMalformed bool            `json:"skip_malformed,omitempty"`
		CycleBound    float64         `json:"cycle_bound,omitempty"`
		EnergyBoundNJ float64         `json:"energy_bound_nj,omitempty"`
		Workers       int             `json:"workers,omitempty"`
		Shards        int             `json:"shards,omitempty"`
	}{
		Kind: "explore-trace", Options: optsJSON,
		MaxRecords: ing.MaxRecords, SkipMalformed: ing.SkipMalformed,
		CycleBound: cycleBound, EnergyBoundNJ: energyBound, Workers: opts.Workers,
		Shards: shards,
	}
	trJSON, err := json.Marshal(tr)
	if err != nil {
		return jobRecord{}, err
	}
	hdr := http.Header{optionsHeader: []string{string(trJSON)}}
	resp, err := c.do("POST", "/v1/jobs", hdr, bytes.NewReader(data))
	if err != nil {
		return jobRecord{}, err
	}
	var rec jobRecord
	return rec, decodeInto(resp, &rec)
}

// progressLine renders a job's progress for the -wait ticker.
func progressLine(rec jobRecord) string {
	p := rec.Progress
	line := fmt.Sprintf("job %s %s", rec.ID, rec.State)
	if p.PassUnits > 0 {
		line += fmt.Sprintf(": pass units %d/%d", p.PassUnitsDone, p.PassUnits)
	}
	if p.Records > 0 {
		line += fmt.Sprintf(", %d trace records", p.Records)
	}
	return line
}

// await polls the job to a terminal state, echoing progress changes.
func (c *client) await(id string, ro reportOpts) error {
	last := ""
	for {
		rec, err := c.getJob(id)
		if err != nil {
			return err
		}
		if line := progressLine(rec); line != last {
			fmt.Println(line)
			last = line
		}
		if rec.terminal() {
			return renderJob(rec, ro)
		}
		time.Sleep(jobPollInterval)
	}
}

// renderJob prints a terminal job: the standard sweep report for done
// jobs, the failure envelope otherwise.
func renderJob(rec jobRecord, ro reportOpts) error {
	switch rec.State {
	case "done":
		var res sweepResult
		if err := json.Unmarshal(rec.Result, &res); err != nil {
			return fmt.Errorf("decoding job result: %w", err)
		}
		if rec.Cached {
			fmt.Println("(result recalled from the shared result tier)")
		}
		fmt.Printf("engine: %s, %d configurations\n\n", res.Engine, res.Points)
		return reportSweep(res.Metrics, ro)
	case "canceled":
		return fmt.Errorf("job %s was canceled", rec.ID)
	default:
		if rec.Error != nil {
			return fmt.Errorf("job %s failed: %s", rec.ID, rec.Error)
		}
		return fmt.Errorf("job %s failed", rec.ID)
	}
}

// runClient dispatches the CLI's client mode: fetch/await an existing
// job, or submit the sweep the local flags describe.
func runClient(server, jobID string, wait bool, tracePath string,
	kernelName, kernelFile string, opts memexplore.Options,
	ing memexplore.TraceIngestOptions, shards int, cycleBound, energyBound float64, ro reportOpts) error {
	c := newClient(server)
	if jobID != "" {
		if !wait {
			rec, err := c.getJob(jobID)
			if err != nil {
				return err
			}
			fmt.Println(progressLine(rec))
			if rec.terminal() {
				return renderJob(rec, ro)
			}
			return nil
		}
		return c.await(jobID, ro)
	}
	var (
		rec jobRecord
		err error
	)
	if tracePath != "" {
		rec, err = c.submitTrace(tracePath, opts, ing, shards, cycleBound, energyBound)
	} else {
		rec, err = c.submitExplore(kernelName, kernelFile, opts, cycleBound, energyBound)
	}
	if err != nil {
		return err
	}
	fmt.Printf("submitted job %s (%s, state %s)\n", rec.ID, rec.Kind, rec.State)
	if !wait {
		fmt.Printf("poll with: memexplore -server %s -job %s -wait\n", c.base, rec.ID)
		if rec.terminal() {
			return renderJob(rec, ro)
		}
		return nil
	}
	return c.await(rec.ID, ro)
}
