// The distributed phase (-dist): measure the multi-process speedup of
// cross-replica trace sweeps. The harness re-execs itself as replica
// subprocesses — each a full memexplored service pinned to GOMAXPROCS=1
// over one shared jobs directory — then drives one coordinator with
// shards=1/2/4 over the same synthetic mxt v2 trace. Since the
// container typically pins GOMAXPROCS, the per-process worker pool
// cannot parallelize anything; whatever speedup appears is the
// distributed coordinator's. Every leg's response body must be
// byte-identical (the merge contract); the timing report lands in
// BENCH_dist.json.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"memexplore/internal/extrace"
	"memexplore/internal/service"
	"memexplore/internal/trace"
)

// DistReport is the BENCH_dist.json schema.
type DistReport struct {
	Timestamp     string     `json:"timestamp"`
	Config        DistConfig `json:"config"`
	Legs          []DistLeg  `json:"legs"`
	ByteIdentical bool       `json:"byte_identical"`
	PeerFailures  int64      `json:"peer_failures"`
}

// readIntVar fetches one memexplored counter from a replica's
// /debug/vars page (0 when unreachable or absent).
func readIntVar(addr, name string) int64 {
	resp, err := http.Get(addr + "/debug/vars")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var page struct {
		Memexplored map[string]json.RawMessage `json:"memexplored"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return 0
	}
	var v int64
	_ = json.Unmarshal(page.Memexplored[name], &v)
	return v
}

// DistConfig records the workload that produced the numbers. HostCPUs
// matters for reading the wall-clock legs: with fewer host cores than
// replicas the processes time-share and the measured speedup is
// contention-bound (on a single-core host it cannot exceed 1×); the
// isolated-shard projection is the hardware-independent number.
type DistConfig struct {
	Records    int  `json:"records"`
	TraceBytes int  `json:"trace_bytes"`
	Iterations int  `json:"iterations"`
	HostCPUs   int  `json:"host_cpus"`
	Smoke      bool `json:"smoke"`
}

// DistLeg is one replica-count measurement. Seconds is the best (min)
// wall time over the iterations; Speedup is relative to the one-replica
// leg of the same run. IsolatedShardMaxSeconds is the slowest single
// shard of this leg's plan timed alone (no concurrent legs competing
// for cores) — the critical path a fleet with one genuinely idle core
// per replica would ride — and ProjectedSpeedup is the one-replica time
// over that critical path.
type DistLeg struct {
	Replicas                int     `json:"replicas"`
	Shards                  int     `json:"shards"`
	Seconds                 float64 `json:"seconds"`
	RecordsPerSec           float64 `json:"records_per_sec"`
	Speedup                 float64 `json:"speedup"`
	IsolatedShardMaxSeconds float64 `json:"isolated_shard_max_seconds,omitempty"`
	ProjectedSpeedup        float64 `json:"projected_speedup,omitempty"`
}

// runReplica is the hidden subprocess mode: serve the full memexplored
// stack on an ephemeral port, announce the address on stdout, and exit
// when stdin closes (i.e. when the parent finishes or dies).
func runReplica(jobsDir, peers string) {
	svc := service.MustNew(service.Config{
		MaxConcurrentSweeps: 2,
		MaxConcurrentJobs:   2,
		MaxBodyBytes:        256 << 20,
		JobsDir:             jobsDir,
		Peers:               splitList(peers),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ADDR http://%s\n", ln.Addr())
	go func() {
		_, _ = io.Copy(io.Discard, os.Stdin)
		os.Exit(0)
	}()
	fatal(http.Serve(ln, svc))
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// replica is one spawned subprocess server.
type replica struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

// startReplica re-execs this binary in replica mode and waits for its
// address line. GOMAXPROCS=1 pins each replica to one scheduler proc so
// the measured speedup is the multi-process one.
func startReplica(jobsDir, peers string) (*replica, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-replica-jobs-dir", jobsDir, "-replica-peers", peers)
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	br := bufio.NewReader(stdout)
	line, err := br.ReadString('\n')
	if err != nil {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("replica produced no address: %v", err)
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "ADDR ")
	if !ok {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("unexpected replica banner %q", line)
	}
	go func() { _, _ = io.Copy(io.Discard, br) }()
	return &replica{cmd: cmd, stdin: stdin, addr: addr}, nil
}

func (r *replica) stop() {
	_ = r.stdin.Close()
	_ = r.cmd.Process.Kill()
	_, _ = r.cmd.Process.Wait()
}

// synthDistTrace encodes a deterministic hot/cold reference stream as
// mxt v2: stride-64 walks over a hot 64KB window interleaved with
// strided passes over fresh large arrays — enough reuse for the LRU
// stacks to work and enough footprint for the sweep to cost real time.
func synthDistTrace(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]trace.Ref, 0, n)
	const hotBase = uint64(1) << 20
	arrayBase := uint64(64) << 20
	for len(refs) < n {
		if rng.Intn(3) > 0 {
			seg := 4096 + rng.Intn(4096)
			off := uint64(rng.Intn(1024)) * 64
			for i := 0; i < seg && len(refs) < n; i++ {
				off = (off + 64) % (64 << 10)
				refs = append(refs, trace.Ref{Addr: hotBase + off, Kind: trace.Kind(rng.Intn(3))})
			}
		} else {
			arrayBase += uint64(4) << 20
			seg := 8192 + rng.Intn(8192)
			for i := 0; i < seg && len(refs) < n; i++ {
				refs = append(refs, trace.Ref{Addr: arrayBase + uint64(i)*32, Kind: trace.Read})
			}
		}
	}
	var buf bytes.Buffer
	if _, err := extrace.WriteBinaryV2(&buf, trace.FromRefs(refs).Reader()); err != nil {
		fatal(err)
	}
	return buf.Bytes()
}

// distHeader is the X-Memexplore-Options document for one leg: the
// shared sweep space plus the shard count (0 = plain local baseline).
func distHeader(shards int, smoke bool) string {
	space := `{"cache_sizes":[64,128,256,512,1024,2048,4096,8192,16384],"line_sizes":[8,16,32,64],"assocs":[1,2,4,8]}`
	if smoke {
		space = `{"cache_sizes":[32,64,128],"line_sizes":[8,16],"assocs":[1,2]}`
	}
	h := fmt.Sprintf(`{"kind":"explore-trace","options":%s`, space)
	if shards > 1 {
		h += fmt.Sprintf(`,"shards":%d`, shards)
	}
	return h + "}"
}

// shardHeader addresses one shard of an n-way plan for isolated timing:
// the internal shard-execution wire form, run synchronously on one
// replica with nothing else competing for the core.
func shardHeader(index, count int, smoke bool) string {
	h := strings.TrimSuffix(distHeader(0, smoke), "}")
	return h + fmt.Sprintf(`,"shard":{"index":%d,"count":%d}}`, index, count)
}

// runDistLeg posts one trace sweep and returns its wall time and
// response body.
func runDistLeg(coord, header string, payload []byte) (time.Duration, []byte, error) {
	req, err := http.NewRequest("POST", coord+"/v1/explore-trace", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set(service.OptionsHeader, header)
	begin := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	elapsed := time.Since(begin)
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("sweep: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return elapsed, body, nil
}

// runDistPhase spawns the replica fleet and measures each leg. Every
// iteration uses a fresh trace (fresh content keys, so no leg is
// answered from the shared result tier) and requires all legs of that
// iteration to return byte-identical bodies.
func runDistPhase(records, iters int, smoke bool) (*DistReport, error) {
	fleetPeers, legs := 3, []int{1, 2, 4}
	if smoke {
		fleetPeers, legs = 1, []int{1, 2}
	}
	jobsDir, err := os.MkdirTemp("", "memexplore-dist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(jobsDir)

	var peers []*replica
	defer func() {
		for _, p := range peers {
			p.stop()
		}
	}()
	var peerURLs []string
	for i := 0; i < fleetPeers; i++ {
		p, err := startReplica(jobsDir, "")
		if err != nil {
			return nil, fmt.Errorf("starting peer %d: %w", i, err)
		}
		peers = append(peers, p)
		peerURLs = append(peerURLs, p.addr)
	}
	coord, err := startReplica(jobsDir, strings.Join(peerURLs, ","))
	if err != nil {
		return nil, fmt.Errorf("starting coordinator: %w", err)
	}
	peers = append(peers, coord) // stopped with the rest

	report := &DistReport{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Config:        DistConfig{Records: records, Iterations: iters, HostCPUs: runtime.NumCPU(), Smoke: smoke},
		ByteIdentical: true,
	}
	best := make(map[int]float64)
	isolated := make(map[int]float64) // leg -> min-over-iters of max-shard time
	for iter := 0; iter < iters; iter++ {
		payload := synthDistTrace(int64(101+iter), records)
		report.Config.TraceBytes = len(payload)
		var ref []byte
		for _, n := range legs {
			elapsed, body, err := runDistLeg(coord.addr, distHeader(n, smoke), payload)
			if err != nil {
				return nil, fmt.Errorf("iteration %d, %d-replica leg: %w", iter, n, err)
			}
			if ref == nil {
				ref = body
			} else if !bytes.Equal(ref, body) {
				return nil, fmt.Errorf("iteration %d: %d-replica result is not byte-identical to the 1-replica result", iter, n)
			}
			if s := elapsed.Seconds(); best[n] == 0 || s < best[n] {
				best[n] = s
			}
			fmt.Fprintf(os.Stderr, "dist: iter %d, %d replica(s): %.2fs\n", iter, n, elapsed.Seconds())
		}
		// Isolated shard timings: each shard of each leg's plan alone on
		// one replica — the per-shard critical path without host-core
		// contention between legs.
		for _, n := range legs {
			if n < 2 {
				continue
			}
			var max float64
			for i := 0; i < n; i++ {
				elapsed, _, err := runDistLeg(coord.addr, shardHeader(i, n, smoke), payload)
				if err != nil {
					return nil, fmt.Errorf("iteration %d, isolated shard %d/%d: %w", iter, i, n, err)
				}
				if s := elapsed.Seconds(); s > max {
					max = s
				}
			}
			if isolated[n] == 0 || max < isolated[n] {
				isolated[n] = max
			}
			fmt.Fprintf(os.Stderr, "dist: iter %d, %d-way plan: slowest isolated shard %.2fs\n", iter, n, max)
		}
	}

	// The coordinator's own counters tell on silent degradation: a peer
	// failure means a shard fell back to local execution and the leg
	// measured a degenerate (single-process) run.
	report.PeerFailures = readIntVar(coord.addr, "dist_peer_failures")
	if report.PeerFailures > 0 {
		fmt.Fprintf(os.Stderr, "dist: warning: %d peer dispatches failed and fell back to local\n", report.PeerFailures)
	}

	for _, n := range legs {
		leg := DistLeg{
			Replicas:      n,
			Seconds:       best[n],
			RecordsPerSec: float64(records) / best[n],
			Speedup:       best[legs[0]] / best[n],
		}
		if n > 1 {
			leg.Shards = n
			leg.IsolatedShardMaxSeconds = isolated[n]
			if isolated[n] > 0 {
				leg.ProjectedSpeedup = best[legs[0]] / isolated[n]
			}
		}
		report.Legs = append(report.Legs, leg)
	}
	if !smoke && len(best) > 1 {
		wall, projected := best[1]/best[2], best[1]/isolated[2]
		switch {
		case report.Config.HostCPUs < 2:
			fmt.Fprintf(os.Stderr, "dist: single-core host: replicas time-share one core, wall speedup %.2fx is contention-bound; projected 2-replica speedup %.2fx\n", wall, projected)
			if projected < 1.4 {
				fmt.Fprintf(os.Stderr, "dist: warning: projected 2-replica speedup %.2fx below the 1.4x target\n", projected)
			}
		case wall < 1.4:
			fmt.Fprintf(os.Stderr, "dist: warning: 2-replica speedup %.2fx below the 1.4x target\n", wall)
		}
	}
	return report, nil
}
