// Command memexplore-bench load-tests the memexplored v1 API surface:
// a pool of concurrent clients drives the synchronous /v1/explore
// endpoint and the async /v1/jobs pipeline (submit, poll to
// completion), and the harness reports p50/p99 latencies for each as
// JSON — written to -out (BENCH_service.json by convention) and echoed
// to stdout.
//
// Usage:
//
//	memexplore-bench                 # in-process server, full load
//	memexplore-bench -smoke          # seconds-long CI smoke run
//	memexplore-bench -addr http://localhost:8080   # against a live daemon
//
// Without -addr the harness starts an in-process memexplored (an
// httptest server around service.New), so results measure the service
// stack without kernel-network noise.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"memexplore/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "", "benchmark a running daemon at this base URL instead of an in-process server")
		conc     = flag.Int("concurrency", 4, "concurrent client workers per phase")
		requests = flag.Int("requests", 64, "synchronous requests to issue")
		jobCount = flag.Int("job-count", 16, "async jobs to submit and await")
		sweeps   = flag.Int("sweeps", 4, "in-process server: max concurrent sweeps")
		jobSlots = flag.Int("jobs", 2, "in-process server: max concurrently running jobs")
		out      = flag.String("out", "BENCH_service.json", "write the JSON report here ('-' for stdout only)")
		smoke    = flag.Bool("smoke", false, "tiny CI run: few requests, small sweep space")

		dist        = flag.Bool("dist", false, "benchmark distributed trace sweeps across replica subprocesses instead (writes BENCH_dist.json)")
		distRecords = flag.Int("dist-records", 4_000_000, "-dist: synthetic trace records per sweep")
		distIters   = flag.Int("dist-iters", 3, "-dist: iterations per leg (best time wins)")

		// Internal flags of the replica subprocess mode; see dist.go.
		replicaJobsDir = flag.String("replica-jobs-dir", "", "internal: serve as a replica over this shared jobs directory")
		replicaPeers   = flag.String("replica-peers", "", "internal: comma-separated peer base URLs for the replica")
	)
	flag.Parse()
	if *replicaJobsDir != "" {
		runReplica(*replicaJobsDir, *replicaPeers)
		return
	}
	if *smoke {
		*conc, *requests, *jobCount = 2, 8, 4
	}
	if *dist {
		if *smoke {
			*distRecords, *distIters = 200_000, 1
		}
		if *out == "BENCH_service.json" { // the -out default belongs to the service phase
			*out = "BENCH_dist.json"
		}
		report, err := runDistPhase(*distRecords, *distIters, *smoke)
		if err != nil {
			fatal(err)
		}
		writeReport(report, *out)
		return
	}

	base := *addr
	if base == "" {
		svc := service.MustNew(service.Config{
			MaxConcurrentSweeps: *sweeps,
			MaxConcurrentJobs:   *jobSlots,
		})
		ts := httptest.NewServer(svc)
		defer ts.Close()
		base = ts.URL
	}
	base = strings.TrimRight(base, "/")

	report := Report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config: RunConfig{
			Addr: *addr, Concurrency: *conc, Requests: *requests,
			Jobs: *jobCount, Smoke: *smoke, InProcess: *addr == "",
		},
	}

	syncStats, err := runSyncPhase(base, *conc, *requests, *smoke)
	if err != nil {
		fatal(err)
	}
	report.Sync = syncStats

	jobStats, err := runJobPhase(base, *conc, *jobCount, *smoke)
	if err != nil {
		fatal(err)
	}
	report.Jobs = jobStats

	writeReport(report, *out)
}

// writeReport echoes a report to stdout and, unless out is "-", writes
// it to the named file.
func writeReport(report any, out string) {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(blob))
	if out != "-" {
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memexplore-bench:", err)
	os.Exit(1)
}

// Report is the BENCH_service.json schema.
type Report struct {
	Timestamp string     `json:"timestamp"`
	Config    RunConfig  `json:"config"`
	Sync      PhaseStats `json:"sync"`
	Jobs      JobStats   `json:"jobs"`
}

// RunConfig records what produced the numbers.
type RunConfig struct {
	Addr        string `json:"addr,omitempty"`
	InProcess   bool   `json:"in_process"`
	Concurrency int    `json:"concurrency"`
	Requests    int    `json:"requests"`
	Jobs        int    `json:"jobs"`
	Smoke       bool   `json:"smoke"`
}

// PhaseStats summarizes one latency distribution.
type PhaseStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// JobStats splits the async pipeline into submit (time to 202) and
// end-to-end (submit to observed terminal state) distributions.
type JobStats struct {
	Submitted  int        `json:"submitted"`
	ResultHits int        `json:"result_hits"`
	Submit     PhaseStats `json:"submit"`
	Complete   PhaseStats `json:"complete"`
}

// kernelMix cycles request bodies across kernels and option subsets so
// the run mixes cache misses with hits, like real traffic.
var kernelMix = []string{"compress", "sor", "matmul", "fir"}

// exploreBody builds the i-th request body. Smoke runs shrink the sweep
// space so CI finishes in seconds.
func exploreBody(i int, smoke bool) []byte {
	sizes := "[64,128,256,512]"
	tilings := "[1,2,4]"
	if smoke {
		sizes = "[32,64]"
		tilings = "[1]"
	}
	body := fmt.Sprintf(`{"kind":"explore","kernel":%q,"options":{"cache_sizes":%s,"line_sizes":[8,16],"assocs":[1,2],"tilings":%s}}`,
		kernelMix[i%len(kernelMix)], sizes, tilings)
	return []byte(body)
}

// runSyncPhase fans requests over conc workers against /v1/explore.
func runSyncPhase(base string, conc, requests int, smoke bool) (PhaseStats, error) {
	latencies := make([]float64, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				begin := time.Now()
				errs[i] = postOK(base+"/v1/explore", "application/json", exploreBody(i, smoke))
				latencies[i] = float64(time.Since(begin)) / float64(time.Millisecond)
			}
		}()
	}
	for i := 0; i < requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return summarize(latencies, errs), nil
}

// runJobPhase submits jobs over conc workers and polls each to a
// terminal state.
func runJobPhase(base string, conc, jobCount int, smoke bool) (JobStats, error) {
	submitMs := make([]float64, jobCount)
	completeMs := make([]float64, jobCount)
	errs := make([]error, jobCount)
	hits := make([]bool, jobCount)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				begin := time.Now()
				rec, err := submitJob(base, exploreBody(i, smoke))
				submitMs[i] = float64(time.Since(begin)) / float64(time.Millisecond)
				if err != nil {
					errs[i] = err
					continue
				}
				hits[i] = rec.Cached
				rec, err = awaitJob(base, rec.ID)
				completeMs[i] = float64(time.Since(begin)) / float64(time.Millisecond)
				if err != nil {
					errs[i] = err
				} else if rec.State != "done" {
					errs[i] = fmt.Errorf("job %s ended %s", rec.ID, rec.State)
				}
			}
		}()
	}
	for i := 0; i < jobCount; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	stats := JobStats{
		Submitted: jobCount,
		Submit:    summarize(submitMs, errs),
		Complete:  summarize(completeMs, errs),
	}
	for _, h := range hits {
		if h {
			stats.ResultHits++
		}
	}
	return stats, nil
}

// jobRecord is the slice of the job record the harness reads.
type jobRecord struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
}

// postOK posts a body and drains the response, failing on non-2xx.
func postOK(url, contentType string, body []byte) error {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("POST %s: %s", url, resp.Status)
	}
	return nil
}

// submitJob posts to /v1/jobs and decodes the accepted record.
func submitJob(base string, body []byte) (jobRecord, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobRecord{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		blob, _ := io.ReadAll(resp.Body)
		return jobRecord{}, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(blob))
	}
	var rec jobRecord
	return rec, json.NewDecoder(resp.Body).Decode(&rec)
}

// awaitJob polls a job until it reaches a terminal state.
func awaitJob(base, id string) (jobRecord, error) {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return jobRecord{}, err
		}
		var rec jobRecord
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil {
			return jobRecord{}, err
		}
		switch rec.State {
		case "done", "failed", "canceled":
			return rec, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// summarize folds a latency slice (and its error slice) into PhaseStats.
func summarize(ms []float64, errs []error) PhaseStats {
	st := PhaseStats{Requests: len(ms)}
	ok := make([]float64, 0, len(ms))
	var sum float64
	for i, v := range ms {
		if errs[i] != nil {
			st.Errors++
			continue
		}
		ok = append(ok, v)
		sum += v
		if v > st.MaxMs {
			st.MaxMs = v
		}
	}
	if len(ok) == 0 {
		return st
	}
	sort.Float64s(ok)
	st.P50Ms = percentile(ok, 0.50)
	st.P99Ms = percentile(ok, 0.99)
	st.MeanMs = sum / float64(len(ok))
	return st
}

// percentile reads quantile q from an ascending-sorted slice (nearest-
// rank method).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
