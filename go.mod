module memexplore

go 1.22
