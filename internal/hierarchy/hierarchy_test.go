package hierarchy

import (
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/energy"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

func twoLevel(l1, l2 int) Config {
	return Config{
		L1: cachesim.DefaultConfig(l1, 8, 1),
		L2: cachesim.DefaultConfig(l2, 16, 2),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := twoLevel(64, 512).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{L1: cachesim.DefaultConfig(60, 8, 1), L2: cachesim.DefaultConfig(512, 16, 1)},
		{L1: cachesim.DefaultConfig(64, 8, 1), L2: cachesim.DefaultConfig(60, 16, 1)},
		twoLevel(512, 64), // L2 smaller than L1
		{L1: cachesim.DefaultConfig(64, 16, 1), L2: cachesim.DefaultConfig(512, 8, 1)}, // L2 line < L1 line
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be rejected: %v", i, cfg)
		}
	}
}

func TestL2FiltersL1Misses(t *testing.T) {
	// A working set bigger than L1 but smaller than L2: after the cold
	// pass, L1 misses hit in L2, so no further main-memory traffic.
	tr := trace.Loop(0, 512, 8, 4) // 512 B set, 4 passes
	st, err := Run(twoLevel(64, 1024), tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.L1.Misses == 0 {
		t.Fatal("L1 should miss (working set 8x its size)")
	}
	if st.L2.Misses != 32 { // 512 B / 16 B L2 lines: cold fills only
		t.Errorf("L2 misses = %d, want 32 (cold only)", st.L2.Misses)
	}
	if got := st.GlobalMissRate(); got >= st.L1.MissRate() {
		t.Errorf("global miss rate %v should be below L1 miss rate %v", got, st.L1.MissRate())
	}
	// L2 sees exactly the L1 miss fills.
	if st.L2.Accesses != st.L1.Misses {
		t.Errorf("L2 accesses %d != L1 misses %d (single-line refs)", st.L2.Accesses, st.L1.Misses)
	}
}

func TestSpanningRefsRefillBothLines(t *testing.T) {
	s, err := New(twoLevel(64, 512))
	if err != nil {
		t.Fatal(err)
	}
	s.Access(trace.Ref{Addr: 6, Size: 4}) // spans L1 lines 0 and 1
	st := s.Stats()
	if st.L2.Accesses != 2 {
		t.Errorf("L2 accesses = %d, want 2 (two L1 lines refilled)", st.L2.Accesses)
	}
}

func TestEvaluateModels(t *testing.T) {
	n := kernels.MatMul()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	p := energy.DefaultParams(energy.CypressCY7C())
	m, err := Evaluate(twoLevel(64, 1024), tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles <= float64(m.Stats.L1.Accesses) {
		t.Errorf("cycles %v must exceed one per access", m.Cycles)
	}
	if m.EnergyNJ <= 0 {
		t.Errorf("energy = %v", m.EnergyNJ)
	}
	// The L2 must filter: global miss rate strictly below L1's.
	if m.Stats.GlobalMissRate() >= m.Stats.L1.MissRate() {
		t.Errorf("L2 not filtering: global %v, L1 %v",
			m.Stats.GlobalMissRate(), m.Stats.L1.MissRate())
	}
}

func TestExploreAndSelect(t *testing.T) {
	n := kernels.MatMul()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	p := energy.DefaultParams(energy.CypressCY7C())
	ms, err := Explore(tr, []int{32, 64}, []int{256, 1024, 4096}, 8, 16, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Fatalf("pairs = %d, want 6", len(ms))
	}
	best, ok := MinEnergy(ms)
	if !ok {
		t.Fatal("no optimum")
	}
	for _, m := range ms {
		if m.EnergyNJ < best.EnergyNJ {
			t.Errorf("MinEnergy missed %v", m.Config)
		}
	}
	// Degenerate sweeps fail loudly.
	if _, err := Explore(tr, []int{512}, []int{256}, 8, 16, 1, p); err == nil {
		t.Error("sweep with no legal pair should fail")
	}
	if _, ok := MinEnergy(nil); ok {
		t.Error("MinEnergy(nil) should report !ok")
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(twoLevel(512, 64), trace.Sequential(0, 4, 1)); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("zero config should fail")
	}
}
