// Package hierarchy simulates a two-level on-chip cache (L1 + L2) and
// extends the paper's cycle and energy models to it. The paper explores a
// single level backed by off-chip SRAM; embedded SoCs of the following
// generation added a unified L2, and the natural question — does a second
// level ever beat spending the same silicon on a bigger L1? — is answered
// by the ext-l2 exhibit with the same three metrics.
//
// Model: every reference probes L1; an L1 miss fetches the L1 line from
// L2 (one L2 access of L1-line width); an L2 miss fetches the L2 line
// from main memory. Write-backs are tallied per level but — matching the
// paper's read-only energy accounting — do not generate additional
// traffic between levels. Cycles charge the §2.2 hit latency per level
// and the §2.2 miss penalty only for L2 misses (L1→L2 refills cost an L2
// hit latency). Energy charges each level's §2.3 E_cell/E_dec per access
// at that level and E_io/E_main only on L2 misses.
package hierarchy

import (
	"fmt"
	"io"

	"memexplore/internal/bus"
	"memexplore/internal/cachesim"
	"memexplore/internal/cycles"
	"memexplore/internal/energy"
	"memexplore/internal/trace"
)

// Config is a two-level organization.
type Config struct {
	L1 cachesim.Config
	L2 cachesim.Config
}

// Validate checks both levels plus the inclusion-friendly constraints the
// model assumes: L2 at least as big as L1 and an L2 line at least as long
// as an L1 line.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("hierarchy: L1: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("hierarchy: L2: %w", err)
	}
	if c.L2.SizeBytes < c.L1.SizeBytes {
		return fmt.Errorf("hierarchy: L2 (%d B) smaller than L1 (%d B)", c.L2.SizeBytes, c.L1.SizeBytes)
	}
	if c.L2.LineBytes < c.L1.LineBytes {
		return fmt.Errorf("hierarchy: L2 line (%d B) shorter than L1 line (%d B)", c.L2.LineBytes, c.L1.LineBytes)
	}
	return nil
}

// String renders the pair.
func (c Config) String() string {
	return fmt.Sprintf("L1[%s]+L2[%s]", c.L1, c.L2)
}

// Stats carries per-level statistics.
type Stats struct {
	L1 cachesim.Stats
	L2 cachesim.Stats
}

// GlobalMissRate is the fraction of processor references that reach main
// memory (L1 misses that also miss L2).
func (s Stats) GlobalMissRate() float64 {
	if s.L1.Accesses == 0 {
		return 0
	}
	return float64(s.L2.Misses) / float64(s.L1.Accesses)
}

// Sim is a running two-level simulation.
type Sim struct {
	cfg Config
	l1  *cachesim.Cache
	l2  *cachesim.Cache
}

// New builds a two-level simulator (no 3C classification, for speed).
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1, err := cachesim.NewFast(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := cachesim.NewFast(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, l1: l1, l2: l2}, nil
}

// Access simulates one processor reference through both levels.
func (s *Sim) Access(r trace.Ref) {
	res := s.l1.Access(r)
	if res.Hit {
		return
	}
	// Refill every L1 line the reference touched from L2. Writes that
	// missed L1 allocate there (write-allocate), so L2 sees a read fill.
	lineBytes := uint64(s.cfg.L1.LineBytes)
	first := r.Addr &^ (lineBytes - 1)
	last := r.LastByte() &^ (lineBytes - 1)
	for la := first; la <= last; la += lineBytes {
		s.l2.Access(trace.Ref{Addr: la, Kind: trace.Read, Size: uint8(s.cfg.L1.LineBytes)})
	}
}

// Run drains a source.
func (s *Sim) Run(src trace.Source) (Stats, error) {
	for {
		r, err := src.Next()
		if err == io.EOF {
			return s.Stats(), nil
		}
		if err != nil {
			return s.Stats(), fmt.Errorf("hierarchy: reading trace: %w", err)
		}
		s.Access(r)
	}
}

// Stats returns the per-level statistics so far.
func (s *Sim) Stats() Stats {
	return Stats{L1: s.l1.Stats(), L2: s.l2.Stats()}
}

// Run simulates a whole trace on a fresh hierarchy.
func Run(cfg Config, tr *trace.Trace) (Stats, error) {
	s, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	return s.Run(tr.Reader())
}

// Metrics extends the paper's triple to the two-level organization.
type Metrics struct {
	Config   Config
	Stats    Stats
	Cycles   float64
	EnergyNJ float64
}

// l2HitCycles is the L1-refill latency from L2: tag + array access plus
// line transfer, far below the off-chip penalty.
const l2HitCycles = 4

// Evaluate scores a trace on a two-level configuration with the extended
// models.
func Evaluate(cfg Config, tr *trace.Trace, p energy.Params) (Metrics, error) {
	st, err := Run(cfg, tr)
	if err != nil {
		return Metrics{}, err
	}
	addBS := bus.MeasureTrace(tr, bus.Gray).AddBS()

	cph1, err := cycles.CyclesPerHit(cfg.L1.Assoc)
	if err != nil {
		return Metrics{}, err
	}
	cpm2, err := cycles.CyclesPerMiss(cfg.L2.LineBytes)
	if err != nil {
		return Metrics{}, err
	}
	cyc := float64(st.L1.Hits)*cph1 +
		float64(st.L1.Misses)*(cph1+l2HitCycles) +
		float64(st.L2.Misses)*cpm2

	// Energy: every processor access pays L1 E_dec+E_cell; every L2
	// access pays L2 E_dec+E_cell; L2 misses pay E_io+E_main of the L2
	// geometry.
	b1, err := energy.PerAccess(p, cfg.L1, addBS)
	if err != nil {
		return Metrics{}, err
	}
	b2, err := energy.PerAccess(p, cfg.L2, addBS)
	if err != nil {
		return Metrics{}, err
	}
	en := float64(st.L1.Accesses)*b1.Hit() +
		float64(st.L2.Accesses)*b2.Hit() +
		float64(st.L2.Misses)*(b2.EIO+b2.EMain)
	return Metrics{Config: cfg, Stats: st, Cycles: cyc, EnergyNJ: en}, nil
}

// Explore sweeps (L1 size, L2 size) pairs at fixed line sizes and returns
// the metrics in deterministic order. L2 sizes must exceed their paired
// L1 (smaller combinations are skipped).
func Explore(tr *trace.Trace, l1Sizes, l2Sizes []int, l1Line, l2Line, assoc int, p energy.Params) ([]Metrics, error) {
	var out []Metrics
	for _, s1 := range l1Sizes {
		for _, s2 := range l2Sizes {
			if s2 <= s1 {
				continue
			}
			cfg := Config{
				L1: cachesim.DefaultConfig(s1, l1Line, assoc),
				L2: cachesim.DefaultConfig(s2, l2Line, assoc),
			}
			if cfg.Validate() != nil {
				continue
			}
			m, err := Evaluate(cfg, tr, p)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hierarchy: no legal (L1, L2) pair in the sweep")
	}
	return out, nil
}

// MinEnergy picks the lowest-energy pair.
func MinEnergy(ms []Metrics) (Metrics, bool) {
	if len(ms) == 0 {
		return Metrics{}, false
	}
	best := ms[0]
	for _, m := range ms[1:] {
		if m.EnergyNJ < best.EnergyNJ {
			best = m
		}
	}
	return best, true
}
