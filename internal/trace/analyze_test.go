package trace

import (
	"strings"
	"testing"
)

func TestAnalyzeEmpty(t *testing.T) {
	p := Analyze(New(0))
	if p.References != 0 || p.FootprintBytes != 0 || p.SequentialFrac != 0 {
		t.Errorf("empty profile: %+v", p)
	}
}

func TestAnalyzeSequential(t *testing.T) {
	p := Analyze(Sequential(100, 10, 4))
	if p.References != 10 || p.Reads != 10 {
		t.Errorf("counts: %+v", p)
	}
	if p.MinAddr != 100 || p.MaxAddr != 136 {
		t.Errorf("range: [%d, %d]", p.MinAddr, p.MaxAddr)
	}
	if p.FootprintBytes != 10 {
		t.Errorf("footprint = %d, want 10 (1-byte refs)", p.FootprintBytes)
	}
	if p.Strides[4] != 9 {
		t.Errorf("stride histogram: %v", p.Strides)
	}
	if p.SequentialFrac != 1.0 {
		t.Errorf("sequential frac = %v", p.SequentialFrac)
	}
}

func TestAnalyzeMixedKindsAndSizes(t *testing.T) {
	tr := FromRefs([]Ref{
		{Addr: 0, Kind: Read, Size: 4},
		{Addr: 100, Kind: Write},
		{Addr: 0, Kind: Fetch},
	})
	p := Analyze(tr)
	if p.Reads != 1 || p.Writes != 1 || p.Fetches != 1 {
		t.Errorf("kind mix: %+v", p)
	}
	// Footprint: bytes 0-3 and 100 = 5 bytes.
	if p.FootprintBytes != 5 {
		t.Errorf("footprint = %d, want 5", p.FootprintBytes)
	}
	if p.Strides[100] != 1 || p.Strides[-100] != 1 {
		t.Errorf("strides: %v", p.Strides)
	}
}

func TestAnalyzeStrideBucketCap(t *testing.T) {
	// 40 distinct strides: only 16 retained, the rest in StrideOther.
	tr := New(0)
	addr := uint64(1 << 20)
	tr.Append(Ref{Addr: addr})
	for i := 1; i <= 40; i++ {
		addr += uint64(i * 100)
		tr.Append(Ref{Addr: addr})
	}
	p := Analyze(tr)
	if len(p.Strides) != maxStrideBuckets {
		t.Errorf("retained strides = %d, want %d", len(p.Strides), maxStrideBuckets)
	}
	if p.StrideOther != 40-maxStrideBuckets {
		t.Errorf("other = %d, want %d", p.StrideOther, 40-maxStrideBuckets)
	}
}

func TestTopStridesOrdered(t *testing.T) {
	tr := Concat(Sequential(0, 10, 1), Sequential(1000, 3, 64))
	p := Analyze(tr)
	top := p.TopStrides()
	if len(top) == 0 || top[0] != 1 {
		t.Errorf("most common stride should be 1: %v", top)
	}
	for i := 1; i < len(top); i++ {
		if p.Strides[top[i]] > p.Strides[top[i-1]] {
			t.Errorf("TopStrides not sorted by count: %v", top)
		}
	}
}

func TestProfileString(t *testing.T) {
	p := Analyze(Sequential(0, 5, 2))
	s := p.String()
	for _, want := range []string{"references      5", "footprint       5", "top strides:", "+2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
