package trace

import (
	"bytes"
	"testing"
)

// FuzzReadDin checks that arbitrary input never panics the din reader and
// that anything it accepts round-trips through WriteDin.
func FuzzReadDin(f *testing.F) {
	f.Add("0 10\n1 ff\n2 deadbeef\n")
	f.Add("# comment\n\n0 0\n")
	f.Add("0 0x1f\n")
	f.Add("bogus")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ReadDin(bytes.NewReader([]byte(src)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteDin(&buf); err != nil {
			t.Fatalf("WriteDin after successful ReadDin: %v", err)
		}
		again, err := ReadDin(&buf)
		if err != nil {
			t.Fatalf("re-reading our own output: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), again.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if again.At(i) != tr.At(i) {
				t.Fatalf("round trip changed ref %d", i)
			}
		}
	})
}
