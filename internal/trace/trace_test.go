package trace

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Read, "read"},
		{Write, "write"},
		{Fetch, "fetch"},
		{Kind(9), "Kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestKindFromDinLabel(t *testing.T) {
	for label := 0; label <= 2; label++ {
		k, err := KindFromDinLabel(label)
		if err != nil {
			t.Fatalf("KindFromDinLabel(%d): %v", label, err)
		}
		if k.DinLabel() != label {
			t.Errorf("round trip label %d -> %d", label, k.DinLabel())
		}
	}
	if _, err := KindFromDinLabel(3); err == nil {
		t.Error("KindFromDinLabel(3) should fail")
	}
	if _, err := KindFromDinLabel(-1); err == nil {
		t.Error("KindFromDinLabel(-1) should fail")
	}
}

func TestRefEffectiveSize(t *testing.T) {
	if got := (Ref{}).EffectiveSize(); got != 1 {
		t.Errorf("zero Size should default to 1, got %d", got)
	}
	if got := (Ref{Size: 4}).EffectiveSize(); got != 4 {
		t.Errorf("Size 4 -> %d", got)
	}
	r := Ref{Addr: 100, Size: 4}
	if got := r.LastByte(); got != 103 {
		t.Errorf("LastByte = %d, want 103", got)
	}
}

func TestTraceEmitAndReader(t *testing.T) {
	tr := New(0)
	refs := []Ref{{Addr: 1}, {Addr: 2, Kind: Write}, {Addr: 3, Kind: Fetch}}
	for _, r := range refs {
		if err := tr.Emit(r); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	src := tr.Reader()
	for i := 0; ; i++ {
		r, err := src.Next()
		if err == io.EOF {
			if i != 3 {
				t.Fatalf("EOF after %d refs, want 3", i)
			}
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if r != refs[i] {
			t.Errorf("ref %d = %+v, want %+v", i, r, refs[i])
		}
	}
}

func TestTraceCounts(t *testing.T) {
	tr := FromRefs([]Ref{{Kind: Read}, {Kind: Write}, {Kind: Read}, {Kind: Fetch}})
	if got := tr.Reads(); got != 2 {
		t.Errorf("Reads = %d, want 2", got)
	}
	if got := tr.Writes(); got != 1 {
		t.Errorf("Writes = %d, want 1", got)
	}
}

func TestAddrRange(t *testing.T) {
	if _, _, ok := New(0).AddrRange(); ok {
		t.Error("empty trace should report ok=false")
	}
	tr := FromRefs([]Ref{{Addr: 50, Size: 4}, {Addr: 10}, {Addr: 49}})
	lo, hi, ok := tr.AddrRange()
	if !ok || lo != 10 || hi != 53 {
		t.Errorf("AddrRange = (%d,%d,%v), want (10,53,true)", lo, hi, ok)
	}
}

func TestDinRoundTrip(t *testing.T) {
	tr := FromRefs([]Ref{
		{Addr: 0x0, Kind: Read},
		{Addr: 0xdeadbeef, Kind: Write},
		{Addr: 0x42, Kind: Fetch},
	})
	var buf bytes.Buffer
	if err := tr.WriteDin(&buf); err != nil {
		t.Fatalf("WriteDin: %v", err)
	}
	got, err := ReadDin(&buf)
	if err != nil {
		t.Fatalf("ReadDin: %v", err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if got.At(i) != tr.At(i) {
			t.Errorf("ref %d = %+v, want %+v", i, got.At(i), tr.At(i))
		}
	}
}

func TestReadDinCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n0 10\n1 0x20\n"
	tr, err := ReadDin(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadDin: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.At(0) != (Ref{Addr: 0x10, Kind: Read}) {
		t.Errorf("ref 0 = %+v", tr.At(0))
	}
	if tr.At(1) != (Ref{Addr: 0x20, Kind: Write}) {
		t.Errorf("ref 1 = %+v", tr.At(1))
	}
}

func TestReadDinErrors(t *testing.T) {
	cases := []string{
		"0\n",       // missing address
		"x 10\n",    // bad label
		"7 10\n",    // out-of-range label
		"0 zzzz\n",  // bad address
		"0 10 10 x", // extra fields are fine, but keep a bad one:
	}
	for i, in := range cases[:4] {
		if _, err := ReadDin(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): want error", i, in)
		}
	}
}

func TestSequential(t *testing.T) {
	tr := Sequential(100, 5, 4)
	want := []uint64{100, 104, 108, 112, 116}
	for i, w := range want {
		if tr.At(i).Addr != w {
			t.Errorf("addr %d = %d, want %d", i, tr.At(i).Addr, w)
		}
	}
}

func TestLoop(t *testing.T) {
	tr := Loop(0, 8, 2, 3)
	if tr.Len() != 12 {
		t.Fatalf("Len = %d, want 12", tr.Len())
	}
	// Each pass covers addresses 0,2,4,6.
	for p := 0; p < 3; p++ {
		for i := 0; i < 4; i++ {
			if got := tr.At(p*4 + i).Addr; got != uint64(i*2) {
				t.Errorf("pass %d ref %d addr = %d, want %d", p, i, got, i*2)
			}
		}
	}
	// Zero stride must not divide by zero.
	if got := Loop(0, 4, 0, 1).Len(); got != 4 {
		t.Errorf("Loop with stride 0 Len = %d, want 4", got)
	}
}

func TestPingPong(t *testing.T) {
	tr := PingPong(0, 64, 3)
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	for i := 0; i < 6; i++ {
		want := uint64(0)
		if i%2 == 1 {
			want = 64
		}
		if tr.At(i).Addr != want {
			t.Errorf("ref %d addr = %d, want %d", i, tr.At(i).Addr, want)
		}
	}
}

func TestRandomInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := Random(rng, 1000, 256, 500)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		a := tr.At(i).Addr
		if a < 1000 || a >= 1256 {
			t.Fatalf("ref %d addr %d out of [1000,1256)", i, a)
		}
	}
}

func TestInterleave(t *testing.T) {
	a := Sequential(0, 3, 1)
	b := Sequential(100, 2, 1)
	got := Interleave(a, b)
	want := []uint64{0, 100, 1, 101, 2}
	if got.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", got.Len(), len(want))
	}
	for i, w := range want {
		if got.At(i).Addr != w {
			t.Errorf("ref %d = %d, want %d", i, got.At(i).Addr, w)
		}
	}
}

func TestConcat(t *testing.T) {
	a := Sequential(0, 2, 1)
	b := Sequential(10, 2, 1)
	got := Concat(a, b)
	want := []uint64{0, 1, 10, 11}
	for i, w := range want {
		if got.At(i).Addr != w {
			t.Errorf("ref %d = %d, want %d", i, got.At(i).Addr, w)
		}
	}
}

// Property: din serialization round-trips arbitrary address/kind pairs.
func TestQuickDinRoundTrip(t *testing.T) {
	f := func(addrs []uint64, kinds []uint8) bool {
		tr := New(len(addrs))
		for i, a := range addrs {
			k := Read
			if len(kinds) > 0 {
				k = Kind(kinds[i%len(kinds)] % 3)
			}
			tr.Append(Ref{Addr: a, Kind: k})
		}
		var buf bytes.Buffer
		if err := tr.WriteDin(&buf); err != nil {
			return false
		}
		got, err := ReadDin(&buf)
		if err != nil || got.Len() != tr.Len() {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			if got.At(i) != tr.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Interleave preserves the multiset of references.
func TestQuickInterleavePreservesRefs(t *testing.T) {
	f := func(na, nb uint8) bool {
		a := Sequential(0, int(na%64), 1)
		b := Sequential(1000, int(nb%64), 1)
		got := Interleave(a, b)
		if got.Len() != a.Len()+b.Len() {
			return false
		}
		seen := map[uint64]int{}
		for i := 0; i < got.Len(); i++ {
			seen[got.At(i).Addr]++
		}
		for i := 0; i < a.Len(); i++ {
			seen[a.At(i).Addr]--
		}
		for i := 0; i < b.Len(); i++ {
			seen[b.At(i).Addr]--
		}
		for _, v := range seen {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDinGzRoundTrip(t *testing.T) {
	tr := Sequential(0, 200, 3)
	var buf bytes.Buffer
	if err := tr.WriteDinGz(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Bytes()[0] != 0x1f {
		t.Fatalf("not gzip output: % x", buf.Bytes()[:2])
	}
	got, err := ReadDinAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if got.At(i) != tr.At(i) {
			t.Fatalf("ref %d differs", i)
		}
	}
}

func TestReadDinAutoPlain(t *testing.T) {
	got, err := ReadDinAuto(strings.NewReader("0 10\n"))
	if err != nil || got.Len() != 1 {
		t.Fatalf("plain auto-read: %d, %v", got.Len(), err)
	}
	// Corrupt gzip header is an error, not a hang.
	if _, err := ReadDinAuto(bytes.NewReader([]byte{0x1f, 0x8b, 0x00})); err == nil {
		t.Error("corrupt gzip should fail")
	}
	// Empty input yields an empty trace.
	empty, err := ReadDinAuto(strings.NewReader(""))
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty input: %d, %v", empty.Len(), err)
	}
}
