package trace

import "math/rand"

// Sequential returns a trace of n reads walking upward from base with the
// given byte stride. It models a streaming access pattern.
func Sequential(base uint64, n int, stride uint64) *Trace {
	t := New(n)
	for i := 0; i < n; i++ {
		t.Append(Ref{Addr: base + uint64(i)*stride, Kind: Read})
	}
	return t
}

// Loop returns a trace that repeats a sequential walk over a region of
// length regionBytes, with the given stride, for the given number of passes.
// It models temporal reuse of a working set.
func Loop(base uint64, regionBytes uint64, stride uint64, passes int) *Trace {
	if stride == 0 {
		stride = 1
	}
	perPass := int(regionBytes / stride)
	t := New(perPass * passes)
	for p := 0; p < passes; p++ {
		for i := 0; i < perPass; i++ {
			t.Append(Ref{Addr: base + uint64(i)*stride, Kind: Read})
		}
	}
	return t
}

// PingPong returns a trace that alternates between two addresses n times
// each. With the two addresses mapping to the same cache set of a
// direct-mapped cache this produces 100% conflict misses, which makes it
// the canonical adversarial input for layout and associativity tests.
func PingPong(a, b uint64, n int) *Trace {
	t := New(2 * n)
	for i := 0; i < n; i++ {
		t.Append(Ref{Addr: a, Kind: Read})
		t.Append(Ref{Addr: b, Kind: Read})
	}
	return t
}

// Random returns a trace of n reads uniformly distributed over
// [base, base+span). The rng parameter makes runs reproducible; it must be
// non-nil.
func Random(rng *rand.Rand, base uint64, span uint64, n int) *Trace {
	t := New(n)
	for i := 0; i < n; i++ {
		t.Append(Ref{Addr: base + uint64(rng.Int63n(int64(span))), Kind: Read})
	}
	return t
}

// Interleave merges the given traces round-robin (one reference from each in
// turn) until all are exhausted. It models kernels whose references
// alternate between several arrays.
func Interleave(traces ...*Trace) *Trace {
	total := 0
	for _, t := range traces {
		total += t.Len()
	}
	out := New(total)
	idx := make([]int, len(traces))
	for out.Len() < total {
		for i, t := range traces {
			if idx[i] < t.Len() {
				out.Append(t.At(idx[i]))
				idx[i]++
			}
		}
	}
	return out
}

// Concat concatenates the given traces into a new trace.
func Concat(traces ...*Trace) *Trace {
	total := 0
	for _, t := range traces {
		total += t.Len()
	}
	out := New(total)
	for _, t := range traces {
		out.refs = append(out.refs, t.refs...)
	}
	return out
}
