// Package trace defines memory-reference traces: the fundamental input of
// the cache simulator. A trace is a sequence of Ref records (address, access
// kind, size). The package provides in-memory traces, streaming interfaces,
// a reader/writer for the classic Dinero "din" text format, and synthetic
// generators used by tests and benchmarks.
package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind is the access type of a memory reference, matching the label codes
// of the Dinero din format.
type Kind uint8

const (
	// Read is a data read access (din label 0).
	Read Kind = iota
	// Write is a data write access (din label 1).
	Write
	// Fetch is an instruction fetch (din label 2). The paper focuses on
	// data caches, but the simulator is general and benchmarks may carry
	// instruction references.
	Fetch
)

// String returns the conventional name of the access kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Fetch:
		return "fetch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// DinLabel returns the Dinero din-format numeric label for the kind.
func (k Kind) DinLabel() int {
	return int(k)
}

// KindFromDinLabel converts a din-format label (0, 1, 2) to a Kind.
func KindFromDinLabel(label int) (Kind, error) {
	if label < 0 || label > 2 {
		return 0, fmt.Errorf("trace: invalid din label %d (want 0, 1 or 2)", label)
	}
	return Kind(label), nil
}

// Ref is a single memory reference.
type Ref struct {
	// Addr is the byte address of the reference.
	Addr uint64
	// Kind distinguishes reads, writes and instruction fetches.
	Kind Kind
	// Size is the access width in bytes. Zero means "default" (1 byte),
	// matching the paper's byte-granularity address arithmetic.
	Size uint8
}

// EffectiveSize returns the access width, treating 0 as 1 byte.
func (r Ref) EffectiveSize() int {
	if r.Size == 0 {
		return 1
	}
	return int(r.Size)
}

// LastByte returns the address of the last byte touched by the reference.
func (r Ref) LastByte() uint64 {
	return r.Addr + uint64(r.EffectiveSize()) - 1
}

// String renders the reference in din format ("<label> <hex-addr>").
func (r Ref) String() string {
	return fmt.Sprintf("%d %x", r.Kind.DinLabel(), r.Addr)
}

// Source yields references one at a time. Next returns io.EOF after the
// final reference.
type Source interface {
	Next() (Ref, error)
}

// Sink consumes references.
type Sink interface {
	Emit(Ref) error
}

// Trace is an in-memory reference sequence.
type Trace struct {
	refs []Ref
}

// New returns an empty trace with capacity for n references.
func New(n int) *Trace {
	return &Trace{refs: make([]Ref, 0, n)}
}

// FromRefs wraps an existing slice (not copied) as a Trace.
func FromRefs(refs []Ref) *Trace {
	return &Trace{refs: refs}
}

// Emit appends a reference. It never fails; the error return satisfies Sink.
func (t *Trace) Emit(r Ref) error {
	t.refs = append(t.refs, r)
	return nil
}

// Append appends a reference without the Sink error plumbing.
func (t *Trace) Append(r Ref) { t.refs = append(t.refs, r) }

// Len returns the number of references.
func (t *Trace) Len() int { return len(t.refs) }

// At returns the i-th reference.
func (t *Trace) At(i int) Ref { return t.refs[i] }

// Refs returns the underlying slice. Callers must not grow it.
func (t *Trace) Refs() []Ref { return t.refs }

// Reader returns a Source that iterates over the trace.
func (t *Trace) Reader() Source { return &sliceSource{refs: t.refs} }

// Reads reports how many references are of Kind Read.
func (t *Trace) Reads() int { return t.count(Read) }

// Writes reports how many references are of Kind Write.
func (t *Trace) Writes() int { return t.count(Write) }

func (t *Trace) count(k Kind) int {
	n := 0
	for _, r := range t.refs {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// AddrRange returns the minimum and maximum byte addresses touched by the
// trace. ok is false for an empty trace.
func (t *Trace) AddrRange() (lo, hi uint64, ok bool) {
	if len(t.refs) == 0 {
		return 0, 0, false
	}
	lo, hi = t.refs[0].Addr, t.refs[0].LastByte()
	for _, r := range t.refs[1:] {
		if r.Addr < lo {
			lo = r.Addr
		}
		if lb := r.LastByte(); lb > hi {
			hi = lb
		}
	}
	return lo, hi, true
}

type sliceSource struct {
	refs []Ref
	pos  int
}

func (s *sliceSource) Next() (Ref, error) {
	if s.pos >= len(s.refs) {
		return Ref{}, io.EOF
	}
	r := s.refs[s.pos]
	s.pos++
	return r, nil
}

// WriteDin writes the trace in Dinero din format: one "<label> <hexaddr>"
// pair per line.
func (t *Trace) WriteDin(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.refs {
		if _, err := fmt.Fprintf(bw, "%d %x\n", r.Kind.DinLabel(), r.Addr); err != nil {
			return fmt.Errorf("trace: writing din record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing din output: %w", err)
	}
	return nil
}

// ReadDin parses a Dinero din-format stream into a Trace. Blank lines and
// lines starting with '#' are ignored.
func ReadDin(r io.Reader) (*Trace, error) {
	t := New(1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: din line %d: want \"<label> <hexaddr>\", got %q", lineno, line)
		}
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: din line %d: bad label %q: %w", lineno, fields[0], err)
		}
		kind, err := KindFromDinLabel(label)
		if err != nil {
			return nil, fmt.Errorf("trace: din line %d: %w", lineno, err)
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: din line %d: bad address %q: %w", lineno, fields[1], err)
		}
		t.Append(Ref{Addr: addr, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning din input: %w", err)
	}
	return t, nil
}

// WriteDinGz writes the trace in gzip-compressed din format — useful for
// large traces; ReadDinAuto detects and decompresses it.
func (t *Trace) WriteDinGz(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if err := t.WriteDin(gz); err != nil {
		gz.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("trace: closing gzip stream: %w", err)
	}
	return nil
}

// ReadDinAuto reads a din trace, transparently decompressing gzip input
// (detected by the 0x1f 0x8b magic bytes).
func ReadDinAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
		}
		defer gz.Close()
		return ReadDin(gz)
	}
	return ReadDin(br)
}
