package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Profile summarizes a trace's statistical shape: the mix of access
// kinds, the address footprint, and the distribution of strides between
// consecutive references — the quantities a designer reads before picking
// exploration ranges.
type Profile struct {
	// References is the trace length.
	References int
	// Reads, Writes, Fetches partition the references.
	Reads, Writes, Fetches int
	// MinAddr and MaxAddr bound the touched addresses.
	MinAddr, MaxAddr uint64
	// FootprintBytes counts the distinct bytes touched (at byte
	// granularity via distinct addresses and sizes).
	FootprintBytes int
	// Strides histograms the signed deltas between consecutive reference
	// addresses (capped to the most common 16 strides; the rest aggregate
	// under StrideOther).
	Strides map[int64]int
	// StrideOther counts deltas outside the retained histogram.
	StrideOther int
	// SequentialFrac is the fraction of consecutive pairs with |delta| ≤
	// 8 bytes — a locality indicator.
	SequentialFrac float64
}

// maxStrideBuckets bounds the retained stride histogram.
const maxStrideBuckets = 16

// Analyze computes the profile of a trace.
func Analyze(t *Trace) Profile {
	p := Profile{Strides: map[int64]int{}}
	p.References = t.Len()
	if t.Len() == 0 {
		return p
	}
	touched := map[uint64]struct{}{}
	var prev uint64
	sequential := 0
	full := map[int64]int{}
	for i := 0; i < t.Len(); i++ {
		r := t.At(i)
		switch r.Kind {
		case Read:
			p.Reads++
		case Write:
			p.Writes++
		case Fetch:
			p.Fetches++
		}
		for b := r.Addr; b <= r.LastByte(); b++ {
			touched[b] = struct{}{}
		}
		if i == 0 {
			p.MinAddr, p.MaxAddr = r.Addr, r.LastByte()
		} else {
			if r.Addr < p.MinAddr {
				p.MinAddr = r.Addr
			}
			if lb := r.LastByte(); lb > p.MaxAddr {
				p.MaxAddr = lb
			}
			delta := int64(r.Addr) - int64(prev)
			full[delta]++
			if delta <= 8 && delta >= -8 {
				sequential++
			}
		}
		prev = r.Addr
	}
	p.FootprintBytes = len(touched)
	if t.Len() > 1 {
		p.SequentialFrac = float64(sequential) / float64(t.Len()-1)
	}
	// Keep the most frequent strides.
	type sc struct {
		stride int64
		count  int
	}
	var all []sc
	for s, c := range full {
		all = append(all, sc{s, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].stride < all[j].stride
	})
	for i, e := range all {
		if i < maxStrideBuckets {
			p.Strides[e.stride] = e.count
		} else {
			p.StrideOther += e.count
		}
	}
	return p
}

// TopStrides returns the retained strides ordered by descending count.
func (p Profile) TopStrides() []int64 {
	var out []int64
	for s := range p.Strides {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if p.Strides[out[i]] != p.Strides[out[j]] {
			return p.Strides[out[i]] > p.Strides[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// String renders a compact multi-line report.
func (p Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "references      %d (reads %d, writes %d, fetches %d)\n",
		p.References, p.Reads, p.Writes, p.Fetches)
	fmt.Fprintf(&sb, "address range   [%#x, %#x]\n", p.MinAddr, p.MaxAddr)
	fmt.Fprintf(&sb, "footprint       %d bytes\n", p.FootprintBytes)
	fmt.Fprintf(&sb, "sequential frac %.3f (|stride| ≤ 8)\n", p.SequentialFrac)
	sb.WriteString("top strides:\n")
	for _, s := range p.TopStrides() {
		fmt.Fprintf(&sb, "  %+6d : %d\n", s, p.Strides[s])
	}
	if p.StrideOther > 0 {
		fmt.Fprintf(&sb, "  other  : %d\n", p.StrideOther)
	}
	return sb.String()
}
