package search

// Seeded randomness for the evolutionary operators: splitmix64, the same
// generator family whose finalizer drives SHARDS sampling (core's mix64),
// promoted from a hash to a sequential stream. Tiny, fast, and — the
// actual requirement — reproducible: every stochastic choice in a run
// flows from one generator seeded by Options.Seed, so identical inputs
// replay identical runs.

type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64 uniform bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n); n must be positive. The modulo bias is
// negligible for the tiny ranges genes and tournaments draw from.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float64 returns a value in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }
