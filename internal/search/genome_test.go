package search

import (
	"testing"

	"memexplore/internal/core"
)

func testOptions() core.Options {
	return core.Options{
		CacheSizes: []int{16, 32, 64, 128, 256, 512, 1024},
		LineSizes:  []int{4, 8, 16, 32, 64},
		Assocs:     []int{1, 2, 4, 8},
		Tilings:    []int{1, 2, 4, 8, 16},
	}
}

func TestNewSpaceMatchesEnumeration(t *testing.T) {
	for name, opts := range map[string]core.Options{
		"default":   core.DefaultOptions(),
		"test":      testOptions(),
		"maxonchip": func() core.Options { o := testOptions(); o.MaxOnChip = 128; return o }(),
		"tiny": {
			CacheSizes: []int{16, 32},
			LineSizes:  []int{4, 8},
			Assocs:     []int{1, 2},
			Tilings:    []int{1},
		},
	} {
		space, err := NewSpace(opts)
		if err != nil {
			t.Fatalf("%s: NewSpace: %v", name, err)
		}
		enum := opts.Normalize().Space()
		if space.Points() != len(enum) {
			t.Errorf("%s: Points() = %d, want %d (core enumeration)", name, space.Points(), len(enum))
		}
		// Every enumerated point round-trips through Encode/Decode and is
		// a fixed point of Repair.
		for _, p := range enum {
			g, ok := space.Encode(p)
			if !ok {
				t.Fatalf("%s: Encode(%+v) not found", name, p)
			}
			if !space.Legal(g) {
				t.Fatalf("%s: Encode(%+v) = %v not legal", name, p, g)
			}
			if got := space.Decode(g); got != p {
				t.Fatalf("%s: Decode(Encode(%+v)) = %+v", name, p, got)
			}
			if rep := space.Repair(g); rep != g {
				t.Fatalf("%s: Repair(%v) = %v, want unchanged for a legal genome", name, g, rep)
			}
		}
	}
}

func TestNewSpaceRejectsEmptySpace(t *testing.T) {
	opts := core.Options{
		CacheSizes: []int{16},
		LineSizes:  []int{16, 32}, // every L ≥ T
		Assocs:     []int{1},
		Tilings:    []int{1},
	}
	if _, err := NewSpace(opts); err == nil {
		t.Fatal("NewSpace accepted options with no legal configuration")
	}
	opts.MaxOnChip = 8 // prunes every cache size
	opts.LineSizes = []int{4}
	if _, err := NewSpace(opts); err == nil {
		t.Fatal("NewSpace accepted options whose MaxOnChip prunes every size")
	}
}

func TestRepairAllVectors(t *testing.T) {
	space, err := NewSpace(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every in-range gene vector — legal or not — must repair to a legal
	// genome, and repair must be idempotent.
	var g Genome
	for g[0] = 0; g[0] < len(space.dims[0]); g[0]++ {
		for g[1] = 0; g[1] < len(space.dims[1]); g[1]++ {
			for g[2] = 0; g[2] < len(space.dims[2]); g[2]++ {
				for g[3] = 0; g[3] < len(space.dims[3]); g[3]++ {
					rep := space.Repair(g)
					if !space.Legal(rep) {
						t.Fatalf("Repair(%v) = %v not legal", g, rep)
					}
					if again := space.Repair(rep); again != rep {
						t.Fatalf("Repair not idempotent: %v -> %v -> %v", g, rep, again)
					}
				}
			}
		}
	}
	// Out-of-range indices clamp first.
	for _, g := range []Genome{
		{-5, -5, -5, -5},
		{999, 999, 999, 999},
		{-1, 999, -1, 999},
	} {
		if rep := space.Repair(g); !space.Legal(rep) {
			t.Errorf("Repair(%v) = %v not legal", g, rep)
		}
	}
}

func TestRepairPrefersNearbyCacheSize(t *testing.T) {
	space, err := NewSpace(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// T=16, L=64 is illegal (L ≥ T). Repair keeps T where possible by
	// shrinking L first: the cascade grows T only when no line size works.
	g := Genome{0, 4, 0, 0} // T=16, L=64, S=1, B=1
	rep := space.Repair(g)
	if p := space.Decode(rep); p.CacheSize != 16 {
		t.Errorf("Repair(%v) moved cache size to %d, want 16 kept with a smaller line", g, p.CacheSize)
	}
}

func TestOperatorsStayInRange(t *testing.T) {
	space, err := NewSpace(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		a, b := space.randomGenome(r), space.randomGenome(r)
		if !space.Legal(a) || !space.Legal(b) {
			t.Fatalf("randomGenome produced illegal genome: %v %v", a, b)
		}
		c, d := crossover(r, a, b)
		for _, g := range []Genome{c, d} {
			m := space.Repair(space.mutate(r, g, 0.5))
			if !space.Legal(m) {
				t.Fatalf("mutate+Repair produced illegal genome %v", m)
			}
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("identical seeds diverged")
		}
	}
	if newRNG(1).next() == newRNG(2).next() {
		t.Fatal("different seeds collided on first draw")
	}
	f := newRNG(3).float64()
	if f < 0 || f >= 1 {
		t.Fatalf("float64() = %g out of [0, 1)", f)
	}
}

// FuzzGenome feeds arbitrary gene vectors (well out of range) through the
// repair/encode/decode cycle: Repair must never panic and must always
// yield a legal genome that round-trips through the point encoding.
func FuzzGenome(f *testing.F) {
	space, err := NewSpace(testOptions())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(0, 0, 0, 0)
	f.Add(-1, 99, 3, -7)
	f.Add(1<<30, -(1 << 30), 2, 5)
	f.Fuzz(func(t *testing.T, a, b, c, d int) {
		g := Genome{a, b, c, d}
		rep := space.Repair(g)
		if !space.Legal(rep) {
			t.Fatalf("Repair(%v) = %v not legal", g, rep)
		}
		p := space.Decode(rep)
		back, ok := space.Encode(p)
		if !ok || back != rep {
			t.Fatalf("Encode(Decode(%v)) = %v ok=%v, want round-trip", rep, back, ok)
		}
		if again := space.Repair(rep); again != rep {
			t.Fatalf("Repair not idempotent on %v", rep)
		}
	})
}
