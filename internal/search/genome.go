package search

// Genome encoding. A genome is a vector of gene indices, one per search
// dimension, each indexing into that dimension's ascending candidate
// list from the sweep options. Index encoding (rather than raw values)
// keeps every bit pattern meaningful after clamping, makes ±1 creep
// mutation a move to the adjacent candidate, and leaves room for future
// dimensions (hierarchy levels, cell technology) as appended genes.
//
// Not every gene vector decodes to a legal sweep point — the paper's
// constraints (L < T, S ≤ T/L, B ≤ T/L) couple the dimensions — so the
// operators always pass their output through Repair, a deterministic
// cascade that maps any vector to a nearby legal genome.

import (
	"memexplore/internal/core"
)

// Gene positions of a genome. The order is part of the encoding: new
// dimensions append here.
const (
	dimCacheSize = iota
	dimLineSize
	dimAssoc
	dimTiling
	numDims
)

// Genome is one candidate configuration, encoded as gene indices into
// the space's per-dimension candidate lists.
type Genome [numDims]int

// Space is the gene domain built from normalized sweep options: the
// per-dimension candidate values, the legal-point count, and the repair
// fallback. Build with NewSpace; the zero value is not useful.
type Space struct {
	dims   [numDims][]int
	points int
	first  Genome // first legal genome in Space() order, the repair fallback
}

// NewSpace builds the search space for a sweep's options. The options
// are normalized first (candidate lists sorted and deduped), MaxOnChip
// prunes the cache-size dimension up front, and options that admit no
// legal configuration are rejected.
func NewSpace(opts core.Options) (*Space, error) {
	opts = opts.Normalize()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	sizes := opts.CacheSizes
	if opts.MaxOnChip > 0 {
		sizes = nil
		for _, t := range opts.CacheSizes {
			if t <= opts.MaxOnChip {
				sizes = append(sizes, t)
			}
		}
	}
	s := &Space{}
	s.dims[dimCacheSize] = sizes
	s.dims[dimLineSize] = opts.LineSizes
	s.dims[dimAssoc] = opts.Assocs
	s.dims[dimTiling] = opts.Tilings
	// Count the legal points and find the first legal genome in one scan
	// (iteration order matches core.Options.Space). The candidate lists
	// are ascending, so the legal S and B values for a (T, L) pair are a
	// prefix of their lists.
	found := false
	for ti, t := range s.dims[dimCacheSize] {
		for li, l := range s.dims[dimLineSize] {
			if l >= t {
				continue
			}
			sCnt := prefixWithin(s.dims[dimAssoc], t/l)
			bCnt := prefixWithin(s.dims[dimTiling], t/l)
			if sCnt == 0 || bCnt == 0 {
				continue
			}
			s.points += sCnt * bCnt
			if !found {
				s.first = Genome{ti, li, 0, 0}
				found = true
			}
		}
	}
	if !found {
		return nil, invalid("options", "the options admit no legal (T, L, S, B) configuration")
	}
	return s, nil
}

// prefixWithin returns how many leading values of the ascending list are
// ≤ max.
func prefixWithin(vals []int, max int) int {
	n := 0
	for _, v := range vals {
		if v > max {
			break
		}
		n++
	}
	return n
}

// Points returns the number of legal configurations in the space — what
// an exhaustive sweep would evaluate.
func (s *Space) Points() int { return s.points }

// Decode maps an in-range genome to its configuration point.
func (s *Space) Decode(g Genome) core.ConfigPoint {
	return core.ConfigPoint{
		CacheSize: s.dims[dimCacheSize][g[dimCacheSize]],
		LineSize:  s.dims[dimLineSize][g[dimLineSize]],
		Assoc:     s.dims[dimAssoc][g[dimAssoc]],
		Tiling:    s.dims[dimTiling][g[dimTiling]],
	}
}

// Encode maps a configuration point back to its genome; ok is false when
// a value is not a candidate of its dimension.
func (s *Space) Encode(p core.ConfigPoint) (Genome, bool) {
	var g Genome
	for d, v := range [numDims]int{p.CacheSize, p.LineSize, p.Assoc, p.Tiling} {
		i := indexOf(s.dims[d], v)
		if i < 0 {
			return Genome{}, false
		}
		g[d] = i
	}
	return g, true
}

func indexOf(vals []int, v int) int {
	for i, x := range vals {
		if x == v {
			return i
		}
	}
	return -1
}

// Legal reports whether the genome is in range and decodes to a point
// satisfying the sweep constraints.
func (s *Space) Legal(g Genome) bool {
	for d := 0; d < numDims; d++ {
		if g[d] < 0 || g[d] >= len(s.dims[d]) {
			return false
		}
	}
	p := s.Decode(g)
	return p.LineSize < p.CacheSize &&
		p.Assoc <= p.CacheSize/p.LineSize &&
		p.Tiling <= p.CacheSize/p.LineSize
}

// Repair maps an arbitrary gene vector to a nearby legal genome,
// deterministically: indices are clamped into range, then the cache size
// is grown (wrapping to the small sizes only when no larger one works,
// since every constraint relaxes as T grows) and the line size shrunk
// (wrapping to larger lines last) until the pair admits the point, with
// the associativity and tiling genes clamped down to the largest
// candidate within T/L. The result depends only on the input genome —
// never on evaluation order or randomness — so repair composes with the
// seeded operators without breaking reproducibility.
func (s *Space) Repair(g Genome) Genome {
	for d := 0; d < numDims; d++ {
		g[d] = clampIndex(g[d], len(s.dims[d]))
	}
	nT := len(s.dims[dimCacheSize])
	nL := len(s.dims[dimLineSize])
	for dt := 0; dt < nT; dt++ {
		ti := g[dimCacheSize] + dt
		if ti >= nT {
			ti -= nT
		}
		t := s.dims[dimCacheSize][ti]
		for dl := 0; dl < nL; dl++ {
			li := g[dimLineSize] - dl
			if li < 0 {
				li += nL
			}
			l := s.dims[dimLineSize][li]
			if l >= t {
				continue
			}
			si, ok := largestWithin(s.dims[dimAssoc], g[dimAssoc], t/l)
			if !ok {
				continue
			}
			bi, ok := largestWithin(s.dims[dimTiling], g[dimTiling], t/l)
			if !ok {
				continue
			}
			return Genome{ti, li, si, bi}
		}
	}
	// Unreachable for a space NewSpace accepted, but keep a total function.
	return s.first
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// largestWithin returns the largest index ≤ from whose (ascending) value
// is ≤ max; ok is false when even the smallest candidate exceeds max.
func largestWithin(vals []int, from, max int) (int, bool) {
	i := from
	if i >= len(vals) {
		i = len(vals) - 1
	}
	for i >= 0 && vals[i] > max {
		i--
	}
	if i < 0 {
		return 0, false
	}
	return i, true
}

// randomGenome draws a uniform gene vector and repairs it.
func (s *Space) randomGenome(r *rng) Genome {
	var g Genome
	for d := 0; d < numDims; d++ {
		g[d] = r.intn(len(s.dims[d]))
	}
	return s.Repair(g)
}

// crossover performs uniform crossover: each gene swaps between the two
// children with probability 1/2.
func crossover(r *rng, a, b Genome) (Genome, Genome) {
	for d := 0; d < numDims; d++ {
		if r.intn(2) == 1 {
			a[d], b[d] = b[d], a[d]
		}
	}
	return a, b
}

// mutate perturbs genes: with probability rate per gene, a coin flip
// picks a ±1 creep (exploiting the ordered dimensions) or a uniform
// reset. The caller repairs the result.
func (s *Space) mutate(r *rng, g Genome, rate float64) Genome {
	for d := 0; d < numDims; d++ {
		if len(s.dims[d]) < 2 || r.float64() >= rate {
			continue
		}
		if r.intn(2) == 0 {
			if r.intn(2) == 0 {
				g[d]++
			} else {
				g[d]--
			}
		} else {
			g[d] = r.intn(len(s.dims[d]))
		}
	}
	return g
}
