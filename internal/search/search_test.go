package search

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"memexplore/internal/core"
	"memexplore/internal/extrace"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
)

func searchOpts(seed uint64) Options {
	return Options{Seed: seed, PopSize: 12}
}

// TestKernelDeterministicAcrossWorkers is the acceptance criterion: the
// same seed, budget, and workload must give byte-identical results at any
// inner worker count.
func TestKernelDeterministicAcrossWorkers(t *testing.T) {
	n := kernels.Compress()
	opts := testOptions()
	budget := Budget{MaxGenerations: 4}
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		res, err := Kernel(context.Background(), n, opts, searchOpts(42), budget, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d result differs:\n  %s\nvs\n  %s", workers, got, want)
		}
	}
	// And re-running with the same seed replays the identical run.
	res, err := Kernel(context.Background(), n, opts, searchOpts(42), budget, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(res)
	if !bytes.Equal(got, want) {
		t.Fatal("re-run with identical seed diverged")
	}
}

func TestKernelSeedChangesRun(t *testing.T) {
	n := kernels.Compress()
	a, err := Kernel(context.Background(), n, testOptions(), searchOpts(1), Budget{MaxGenerations: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Kernel(context.Background(), n, testOptions(), searchOpts(2), Budget{MaxGenerations: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The archives may coincide on a tiny space, but the evaluation
	// trajectories should not be identical in both count and memo hits.
	if a.Evaluations == b.Evaluations && a.MemoHits == b.MemoHits && a.Generations == b.Generations {
		am, _ := json.Marshal(a.Archive)
		bm, _ := json.Marshal(b.Archive)
		if bytes.Equal(am, bm) && a.Evaluations == b.Evaluations {
			t.Log("seeds 1 and 2 happened to coincide; not failing, but suspicious")
		}
	}
}

func TestBudgetStopReasons(t *testing.T) {
	n := kernels.Compress()

	res, err := Kernel(context.Background(), n, testOptions(), searchOpts(3), Budget{MaxGenerations: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 3 || res.Stopped != StopMaxGenerations {
		t.Errorf("generations bound: got %d generations, stopped=%q", res.Generations, res.Stopped)
	}

	res, err = Kernel(context.Background(), n, testOptions(), searchOpts(3), Budget{MaxEvaluations: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopMaxEvaluations && res.Stopped != StopSpaceExhausted {
		t.Errorf("evaluations bound: stopped=%q", res.Stopped)
	}
	if res.Evaluations < 30 && res.Stopped == StopMaxEvaluations {
		t.Errorf("stopped on evaluations with only %d < 30", res.Evaluations)
	}

	// A space small enough to exhaust.
	tiny := core.Options{
		CacheSizes: []int{32, 64},
		LineSizes:  []int{4, 8},
		Assocs:     []int{1, 2},
		Tilings:    []int{1, 2},
	}
	res, err = Kernel(context.Background(), n, tiny, searchOpts(3), Budget{MaxGenerations: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopSpaceExhausted {
		t.Fatalf("tiny space: stopped=%q, want %q", res.Stopped, StopSpaceExhausted)
	}
	if res.Evaluations != res.SpacePoints {
		t.Errorf("exhausted space evaluated %d of %d points", res.Evaluations, res.SpacePoints)
	}
	// An exhausted search's archive IS the exhaustive frontier.
	exhaustive, err := core.Explore(n, tiny.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	want := core.ParetoFrontier(exhaustive)
	if len(res.Archive) != len(want) {
		t.Fatalf("archive has %d points, exhaustive frontier %d", len(res.Archive), len(want))
	}
	for i := range want {
		if res.Archive[i] != want[i] {
			t.Errorf("archive[%d] = %+v, want %+v", i, res.Archive[i], want[i])
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	n := kernels.Compress()
	var ie *InvalidError

	_, err := Kernel(context.Background(), n, testOptions(), searchOpts(0), Budget{}, 0)
	if !errors.As(err, &ie) || ie.Field != "budget" {
		t.Errorf("empty budget: err = %v, want InvalidError{budget}", err)
	}

	_, err = Kernel(context.Background(), n, testOptions(), searchOpts(0), Budget{MaxEvaluations: -1}, 0)
	if !errors.As(err, &ie) || ie.Field != "budget" {
		t.Errorf("negative budget: err = %v, want InvalidError{budget}", err)
	}

	_, err = Kernel(context.Background(), n, testOptions(), Options{PopSize: 1}, Budget{MaxGenerations: 1}, 0)
	if !errors.As(err, &ie) || ie.Field != "search.pop_size" {
		t.Errorf("pop size 1: err = %v, want InvalidError{search.pop_size}", err)
	}

	_, err = Kernel(context.Background(), n, testOptions(), Options{PopSize: 2, MutationRate: 1.5}, Budget{MaxGenerations: 1}, 0)
	if !errors.As(err, &ie) || ie.Field != "search.mutation_rate" {
		t.Errorf("mutation rate 1.5: err = %v, want InvalidError{search.mutation_rate}", err)
	}

	bad := core.Options{CacheSizes: []int{16}, LineSizes: []int{32}, Assocs: []int{1}, Tilings: []int{1}}
	if _, err := Kernel(context.Background(), n, bad, searchOpts(0), Budget{MaxGenerations: 1}, 0); err == nil {
		t.Error("empty space accepted")
	}
}

func TestKernelCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Kernel(ctx, kernels.Compress(), testOptions(), searchOpts(0), Budget{MaxGenerations: 2}, 0)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestTraceSearchMatchesKernel runs the trace-backed search over an
// exported kernel trace and checks it agrees with the kernel search on
// the same pinned (tiling 1, no layout) space.
func TestTraceSearchMatchesKernel(t *testing.T) {
	n := kernels.Compress()
	tiled, err := loopir.TileAll(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tiled.Generate(loopir.SequentialLayout(tiled, 0))
	if err != nil {
		t.Fatal(err)
	}
	var din bytes.Buffer
	if _, err := extrace.WriteDin(&din, tr.Reader()); err != nil {
		t.Fatal(err)
	}

	opts := testOptions()
	budget := Budget{MaxGenerations: 3}
	res, st, err := Trace(context.Background(), bytes.NewReader(din.Bytes()), opts, extrace.Options{}, searchOpts(9), budget)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != int64(tr.Len()) {
		t.Errorf("ingested %d records, trace has %d", st.Records, tr.Len())
	}

	kopts := opts
	kopts.Tilings = []int{1}
	kopts.OptimizeLayout = false
	want, err := Kernel(context.Background(), n, kopts, searchOpts(9), budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(res)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(got, wantB) {
		t.Fatalf("trace search differs from kernel search:\n  trace : %s\n  kernel: %s", got, wantB)
	}
}

// TestSearchBeatsRandomSampling is the acceptance property: on a space of
// at least 10k points, the evolved archive dominates pure random sampling
// at equal evaluation budget — its hypervolume is no smaller, and no
// randomly sampled point dominates any archive point.
func TestSearchBeatsRandomSampling(t *testing.T) {
	n := kernels.Compress()
	opts := core.Options{
		CacheSizes: []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
			16384, 32768, 65536, 131072, 262144},
		LineSizes: []int{4, 8, 16, 32, 64, 128, 256},
		Assocs:    []int{1, 2, 4, 8},
		Tilings: func() []int {
			var b []int
			for i := 1; i <= 64; i++ {
				b = append(b, i)
			}
			return b
		}(),
		OptimizeLayout: false,
	}
	space, err := NewSpace(opts)
	if err != nil {
		t.Fatal(err)
	}
	if space.Points() < 10000 {
		t.Fatalf("space has %d points, the property needs ≥ 10000", space.Points())
	}

	budget := Budget{MaxEvaluations: 1500}
	res, err := Kernel(context.Background(), n, opts, Options{Seed: 17, PopSize: 16}, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations >= space.Points() {
		t.Fatalf("search exhausted the space (%d evaluations); the comparison needs a partial sweep", res.Evaluations)
	}

	// Ground truth: the exhaustive sweep, from which random sampling draws
	// without replacement at the search's actual evaluation count.
	all, err := core.ExploreParallel(n, opts.Normalize(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != space.Points() {
		t.Fatalf("exhaustive sweep has %d points, space %d", len(all), space.Points())
	}
	r := newRNG(99)
	perm := make([]int, len(all))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	random := make([]core.Metrics, res.Evaluations)
	for i := range random {
		random[i] = all[perm[i]]
	}

	// Shared reference point: strictly beyond every point either strategy saw.
	refC, refE := 0.0, 0.0
	for _, m := range append(append([]core.Metrics(nil), res.Archive...), random...) {
		if m.Cycles > refC {
			refC = m.Cycles
		}
		if m.EnergyNJ > refE {
			refE = m.EnergyNJ
		}
	}
	refC, refE = refC*1.01+1, refE*1.01+1

	hvSearch := Hypervolume(res.Archive, refC, refE)
	hvRandom := Hypervolume(random, refC, refE)
	if hvSearch < hvRandom {
		t.Errorf("search hypervolume %.6g < random %.6g at %d evaluations",
			hvSearch, hvRandom, res.Evaluations)
	}
	for _, rm := range random {
		for _, am := range res.Archive {
			if core.Dominates(rm, am) {
				t.Errorf("random point %+v dominates archive point %+v", rm, am)
			}
		}
	}
	t.Logf("space=%d evals=%d gens=%d memoHits=%d hv(search)=%.6g hv(random)=%.6g archive=%d",
		space.Points(), res.Evaluations, res.Generations, res.MemoHits,
		hvSearch, hvRandom, len(res.Archive))
}

func TestOptionsNormalizeValidate(t *testing.T) {
	o := Options{}.Normalize()
	d := DefaultOptions()
	if o != d {
		t.Errorf("Normalize(zero) = %+v, want %+v", o, d)
	}
	if err := o.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	o = Options{Seed: 7, PopSize: 8, CrossoverRate: 0.5, MutationRate: 0.1}
	if got := o.Normalize(); got != o {
		t.Errorf("Normalize clobbered explicit fields: %+v", got)
	}
}
