// Package search implements a budgeted, reproducible NSGA-II
// multi-objective search over the MemExplore configuration space — the
// layer that takes over when hierarchy, technology, and tiling multiply
// the (T, L, S, B) space past what exhaustive sweeps can enumerate
// (Díaz Álvarez et al., arXiv 2302.11236; grammatical-evolution cache
// genomes, arXiv 2303.03338).
//
// Configurations are genomes — integer gene vectors indexing the sweep
// options' candidate lists, with a deterministic validity repair (see
// genome.go). Each generation's population is batch-evaluated through
// one core sweep call per (line size, tiling) group, unioning cache
// sizes and associativities within the group, so the inclusion engine
// amortizes Mattson stack passes across individuals, and a content-keyed
// memo makes revisited genomes free. Non-dominated
// sorting and crowding distance (nsga.go) drive selection; the final
// archive is the Pareto frontier over every point ever evaluated.
//
// Reproducibility is load-bearing: Options.Seed feeds a splitmix64
// generator, every tie anywhere breaks by index, and the evaluated-
// points list is kept in deterministic append order — so identical
// (workload, options, search options, budget) inputs yield bit-identical
// archives at any worker count. The one documented exception is
// Budget.WallClock, which stops the run by machine speed.
package search

import (
	"context"
	"fmt"
	"io"
	"time"

	"memexplore/internal/core"
	"memexplore/internal/extrace"
	"memexplore/internal/loopir"
)

// InvalidError reports invalid search parameters with the offending wire
// field named, mirroring core.ErrInvalidOptions so the service maps it
// onto the uniform error envelope. Retrieve it with errors.As.
type InvalidError struct {
	Field  string
	Reason string
}

func (e *InvalidError) Error() string {
	return fmt.Sprintf("search: invalid %s: %s", e.Field, e.Reason)
}

func invalid(field, format string, args ...any) *InvalidError {
	return &InvalidError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Options parameterizes the evolutionary operators. The zero value is
// usable: Normalize fills every unset field with its default, and seed 0
// is a valid (and the default) seed.
type Options struct {
	// Seed drives the splitmix64 generator behind every stochastic
	// choice. Identical seeds — with identical workload, sweep options,
	// and budget — give bit-identical archives at any worker count.
	Seed uint64 `json:"seed"`
	// PopSize is the population size (default 24, minimum 2).
	PopSize int `json:"pop_size,omitempty"`
	// CrossoverRate is the per-pair uniform-crossover probability
	// (default 0.9).
	CrossoverRate float64 `json:"crossover_rate,omitempty"`
	// MutationRate is the per-gene mutation probability (default 0.25).
	MutationRate float64 `json:"mutation_rate,omitempty"`
}

// DefaultOptions returns the default operator parameters.
func DefaultOptions() Options {
	return Options{PopSize: 24, CrossoverRate: 0.9, MutationRate: 0.25}
}

// Normalize fills unset (zero) fields from DefaultOptions. To all but
// disable an operator, set a tiny positive rate.
func (o Options) Normalize() Options {
	d := DefaultOptions()
	if o.PopSize == 0 {
		o.PopSize = d.PopSize
	}
	if o.CrossoverRate == 0 {
		o.CrossoverRate = d.CrossoverRate
	}
	if o.MutationRate == 0 {
		o.MutationRate = d.MutationRate
	}
	return o
}

// Validate checks the (normalized) options.
func (o Options) Validate() error {
	if o.PopSize < 2 || o.PopSize > 4096 {
		return invalid("search.pop_size", "population size %d must be in [2, 4096]", o.PopSize)
	}
	if !(o.CrossoverRate >= 0 && o.CrossoverRate <= 1) {
		return invalid("search.crossover_rate", "crossover rate %g must be in [0, 1]", o.CrossoverRate)
	}
	if !(o.MutationRate >= 0 && o.MutationRate <= 1) {
		return invalid("search.mutation_rate", "mutation rate %g must be in [0, 1]", o.MutationRate)
	}
	return nil
}

// Budget bounds a search run; at least one bound must be set. Bounds
// are checked at generation boundaries, so MaxEvaluations may overshoot
// by up to one generation's batch — the overshoot is reported honestly
// in Result.Evaluations, and the property tests compare against random
// sampling at that actual count.
type Budget struct {
	// MaxEvaluations stops the run once this many distinct configuration
	// points have been simulated (0 = unbounded).
	MaxEvaluations int `json:"max_evaluations,omitempty"`
	// MaxGenerations stops the run after this many offspring generations
	// (0 = unbounded). The initial population is generation 0 and always
	// evaluates.
	MaxGenerations int `json:"max_generations,omitempty"`
	// WallClock stops the run once it has run this long (0 = unbounded).
	// A wall-clock bound trades away reproducibility: where the run
	// stops depends on machine speed, so bit-identical archives are
	// guaranteed only for runs bounded by evaluations/generations alone.
	WallClock time.Duration `json:"-"`
}

// Validate checks that the budget actually bounds the run.
func (b Budget) Validate() error {
	if b.MaxEvaluations < 0 || b.MaxGenerations < 0 || b.WallClock < 0 {
		return invalid("budget", "budget bounds must be non-negative")
	}
	if b.MaxEvaluations == 0 && b.MaxGenerations == 0 && b.WallClock == 0 {
		return invalid("budget", "set at least one of max_evaluations, max_generations, wall_clock_ms")
	}
	return nil
}

// Stop reasons reported in Result.Stopped.
const (
	StopMaxEvaluations = "max_evaluations"
	StopMaxGenerations = "max_generations"
	StopWallClock      = "wall_clock"
	StopSpaceExhausted = "space_exhausted"
)

// Result is a finished search run. The JSON tags are the wire form
// embedded in the service's /v1/search response.
type Result struct {
	// Archive is the Pareto frontier over every evaluated point, in
	// increasing-cycles order (core.ParetoFrontier).
	Archive []core.Metrics `json:"archive"`
	// Evaluations counts the distinct configuration points simulated —
	// including cross-product closure points the batched engine threw in
	// for free.
	Evaluations int `json:"evaluations"`
	// MemoHits counts population slots answered by the memo without
	// touching an engine.
	MemoHits int `json:"memo_hits"`
	// Generations is the number of offspring generations retired.
	Generations int `json:"generations"`
	// SpacePoints is the size of the full configuration space — what an
	// exhaustive sweep would have evaluated.
	SpacePoints int `json:"space_points"`
	// Stopped names the exhausted budget dimension (the Stop* constants).
	Stopped string `json:"stopped"`
}

// Kernel runs the search for a generated-kernel workload. workers is the
// inner sweep's worker count (0 = GOMAXPROCS); the archive is
// bit-identical at any value.
func Kernel(ctx context.Context, n *loopir.Nest, opts core.Options, sopts Options, budget Budget, workers int) (Result, error) {
	opts = opts.Normalize()
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := n.Validate(); err != nil {
		return Result{}, err
	}
	space, err := NewSpace(opts)
	if err != nil {
		return Result{}, err
	}
	return run(ctx, space, &kernelEvaluator{nest: n, opts: opts, workers: workers}, sopts, budget)
}

// Trace runs the search over a recorded trace. The source must be
// seekable: each generation rewinds it and streams it once through the
// trace sweep. Tiling and layout optimization are generation-time
// transforms that do not apply to recorded traces, so the tiling
// dimension pins to 1 — the genome degenerates to (T, L, S).
func Trace(ctx context.Context, src io.ReadSeeker, opts core.Options, ing extrace.Options, sopts Options, budget Budget) (Result, extrace.IngestStats, error) {
	opts = opts.Normalize()
	opts.Tilings = []int{1}
	opts.OptimizeLayout = false
	if err := opts.Validate(); err != nil {
		return Result{}, extrace.IngestStats{}, err
	}
	space, err := NewSpace(opts)
	if err != nil {
		return Result{}, extrace.IngestStats{}, err
	}
	ev := &traceEvaluator{src: src, opts: opts, ing: ing}
	res, err := run(ctx, space, ev, sopts, budget)
	return res, ev.stats, err
}

// run is the NSGA-II loop shared by Kernel and Trace.
func run(ctx context.Context, space *Space, ev evaluator, sopts Options, budget Budget) (Result, error) {
	sopts = sopts.Normalize()
	if err := sopts.Validate(); err != nil {
		return Result{}, err
	}
	if err := budget.Validate(); err != nil {
		return Result{}, err
	}
	var deadline time.Time
	if budget.WallClock > 0 {
		deadline = time.Now().Add(budget.WallClock)
	}
	r := newRNG(sopts.Seed)
	mem := newMemo()
	progress := core.ProgressFromContext(ctx)
	res := Result{SpacePoints: space.Points()}

	// evalPop scores a population slice through the memo. Un-memoized
	// points are batched by (line size, tiling) — the dimensions that
	// define an engine pass — so each evaluator call amortizes its Mattson
	// stack passes across every individual in the group, and the absorbed
	// (T, S) cross-product closure contains only points those same passes
	// produced anyway. One progress event per call = one event per
	// generation retirement.
	evalPop := func(inds []individual) error {
		var order [][2]int
		groups := map[[2]int][]core.ConfigPoint{}
		seen := map[core.ConfigPoint]bool{}
		for _, ind := range inds {
			p := space.Decode(ind.genome)
			if _, ok := mem.get(p); ok {
				res.MemoHits++
				continue
			}
			if seen[p] {
				continue
			}
			seen[p] = true
			k := [2]int{p.LineSize, p.Tiling}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], p)
		}
		fresh := 0
		for _, k := range order {
			ms, err := ev.evaluate(ctx, groups[k])
			if err != nil {
				return err
			}
			fresh += mem.absorb(ms)
		}
		for i := range inds {
			m, ok := mem.get(space.Decode(inds[i].genome))
			if !ok {
				return fmt.Errorf("search: engine returned no metrics for %+v", space.Decode(inds[i].genome))
			}
			inds[i].metrics = m
		}
		res.Evaluations = mem.size()
		if progress != nil {
			progress(core.ProgressEvent{Points: int64(fresh), PassUnits: 1})
		}
		return nil
	}

	// Generation 0: a uniformly drawn (repaired) population.
	pop := make([]individual, sopts.PopSize)
	for i := range pop {
		pop[i] = individual{genome: space.randomGenome(r)}
	}
	if err := evalPop(pop); err != nil {
		return Result{}, err
	}

	for {
		switch {
		case budget.MaxEvaluations > 0 && res.Evaluations >= budget.MaxEvaluations:
			res.Stopped = StopMaxEvaluations
		case budget.MaxGenerations > 0 && res.Generations >= budget.MaxGenerations:
			res.Stopped = StopMaxGenerations
		case budget.WallClock > 0 && !time.Now().Before(deadline):
			res.Stopped = StopWallClock
		case res.Evaluations >= space.Points():
			res.Stopped = StopSpaceExhausted
		}
		if res.Stopped != "" {
			break
		}
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("%w: %w", core.ErrCanceled, err)
		}
		sortFronts(pop)
		offspring := make([]individual, 0, sopts.PopSize)
		for len(offspring) < sopts.PopSize {
			a := pop[tournament(r, pop)].genome
			b := pop[tournament(r, pop)].genome
			if r.float64() < sopts.CrossoverRate {
				a, b = crossover(r, a, b)
			}
			offspring = append(offspring, individual{genome: space.Repair(space.mutate(r, a, sopts.MutationRate))})
			if len(offspring) < sopts.PopSize {
				offspring = append(offspring, individual{genome: space.Repair(space.mutate(r, b, sopts.MutationRate))})
			}
		}
		if err := evalPop(offspring); err != nil {
			return Result{}, err
		}
		pop = environmental(append(pop, offspring...), sopts.PopSize)
		res.Generations++
	}
	res.Archive = core.ParetoFrontier(mem.order)
	return res, nil
}
