package search

// Batch evaluation with a content-keyed memo. Each generation's
// un-memoized genomes are decoded and handed to the evaluator in one
// core sweep call per (line size, tiling) group, with the cache-size and
// associativity candidate lists unioned across the group — the inclusion
// engine then amortizes its Mattson stack passes across every individual
// in the group, and every point of the (T, S) cross-product those passes
// produce lands in the memo, so revisited and adjacent genomes cost
// nothing in later generations. Grouping by the pass-defining dimensions
// keeps the absorbed closure honest: it never contains points whose
// simulation the requested ones didn't already pay for.

import (
	"context"
	"io"
	"sort"

	"memexplore/internal/core"
	"memexplore/internal/extrace"
	"memexplore/internal/loopir"
)

// evaluator scores a batch of distinct configuration points sharing one
// (line size, tiling) pair. It must return metrics for at least the
// requested points and may return a superset (the union cross-product);
// the memo absorbs everything.
type evaluator interface {
	evaluate(ctx context.Context, points []core.ConfigPoint) ([]core.Metrics, error)
}

// unionOptions narrows the sweep options to the union of the batch's
// candidate values, so one engine call covers exactly what the
// generation needs plus the cross-product closure.
func unionOptions(base core.Options, points []core.ConfigPoint) core.Options {
	u := base
	u.CacheSizes = uniqueDim(points, func(p core.ConfigPoint) int { return p.CacheSize })
	u.LineSizes = uniqueDim(points, func(p core.ConfigPoint) int { return p.LineSize })
	u.Assocs = uniqueDim(points, func(p core.ConfigPoint) int { return p.Assoc })
	u.Tilings = uniqueDim(points, func(p core.ConfigPoint) int { return p.Tiling })
	return u
}

func uniqueDim(points []core.ConfigPoint, get func(core.ConfigPoint) int) []int {
	seen := make(map[int]bool, len(points))
	out := make([]int, 0, len(points))
	for _, p := range points {
		if v := get(p); !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// kernelEvaluator batch-evaluates generated-kernel workloads through
// core.ExploreParallelContext. Results are bit-identical at any worker
// count, so workers does not affect the archive.
type kernelEvaluator struct {
	nest    *loopir.Nest
	opts    core.Options
	workers int
}

func (e *kernelEvaluator) evaluate(ctx context.Context, points []core.ConfigPoint) ([]core.Metrics, error) {
	// The inner sweep is silenced (nil progress): the run loop emits one
	// event per generation retirement instead, so job progress counts
	// evaluations and generations, not engine pass units.
	return core.ExploreParallelContext(core.WithProgress(ctx, nil), e.nest, unionOptions(e.opts, points), e.workers)
}

// traceEvaluator batch-evaluates a recorded trace by rewinding the
// seekable source and streaming it through core.ExploreTraceReader once
// per generation. The first pass's ingest profile is kept for the
// caller; later passes see the identical stream.
type traceEvaluator struct {
	src      io.ReadSeeker
	opts     core.Options
	ing      extrace.Options
	stats    extrace.IngestStats
	profiled bool
}

func (e *traceEvaluator) evaluate(ctx context.Context, points []core.ConfigPoint) ([]core.Metrics, error) {
	if _, err := e.src.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	ms, st, err := core.ExploreTraceReader(core.WithProgress(ctx, nil), e.src, unionOptions(e.opts, points), e.ing)
	if err != nil {
		return nil, err
	}
	if !e.profiled {
		e.stats, e.profiled = st, true
	}
	return ms, nil
}

// memo is the content-keyed evaluation store: every metrics value the
// evaluator ever returned, keyed by configuration point, plus the
// deterministic append-order list the final archive is built from (the
// map is never iterated).
type memo struct {
	byPoint map[core.ConfigPoint]core.Metrics
	order   []core.Metrics
}

func newMemo() *memo {
	return &memo{byPoint: map[core.ConfigPoint]core.Metrics{}}
}

func (m *memo) get(p core.ConfigPoint) (core.Metrics, bool) {
	mt, ok := m.byPoint[p]
	return mt, ok
}

// absorb records a sweep's results in their (deterministic) engine
// order, returning how many points were new.
func (m *memo) absorb(ms []core.Metrics) int {
	fresh := 0
	for _, mt := range ms {
		p := core.ConfigPoint{CacheSize: mt.CacheSize, LineSize: mt.LineSize, Assoc: mt.Assoc, Tiling: mt.Tiling}
		if _, ok := m.byPoint[p]; ok {
			continue
		}
		m.byPoint[p] = mt
		m.order = append(m.order, mt)
		fresh++
	}
	return fresh
}

func (m *memo) size() int { return len(m.byPoint) }
