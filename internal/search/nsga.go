package search

// NSGA-II machinery: fast non-dominated sorting, crowding distance, the
// crowded-comparison tournament, and the elitist environmental selection
// the run loop uses. Every tie breaks by slice index, so selection
// depends only on the seeded operator randomness — never on map order or
// sort instability — which is what makes archives bit-identical across
// runs and worker counts.

import (
	"math"
	"sort"

	"memexplore/internal/core"
)

// individual pairs a genome with its evaluated metrics and the NSGA-II
// bookkeeping sortFronts fills in.
type individual struct {
	genome  Genome
	metrics core.Metrics
	rank    int     // front index, 0 = non-dominated
	crowd   float64 // crowding distance within the front
}

// sortFronts partitions the population into non-dominated fronts (front
// 0 is the population's Pareto set, front 1 the Pareto set of the rest,
// and so on), filling each individual's rank and crowding distance.
// Fronts list member indices in ascending order.
func sortFronts(pop []individual) [][]int {
	n := len(pop)
	dominated := make([][]int, n) // dominated[i]: indices i dominates
	domCount := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case core.Dominates(pop[i].metrics, pop[j].metrics):
				dominated[i] = append(dominated[i], j)
				domCount[j]++
			case core.Dominates(pop[j].metrics, pop[i].metrics):
				dominated[j] = append(dominated[j], i)
				domCount[i]++
			}
		}
	}
	var fronts [][]int
	var current []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			current = append(current, i)
		}
	}
	for len(current) > 0 {
		for _, i := range current {
			pop[i].rank = len(fronts)
		}
		fronts = append(fronts, current)
		var next []int
		for _, i := range current {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		sort.Ints(next) // index order regardless of discovery path
		current = next
	}
	for _, f := range fronts {
		crowding(pop, f)
	}
	return fronts
}

// crowding assigns each front member's crowding distance: the sum over
// objectives of the normalized gap between its neighbors along that
// objective, +Inf at the extremes so boundary points always survive.
func crowding(pop []individual, front []int) {
	for _, i := range front {
		pop[i].crowd = 0
	}
	if len(front) <= 2 {
		for _, i := range front {
			pop[i].crowd = math.Inf(1)
		}
		return
	}
	for _, obj := range [...]func(core.Metrics) float64{
		func(m core.Metrics) float64 { return m.Cycles },
		func(m core.Metrics) float64 { return m.EnergyNJ },
	} {
		idx := append([]int(nil), front...)
		sort.SliceStable(idx, func(a, b int) bool {
			va, vb := obj(pop[idx[a]].metrics), obj(pop[idx[b]].metrics)
			if va != vb {
				return va < vb
			}
			return idx[a] < idx[b]
		})
		lo, hi := obj(pop[idx[0]].metrics), obj(pop[idx[len(idx)-1]].metrics)
		pop[idx[0]].crowd = math.Inf(1)
		pop[idx[len(idx)-1]].crowd = math.Inf(1)
		if span := hi - lo; span > 0 {
			for k := 1; k < len(idx)-1; k++ {
				gap := (obj(pop[idx[k+1]].metrics) - obj(pop[idx[k-1]].metrics)) / span
				pop[idx[k]].crowd += gap
			}
		}
	}
}

// crowdedLess is NSGA-II's crowded-comparison operator — lower rank
// wins, then larger crowding distance — with an index tie-break for full
// determinism.
func crowdedLess(pop []individual, i, j int) bool {
	if pop[i].rank != pop[j].rank {
		return pop[i].rank < pop[j].rank
	}
	if pop[i].crowd != pop[j].crowd {
		return pop[i].crowd > pop[j].crowd
	}
	return i < j
}

// tournament draws two members uniformly and returns the better one.
func tournament(r *rng, pop []individual) int {
	i, j := r.intn(len(pop)), r.intn(len(pop))
	if crowdedLess(pop, i, j) {
		return i
	}
	return j
}

// environmental selects the next population (size n) from the combined
// parent+offspring pool: whole fronts while they fit, then the most
// crowded members of the boundary front.
func environmental(pool []individual, n int) []individual {
	fronts := sortFronts(pool)
	out := make([]individual, 0, n)
	for _, f := range fronts {
		if len(out)+len(f) <= n {
			for _, i := range f {
				out = append(out, pool[i])
			}
			continue
		}
		rest := append([]int(nil), f...)
		sort.SliceStable(rest, func(a, b int) bool {
			return crowdedLess(pool, rest[a], rest[b])
		})
		for _, i := range rest[:n-len(out)] {
			out = append(out, pool[i])
		}
		break
	}
	return out
}

// Hypervolume returns the area of the (cycles, energy) region dominated
// by ms' Pareto frontier and bounded by the reference point (refCycles,
// refEnergyNJ); points at or beyond the reference contribute nothing.
// Larger is better. It is the scalar archive-quality measure the
// search-beats-random property test compares at equal budget.
func Hypervolume(ms []core.Metrics, refCycles, refEnergyNJ float64) float64 {
	hv := 0.0
	prevE := refEnergyNJ
	// The frontier is sorted by increasing cycles with strictly
	// decreasing energy, so the dominated region decomposes into one
	// rectangle per point.
	for _, m := range core.ParetoFrontier(ms) {
		if m.Cycles >= refCycles || m.EnergyNJ >= prevE {
			continue
		}
		hv += (refCycles - m.Cycles) * (prevE - m.EnergyNJ)
		prevE = m.EnergyNJ
	}
	return hv
}
