package search

import (
	"math"
	"testing"

	"memexplore/internal/core"
)

func popOf(points ...[2]float64) []individual {
	pop := make([]individual, len(points))
	for i, p := range points {
		pop[i].metrics = core.Metrics{Cycles: p[0], EnergyNJ: p[1]}
	}
	return pop
}

func TestSortFronts(t *testing.T) {
	// Front 0: (1,4), (2,2), (4,1). Front 1: (3,3) dominated by (2,2).
	// Front 2: (5,5) dominated by everything in front 0 and (3,3).
	pop := popOf([2]float64{3, 3}, [2]float64{1, 4}, [2]float64{2, 2}, [2]float64{5, 5}, [2]float64{4, 1})
	fronts := sortFronts(pop)
	if len(fronts) != 3 {
		t.Fatalf("got %d fronts, want 3", len(fronts))
	}
	wantRank := []int{1, 0, 0, 2, 0}
	for i, w := range wantRank {
		if pop[i].rank != w {
			t.Errorf("pop[%d].rank = %d, want %d", i, pop[i].rank, w)
		}
	}
	// Extremes of front 0 are infinitely crowded; the middle is finite.
	if !math.IsInf(pop[1].crowd, 1) || !math.IsInf(pop[4].crowd, 1) {
		t.Errorf("front-0 extremes crowd = %g, %g, want +Inf", pop[1].crowd, pop[4].crowd)
	}
	if math.IsInf(pop[2].crowd, 1) {
		t.Error("front-0 interior point has infinite crowding distance")
	}
	// Singleton and pair fronts are all +Inf.
	if !math.IsInf(pop[0].crowd, 1) || !math.IsInf(pop[3].crowd, 1) {
		t.Error("small fronts should be infinitely crowded")
	}
}

func TestEnvironmentalSelection(t *testing.T) {
	pop := popOf(
		[2]float64{1, 5}, [2]float64{2, 4}, [2]float64{3, 3},
		[2]float64{4, 2}, [2]float64{5, 1}, // front 0: all five
		[2]float64{6, 6}, [2]float64{7, 7}, // dominated tail
	)
	out := environmental(pop, 3)
	if len(out) != 3 {
		t.Fatalf("selected %d, want 3", len(out))
	}
	// The boundary front is truncated by crowding: both extremes (+Inf)
	// must survive.
	hasExtremes := 0
	for _, ind := range out {
		if ind.metrics.Cycles == 1 || ind.metrics.Cycles == 5 {
			hasExtremes++
		}
	}
	if hasExtremes != 2 {
		t.Errorf("environmental dropped a frontier extreme: %+v", out)
	}
	// Whole-front case: n larger than front 0 pulls in dominated points.
	out = environmental(pop, 6)
	if len(out) != 6 {
		t.Fatalf("selected %d, want 6", len(out))
	}
}

func TestCrowdedLessTieBreak(t *testing.T) {
	pop := popOf([2]float64{1, 1}, [2]float64{1, 1})
	sortFronts(pop)
	if !crowdedLess(pop, 0, 1) || crowdedLess(pop, 1, 0) {
		t.Error("identical individuals must break the tie by index")
	}
}

func TestHypervolume(t *testing.T) {
	ms := []core.Metrics{
		{Cycles: 1, EnergyNJ: 4},
		{Cycles: 2, EnergyNJ: 2},
		{Cycles: 4, EnergyNJ: 1},
		{Cycles: 3, EnergyNJ: 3}, // dominated by (2,2): contributes nothing
	}
	// ref (5,5): rectangles (5−1)(5−4) + (5−2)(4−2) + (5−4)(2−1) = 4+6+1.
	if hv := Hypervolume(ms, 5, 5); hv != 11 {
		t.Errorf("Hypervolume = %g, want 11", hv)
	}
	// Points at or beyond the reference contribute nothing: only (1,4)
	// survives a (2,5) reference.
	if hv := Hypervolume(ms, 2, 5); hv != 1 {
		t.Errorf("Hypervolume(ref 2,5) = %g, want 1", hv)
	}
	if hv := Hypervolume(nil, 5, 5); hv != 0 {
		t.Errorf("Hypervolume(empty) = %g, want 0", hv)
	}
	// A superset frontier never has smaller hypervolume.
	less := Hypervolume(ms[:2], 5, 5)
	if less > Hypervolume(ms, 5, 5) {
		t.Error("hypervolume decreased when adding points")
	}
}
