package autotune

import (
	"strings"
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/kernels"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Options.CacheSizes = []int{32, 64, 128}
	cfg.Options.LineSizes = []int{4, 8}
	cfg.Options.Assocs = []int{1, 2}
	cfg.Options.Tilings = []int{1, 4}
	return cfg
}

func TestVariantsEnumeration(t *testing.T) {
	cfg := smallConfig()
	vs, err := variants(kernels.Transpose(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
		if err := v.Nest.Validate(); err != nil {
			t.Errorf("variant %s invalid: %v", v.Name, err)
		}
	}
	for _, want := range []string{"baseline", "interchange", "unroll2", "unroll4", "interchange+unroll2"} {
		if !names[want] {
			t.Errorf("missing variant %q (have %v)", want, names)
		}
	}
	// 1D kernels get no interchange.
	vs, err = variants(kernels.MPEGAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if v.Interchanged {
			t.Errorf("1D kernel should not be interchanged: %s", v.Name)
		}
	}
}

func TestTuneTranspose(t *testing.T) {
	cfg := smallConfig()
	results, best, err := Tune(kernels.Transpose(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 4 {
		t.Fatalf("results = %d", len(results))
	}
	if best < 0 || best >= len(results) {
		t.Fatalf("best index %d out of range", best)
	}
	for _, r := range results {
		if r.TotalEnergyNJ < results[best].TotalEnergyNJ {
			t.Errorf("Tune missed a better variant: %s (%v < %v)",
				r.Variant.Name, r.TotalEnergyNJ, results[best].TotalEnergyNJ)
		}
		if r.TotalEnergyNJ != r.Data.EnergyNJ+r.Instr.EnergyNJ {
			t.Errorf("%s: total out of sync", r.Variant.Name)
		}
		if r.CodeBytes <= 0 {
			t.Errorf("%s: code bytes %d", r.Variant.Name, r.CodeBytes)
		}
	}
	// Unrolling must reduce the instruction-side energy of the best
	// unrolled variant versus the baseline (fewer loop-control fetches).
	var baseline, unrolled *Result
	for i := range results {
		switch results[i].Variant.Name {
		case "baseline":
			baseline = &results[i]
		case "unroll4":
			unrolled = &results[i]
		}
	}
	if baseline == nil || unrolled == nil {
		t.Fatal("expected baseline and unroll4 results")
	}
	// Unrolling removes loop-control fetches (fewer instruction accesses)
	// but grows the code footprint — so the fetch COUNT must drop while
	// the energy may go either way (a bigger I-cache costs more per
	// access). That two-sided trade is what Tune searches.
	if unrolled.Instr.Accesses >= baseline.Instr.Accesses {
		t.Errorf("unroll4 fetches %d should be below baseline %d",
			unrolled.Instr.Accesses, baseline.Instr.Accesses)
	}
	if unrolled.CodeBytes <= baseline.CodeBytes {
		t.Errorf("unroll4 code %d should exceed baseline %d",
			unrolled.CodeBytes, baseline.CodeBytes)
	}
	// Untiled (B=1), the unrolled data stream is identical to the
	// baseline's, so the fixed-point data metrics must match exactly.
	// (With tiling in the sweep they may differ: the stepped inner loop
	// of an unrolled nest is not tileable.)
	pointCfg := smallConfig()
	pointCfg.Options.Tilings = []int{1}
	eBase, err := core.NewExplorer(kernels.Transpose(32), pointCfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	eUn, err := core.NewExplorer(unrolled.Variant.Nest, pointCfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	cfgPoint := cachesim.DefaultConfig(64, 8, 1)
	mBase, err := eBase.Evaluate(cfgPoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	mUn, err := eUn.Evaluate(cfgPoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mBase.Misses != mUn.Misses {
		t.Errorf("untiled unroll changed the data stream: %d vs %d misses", mUn.Misses, mBase.Misses)
	}
}

func TestTuneBudget(t *testing.T) {
	cfg := smallConfig()
	cfg.BudgetBytes = 96 // forces small pairs (32+64)
	results, best, err := Tune(kernels.Compress(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.TotalSize > 96 {
			t.Errorf("%s: pair size %d exceeds budget", r.Variant.Name, r.TotalSize)
		}
	}
	_ = best
	cfg.BudgetBytes = 16 // nothing fits (min pair is 32+32... below both minimums)
	if _, _, err := Tune(kernels.Compress(), cfg); err == nil {
		t.Error("impossible budget should fail")
	}
}

func TestTuneValidatesOptions(t *testing.T) {
	cfg := smallConfig()
	cfg.Options = core.Options{}
	if _, _, err := Tune(kernels.Compress(), cfg); err == nil {
		t.Error("invalid options should fail")
	}
}

func TestNoFitErrorMessage(t *testing.T) {
	if got := noFitError(96).Error(); !strings.Contains(got, "budget of 96 bytes") {
		t.Errorf("bounded message %q does not name the budget", got)
	}
	got := noFitError(0).Error()
	if strings.Contains(got, "budget of 0 bytes") {
		t.Errorf("unbounded message %q claims a zero-byte budget", got)
	}
	if !strings.Contains(got, "no variant") {
		t.Errorf("unbounded message %q does not explain the failure", got)
	}
	// An impossible real budget surfaces the bounded message through Tune.
	cfg := smallConfig()
	cfg.BudgetBytes = 16
	if _, _, err := Tune(kernels.Compress(), cfg); err == nil ||
		!strings.Contains(err.Error(), "budget of 16 bytes") {
		t.Errorf("Tune error = %v, want the bounded no-fit message", err)
	}
}
