// Package autotune closes the codesign loop the paper opens: §4.2 shows
// that a loop transformation (tiling) belongs inside the memory
// exploration, and §6 extends the exploration to instruction caches. This
// package searches the product space — loop transformation variants
// (interchange, unrolling; tiling is already a sweep dimension) × data
// cache × instruction cache — for the minimum total energy under an
// optional shared on-chip budget.
//
// Unrolling leaves the data-reference stream unchanged but shrinks the
// instruction stream (fewer loop-control fetches) while growing the code
// footprint; interchange reorders the data stream. Neither is universally
// good, which is exactly why they belong in the searched space.
package autotune

import (
	"fmt"

	"memexplore/internal/core"
	"memexplore/internal/icache"
	"memexplore/internal/loopir"
)

// Variant is one transformed form of the kernel.
type Variant struct {
	// Name describes the transformation, e.g. "interchange+unroll4".
	Name string
	// Nest is the transformed kernel.
	Nest *loopir.Nest
	// Interchanged and Unroll record what was applied.
	Interchanged bool
	Unroll       int
}

// Result scores one variant: the best data-cache and instruction-cache
// configurations found for it and their combined energy.
type Result struct {
	Variant Variant
	// Data and Instr are the per-side minimum-energy configurations.
	Data  core.Metrics
	Instr core.Metrics
	// TotalEnergyNJ = Data.EnergyNJ + Instr.EnergyNJ.
	TotalEnergyNJ float64
	// TotalSize is the combined on-chip capacity of the chosen pair.
	TotalSize int
	// CodeBytes is the variant's static code footprint.
	CodeBytes int
}

// Config parameterizes the search.
type Config struct {
	// Options drives both cache sweeps (tiling inside Options.Tilings).
	Options core.Options
	// CodeGen is the §6 code model for the instruction side.
	CodeGen icache.CodeGen
	// Unrolls are the unroll factors to try (1 is always tried).
	Unrolls []int
	// TryInterchange also tries swapping the two outermost loops of
	// 2-deep nests.
	TryInterchange bool
	// BudgetBytes bounds Data.CacheSize + Instr.CacheSize (0 = unbounded).
	BudgetBytes int
}

// DefaultConfig returns a small, sensible search.
func DefaultConfig() Config {
	return Config{
		Options:        core.DefaultOptions(),
		CodeGen:        icache.DefaultCodeGen(),
		Unrolls:        []int{1, 2, 4},
		TryInterchange: true,
	}
}

// variants enumerates the legal transformed forms.
func variants(n *loopir.Nest, cfg Config) ([]Variant, error) {
	base := []Variant{{Name: "baseline", Nest: n, Unroll: 1}}
	if cfg.TryInterchange && n.Depth() == 2 {
		if sw, err := loopir.Interchange(n, 0, 1); err == nil {
			base = append(base, Variant{Name: "interchange", Nest: sw, Interchanged: true, Unroll: 1})
		}
	}
	var out []Variant
	for _, v := range base {
		out = append(out, v)
		for _, u := range cfg.Unrolls {
			if u <= 1 {
				continue
			}
			un, err := loopir.Unroll(v.Nest, u)
			if err != nil {
				continue // non-dividing factor or non-constant bounds
			}
			name := fmt.Sprintf("unroll%d", u)
			if v.Interchanged {
				name = "interchange+" + name
			}
			out = append(out, Variant{Name: name, Nest: un, Interchanged: v.Interchanged, Unroll: u})
		}
	}
	return out, nil
}

// Tune scores every variant and returns them ordered as generated, plus
// the index of the best (minimum total energy; ties break toward less
// code). Variants for which no (D, I) pair fits the budget are skipped;
// an error is returned only if none fits at all.
func Tune(n *loopir.Nest, cfg Config) ([]Result, int, error) {
	if err := cfg.Options.Validate(); err != nil {
		return nil, 0, err
	}
	vs, err := variants(n, cfg)
	if err != nil {
		return nil, 0, err
	}
	var out []Result
	best := -1
	for _, v := range vs {
		data, err := core.Explore(v.Nest, cfg.Options)
		if err != nil {
			return nil, 0, fmt.Errorf("autotune: data sweep for %s: %w", v.Name, err)
		}
		instr, err := icache.Explore(v.Nest, cfg.CodeGen, cfg.Options)
		if err != nil {
			return nil, 0, fmt.Errorf("autotune: instruction sweep for %s: %w", v.Name, err)
		}
		choice, ok := icache.ExploreJoint(instr, data, cfg.BudgetBytes)
		if !ok {
			continue
		}
		code, err := icache.CodeBytes(v.Nest, cfg.CodeGen)
		if err != nil {
			return nil, 0, err
		}
		r := Result{
			Variant:       v,
			Data:          choice.Data,
			Instr:         choice.Instr,
			TotalEnergyNJ: choice.TotalEnergy(),
			TotalSize:     choice.TotalSize(),
			CodeBytes:     code,
		}
		out = append(out, r)
		if best < 0 || r.TotalEnergyNJ < out[best].TotalEnergyNJ ||
			(r.TotalEnergyNJ == out[best].TotalEnergyNJ && r.CodeBytes < out[best].CodeBytes) {
			best = len(out) - 1
		}
	}
	if best < 0 {
		return nil, 0, noFitError(cfg.BudgetBytes)
	}
	return out, best, nil
}

// noFitError reports that no variant admitted a joint cache selection,
// naming the budget only when one was actually set — an unbounded search
// (BudgetBytes 0) must not claim a "budget of 0 bytes" was missed.
func noFitError(budgetBytes int) error {
	if budgetBytes > 0 {
		return fmt.Errorf("autotune: no variant fits the budget of %d bytes", budgetBytes)
	}
	return fmt.Errorf("autotune: no variant admits a joint cache selection")
}
