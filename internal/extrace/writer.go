package extrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"memexplore/internal/trace"
)

// WriteDin streams src to w in the textual din format — one
// "<label> <hexaddr>" line per record, with a third decimal size field
// for accesses wider than one byte — and returns the record count. The
// output parses back through a Reader (and, size field aside, through
// any Dinero-style consumer).
func WriteDin(w io.Writer, src trace.Source) (int64, error) {
	bw := bufio.NewWriterSize(w, 64*1024)
	var written int64
	var line []byte
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return written, fmt.Errorf("extrace: reading source after %d records: %w", written, err)
		}
		line = line[:0]
		line = append(line, byte('0'+r.Kind.DinLabel()), ' ')
		line = strconv.AppendUint(line, r.Addr, 16)
		if r.EffectiveSize() != 1 {
			line = append(line, ' ')
			line = strconv.AppendUint(line, uint64(r.EffectiveSize()), 10)
		}
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return written, fmt.Errorf("extrace: writing din record %d: %w", written, err)
		}
		written++
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("extrace: flushing din output: %w", err)
	}
	return written, nil
}
