package extrace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"memexplore/internal/trace"
)

// mxt v2 index footer ("MXTI01"). WriteBinaryV2 appends it after the
// last chunk so sweeps can consult per-chunk summaries — byte extent,
// record mix, and the exact set of 64-byte start-address granules —
// and seek past chunks their filters prove irrelevant, without
// decoding them. The footer is self-framed and CRC'd:
//
//	magic "MXTI01\r\n" (8 bytes)
//	body length (uint32 LE)
//	body (varint-coded, see below)
//	CRC-32 (IEEE) of the body (uint32 LE)
//	trailer (16 bytes): footer byte offset (uint64 LE) + "MXTIEND\n"
//
// The fixed-size trailer lets a seekable reader locate the footer in
// one ReadAt from the end of the file; streaming readers recognize the
// magic where a chunk header would start and parse the footer inline.
// A truncated or corrupt footer is never fatal for a valid chunk
// stream: parsing degrades to index-less reading (FuzzParseIndexFooter
// pins this).
//
// Body layout (uvarint unless noted):
//
//	flags                  bit 0: stats profile present; bit 1: the
//	                       artifact was sampled at transcode time
//	chunk count
//	records                records stored in this file
//	source records         records before transcode-time sampling
//	[if sampled]           sample rate (float64 bits, 8 bytes LE),
//	                       sample seed (uint64 LE, 8 bytes),
//	                       sample granule (bytes)
//	[if profile]           min addr, max addr, footprint lines,
//	                       profile flags (bit 0: footprint saturated),
//	                       sequential frac (float64 bits, 8 bytes LE),
//	                       stride count then per stride
//	                       zigzag(stride) + count, stride other
//	per chunk              frame bytes (header+payload), records,
//	                       reads, writes (fetches are the remainder),
//	                       min granule, max−min granule, granule count
//	                       (0: summary overflowed, chunk not
//	                       skippable) then count−1 ascending deltas
//
// Chunk byte offsets are not stored: they are the running sum of the
// frame lengths from the end of the stream magic, and the sum is
// validated against the footer offset, so a footer that disagrees
// with the chunk framing is rejected whole.
const (
	indexMagic     = "MXTI01\r\n"
	indexTailMagic = "MXTIEND\n"
	indexTailBytes = 16

	// IndexGranule is the fixed address granularity (bytes) of the
	// per-chunk granule summaries — the ingest statistics granule, so
	// any coarser sweep filter granule is a right-shift away.
	IndexGranule = LineGranule

	// indexMaxGranules caps the per-chunk granule summary; a chunk
	// touching more distinct granules records an overflowed (empty)
	// summary and is always decoded.
	indexMaxGranules = 512

	// maxIndexFooterBytes bounds how much a reader will buffer for a
	// footer — far above any real index, just a hostile-input guard.
	maxIndexFooterBytes = 64 << 20
)

const (
	indexFlagProfile = 1 << 0
	indexFlagSampled = 1 << 1

	profileFlagSaturated = 1 << 0
)

// ChunkIndexEntry summarizes one mxt v2 chunk for skip decisions.
type ChunkIndexEntry struct {
	// Offset is the byte offset of the chunk header in the
	// decompressed stream; Bytes is the whole frame length.
	Offset int64
	Bytes  int64
	// Records partitions into Reads + Writes + Fetches().
	Records int64
	Reads   int64
	Writes  int64
	// MinGranule and MaxGranule bound the IndexGranule-sized granules
	// of the chunk's record start addresses.
	MinGranule uint64
	MaxGranule uint64
	// Granules lists the distinct start-address granules in ascending
	// order, exactly — or nil when the chunk touched more than
	// indexMaxGranules of them, in which case the chunk must be
	// decoded.
	Granules []uint64
}

// Fetches returns the instruction-fetch record count of the chunk.
func (e *ChunkIndexEntry) Fetches() int64 { return e.Records - e.Reads - e.Writes }

// IndexProfile is the encode-time IngestStats snapshot stored in the
// footer: the profile fields a reader cannot reconstruct for chunks it
// skipped. It is byte-for-byte the profile a full decode of the same
// stream accumulates.
type IndexProfile struct {
	MinAddr            uint64
	MaxAddr            uint64
	FootprintLines     int
	FootprintSaturated bool
	Strides            map[int64]int64
	StrideOther        int64
	SequentialFrac     float64
}

// TraceIndex is the parsed MXTI01 footer.
type TraceIndex struct {
	Chunks []ChunkIndexEntry
	// Records counts the records stored in the file; SourceRecords the
	// records of the original stream before transcode-time sampling
	// (equal when Sampled is false).
	Records       int64
	SourceRecords int64

	// Sampled marks an artifact thinned at transcode time; rate, seed
	// and the hash granule are recorded so sweeps rescale correctly
	// and refuse conflicting re-sampling.
	Sampled       bool
	SampleRate    float64
	SampleSeed    uint64
	SampleGranule int

	// HasProfile guards Profile.
	HasProfile bool
	Profile    IndexProfile
}

// ChunkVerdict is a sweep filter's decision about one indexed chunk.
type ChunkVerdict uint8

const (
	// ChunkDecode: decode the chunk and filter per record.
	ChunkDecode ChunkVerdict = iota
	// ChunkSkipDrop: no record survives the spatial sample — skip the
	// chunk; its records leave no trace in the sweep.
	ChunkSkipDrop
	// ChunkSkipCold: every record passes the sample but lands on a
	// cold granule — skip the chunk and count its records as hits of
	// their kind, exactly as the decode-then-filter path would.
	ChunkSkipCold
)

// ChunkPolicy decides, from the index entry alone, whether a chunk
// needs decoding. It runs on the decode goroutine and must be pure:
// read-only over state that does not change during the stream.
type ChunkPolicy func(*ChunkIndexEntry) ChunkVerdict

// SkipSummary accounts the chunks a Reader stepped over under a
// ChunkPolicy. Kind-partitioned cold counts let the sweep fold skipped
// records into its cold-hit totals exactly as if it had decoded and
// filtered them.
type SkipSummary struct {
	Chunks  int64
	Records int64
	Bytes   int64
	// Dropped counts records of ChunkSkipDrop chunks; Cold partitions
	// the records of ChunkSkipCold chunks by trace.Kind.
	Dropped int64
	Cold    [3]int64
}

// --- encoding ----------------------------------------------------------

// indexBuilder accumulates per-chunk entries on the write side.
type indexBuilder struct {
	chunks  []ChunkIndexEntry
	off     int64 // running offset: next chunk's header position
	gbuf    []uint64
	records int64
	reads   int64
	writes  int64
}

func newIndexBuilder() *indexBuilder {
	return &indexBuilder{off: int64(len(binaryV2Magic))}
}

// addChunk records the entry for one encoded chunk of frameBytes bytes.
func (b *indexBuilder) addChunk(recs []trace.Ref, frameBytes int) {
	e := ChunkIndexEntry{Offset: b.off, Bytes: int64(frameBytes), Records: int64(len(recs))}
	b.gbuf = b.gbuf[:0]
	for _, r := range recs {
		switch r.Kind {
		case trace.Read:
			e.Reads++
		case trace.Write:
			e.Writes++
		}
		b.gbuf = append(b.gbuf, r.Addr/IndexGranule)
	}
	sort.Slice(b.gbuf, func(i, j int) bool { return b.gbuf[i] < b.gbuf[j] })
	distinct := b.gbuf[:0]
	for i, g := range b.gbuf {
		if i == 0 || g != distinct[len(distinct)-1] {
			distinct = append(distinct, g)
		}
	}
	e.MinGranule = distinct[0]
	e.MaxGranule = distinct[len(distinct)-1]
	if len(distinct) <= indexMaxGranules {
		e.Granules = append([]uint64(nil), distinct...)
	}
	b.off += int64(frameBytes)
	b.records += e.Records
	b.reads += e.Reads
	b.writes += e.Writes
	b.chunks = append(b.chunks, e)
}

// appendFooter encodes the footer (magic through trailer) onto dst.
// sourceRecords and the sampling triple describe transcode-time
// sampling; profile is the encode-time stats snapshot (nil to omit).
func (b *indexBuilder) appendFooter(dst []byte, sourceRecords int64, sampled bool, rate float64, seed uint64, granule int, profile *IndexProfile) []byte {
	footerOff := b.off

	var body []byte
	flags := uint64(0)
	if profile != nil {
		flags |= indexFlagProfile
	}
	if sampled {
		flags |= indexFlagSampled
	}
	body = binary.AppendUvarint(body, flags)
	body = binary.AppendUvarint(body, uint64(len(b.chunks)))
	body = binary.AppendUvarint(body, uint64(b.records))
	body = binary.AppendUvarint(body, uint64(sourceRecords))
	if sampled {
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(rate))
		body = binary.LittleEndian.AppendUint64(body, seed)
		body = binary.AppendUvarint(body, uint64(granule))
	}
	if profile != nil {
		body = binary.AppendUvarint(body, profile.MinAddr)
		body = binary.AppendUvarint(body, profile.MaxAddr)
		body = binary.AppendUvarint(body, uint64(profile.FootprintLines))
		pf := uint64(0)
		if profile.FootprintSaturated {
			pf |= profileFlagSaturated
		}
		body = binary.AppendUvarint(body, pf)
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(profile.SequentialFrac))
		strides := make([]int64, 0, len(profile.Strides))
		for s := range profile.Strides {
			strides = append(strides, s)
		}
		sort.Slice(strides, func(i, j int) bool { return strides[i] < strides[j] })
		body = binary.AppendUvarint(body, uint64(len(strides)))
		for _, s := range strides {
			body = binary.AppendUvarint(body, zigzag(s))
			body = binary.AppendUvarint(body, uint64(profile.Strides[s]))
		}
		body = binary.AppendUvarint(body, uint64(profile.StrideOther))
	}
	for i := range b.chunks {
		e := &b.chunks[i]
		body = binary.AppendUvarint(body, uint64(e.Bytes))
		body = binary.AppendUvarint(body, uint64(e.Records))
		body = binary.AppendUvarint(body, uint64(e.Reads))
		body = binary.AppendUvarint(body, uint64(e.Writes))
		body = binary.AppendUvarint(body, e.MinGranule)
		body = binary.AppendUvarint(body, e.MaxGranule-e.MinGranule)
		body = binary.AppendUvarint(body, uint64(len(e.Granules)))
		for j := 1; j < len(e.Granules); j++ {
			body = binary.AppendUvarint(body, e.Granules[j]-e.Granules[j-1])
		}
	}

	dst = append(dst, indexMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(footerOff))
	dst = append(dst, indexTailMagic...)
	return dst
}

// --- decoding ----------------------------------------------------------

// byteCursor walks a varint-coded body with sticky failure.
type byteCursor struct {
	p   []byte
	bad bool
}

func (c *byteCursor) uvarint() uint64 {
	v, n := binary.Uvarint(c.p)
	if n <= 0 {
		c.bad = true
		return 0
	}
	c.p = c.p[n:]
	return v
}

func (c *byteCursor) u64() uint64 {
	if len(c.p) < 8 {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.p)
	c.p = c.p[8:]
	return v
}

// parseIndexBody decodes a CRC-validated footer body. chunksEnd is the
// byte offset where the chunk stream ended (the footer's own offset);
// the per-chunk frame lengths must sum exactly to it, so an index that
// disagrees with the actual framing is rejected. Any inconsistency
// returns an error — callers degrade to index-less reading.
func parseIndexBody(body []byte, chunksEnd int64) (*TraceIndex, error) {
	c := &byteCursor{p: body}
	flags := c.uvarint()
	chunkCount := c.uvarint()
	records := c.uvarint()
	sourceRecords := c.uvarint()
	if c.bad || flags&^uint64(indexFlagProfile|indexFlagSampled) != 0 {
		return nil, fmt.Errorf("extrace: corrupt index header")
	}
	ix := &TraceIndex{
		Records:       int64(records),
		SourceRecords: int64(sourceRecords),
	}
	if flags&indexFlagSampled != 0 {
		ix.Sampled = true
		ix.SampleRate = math.Float64frombits(c.u64())
		ix.SampleSeed = c.u64()
		ix.SampleGranule = int(c.uvarint())
		if c.bad || ix.SampleRate <= 0 || ix.SampleRate > 1 || ix.SampleRate != ix.SampleRate ||
			ix.SampleGranule <= 0 || ix.SampleGranule&(ix.SampleGranule-1) != 0 {
			return nil, fmt.Errorf("extrace: corrupt index sampling metadata")
		}
	}
	if flags&indexFlagProfile != 0 {
		ix.HasProfile = true
		p := &ix.Profile
		p.MinAddr = c.uvarint()
		p.MaxAddr = c.uvarint()
		p.FootprintLines = int(c.uvarint())
		pf := c.uvarint()
		p.FootprintSaturated = pf&profileFlagSaturated != 0
		p.SequentialFrac = math.Float64frombits(c.u64())
		nStrides := c.uvarint()
		if c.bad || pf&^uint64(profileFlagSaturated) != 0 || nStrides > reportedStrides ||
			p.FootprintLines < 0 || p.SequentialFrac < 0 || p.SequentialFrac > 1 || p.SequentialFrac != p.SequentialFrac {
			return nil, fmt.Errorf("extrace: corrupt index profile")
		}
		p.Strides = make(map[int64]int64, nStrides)
		for i := uint64(0); i < nStrides; i++ {
			s := unzigzag(c.uvarint())
			n := c.uvarint()
			p.Strides[s] = int64(n)
		}
		p.StrideOther = int64(c.uvarint())
		if c.bad || p.StrideOther < 0 {
			return nil, fmt.Errorf("extrace: corrupt index profile strides")
		}
	}
	if chunkCount > uint64(len(c.p))+1 { // each entry is ≥ 7 body bytes; cheap pre-bound
		return nil, fmt.Errorf("extrace: implausible index chunk count %d", chunkCount)
	}
	ix.Chunks = make([]ChunkIndexEntry, 0, chunkCount)
	off := int64(len(binaryV2Magic))
	var sumRecords int64
	for i := uint64(0); i < chunkCount; i++ {
		var e ChunkIndexEntry
		e.Offset = off
		e.Bytes = int64(c.uvarint())
		e.Records = int64(c.uvarint())
		e.Reads = int64(c.uvarint())
		e.Writes = int64(c.uvarint())
		e.MinGranule = c.uvarint()
		e.MaxGranule = e.MinGranule + c.uvarint()
		nGran := c.uvarint()
		if c.bad || e.Bytes < v2HeaderBytes || e.Records < 1 || e.Records > v2MaxChunkRecords ||
			e.Reads < 0 || e.Writes < 0 || e.Reads+e.Writes > e.Records ||
			e.MaxGranule < e.MinGranule || nGran > indexMaxGranules || (nGran > 0 && uint64(e.Records) < nGran) {
			return nil, fmt.Errorf("extrace: corrupt index entry %d", i)
		}
		if nGran > 0 {
			e.Granules = make([]uint64, nGran)
			e.Granules[0] = e.MinGranule
			for j := uint64(1); j < nGran; j++ {
				d := c.uvarint()
				if c.bad || d == 0 {
					return nil, fmt.Errorf("extrace: corrupt index granule list in entry %d", i)
				}
				e.Granules[j] = e.Granules[j-1] + d
			}
			if e.Granules[nGran-1] != e.MaxGranule {
				return nil, fmt.Errorf("extrace: index granule list of entry %d does not span its range", i)
			}
		}
		off += e.Bytes
		sumRecords += e.Records
		ix.Chunks = append(ix.Chunks, e)
	}
	if c.bad || len(c.p) != 0 {
		return nil, fmt.Errorf("extrace: index body length mismatch")
	}
	if off != chunksEnd {
		return nil, fmt.Errorf("extrace: index frames cover %d bytes, chunks end at %d", off, chunksEnd)
	}
	if sumRecords != ix.Records {
		return nil, fmt.Errorf("extrace: index records mismatch (%d vs %d)", sumRecords, ix.Records)
	}
	if !ix.Sampled && ix.SourceRecords != ix.Records {
		return nil, fmt.Errorf("extrace: unsampled index with source records %d != %d", ix.SourceRecords, ix.Records)
	}
	return ix, nil
}

// probeIndex locates and parses the footer of a seekable, uncompressed
// mxt v2 stream of the given total size via one ReadAt from the tail.
// It returns nil — never an error — when no valid index is present:
// missing, truncated or corrupt footers all degrade to index-less
// streaming.
func probeIndex(ra io.ReaderAt, size int64) *TraceIndex {
	minFooter := int64(len(indexMagic) + 4 + 4)
	if size < int64(len(binaryV2Magic))+minFooter+indexTailBytes {
		return nil
	}
	var tail [indexTailBytes]byte
	if _, err := ra.ReadAt(tail[:], size-indexTailBytes); err != nil {
		return nil
	}
	if string(tail[8:]) != indexTailMagic {
		return nil
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	footerLen := size - indexTailBytes - footerOff
	if footerOff < int64(len(binaryV2Magic)) || footerLen < minFooter || footerLen > maxIndexFooterBytes {
		return nil
	}
	footer := make([]byte, footerLen)
	if _, err := ra.ReadAt(footer, footerOff); err != nil {
		return nil
	}
	if string(footer[:len(indexMagic)]) != indexMagic {
		return nil
	}
	bodyLen := int64(binary.LittleEndian.Uint32(footer[len(indexMagic) : len(indexMagic)+4]))
	if bodyLen != footerLen-minFooter {
		return nil
	}
	body := footer[len(indexMagic)+4 : len(indexMagic)+4+int(bodyLen)]
	wantCRC := binary.LittleEndian.Uint32(footer[len(footer)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil
	}
	ix, err := parseIndexBody(body, footerOff)
	if err != nil {
		return nil
	}
	return ix
}

// ProbeIndex locates and parses the MXTI01 footer of an uncompressed
// mxt v2 stream without consuming or moving it, via io.ReaderAt +
// io.Seeker (the offset is restored). It returns nil when the source is
// not seekable, not an indexed v2 stream, or the footer is invalid —
// callers treat all of those as "no index". Gzip-compressed artifacts
// always return nil here; their footer is discovered when a streaming
// Reader reaches it.
func ProbeIndex(r io.Reader) *TraceIndex {
	ra, ok := r.(io.ReaderAt)
	if !ok {
		return nil
	}
	sk, ok := r.(io.Seeker)
	if !ok {
		return nil
	}
	cur, err := sk.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil
	}
	size, err := sk.Seek(0, io.SeekEnd)
	if err != nil {
		return nil
	}
	if _, err := sk.Seek(cur, io.SeekStart); err != nil {
		return nil
	}
	var magic [len(binaryV2Magic)]byte
	if _, err := ra.ReadAt(magic[:], 0); err != nil || string(magic[:]) != binaryV2Magic {
		return nil
	}
	return probeIndex(ra, size)
}

// applyProfile substitutes the footer's encode-time profile fields into
// st — the fields a reader that skipped chunks cannot reconstruct.
func (ix *TraceIndex) applyProfile(st *IngestStats) {
	p := ix.Profile
	st.MinAddr = p.MinAddr
	st.MaxAddr = p.MaxAddr
	st.FootprintLines = p.FootprintLines
	st.FootprintBytes = p.FootprintLines * LineGranule
	st.FootprintSaturated = p.FootprintSaturated
	st.Strides = make(map[int64]int64, len(p.Strides))
	for s, n := range p.Strides {
		st.Strides[s] = n
	}
	st.StrideOther = p.StrideOther
	st.SequentialFrac = p.SequentialFrac
}
