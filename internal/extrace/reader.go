package extrace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"

	"memexplore/internal/trace"
)

// countReader counts the wire bytes consumed from the underlying reader —
// for gzip input, the compressed bytes.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// decoder yields one record at a time from a concrete format.
type decoder interface {
	// next returns the next accepted record. Malformed records are skipped
	// internally under Options.SkipMalformed (counting rejects via the
	// shared accumulator); otherwise next returns a *ParseError. A clean
	// end of stream is io.EOF.
	next() (trace.Ref, error)
}

// chunkDecoder decodes whole chunks at once into the caller's buffer —
// the columnar v2 fast path. Implementations follow the same malformed-
// record contract as decoder; they must never report records together
// with an error.
type chunkDecoder interface {
	readChunk(buf []trace.Ref) (int, error)
}

// Reader streams an external trace as chunks of trace.Ref. It never holds
// more than one buffered chunk of input: memory use is bounded by the
// format buffers plus the footprint-bounded ingest statistics, never by
// the trace length. Create with NewReader; it is not safe for concurrent
// use.
type Reader struct {
	opts Options
	raw  *countReader
	gz   *gzip.Reader // non-nil when the stream was gzip-compressed
	dec  decoder
	cdec chunkDecoder // non-nil for chunk-at-a-time formats (mxt v2)
	acc  *accumulator

	// policy, when set before the first Read, lets the v2 decoder skip
	// whole indexed chunks (see SetChunkPolicy). mmapped/unmap track the
	// zero-copy fast path: the whole file mapped read-only, decoded in
	// place.
	policy ChunkPolicy
	mmap   []byte
	unmap  func() error

	format  string
	gzipped bool
	started bool
	err     error // sticky terminal state (io.EOF or a real error)
}

// NewReader wraps r for streaming ingestion. Format detection (gzip, then
// binary-vs-din) happens lazily on the first Read, so construction never
// fails and never touches r.
func NewReader(r io.Reader, opts Options) *Reader {
	return &Reader{
		opts: opts,
		raw:  &countReader{r: r},
		acc:  newAccumulator(),
	}
}

// start peeks at the stream and picks the decompressor and decoder.
func (r *Reader) start() error {
	r.started = true
	// Zero-copy fast path: an uncompressed mxt v2 regular file is
	// memory-mapped whole and decoded in place. Detection goes through
	// ReadAt, which never moves the file offset, so every fallback (gzip
	// file, din file, mmap failure, unsupported platform) drops cleanly
	// into the streaming path below with the stream untouched.
	if f, ok := r.raw.r.(*os.File); ok && mmapAvailable {
		if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() && fi.Size() > int64(len(binaryV2Magic)) {
			var magic [len(binaryV2Magic)]byte
			if _, err := f.ReadAt(magic[:], 0); err == nil && string(magic[:]) == binaryV2Magic {
				if data, unmap, err := mmapFile(f, fi.Size()); err == nil {
					r.format = "binaryv2"
					r.mmap = data
					r.unmap = unmap
					dec := &binV2Decoder{in: &memInput{data: data, pos: len(binaryV2Magic)},
						opts: r.opts, acc: r.acc, off: int64(len(binaryV2Magic))}
					dec.idx = probeIndex(bytes.NewReader(data), int64(len(data)))
					r.attachPolicy(dec)
					r.cdec = dec
					return nil
				}
			}
		}
	}
	br := bufio.NewReaderSize(r.raw, 32*1024)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return fmt.Errorf("extrace: opening gzip stream: %w", err)
		}
		r.gz = gz
		r.gzipped = true
		br = bufio.NewReaderSize(gz, 32*1024)
	}
	if magic, err := br.Peek(len(binaryMagic)); err == nil && string(magic) == binaryMagic {
		br.Discard(len(binaryMagic))
		r.format = "binary"
		r.dec = &binDecoder{br: br, opts: r.opts, acc: r.acc, off: int64(len(binaryMagic))}
		return nil
	}
	if magic, err := br.Peek(len(binaryV2Magic)); err == nil && string(magic) == binaryV2Magic {
		br.Discard(len(binaryV2Magic))
		r.format = "binaryv2"
		dec := &binV2Decoder{in: &streamInput{br: br}, opts: r.opts, acc: r.acc, off: int64(len(binaryV2Magic))}
		// A seekable, uncompressed source (bytes.Reader, a file on a
		// platform without mmap) can still preload the index with one
		// ReadAt from the tail and skip chunks by discarding; gzip and
		// pipes only discover the footer when the stream reaches it.
		if !r.gzipped {
			if ra, ok := r.raw.r.(io.ReaderAt); ok {
				if size, err := seekableSize(r.raw.r); err == nil {
					dec.idx = probeIndex(ra, size)
				}
			}
		}
		r.attachPolicy(dec)
		r.cdec = dec
		return nil
	}
	r.format = "din"
	// The line buffer must hold a full line to detect its newline; cap it
	// at the line limit so an endless line fails fast instead of growing.
	r.dec = &dinDecoder{br: bufio.NewReaderSize(br, r.opts.maxLine()), opts: r.opts, acc: r.acc}
	return nil
}

// seekableSize reads the total size of a seekable stream and restores
// its offset (ReadAt-based index probing needs the absolute tail
// position).
func seekableSize(r io.Reader) (int64, error) {
	sk, ok := r.(io.Seeker)
	if !ok {
		return 0, fmt.Errorf("extrace: source is not seekable")
	}
	cur, err := sk.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}
	end, err := sk.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	if _, err := sk.Seek(cur, io.SeekStart); err != nil {
		return 0, err
	}
	return end, nil
}

// attachPolicy arms index-guided chunk skipping on a v2 decoder when
// every precondition holds: a policy was set, the index is present and
// carries the encode-time stats profile (without it the skipped-chunk
// statistics could not be reconstructed), and no record limit is in
// force (skipping would jump the limit accounting).
func (r *Reader) attachPolicy(dec *binV2Decoder) {
	if r.policy != nil && dec.idx != nil && dec.idx.HasProfile && r.opts.MaxRecords == 0 {
		dec.policy = r.policy
	}
}

// SetChunkPolicy installs the per-chunk skip policy consulted against
// the MXTI01 index. It must be called before the first Read; it has no
// effect on non-v2 formats, index-less streams, or readers with a
// record limit. The policy runs on the decoding goroutine (the
// pipeline's producer): it must be pure and must not touch state that
// changes during the stream.
func (r *Reader) SetChunkPolicy(p ChunkPolicy) {
	r.policy = p
}

// Index returns the parsed MXTI01 index footer, or nil when the stream
// has none (or it has not been reached yet: on non-seekable sources the
// footer is only discovered at end of stream).
func (r *Reader) Index() *TraceIndex {
	if d, ok := r.cdec.(*binV2Decoder); ok {
		return d.idx
	}
	return nil
}

// SkipSummary reports the chunks stepped over under the chunk policy so
// far. Callers that fan decoding out to a producer goroutine must read
// it only after joining the producer.
func (r *Reader) SkipSummary() SkipSummary {
	if d, ok := r.cdec.(*binV2Decoder); ok {
		return d.skip
	}
	return SkipSummary{}
}

// Read fills buf with the next records of the trace and reports how many
// it read. Like io.Reader, it may return n > 0 together with a non-nil
// error (including io.EOF at the end of the trace): callers must process
// the n records before acting on the error. Errors are terminal.
func (r *Reader) Read(buf []trace.Ref) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if !r.started {
		if err := r.start(); err != nil {
			r.err = err
			return 0, err
		}
	}
	if r.cdec != nil {
		return r.readChunked(buf)
	}
	n := 0
	for n < len(buf) {
		ref, err := r.dec.next()
		if err != nil {
			r.err = err
			return n, err
		}
		if r.opts.MaxRecords > 0 && r.acc.st.Records >= r.opts.MaxRecords {
			r.err = fmt.Errorf("%w (%d)", ErrRecordLimit, r.opts.MaxRecords)
			return n, r.err
		}
		r.acc.note(ref)
		buf[n] = ref
		n++
	}
	return n, nil
}

// readChunked is Read for chunk-at-a-time decoders: whole chunks land
// directly in buf (the pipeline's pooled slabs) and are accounted in one
// noteBlock per chunk. Stats accumulate strictly after the decoder's
// malformed-record rejection, preserving the IngestStats invariant that
// rejected records never count — same contract, fewer per-record calls.
func (r *Reader) readChunked(buf []trace.Ref) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.cdec.readChunk(buf[n:])
		if m > 0 && r.opts.MaxRecords > 0 && r.acc.st.Records+int64(m) > r.opts.MaxRecords {
			// The limit falls inside this chunk: accept records up to it
			// (matching the per-record path, which notes exactly MaxRecords
			// before failing on the next decode), then fail.
			keep := int(r.opts.MaxRecords - r.acc.st.Records)
			r.acc.noteBlock(buf[n : n+keep])
			n += keep
			r.err = fmt.Errorf("%w (%d)", ErrRecordLimit, r.opts.MaxRecords)
			return n, r.err
		}
		r.acc.noteBlock(buf[n : n+m])
		n += m
		if err != nil {
			r.err = err
			return n, err
		}
	}
	return n, nil
}

// Stats snapshots the ingest statistics accumulated so far. When
// chunks were skipped via the index, the profile fields a skipping
// reader cannot reconstruct (address range, footprint, strides,
// sequential fraction) are substituted from the footer's encode-time
// profile once the stream has ended cleanly — by construction the
// profile a full decode of the same stream would have accumulated.
func (r *Reader) Stats() IngestStats {
	st := r.acc.snapshot()
	st.Format = r.format
	st.Gzip = r.gzipped
	st.BytesRead = r.raw.n
	if r.mmap != nil {
		st.Mmap = true
		st.BytesRead = int64(len(r.mmap))
	}
	if d, ok := r.cdec.(*binV2Decoder); ok {
		if r.err == io.EOF && d.skip.Chunks > 0 && d.idx != nil && d.idx.HasProfile {
			d.idx.applyProfile(&st)
		}
		if d.idx != nil && d.idx.Sampled {
			st.StoredSampleRate = d.idx.SampleRate
			st.StoredSampleSeed = d.idx.SampleSeed
			st.StoredSourceRecords = d.idx.SourceRecords
		}
	}
	return st
}

// Close releases the decompressor and the memory mapping, if any. It
// does not close the underlying reader, which the caller owns.
func (r *Reader) Close() error {
	var err error
	if r.gz != nil {
		err = r.gz.Close()
	}
	if r.unmap != nil {
		if uerr := r.unmap(); err == nil {
			err = uerr
		}
		r.unmap = nil
		r.mmap = nil
	}
	return err
}

// --- textual din decoding ---------------------------------------------

// dinDecoder parses the line-oriented din format: "<label> <hexaddr>"
// with an optional decimal size third field, '#' comments and blank
// lines. See docs/TRACE_FORMAT.md.
type dinDecoder struct {
	br   *bufio.Reader
	opts Options
	acc  *accumulator
	line int64
	off  int64 // decompressed byte offset of the next line start
}

func (d *dinDecoder) next() (trace.Ref, error) {
	for {
		lineStart := d.off
		d.line++
		s, err := d.readLine()
		if err == errLineTooLong {
			if perr := d.malformed(lineStart, fmt.Sprintf("line exceeds %d bytes", d.opts.maxLine())); perr != nil {
				return trace.Ref{}, perr
			}
			continue
		}
		if err == io.EOF && len(s) == 0 {
			return trace.Ref{}, io.EOF
		}
		if err != nil && err != io.EOF {
			return trace.Ref{}, fmt.Errorf("extrace: reading din line %d: %w", d.line, err)
		}
		ref, skip, reason := parseDinLine(s)
		if reason != "" {
			if perr := d.malformed(lineStart, reason); perr != nil {
				return trace.Ref{}, perr
			}
			continue
		}
		if skip {
			continue
		}
		return ref, nil
	}
}

// malformed counts a reject in skip mode or builds the fatal *ParseError.
func (d *dinDecoder) malformed(offset int64, reason string) error {
	if d.opts.SkipMalformed {
		d.acc.reject(1)
		return nil
	}
	return &ParseError{Format: "din", Line: d.line, Offset: offset, Reason: reason}
}

// errLineTooLong is the internal signal for a line over the limit; the
// oversized line has been consumed when it is returned.
var errLineTooLong = fmt.Errorf("extrace: line too long")

// readLine returns the next line without its terminator and advances the
// offset past it. A line over the limit is drained and reported as
// errLineTooLong (the decoder's buffer is at least MaxLineBytes, so
// bufio.ErrBufferFull always means an oversized line). io.EOF with a
// non-empty slice is a final unterminated line; with an empty slice, the
// end of the stream.
func (d *dinDecoder) readLine() ([]byte, error) {
	s, err := d.br.ReadSlice('\n')
	d.off += int64(len(s))
	if (err == nil || err == io.EOF) && len(s) > d.opts.maxLine() {
		return nil, errLineTooLong
	}
	switch err {
	case nil:
		return trimEOL(s), nil
	case bufio.ErrBufferFull:
		// Drain the rest of the oversized line.
		for err == bufio.ErrBufferFull {
			s, err = d.br.ReadSlice('\n')
			d.off += int64(len(s))
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		return nil, errLineTooLong
	case io.EOF:
		return trimEOL(s), io.EOF
	default:
		return nil, err
	}
}

// trimEOL strips a trailing "\n" or "\r\n".
func trimEOL(s []byte) []byte {
	if n := len(s); n > 0 && s[n-1] == '\n' {
		s = s[:n-1]
	}
	if n := len(s); n > 0 && s[n-1] == '\r' {
		s = s[:n-1]
	}
	return s
}

// parseDinLine parses one din line. skip is true for blank and comment
// lines; a non-empty reason marks the line malformed.
func parseDinLine(s []byte) (ref trace.Ref, skip bool, reason string) {
	var fields [4][]byte
	nf := splitFields(s, &fields)
	if nf == 0 {
		return trace.Ref{}, true, ""
	}
	if fields[0][0] == '#' {
		return trace.Ref{}, true, ""
	}
	if nf < 2 {
		return trace.Ref{}, false, fmt.Sprintf("want \"<label> <hexaddr>\", got %q", s)
	}
	if nf > 3 {
		return trace.Ref{}, false, fmt.Sprintf("too many fields (%d, want 2 or 3)", nf)
	}
	label, ok := parseDecimal(fields[0], 2)
	if !ok {
		return trace.Ref{}, false, fmt.Sprintf("bad label %q (want 0, 1 or 2)", fields[0])
	}
	addr, ok := parseHex(fields[1])
	if !ok {
		return trace.Ref{}, false, fmt.Sprintf("bad hex address %q", fields[1])
	}
	ref = trace.Ref{Addr: addr, Kind: trace.Kind(label)}
	if nf == 3 {
		size, ok := parseDecimal(fields[2], 255)
		if !ok || size == 0 {
			return trace.Ref{}, false, fmt.Sprintf("bad access size %q (want 1..255)", fields[2])
		}
		ref.Size = uint8(size)
	}
	return ref, false, ""
}

// splitFields splits on runs of spaces and tabs into the caller's fixed
// array — allocation-free on the hot path — and returns the field count.
// Splitting stops after filling the array, so a count of len(fields)
// means "len(fields) or more".
func splitFields(s []byte, fields *[4][]byte) int {
	n, i := 0, 0
	for i < len(s) && n < len(fields) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		for i < len(s) && s[i] != ' ' && s[i] != '\t' {
			i++
		}
		fields[n] = s[start:i]
		n++
	}
	return n
}

// parseDecimal parses a small non-negative decimal with an inclusive cap.
func parseDecimal(s []byte, max uint64) (uint64, bool) {
	if len(s) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		if v > max {
			return 0, false
		}
	}
	return v, true
}

// parseHex parses a hexadecimal address with an optional 0x/0X prefix.
func parseHex(s []byte) (uint64, bool) {
	if len(s) > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for _, c := range s {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
