//go:build !linux && !darwin

package extrace

import (
	"errors"
	"os"
)

// mmapAvailable reports whether this build can memory-map trace files.
const mmapAvailable = false

var errMmapUnsupported = errors.New("extrace: mmap is not supported on this platform")

// mmapFile is the portable stub: ingestion falls back to the buffered
// streaming path on platforms without the mmap fast path.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errMmapUnsupported
}
