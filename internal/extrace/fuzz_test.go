package extrace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"memexplore/internal/trace"
)

// FuzzParseDin feeds arbitrary bytes through the streaming reader (which
// may route them to the din, binary or gzip path depending on magic) and
// checks the structural invariants: no panics, textual parse errors carry
// a positive line number, binary ones a record offset, accepted records
// agree with the stats counters, and accepted din input round-trips
// through WriteDin.
func FuzzParseDin(f *testing.F) {
	f.Add([]byte("0 10\n1 ff 4\n2 deadbeef\n"))
	f.Add([]byte("# comment\r\n\r\n0 0x1f\n"))
	f.Add([]byte("bogus line\n0 10\n"))
	f.Add([]byte("9 9\n"))
	f.Add([]byte(binaryMagic + "\x03\x00\x04\x10"))
	f.Add([]byte(binaryMagic + "\x0b\x00\x00"))
	f.Add([]byte(binaryV2Magic))
	f.Add([]byte(binaryV2Magic + "\x01\x00\x00\x00"))
	f.Add([]byte("\x1f\x8bnot gzip"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, src []byte) {
		r := NewReader(bytes.NewReader(src), Options{MaxRecords: 1 << 16})
		var refs []trace.Ref
		buf := make([]trace.Ref, 7)
		var finalErr error
		for {
			n, err := r.Read(buf)
			refs = append(refs, buf[:n]...)
			if err != nil {
				if err != io.EOF {
					finalErr = err
				}
				break
			}
		}
		var perr *ParseError
		if errors.As(finalErr, &perr) {
			switch perr.Format {
			case "din":
				if perr.Line <= 0 {
					t.Fatalf("din parse error without a line number: %+v", perr)
				}
			case "binary":
				if perr.Line != 0 || perr.Offset < int64(len(binaryMagic)) {
					t.Fatalf("binary parse error position: %+v", perr)
				}
			case "binaryv2":
				if perr.Line != 0 || perr.Offset < int64(len(binaryV2Magic)) {
					t.Fatalf("binary v2 parse error position: %+v", perr)
				}
			default:
				t.Fatalf("parse error with unknown format: %+v", perr)
			}
		}
		st := r.Stats()
		if st.Records != int64(len(refs)) {
			t.Fatalf("stats count %d records, reader yielded %d", st.Records, len(refs))
		}
		if st.Reads+st.Writes+st.Fetches != st.Records {
			t.Fatalf("kind mix %d+%d+%d does not partition %d records",
				st.Reads, st.Writes, st.Fetches, st.Records)
		}
		if finalErr != nil || len(refs) == 0 || st.Format != "din" {
			return
		}
		// Fully accepted din input must round-trip through WriteDin.
		var out bytes.Buffer
		if _, err := WriteDin(&out, trace.FromRefs(refs).Reader()); err != nil {
			t.Fatalf("WriteDin after successful parse: %v", err)
		}
		r2 := NewReader(&out, Options{})
		again := make([]trace.Ref, 0, len(refs))
		for {
			n, err := r2.Read(buf)
			again = append(again, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-reading our own din output: %v", err)
			}
		}
		if len(again) != len(refs) {
			t.Fatalf("round trip changed length: %d -> %d", len(refs), len(again))
		}
		for i := range refs {
			if again[i].Addr != refs[i].Addr || again[i].Kind != refs[i].Kind ||
				again[i].EffectiveSize() != refs[i].EffectiveSize() {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, refs[i], again[i])
			}
		}
	})
}

// FuzzParseBinaryV2 targets the columnar chunk decoder: the fuzz input is
// framed as v2 chunk data (the magic is prepended so every input reaches
// the chunk path) and must never panic, must position parse errors at or
// after the magic, must keep the stats counters consistent with the
// yielded records, and — when fully accepted — must round-trip through
// WriteBinaryV2 bit-for-bit.
func FuzzParseBinaryV2(f *testing.F) {
	var seed bytes.Buffer
	WriteBinaryV2(&seed, trace.FromRefs([]trace.Ref{
		{Addr: 0x1000, Kind: trace.Read},
		{Addr: 0x1040, Kind: trace.Write, Size: 4},
		{Addr: 0xfff, Kind: trace.Fetch},
	}).Reader())
	f.Add(seed.Bytes()[len(binaryV2Magic):])
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x40})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, chunkData []byte) {
		src := append([]byte(binaryV2Magic), chunkData...)
		r := NewReader(bytes.NewReader(src), Options{MaxRecords: 1 << 16})
		var refs []trace.Ref
		buf := make([]trace.Ref, 7)
		var finalErr error
		for {
			n, err := r.Read(buf)
			refs = append(refs, buf[:n]...)
			if err != nil {
				if err != io.EOF {
					finalErr = err
				}
				break
			}
		}
		var perr *ParseError
		if errors.As(finalErr, &perr) {
			if perr.Format != "binaryv2" {
				t.Fatalf("parse error format %q from v2 input: %+v", perr.Format, perr)
			}
			if perr.Line != 0 || perr.Offset < int64(len(binaryV2Magic)) {
				t.Fatalf("binary v2 parse error position: %+v", perr)
			}
		}
		st := r.Stats()
		if st.Records != int64(len(refs)) {
			t.Fatalf("stats count %d records, reader yielded %d", st.Records, len(refs))
		}
		if st.Reads+st.Writes+st.Fetches != st.Records {
			t.Fatalf("kind mix %d+%d+%d does not partition %d records",
				st.Reads, st.Writes, st.Fetches, st.Records)
		}
		if finalErr != nil || len(refs) == 0 {
			return
		}
		// Fully accepted v2 input must round-trip bit-for-bit.
		var out bytes.Buffer
		if _, err := WriteBinaryV2(&out, trace.FromRefs(refs).Reader()); err != nil {
			t.Fatalf("WriteBinaryV2 after successful parse: %v", err)
		}
		r2 := NewReader(&out, Options{})
		again := make([]trace.Ref, 0, len(refs))
		for {
			n, err := r2.Read(buf)
			again = append(again, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-reading our own v2 output: %v", err)
			}
		}
		if len(again) != len(refs) {
			t.Fatalf("round trip changed length: %d -> %d", len(refs), len(again))
		}
		for i := range refs {
			if again[i] != refs[i] {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, refs[i], again[i])
			}
		}
	})
}

// FuzzParseIndexFooter targets the MXTI01 footer parser through the full
// reading stack: a valid chunk stream followed by the index magic and
// arbitrary footer bytes must always decode every record and end in clean
// EOF — a truncated or corrupt footer degrades to index-less reading,
// never a parse error and never a panic. The seeded corpus starts from a
// genuine footer and every interesting truncation of it.
func FuzzParseIndexFooter(f *testing.F) {
	refs := make([]trace.Ref, v2ChunkRecords+37)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(1+i%5) << 20, Kind: trace.Kind(i % 3), Size: uint8(i % 9)}
	}
	var indexed, bare bytes.Buffer
	if _, err := WriteBinaryV2(&indexed, trace.FromRefs(refs).Reader()); err != nil {
		f.Fatal(err)
	}
	if _, err := WriteBinaryV2Options(&bare, trace.FromRefs(refs).Reader(), V2WriterOptions{NoIndex: true}); err != nil {
		f.Fatal(err)
	}
	chunks := bare.Bytes()
	footer := append([]byte{}, indexed.Bytes()[len(chunks):]...)
	f.Add(footer)
	for _, cut := range []int{1, 7, 8, 9, 12, 16, len(footer) / 2, len(footer) - 1} {
		if cut <= len(footer) {
			f.Add(footer[:cut])
		}
	}
	f.Add([]byte{})
	f.Add(append([]byte(indexMagic), 0xff, 0xff, 0xff, 0x7f))
	f.Fuzz(func(t *testing.T, tail []byte) {
		if !bytes.HasPrefix(tail, []byte(indexMagic)) {
			tail = append([]byte(indexMagic), tail...)
		}
		src := append(append([]byte{}, chunks...), tail...)

		// Streaming leg (non-seekable, so the footer is met in-line).
		r := NewReader(nonSeekable{bytes.NewReader(src)}, Options{})
		var got int
		buf := make([]trace.Ref, 129)
		for {
			n, err := r.Read(buf)
			got += n
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("footer bytes leaked a parse error past the chunk stream: %v", err)
			}
		}
		if got != len(refs) {
			t.Fatalf("decoded %d records, want %d regardless of footer state", got, len(refs))
		}
		if st := r.Stats(); st.Records != int64(len(refs)) || st.ChunksSkipped != 0 {
			t.Fatalf("stats diverged under a fuzzed footer: %+v", st)
		}

		// Probe leg (seekable): must never panic; any index it does accept
		// passed CRC and framing validation against this very stream.
		if ix := ProbeIndex(bytes.NewReader(src)); ix != nil && ix.Records < 0 {
			t.Fatalf("probe produced a negative record count: %+v", ix)
		}
	})
}
