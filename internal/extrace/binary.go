package extrace

import (
	"bufio"
	"fmt"
	"io"

	"memexplore/internal/trace"
)

// binaryMagic opens every mxt binary trace. The "\r\n" tail catches
// text-mode newline mangling the way the PNG signature does.
const binaryMagic = "MXTB01\r\n"

// Binary record layout (after the magic), one record per reference:
//
//	byte 0    payload length n, 2 ≤ n ≤ 10
//	byte 1    kind label (0 read, 1 write, 2 ifetch)
//	byte 2    access size in bytes (0 = default 1)
//	bytes 3.. address, little-endian, trailing zero bytes trimmed (0–8)
//
// The length prefix makes records self-framing: a malformed-but-framed
// record (bad label) can be skipped, while a truncated record destroys
// framing and is always fatal. Clean EOF is only legal at a record
// boundary.
const (
	binMinRecord = 2  // kind + size, zero address bytes
	binMaxRecord = 10 // kind + size + 8 address bytes
)

// binDecoder streams the binary format.
type binDecoder struct {
	br   *bufio.Reader
	opts Options
	acc  *accumulator
	off  int64 // decompressed byte offset of the next record start
	buf  [binMaxRecord]byte
}

func (d *binDecoder) next() (trace.Ref, error) {
	for {
		recStart := d.off
		n, err := d.br.ReadByte()
		if err == io.EOF {
			return trace.Ref{}, io.EOF
		}
		if err != nil {
			return trace.Ref{}, fmt.Errorf("extrace: reading binary record: %w", err)
		}
		d.off++
		if int(n) < binMinRecord || int(n) > binMaxRecord {
			// The framing itself is broken; skipping is impossible.
			return trace.Ref{}, &ParseError{Format: "binary", Offset: recStart,
				Reason: fmt.Sprintf("bad record length %d (want %d..%d)", n, binMinRecord, binMaxRecord)}
		}
		p := d.buf[:n]
		if _, err := io.ReadFull(d.br, p); err != nil {
			return trace.Ref{}, &ParseError{Format: "binary", Offset: recStart,
				Reason: fmt.Sprintf("truncated record: want %d payload bytes: %v", n, err)}
		}
		d.off += int64(n)
		if p[0] > 2 {
			if d.opts.SkipMalformed {
				d.acc.reject(1)
				continue
			}
			return trace.Ref{}, &ParseError{Format: "binary", Offset: recStart,
				Reason: fmt.Sprintf("bad kind label %d (want 0, 1 or 2)", p[0])}
		}
		var addr uint64
		for i, b := range p[2:] {
			addr |= uint64(b) << (8 * i)
		}
		return trace.Ref{Addr: addr, Kind: trace.Kind(p[0]), Size: p[1]}, nil
	}
}

// WriteBinary streams src to w in the mxt binary format and returns the
// record count. Records preserve the Size byte exactly, so binary
// round-trips reproduce every trace.Ref bit-for-bit.
func WriteBinary(w io.Writer, src trace.Source) (int64, error) {
	bw := bufio.NewWriterSize(w, 64*1024)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return 0, fmt.Errorf("extrace: writing binary magic: %w", err)
	}
	var written int64
	var rec [binMaxRecord + 1]byte
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return written, fmt.Errorf("extrace: reading source after %d records: %w", written, err)
		}
		addrLen := 0
		for a := r.Addr; a != 0; a >>= 8 {
			addrLen++
		}
		rec[0] = byte(binMinRecord + addrLen)
		rec[1] = byte(r.Kind)
		rec[2] = r.Size
		for i, a := 0, r.Addr; i < addrLen; i, a = i+1, a>>8 {
			rec[3+i] = byte(a)
		}
		if _, err := bw.Write(rec[:3+addrLen]); err != nil {
			return written, fmt.Errorf("extrace: writing binary record %d: %w", written, err)
		}
		written++
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("extrace: flushing binary output: %w", err)
	}
	return written, nil
}
