package extrace

import (
	"fmt"
	"sort"
	"strings"

	"memexplore/internal/trace"
)

// IngestStats summarizes everything a Reader observed, accumulated in the
// same pass that feeds the simulator — no second scan. The JSON tags are
// the wire form served by POST /v1/explore-trace; they are stable API.
type IngestStats struct {
	// Format is the detected trace format: "din", "binary", or "" when
	// nothing was read yet.
	Format string `json:"format"`
	// Gzip reports whether the stream was gzip-compressed.
	Gzip bool `json:"gzip"`
	// Records is the number of accepted references.
	Records int64 `json:"records"`
	// Rejects counts malformed records skipped under Options.SkipMalformed.
	Rejects int64 `json:"rejects"`
	// BytesRead counts the wire bytes consumed from the underlying reader
	// (compressed bytes for gzip input).
	BytesRead int64 `json:"bytes_read"`

	// Reads, Writes, Fetches partition the accepted records by kind.
	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
	Fetches int64 `json:"fetches"`

	// MinAddr and MaxAddr bound the touched byte addresses (valid when
	// Records > 0).
	MinAddr uint64 `json:"min_addr"`
	MaxAddr uint64 `json:"max_addr"`

	// FootprintLines counts the distinct LineGranule-byte granules
	// touched; FootprintBytes is that count scaled to bytes — an upper
	// bound on (and for dense traces a good estimate of) the data
	// footprint. The count saturates at a fixed cap so ingest memory is
	// bounded by the trace's footprint, never by its length.
	FootprintLines     int  `json:"footprint_lines"`
	FootprintBytes     int  `json:"footprint_bytes"`
	LineGranule        int  `json:"line_granule"`
	FootprintSaturated bool `json:"footprint_saturated,omitempty"`

	// Strides is the histogram of signed address deltas between
	// consecutive records, capped to the most common entries; the rest
	// aggregate under StrideOther. SequentialFrac is the fraction of
	// consecutive pairs with |delta| ≤ 8 bytes.
	Strides        map[int64]int64 `json:"strides,omitempty"`
	StrideOther    int64           `json:"stride_other,omitempty"`
	SequentialFrac float64         `json:"sequential_frac"`
}

// String renders a compact multi-line ingest report.
func (s IngestStats) String() string {
	var sb strings.Builder
	format := s.Format
	if format == "" {
		format = "unknown"
	}
	if s.Gzip {
		format += "+gzip"
	}
	fmt.Fprintf(&sb, "format          %s (%d wire bytes)\n", format, s.BytesRead)
	fmt.Fprintf(&sb, "records         %d (reads %d, writes %d, fetches %d, rejects %d)\n",
		s.Records, s.Reads, s.Writes, s.Fetches, s.Rejects)
	fmt.Fprintf(&sb, "address range   [%#x, %#x]\n", s.MinAddr, s.MaxAddr)
	sat := ""
	if s.FootprintSaturated {
		sat = " (saturated)"
	}
	fmt.Fprintf(&sb, "footprint       ~%d bytes (%d × %d-byte lines)%s\n",
		s.FootprintBytes, s.FootprintLines, s.LineGranule, sat)
	fmt.Fprintf(&sb, "sequential frac %.3f (|stride| ≤ 8)\n", s.SequentialFrac)
	if len(s.Strides) > 0 {
		sb.WriteString("top strides:\n")
		for _, st := range s.TopStrides() {
			fmt.Fprintf(&sb, "  %+6d : %d\n", st, s.Strides[st])
		}
		if s.StrideOther > 0 {
			fmt.Fprintf(&sb, "  other  : %d\n", s.StrideOther)
		}
	}
	return sb.String()
}

// TopStrides returns the retained strides ordered by descending count
// (ties by ascending stride).
func (s IngestStats) TopStrides() []int64 {
	out := make([]int64, 0, len(s.Strides))
	for st := range s.Strides {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if s.Strides[out[i]] != s.Strides[out[j]] {
			return s.Strides[out[i]] > s.Strides[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// accumulator is the constant-memory running state behind IngestStats.
// Decoders report rejected records only through reject(); note/noteBlock
// see accepted records only, so a rejected record can never reach the
// counts, the address range, the footprint, or the stride histogram.
type accumulator struct {
	st IngestStats

	prevAddr   uint64
	prevSet    bool
	sequential int64

	granules map[uint64]struct{}
	// lastGranule caches the most recent granule known to be accounted
	// for, short-circuiting the map probe on granule-local streaks — the
	// ingest hot path for sequential traces.
	lastGranule   uint64
	lastGranuleOK bool

	strides  map[int64]int64
	overflow int64 // strides beyond maxStrideEntries
	// The current run of identical deltas, folded into the histogram only
	// when the delta changes (or at snapshot) — one map write per run
	// instead of one per record.
	runDelta int64
	runCount int64
	runSet   bool
}

func newAccumulator() *accumulator {
	return &accumulator{
		granules: make(map[uint64]struct{}),
		strides:  make(map[int64]int64),
	}
}

// reject counts n records skipped as malformed. It is the only path by
// which rejection reaches the statistics.
func (a *accumulator) reject(n int64) {
	a.st.Rejects += n
}

// note records one accepted reference.
func (a *accumulator) note(r trace.Ref) {
	a.st.Records++
	switch r.Kind {
	case trace.Read:
		a.st.Reads++
	case trace.Write:
		a.st.Writes++
	case trace.Fetch:
		a.st.Fetches++
	}
	last := r.LastByte()
	if a.st.Records == 1 {
		a.st.MinAddr, a.st.MaxAddr = r.Addr, last
	} else {
		if r.Addr < a.st.MinAddr {
			a.st.MinAddr = r.Addr
		}
		if last > a.st.MaxAddr {
			a.st.MaxAddr = last
		}
	}
	g0, g1 := r.Addr/LineGranule, last/LineGranule
	if !a.lastGranuleOK || g0 != a.lastGranule || g1 != a.lastGranule {
		for g := g0; g <= g1; g++ {
			if _, ok := a.granules[g]; ok {
				continue
			}
			if len(a.granules) >= maxFootprintGranules {
				a.st.FootprintSaturated = true
				break
			}
			a.granules[g] = struct{}{}
		}
		a.lastGranule, a.lastGranuleOK = g1, true
	}
	if a.prevSet {
		delta := int64(r.Addr) - int64(a.prevAddr)
		if delta >= -8 && delta <= 8 {
			a.sequential++
		}
		if a.runSet && delta == a.runDelta {
			a.runCount++
		} else {
			a.flushRun()
			a.runDelta, a.runCount, a.runSet = delta, 1, true
		}
	}
	a.prevAddr = r.Addr
	a.prevSet = true
}

// noteBlock records a chunk of accepted references — the bulk-decode
// counterpart of note.
func (a *accumulator) noteBlock(refs []trace.Ref) {
	for i := range refs {
		a.note(refs[i])
	}
}

// flushRun folds the pending delta run into the histogram, preserving
// the capped-map semantics (a delta absent from a full map overflows).
func (a *accumulator) flushRun() {
	if !a.runSet || a.runCount == 0 {
		return
	}
	if _, ok := a.strides[a.runDelta]; ok || len(a.strides) < maxStrideEntries {
		a.strides[a.runDelta] += a.runCount
	} else {
		a.overflow += a.runCount
	}
	a.runCount = 0
	a.runSet = false
}

// snapshot folds the running state into a reportable IngestStats.
func (a *accumulator) snapshot() IngestStats {
	a.flushRun()
	st := a.st
	st.LineGranule = LineGranule
	st.FootprintLines = len(a.granules)
	st.FootprintBytes = st.FootprintLines * LineGranule
	if st.Records > 1 {
		st.SequentialFrac = float64(a.sequential) / float64(st.Records-1)
	}
	// Keep the most frequent strides; fold the tail into StrideOther.
	type sc struct {
		stride int64
		count  int64
	}
	all := make([]sc, 0, len(a.strides))
	for s, c := range a.strides {
		all = append(all, sc{s, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].stride < all[j].stride
	})
	st.Strides = make(map[int64]int64, reportedStrides)
	st.StrideOther = a.overflow
	for i, e := range all {
		if i < reportedStrides {
			st.Strides[e.stride] = e.count
		} else {
			st.StrideOther += e.count
		}
	}
	return st
}
