package extrace

import (
	"fmt"
	"sort"
	"strings"

	"memexplore/internal/trace"
)

// IngestStats summarizes everything a Reader observed, accumulated in the
// same pass that feeds the simulator — no second scan. The JSON tags are
// the wire form served by POST /v1/explore-trace; they are stable API.
type IngestStats struct {
	// Format is the detected trace format: "din", "binary", or "" when
	// nothing was read yet.
	Format string `json:"format"`
	// Gzip reports whether the stream was gzip-compressed.
	Gzip bool `json:"gzip"`
	// Records is the number of accepted references.
	Records int64 `json:"records"`
	// Rejects counts malformed records skipped under Options.SkipMalformed.
	Rejects int64 `json:"rejects"`
	// BytesRead counts the wire bytes consumed from the underlying reader
	// (compressed bytes for gzip input). On the mmap fast path it is the
	// mapped file size — the whole file is the reader's working set
	// whether or not every chunk was decoded.
	BytesRead int64 `json:"bytes_read"`
	// Mmap reports that the stream was ingested through the zero-copy
	// memory-mapped fast path.
	Mmap bool `json:"mmap,omitempty"`

	// ChunksSkipped / RecordsSkipped count whole mxt v2 chunks (and the
	// records inside them) stepped over via the MXTI01 index instead of
	// decoded — the records still count in Records and the kind totals,
	// taken from the index entries.
	ChunksSkipped  int64 `json:"chunks_skipped,omitempty"`
	RecordsSkipped int64 `json:"records_skipped,omitempty"`

	// StoredSampleRate / StoredSampleSeed echo the transcode-time sampling
	// parameters recorded in the artifact's MXTI01 footer (zero for
	// unsampled artifacts): the stream IS a spatial sample of
	// StoredSourceRecords original records, thinned by the same seeded
	// hash the sweep-time filter uses.
	StoredSampleRate    float64 `json:"stored_sample_rate,omitempty"`
	StoredSampleSeed    uint64  `json:"stored_sample_seed,omitempty"`
	StoredSourceRecords int64   `json:"stored_source_records,omitempty"`

	// Reads, Writes, Fetches partition the accepted records by kind.
	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
	Fetches int64 `json:"fetches"`

	// MinAddr and MaxAddr bound the touched byte addresses (valid when
	// Records > 0).
	MinAddr uint64 `json:"min_addr"`
	MaxAddr uint64 `json:"max_addr"`

	// FootprintLines counts the distinct LineGranule-byte granules
	// touched; FootprintBytes is that count scaled to bytes — an upper
	// bound on (and for dense traces a good estimate of) the data
	// footprint. The count saturates at a fixed cap so ingest memory is
	// bounded by the trace's footprint, never by its length.
	FootprintLines     int  `json:"footprint_lines"`
	FootprintBytes     int  `json:"footprint_bytes"`
	LineGranule        int  `json:"line_granule"`
	FootprintSaturated bool `json:"footprint_saturated,omitempty"`

	// Strides is the histogram of signed address deltas between
	// consecutive records, capped to the most common entries; the rest
	// aggregate under StrideOther. SequentialFrac is the fraction of
	// consecutive pairs with |delta| ≤ 8 bytes.
	Strides        map[int64]int64 `json:"strides,omitempty"`
	StrideOther    int64           `json:"stride_other,omitempty"`
	SequentialFrac float64         `json:"sequential_frac"`
}

// String renders a compact multi-line ingest report.
func (s IngestStats) String() string {
	var sb strings.Builder
	format := s.Format
	if format == "" {
		format = "unknown"
	}
	if s.Gzip {
		format += "+gzip"
	}
	fmt.Fprintf(&sb, "format          %s (%d wire bytes)\n", format, s.BytesRead)
	fmt.Fprintf(&sb, "records         %d (reads %d, writes %d, fetches %d, rejects %d)\n",
		s.Records, s.Reads, s.Writes, s.Fetches, s.Rejects)
	fmt.Fprintf(&sb, "address range   [%#x, %#x]\n", s.MinAddr, s.MaxAddr)
	sat := ""
	if s.FootprintSaturated {
		sat = " (saturated)"
	}
	fmt.Fprintf(&sb, "footprint       ~%d bytes (%d × %d-byte lines)%s\n",
		s.FootprintBytes, s.FootprintLines, s.LineGranule, sat)
	fmt.Fprintf(&sb, "sequential frac %.3f (|stride| ≤ 8)\n", s.SequentialFrac)
	if len(s.Strides) > 0 {
		sb.WriteString("top strides:\n")
		for _, st := range s.TopStrides() {
			fmt.Fprintf(&sb, "  %+6d : %d\n", st, s.Strides[st])
		}
		if s.StrideOther > 0 {
			fmt.Fprintf(&sb, "  other  : %d\n", s.StrideOther)
		}
	}
	return sb.String()
}

// TopStrides returns the retained strides ordered by descending count
// (ties by ascending stride).
func (s IngestStats) TopStrides() []int64 {
	out := make([]int64, 0, len(s.Strides))
	for st := range s.Strides {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if s.Strides[out[i]] != s.Strides[out[j]] {
			return s.Strides[out[i]] > s.Strides[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// accumulator is the constant-memory running state behind IngestStats.
// Decoders report rejected records only through reject(); note/noteBlock
// see accepted records only, so a rejected record can never reach the
// counts, the address range, the footprint, or the stride histogram.
type accumulator struct {
	st IngestStats

	prevAddr   uint64
	prevSet    bool
	sequential int64

	granules map[uint64]struct{}
	// gcache is a 4-way direct-mapped cache of granules known to be
	// accounted for, short-circuiting the map probe on granule-local
	// streaks AND short-period alternations (a ±stride ping-pong between
	// two granules defeats a single-entry cache) — the ingest hot path.
	gcacheKey [4]uint64
	gcacheOK  [4]bool

	strides  strideTable
	overflow int64 // strides beyond maxStrideEntries
	// The current run of identical deltas, folded into the histogram only
	// when the delta changes (or at snapshot) — one table write per run
	// instead of one per record.
	runDelta int64
	runCount int64
	runSet   bool
}

func newAccumulator() *accumulator {
	return &accumulator{
		granules: make(map[uint64]struct{}),
	}
}

// strideTable is the exact stride histogram kept during ingest: an
// open-addressed hash table over plain arrays, sized at 4× the
// maxStrideEntries capacity so probe chains stay short. It replaces a
// Go map on the decode hot path — the stride mix of real traces churns
// through it once per delta run, and the array probe is several times
// cheaper than a map assign.
const strideTableSlots = 4 * maxStrideEntries // power of two

type strideTable struct {
	keys   []int64
	counts []int64 // 0 = empty slot (stored counts are always positive)
	n      int     // distinct strides stored, capped at maxStrideEntries
}

// add folds count occurrences of delta into the table, reporting false
// when the table is full and delta absent (the caller overflows it) —
// the same capped-histogram semantics the map had.
func (t *strideTable) add(delta, count int64) bool {
	if t.counts == nil {
		t.keys = make([]int64, strideTableSlots)
		t.counts = make([]int64, strideTableSlots)
	}
	i := int(Mix64(uint64(delta))) & (strideTableSlots - 1)
	for {
		if t.counts[i] == 0 {
			if t.n >= maxStrideEntries {
				return false
			}
			t.keys[i], t.counts[i] = delta, count
			t.n++
			return true
		}
		if t.keys[i] == delta {
			t.counts[i] += count
			return true
		}
		i = (i + 1) & (strideTableSlots - 1)
	}
}

// reject counts n records skipped as malformed. It is the only path by
// which rejection reaches the statistics.
func (a *accumulator) reject(n int64) {
	a.st.Rejects += n
}

// skipChunk accounts a whole indexed chunk stepped over without
// decoding: its record and kind counts come from the index entry. The
// profile fields (address range, footprint, strides) cannot be
// reconstructed for records never decoded — the Reader substitutes the
// footer's encode-time profile at end of stream instead — so the
// consecutive-pair chain is cut here to keep garbage deltas out of the
// local histogram.
func (a *accumulator) skipChunk(e *ChunkIndexEntry) {
	a.st.Records += e.Records
	a.st.Reads += e.Reads
	a.st.Writes += e.Writes
	a.st.Fetches += e.Fetches()
	a.st.ChunksSkipped++
	a.st.RecordsSkipped += e.Records
	a.prevSet = false
}

// note records one accepted reference.
func (a *accumulator) note(r trace.Ref) {
	a.st.Records++
	switch r.Kind {
	case trace.Read:
		a.st.Reads++
	case trace.Write:
		a.st.Writes++
	case trace.Fetch:
		a.st.Fetches++
	}
	last := r.LastByte()
	if a.st.Records == 1 {
		a.st.MinAddr, a.st.MaxAddr = r.Addr, last
	} else {
		if r.Addr < a.st.MinAddr {
			a.st.MinAddr = r.Addr
		}
		if last > a.st.MaxAddr {
			a.st.MaxAddr = last
		}
	}
	g0, g1 := r.Addr/LineGranule, last/LineGranule
	if w0 := g0 & 3; !a.gcacheOK[w0] || a.gcacheKey[w0] != g0 || g1 != g0 {
		for g := g0; g <= g1; g++ {
			if w := g & 3; a.gcacheOK[w] && a.gcacheKey[w] == g {
				continue
			}
			if _, ok := a.granules[g]; !ok {
				if len(a.granules) >= maxFootprintGranules {
					a.st.FootprintSaturated = true
					break
				}
				a.granules[g] = struct{}{}
			}
			a.gcacheKey[g&3], a.gcacheOK[g&3] = g, true
		}
	}
	if a.prevSet {
		delta := int64(r.Addr) - int64(a.prevAddr)
		if delta >= -8 && delta <= 8 {
			a.sequential++
		}
		if a.runSet && delta == a.runDelta {
			a.runCount++
		} else {
			a.flushRun()
			a.runDelta, a.runCount, a.runSet = delta, 1, true
		}
	}
	a.prevAddr = r.Addr
	a.prevSet = true
}

// noteBlock records a chunk of accepted references — the bulk-decode
// counterpart of note.
func (a *accumulator) noteBlock(refs []trace.Ref) {
	for i := range refs {
		a.note(refs[i])
	}
}

// flushRun folds the pending delta run into the histogram, preserving
// the capped-histogram semantics (a delta absent from a full table
// overflows).
func (a *accumulator) flushRun() {
	if !a.runSet || a.runCount == 0 {
		return
	}
	if !a.strides.add(a.runDelta, a.runCount) {
		a.overflow += a.runCount
	}
	a.runCount = 0
	a.runSet = false
}

// snapshot folds the running state into a reportable IngestStats.
func (a *accumulator) snapshot() IngestStats {
	a.flushRun()
	st := a.st
	st.LineGranule = LineGranule
	st.FootprintLines = len(a.granules)
	st.FootprintBytes = st.FootprintLines * LineGranule
	if st.Records > 1 {
		st.SequentialFrac = float64(a.sequential) / float64(st.Records-1)
	}
	// Keep the most frequent strides; fold the tail into StrideOther.
	type sc struct {
		stride int64
		count  int64
	}
	all := make([]sc, 0, a.strides.n)
	for i, c := range a.strides.counts {
		if c > 0 {
			all = append(all, sc{a.strides.keys[i], c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].stride < all[j].stride
	})
	st.Strides = make(map[int64]int64, reportedStrides)
	st.StrideOther = a.overflow
	for i, e := range all {
		if i < reportedStrides {
			st.Strides[e.stride] = e.count
		} else {
			st.StrideOther += e.count
		}
	}
	return st
}
