package extrace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"memexplore/internal/trace"
)

// binaryV2Magic opens every mxt v2 columnar trace. Like the v1 magic,
// the "\r\n" tail catches text-mode newline mangling.
const binaryV2Magic = "MXTB02\r\n"

// mxt v2 columnar chunk layout (after the magic): a sequence of
// self-framed chunks, each
//
//	header (16 bytes, little-endian uint32s):
//	  [0:4]   record count n (1 ≤ n ≤ v2MaxChunkRecords)
//	  [4:8]   flags (bit 0: a size column follows the kind column)
//	  [8:12]  addrBytes — byte length of the address column
//	  [12:16] CRC-32 (IEEE) of the payload that follows
//	payload (addrBytes + ⌈n/4⌉ [+ n] bytes):
//	  address column: the first record's address as a plain uvarint,
//	    then n−1 zig-zag-encoded deltas (uvarint of zigzag(addrᵢ−addrᵢ₋₁));
//	    each chunk restarts from an absolute address, so chunks decode
//	    independently of one another
//	  kind column: 2 bits per record, record i in byte i/4 at bit (i%4)·2
//	  size column (only when flags bit 0): one byte per record; omitted
//	    when every size in the chunk is 0 (the default-size common case)
//
// Decoding is columnar and branch-light: one varint loop reconstructs
// every address, one unpack loop spreads the kinds, and a single scan
// validates kind labels — no per-record function calls, so a whole chunk
// lands in the caller's pooled slab in one readChunk. Clean EOF is only
// legal at a chunk boundary. A CRC mismatch or an undecodable column is
// chunk-level damage: fatal normally, or — because the frame length is
// still trusted — skippable as n rejects under Options.SkipMalformed. A
// bad kind label (the 2-bit field admits 3) is record-level damage:
// fatal normally, compacted away as a reject in skip mode.
const (
	v2ChunkRecords    = 4096  // records per chunk written by WriteBinaryV2
	v2MaxChunkRecords = 65536 // cap accepted by the decoder
	v2HeaderBytes     = 16
	v2FlagSizes       = 1 // header flag bit 0: size column present
	v2MaxUvarint      = 10
)

// zigzag maps a signed delta to an unsigned varint-friendly value
// (0→0, −1→1, 1→2, …); unzigzag inverts it.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// binV2Decoder streams the v2 columnar format chunk-at-a-time.
type binV2Decoder struct {
	br   *bufio.Reader
	opts Options
	acc  *accumulator
	off  int64 // decompressed byte offset of the next chunk start

	header  [v2HeaderBytes]byte
	payload []byte // reusable payload buffer

	// pend holds records decoded from a chunk larger than the caller's
	// buffer; they drain across readChunk calls before the next chunk is
	// read. The common sweep path hands in full pooled slabs (≥ chunk
	// size), so pend stays unused there.
	pend    []trace.Ref
	pendOff int
}

// readChunk decodes up to len(buf) records directly into buf and
// reports how many it wrote. It returns io.EOF only at a clean chunk
// boundary with no records, and never both records and an error.
func (d *binV2Decoder) readChunk(buf []trace.Ref) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	if d.pendOff < len(d.pend) {
		n := copy(buf, d.pend[d.pendOff:])
		d.pendOff += n
		return n, nil
	}
	for {
		chunkStart := d.off
		if _, err := io.ReadFull(d.br, d.header[:]); err != nil {
			if err == io.EOF {
				return 0, io.EOF
			}
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("truncated chunk header: %v", err)}
		}
		count := binary.LittleEndian.Uint32(d.header[0:4])
		flags := binary.LittleEndian.Uint32(d.header[4:8])
		addrBytes := binary.LittleEndian.Uint32(d.header[8:12])
		wantCRC := binary.LittleEndian.Uint32(d.header[12:16])
		if count == 0 || count > v2MaxChunkRecords {
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("bad chunk record count %d (want 1..%d)", count, v2MaxChunkRecords)}
		}
		if flags&^uint32(v2FlagSizes) != 0 {
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("unknown chunk flags %#x", flags)}
		}
		if addrBytes == 0 || addrBytes > count*v2MaxUvarint {
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("bad address column length %d for %d records", addrBytes, count)}
		}
		payloadLen := int(addrBytes) + (int(count)+3)/4
		if flags&v2FlagSizes != 0 {
			payloadLen += int(count)
		}
		if cap(d.payload) < payloadLen {
			d.payload = make([]byte, payloadLen)
		}
		p := d.payload[:payloadLen]
		if _, err := io.ReadFull(d.br, p); err != nil {
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("truncated chunk payload: want %d bytes: %v", payloadLen, err)}
		}
		d.off += int64(v2HeaderBytes + payloadLen)
		if got := crc32.ChecksumIEEE(p); got != wantCRC {
			// The frame length is still trusted, so the damaged chunk can be
			// stepped over whole in skip mode.
			if d.opts.SkipMalformed {
				d.acc.reject(int64(count))
				continue
			}
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("chunk CRC mismatch (got %#08x, want %#08x)", got, wantCRC)}
		}

		// Decode straight into the caller's buffer when it fits; otherwise
		// into the pending slab, drained across calls.
		dst := buf
		spill := len(buf) < int(count)
		if spill {
			if cap(d.pend) < int(count) {
				d.pend = make([]trace.Ref, count)
			}
			dst = d.pend[:count]
		}
		n, perr := d.decodeColumns(dst[:count], p, int(count), int(addrBytes), flags)
		if perr != nil {
			if d.opts.SkipMalformed {
				d.acc.reject(int64(count))
				continue
			}
			perr.Offset = chunkStart
			return 0, perr
		}
		if n == 0 {
			continue // every record of the chunk was a rejected kind
		}
		if spill {
			d.pend = d.pend[:n]
			d.pendOff = copy(buf, d.pend)
			return d.pendOff, nil
		}
		return n, nil
	}
}

// decodeColumns reconstructs one chunk's records into dst[:count] and
// returns how many survived kind validation (compacting rejects away in
// skip mode). A returned *ParseError means undecodable column data — the
// caller decides between fatal and whole-chunk skip — except for bad
// kind labels outside skip mode, which also surface here.
func (d *binV2Decoder) decodeColumns(dst []trace.Ref, p []byte, count, addrBytes int, flags uint32) (int, *ParseError) {
	addrCol := p[:addrBytes]
	kindBytes := (count + 3) / 4
	kindCol := p[addrBytes : addrBytes+kindBytes]
	var sizeCol []byte
	if flags&v2FlagSizes != 0 {
		sizeCol = p[addrBytes+kindBytes : addrBytes+kindBytes+count]
	}

	// Address column: absolute first, zig-zag deltas after.
	pos := 0
	var addr uint64
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(addrCol[pos:])
		if n <= 0 {
			return 0, &ParseError{Format: "binaryv2",
				Reason: fmt.Sprintf("corrupt address column at record %d", i)}
		}
		pos += n
		if i == 0 {
			addr = v
		} else {
			addr += uint64(unzigzag(v))
		}
		dst[i] = trace.Ref{Addr: addr}
	}
	if pos != addrBytes {
		return 0, &ParseError{Format: "binaryv2",
			Reason: fmt.Sprintf("address column length mismatch (%d of %d bytes decoded)", pos, addrBytes)}
	}

	// Kind column: 2 bits per record; padding bits of the last byte are
	// ignored. bad accumulates labels of 3, which no writer emits.
	bad := 0
	for i := 0; i < count; i++ {
		k := kindCol[i>>2] >> ((uint(i) & 3) * 2) & 3
		dst[i].Kind = trace.Kind(k)
		if k == 3 {
			bad++
		}
	}
	if sizeCol != nil {
		for i := 0; i < count; i++ {
			dst[i].Size = sizeCol[i]
		}
	}
	if bad == 0 {
		return count, nil
	}
	if !d.opts.SkipMalformed {
		for i := 0; i < count; i++ {
			if dst[i].Kind == 3 {
				return 0, &ParseError{Format: "binaryv2",
					Reason: fmt.Sprintf("bad kind label 3 in record %d of chunk", i)}
			}
		}
	}
	// Skip mode: compact the bad records away, counting each as a reject.
	w := 0
	for i := 0; i < count; i++ {
		if dst[i].Kind == 3 {
			continue
		}
		dst[w] = dst[i]
		w++
	}
	d.acc.reject(int64(count - w))
	return w, nil
}

// WriteBinaryV2 streams src to w in the mxt v2 columnar chunk format and
// returns the record count. Like WriteBinary it preserves every
// trace.Ref bit-for-bit; unlike it, records land in delta-encoded
// columns that decode a chunk at a time.
func WriteBinaryV2(w io.Writer, src trace.Source) (int64, error) {
	bw := bufio.NewWriterSize(w, 64*1024)
	if _, err := bw.WriteString(binaryV2Magic); err != nil {
		return 0, fmt.Errorf("extrace: writing binary v2 magic: %w", err)
	}
	var (
		written int64
		batch   = make([]trace.Ref, 0, v2ChunkRecords)
		scratch []byte
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		scratch = appendV2Chunk(scratch[:0], batch)
		if _, err := bw.Write(scratch); err != nil {
			return fmt.Errorf("extrace: writing binary v2 chunk after %d records: %w", written, err)
		}
		written += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return written, fmt.Errorf("extrace: reading source after %d records: %w", written+int64(len(batch)), err)
		}
		batch = append(batch, r)
		if len(batch) == v2ChunkRecords {
			if err := flush(); err != nil {
				return written, err
			}
		}
	}
	if err := flush(); err != nil {
		return written, err
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("extrace: flushing binary v2 output: %w", err)
	}
	return written, nil
}

// appendV2Chunk encodes one chunk (header + payload) onto dst.
func appendV2Chunk(dst []byte, recs []trace.Ref) []byte {
	headerAt := len(dst)
	dst = append(dst, make([]byte, v2HeaderBytes)...)
	payloadAt := len(dst)

	// Address column.
	var tmp [v2MaxUvarint]byte
	prev := uint64(0)
	for i, r := range recs {
		var v uint64
		if i == 0 {
			v = r.Addr
		} else {
			v = zigzag(int64(r.Addr - prev))
		}
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
		prev = r.Addr
	}
	addrBytes := len(dst) - payloadAt

	// Kind column, 2 bits per record, zero-padded.
	kindAt := len(dst)
	dst = append(dst, make([]byte, (len(recs)+3)/4)...)
	hasSizes := false
	for i, r := range recs {
		dst[kindAt+(i>>2)] |= byte(r.Kind&3) << ((uint(i) & 3) * 2)
		if r.Size != 0 {
			hasSizes = true
		}
	}

	flags := uint32(0)
	if hasSizes {
		flags |= v2FlagSizes
		for _, r := range recs {
			dst = append(dst, r.Size)
		}
	}

	h := dst[headerAt : headerAt+v2HeaderBytes]
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(recs)))
	binary.LittleEndian.PutUint32(h[4:8], flags)
	binary.LittleEndian.PutUint32(h[8:12], uint32(addrBytes))
	binary.LittleEndian.PutUint32(h[12:16], crc32.ChecksumIEEE(dst[payloadAt:]))
	return dst
}

// TranscodeV2 streams an external trace (din, mxt v1 or v2, gzip
// autodetected) from r into the mxt v2 columnar format on w, returning
// the record count and the ingest profile of the source. opts shapes the
// read side exactly as in NewReader; rejected records are dropped from
// the output.
func TranscodeV2(w io.Writer, r io.Reader, opts Options) (int64, IngestStats, error) {
	rd := NewReader(r, opts)
	defer rd.Close()
	n, err := WriteBinaryV2(w, rd.Source())
	return n, rd.Stats(), err
}

// Source adapts the Reader to the one-record-at-a-time trace.Source
// interface — the shape WriteBinary and WriteBinaryV2 consume — with a
// chunk buffer in between so the Reader's bulk path still applies.
func (r *Reader) Source() trace.Source {
	return &readerSource{rd: r, buf: make([]trace.Ref, v2ChunkRecords)}
}

type readerSource struct {
	rd   *Reader
	buf  []trace.Ref
	i, n int
	err  error
}

func (s *readerSource) Next() (trace.Ref, error) {
	for s.i >= s.n {
		if s.err != nil {
			return trace.Ref{}, s.err
		}
		n, err := s.rd.Read(s.buf)
		s.i, s.n, s.err = 0, n, err
	}
	r := s.buf[s.i]
	s.i++
	return r, nil
}
