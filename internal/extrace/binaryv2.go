package extrace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"memexplore/internal/trace"
)

// binaryV2Magic opens every mxt v2 columnar trace. Like the v1 magic,
// the "\r\n" tail catches text-mode newline mangling.
const binaryV2Magic = "MXTB02\r\n"

// mxt v2 columnar chunk layout (after the magic): a sequence of
// self-framed chunks, each
//
//	header (16 bytes, little-endian uint32s):
//	  [0:4]   record count n (1 ≤ n ≤ v2MaxChunkRecords)
//	  [4:8]   flags (bit 0: a size column follows the kind column)
//	  [8:12]  addrBytes — byte length of the address column
//	  [12:16] CRC-32 (IEEE) of the payload that follows
//	payload (addrBytes + ⌈n/4⌉ [+ n] bytes):
//	  address column: the first record's address as a plain uvarint,
//	    then n−1 zig-zag-encoded deltas (uvarint of zigzag(addrᵢ−addrᵢ₋₁));
//	    each chunk restarts from an absolute address, so chunks decode
//	    independently of one another
//	  kind column: 2 bits per record, record i in byte i/4 at bit (i%4)·2
//	  size column (only when flags bit 0): one byte per record; omitted
//	    when every size in the chunk is 0 (the default-size common case)
//
// After the last chunk, WriteBinaryV2 appends the MXTI01 index footer
// (see index.go); the decoder recognizes its magic where a chunk header
// would start and treats it as the clean end of the chunk stream.
//
// Decoding is columnar and branch-light: one varint loop reconstructs
// every address, one unpack loop spreads the kinds, and a single scan
// validates kind labels — no per-record function calls, so a whole chunk
// lands in the caller's pooled slab in one readChunk. The bytes come
// through a v2input: directly out of a memory-mapped region on the
// zero-copy fast path, or a bufio window otherwise. Clean EOF is only
// legal at a chunk boundary. A CRC mismatch or an undecodable column is
// chunk-level damage: fatal normally, or — because the frame length is
// still trusted — skippable as n rejects under Options.SkipMalformed. A
// bad kind label (the 2-bit field admits 3) is record-level damage:
// fatal normally, compacted away as a reject in skip mode.
const (
	v2ChunkRecords    = 4096  // records per chunk written by WriteBinaryV2
	v2MaxChunkRecords = 65536 // cap accepted by the decoder
	v2HeaderBytes     = 16
	v2FlagSizes       = 1 // header flag bit 0: size column present
	v2MaxUvarint      = 10
)

// zigzag maps a signed delta to an unsigned varint-friendly value
// (0→0, −1→1, 1→2, …); unzigzag inverts it.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Mix64 is the splitmix64 finalizer — the shared hash behind SHARDS
// spatial sampling. Transcode-time sampling (WriteBinaryV2Options) and
// the sweep-time filter in internal/core use this one definition, so a
// stored sample and a live sample with the same rate, seed and granule
// keep exactly the same granules.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SampleThreshold maps a sampling rate in (0, 1] to the Mix64 keep
// threshold: a granule g is kept when Mix64(g^seed) < threshold, so
// threshold/2^64 ≈ rate (saturating near 1).
func SampleThreshold(rate float64) uint64 {
	t := math.Ldexp(rate, 64)
	if t >= math.Ldexp(1, 64) {
		return ^uint64(0)
	}
	return uint64(t)
}

// binV2Decoder streams the v2 columnar format chunk-at-a-time.
type binV2Decoder struct {
	in   v2input
	opts Options
	acc  *accumulator
	off  int64 // decompressed byte offset of the next chunk start

	// idx is the parsed MXTI01 footer: preloaded through probeIndex on
	// seekable sources, or discovered when the streaming decoder reaches
	// the footer. policy, when non-nil, is consulted per indexed chunk
	// before any byte of it is read; chunk tracks the entry matching the
	// stream position. skip accounts the chunks stepped over.
	idx    *TraceIndex
	policy ChunkPolicy
	chunk  int
	skip   SkipSummary

	// pend holds records decoded from a chunk larger than the caller's
	// buffer; they drain across readChunk calls before the next chunk is
	// read. The common sweep path hands in full pooled slabs (≥ chunk
	// size), so pend stays unused there.
	pend    []trace.Ref
	pendOff int
}

// readChunk decodes up to len(buf) records directly into buf and
// reports how many it wrote. It returns io.EOF only at a clean chunk
// boundary with no records, and never both records and an error.
func (d *binV2Decoder) readChunk(buf []trace.Ref) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	if d.pendOff < len(d.pend) {
		n := copy(buf, d.pend[d.pendOff:])
		d.pendOff += n
		return n, nil
	}
	for {
		// Index-guided skipping: when the sweep's filter can prove from
		// the index entry that no record of the next chunk needs
		// simulating, step over the whole frame without touching it.
		if d.policy != nil && d.idx != nil && d.chunk < len(d.idx.Chunks) {
			e := &d.idx.Chunks[d.chunk]
			if e.Offset != d.off {
				// The index disagrees with the actual framing (e.g. a
				// damaged chunk was stepped over in skip mode): stop
				// trusting it and decode everything from here on.
				d.policy = nil
			} else if v := d.policy(e); v != ChunkDecode {
				if err := d.in.skip(e.Bytes); err != nil {
					return 0, &ParseError{Format: "binaryv2", Offset: d.off,
						Reason: fmt.Sprintf("truncated indexed chunk (%d bytes): %v", e.Bytes, err)}
				}
				d.off += e.Bytes
				d.chunk++
				d.skip.Chunks++
				d.skip.Records += e.Records
				d.skip.Bytes += e.Bytes
				if v == ChunkSkipDrop {
					d.skip.Dropped += e.Records
				} else {
					d.skip.Cold[trace.Read] += e.Reads
					d.skip.Cold[trace.Write] += e.Writes
					d.skip.Cold[trace.Fetch] += e.Fetches()
				}
				d.acc.skipChunk(e)
				continue
			}
		}
		chunkStart := d.off
		hdr, err := d.in.next(v2HeaderBytes)
		if err == io.EOF {
			return 0, io.EOF
		}
		if err != nil {
			if isIndexPrefix(hdr) {
				// A truncated footer tail: the chunk stream itself ended
				// cleanly, so degrade to index-less EOF.
				return 0, io.EOF
			}
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("truncated chunk header: %v", err)}
		}
		if string(hdr[:len(indexMagic)]) == indexMagic {
			d.consumeFooter(hdr, chunkStart)
			return 0, io.EOF
		}
		count := binary.LittleEndian.Uint32(hdr[0:4])
		flags := binary.LittleEndian.Uint32(hdr[4:8])
		addrBytes := binary.LittleEndian.Uint32(hdr[8:12])
		wantCRC := binary.LittleEndian.Uint32(hdr[12:16])
		if count == 0 || count > v2MaxChunkRecords {
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("bad chunk record count %d (want 1..%d)", count, v2MaxChunkRecords)}
		}
		if flags&^uint32(v2FlagSizes) != 0 {
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("unknown chunk flags %#x", flags)}
		}
		if addrBytes == 0 || addrBytes > count*v2MaxUvarint {
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("bad address column length %d for %d records", addrBytes, count)}
		}
		payloadLen := int(addrBytes) + (int(count)+3)/4
		if flags&v2FlagSizes != 0 {
			payloadLen += int(count)
		}
		p, err := d.in.next(payloadLen)
		if err != nil {
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("truncated chunk payload: want %d bytes: %v", payloadLen, err)}
		}
		d.off += int64(v2HeaderBytes + payloadLen)
		d.chunk++
		if got := crc32.ChecksumIEEE(p); got != wantCRC {
			// The frame length is still trusted, so the damaged chunk can be
			// stepped over whole in skip mode.
			if d.opts.SkipMalformed {
				d.acc.reject(int64(count))
				continue
			}
			return 0, &ParseError{Format: "binaryv2", Offset: chunkStart,
				Reason: fmt.Sprintf("chunk CRC mismatch (got %#08x, want %#08x)", got, wantCRC)}
		}

		// Decode straight into the caller's buffer when it fits; otherwise
		// into the pending slab, drained across calls.
		dst := buf
		spill := len(buf) < int(count)
		if spill {
			if cap(d.pend) < int(count) {
				d.pend = make([]trace.Ref, count)
			}
			dst = d.pend[:count]
		}
		n, perr := d.decodeColumns(dst[:count], p, int(count), int(addrBytes), flags)
		if perr != nil {
			if d.opts.SkipMalformed {
				d.acc.reject(int64(count))
				continue
			}
			perr.Offset = chunkStart
			return 0, perr
		}
		if n == 0 {
			continue // every record of the chunk was a rejected kind
		}
		if spill {
			d.pend = d.pend[:n]
			d.pendOff = copy(buf, d.pend)
			return d.pendOff, nil
		}
		return n, nil
	}
}

// isIndexPrefix reports whether p is a (possibly short) prefix of the
// MXTI01 footer magic.
func isIndexPrefix(p []byte) bool {
	if len(p) == 0 {
		return false
	}
	n := len(p)
	if n > len(indexMagic) {
		n = len(indexMagic)
	}
	return string(p[:n]) == indexMagic[:n]
}

// consumeFooter drains and parses the MXTI01 footer whose first 16
// bytes arrived in hdr (a chunk-header-sized read). footerOff is the
// footer's stream offset. It never fails: a truncated or corrupt footer
// leaves the decoder index-less — the chunk stream before it was
// already complete.
func (d *binV2Decoder) consumeFooter(hdr []byte, footerOff int64) {
	bodyLen := int64(binary.LittleEndian.Uint32(hdr[len(indexMagic) : len(indexMagic)+4]))
	// hdr slices the input's window and is invalidated by the next read:
	// keep the 4 body bytes it already holds before reading on.
	var first4 [4]byte
	copy(first4[:], hdr[len(indexMagic)+4:])
	if bodyLen < 4 || bodyLen > maxIndexFooterBytes {
		return
	}
	// The rest of the footer is the remaining body, the CRC and the
	// 16-byte trailer.
	rest, err := d.in.next(int(bodyLen) - 4 + 4 + indexTailBytes)
	if err != nil {
		return
	}
	body := make([]byte, bodyLen)
	copy(body, first4[:])
	copy(body[4:], rest[:bodyLen-4])
	wantCRC := binary.LittleEndian.Uint32(rest[bodyLen-4 : bodyLen])
	trailer := rest[bodyLen : bodyLen+indexTailBytes]
	if crc32.ChecksumIEEE(body) != wantCRC ||
		string(trailer[8:]) != indexTailMagic ||
		int64(binary.LittleEndian.Uint64(trailer[:8])) != footerOff {
		return
	}
	ix, perr := parseIndexBody(body, footerOff)
	if perr != nil {
		return
	}
	if d.idx == nil {
		d.idx = ix
	}
}

// decodeColumns reconstructs one chunk's records into dst[:count] and
// returns how many survived kind validation (compacting rejects away in
// skip mode). A returned *ParseError means undecodable column data — the
// caller decides between fatal and whole-chunk skip — except for bad
// kind labels outside skip mode, which also surface here.
func (d *binV2Decoder) decodeColumns(dst []trace.Ref, p []byte, count, addrBytes int, flags uint32) (int, *ParseError) {
	addrCol := p[:addrBytes]
	kindBytes := (count + 3) / 4
	kindCol := p[addrBytes : addrBytes+kindBytes]
	var sizeCol []byte
	if flags&v2FlagSizes != 0 {
		sizeCol = p[addrBytes+kindBytes : addrBytes+kindBytes+count]
	}

	// Address column: absolute first, zig-zag deltas after. The deltas of
	// real traces are overwhelmingly single-byte varints (strides within
	// ±63), so the loop peels that case before the general decoder.
	pos := 0
	var addr uint64
	for i := 0; i < count; i++ {
		var v uint64
		if pos < len(addrCol) && addrCol[pos] < 0x80 {
			v = uint64(addrCol[pos])
			pos++
		} else {
			var n int
			v, n = binary.Uvarint(addrCol[pos:])
			if n <= 0 {
				return 0, &ParseError{Format: "binaryv2",
					Reason: fmt.Sprintf("corrupt address column at record %d", i)}
			}
			pos += n
		}
		if i == 0 {
			addr = v
		} else {
			addr += uint64(unzigzag(v))
		}
		dst[i] = trace.Ref{Addr: addr}
	}
	if pos != addrBytes {
		return 0, &ParseError{Format: "binaryv2",
			Reason: fmt.Sprintf("address column length mismatch (%d of %d bytes decoded)", pos, addrBytes)}
	}

	// Kind column: 2 bits per record; padding bits of the last byte are
	// ignored. bad accumulates labels of 3, which no writer emits.
	bad := 0
	for i := 0; i < count; i++ {
		k := kindCol[i>>2] >> ((uint(i) & 3) * 2) & 3
		dst[i].Kind = trace.Kind(k)
		if k == 3 {
			bad++
		}
	}
	if sizeCol != nil {
		for i := 0; i < count; i++ {
			dst[i].Size = sizeCol[i]
		}
	}
	if bad == 0 {
		return count, nil
	}
	if !d.opts.SkipMalformed {
		for i := 0; i < count; i++ {
			if dst[i].Kind == 3 {
				return 0, &ParseError{Format: "binaryv2",
					Reason: fmt.Sprintf("bad kind label 3 in record %d of chunk", i)}
			}
		}
	}
	// Skip mode: compact the bad records away, counting each as a reject.
	w := 0
	for i := 0; i < count; i++ {
		if dst[i].Kind == 3 {
			continue
		}
		dst[w] = dst[i]
		w++
	}
	d.acc.reject(int64(count - w))
	return w, nil
}

// V2WriterOptions shapes WriteBinaryV2Options.
type V2WriterOptions struct {
	// SampleRate in (0, 1) thins the stream at transcode time with the
	// same SHARDS hash filter the sweep uses (granule IndexGranule,
	// Mix64, SampleThreshold): the stored artifact keeps only the
	// sampled granules, and the footer records rate, seed and granule so
	// sweeps rescale correctly and refuse conflicting re-sampling. 0 and
	// 1 store the stream exactly.
	SampleRate float64
	// SampleSeed seeds the sampling hash.
	SampleSeed uint64
	// NoIndex omits the MXTI01 footer (and with it the stats profile),
	// producing a bare chunk stream.
	NoIndex bool
}

// WriteBinaryV2 streams src to w in the mxt v2 columnar chunk format —
// with the MXTI01 index footer — and returns the record count. Like
// WriteBinary it preserves every trace.Ref bit-for-bit; unlike it,
// records land in delta-encoded columns that decode a chunk at a time.
func WriteBinaryV2(w io.Writer, src trace.Source) (int64, error) {
	return WriteBinaryV2Options(w, src, V2WriterOptions{})
}

// WriteBinaryV2Options is WriteBinaryV2 with transcode-time sampling
// and index control. The returned count is the records written (after
// sampling).
func WriteBinaryV2Options(w io.Writer, src trace.Source, wo V2WriterOptions) (int64, error) {
	if wo.SampleRate < 0 || wo.SampleRate > 1 || wo.SampleRate != wo.SampleRate {
		return 0, fmt.Errorf("extrace: sampling rate %g must be in [0, 1]", wo.SampleRate)
	}
	sampled := wo.SampleRate > 0 && wo.SampleRate < 1
	var threshold uint64
	if sampled {
		threshold = SampleThreshold(wo.SampleRate)
	}

	bw := bufio.NewWriterSize(w, 64*1024)
	if _, err := bw.WriteString(binaryV2Magic); err != nil {
		return 0, fmt.Errorf("extrace: writing binary v2 magic: %w", err)
	}
	var (
		written int64
		source  int64
		batch   = make([]trace.Ref, 0, v2ChunkRecords)
		scratch []byte
		idxb    *indexBuilder
		wacc    *accumulator
	)
	if !wo.NoIndex {
		idxb = newIndexBuilder()
		wacc = newAccumulator()
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		scratch = appendV2Chunk(scratch[:0], batch)
		if _, err := bw.Write(scratch); err != nil {
			return fmt.Errorf("extrace: writing binary v2 chunk after %d records: %w", written, err)
		}
		if idxb != nil {
			idxb.addChunk(batch, len(scratch))
			wacc.noteBlock(batch)
		}
		written += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return written, fmt.Errorf("extrace: reading source after %d records: %w", written+int64(len(batch)), err)
		}
		source++
		if sampled && Mix64((r.Addr/IndexGranule)^wo.SampleSeed) >= threshold {
			continue
		}
		batch = append(batch, r)
		if len(batch) == v2ChunkRecords {
			if err := flush(); err != nil {
				return written, err
			}
		}
	}
	if err := flush(); err != nil {
		return written, err
	}
	if idxb != nil {
		st := wacc.snapshot()
		profile := &IndexProfile{
			MinAddr:            st.MinAddr,
			MaxAddr:            st.MaxAddr,
			FootprintLines:     st.FootprintLines,
			FootprintSaturated: st.FootprintSaturated,
			Strides:            st.Strides,
			StrideOther:        st.StrideOther,
			SequentialFrac:     st.SequentialFrac,
		}
		footer := idxb.appendFooter(scratch[:0], source, sampled, wo.SampleRate, wo.SampleSeed, IndexGranule, profile)
		if _, err := bw.Write(footer); err != nil {
			return written, fmt.Errorf("extrace: writing binary v2 index footer: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("extrace: flushing binary v2 output: %w", err)
	}
	return written, nil
}

// appendV2Chunk encodes one chunk (header + payload) onto dst.
func appendV2Chunk(dst []byte, recs []trace.Ref) []byte {
	headerAt := len(dst)
	dst = append(dst, make([]byte, v2HeaderBytes)...)
	payloadAt := len(dst)

	// Address column.
	var tmp [v2MaxUvarint]byte
	prev := uint64(0)
	for i, r := range recs {
		var v uint64
		if i == 0 {
			v = r.Addr
		} else {
			v = zigzag(int64(r.Addr - prev))
		}
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
		prev = r.Addr
	}
	addrBytes := len(dst) - payloadAt

	// Kind column, 2 bits per record, zero-padded.
	kindAt := len(dst)
	dst = append(dst, make([]byte, (len(recs)+3)/4)...)
	hasSizes := false
	for i, r := range recs {
		dst[kindAt+(i>>2)] |= byte(r.Kind&3) << ((uint(i) & 3) * 2)
		if r.Size != 0 {
			hasSizes = true
		}
	}

	flags := uint32(0)
	if hasSizes {
		flags |= v2FlagSizes
		for _, r := range recs {
			dst = append(dst, r.Size)
		}
	}

	h := dst[headerAt : headerAt+v2HeaderBytes]
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(recs)))
	binary.LittleEndian.PutUint32(h[4:8], flags)
	binary.LittleEndian.PutUint32(h[8:12], uint32(addrBytes))
	binary.LittleEndian.PutUint32(h[12:16], crc32.ChecksumIEEE(dst[payloadAt:]))
	return dst
}

// TranscodeV2 streams an external trace (din, mxt v1 or v2, gzip
// autodetected) from r into the mxt v2 columnar format on w, returning
// the record count and the ingest profile of the source. opts shapes the
// read side exactly as in NewReader; rejected records are dropped from
// the output.
func TranscodeV2(w io.Writer, r io.Reader, opts Options) (int64, IngestStats, error) {
	return TranscodeV2Options(w, r, opts, V2WriterOptions{})
}

// TranscodeV2Options is TranscodeV2 with transcode-time sampling. The
// returned count is the records written; the IngestStats describe the
// source stream (so Records there is the pre-sampling total). An input
// that is itself a transcode-sampled artifact is refused: re-encoding
// it would lose or conflict with its recorded sampling — transcode from
// the original source instead.
func TranscodeV2Options(w io.Writer, r io.Reader, opts Options, wo V2WriterOptions) (int64, IngestStats, error) {
	rd := NewReader(r, opts)
	defer rd.Close()
	n, err := WriteBinaryV2Options(w, rd.Source(), wo)
	st := rd.Stats()
	if err == nil {
		if ix := rd.Index(); ix != nil && ix.Sampled {
			err = fmt.Errorf("extrace: input is already sampled at transcode time (rate %g, seed %d): refusing to re-encode it; transcode from the original source", ix.SampleRate, ix.SampleSeed)
		}
	}
	return n, st, err
}

// Source adapts the Reader to the one-record-at-a-time trace.Source
// interface — the shape WriteBinary and WriteBinaryV2 consume — with a
// chunk buffer in between so the Reader's bulk path still applies.
func (r *Reader) Source() trace.Source {
	return &readerSource{rd: r, buf: make([]trace.Ref, v2ChunkRecords)}
}

type readerSource struct {
	rd   *Reader
	buf  []trace.Ref
	i, n int
	err  error
}

func (s *readerSource) Next() (trace.Ref, error) {
	for s.i >= s.n {
		if s.err != nil {
			return trace.Ref{}, s.err
		}
		n, err := s.rd.Read(s.buf)
		s.i, s.n, s.err = 0, n, err
	}
	r := s.buf[s.i]
	s.i++
	return r, nil
}
