//go:build linux

package extrace

import "syscall"

// mmapPopulateFlag prefaults read-only trace mappings on Linux.
const mmapPopulateFlag = syscall.MAP_POPULATE
