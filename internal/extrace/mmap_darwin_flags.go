//go:build darwin

package extrace

// mmapPopulateFlag: Darwin has no MAP_POPULATE; pages fault in lazily.
const mmapPopulateFlag = 0
