// Package extrace ingests external memory-reference traces — the
// workloads the paper validates its analytical models against — without
// ever materializing them. A Reader streams a Dinero-style textual ".din"
// trace or the compact mxt binary format (both transparently
// gzip-decompressed) into fixed-size chunks of trace.Ref, so one
// sequential pass over an arbitrarily large trace can drive the batched
// sweep engine in constant memory. Malformed input is reported with line
// numbers and byte offsets (or skipped, when Options.SkipMalformed is
// set), hard resource limits bound record counts and line lengths, and
// ingest-time statistics (footprint, access mix, stride histogram) are
// accumulated in the same pass. WriteDin and WriteBinary are the matching
// encoders, so synthetic kernel traces round-trip through the formats.
//
// See docs/TRACE_FORMAT.md for the byte-level format reference.
package extrace

import (
	"errors"
	"fmt"
)

const (
	// DefaultMaxLineBytes bounds a single textual din line (including its
	// newline) when Options.MaxLineBytes is zero.
	DefaultMaxLineBytes = 64 * 1024

	// LineGranule is the fixed granularity (bytes) at which ingest
	// statistics count "distinct lines touched". It is a reporting
	// granularity only; the sweep's cache configurations are unaffected.
	LineGranule = 64

	// maxFootprintGranules caps the distinct-granule set so a pathological
	// trace cannot grow ingest-side memory without bound; beyond it the
	// footprint count saturates (IngestStats.FootprintSaturated).
	maxFootprintGranules = 1 << 20

	// maxStrideEntries caps the exact stride histogram kept during ingest;
	// strides first seen after the cap aggregate under StrideOther.
	maxStrideEntries = 1024

	// reportedStrides is how many top strides an IngestStats snapshot
	// retains; the rest fold into StrideOther.
	reportedStrides = 16
)

// Options parameterizes a Reader. The zero value reads any well-formed
// trace with the default limits and fails on the first malformed record.
type Options struct {
	// MaxRecords, when positive, bounds the accepted record count: a trace
	// with more records fails with ErrRecordLimit. Skipped malformed
	// records do not count against the limit.
	MaxRecords int64 `json:"max_records,omitempty"`
	// MaxLineBytes bounds one textual din line including its newline
	// (default DefaultMaxLineBytes). Longer lines are malformed.
	MaxLineBytes int `json:"max_line_bytes,omitempty"`
	// SkipMalformed makes the reader count and skip malformed records
	// (IngestStats.Rejects) instead of failing with *ParseError.
	// Structural damage that destroys framing — a truncated binary record,
	// gzip corruption — still fails: past it no record boundary is known.
	SkipMalformed bool `json:"skip_malformed,omitempty"`
}

// maxLine returns the effective textual line limit.
func (o Options) maxLine() int {
	if o.MaxLineBytes <= 0 {
		return DefaultMaxLineBytes
	}
	return o.MaxLineBytes
}

// ErrRecordLimit reports that a trace exceeded Options.MaxRecords. It is
// wrapped with the limit value; test with errors.Is.
var ErrRecordLimit = errors.New("extrace: trace exceeds the record limit")

// ParseError reports a malformed trace record. Offset is the byte offset
// of the offending line or record in the decompressed stream; Line is the
// 1-based line number for the textual format (0 for binary). Retrieve it
// with errors.As to read the position fields.
type ParseError struct {
	// Format is the detected trace format ("din" or "binary").
	Format string
	// Line is the 1-based line number (textual din only; 0 for binary).
	Line int64
	// Offset is the byte offset of the offending line/record start within
	// the decompressed stream.
	Offset int64
	// Reason says what is wrong with the record.
	Reason string
}

// Error renders the position and reason.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("extrace: %s line %d (byte offset %d): %s", e.Format, e.Line, e.Offset, e.Reason)
	}
	return fmt.Sprintf("extrace: %s record at byte offset %d: %s", e.Format, e.Offset, e.Reason)
}
