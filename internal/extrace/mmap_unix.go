//go:build linux || darwin

package extrace

import (
	"os"
	"syscall"
)

// mmapAvailable reports whether this build can memory-map trace files.
const mmapAvailable = true

// mmapFile maps f read-only in its entirety and returns the mapped
// bytes plus the unmap function. size must be f's current size; a zero
// size cannot be mapped and returns an error so the caller falls back
// to streaming. The mapping is prefaulted (mmapPopulateFlag, Linux
// MAP_POPULATE) where the platform supports it: the decoder walks the
// whole file front to back anyway, and one bulk fault-in is far cheaper
// than a minor fault every page.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED|mmapPopulateFlag)
	if err != nil && mmapPopulateFlag != 0 {
		// Some filesystems reject MAP_POPULATE; plain MAP_SHARED still works.
		data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	}
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
