package extrace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"strings"
	"testing"

	"memexplore/internal/trace"
)

// readAll drains a Reader in small chunks and returns the records.
func readAll(t *testing.T, r *Reader) []trace.Ref {
	t.Helper()
	var out []trace.Ref
	buf := make([]trace.Ref, 3)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
}

func TestReadDinBasic(t *testing.T) {
	src := "# header comment\n\n0 10\n1 ff 4\n2 0xDEADbeef\n0 0\n"
	r := NewReader(strings.NewReader(src), Options{})
	got := readAll(t, r)
	want := []trace.Ref{
		{Addr: 0x10, Kind: trace.Read},
		{Addr: 0xff, Kind: trace.Write, Size: 4},
		{Addr: 0xdeadbeef, Kind: trace.Fetch},
		{Addr: 0, Kind: trace.Read},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := r.Stats()
	if st.Format != "din" || st.Gzip {
		t.Errorf("format = %q gzip=%v, want din/false", st.Format, st.Gzip)
	}
	if st.Records != 4 || st.Reads != 2 || st.Writes != 1 || st.Fetches != 1 {
		t.Errorf("mix = %+v", st)
	}
	if st.BytesRead != int64(len(src)) {
		t.Errorf("BytesRead = %d, want %d", st.BytesRead, len(src))
	}
	if st.MinAddr != 0 || st.MaxAddr != 0xdeadbeef+0 {
		t.Errorf("addr range [%#x, %#x]", st.MinAddr, st.MaxAddr)
	}
}

func TestReadDinCRLFAndFinalUnterminatedLine(t *testing.T) {
	r := NewReader(strings.NewReader("0 1\r\n1 2"), Options{})
	got := readAll(t, r)
	if len(got) != 2 || got[0].Addr != 1 || got[1].Addr != 2 || got[1].Kind != trace.Write {
		t.Fatalf("got %+v", got)
	}
}

func TestReadDinMalformedCarriesLineAndOffset(t *testing.T) {
	src := "0 10\n0 11\nbogus line\n0 12\n"
	r := NewReader(strings.NewReader(src), Options{})
	buf := make([]trace.Ref, 16)
	n, err := r.Read(buf)
	if n != 2 {
		t.Fatalf("read %d records before the error, want 2", n)
	}
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("error %v (%T), want *ParseError", err, err)
	}
	if perr.Line != 3 {
		t.Errorf("Line = %d, want 3", perr.Line)
	}
	if wantOff := int64(len("0 10\n0 11\n")); perr.Offset != wantOff {
		t.Errorf("Offset = %d, want %d", perr.Offset, wantOff)
	}
	if !strings.Contains(perr.Error(), "line 3") {
		t.Errorf("message %q does not name the line", perr.Error())
	}
	// The error is sticky.
	if _, err2 := r.Read(buf); !errors.As(err2, &perr) {
		t.Errorf("second Read = %v, want the sticky parse error", err2)
	}
}

func TestReadDinMalformedVariants(t *testing.T) {
	for _, bad := range []string{
		"3 10\n",                // label out of range
		"x 10\n",                // non-numeric label
		"0\n",                   // missing address
		"0 zz\n",                // bad hex
		"0 10 0\n",              // zero size
		"0 10 999\n",            // size out of range
		"0 10 4 extra\n",        // too many fields
		"0 11112222333344445\n", // >16 hex digits
	} {
		r := NewReader(strings.NewReader(bad), Options{})
		_, err := r.Read(make([]trace.Ref, 4))
		var perr *ParseError
		if !errors.As(err, &perr) {
			t.Errorf("input %q: error %v, want *ParseError", bad, err)
		}
	}
}

func TestReadDinSkipMalformed(t *testing.T) {
	src := "0 10\nbogus\n9 9\n1 20\n0 zz\n"
	r := NewReader(strings.NewReader(src), Options{SkipMalformed: true})
	got := readAll(t, r)
	if len(got) != 2 || got[0].Addr != 0x10 || got[1].Addr != 0x20 {
		t.Fatalf("got %+v, want the two good records", got)
	}
	if st := r.Stats(); st.Rejects != 3 || st.Records != 2 {
		t.Errorf("records=%d rejects=%d, want 2/3", st.Records, st.Rejects)
	}
}

func TestReadDinLineTooLong(t *testing.T) {
	long := "0 " + strings.Repeat("1", 100) + "\n0 10\n"
	r := NewReader(strings.NewReader(long), Options{MaxLineBytes: 64})
	_, err := r.Read(make([]trace.Ref, 4))
	var perr *ParseError
	if !errors.As(err, &perr) || !strings.Contains(perr.Reason, "exceeds 64 bytes") {
		t.Fatalf("error %v, want line-too-long parse error", err)
	}

	// In skip mode the oversized line is drained and parsing resumes on
	// the next line with correct numbering.
	r = NewReader(strings.NewReader(long+"bogus\n"), Options{MaxLineBytes: 64, SkipMalformed: true})
	buf := make([]trace.Ref, 4)
	n, _ := r.Read(buf)
	if n != 1 || buf[0].Addr != 0x10 {
		t.Fatalf("skip mode read %d records (%+v), want the one good record", n, buf[:n])
	}
	if st := r.Stats(); st.Rejects != 2 {
		t.Errorf("rejects = %d, want 2", st.Rejects)
	}
}

func TestReadMaxRecords(t *testing.T) {
	src := "0 1\n0 2\n0 3\n"
	r := NewReader(strings.NewReader(src), Options{MaxRecords: 2})
	buf := make([]trace.Ref, 8)
	n, err := r.Read(buf)
	if n != 2 {
		t.Fatalf("read %d records before the limit, want 2", n)
	}
	if !errors.Is(err, ErrRecordLimit) {
		t.Fatalf("error %v, want ErrRecordLimit", err)
	}
	// Exactly at the limit is fine.
	r = NewReader(strings.NewReader(src), Options{MaxRecords: 3})
	if got := readAll(t, r); len(got) != 3 {
		t.Fatalf("limit==len: got %d records", len(got))
	}
}

func TestReadGzipAutodetect(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	io.WriteString(gz, "0 10\n1 20\n")
	gz.Close()
	wire := buf.Len()
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{})
	got := readAll(t, r)
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	st := r.Stats()
	if !st.Gzip || st.Format != "din" {
		t.Errorf("format=%q gzip=%v, want din/true", st.Format, st.Gzip)
	}
	if st.BytesRead != int64(wire) {
		t.Errorf("BytesRead = %d, want the %d wire bytes", st.BytesRead, wire)
	}
	if err := r.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestReadGzipCorrupt(t *testing.T) {
	r := NewReader(strings.NewReader("\x1f\x8bnot really gzip"), Options{})
	if _, err := r.Read(make([]trace.Ref, 1)); err == nil || err == io.EOF {
		t.Fatalf("corrupt gzip: err = %v, want a real error", err)
	}
}

func TestEmptyInput(t *testing.T) {
	r := NewReader(strings.NewReader(""), Options{})
	n, err := r.Read(make([]trace.Ref, 4))
	if n != 0 || err != io.EOF {
		t.Fatalf("empty input: n=%d err=%v, want 0/io.EOF", n, err)
	}
	if st := r.Stats(); st.Records != 0 {
		t.Errorf("records = %d", st.Records)
	}
}

func TestWriteDinRoundTrip(t *testing.T) {
	in := []trace.Ref{
		{Addr: 0, Kind: trace.Read},
		{Addr: 0xdeadbeef, Kind: trace.Write, Size: 4},
		{Addr: 1 << 40, Kind: trace.Fetch, Size: 8},
		{Addr: 7, Kind: trace.Read, Size: 1},
	}
	var buf bytes.Buffer
	n, err := WriteDin(&buf, trace.FromRefs(in).Reader())
	if err != nil || n != int64(len(in)) {
		t.Fatalf("WriteDin = %d, %v", n, err)
	}
	got := readAll(t, NewReader(&buf, Options{}))
	if len(got) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i].Addr != in[i].Addr || got[i].Kind != in[i].Kind ||
			got[i].EffectiveSize() != in[i].EffectiveSize() {
			t.Errorf("record %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestIngestStatsStrides(t *testing.T) {
	var sb strings.Builder
	tr := trace.New(0)
	for i := 0; i < 100; i++ {
		tr.Append(trace.Ref{Addr: uint64(4 * i), Kind: trace.Read, Size: 4})
	}
	if _, err := WriteDin(&sb, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	r := NewReader(strings.NewReader(sb.String()), Options{})
	readAll(t, r)
	st := r.Stats()
	if st.Strides[4] != 99 {
		t.Errorf("stride-4 count = %d, want 99", st.Strides[4])
	}
	if st.SequentialFrac != 1 {
		t.Errorf("SequentialFrac = %g, want 1", st.SequentialFrac)
	}
	// 100 word accesses cover 400 bytes = ceil into 64-byte granules.
	if st.FootprintLines != 7 {
		t.Errorf("FootprintLines = %d, want 7", st.FootprintLines)
	}
	if st.String() == "" {
		t.Error("String() should render")
	}
}
