package extrace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"testing"

	"memexplore/internal/trace"
)

func binRefs() []trace.Ref {
	return []trace.Ref{
		{Addr: 0, Kind: trace.Read},
		{Addr: 0x7f, Kind: trace.Write, Size: 4},
		{Addr: 0xdeadbeef, Kind: trace.Fetch, Size: 8},
		{Addr: ^uint64(0), Kind: trace.Read, Size: 2},
		{Addr: 0x100, Kind: trace.Write},
	}
}

func TestWriteBinaryRoundTripExact(t *testing.T) {
	in := binRefs()
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, trace.FromRefs(in).Reader())
	if err != nil || n != int64(len(in)) {
		t.Fatalf("WriteBinary = %d, %v", n, err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{})
	got := readAll(t, r)
	if len(got) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("record %d = %+v, want %+v (binary must be bit-exact)", i, got[i], in[i])
		}
	}
	if st := r.Stats(); st.Format != "binary" || st.Gzip {
		t.Errorf("format = %q gzip=%v, want binary/false", st.Format, st.Gzip)
	}
}

func TestBinaryGzipAutodetect(t *testing.T) {
	var plain bytes.Buffer
	if _, err := WriteBinary(&plain, trace.FromRefs(binRefs()).Reader()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write(plain.Bytes())
	gz.Close()
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{})
	if got := readAll(t, r); len(got) != len(binRefs()) {
		t.Fatalf("got %d records", len(got))
	}
	if st := r.Stats(); st.Format != "binary" || !st.Gzip {
		t.Errorf("format = %q gzip=%v, want binary/true", st.Format, st.Gzip)
	}
}

func TestBinaryTruncatedRecordIsFatal(t *testing.T) {
	var buf bytes.Buffer
	WriteBinary(&buf, trace.FromRefs(binRefs()).Reader())
	cut := buf.Bytes()[:buf.Len()-2] // chop mid-record
	// Even in skip mode a truncated record destroys framing.
	r := NewReader(bytes.NewReader(cut), Options{SkipMalformed: true})
	var perr *ParseError
	var got int
	buf2 := make([]trace.Ref, 16)
	for {
		n, err := r.Read(buf2)
		got += n
		if err == nil {
			continue
		}
		if !errors.As(err, &perr) {
			t.Fatalf("err = %v, want *ParseError", err)
		}
		break
	}
	if got != len(binRefs())-1 {
		t.Errorf("read %d records before truncation, want %d", got, len(binRefs())-1)
	}
	if perr.Format != "binary" || perr.Line != 0 || perr.Offset == 0 {
		t.Errorf("parse error position = %+v", perr)
	}
}

func TestBinaryBadKindSkippable(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{3, 9, 0, 0x10}) // framed record with kind 9
	buf.Write([]byte{3, 0, 0, 0x20}) // good read of 0x20
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{SkipMalformed: true})
	got := readAll(t, r)
	if len(got) != 1 || got[0].Addr != 0x20 {
		t.Fatalf("got %+v, want the one good record", got)
	}
	if st := r.Stats(); st.Rejects != 1 {
		t.Errorf("rejects = %d, want 1", st.Rejects)
	}

	// Fail mode reports the offset of the bad record (right after magic).
	r = NewReader(bytes.NewReader(buf.Bytes()), Options{})
	_, err := r.Read(make([]trace.Ref, 4))
	var perr *ParseError
	if !errors.As(err, &perr) || perr.Offset != int64(len(binaryMagic)) {
		t.Fatalf("err = %v, want *ParseError at offset %d", err, len(binaryMagic))
	}
}

func TestBinaryBadLengthFatal(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{11, 0, 0}) // length out of range
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{SkipMalformed: true})
	_, err := r.Read(make([]trace.Ref, 4))
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *ParseError even in skip mode", err)
	}
}

func TestBinaryMaxRecords(t *testing.T) {
	var buf bytes.Buffer
	WriteBinary(&buf, trace.FromRefs(binRefs()).Reader())
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{MaxRecords: 2})
	var total int
	chunk := make([]trace.Ref, 16)
	n, err := r.Read(chunk)
	total += n
	if !errors.Is(err, ErrRecordLimit) || total != 2 {
		t.Fatalf("n=%d err=%v, want 2 records then ErrRecordLimit", total, err)
	}
}

// TestWriteBinaryEOFBoundary checks that clean EOF is only reported at a
// record boundary and io.EOF after the final record.
func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, trace.New(0).Reader())
	if err != nil || n != 0 {
		t.Fatalf("WriteBinary empty = %d, %v", n, err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{})
	rn, rerr := r.Read(make([]trace.Ref, 4))
	if rn != 0 || rerr != io.EOF {
		t.Fatalf("empty binary trace: n=%d err=%v", rn, rerr)
	}
	if st := r.Stats(); st.Format != "binary" {
		t.Errorf("format = %q", st.Format)
	}
}
