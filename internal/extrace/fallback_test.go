package extrace

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"memexplore/internal/trace"
)

// fallbackRefs builds a multi-chunk phase-local trace so the index has
// several entries and a chunk policy would have something to skip — the
// point of these tests is that on non-mmappable transports it cleanly
// does not.
func fallbackRefs() []trace.Ref {
	refs := make([]trace.Ref, 3*v2ChunkRecords+100)
	for i := range refs {
		base := uint64(1+(i/v2ChunkRecords)) << 20
		refs[i] = trace.Ref{Addr: base + uint64(i%16)*64, Kind: trace.Kind(i % 3)}
	}
	return refs
}

// skipNothing is a chunk policy that never skips; attaching it proves
// whether the policy machinery was armed at all on a given transport.
func skipEverything(e *ChunkIndexEntry) ChunkVerdict { return ChunkSkipDrop }

// TestMmapFallbackGzip: a gzipped v2 artifact opened as *os.File must
// not take the mmap path (the file bytes are not the v2 stream), must
// stream-decode through the gzip layer, and must still surface the index
// at end of stream — while an attached chunk policy stays dormant (the
// index is only discovered at EOF, too late to skip).
func TestMmapFallbackGzip(t *testing.T) {
	in := fallbackRefs()
	var plain bytes.Buffer
	if _, err := WriteBinaryV2(&plain, trace.FromRefs(in).Reader()); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(plain.Bytes())
	zw.Close()
	path := filepath.Join(t.TempDir(), "trace.mxt.gz")
	if err := os.WriteFile(path, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	r := NewReader(f, Options{})
	r.SetChunkPolicy(skipEverything)
	got := readAll(t, r)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("gzip fallback decoded %d records, want %d bit-exact", len(got), len(in))
	}
	st := r.Stats()
	if st.Mmap {
		t.Error("gzipped file took the mmap path")
	}
	if !st.Gzip || st.Format != "binaryv2" {
		t.Errorf("format = %q gzip=%v, want binaryv2/true", st.Format, st.Gzip)
	}
	if st.ChunksSkipped != 0 {
		t.Errorf("gzip transport skipped %d chunks; skipping must be disabled without an up-front index", st.ChunksSkipped)
	}
	if ix := r.Index(); ix == nil || ix.Records != int64(len(in)) {
		t.Errorf("index not recovered from the gzip stream at EOF: %+v", ix)
	}
}

// nonSeekable hides every optional interface of the wrapped reader —
// exactly what stdin, a pipe, or an HTTP response body looks like to the
// transport probes.
type nonSeekable struct{ r io.Reader }

func (n nonSeekable) Read(p []byte) (int, error) { return n.r.Read(p) }

// TestMmapFallbackNonSeekable: a bare io.Reader (no ReaderAt, no Seeker,
// no Stat) must stream-decode an indexed v2 artifact identically, with
// no mmap, no skipping, and the index recovered at EOF.
func TestMmapFallbackNonSeekable(t *testing.T) {
	in := fallbackRefs()
	var buf bytes.Buffer
	if _, err := WriteBinaryV2(&buf, trace.FromRefs(in).Reader()); err != nil {
		t.Fatal(err)
	}

	r := NewReader(nonSeekable{bytes.NewReader(buf.Bytes())}, Options{})
	r.SetChunkPolicy(skipEverything)
	got := readAll(t, r)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("non-seekable fallback decoded %d records, want %d bit-exact", len(got), len(in))
	}
	st := r.Stats()
	if st.Mmap || st.ChunksSkipped != 0 {
		t.Errorf("non-seekable transport: mmap=%v skipped=%d, want false/0", st.Mmap, st.ChunksSkipped)
	}
	if st.BytesRead != int64(buf.Len()) {
		t.Errorf("BytesRead = %d, want %d", st.BytesRead, buf.Len())
	}
	if ix := r.Index(); ix == nil || ix.Records != int64(len(in)) {
		t.Errorf("index not recovered from the non-seekable stream at EOF: %+v", ix)
	}
}

// TestMmapFastPathFile: the positive control — the same artifact as a
// plain on-disk file must map, skip under the policy, and report mmap in
// its stats with BytesRead equal to the mapped size.
func TestMmapFastPathFile(t *testing.T) {
	if !mmapAvailable {
		t.Skip("mmap not available on this platform")
	}
	in := fallbackRefs()
	var buf bytes.Buffer
	if _, err := WriteBinaryV2(&buf, trace.FromRefs(in).Reader()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.mxt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	r := NewReader(f, Options{})
	r.SetChunkPolicy(skipEverything)
	got := readAll(t, r)
	if len(got) != 0 {
		t.Fatalf("skip-everything policy on a mapped indexed file decoded %d records, want 0", len(got))
	}
	st := r.Stats()
	if !st.Mmap {
		t.Error("plain on-disk v2 artifact did not take the mmap path")
	}
	if st.ChunksSkipped == 0 || st.Records != int64(len(in)) {
		t.Errorf("skipped=%d records=%d, want >0 skipped and %d records accounted", st.ChunksSkipped, st.Records, len(in))
	}
	if st.BytesRead != int64(buf.Len()) {
		t.Errorf("BytesRead = %d, want mapped size %d", st.BytesRead, buf.Len())
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close (munmap): %v", err)
	}
}
