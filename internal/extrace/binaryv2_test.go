package extrace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"memexplore/internal/trace"
)

// v2Stream assembles a raw v2 trace from hand-built chunks.
func v2Stream(chunks ...[]trace.Ref) []byte {
	out := []byte(binaryV2Magic)
	for _, c := range chunks {
		out = appendV2Chunk(out, c)
	}
	return out
}

func TestWriteBinaryV2RoundTripExact(t *testing.T) {
	in := binRefs()
	var buf bytes.Buffer
	n, err := WriteBinaryV2(&buf, trace.FromRefs(in).Reader())
	if err != nil || n != int64(len(in)) {
		t.Fatalf("WriteBinaryV2 = %d, %v", n, err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{})
	got := readAll(t, r)
	if len(got) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("record %d = %+v, want %+v (v2 must be bit-exact)", i, got[i], in[i])
		}
	}
	if st := r.Stats(); st.Format != "binaryv2" || st.Gzip {
		t.Errorf("format = %q gzip=%v, want binaryv2/false", st.Format, st.Gzip)
	}
}

// TestBinaryV2MultiChunkRoundTrip spans several writer chunks (and, via
// readAll's 3-record buffer, the decoder's pending-spill path) and checks
// bit-exactness including address deltas that go down as well as up.
func TestBinaryV2MultiChunkRoundTrip(t *testing.T) {
	in := make([]trace.Ref, 3*v2ChunkRecords+17)
	for i := range in {
		addr := uint64(i) * 64
		if i%7 == 0 {
			addr = ^uint64(0) - uint64(i) // huge negative deltas
		}
		in[i] = trace.Ref{Addr: addr, Kind: trace.Kind(i % 3), Size: uint8(i % 5)}
	}
	var buf bytes.Buffer
	n, err := WriteBinaryV2(&buf, trace.FromRefs(in).Reader())
	if err != nil || n != int64(len(in)) {
		t.Fatalf("WriteBinaryV2 = %d, %v", n, err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{})
	got := readAll(t, r)
	if len(got) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], in[i])
		}
	}
	if st := r.Stats(); st.Records != int64(len(in)) {
		t.Errorf("stats records = %d, want %d", st.Records, len(in))
	}
}

func TestBinaryV2GzipAutodetect(t *testing.T) {
	var plain bytes.Buffer
	if _, err := WriteBinaryV2(&plain, trace.FromRefs(binRefs()).Reader()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write(plain.Bytes())
	gz.Close()
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{})
	if got := readAll(t, r); len(got) != len(binRefs()) {
		t.Fatalf("got %d records", len(got))
	}
	if st := r.Stats(); st.Format != "binaryv2" || !st.Gzip {
		t.Errorf("format = %q gzip=%v, want binaryv2/true", st.Format, st.Gzip)
	}
}

func TestBinaryV2EmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteBinaryV2(&buf, trace.New(0).Reader())
	if err != nil || n != 0 {
		t.Fatalf("WriteBinaryV2 empty = %d, %v", n, err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(binaryV2Magic)) {
		t.Fatalf("empty v2 trace = %q, want the magic then the index footer", buf.String())
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{})
	rn, rerr := r.Read(make([]trace.Ref, 4))
	if rn != 0 || rerr != io.EOF {
		t.Fatalf("empty v2 trace: n=%d err=%v", rn, rerr)
	}
	if st := r.Stats(); st.Format != "binaryv2" {
		t.Errorf("format = %q", st.Format)
	}
	if ix := r.Index(); ix == nil || len(ix.Chunks) != 0 || ix.Records != 0 {
		t.Errorf("empty v2 trace index = %+v, want an empty index", ix)
	}
}

// TestBinaryV2SizeColumnElided checks the common all-default-size case
// drops the size column (flags bit clear, shorter payload).
func TestBinaryV2SizeColumnElided(t *testing.T) {
	recs := []trace.Ref{{Addr: 0x40, Kind: trace.Read}, {Addr: 0x80, Kind: trace.Write}}
	raw := v2Stream(recs)
	h := raw[len(binaryV2Magic):]
	if flags := binary.LittleEndian.Uint32(h[4:8]); flags != 0 {
		t.Errorf("flags = %#x, want 0 (no size column)", flags)
	}
	addrBytes := binary.LittleEndian.Uint32(h[8:12])
	wantLen := len(binaryV2Magic) + v2HeaderBytes + int(addrBytes) + 1 // 2 kinds pack in 1 byte
	if len(raw) != wantLen {
		t.Errorf("stream length %d, want %d (size column must be elided)", len(raw), wantLen)
	}
	r := NewReader(bytes.NewReader(raw), Options{})
	got := readAll(t, r)
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Errorf("round trip = %+v, want %+v", got, recs)
	}
}

func TestBinaryV2CRCMismatch(t *testing.T) {
	c1 := []trace.Ref{{Addr: 0x100, Kind: trace.Read}, {Addr: 0x140, Kind: trace.Write, Size: 4}}
	c2 := []trace.Ref{{Addr: 0x2000, Kind: trace.Fetch}}
	raw := v2Stream(c1, c2)
	// Flip a byte in chunk 1's payload, leaving the frame intact.
	raw[len(binaryV2Magic)+v2HeaderBytes] ^= 0xff

	// Fatal by default, positioned at the chunk start.
	r := NewReader(bytes.NewReader(raw), Options{})
	_, err := r.Read(make([]trace.Ref, 8))
	var perr *ParseError
	if !errors.As(err, &perr) || perr.Format != "binaryv2" || perr.Offset != int64(len(binaryV2Magic)) {
		t.Fatalf("err = %v, want binaryv2 *ParseError at offset %d", err, len(binaryV2Magic))
	}
	if !strings.Contains(perr.Reason, "CRC") {
		t.Errorf("reason = %q, want a CRC mismatch", perr.Reason)
	}

	// Skip mode steps over the whole damaged chunk: its records become
	// rejects and the next chunk still decodes (framing survives).
	r = NewReader(bytes.NewReader(raw), Options{SkipMalformed: true})
	got := readAll(t, r)
	if len(got) != 1 || got[0] != c2[0] {
		t.Fatalf("got %+v, want just chunk 2's record", got)
	}
	if st := r.Stats(); st.Rejects != int64(len(c1)) || st.Records != 1 {
		t.Errorf("rejects=%d records=%d, want %d/1", st.Rejects, st.Records, len(c1))
	}
}

func TestBinaryV2BadKindLabel(t *testing.T) {
	recs := []trace.Ref{
		{Addr: 0x40, Kind: trace.Read},
		{Addr: 0x80, Kind: 3}, // label 3: no writer emits it
		{Addr: 0xc0, Kind: trace.Write, Size: 2},
	}
	raw := v2Stream(recs)

	// Fatal by default, naming the record within the chunk.
	r := NewReader(bytes.NewReader(raw), Options{})
	_, err := r.Read(make([]trace.Ref, 8))
	var perr *ParseError
	if !errors.As(err, &perr) || perr.Offset != int64(len(binaryV2Magic)) {
		t.Fatalf("err = %v, want *ParseError at chunk start", err)
	}
	if !strings.Contains(perr.Reason, "record 1") {
		t.Errorf("reason = %q, want it to name record 1", perr.Reason)
	}

	// Skip mode compacts the bad record away, preserving order.
	r = NewReader(bytes.NewReader(raw), Options{SkipMalformed: true})
	got := readAll(t, r)
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[2] {
		t.Fatalf("got %+v, want the two good records", got)
	}
	if st := r.Stats(); st.Rejects != 1 || st.Records != 2 {
		t.Errorf("rejects=%d records=%d, want 1/2", st.Rejects, st.Records)
	}
}

// TestBinaryV2AllRejectedChunk: a chunk whose every record is bad yields
// no records but must not end the stream early.
func TestBinaryV2AllRejectedChunk(t *testing.T) {
	raw := v2Stream(
		[]trace.Ref{{Addr: 0x40, Kind: 3}, {Addr: 0x80, Kind: 3}},
		[]trace.Ref{{Addr: 0x100, Kind: trace.Read}},
	)
	r := NewReader(bytes.NewReader(raw), Options{SkipMalformed: true})
	got := readAll(t, r)
	if len(got) != 1 || got[0].Addr != 0x100 {
		t.Fatalf("got %+v, want the chunk-2 record", got)
	}
	if st := r.Stats(); st.Rejects != 2 {
		t.Errorf("rejects = %d, want 2", st.Rejects)
	}
}

func TestBinaryV2TruncationFatal(t *testing.T) {
	full := v2Stream(binRefs())
	for _, tc := range []struct {
		name string
		cut  int // bytes to drop from the end
	}{
		{"mid-payload", 2},
		{"mid-header", len(full) - len(binaryV2Magic) - v2HeaderBytes/2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw := full[:len(full)-tc.cut]
			// Truncation destroys framing: fatal even in skip mode.
			r := NewReader(bytes.NewReader(raw), Options{SkipMalformed: true})
			n, err := r.Read(make([]trace.Ref, 16))
			var perr *ParseError
			if !errors.As(err, &perr) || perr.Format != "binaryv2" {
				t.Fatalf("n=%d err=%v, want a binaryv2 *ParseError", n, err)
			}
			if !strings.Contains(perr.Reason, "truncated") {
				t.Errorf("reason = %q, want truncation", perr.Reason)
			}
		})
	}
}

func TestBinaryV2BadHeaderFatal(t *testing.T) {
	mk := func(count, flags, addrBytes uint32) []byte {
		raw := []byte(binaryV2Magic)
		var h [v2HeaderBytes]byte
		binary.LittleEndian.PutUint32(h[0:4], count)
		binary.LittleEndian.PutUint32(h[4:8], flags)
		binary.LittleEndian.PutUint32(h[8:12], addrBytes)
		return append(raw, h[:]...)
	}
	for _, tc := range []struct {
		name string
		raw  []byte
	}{
		{"zero count", mk(0, 0, 1)},
		{"huge count", mk(v2MaxChunkRecords+1, 0, 1)},
		{"unknown flags", mk(1, 0x80, 1)},
		{"zero addr column", mk(1, 0, 0)},
		{"oversized addr column", mk(1, 0, v2MaxUvarint+1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Header damage is structural: fatal even in skip mode.
			r := NewReader(bytes.NewReader(tc.raw), Options{SkipMalformed: true})
			_, err := r.Read(make([]trace.Ref, 4))
			var perr *ParseError
			if !errors.As(err, &perr) || perr.Format != "binaryv2" {
				t.Fatalf("err = %v, want a binaryv2 *ParseError", err)
			}
		})
	}
}

func TestBinaryV2MaxRecordsInsideChunk(t *testing.T) {
	var buf bytes.Buffer
	WriteBinaryV2(&buf, trace.FromRefs(binRefs()).Reader())
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{MaxRecords: 2})
	n, err := r.Read(make([]trace.Ref, 16))
	if !errors.Is(err, ErrRecordLimit) || n != 2 {
		t.Fatalf("n=%d err=%v, want 2 records then ErrRecordLimit", n, err)
	}
	if st := r.Stats(); st.Records != 2 {
		t.Errorf("stats records = %d, want 2 (limit semantics match the per-record path)", st.Records)
	}
}

func TestBinaryV2MaxRecordsExactFit(t *testing.T) {
	in := binRefs()
	var buf bytes.Buffer
	WriteBinaryV2(&buf, trace.FromRefs(in).Reader())
	r := NewReader(bytes.NewReader(buf.Bytes()), Options{MaxRecords: int64(len(in))})
	got := readAll(t, r)
	if len(got) != len(in) {
		t.Fatalf("a trace of exactly MaxRecords must read cleanly; got %d", len(got))
	}
}

func TestTranscodeV2(t *testing.T) {
	din := "0 400\n1 440 4\n2 deadbeef\nbogus\n0 480\n"
	var out bytes.Buffer
	n, st, err := TranscodeV2(&out, strings.NewReader(din), Options{SkipMalformed: true})
	if err != nil || n != 4 {
		t.Fatalf("TranscodeV2 = %d, %v", n, err)
	}
	if st.Format != "din" || st.Rejects != 1 || st.Records != 4 {
		t.Errorf("source stats = %+v", st)
	}
	r := NewReader(bytes.NewReader(out.Bytes()), Options{})
	got := readAll(t, r)
	want := []trace.Ref{
		{Addr: 0x400, Kind: trace.Read},
		{Addr: 0x440, Kind: trace.Write, Size: 4},
		{Addr: 0xdeadbeef, Kind: trace.Fetch},
		{Addr: 0x480, Kind: trace.Read},
	}
	if len(got) != len(want) {
		t.Fatalf("transcoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st2 := r.Stats(); st2.Format != "binaryv2" {
		t.Errorf("transcoded format = %q", st2.Format)
	}
}

// TestRejectedRecordsNeverReachStats pins the IngestStats invariant for
// all three formats: a trace with malformed records interleaved, read
// under SkipMalformed, must report statistics identical to the same trace
// with the malformed records removed — only Rejects (and wire-level
// fields) may differ. A regression here means a decoder let a record
// touch the accumulator before rejecting it.
func TestRejectedRecordsNeverReachStats(t *testing.T) {
	good := []trace.Ref{
		{Addr: 0x1000, Kind: trace.Read},
		{Addr: 0x1040, Kind: trace.Write, Size: 8},
		{Addr: 0x20000, Kind: trace.Fetch},
		{Addr: 0x1080, Kind: trace.Read, Size: 2},
	}
	// neutralize clears the fields legitimately allowed to differ between
	// the clean and dirty reads.
	neutralize := func(st IngestStats) IngestStats {
		st.Rejects = 0
		st.BytesRead = 0
		return st
	}
	cases := []struct {
		name         string
		clean, dirty []byte
		wantRejects  int64
	}{}

	// din: malformed lines between good ones.
	var clean, dirty strings.Builder
	for i, r := range good {
		line := dinLine(r)
		clean.WriteString(line)
		dirty.WriteString(line)
		if i%2 == 0 {
			dirty.WriteString("7 nonsense\n")
		}
	}
	cases = append(cases, struct {
		name         string
		clean, dirty []byte
		wantRejects  int64
	}{"din", []byte(clean.String()), []byte(dirty.String()), 2})

	// binary v1: framed records with a bad kind label between good ones.
	var cb, db bytes.Buffer
	cb.WriteString(binaryMagic)
	db.WriteString(binaryMagic)
	for i, r := range good {
		rec := binRecord(r)
		cb.Write(rec)
		db.Write(rec)
		if i%2 == 1 {
			db.Write([]byte{3, 9, 0, 0x55}) // framed, kind 9
		}
	}
	cases = append(cases, struct {
		name         string
		clean, dirty []byte
		wantRejects  int64
	}{"binary", cb.Bytes(), db.Bytes(), 2})

	// binary v2: bad kind labels inside a chunk plus a CRC-damaged chunk.
	withBad := []trace.Ref{good[0], {Addr: 0x9999, Kind: 3}, good[1]}
	damaged := []trace.Ref{{Addr: 0x7000, Kind: trace.Read}, {Addr: 0x7040, Kind: trace.Write}}
	cleanV2 := v2Stream([]trace.Ref{good[0], good[1]}, []trace.Ref{good[2], good[3]})
	dirtyV2 := v2Stream(withBad, damaged, []trace.Ref{good[2], good[3]})
	// Corrupt the damaged chunk's payload byte. Its frame starts after the
	// first chunk; recompute that offset from the first chunk's header.
	h := dirtyV2[len(binaryV2Magic):]
	c1addr := binary.LittleEndian.Uint32(h[8:12])
	c1flags := binary.LittleEndian.Uint32(h[4:8])
	c1len := v2HeaderBytes + int(c1addr) + (len(withBad)+3)/4
	if c1flags&v2FlagSizes != 0 {
		c1len += len(withBad)
	}
	dirtyV2[len(binaryV2Magic)+c1len+v2HeaderBytes] ^= 0xff
	cases = append(cases, struct {
		name         string
		clean, dirty []byte
		wantRejects  int64
	}{"binaryv2", cleanV2, dirtyV2, 1 + int64(len(damaged))})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := NewReader(bytes.NewReader(tc.clean), Options{})
			cleanRefs := readAll(t, rc)
			rd := NewReader(bytes.NewReader(tc.dirty), Options{SkipMalformed: true})
			dirtyRefs := readAll(t, rd)
			if len(cleanRefs) != len(dirtyRefs) {
				t.Fatalf("accepted %d dirty records, want %d", len(dirtyRefs), len(cleanRefs))
			}
			for i := range cleanRefs {
				if cleanRefs[i] != dirtyRefs[i] {
					t.Fatalf("record %d = %+v, want %+v", i, dirtyRefs[i], cleanRefs[i])
				}
			}
			cst, dst := rc.Stats(), rd.Stats()
			if dst.Rejects != tc.wantRejects {
				t.Errorf("rejects = %d, want %d", dst.Rejects, tc.wantRejects)
			}
			nc, nd := neutralize(cst), neutralize(dst)
			if !reflect.DeepEqual(nc, nd) {
				t.Errorf("rejected records leaked into stats:\nclean:\n%s\ndirty:\n%s", nc, nd)
			}
		})
	}
}

// dinLine renders one record as a din line.
func dinLine(r trace.Ref) string {
	var sb strings.Builder
	var out bytes.Buffer
	WriteDin(&out, trace.FromRefs([]trace.Ref{r}).Reader())
	sb.Write(out.Bytes())
	return sb.String()
}

// binRecord renders one record as a framed mxt v1 record.
func binRecord(r trace.Ref) []byte {
	var out bytes.Buffer
	WriteBinary(&out, trace.FromRefs([]trace.Ref{r}).Reader())
	return out.Bytes()[len(binaryMagic):]
}
