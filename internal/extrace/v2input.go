package extrace

import (
	"bufio"
	"io"
)

// v2input abstracts where the v2 chunk decoder's bytes come from: a
// bufio-buffered stream (the portable path, and always the path for
// gzip and non-seekable sources) or a memory-mapped file region (the
// zero-copy fast path). The decoder is written against this interface
// so both sources share one decode loop.
type v2input interface {
	// next returns the next n bytes of the stream without copying when
	// the source allows it. The returned slice is valid only until the
	// following next/skip call. At a clean end of stream it returns
	// (nil, io.EOF); a short tail returns the partial bytes together
	// with io.ErrUnexpectedEOF so the caller can inspect what is there
	// (the index footer is recognized from a partial header read).
	next(n int) ([]byte, error)
	// skip discards n bytes, used to step over indexed chunks without
	// decoding them.
	skip(n int64) error
}

// memInput serves a fully in-memory byte region — the mmap fast path.
// Every next() is a subslice of data: zero copies between the file and
// the decode loops.
type memInput struct {
	data []byte
	pos  int
}

func (m *memInput) next(n int) ([]byte, error) {
	if m.pos >= len(m.data) {
		return nil, io.EOF
	}
	if rem := len(m.data) - m.pos; rem < n {
		p := m.data[m.pos:]
		m.pos = len(m.data)
		return p, io.ErrUnexpectedEOF
	}
	p := m.data[m.pos : m.pos+n]
	m.pos += n
	return p, nil
}

func (m *memInput) skip(n int64) error {
	if rem := int64(len(m.data) - m.pos); rem < n {
		m.pos = len(m.data)
		return io.ErrUnexpectedEOF
	}
	m.pos += int(n)
	return nil
}

// streamInput serves a bufio-buffered stream, copying each request into
// a reusable scratch buffer — the portable fallback with exactly the
// allocation behavior of the pre-mmap decoder.
type streamInput struct {
	br      *bufio.Reader
	scratch []byte
}

func (s *streamInput) next(n int) ([]byte, error) {
	// Serve straight out of the bufio window when the request fits —
	// no copy; chunk payloads larger than the buffer fall back to one
	// ReadFull into scratch.
	if p, err := s.br.Peek(n); err == nil {
		s.br.Discard(n)
		return p, nil
	}
	if cap(s.scratch) < n {
		s.scratch = make([]byte, n)
	}
	p := s.scratch[:n]
	m, err := io.ReadFull(s.br, p)
	if err == io.EOF && m == 0 {
		return nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF || (err == io.EOF && m > 0) {
		return p[:m], io.ErrUnexpectedEOF
	}
	return p[:m], err
}

func (s *streamInput) skip(n int64) error {
	for n > 0 {
		step := n
		const maxStep = 1 << 30
		if step > maxStep {
			step = maxStep
		}
		d, err := s.br.Discard(int(step))
		n -= int64(d)
		if err != nil {
			if err == io.EOF {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}
