// Package reuse implements the paper's §3 analytical model: partitioning
// the references of a loop nest into equivalence classes and cases of
// uniformly generated references, and computing from them the minimum
// number of cache lines — and hence the minimum cache size — needed to
// avoid conflicts among reused data.
//
// Two references a[f(i)] and a[g(i)] are uniformly generated (Wolf & Lam
// [9]) when f(i) = H·i + c_f and g(i) = H·i + c_g for the same linear part
// H. Following [9]'s group-spatial partition, uniformly generated
// references to the same array form one class when their constant vectors
// agree in every dimension except the innermost (fastest-varying) one —
// that is how the paper's Example 1 yields class 1 = {a[i-1][j-1],
// a[i-1][j]} and class 2 = {a[i][j-1], a[i][j]}. References with the same
// linear part on different arrays form a case (the paper's extension).
// For each class the paper computes
//
//	distance = floor(|Δc| / stride) + 1
//
// (Δc the difference of the constant vectors, linearized; stride the
// address step of the class per innermost varying iteration) and derives
// the number of cache lines the class needs:
//
//	lines = floor(distance/L) + 1   if distance mod L ∈ {0, 1}
//	lines = floor(distance/L) + 2   otherwise
//
// The minimum cache size is L times the sum of lines over all classes.
package reuse

import (
	"fmt"
	"sort"
	"strings"

	"memexplore/internal/loopir"
)

// LinearRef is a body reference lowered to byte-address form: a linear
// coefficient per loop variable plus a constant byte offset within the
// array.
type LinearRef struct {
	// Ref is the original IR reference.
	Ref loopir.Ref
	// Array is the referenced array's name.
	Array string
	// Coef maps loop-variable names to the byte-address coefficient — the
	// row of H after linearization by the array's row-major strides and
	// element size.
	Coef map[string]int
	// Const is the linearized constant byte offset (c after
	// linearization).
	Const int
	// DimConsts are the per-dimension constant parts of the index
	// expressions (the un-linearized constant vector c), used for the
	// group-spatial class split.
	DimConsts []int
}

// hKey returns a canonical string for the linear part, used for grouping.
func hKey(coef map[string]int) string {
	var vars []string
	for v, c := range coef {
		if c != 0 {
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	var sb strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&sb, "%s*%d;", v, coef[v])
	}
	return sb.String()
}

// Class is a set of uniformly generated references to one array.
type Class struct {
	// Array is the array all members reference.
	Array string
	// HKey is the canonical form of the shared linear part.
	HKey string
	// Members are the references, sorted by constant offset.
	Members []LinearRef
}

// Case groups classes that share a linear part across different arrays —
// the paper's "equivalent case of reference".
type Case struct {
	HKey    string
	Classes []Class
}

// Lower converts every body reference of the nest to LinearRef form.
func Lower(n *loopir.Nest) ([]LinearRef, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	var out []LinearRef
	for _, r := range n.Body {
		a, ok := n.Array(r.Array)
		if !ok {
			return nil, fmt.Errorf("reuse: ref %s: array not declared", r)
		}
		strides := a.RowStrides()
		elem := a.ElementBytes()
		lr := LinearRef{Ref: r, Array: r.Array, Coef: map[string]int{}}
		for d, e := range r.Index {
			scale := strides[d] * elem
			lr.Const += e.Const * scale
			lr.DimConsts = append(lr.DimConsts, e.Const)
			for v, c := range e.Coef {
				if c != 0 {
					lr.Coef[v] += c * scale
				}
			}
		}
		out = append(out, lr)
	}
	return out, nil
}

// Classes partitions the nest's references into equivalence classes:
// same array, same linear part, and equal constant offsets in every array
// dimension but the innermost (the group-spatial split of [9]). Order is
// deterministic (first-appearance).
func Classes(n *loopir.Nest) ([]Class, error) {
	refs, err := Lower(n)
	if err != nil {
		return nil, err
	}
	type key struct {
		array string
		h     string
		outer string
	}
	outerKey := func(dimConsts []int) string {
		if len(dimConsts) <= 1 {
			return ""
		}
		var sb strings.Builder
		for _, c := range dimConsts[:len(dimConsts)-1] {
			fmt.Fprintf(&sb, "%d;", c)
		}
		return sb.String()
	}
	groups := map[key][]LinearRef{}
	var order []key
	for _, lr := range refs {
		k := key{lr.Array, hKey(lr.Coef), outerKey(lr.DimConsts)}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], lr)
	}
	var out []Class
	for _, k := range order {
		ms := groups[k]
		sort.SliceStable(ms, func(i, j int) bool { return ms[i].Const < ms[j].Const })
		out = append(out, Class{Array: k.array, HKey: k.h, Members: ms})
	}
	return out, nil
}

// Cases groups the classes of a nest by linear part across arrays.
func Cases(n *loopir.Nest) ([]Case, error) {
	classes, err := Classes(n)
	if err != nil {
		return nil, err
	}
	groups := map[string][]Class{}
	var order []string
	for _, c := range classes {
		if _, seen := groups[c.HKey]; !seen {
			order = append(order, c.HKey)
		}
		groups[c.HKey] = append(groups[c.HKey], c)
	}
	var out []Case
	for _, h := range order {
		out = append(out, Case{HKey: h, Classes: groups[h]})
	}
	return out, nil
}

// Stride returns the byte-address step of the class per iteration of the
// innermost loop whose variable appears in the class's linear part. A
// class whose addresses do not vary with any loop (constant references)
// has stride 0.
func (c Class) Stride(n *loopir.Nest) int {
	if len(c.Members) == 0 {
		return 0
	}
	coef := c.Members[0].Coef
	for depth := len(n.Loops) - 1; depth >= 0; depth-- {
		l := n.Loops[depth]
		if k := coef[l.Var]; k != 0 {
			s := k * l.Step
			if s < 0 {
				s = -s
			}
			return s
		}
	}
	return 0
}

// Distance computes the paper's distance value for the class: the spread
// of the constant offsets divided by the stride, floored, plus one. A
// single-member class has distance 0.
func (c Class) Distance(n *loopir.Nest) int {
	if len(c.Members) <= 1 {
		return 0
	}
	lo := c.Members[0].Const
	hi := c.Members[len(c.Members)-1].Const
	spread := hi - lo
	if spread < 0 {
		spread = -spread
	}
	stride := c.Stride(n)
	if stride == 0 {
		stride = 1
	}
	return spread/stride + 1
}

// Lines returns the number of cache lines the class needs for a line size
// of lineBytes, per the paper's §3 rule.
func (c Class) Lines(n *loopir.Nest, lineBytes int) (int, error) {
	if lineBytes <= 0 {
		return 0, fmt.Errorf("reuse: line size %d must be positive", lineBytes)
	}
	d := c.Distance(n)
	if m := d % lineBytes; m == 0 || m == 1 {
		return d/lineBytes + 1, nil
	}
	return d/lineBytes + 2, nil
}

// MinLines returns the total cache lines the nest needs — the sum over all
// classes — for the given line size.
func MinLines(n *loopir.Nest, lineBytes int) (int, error) {
	classes, err := Classes(n)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range classes {
		l, err := c.Lines(n, lineBytes)
		if err != nil {
			return 0, err
		}
		total += l
	}
	return total, nil
}

// MinCacheSize returns the paper's minimum cache size in bytes for the
// given line size: MinLines·L.
func MinCacheSize(n *loopir.Nest, lineBytes int) (int, error) {
	lines, err := MinLines(n, lineBytes)
	if err != nil {
		return 0, err
	}
	return lines * lineBytes, nil
}

// Compatible reports whether all references of the nest are compatible in
// the §4.1 sense: the difference between any two accesses to the same
// array is independent of the loop index, i.e. every array is referenced
// with a single linear part H. a[i] and a[i-2] are compatible; b[j][i]
// alongside b[i][j] is not (nor is an indirection a[b[i]], which this IR
// cannot express). When an array is incompatible a conflict-free static
// layout is not guaranteed to exist.
func Compatible(n *loopir.Nest) (bool, error) {
	refs, err := Lower(n)
	if err != nil {
		return false, err
	}
	perArray := map[string]map[string]bool{}
	for _, lr := range refs {
		k := hKey(lr.Coef)
		if perArray[lr.Array] == nil {
			perArray[lr.Array] = map[string]bool{}
		}
		perArray[lr.Array][k] = true
	}
	for _, hs := range perArray {
		if len(hs) > 1 {
			return false, nil
		}
	}
	return true, nil
}
