package reuse

import (
	"testing"
	"testing/quick"

	"memexplore/internal/cachesim"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
)

func TestLowerCompress(t *testing.T) {
	n := kernels.Compress()
	refs, err := Lower(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 5 {
		t.Fatalf("lowered %d refs, want 5", len(refs))
	}
	// a[i][j]: coef i=32, j=1, const 0.
	r := refs[0]
	if r.Coef["i"] != 32 || r.Coef["j"] != 1 || r.Const != 0 {
		t.Errorf("a[i][j] lowered to coef=%v const=%d", r.Coef, r.Const)
	}
	// a[i-1][j-1]: const -33.
	r = refs[3]
	if r.Const != -33 {
		t.Errorf("a[i-1][j-1] const = %d, want -33", r.Const)
	}
	if len(r.DimConsts) != 2 || r.DimConsts[0] != -1 || r.DimConsts[1] != -1 {
		t.Errorf("a[i-1][j-1] dim consts = %v", r.DimConsts)
	}
}

// The paper's §3 worked example: Compress has exactly two classes —
// {a[i-1][j-1], a[i-1][j]} and {a[i][j-1], a[i][j]} — each needing two
// cache lines, so the minimum cache size is 4·L.
func TestCompressClassesAndMinSize(t *testing.T) {
	n := kernels.Compress()
	classes, err := Classes(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Fatalf("classes = %d, want 2: %+v", len(classes), classes)
	}
	for _, c := range classes {
		// One class holds the row-(i) refs (3 members incl. the write),
		// the other the row-(i-1) refs (2 members).
		if c.Array != "a" {
			t.Errorf("class array = %q", c.Array)
		}
		if got := c.Distance(n); got != 2 {
			t.Errorf("class %v distance = %d, want 2", c.Members, got)
		}
		for _, L := range []int{2, 4, 8, 16} {
			lines, err := c.Lines(n, L)
			if err != nil {
				t.Fatal(err)
			}
			if lines != 2 {
				t.Errorf("class lines at L=%d: %d, want 2", L, lines)
			}
		}
	}
	for _, L := range []int{4, 8, 16} {
		size, err := MinCacheSize(n, L)
		if err != nil {
			t.Fatal(err)
		}
		if size != 4*L {
			t.Errorf("min cache size at L=%d: %d, want %d", L, size, 4*L)
		}
	}
}

// The paper's §4.1 Matrix Addition example needs exactly three cache
// lines: one per array.
func TestMatAddMinLines(t *testing.T) {
	n := kernels.MatAdd()
	lines, err := MinLines(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lines != 3 {
		t.Errorf("matadd min lines = %d, want 3", lines)
	}
	cases, err := Cases(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1 {
		t.Fatalf("matadd cases = %d, want 1 (same H on three arrays)", len(cases))
	}
	if len(cases[0].Classes) != 3 {
		t.Errorf("case classes = %d, want 3", len(cases[0].Classes))
	}
}

func TestStride(t *testing.T) {
	n := kernels.Compress()
	classes, _ := Classes(n)
	for _, c := range classes {
		if got := c.Stride(n); got != 1 {
			t.Errorf("compress class stride = %d, want 1 (unit stride in j)", got)
		}
	}
	// Transpose's b[j][i] class: innermost loop j has coefficient
	// rowstride 33 → stride 33.
	tr := kernels.Transpose(32)
	classes, _ = Classes(tr)
	var bClass *Class
	for i := range classes {
		if classes[i].Array == "b" {
			bClass = &classes[i]
		}
	}
	if bClass == nil {
		t.Fatal("no class for b")
	}
	if got := bClass.Stride(tr); got != 33 {
		t.Errorf("transpose b stride = %d, want 33", got)
	}
}

func TestDistanceSingleMember(t *testing.T) {
	n := kernels.MatAdd()
	classes, _ := Classes(n)
	for _, c := range classes {
		if d := c.Distance(n); d != 0 {
			t.Errorf("single-member class distance = %d, want 0", d)
		}
		lines, _ := c.Lines(n, 4)
		if lines != 1 {
			t.Errorf("single-member class lines = %d, want 1", lines)
		}
	}
}

func TestLinesRule(t *testing.T) {
	// Build classes with a controlled distance by constructing a synthetic
	// nest: refs a[i] and a[i-d] have distance d+1 at stride 1... use
	// direct arithmetic on the rule instead via a 1D nest.
	mk := func(offset int) *loopir.Nest {
		return &loopir.Nest{
			Name:   "synth",
			Arrays: []loopir.Array{{Name: "a", Dims: []int{128}}},
			Loops:  []loopir.Loop{loopir.ConstLoop("i", offset, 100)},
			Body: []loopir.Ref{
				loopir.Read("a", loopir.Var("i")),
				loopir.Read("a", loopir.Affine(-offset, "i", 1)),
			},
		}
	}
	// offset 5: spread 5, stride 1 → distance 6. L=4: 6 mod 4 = 2 →
	// floor(6/4)+2 = 3 lines.
	n := mk(5)
	lines, err := MinLines(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lines != 3 {
		t.Errorf("lines = %d, want 3", lines)
	}
	// offset 4: distance 5, 5 mod 4 = 1 → floor(5/4)+1 = 2 lines.
	n = mk(4)
	lines, err = MinLines(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lines != 2 {
		t.Errorf("lines = %d, want 2", lines)
	}
	if _, err := MinLines(n, 0); err == nil {
		t.Error("line size 0 should fail")
	}
}

func TestCompatible(t *testing.T) {
	for _, n := range []*loopir.Nest{kernels.Compress(), kernels.MatAdd(), kernels.PDE(), kernels.SOR(), kernels.Dequant()} {
		ok, err := Compatible(n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if !ok {
			t.Errorf("%s should be compatible", n.Name)
		}
	}
	// An array read with two different linear parts is incompatible.
	bad := &loopir.Nest{
		Name:   "incompat",
		Arrays: []loopir.Array{{Name: "b", Dims: []int{16, 16}}},
		Loops:  []loopir.Loop{loopir.ConstLoop("i", 0, 15), loopir.ConstLoop("j", 0, 15)},
		Body: []loopir.Ref{
			loopir.Read("b", loopir.Var("i"), loopir.Var("j")),
			loopir.Store("b", loopir.Var("j"), loopir.Var("i")),
		},
	}
	ok, err := Compatible(bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("b[i][j] with b[j][i] should be incompatible")
	}
}

// The §3 claim behind MinCacheSize: with at least MinLines lines (and a
// conflict-free layout — trivially true for single-array kernels at the
// natural base) the reused data of each class survives between
// consecutive iterations. Validate against the simulator: for Compress at
// the minimum cache size the miss rate is dramatically below a cache with
// half that many lines.
func TestMinCacheSizeAgainstSimulator(t *testing.T) {
	n := kernels.Compress()
	const L = 8
	minSize, err := MinCacheSize(n, L)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	atMin, err := cachesim.RunTrace(cachesim.DefaultConfig(minSize, L, minSize/L), tr)
	if err != nil {
		t.Fatal(err)
	}
	below, err := cachesim.RunTrace(cachesim.DefaultConfig(minSize/2, L, minSize/2/L), tr)
	if err != nil {
		t.Fatal(err)
	}
	if atMin.MissRate() >= below.MissRate() {
		t.Errorf("miss rate at min size (%v) should be below half-size (%v)",
			atMin.MissRate(), below.MissRate())
	}
	// At the minimum size with full associativity, intra-row group reuse
	// makes the miss rate ≈ 2 lines per L iterations over 5 refs.
	expected := 2.0 / (float64(L) * 5.0)
	if atMin.MissRate() > 3*expected {
		t.Errorf("miss rate at min size %v far above analytical %v", atMin.MissRate(), expected)
	}
}

// Property: MinLines is monotonically non-increasing in line size for
// classes with fixed spread (larger lines cover the same spread with fewer
// lines, modulo the +2 boundary rule which adds at most one).
func TestQuickMinLinesReasonable(t *testing.T) {
	f := func(offRaw uint8) bool {
		off := int(offRaw%32) + 1
		n := &loopir.Nest{
			Name:   "synth",
			Arrays: []loopir.Array{{Name: "a", Dims: []int{256}}},
			Loops:  []loopir.Loop{loopir.ConstLoop("i", off, 128)},
			Body: []loopir.Ref{
				loopir.Read("a", loopir.Var("i")),
				loopir.Read("a", loopir.Affine(-off, "i", 1)),
			},
		}
		prev := 1 << 30
		for _, L := range []int{2, 4, 8, 16, 32, 64} {
			lines, err := MinLines(n, L)
			if err != nil {
				return false
			}
			if lines < 1 {
				return false
			}
			// Allow the +2 boundary wobble of one line.
			if lines > prev+1 {
				return false
			}
			prev = lines
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Error(err)
	}
}
