package scratchpad

import (
	"testing"

	"memexplore/internal/energy"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
)

func params() Params { return DefaultParams(energy.CypressCY7C()) }

func TestParamsValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.CellNJPerByte = 0 },
		func(p *Params) { p.SPMCycles = 0 },
		func(p *Params) { p.OffchipCycles = 0.5 },
		func(p *Params) { p.Main.EmNJ = 0 },
	}
	for i, mutate := range bad {
		p := params()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestAssignGreedyDensity(t *testing.T) {
	// Dequant: block (1024 B, 2 accesses/iter... block read+write) and
	// quant (1024 B, 1 access/iter). Equal size, block denser.
	n := kernels.Dequant()
	a, err := Assign(n, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InSPM["block"] {
		t.Errorf("block (denser) should be on-chip: %+v", a)
	}
	if a.InSPM["quant"] {
		t.Errorf("quant should not fit: %+v", a)
	}
	if a.UsedBytes != 1024 {
		t.Errorf("used = %d", a.UsedBytes)
	}
	// With room for both, both go on-chip.
	a, err = Assign(n, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InSPM["block"] || !a.InSPM["quant"] {
		t.Errorf("both arrays should fit: %+v", a)
	}
	// Zero capacity: nothing on-chip.
	a, err = Assign(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.InSPM) != 0 || a.UsedBytes != 0 {
		t.Errorf("zero-capacity assignment: %+v", a)
	}
	if _, err := Assign(n, -1); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestAssignSkipsUnreferenced(t *testing.T) {
	n := &loopir.Nest{
		Name: "unref",
		Arrays: []loopir.Array{
			{Name: "hot", Dims: []int{8}},
			{Name: "never", Dims: []int{8}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 7)},
		Body:  []loopir.Ref{loopir.Read("hot", loopir.Var("i"))},
	}
	a, err := Assign(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.InSPM["never"] {
		t.Error("unreferenced array should stay off-chip")
	}
}

func TestEvaluateAccounting(t *testing.T) {
	n := kernels.Dequant() // 961 iterations × 3 refs
	a, err := Assign(n, 1024)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(n, a, params())
	if err != nil {
		t.Fatal(err)
	}
	if m.OnChipAccesses != 2*961 || m.OffChipAccesses != 961 {
		t.Errorf("access split = %d/%d", m.OnChipAccesses, m.OffChipAccesses)
	}
	if m.HitRate < 0.66 || m.HitRate > 0.67 {
		t.Errorf("hit rate = %v", m.HitRate)
	}
	p := params()
	wantCycles := float64(2*961)*p.SPMCycles + float64(961)*p.OffchipCycles
	if m.Cycles != wantCycles {
		t.Errorf("cycles = %v, want %v", m.Cycles, wantCycles)
	}
	if m.EnergyNJ <= 0 {
		t.Errorf("energy = %v", m.EnergyNJ)
	}
	if _, err := Evaluate(n, a, Params{}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestExploreCapacityTradeoff(t *testing.T) {
	n := kernels.Dequant()
	caps := []int{0, 512, 1024, 2048, 4096, 8192}
	ms, err := Explore(n, caps, params())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(caps) {
		t.Fatalf("results = %d", len(ms))
	}
	// Hit rate is non-decreasing in capacity; cycles non-increasing.
	for i := 1; i < len(ms); i++ {
		if ms[i].HitRate < ms[i-1].HitRate {
			t.Errorf("hit rate fell at capacity %d", caps[i])
		}
		if ms[i].Cycles > ms[i-1].Cycles {
			t.Errorf("cycles rose at capacity %d", caps[i])
		}
	}
	// Energy is not monotone: an oversized scratchpad pays per-access
	// cell energy for capacity it does not need — the same phenomenon the
	// paper shows for caches.
	minE, ok := MinEnergy(ms)
	if !ok {
		t.Fatal("no optimum")
	}
	if minE.CapacityBytes == caps[len(caps)-1] {
		t.Errorf("energy optimum at max capacity %d — energy lost its bite", minE.CapacityBytes)
	}
	if _, ok := MinEnergy(nil); ok {
		t.Error("MinEnergy(nil) should report !ok")
	}
}
