// Package scratchpad models the on-chip memory alternative the paper's
// lineage ([1], [2] — Panda, Dutt & Nicolau's local-memory exploration)
// compares caches against: a software-managed scratchpad SRAM. Arrays are
// statically assigned to the scratchpad (no tags, no misses, single-cycle
// access) or left in off-chip memory (every access pays the main-memory
// energy and latency); a greedy density assignment packs the
// most-frequently-accessed bytes on chip.
//
// The CacheVsSPM comparison exhibit uses this package to ask the question
// the paper's introduction raises — which on-chip memory organization
// should the designer pick for a given application? — with the same three
// metrics (size, cycles, energy).
package scratchpad

import (
	"fmt"
	"sort"

	"memexplore/internal/energy"
	"memexplore/internal/loopir"
)

// Params fixes the scratchpad cost model.
type Params struct {
	// CellNJPerByte is the per-access on-chip energy per scratchpad byte
	// of capacity, mirroring the cache model's E_cell = β·cells·scale with
	// the tag overhead removed: a scratchpad of C bytes costs
	// CellNJPerByte·C per access. Default ties to energy.DefaultParams:
	// β·8·CellScale.
	CellNJPerByte float64
	// SPMCycles is the scratchpad access latency (1).
	SPMCycles float64
	// OffchipCycles is the off-chip access latency in cycles (the §2.2
	// per-word miss cost, 40 for small transfers).
	OffchipCycles float64
	// Main supplies Em for off-chip accesses.
	Main energy.SRAM
}

// DefaultParams derives scratchpad parameters consistent with the cache
// energy model.
func DefaultParams(main energy.SRAM) Params {
	e := energy.DefaultParams(main)
	return Params{
		CellNJPerByte: e.Beta * 8 * e.CellScale,
		SPMCycles:     1,
		OffchipCycles: 40,
		Main:          main,
	}
}

// Validate rejects nonsensical parameters.
func (p Params) Validate() error {
	if p.CellNJPerByte <= 0 {
		return fmt.Errorf("scratchpad: non-positive cell energy %v", p.CellNJPerByte)
	}
	if p.SPMCycles <= 0 || p.OffchipCycles <= p.SPMCycles {
		return fmt.Errorf("scratchpad: latencies must satisfy 0 < spm (%v) < offchip (%v)",
			p.SPMCycles, p.OffchipCycles)
	}
	if p.Main.EmNJ <= 0 {
		return fmt.Errorf("scratchpad: main memory %q has non-positive Em", p.Main.Name)
	}
	return nil
}

// Assignment records which arrays live in the scratchpad.
type Assignment struct {
	// InSPM marks on-chip arrays.
	InSPM map[string]bool
	// UsedBytes is the on-chip capacity consumed.
	UsedBytes int
	// CapacityBytes is the scratchpad size the assignment targeted.
	CapacityBytes int
}

// arrayDemand is the access count and footprint of one array.
type arrayDemand struct {
	name     string
	accesses int64
	bytes    int
}

// demands counts, statically, each array's accesses over one run of the
// nest.
func demands(n *loopir.Nest) ([]arrayDemand, error) {
	iters, err := n.Iterations()
	if err != nil {
		return nil, err
	}
	perArray := map[string]int64{}
	for _, r := range n.Body {
		perArray[r.Array] += iters
	}
	var out []arrayDemand
	for _, a := range n.Arrays {
		out = append(out, arrayDemand{
			name:     a.Name,
			accesses: perArray[a.Name],
			bytes:    a.SizeBytes(),
		})
	}
	return out, nil
}

// Assign packs arrays into a scratchpad of the given capacity, greedily by
// access density (accesses per byte) — the classic Panda/Dutt heuristic.
// Arrays that do not fit stay off-chip.
func Assign(n *loopir.Nest, capacityBytes int) (Assignment, error) {
	if capacityBytes < 0 {
		return Assignment{}, fmt.Errorf("scratchpad: negative capacity %d", capacityBytes)
	}
	if err := n.Validate(); err != nil {
		return Assignment{}, err
	}
	ds, err := demands(n)
	if err != nil {
		return Assignment{}, err
	}
	sort.SliceStable(ds, func(i, j int) bool {
		di := float64(ds[i].accesses) / float64(ds[i].bytes)
		dj := float64(ds[j].accesses) / float64(ds[j].bytes)
		if di != dj {
			return di > dj
		}
		return ds[i].bytes < ds[j].bytes
	})
	a := Assignment{InSPM: map[string]bool{}, CapacityBytes: capacityBytes}
	for _, d := range ds {
		if d.accesses == 0 {
			continue
		}
		if a.UsedBytes+d.bytes <= capacityBytes {
			a.InSPM[d.name] = true
			a.UsedBytes += d.bytes
		}
	}
	return a, nil
}

// Metrics is the scratchpad evaluation result, mirroring the cache
// explorer's triple.
type Metrics struct {
	// CapacityBytes is the scratchpad size.
	CapacityBytes int
	// OnChipAccesses and OffChipAccesses partition the reference count.
	OnChipAccesses  int64
	OffChipAccesses int64
	// Cycles and EnergyNJ follow the package cost model.
	Cycles   float64
	EnergyNJ float64
	// HitRate is the fraction of accesses served on-chip.
	HitRate float64
}

// Evaluate scores one assignment under the cost model.
func Evaluate(n *loopir.Nest, a Assignment, p Params) (Metrics, error) {
	if err := p.Validate(); err != nil {
		return Metrics{}, err
	}
	ds, err := demands(n)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{CapacityBytes: a.CapacityBytes}
	for _, d := range ds {
		if a.InSPM[d.name] {
			m.OnChipAccesses += d.accesses
		} else {
			m.OffChipAccesses += d.accesses
		}
	}
	total := m.OnChipAccesses + m.OffChipAccesses
	if total > 0 {
		m.HitRate = float64(m.OnChipAccesses) / float64(total)
	}
	eSPM := p.CellNJPerByte * float64(a.CapacityBytes)
	m.Cycles = float64(m.OnChipAccesses)*p.SPMCycles + float64(m.OffChipAccesses)*p.OffchipCycles
	m.EnergyNJ = float64(m.OnChipAccesses)*eSPM + float64(m.OffChipAccesses)*p.Main.EmNJ
	return m, nil
}

// Explore evaluates the greedy assignment at every candidate capacity and
// returns the metrics in input order.
func Explore(n *loopir.Nest, capacities []int, p Params) ([]Metrics, error) {
	var out []Metrics
	for _, c := range capacities {
		a, err := Assign(n, c)
		if err != nil {
			return nil, err
		}
		m, err := Evaluate(n, a, p)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// MinEnergy returns the lowest-energy capacity point.
func MinEnergy(ms []Metrics) (Metrics, bool) {
	if len(ms) == 0 {
		return Metrics{}, false
	}
	best := ms[0]
	for _, m := range ms[1:] {
		if m.EnergyNJ < best.EnergyNJ {
			best = m
		}
	}
	return best, true
}
