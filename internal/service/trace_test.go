package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"memexplore/internal/extrace"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
)

// traceQueryString is the fast sweep space for the trace tests.
const traceQueryString = "sizes=32,64&lines=4,8&assocs=1"

// kernelDin renders a paper kernel's trace in the din text format.
func kernelDin(t *testing.T) []byte {
	t.Helper()
	n := kernels.MatAdd()
	tiled, err := loopir.TileAll(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tiled.Generate(loopir.SequentialLayout(tiled, 0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := extrace.WriteDin(&buf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postTrace(t *testing.T, s *Server, query string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	path := "/v1/explore-trace"
	if query != "" {
		path += "?" + query
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeTrace(t *testing.T, w *httptest.ResponseRecorder) TraceExploreResponse {
	t.Helper()
	var resp TraceExploreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return resp
}

func TestExploreTraceHappyPath(t *testing.T) {
	s := newTestServer(t)
	din := kernelDin(t)
	w := postTrace(t, s, traceQueryString, din)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeTrace(t, w)
	// sizes{32,64} × lines{4,8} × assocs{1} = 4 legal points.
	if resp.Points != 4 || len(resp.Metrics) != 4 {
		t.Fatalf("points = %d (metrics %d), want 4", resp.Points, len(resp.Metrics))
	}
	if resp.Ingest.Records == 0 || resp.Ingest.Format != "din" || resp.Ingest.BytesRead != int64(len(din)) {
		t.Errorf("ingest stats = %+v", resp.Ingest)
	}
	if resp.Best.MinEnergy == nil {
		t.Error("missing min-energy selection")
	}
	if m := resp.Metrics[0]; int64(m.Accesses) != resp.Ingest.Records || m.EnergyNJ <= 0 {
		t.Errorf("implausible metrics row: %+v", m)
	}
	// Every point reports the baked-in tiling, not a swept one.
	for _, m := range resp.Metrics {
		if m.Tiling != 1 {
			t.Fatalf("trace sweep swept tiling %d", m.Tiling)
		}
	}
}

func TestExploreTraceGzipBody(t *testing.T) {
	s := newTestServer(t)
	din := kernelDin(t)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(din); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	w := postTrace(t, s, traceQueryString, gz.Bytes())
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeTrace(t, w)
	if !resp.Ingest.Gzip || resp.Ingest.BytesRead != int64(gz.Len()) {
		t.Errorf("ingest stats = %+v, want gzip with %d wire bytes", resp.Ingest, gz.Len())
	}

	// The compressed and plain bodies must sweep identically.
	plain := decodeTrace(t, postTrace(t, s, traceQueryString, din))
	for i := range plain.Metrics {
		if plain.Metrics[i] != resp.Metrics[i] {
			t.Fatalf("point %d differs between plain and gzip bodies", i)
		}
	}
}

func TestExploreTraceMalformedBody(t *testing.T) {
	s := newTestServer(t)
	w := postTrace(t, s, traceQueryString, []byte("0 10\n1 20\nnot a record\n"))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	e := decodeError(t, w)
	if e.Code != "invalid_trace" || !strings.Contains(e.Message, "line 3") {
		t.Errorf("error = %+v, want invalid_trace naming line 3", e)
	}
}

func TestExploreTraceSkipMalformed(t *testing.T) {
	s := newTestServer(t)
	w := postTrace(t, s, traceQueryString+"&skip_malformed=true", []byte("0 10\nbogus\n1 20\n"))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeTrace(t, w)
	if resp.Ingest.Records != 2 || resp.Ingest.Rejects != 1 {
		t.Errorf("ingest = %+v, want 2 records / 1 reject", resp.Ingest)
	}
}

func TestExploreTraceBodyTooLarge(t *testing.T) {
	s := MustNew(Config{MaxBodyBytes: 64})
	w := postTrace(t, s, traceQueryString, bytes.Repeat([]byte("0 10\n"), 100))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if e := decodeError(t, w); e.Code != "body_too_large" {
		t.Errorf("error = %+v", e)
	}
}

func TestExploreTraceErrorCases(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name  string
		query string
		body  string
		code  string
	}{
		{"empty body", traceQueryString, "", "empty_trace"},
		{"comments only", traceQueryString, "# nothing\n", "empty_trace"},
		{"record limit", traceQueryString + "&max_records=1", "0 10\n0 20\n", "record_limit"},
		{"unknown param", traceQueryString + "&bogus=1", "0 10\n", "invalid_options"},
		{"bad list", "sizes=big", "0 10\n", "invalid_options"},
		{"classify unsupported via unknown key", "classify=true", "0 10\n", "invalid_options"},
		{"invalid space", "sizes=16&lines=16", "0 10\n", "invalid_options"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postTrace(t, s, tc.query, []byte(tc.body))
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s", w.Code, w.Body)
			}
			if e := decodeError(t, w); e.Code != tc.code {
				t.Errorf("error code = %q, want %q (%+v)", e.Code, tc.code, e)
			}
		})
	}
}

func TestExploreTraceCountersAdvance(t *testing.T) {
	s := newTestServer(t)
	before := vars.traceRecords.Value()
	beforeBytes := vars.traceBytesRead.Value()
	din := kernelDin(t)
	if w := postTrace(t, s, traceQueryString, din); w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if got := vars.traceRecords.Value() - before; got == 0 {
		t.Error("trace_records did not advance")
	}
	if got := vars.traceBytesRead.Value() - beforeBytes; got != int64(len(din)) {
		t.Errorf("trace_bytes_read advanced by %d, want %d", got, len(din))
	}

	// Rejected requests still account for what was ingested.
	beforeRejects := vars.traceRejects.Value()
	postTrace(t, s, traceQueryString+"&skip_malformed=true&max_records=1", []byte("0 10\nbogus\n0 20\n"))
	if vars.traceRejects.Value() == beforeRejects {
		t.Error("trace_rejects did not advance on a skip-mode request")
	}
}

func TestExploreTraceDraining(t *testing.T) {
	s := newTestServer(t)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	w := postTrace(t, s, traceQueryString, []byte("0 10\n"))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 while draining", w.Code)
	}
}

// TestExploreTraceWorkersParam pins the workers= query parameter: the
// client request is clamped to the server-side cap, the engine reports
// the actual shard count through the trace_workers gauge, and the
// pipeline's ring drains back to empty after every request.
func TestExploreTraceWorkersParam(t *testing.T) {
	s := MustNew(Config{MaxConcurrentSweeps: 2, SweepWorkers: 4, CacheEntries: 8})
	din := kernelDin(t)

	inflightBefore := vars.chunksInflight.Value()
	stallBefore := vars.chunkStall.count.Load()

	// workers=2 under a cap of 4: two shards run.
	if w := postTrace(t, s, traceQueryString+"&workers=2", din); w.Code != http.StatusOK {
		t.Fatalf("workers=2 status = %d: %s", w.Code, w.Body.String())
	}
	if got := vars.traceWorkers.Value(); got != 2 {
		t.Errorf("trace_workers = %d after workers=2, want 2", got)
	}

	// workers=100 is clamped to the cap (4); the space has 4 pass units,
	// so 4 shards run.
	if w := postTrace(t, s, traceQueryString+"&workers=100", din); w.Code != http.StatusOK {
		t.Fatalf("workers=100 status = %d: %s", w.Code, w.Body.String())
	}
	if got := vars.traceWorkers.Value(); got != 4 {
		t.Errorf("trace_workers = %d after capped workers=100, want 4", got)
	}

	// workers=1 forces the exact sequential engine.
	if w := postTrace(t, s, traceQueryString+"&workers=1", din); w.Code != http.StatusOK {
		t.Fatalf("workers=1 status = %d: %s", w.Code, w.Body.String())
	}
	if got := vars.traceWorkers.Value(); got != 1 {
		t.Errorf("trace_workers = %d after workers=1, want 1", got)
	}

	if got := vars.chunksInflight.Value(); got != inflightBefore {
		t.Errorf("chunks_inflight = %d after requests drained, want %d", got, inflightBefore)
	}
	if got := vars.chunkStall.count.Load(); got <= stallBefore {
		t.Error("trace_chunk_stall_ms histogram did not advance on pipelined sweeps")
	}

	// Equal results at every worker count.
	r1 := decodeTrace(t, postTrace(t, s, traceQueryString+"&workers=1", din))
	r4 := decodeTrace(t, postTrace(t, s, traceQueryString+"&workers=4", din))
	if !reflect.DeepEqual(r1.Metrics, r4.Metrics) || r1.Ingest.Records != r4.Ingest.Records {
		t.Error("workers=1 and workers=4 responses diverge")
	}
}

// TestExploreTraceSampling pins the sampled-sweep surface of the
// endpoint: the query alias, the response envelope, the expvars, and
// determinism across identical requests.
func TestExploreTraceSampling(t *testing.T) {
	s := newTestServer(t)
	din := kernelDin(t)

	sampledBefore := vars.traceSampledRecords.Value()
	w := postTrace(t, s, traceQueryString+"&sample_rate=0.5&sample_seed=7", din)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeTrace(t, w)
	if resp.Sample == nil {
		t.Fatalf("sampled response lacks the sample envelope: %s", w.Body)
	}
	if resp.Sample.Rate != 0.5 || resp.Sample.Seed != 7 {
		t.Errorf("sample envelope = %+v, want rate 0.5 seed 7", resp.Sample)
	}
	if resp.Sample.SampledRecords <= 0 || resp.Sample.SampledRecords >= resp.Ingest.Records {
		t.Errorf("sampled_records = %d, want a proper subset of %d", resp.Sample.SampledRecords, resp.Ingest.Records)
	}
	if m := resp.Metrics[0]; m.SampleRate != 0.5 || m.SampledRecords != resp.Sample.SampledRecords {
		t.Errorf("per-point envelope = %+v, disagrees with meta %+v", m, resp.Sample)
	}
	if got := vars.traceSampledRecords.Value() - sampledBefore; got != resp.Sample.SampledRecords {
		t.Errorf("trace_sampled_records advanced by %d, want %d", got, resp.Sample.SampledRecords)
	}
	if got := vars.traceSampleRate.Value(); got != 0.5 {
		t.Errorf("trace_sample_rate = %g, want 0.5", got)
	}

	// Identical sampled requests are deterministic.
	again := decodeTrace(t, postTrace(t, s, traceQueryString+"&sample_rate=0.5&sample_seed=7", din))
	if !reflect.DeepEqual(again.Metrics, resp.Metrics) {
		t.Error("identical sampled requests diverge")
	}

	// An exact request resets the gauge and carries no sample envelope.
	w = postTrace(t, s, traceQueryString, din)
	if exact := decodeTrace(t, w); exact.Sample != nil {
		t.Errorf("exact response carries a sample envelope: %+v", exact.Sample)
	}
	if bytes.Contains(w.Body.Bytes(), []byte(`"sample"`)) {
		t.Error("exact response body mentions the sample envelope key")
	}
	if got := vars.traceSampleRate.Value(); got != 0 {
		t.Errorf("trace_sample_rate = %g after an exact sweep, want 0", got)
	}
}

// TestExploreTraceSamplingHeader drives the same options through the
// X-Memexplore-Options JSON form.
func TestExploreTraceSamplingHeader(t *testing.T) {
	s := newTestServer(t)
	header := `{"kind":"explore-trace","options":{` +
		`"cache_sizes":[32,64],"line_sizes":[4,8],"assocs":[1],"sample_rate":0.5,"sample_seed":7}}`
	w := postTraceHeader(t, s, header, "", kernelDin(t))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeTrace(t, w)
	if resp.Sample == nil || resp.Sample.Rate != 0.5 || resp.Sample.Seed != 7 {
		t.Errorf("sample envelope = %+v, want rate 0.5 seed 7", resp.Sample)
	}
}

// TestExploreTraceDominantEps: an HTTP body is not seekable, so the
// two-pass prefilter must spool it and still succeed.
func TestExploreTraceDominantEps(t *testing.T) {
	s := newTestServer(t)
	din := kernelDin(t)
	w := postTrace(t, s, traceQueryString+"&dominant_eps=0.1", din)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeTrace(t, w)
	if resp.Sample == nil || resp.Sample.Rate != 0 || resp.Sample.SampledRecords <= 0 {
		t.Fatalf("prefiltered response envelope = %+v", resp.Sample)
	}
	// Cold skips count as hits, so the access totals still match the
	// stream.
	if m := resp.Metrics[0]; int64(m.Accesses) != resp.Ingest.Records {
		t.Errorf("accesses = %d, want %d", m.Accesses, resp.Ingest.Records)
	}
}

// TestExploreTraceSamplingValidation rejects out-of-range knobs.
func TestExploreTraceSamplingValidation(t *testing.T) {
	s := newTestServer(t)
	for _, q := range []string{"sample_rate=1.5", "sample_rate=-1", "sample_rate=abc",
		"dominant_eps=0.9", "dominant_eps=x", "sample_seed=-1"} {
		w := postTrace(t, s, traceQueryString+"&"+q, []byte("0 10\n"))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, w.Code)
		}
		if e := decodeError(t, w); e.Code != "invalid_options" {
			t.Errorf("%s: error code = %q", q, e.Code)
		}
	}
}

// TestExploreTraceWorkersValidation rejects malformed workers values.
func TestExploreTraceWorkersValidation(t *testing.T) {
	s := newTestServer(t)
	for _, q := range []string{"workers=-1", "workers=abc", "workers=2&workers=3"} {
		w := postTrace(t, s, traceQueryString+"&"+q, []byte("0 10\n"))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, w.Code)
		}
		if e := decodeError(t, w); e.Code != "invalid_options" {
			t.Errorf("%s: error code = %q", q, e.Code)
		}
	}
}
