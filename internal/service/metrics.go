package service

import (
	"expvar"
	"fmt"
	"sync/atomic"
	"time"

	"memexplore/internal/core"
)

// Service counters, published once per process under the "memexplored"
// expvar map (GET /debug/vars). expvar registration is global, so all
// Server instances in a process share one counter set; tests read deltas.
type counters struct {
	requests    expvar.Int // requests to the sweep endpoints
	cacheHits   expvar.Int // requests answered from the result cache
	cacheMisses expvar.Int // requests that had to run a sweep
	inFlight    expvar.Int // sweeps currently executing
	points      expvar.Int // config points evaluated by completed sweeps
	workloads   expvar.Int // distinct workload traces generated/traversed
	passesSaved expvar.Int // trace passes avoided by workload batching (points − workloads)
	canceled    expvar.Int // requests abandoned by the client mid-sweep
	failed      expvar.Int // requests rejected or errored
	// External-trace ingestion totals (/v1/explore-trace), accumulated
	// from the per-request IngestStats — including failed requests, which
	// report whatever was ingested before the error.
	traceBytesRead expvar.Int // wire bytes read from trace bodies
	traceRecords   expvar.Int // trace records accepted into sweeps
	traceRejects   expvar.Int // malformed records skipped (skip mode)
	// traceSampledRecords totals the records actually simulated by
	// sampled/prefiltered trace sweeps (a counter); traceSampleRate is the
	// configured sampling rate of the most recent such sweep (a gauge, 0
	// when the last trace sweep was exact).
	traceSampledRecords expvar.Int
	traceSampleRate     expvar.Float
	// traceChunksSkipped totals the mxt v2 chunks stepped over via the
	// MXTI01 index instead of decoded; traceMmapBytes totals the bytes
	// ingested through the zero-copy memory-mapped fast path (both
	// counters).
	traceChunksSkipped expvar.Int
	traceMmapBytes     expvar.Int
	// inclusionGroups counts the (workload, line, sets) groups the
	// inclusion engine collapsed into single LRU stack passes across
	// completed sweeps.
	inclusionGroups expvar.Int
	latency         latencyHist
	// Trace-pipeline observability (see core.PipelineObserver).
	// traceWorkers is the shard-worker count of the most recently started
	// trace sweep (1 = sequential path) — a gauge. chunksInflight is the
	// number of decoded chunks currently sitting in pipeline rings — a
	// gauge summed across concurrent sweeps. chunkStall histograms how
	// long the simulation coordinator waited for the decode producer per
	// chunk (sub-millisecond buckets; ~0 means decode keeps up).
	traceWorkers   expvar.Int
	chunksInflight expvar.Int
	chunkStall     latencyHist
	// lastPointsPerSec is the throughput of the most recently completed
	// (uncached) sweep — a gauge, not a cumulative counter.
	lastPointsPerSec expvar.Float
	// configsPerPass is the plan amplification of the most recently
	// completed (uncached) sweep: points per simulation pass unit
	// (inclusion groups + fallback configurations) — a gauge.
	configsPerPass expvar.Float
	// Async job subsystem (internal/jobs). Submitted/completed/failed/
	// canceled are lifetime counters; queued/running are gauges of the
	// current pool state; resultHits counts submissions answered from the
	// shared result tier without running a sweep.
	jobsSubmitted  expvar.Int
	jobsCompleted  expvar.Int
	jobsFailed     expvar.Int
	jobsCanceled   expvar.Int
	jobsResultHits expvar.Int
	jobsQueued     expvar.Int
	jobsRunning    expvar.Int
	// Distributed sweeps (the cross-replica coordinator). Shards counts
	// shard legs dispatched (local and remote alike); peerFailures counts
	// peer legs that errored and fell back to local execution;
	// bytesShipped totals trace bytes sent to peers over the wire (blob
	// handoffs through a shared store don't count — that is the point).
	distShardsDispatched expvar.Int
	distPeerFailures     expvar.Int
	distBytesShipped     expvar.Int
	// Guided search (internal/search, /v1/search). Runs counts completed
	// (uncached) searches; evaluations/generations/memoHits accumulate
	// their per-run totals, so evaluations/runs is the mean budget spend
	// and memoHits/evaluations the revisit amplification.
	searchRuns        expvar.Int
	searchEvaluations expvar.Int
	searchGenerations expvar.Int
	searchMemoHits    expvar.Int
}

var vars = func() *counters {
	c := &counters{chunkStall: latencyHist{bounds: stallBoundsMS}}
	core.SetPipelineObserver(&core.PipelineObserver{
		Workers:        func(n int) { c.traceWorkers.Set(int64(n)) },
		ChunksInflight: func(delta int) { c.chunksInflight.Add(int64(delta)) },
		ChunkStall: func(d time.Duration) {
			c.chunkStall.Observe(float64(d) / float64(time.Millisecond))
		},
	})
	m := expvar.NewMap("memexplored")
	m.Set("requests", &c.requests)
	m.Set("cache_hits", &c.cacheHits)
	m.Set("cache_misses", &c.cacheMisses)
	m.Set("in_flight_sweeps", &c.inFlight)
	m.Set("points_evaluated", &c.points)
	m.Set("workloads_explored", &c.workloads)
	m.Set("trace_passes_saved", &c.passesSaved)
	m.Set("canceled", &c.canceled)
	m.Set("failed", &c.failed)
	m.Set("trace_bytes_read", &c.traceBytesRead)
	m.Set("trace_records", &c.traceRecords)
	m.Set("trace_rejects", &c.traceRejects)
	m.Set("trace_sampled_records", &c.traceSampledRecords)
	m.Set("trace_sample_rate", &c.traceSampleRate)
	m.Set("trace_chunks_skipped", &c.traceChunksSkipped)
	m.Set("trace_mmap_bytes", &c.traceMmapBytes)
	m.Set("inclusion_groups", &c.inclusionGroups)
	m.Set("latency_ms", &c.latency)
	m.Set("last_sweep_points_per_sec", &c.lastPointsPerSec)
	m.Set("configs_per_pass", &c.configsPerPass)
	m.Set("trace_workers", &c.traceWorkers)
	m.Set("chunks_inflight", &c.chunksInflight)
	m.Set("trace_chunk_stall_ms", &c.chunkStall)
	m.Set("jobs_submitted", &c.jobsSubmitted)
	m.Set("jobs_completed", &c.jobsCompleted)
	m.Set("jobs_failed", &c.jobsFailed)
	m.Set("jobs_canceled", &c.jobsCanceled)
	m.Set("jobs_result_hits", &c.jobsResultHits)
	m.Set("jobs_queued", &c.jobsQueued)
	m.Set("jobs_running", &c.jobsRunning)
	m.Set("dist_shards_dispatched", &c.distShardsDispatched)
	m.Set("dist_peer_failures", &c.distPeerFailures)
	m.Set("dist_bytes_shipped", &c.distBytesShipped)
	m.Set("search_runs", &c.searchRuns)
	m.Set("search_evaluations", &c.searchEvaluations)
	m.Set("search_generations", &c.searchGenerations)
	m.Set("search_memo_hits", &c.searchMemoHits)
	return c
}()

// latencyBoundsMS are the default histogram bucket upper bounds in
// milliseconds; the final implicit bucket is +Inf.
var latencyBoundsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// stallBoundsMS are the chunk-stall histogram bounds: per-chunk decode
// waits are sub-millisecond when the pipeline is healthy, so the buckets
// start at 10µs.
var stallBoundsMS = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// maxHistBuckets bounds the bucket storage so the zero value stays
// usable; any bounds slice must have fewer entries.
const maxHistBuckets = 16

// latencyHist is a fixed-bucket duration histogram with p50/p99
// readouts. bounds holds the per-instance bucket upper bounds (nil means
// latencyBoundsMS, keeping the zero value usable). Quantiles are
// estimated as the upper bound of the bucket containing the quantile
// rank — coarse, but monotone and lock-free.
type latencyHist struct {
	bounds  []float64
	buckets [maxHistBuckets]atomic.Int64 // len(bounds)+1 in use, last = overflow
	count   atomic.Int64
}

// bnds returns the instance's bucket bounds.
func (h *latencyHist) bnds() []float64 {
	if h.bounds != nil {
		return h.bounds
	}
	return latencyBoundsMS
}

// Observe records one duration in milliseconds.
func (h *latencyHist) Observe(ms float64) {
	bounds := h.bnds()
	i := 0
	for i < len(bounds) && ms > bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
}

// Quantile returns the upper bound of the bucket containing quantile q
// (0 < q ≤ 1), or 0 when nothing has been observed.
func (h *latencyHist) Quantile(q float64) float64 {
	bounds := h.bnds()
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i <= len(bounds); i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1] // overflow bucket
		}
	}
	return bounds[len(bounds)-1]
}

// String renders the histogram as the expvar JSON value: cumulative
// counts per bucket plus the derived p50/p99.
func (h *latencyHist) String() string {
	bounds := h.bnds()
	out := `{"count":` + fmt.Sprint(h.count.Load())
	out += fmt.Sprintf(`,"p50_ms":%g,"p99_ms":%g,"buckets":{`, h.Quantile(0.50), h.Quantile(0.99))
	for i, b := range bounds {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf(`"le_%g":%d`, b, h.buckets[i].Load())
	}
	out += fmt.Sprintf(`,"le_inf":%d}}`, h.buckets[len(bounds)].Load())
	return out
}
