package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinyOptionsJSON keeps test sweeps fast: 8 legal config points.
const tinyOptionsJSON = `{"cache_sizes":[32,64],"line_sizes":[4,8],"assocs":[1],"tilings":[1,2]}`

func newTestServer(t *testing.T) *Server {
	t.Helper()
	return MustNew(Config{MaxConcurrentSweeps: 2, CacheEntries: 8})
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeExplore(t *testing.T, w *httptest.ResponseRecorder) ExploreResponse {
	t.Helper()
	var resp ExploreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return resp
}

func decodeError(t *testing.T, w *httptest.ResponseRecorder) ErrorDetail {
	t.Helper()
	var body ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding error %q: %v", w.Body.String(), err)
	}
	return body.Error
}

func TestExploreHappyPath(t *testing.T) {
	s := newTestServer(t)
	w := postJSON(t, s, "/v1/explore", `{"kernel":"compress","options":`+tinyOptionsJSON+`}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeExplore(t, w)
	if resp.Kernel != "compress" || resp.Cached || resp.Points == 0 || len(resp.Metrics) != resp.Points {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Best.MinEnergy == nil || resp.Best.MinCycles == nil || resp.Best.MinEDP == nil {
		t.Error("missing unbounded optima")
	}
	if resp.Best.MinEnergyUnderCycleBound != nil {
		t.Error("bounded optimum present without a bound in the request")
	}
	m := resp.Metrics[0]
	if m.CacheSize == 0 || m.Accesses == 0 || m.EnergyNJ <= 0 {
		t.Errorf("implausible metrics row: %+v", m)
	}
}

func TestExploreBoundedSelection(t *testing.T) {
	s := newTestServer(t)
	w := postJSON(t, s, "/v1/explore",
		`{"kernel":"compress","options":`+tinyOptionsJSON+`,"cycle_bound":1e12,"energy_bound_nj":1e12}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeExplore(t, w)
	if resp.Best.MinEnergyUnderCycleBound == nil || resp.Best.MinCyclesUnderEnergyBound == nil {
		t.Errorf("bounded optima missing under generous bounds: %+v", resp.Best)
	}
}

func TestExploreCacheHit(t *testing.T) {
	s := newTestServer(t)
	hits0 := vars.cacheHits.Value()
	body := `{"kernel":"compress","options":` + tinyOptionsJSON + `}`

	w1 := postJSON(t, s, "/v1/explore", body)
	if w1.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", w1.Code, w1.Body)
	}
	if decodeExplore(t, w1).Cached {
		t.Error("first request claims a cache hit")
	}

	// A wire-equivalent request — shuffled, duplicated candidate lists —
	// must hit the same cache entry (content addressing via Normalize).
	equiv := `{"kernel":"compress","options":{"cache_sizes":[64,32,32],"line_sizes":[8,4],"assocs":[1,1],"tilings":[2,1]}}`
	w2 := postJSON(t, s, "/v1/explore", equiv)
	if w2.Code != http.StatusOK {
		t.Fatalf("second request: %d %s", w2.Code, w2.Body)
	}
	resp2 := decodeExplore(t, w2)
	if !resp2.Cached {
		t.Error("equivalent repeated request missed the cache")
	}
	if got := vars.cacheHits.Value() - hits0; got < 1 {
		t.Errorf("expvar cache_hits delta = %d, want ≥ 1", got)
	}
	resp1 := decodeExplore(t, w1)
	if len(resp1.Metrics) != len(resp2.Metrics) {
		t.Errorf("cached reply diverged: %d vs %d points", len(resp1.Metrics), len(resp2.Metrics))
	}
}

func TestExploreInlineSourceAndParseError(t *testing.T) {
	s := newTestServer(t)
	src := "// inline\nint8 a[64]\nfor i = 0, 63\na[i]\n"
	w := postJSON(t, s, "/v1/explore",
		`{"source":`+mustJSON(src)+`,"options":`+tinyOptionsJSON+`}`)
	if w.Code != http.StatusOK {
		t.Fatalf("inline source: %d %s", w.Code, w.Body)
	}
	if resp := decodeExplore(t, w); resp.Kernel != "inline" {
		t.Errorf("kernel name = %q", resp.Kernel)
	}

	w = postJSON(t, s, "/v1/explore", `{"source":"for for for"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("parse error status = %d", w.Code)
	}
	if e := decodeError(t, w); e.Code != "invalid_kernel" {
		t.Errorf("error code = %q", e.Code)
	}
}

func TestExploreRequestValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
		code       string
		field      string
	}{
		{"unknown kernel", `{"kernel":"nope"}`, http.StatusNotFound, "unknown_kernel", ""},
		{"no kernel", `{}`, http.StatusBadRequest, "invalid_request", ""},
		{"both kernel and source", `{"kernel":"compress","source":"x"}`, http.StatusBadRequest, "invalid_request", ""},
		{"bad json", `{`, http.StatusBadRequest, "invalid_request", ""},
		{"unknown field", `{"kernel":"compress","bogus":1}`, http.StatusBadRequest, "invalid_request", ""},
		{"bad line size", `{"kernel":"compress","options":{"line_sizes":[3]}}`, http.StatusBadRequest, "invalid_options", "line_sizes"},
		{"bad tiling", `{"kernel":"compress","options":{"tilings":[0]}}`, http.StatusBadRequest, "invalid_options", "tilings"},
	}
	for _, c := range cases {
		w := postJSON(t, s, "/v1/explore", c.body)
		if w.Code != c.status {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, w.Code, c.status, w.Body)
			continue
		}
		e := decodeError(t, w)
		if e.Code != c.code {
			t.Errorf("%s: code = %q, want %q", c.name, e.Code, c.code)
		}
		if e.Field != c.field {
			t.Errorf("%s: field = %q, want %q", c.name, e.Field, c.field)
		}
	}
}

func TestExploreClientDisconnectCancelsSweep(t *testing.T) {
	s := newTestServer(t)
	canceled0 := vars.canceled.Value()

	// A pre-canceled request context models a client that disconnected
	// while the request was queued: the sweep must not run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/explore",
		strings.NewReader(`{"kernel":"matmul"}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != StatusClientClosedRequest {
		t.Errorf("pre-canceled context: status = %d, want %d", w.Code, StatusClientClosedRequest)
	}
	if e := decodeError(t, w); e.Code != "canceled" {
		t.Errorf("error code = %q", e.Code)
	}
	if got := vars.canceled.Value() - canceled0; got != 1 {
		t.Errorf("canceled counter delta = %d, want 1", got)
	}

	// Live disconnect: cancel mid-sweep over a real connection and watch
	// the server abandon the work.
	ts := httptest.NewServer(s)
	defer ts.Close()
	ctx2, cancel2 := context.WithCancel(context.Background())
	body := `{"kernel":"matmul","options":{"classify":true}}` // full default space, slow
	hreq, err := http.NewRequestWithContext(ctx2, "POST", ts.URL+"/v1/explore", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel2()
	if err := <-errc; err == nil {
		t.Error("canceled request did not error on the client")
	}
	deadline := time.Now().Add(10 * time.Second)
	for vars.canceled.Value()-canceled0 < 2 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the mid-sweep cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConcurrentExploreSharedCache(t *testing.T) {
	s := MustNew(Config{MaxConcurrentSweeps: 4, CacheEntries: 8})
	const n = 12
	bodies := []string{
		`{"kernel":"compress","options":` + tinyOptionsJSON + `}`,
		`{"kernel":"dequant","options":` + tinyOptionsJSON + `}`,
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postJSON(t, s, "/v1/explore", bodies[i%len(bodies)])
			if w.Code != http.StatusOK {
				errs[i] = fmt.Errorf("request %d: status %d body %s", i, w.Code, w.Body)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if got := s.cache.Len(); got != len(bodies) {
		t.Errorf("cache entries = %d, want %d", got, len(bodies))
	}
}

func TestAggregate(t *testing.T) {
	s := newTestServer(t)
	body := `{"kernels":[{"kernel":"compress","trip":3},{"kernel":"dequant","trip":1}],"options":` + tinyOptionsJSON + `}`
	w := postJSON(t, s, "/v1/aggregate", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var resp AggregateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached || len(resp.Program) == 0 || resp.Best.MinEnergy == nil {
		t.Fatalf("response = %+v", resp)
	}
	if len(resp.PerKernelBest) != 2 {
		t.Errorf("per-kernel optima = %v", resp.PerKernelBest)
	}

	// Identical aggregate → cache hit.
	w = postJSON(t, s, "/v1/aggregate", body)
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("repeated aggregate missed the cache")
	}

	// Bad trips and empty kernel lists are 400s.
	for _, bad := range []string{
		`{"kernels":[]}`,
		`{"kernels":[{"kernel":"compress","trip":0}]}`,
		`{"kernels":[{"kernel":"compress","trip":-2}]}`,
	} {
		if w := postJSON(t, s, "/v1/aggregate", bad); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, w.Code)
		}
	}
	if w := postJSON(t, s, "/v1/aggregate", `{"kernels":[{"kernel":"ghost","trip":1}]}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown aggregate kernel: status = %d, want 404", w.Code)
	}
}

func TestKernelsAndHealthz(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest("GET", "/v1/kernels", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var ks KernelsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ks); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range ks.Kernels {
		if k == "compress" {
			found = true
		}
	}
	if !found {
		t.Errorf("kernel list %v missing compress", ks.Kernels)
	}

	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusOK || !bytes.Contains(w.Body.Bytes(), []byte(`"ok"`)) {
		t.Errorf("healthz = %d %s", w.Code, w.Body)
	}
}

func TestDebugVars(t *testing.T) {
	s := newTestServer(t)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/debug/vars", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("debug/vars = %d", w.Code)
	}
	var all map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatalf("expvar page is not JSON: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(all["memexplored"], &m); err != nil {
		t.Fatalf("memexplored map: %v", err)
	}
	for _, key := range []string{"requests", "cache_hits", "cache_misses", "in_flight_sweeps", "points_evaluated",
		"workloads_explored", "trace_passes_saved", "inclusion_groups", "configs_per_pass",
		"last_sweep_points_per_sec", "latency_ms",
		"trace_workers", "chunks_inflight", "trace_chunk_stall_ms"} {
		if _, ok := m[key]; !ok {
			t.Errorf("expvar map missing %s", key)
		}
	}
	var lat struct {
		P50 float64 `json:"p50_ms"`
		P99 float64 `json:"p99_ms"`
	}
	if err := json.Unmarshal(m["latency_ms"], &lat); err != nil {
		t.Errorf("latency_ms is not structured: %v", err)
	}
}

func TestPointsEvaluatedCounter(t *testing.T) {
	s := newTestServer(t)
	points0 := vars.points.Value()
	workloads0 := vars.workloads.Value()
	saved0 := vars.passesSaved.Value()
	// A fresh options shape (distinct from other tests) guarantees a miss.
	w := postJSON(t, s, "/v1/explore", `{"kernel":"sor","options":{"cache_sizes":[128],"line_sizes":[8],"assocs":[1,2],"tilings":[1]}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d %s", w.Code, w.Body)
	}
	resp := decodeExplore(t, w)
	if got := vars.points.Value() - points0; got != int64(resp.Points) {
		t.Errorf("points_evaluated delta = %d, want %d", got, resp.Points)
	}
	// One tiling, one (L, sets) geometry: both assoc points share a single
	// workload trace, so the batched engine saved points−1 passes.
	if got := vars.workloads.Value() - workloads0; got != 1 {
		t.Errorf("workloads_explored delta = %d, want 1", got)
	}
	if got := vars.passesSaved.Value() - saved0; got != int64(resp.Points)-1 {
		t.Errorf("trace_passes_saved delta = %d, want %d", got, resp.Points-1)
	}
}

func TestInclusionCounters(t *testing.T) {
	s := newTestServer(t)
	groups0 := vars.inclusionGroups.Value()
	// T ∈ {64, 128} × L=8 × S ∈ {1, 2} on the sequential layout (the
	// optimized layout keys workloads on (T, L), which pins the geometry):
	// the points (64,8,1) and (128,8,2) share the (L=8, sets=8) geometry —
	// one inclusion group — while (64,8,2) and (128,8,1) are singleton
	// geometries (fallbacks). The plan is therefore 4 points over 3 pass
	// units.
	w := postJSON(t, s, "/v1/explore", `{"kernel":"pde","options":{"cache_sizes":[64,128],"line_sizes":[8],"assocs":[1,2],"tilings":[1],"optimize_layout":false}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d %s", w.Code, w.Body)
	}
	resp := decodeExplore(t, w)
	if resp.Points != 4 {
		t.Fatalf("points = %d, want 4", resp.Points)
	}
	if got := vars.inclusionGroups.Value() - groups0; got != 1 {
		t.Errorf("inclusion_groups delta = %d, want 1", got)
	}
	if got, want := vars.configsPerPass.Value(), 4.0/3.0; got != want {
		t.Errorf("configs_per_pass = %g, want %g", got, want)
	}
}

func TestShutdownDrains(t *testing.T) {
	s := newTestServer(t)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	if !s.Draining() {
		t.Error("server not draining after Shutdown")
	}
	w := postJSON(t, s, "/v1/explore", `{"kernel":"compress"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown explore = %d, want 503", w.Code)
	}
	if e := decodeError(t, w); e.Code != "draining" {
		t.Errorf("error code = %q", e.Code)
	}
	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, httptest.NewRequest("GET", "/healthz", nil))
	if hw.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", hw.Code)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a → b is now LRU
		t.Fatal("a missing")
	}
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Error("a lost")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	disabled := newResultCache(0)
	disabled.Add("x", 1)
	if _, ok := disabled.Get("x"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestLatencyHistogram(t *testing.T) {
	var h latencyHist
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	for i := 0; i < 98; i++ {
		h.Observe(3) // → le_5 bucket
	}
	h.Observe(800)  // → le_1000
	h.Observe(9000) // → le_10000
	if got := h.Quantile(0.50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %v, want 1000", got)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(h.String()), &parsed); err != nil {
		t.Fatalf("histogram JSON: %v (%s)", err, h.String())
	}

	// Instance bounds: the chunk-stall histogram resolves sub-millisecond
	// waits.
	sub := latencyHist{bounds: stallBoundsMS}
	sub.Observe(0.02)
	sub.Observe(0.3)
	if got := sub.Quantile(0.5); got != 0.025 {
		t.Errorf("sub-ms p50 = %v, want 0.025", got)
	}
	if err := json.Unmarshal([]byte(sub.String()), &parsed); err != nil {
		t.Fatalf("sub-ms histogram JSON: %v (%s)", err, sub.String())
	}
}
