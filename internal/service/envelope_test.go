package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// postTraceHeader posts a trace with the TraceRequest JSON riding in the
// X-Memexplore-Options header (the v1 form), optionally alongside a
// query string to provoke the conflict path.
func postTraceHeader(t *testing.T, s *Server, header, query string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	path := "/v1/explore-trace"
	if query != "" {
		path += "?" + query
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	req.Header.Set(OptionsHeader, header)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestTraceOptionsHeaderForm: the header form is the primary wire shape;
// the query string remains a deprecated alias that must sweep
// identically for an equivalent option set.
func TestTraceOptionsHeaderForm(t *testing.T) {
	s := newTestServer(t)
	din := kernelDin(t)
	header := `{"kind":"explore-trace","options":{"cache_sizes":[32,64],"line_sizes":[4,8],"assocs":[1]}}`

	hw := postTraceHeader(t, s, header, "", din)
	if hw.Code != http.StatusOK {
		t.Fatalf("header form status = %d: %s", hw.Code, hw.Body)
	}
	qw := postTrace(t, s, traceQueryString, din)
	if qw.Code != http.StatusOK {
		t.Fatalf("query form status = %d: %s", qw.Code, qw.Body)
	}
	hr, qr := decodeTrace(t, hw), decodeTrace(t, qw)
	if !reflect.DeepEqual(hr.Metrics, qr.Metrics) || hr.Points != qr.Points {
		t.Error("header form and deprecated query alias sweep differently")
	}

	// The header form reaches ingest/bound options the query alias also
	// has: max_records via header behaves like the query parameter.
	limited := postTraceHeader(t, s, `{"max_records":1}`, "", []byte("0 10\n0 20\n"))
	if limited.Code != http.StatusBadRequest {
		t.Fatalf("max_records via header: status = %d", limited.Code)
	}
	if e := decodeError(t, limited); e.Code != CodeRecordLimit {
		t.Errorf("max_records via header: code = %q", e.Code)
	}
}

// TestTraceOptionsConflict: options in both the header and the query
// string is an error, not a precedence rule.
func TestTraceOptionsConflict(t *testing.T) {
	s := newTestServer(t)
	w := postTraceHeader(t, s, `{"options":{"cache_sizes":[32]}}`, traceQueryString, []byte("0 10\n"))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
	e := decodeError(t, w)
	if e.Code != CodeConflictingOptions {
		t.Errorf("code = %q, want %q", e.Code, CodeConflictingOptions)
	}
}

// TestErrorEnvelopeSweep drives every client-reachable error code
// through the v1 surface and asserts the one true envelope shape:
// exactly {"error": {code, message[, field]}}, with a code from the
// stable table.
func TestErrorEnvelopeSweep(t *testing.T) {
	shared := newTestServer(t)
	drained := newTestServer(t)
	if err := drained.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	tiny := MustNew(Config{MaxBodyBytes: 64})

	type tc struct {
		name   string
		server *Server
		method string
		path   string
		header http.Header
		body   string
		status int
		code   string
	}
	jsonHdr := http.Header{"Content-Type": {"application/json"}}
	cases := []tc{
		{"explore malformed body", shared, "POST", "/v1/explore", jsonHdr, `{`, 400, CodeInvalidRequest},
		{"explore no kernel", shared, "POST", "/v1/explore", jsonHdr, `{}`, 400, CodeInvalidRequest},
		{"explore bad source", shared, "POST", "/v1/explore", jsonHdr, `{"source":"for {"}`, 400, CodeInvalidKernel},
		{"explore unknown kernel", shared, "POST", "/v1/explore", jsonHdr, `{"kernel":"nope"}`, 404, CodeUnknownKernel},
		{"explore bad options", shared, "POST", "/v1/explore", jsonHdr, `{"kernel":"matadd","options":{"tilings":[0]}}`, 400, CodeInvalidOptions},
		{"explore wrong kind", shared, "POST", "/v1/explore", jsonHdr, `{"kind":"explore-trace","kernel":"matadd"}`, 400, CodeInvalidRequest},
		{"aggregate bad options", shared, "POST", "/v1/aggregate", jsonHdr,
			`{"kernels":[{"kernel":"matadd","trip":1}],"options":{"tilings":[0]}}`, 400, CodeInvalidOptions},
		{"search empty budget", shared, "POST", "/v1/search", jsonHdr, `{"kernel":"matadd"}`, 400, CodeInvalidSearch},
		{"search bad pop size", shared, "POST", "/v1/search", jsonHdr,
			`{"kernel":"matadd","search":{"pop_size":1},"budget":{"max_generations":1}}`, 400, CodeInvalidSearch},
		{"search bad options", shared, "POST", "/v1/search", jsonHdr,
			`{"kernel":"matadd","options":{"tilings":[0]},"budget":{"max_generations":1}}`, 400, CodeInvalidOptions},
		{"search wrong kind", shared, "POST", "/v1/search", jsonHdr, `{"kind":"explore","kernel":"matadd","budget":{"max_generations":1}}`, 400, CodeInvalidRequest},
		{"trace conflicting options", shared, "POST", "/v1/explore-trace?" + traceQueryString,
			http.Header{OptionsHeader: {`{}`}}, "0 10\n", 400, CodeConflictingOptions},
		{"trace malformed record", shared, "POST", "/v1/explore-trace?" + traceQueryString, nil, "wat\n", 400, CodeInvalidTrace},
		{"trace empty", shared, "POST", "/v1/explore-trace?" + traceQueryString, nil, "", 400, CodeEmptyTrace},
		{"trace record limit", shared, "POST", "/v1/explore-trace?" + traceQueryString + "&max_records=1", nil, "0 10\n0 20\n", 400, CodeRecordLimit},
		{"trace body too large", tiny, "POST", "/v1/explore-trace?" + traceQueryString, nil,
			strings.Repeat("0 10\n", 100), 413, CodeBodyTooLarge},
		{"job unknown", shared, "GET", "/v1/jobs/beefbeef", nil, "", 404, CodeUnknownJob},
		{"trace unknown ref", shared, "POST", "/v1/explore-trace",
			http.Header{OptionsHeader: {`{"kind":"explore-trace","trace_ref":"` + strings.Repeat("ab", 32) + `"}`}},
			"", 404, CodeUnknownTraceRef},
		{"submit while draining", drained, "POST", "/v1/jobs", jsonHdr, `{"kernel":"matadd"}`, 503, CodeDraining},
		{"explore while draining", drained, "POST", "/v1/explore", jsonHdr, `{"kernel":"matadd"}`, 503, CodeDraining},
	}

	known := make(map[string]bool, len(KnownErrorCodes))
	for _, c := range KnownErrorCodes {
		known[c] = true
	}
	covered := map[string]bool{}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest(c.method, c.path, strings.NewReader(c.body))
			for k, vs := range c.header {
				req.Header[k] = vs
			}
			w := httptest.NewRecorder()
			c.server.ServeHTTP(w, req)
			if w.Code != c.status {
				t.Fatalf("status = %d, want %d (%s)", w.Code, c.status, w.Body)
			}
			// The envelope is exactly one top-level "error" object with a
			// code, a message, and at most a field.
			var top map[string]json.RawMessage
			if err := json.Unmarshal(w.Body.Bytes(), &top); err != nil {
				t.Fatalf("body is not a JSON object: %s", w.Body)
			}
			if len(top) != 1 || top["error"] == nil {
				t.Fatalf("envelope has keys %v, want exactly [error]", keysOf(top))
			}
			var detail map[string]json.RawMessage
			if err := json.Unmarshal(top["error"], &detail); err != nil {
				t.Fatalf("error value is not an object: %s", top["error"])
			}
			for k := range detail {
				if k != "code" && k != "message" && k != "field" {
					t.Errorf("unexpected envelope key %q", k)
				}
			}
			e := decodeError(t, w)
			if e.Code != c.code {
				t.Errorf("code = %q, want %q (%+v)", e.Code, c.code, e)
			}
			if !known[e.Code] {
				t.Errorf("code %q is not in KnownErrorCodes", e.Code)
			}
			if e.Message == "" {
				t.Error("empty error message")
			}
			covered[e.Code] = true
		})
	}

	// The sweep exercises the whole stable table except canceled (needs a
	// mid-flight disconnect; pinned by TestExploreClientDisconnectCancelsSweep)
	// and internal (no client input reaches it by construction).
	for _, code := range KnownErrorCodes {
		if code == CodeCanceled || code == CodeInternal {
			continue
		}
		if !covered[code] {
			t.Errorf("error code %q not covered by the sweep", code)
		}
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestResultMetaOnSuccess: every successful sweep response carries the
// result envelope — cached flag, engine name, and the sweep plan.
func TestResultMetaOnSuccess(t *testing.T) {
	s := newTestServer(t)

	// Synchronous explore: miss then hit flips cached; engine and plan
	// are always present.
	w := postJSON(t, s, "/v1/explore", `{"kernel":"matadd","options":`+tinyOptionsJSON+`}`)
	if w.Code != http.StatusOK {
		t.Fatalf("explore = %d: %s", w.Code, w.Body)
	}
	miss := decodeExplore(t, w)
	if miss.Cached || miss.Engine == "" || miss.Plan == nil || miss.Plan.Points == 0 {
		t.Fatalf("explore meta = %+v", miss.ResultMeta)
	}
	if miss.Plan.Points != miss.Points {
		t.Errorf("plan points %d != evaluated points %d", miss.Plan.Points, miss.Points)
	}
	hit := decodeExplore(t, postJSON(t, s, "/v1/explore", `{"kernel":"matadd","options":`+tinyOptionsJSON+`}`))
	if !hit.Cached || hit.Engine != miss.Engine {
		t.Fatalf("cache-hit meta = %+v", hit.ResultMeta)
	}

	// Trace sweep: batched-family engine plus a plan.
	tw := postTrace(t, s, traceQueryString, kernelDin(t))
	if tw.Code != http.StatusOK {
		t.Fatalf("trace = %d: %s", tw.Code, tw.Body)
	}
	tr := decodeTrace(t, tw)
	if tr.Cached || tr.Engine == "" || tr.Plan == nil || tr.Plan.Points != tr.Points {
		t.Fatalf("trace meta = %+v", tr.ResultMeta)
	}

	// Aggregate: the plan is scaled by the kernel count.
	aw := postJSON(t, s, "/v1/aggregate", `{"kernels":[{"kernel":"matadd","trip":1}],"options":`+tinyOptionsJSON+`}`)
	if aw.Code != http.StatusOK {
		t.Fatalf("aggregate = %d: %s", aw.Code, aw.Body)
	}
	var agg AggregateResponse
	if err := json.Unmarshal(aw.Body.Bytes(), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Engine == "" || agg.Plan == nil || agg.Plan.Points == 0 {
		t.Fatalf("aggregate meta = %+v", agg.ResultMeta)
	}
}
