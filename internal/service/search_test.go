package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"memexplore/internal/jobs"
)

// searchBodyJSON is a small, fully bounded, seeded search request used
// across the tests; identical inputs must give identical archives.
const searchBodyJSON = `{"kernel":"compress","options":` + tinyOptionsJSON +
	`,"search":{"seed":7,"pop_size":4},"budget":{"max_generations":3}}`

func decodeSearch(t *testing.T, w *httptest.ResponseRecorder) SearchResponse {
	t.Helper()
	var resp SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return resp
}

func TestSearchHappyPath(t *testing.T) {
	s := newTestServer(t)
	w := postJSON(t, s, "/v1/search", searchBodyJSON)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeSearch(t, w)
	if resp.Kernel != "compress" || resp.Cached {
		t.Fatalf("response meta = %+v", resp.ResultMeta)
	}
	if len(resp.Archive) == 0 || resp.Evaluations == 0 || resp.SpacePoints == 0 {
		t.Fatalf("empty search result: %+v", resp.Result)
	}
	if resp.Stopped == "" {
		t.Error("no stop reason reported")
	}
	if resp.Best.MinEnergy == nil || resp.Best.MinCycles == nil {
		t.Error("selection optima missing from search response")
	}
	if resp.Plan != nil {
		t.Error("search response carries a sweep plan; the run deliberately does not execute one")
	}

	// The identical request is answered from the cache with the same
	// archive.
	w2 := postJSON(t, s, "/v1/search", searchBodyJSON)
	if w2.Code != http.StatusOK {
		t.Fatalf("second status = %d", w2.Code)
	}
	resp2 := decodeSearch(t, w2)
	if !resp2.Cached {
		t.Error("identical search request was not served from cache")
	}
	a1, _ := json.Marshal(resp.Archive)
	a2, _ := json.Marshal(resp2.Archive)
	if string(a1) != string(a2) {
		t.Error("cached archive differs from the original")
	}
}

func TestSearchDeterministicAcrossServers(t *testing.T) {
	// Two independent servers (separate caches) must produce identical
	// bodies modulo the cached flag — the run is seed-determined.
	w1 := postJSON(t, newTestServer(t), "/v1/search", searchBodyJSON)
	w2 := postJSON(t, newTestServer(t), "/v1/search", searchBodyJSON)
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("status = %d, %d", w1.Code, w2.Code)
	}
	if w1.Body.String() != w2.Body.String() {
		t.Fatalf("seeded search is not reproducible across servers:\n%s\nvs\n%s", w1.Body, w2.Body)
	}
}

func TestSearchValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name, body, code, field string
	}{
		{"no budget", `{"kernel":"compress"}`, CodeInvalidSearch, "budget"},
		{"negative budget", `{"kernel":"compress","budget":{"max_evaluations":-1}}`, CodeInvalidSearch, "budget"},
		{"bad pop size", `{"kernel":"compress","search":{"pop_size":1},"budget":{"max_generations":1}}`, CodeInvalidSearch, "search.pop_size"},
		{"bad rate", `{"kernel":"compress","search":{"mutation_rate":2},"budget":{"max_generations":1}}`, CodeInvalidSearch, "search.mutation_rate"},
		{"unknown search field", `{"kernel":"compress","search":{"popsize":4},"budget":{"max_generations":1}}`, CodeInvalidSearch, "search"},
		{"empty space", `{"kernel":"compress","options":{"cache_sizes":[16],"line_sizes":[32]},"budget":{"max_generations":1}}`, CodeInvalidSearch, "options"},
		{"unknown kernel", `{"kernel":"nope","budget":{"max_generations":1}}`, CodeUnknownKernel, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, "/v1/search", tc.body)
			if w.Code == http.StatusOK {
				t.Fatalf("accepted: %s", w.Body)
			}
			e := decodeError(t, w)
			if e.Code != tc.code || e.Field != tc.field {
				t.Errorf("envelope = %+v, want code=%q field=%q", e, tc.code, tc.field)
			}
		})
	}
}

// TestJobSearchByteIdentical pins the async twin: a "search" job's
// stored result is byte-identical to the synchronous /v1/search body.
func TestJobSearchByteIdentical(t *testing.T) {
	body := fmt.Sprintf(`{"kind":"search","kernel":"compress","options":%s,"search":{"seed":7,"pop_size":4},"budget":{"max_generations":3},"cycle_bound":1e9}`, tinyOptionsJSON)

	sync := postJSON(t, MustNew(Config{MaxConcurrentSweeps: 2, CacheEntries: 8}), "/v1/search", body)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync twin = %d: %s", sync.Code, sync.Body)
	}

	s := newTestServer(t)
	w := doJSON(t, s, "POST", "/v1/jobs", http.Header{"Content-Type": {"application/json"}}, []byte(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	rec := decodeRecord(t, w)
	if rec.Kind != KindSearch {
		t.Fatalf("kind = %s, want %s", rec.Kind, KindSearch)
	}
	final := awaitJob(t, s, rec.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("final = %s (%+v)", final.State, final.Error)
	}
	want := strings.TrimSuffix(sync.Body.String(), "\n")
	if string(final.Result) != want {
		t.Fatalf("async search result differs from sync body:\nasync %s\n sync %s", final.Result, want)
	}
	// Generation retirements count against the generation total.
	if final.Progress.PassUnitsDone == 0 {
		t.Errorf("no generation progress reported: %+v", final.Progress)
	}
	if final.Progress.PassUnits != 3 {
		t.Errorf("pass-unit total = %d, want the generation budget 3", final.Progress.PassUnits)
	}
}

func TestJobSearchValidationFailsSynchronously(t *testing.T) {
	s := newTestServer(t)
	w := doJSON(t, s, "POST", "/v1/jobs", http.Header{"Content-Type": {"application/json"}},
		[]byte(`{"kind":"search","kernel":"compress"}`))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	if e := decodeError(t, w); e.Code != CodeInvalidSearch || e.Field != "budget" {
		t.Errorf("envelope = %+v, want invalid_search/budget", e)
	}
}
