package service

// The uniform v1 wire envelope. Every endpoint reports failure as
//
//	{"error": {"code": ..., "message": ..., "field": ...}}
//
// with a code from the stable table below, and every successful sweep
// response embeds ResultMeta — the cached flag, the engine that ran,
// and the sweep plan — so clients never parse per-endpoint error shapes
// or guess what executed. One mapping function (errorDetail) converts
// every error the handlers and the async job runner can see into its
// envelope, so the synchronous endpoints and the job subsystem cannot
// drift apart.

import (
	"errors"
	"net/http"

	"memexplore/internal/core"
	"memexplore/internal/extrace"
	"memexplore/internal/kernels"
	"memexplore/internal/search"
)

// The stable machine-readable error codes of the v1 API. Documented in
// docs/SERVICE.md; tests assert every failure path emits one of these.
const (
	CodeInvalidRequest     = "invalid_request"     // 400: malformed body or missing/contradictory fields
	CodeInvalidKernel      = "invalid_kernel"      // 400: inline source does not parse or validate
	CodeUnknownKernel      = "unknown_kernel"      // 404: kernel name not in the registry
	CodeInvalidOptions     = "invalid_options"     // 400: options fail validation (field set)
	CodeInvalidSearch      = "invalid_search"      // 400: search options or budget fail validation (field set)
	CodeConflictingOptions = "conflicting_options" // 400: options header and query parameters both present
	CodeInvalidTrace       = "invalid_trace"       // 400: malformed trace record (location in message)
	CodeEmptyTrace         = "empty_trace"         // 400: trace stream held no records
	CodeRecordLimit        = "record_limit"        // 400: trace exceeded max_records
	CodeBodyTooLarge       = "body_too_large"      // 413: request body over the size limit
	CodeUnknownJob         = "unknown_job"         // 404: no job with that id
	CodeUnknownTraceRef    = "unknown_trace_ref"   // 404: trace_ref names no blob in the shared store
	CodeDraining           = "draining"            // 503: server is shutting down
	CodeCanceled           = "canceled"            // 499: request or job canceled mid-sweep
	CodeInternal           = "internal"            // 500: unexpected engine failure
)

// KnownErrorCodes is the closed set of codes v1 endpoints may emit —
// exported so the envelope test sweep (and API clients' exhaustiveness
// checks) can assert against it.
var KnownErrorCodes = []string{
	CodeInvalidRequest, CodeInvalidKernel, CodeUnknownKernel,
	CodeInvalidOptions, CodeInvalidSearch, CodeConflictingOptions, CodeInvalidTrace,
	CodeEmptyTrace, CodeRecordLimit, CodeBodyTooLarge, CodeUnknownJob,
	CodeUnknownTraceRef,
	CodeDraining, CodeCanceled, CodeInternal,
}

// requestError is an error that already knows its transport mapping —
// what the request-resolution helpers return so one writer handles all
// failure paths.
type requestError struct {
	status int
	detail ErrorDetail
}

func (e *requestError) Error() string { return e.detail.Message }

// httpError builds a requestError.
func httpError(status int, code, message, field string) *requestError {
	return &requestError{status: status, detail: ErrorDetail{Code: code, Message: message, Field: field}}
}

// errorDetail maps any error the service can encounter — request
// resolution, a synchronous sweep, or an async job — to its transport
// status and envelope detail. This is the single source of truth for
// error codes: the sync handlers and the job runner both route through
// it.
func errorDetail(err error) (int, ErrorDetail) {
	var (
		re     *requestError
		inv    *core.ErrInvalidOptions
		sinv   *search.InvalidError
		tooBig *http.MaxBytesError
		perr   *extrace.ParseError
	)
	switch {
	case errors.As(err, &re):
		return re.status, re.detail
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, ErrorDetail{Code: CodeBodyTooLarge, Message: err.Error()}
	case errors.As(err, &perr):
		return http.StatusBadRequest, ErrorDetail{Code: CodeInvalidTrace, Message: perr.Error()}
	case errors.Is(err, extrace.ErrRecordLimit):
		return http.StatusBadRequest, ErrorDetail{Code: CodeRecordLimit, Message: err.Error()}
	case errors.Is(err, core.ErrEmptyTrace):
		return http.StatusBadRequest, ErrorDetail{Code: CodeEmptyTrace, Message: err.Error()}
	case errors.Is(err, core.ErrCanceled):
		return StatusClientClosedRequest, ErrorDetail{Code: CodeCanceled, Message: err.Error()}
	case errors.As(err, &inv):
		return http.StatusBadRequest, ErrorDetail{Code: CodeInvalidOptions, Message: inv.Reason, Field: inv.Field}
	case errors.As(err, &sinv):
		return http.StatusBadRequest, ErrorDetail{Code: CodeInvalidSearch, Message: sinv.Reason, Field: sinv.Field}
	case errors.Is(err, kernels.ErrUnknownKernel):
		return http.StatusNotFound, ErrorDetail{Code: CodeUnknownKernel, Message: err.Error()}
	default:
		return http.StatusInternalServerError, ErrorDetail{Code: CodeInternal, Message: err.Error()}
	}
}

// writeError maps err through errorDetail and writes the envelope,
// bumping the canceled or failed counter as appropriate.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, d := errorDetail(err)
	if d.Code == CodeCanceled {
		vars.canceled.Add(1)
	} else {
		vars.failed.Add(1)
	}
	writeJSON(w, status, ErrorBody{Error: d})
}

// ResultMeta is the success-envelope header every sweep response
// embeds: whether the result was recalled from a cache tier, which
// engine executed, the sweep plan that was (or would be) run, and — for
// sampled or prefiltered trace sweeps only — the estimation envelope.
type ResultMeta struct {
	Cached bool        `json:"cached"`
	Engine string      `json:"engine"`
	Plan   *PlanInfo   `json:"plan,omitempty"`
	Sample *SampleInfo `json:"sample,omitempty"`
}

// SampleInfo summarizes the estimation envelope of a sampled trace
// sweep (see core.Options.SampleRate / DominantEps). Absent for exact
// sweeps, so exact responses are byte-identical to previous releases.
type SampleInfo struct {
	// Rate and Seed echo the requested spatial sampling parameters (Rate
	// 0 when only dominant-block prefiltering ran).
	Rate float64 `json:"rate,omitempty"`
	Seed uint64  `json:"seed,omitempty"`
	// SampledRecords is how many records were actually simulated.
	SampledRecords int64 `json:"sampled_records"`
	// SkippedShare is the fraction of the (sampled) stream skipped as
	// dominant-filter cold, each skipped reference counted as a hit.
	SkippedShare float64 `json:"skipped_share,omitempty"`
	// MissRateCIMax is the largest per-point 95% confidence half-width
	// on MissRate across the sweep — a single worst-case error bound.
	MissRateCIMax float64 `json:"miss_rate_ci_max,omitempty"`
	// Stored marks a sweep over a transcode-sampled artifact: the sample
	// was baked in when the trace was converted, and Rate/Seed echo the
	// parameters recorded in its MXTI01 footer rather than the request.
	Stored bool `json:"stored,omitempty"`
	// ChunksSkipped counts the mxt v2 chunks the reader stepped over via
	// the MXTI01 index instead of decoding — records the filters were
	// going to drop (or count as cold hits) wholesale.
	ChunksSkipped int64 `json:"chunks_skipped,omitempty"`
}

// PlanInfo is the wire form of core.SweepPlan.
type PlanInfo struct {
	Points           int     `json:"points"`
	Workloads        int     `json:"workloads"`
	InclusionGroups  int     `json:"inclusion_groups"`
	InclusionConfigs int     `json:"inclusion_configs"`
	FallbackConfigs  int     `json:"fallback_configs"`
	PassUnits        int     `json:"pass_units"`
	ConfigsPerPass   float64 `json:"configs_per_pass"`
	Shards           []int   `json:"shards,omitempty"`
}

// planInfo converts a sweep plan (scaled by a kernel count for
// aggregate sweeps, which repeat the plan per kernel).
func planInfo(plan core.SweepPlan, kernels int) *PlanInfo {
	return &PlanInfo{
		Points:           plan.Points * kernels,
		Workloads:        plan.Workloads * kernels,
		InclusionGroups:  plan.InclusionGroups * kernels,
		InclusionConfigs: plan.InclusionConfigs * kernels,
		FallbackConfigs:  plan.FallbackConfigs * kernels,
		PassUnits:        plan.PassUnits() * kernels,
		ConfigsPerPass:   plan.ConfigsPerPass(),
		Shards:           plan.Shards,
	}
}

// engineName reports which engine a sweep with these options and plan
// executes: per-point for classified or forced-per-point sweeps,
// inclusion when the plan formed at least one stack group, batched
// otherwise.
func engineName(opts core.Options, plan core.SweepPlan) string {
	switch {
	case opts.Classify || opts.Engine == core.EnginePerPoint:
		return core.EnginePerPoint.String()
	case plan.InclusionGroups > 0:
		return core.EngineInclusion.String()
	default:
		return core.EngineBatched.String()
	}
}

// resultMeta assembles the success envelope for one sweep.
func resultMeta(cached bool, opts core.Options, plan core.SweepPlan, kernels int) ResultMeta {
	return ResultMeta{Cached: cached, Engine: engineName(opts, plan), Plan: planInfo(plan, kernels)}
}
