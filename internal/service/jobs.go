package service

// The async job surface. POST /v1/jobs accepts the same request shapes
// as the synchronous sweep endpoints — an ExploreRequest JSON body for
// "explore" jobs, a SearchRequest with "kind": "search" for guided
// NSGA-II searches, or a raw trace body with a TraceRequest in the
// X-Memexplore-Options header for "explore-trace" jobs — validates them
// synchronously (bad requests still fail with their normal envelope and
// status), and returns 202 with the queued job record. The job then
// runs on the internal/jobs pool, reporting progress through the core
// pipeline's per-context observer; clients poll GET /v1/jobs/{id} or
// stream GET /v1/jobs/{id}/events (SSE) and cancel with DELETE.
//
// A job's result is the byte-for-byte body the synchronous endpoint
// would have written (same response structs, same encoder settings).
// Completed results are additionally published to the job store under a
// content key — the hash of everything that determines the result — so
// resubmitting identical work is answered instantly (Cached=true), and
// replicas sharing a filesystem store (Config.JobsDir) share that tier.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"memexplore/internal/core"
	"memexplore/internal/jobs"
)

// mapJobError converts a job error into its stored Failure using the
// same table as the synchronous error envelope, so async failures carry
// exactly the sync error codes.
func mapJobError(err error) jobs.Failure {
	_, d := errorDetail(err)
	return jobs.Failure{Code: d.Code, Message: d.Message, Field: d.Field}
}

// jobHooks wires the runner's lifecycle into the jobs_* expvars.
func jobHooks() jobs.Hooks {
	return jobs.Hooks{
		Submitted:  func() { vars.jobsSubmitted.Add(1) },
		Queued:     func(d int64) { vars.jobsQueued.Add(d) },
		Running:    func(d int64) { vars.jobsRunning.Add(d) },
		Completed:  func() { vars.jobsCompleted.Add(1) },
		Failed:     func() { vars.jobsFailed.Add(1) },
		Canceled:   func() { vars.jobsCanceled.Add(1) },
		ResultHits: func() { vars.jobsResultHits.Add(1) },
	}
}

// marshalResult encodes a job result exactly as writeJSON writes the
// synchronous response body (same encoder settings, HTML escaping off),
// minus the trailing newline — embedding as json.RawMessage would strip
// it anyway. This is what makes an async result byte-comparable to its
// synchronous twin.
func marshalResult(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// submitErr maps a Runner.Submit failure to its envelope.
func submitErr(err error) error {
	if errors.Is(err, jobs.ErrDraining) {
		return errDraining()
	}
	return err
}

// unknownJob is the 404 for an id the store has never seen (or has
// already expired).
func unknownJob(id string) *requestError {
	return httpError(http.StatusNotFound, CodeUnknownJob, fmt.Sprintf("no job %q", id), "")
}

// reportProgress bridges the core pipeline's per-context progress
// events into the job's reporter.
func reportProgress(ctx context.Context, rep *jobs.Reporter) context.Context {
	return core.WithProgress(ctx, func(ev core.ProgressEvent) {
		rep.Add(ev.Records, ev.Chunks, ev.Points, ev.PassUnits)
	})
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	vars.requests.Add(1)
	if s.rejectDraining(w) {
		return
	}
	if r.Header.Get(OptionsHeader) != "" {
		s.submitTraceJob(w, r)
		return
	}
	// JSON submissions dispatch on their "kind" field. The peek decode is
	// lenient — the per-kind path re-decodes strictly, so unknown fields
	// and malformed bodies still fail with their normal envelope.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, err) // a MaxBytesError maps to 413 body_too_large
		return
	}
	var peek struct {
		Kind string `json:"kind"`
	}
	_ = json.Unmarshal(body, &peek)
	if peek.Kind == KindSearch {
		s.submitSearchJob(w, body)
		return
	}
	s.submitExploreJob(w, body)
}

// submitExploreJob validates an explore request and queues it.
func (s *Server) submitExploreJob(w http.ResponseWriter, body []byte) {
	var req ExploreRequest
	if err := decodeBody(bytes.NewReader(body), &req); err != nil {
		s.writeError(w, invalidRequest(err))
		return
	}
	if req.Kind == KindExploreTrace {
		s.writeError(w, httpError(http.StatusBadRequest, CodeInvalidRequest,
			"explore-trace jobs carry the trace as the request body and their options in the "+OptionsHeader+" header", "kind"))
		return
	}
	if err := checkKind(req.Kind, KindExplore); err != nil {
		s.writeError(w, err)
		return
	}
	p, err := resolveExplore(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The content key hashes everything that determines the result body:
	// the sweep inputs plus the bounds that shape Best.
	key := cacheKey("job-explore", p.nest.String(), mustJSON(p.opts),
		fmt.Sprint(req.CycleBound), fmt.Sprint(req.EnergyBoundNJ))
	rec, err := s.runner.Submit(KindExplore, key, func(ctx context.Context, rep *jobs.Reporter) ([]byte, error) {
		plan := p.opts.Plan()
		rep.SetTotals(int64(plan.Points), int64(plan.PassUnits()))
		resp, err := s.runExplore(reportProgress(ctx, rep), p, false)
		if err != nil {
			return nil, err
		}
		return marshalResult(resp)
	})
	if err != nil {
		s.writeError(w, submitErr(err))
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

// submitTraceJob validates a trace submission and queues it. The trace
// body is buffered now — it belongs to this request and would be gone
// by the time the job runs — so MaxBodyBytes, not memory, bounds it.
func (s *Server) submitTraceJob(w http.ResponseWriter, r *http.Request) {
	tq, err := resolveTraceRequest(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, err) // a MaxBytesError maps to 413 body_too_large
		return
	}
	if len(body) == 0 && tq.traceRef != "" {
		// A shard job addressing a published trace blob: resolve it now so
		// an unknown ref fails the submission, not the job.
		body, err = s.resolveTraceRef(tq.traceRef)
		if err != nil {
			s.writeError(w, err)
			return
		}
	}
	// Key on the normalized options (before the worker clamp: parallelism
	// never changes the metrics), ingest limits, bounds, the distribution
	// shape — a shard's metrics are a slice of the full sweep's, and a
	// distributed run must not recall a local result (or vice versa) so
	// byte-identity stays observable — and the trace bytes themselves.
	shardSpec := ""
	if tq.shard != nil {
		shardSpec = fmt.Sprintf("%d/%d", tq.shard.Index, tq.shard.Count)
	}
	key := cacheKey("job-trace", mustJSON(tq.opts),
		fmt.Sprint(tq.ing.MaxRecords), fmt.Sprint(tq.ing.SkipMalformed),
		fmt.Sprint(tq.cycleBound), fmt.Sprint(tq.energyBoundNJ),
		fmt.Sprint(tq.shards), shardSpec, string(body))
	tq.opts.Workers = s.traceWorkerCount(tq.workers)
	rec, err := s.runner.Submit(KindExploreTrace, key, func(ctx context.Context, rep *jobs.Reporter) ([]byte, error) {
		if tq.shard != nil {
			// A shard job's totals are its slice of the plan, not the space.
			if plan, perr := core.TraceShardPlan(tq.opts, tq.shard.Count); perr == nil && tq.shard.Index < len(plan) {
				rep.SetTotals(int64(len(plan[tq.shard.Index])), 0)
			}
		} else if plan, perr := core.TraceSweepPlan(tq.opts); perr == nil {
			rep.SetTotals(int64(plan.Points), int64(plan.PassUnits()))
		}
		ctx = withJobReporter(reportProgress(ctx, rep), rep)
		resp, err := s.runTrace(ctx, bytes.NewReader(body), tq, false)
		if err != nil {
			return nil, err
		}
		return marshalResult(resp)
	})
	if err != nil {
		s.writeError(w, submitErr(err))
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	vars.requests.Add(1)
	id := r.PathValue("id")
	rec, ok, err := s.runner.Get(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !ok {
		s.writeError(w, unknownJob(id))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	vars.requests.Add(1)
	id := r.PathValue("id")
	rec, ok, err := s.runner.Cancel(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !ok {
		s.writeError(w, unknownJob(id))
		return
	}
	// Cancellation is asynchronous: the record may still say running.
	// Clients poll or watch the event stream for the canceled state.
	writeJSON(w, http.StatusOK, rec)
}

// handleJobEvents streams a job's record versions as server-sent
// events: "progress" events while the job is live, then one terminal
// event named after the final state (done|failed|canceled) carrying the
// full record — result included — after which the stream ends. Event
// ids are a per-stream sequence; rapid updates may be coalesced, but
// the terminal event is always delivered.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	vars.requests.Add(1)
	id := r.PathValue("id")
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		s.writeError(w, httpError(http.StatusInternalServerError, CodeInternal,
			"response writer does not support streaming", ""))
		return
	}
	// Probe before committing to the stream so an unknown id is a clean
	// JSON 404, not a half-open event stream.
	if _, ok, err := s.runner.Get(id); err != nil || !ok {
		if err == nil {
			err = unknownJob(id)
		}
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	seq := 0
	_, err := s.runner.Watch(r.Context(), id, func(rec jobs.Record) error {
		event := "progress"
		if rec.State.Terminal() {
			event = string(rec.State)
		}
		data, err := marshalResult(rec)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, event, data); err != nil {
			return err
		}
		seq++
		fl.Flush()
		return nil
	})
	_ = err // client gone or job finished; the stream just ends
}
