package service

// The guided-search surface. POST /v1/search runs a budgeted NSGA-II
// search (internal/search) over a kernel workload's configuration space
// instead of sweeping it exhaustively — the endpoint for spaces too
// large to enumerate. The same SearchRequest shape, with "kind":
// "search", submits asynchronously through POST /v1/jobs; progress
// events then count evaluated points against the evaluation budget and
// generation retirements against the generation budget. Results flow
// through the same content-addressed cache and job result tier as
// sweeps, keyed by everything that determines the archive — kernel,
// normalized sweep options, normalized search options, and budget — so
// identical searches (same seed included) are answered from memory.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"memexplore/internal/core"
	"memexplore/internal/jobs"
	"memexplore/internal/loopir"
	"memexplore/internal/search"
)

// SearchRequest is the POST /v1/search body and (as the "search" kind)
// a POST /v1/jobs body. Workload and options resolve exactly as in
// ExploreRequest; Search and Budget parameterize the evolution.
type SearchRequest struct {
	Kind   string `json:"kind,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	Source string `json:"source,omitempty"`
	// Options overrides DefaultOptions field-by-field, as in explore.
	Options json.RawMessage `json:"options,omitempty"`
	// Search overrides search.DefaultOptions field-by-field (seed,
	// pop_size, crossover_rate, mutation_rate).
	Search json.RawMessage `json:"search,omitempty"`
	// Budget bounds the run; at least one bound is required.
	Budget BudgetParams `json:"budget"`
	// CycleBound/EnergyBoundNJ, when positive, add the paper's bounded
	// selections (computed over the archive) to the response.
	CycleBound    float64 `json:"cycle_bound,omitempty"`
	EnergyBoundNJ float64 `json:"energy_bound_nj,omitempty"`
}

// BudgetParams is the wire form of search.Budget. WallClockMS trades
// reproducibility for a hard latency cap: where the run stops depends on
// machine speed, so only evaluation/generation-bounded searches are
// bit-reproducible.
type BudgetParams struct {
	MaxEvaluations int   `json:"max_evaluations,omitempty"`
	MaxGenerations int   `json:"max_generations,omitempty"`
	WallClockMS    int64 `json:"wall_clock_ms,omitempty"`
}

// SearchResponse is the POST /v1/search reply (and, marshaled, the
// result body of a "search" job). It embeds the search result — archive,
// evaluation counts, stop reason — plus the selection optima over the
// archive.
type SearchResponse struct {
	ResultMeta
	Kernel string `json:"kernel"`
	search.Result
	Best Best `json:"best"`
}

// searchParams is a resolved search request: validated workload,
// normalized sweep and search options, the budget, and the cache key
// they hash to.
type searchParams struct {
	req    SearchRequest
	nest   *loopir.Nest
	opts   core.Options
	sopts  search.Options
	budget search.Budget
	key    string
}

// resolveSearch validates a search request into its parameters. Budget
// and search-option failures surface as *search.InvalidError for
// errorDetail to map onto invalid_search.
func resolveSearch(req SearchRequest) (searchParams, error) {
	nest, err := resolveNest(req.Kernel, req.Source)
	if err != nil {
		return searchParams{}, err
	}
	opts, err := resolveOptions(req.Options)
	if err != nil {
		return searchParams{}, err
	}
	var sopts search.Options
	if len(req.Search) > 0 {
		dec := json.NewDecoder(strings.NewReader(string(req.Search)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sopts); err != nil {
			return searchParams{}, httpError(http.StatusBadRequest, CodeInvalidSearch,
				fmt.Sprintf("decoding search options: %v", err), "search")
		}
	}
	sopts = sopts.Normalize()
	if err := sopts.Validate(); err != nil {
		return searchParams{}, err
	}
	budget := search.Budget{
		MaxEvaluations: req.Budget.MaxEvaluations,
		MaxGenerations: req.Budget.MaxGenerations,
		WallClock:      time.Duration(req.Budget.WallClockMS) * time.Millisecond,
	}
	if err := budget.Validate(); err != nil {
		return searchParams{}, err
	}
	return searchParams{
		req:    req,
		nest:   nest,
		opts:   opts,
		sopts:  sopts,
		budget: budget,
		key: cacheKey("search", nest.String(), mustJSON(opts), mustJSON(sopts),
			fmt.Sprint(budget.MaxEvaluations), fmt.Sprint(budget.MaxGenerations),
			fmt.Sprint(int64(budget.WallClock))),
	}, nil
}

// runSearch executes one guided search end-to-end — cache, worker pool,
// archive optima, envelope. The sync handler and the async job body both
// call it, keeping their results identical. The sweep plan is omitted
// from the envelope: a search deliberately does NOT run the full plan,
// and Result.SpacePoints/Evaluations report what it covered instead.
func (s *Server) runSearch(ctx context.Context, p searchParams, tracked bool) (*SearchResponse, error) {
	res, cached, err := s.sweep(ctx, p.key, tracked, func(ctx context.Context) (any, sweepStats, error) {
		r, err := search.Kernel(ctx, p.nest, p.opts, p.sopts, p.budget, s.cfg.SweepWorkers)
		if err != nil {
			return nil, sweepStats{}, err
		}
		vars.searchRuns.Add(1)
		vars.searchEvaluations.Add(int64(r.Evaluations))
		vars.searchGenerations.Add(int64(r.Generations))
		vars.searchMemoHits.Add(int64(r.MemoHits))
		// Every evaluated point came from its own inner engine pass group;
		// points == workloads keeps the passes-saved counter honest.
		return &r, sweepStats{points: r.Evaluations, workloads: r.Evaluations}, nil
	})
	if err != nil {
		return nil, err
	}
	sr := res.(*search.Result)
	return &SearchResponse{
		ResultMeta: ResultMeta{Cached: cached, Engine: engineName(p.opts, p.opts.Plan())},
		Kernel:     p.nest.Name,
		Result:     *sr,
		Best:       bestOf(sr.Archive, p.req.CycleBound, p.req.EnergyBoundNJ),
	}, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	vars.requests.Add(1)
	defer func() { vars.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	if s.rejectDraining(w) {
		return
	}
	var req SearchRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeError(w, invalidRequest(err))
		return
	}
	if err := checkKind(req.Kind, KindSearch); err != nil {
		s.writeError(w, err)
		return
	}
	p, err := resolveSearch(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.runSearch(r.Context(), p, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitSearchJob validates a search submission and queues it. Progress
// totals are the budget's bounds (0 = unbounded): Points counts
// evaluated configurations, PassUnits counts generation retirements.
func (s *Server) submitSearchJob(w http.ResponseWriter, body []byte) {
	var req SearchRequest
	if err := decodeBody(bytes.NewReader(body), &req); err != nil {
		s.writeError(w, invalidRequest(err))
		return
	}
	p, err := resolveSearch(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The content key hashes everything that determines the result body:
	// the search inputs plus the bounds that shape Best.
	key := cacheKey("job-search", p.nest.String(), mustJSON(p.opts), mustJSON(p.sopts),
		fmt.Sprint(p.budget.MaxEvaluations), fmt.Sprint(p.budget.MaxGenerations),
		fmt.Sprint(int64(p.budget.WallClock)),
		fmt.Sprint(req.CycleBound), fmt.Sprint(req.EnergyBoundNJ))
	rec, err := s.runner.Submit(KindSearch, key, func(ctx context.Context, rep *jobs.Reporter) ([]byte, error) {
		rep.SetTotals(int64(p.budget.MaxEvaluations), int64(p.budget.MaxGenerations))
		resp, err := s.runSearch(reportProgress(ctx, rep), p, false)
		if err != nil {
			return nil, err
		}
		return marshalResult(resp)
	})
	if err != nil {
		s.writeError(w, submitErr(err))
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}
