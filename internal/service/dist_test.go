package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memexplore/internal/jobs"
)

// distHeaderJSON is traceHeaderJSON plus a distributed shard count.
func distHeaderJSON(shards int) string {
	return fmt.Sprintf(`{"kind":"explore-trace","options":{"cache_sizes":[32,64],"line_sizes":[4,8],"assocs":[1]},"shards":%d}`, shards)
}

// distPair builds a coordinator/peer replica pair sharing one jobs
// directory, the peer reachable over real HTTP (the coordinator dials
// it). Both are shut down with the test.
func distPair(t *testing.T) (*Server, *Server, string) {
	t.Helper()
	dir := t.TempDir()
	peer := MustNew(Config{MaxConcurrentSweeps: 2, CacheEntries: 8, JobsDir: dir, MaxBodyBytes: 64 << 20})
	ts := httptest.NewServer(peer)
	coord := MustNew(Config{MaxConcurrentSweeps: 2, CacheEntries: 8, JobsDir: dir, MaxBodyBytes: 64 << 20, Peers: []string{ts.URL}})
	t.Cleanup(func() {
		ts.Close()
	})
	return coord, peer, ts.URL
}

// submitJob posts one async job and returns the accepted record.
func submitJob(t *testing.T, s *Server, header string, body []byte) jobs.Record {
	t.Helper()
	w := doJSON(t, s, "POST", "/v1/jobs", http.Header{OptionsHeader: {header}}, body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	return decodeRecord(t, w)
}

// TestDistTraceTwoReplicaByteIdentical is the tentpole's acceptance
// contract end-to-end: a two-replica distributed sweep over a shared
// jobs directory produces a result byte-identical to the local run —
// sync response and async job result alike — ships zero trace bytes
// over the wire (the trace travels once, as a shared-store blob), and
// records the dispatched child on the parent job.
func TestDistTraceTwoReplicaByteIdentical(t *testing.T) {
	coord, _, _ := distPair(t)
	din := bigDin(t, 60_000)

	// Reference: plain local sweep on the same coordinator.
	localSync := doJSON(t, coord, "POST", "/v1/explore-trace", http.Header{OptionsHeader: {traceHeaderJSON}}, din)
	if localSync.Code != http.StatusOK {
		t.Fatalf("local sync = %d: %s", localSync.Code, localSync.Body)
	}

	shipped := vars.distBytesShipped.Value()
	dispatched := vars.distShardsDispatched.Value()

	distSync := doJSON(t, coord, "POST", "/v1/explore-trace", http.Header{OptionsHeader: {distHeaderJSON(2)}}, din)
	if distSync.Code != http.StatusOK {
		t.Fatalf("dist sync = %d: %s", distSync.Code, distSync.Body)
	}
	if got, want := distSync.Body.String(), localSync.Body.String(); got != want {
		t.Errorf("distributed sync response differs from local:\ndist:  %.200s\nlocal: %.200s", got, want)
	}
	if d := vars.distShardsDispatched.Value() - dispatched; d != 2 {
		t.Errorf("dist_shards_dispatched advanced by %d, want 2", d)
	}
	if d := vars.distBytesShipped.Value() - shipped; d != 0 {
		t.Errorf("dist_bytes_shipped advanced by %d; a shared store must hand the trace off as a blob", d)
	}

	// The async form: a distributed parent job records its child and its
	// result matches the local job's bytes exactly.
	localRec := awaitJob(t, coord, submitJob(t, coord, traceHeaderJSON, din).ID)
	if localRec.State != jobs.StateDone {
		t.Fatalf("local job = %s (%+v)", localRec.State, localRec.Error)
	}
	distRec := awaitJob(t, coord, submitJob(t, coord, distHeaderJSON(2), din).ID)
	if distRec.State != jobs.StateDone {
		t.Fatalf("dist job = %s (%+v)", distRec.State, distRec.Error)
	}
	if string(distRec.Result) != string(localRec.Result) {
		t.Error("distributed job result differs from local job result")
	}
	if len(distRec.Children) != 1 {
		t.Errorf("parent job recorded %d children, want 1", len(distRec.Children))
	}
	// Sync and async distributed forms agree byte-for-byte too.
	if want := strings.TrimSuffix(distSync.Body.String(), "\n"); string(distRec.Result) != want {
		t.Error("async distributed result differs from sync distributed body")
	}
}

// TestDistTracePeerDownFallback: every shard of a sweep whose peer is
// unreachable falls back to local execution — the result stays
// byte-identical and the failure is counted, never surfaced.
func TestDistTracePeerDownFallback(t *testing.T) {
	// A peer that is down from the start: reserve a port, then close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	coord := MustNew(Config{MaxConcurrentSweeps: 2, CacheEntries: 8, Peers: []string{deadURL}})
	plain := MustNew(Config{MaxConcurrentSweeps: 2, CacheEntries: 8})
	din := kernelDin(t)

	failures := vars.distPeerFailures.Value()
	distW := doJSON(t, coord, "POST", "/v1/explore-trace", http.Header{OptionsHeader: {distHeaderJSON(2)}}, din)
	if distW.Code != http.StatusOK {
		t.Fatalf("dist sweep with dead peer = %d: %s", distW.Code, distW.Body)
	}
	localW := doJSON(t, plain, "POST", "/v1/explore-trace", http.Header{OptionsHeader: {traceHeaderJSON}}, din)
	if localW.Code != http.StatusOK {
		t.Fatalf("local sweep = %d: %s", localW.Code, localW.Body)
	}
	if distW.Body.String() != localW.Body.String() {
		t.Error("peer-down fallback result differs from the local sweep")
	}
	if d := vars.distPeerFailures.Value() - failures; d < 1 {
		t.Errorf("dist_peer_failures advanced by %d, want ≥ 1", d)
	}
}

// TestDistTraceAllLocalShards: with no peers configured, an explicit
// shard count still partitions and merges — every leg runs locally —
// and stays byte-identical to the unsharded sweep for several counts.
func TestDistTraceAllLocalShards(t *testing.T) {
	s := MustNew(Config{MaxConcurrentSweeps: 4, CacheEntries: 8})
	din := kernelDin(t)
	want := doJSON(t, s, "POST", "/v1/explore-trace", http.Header{OptionsHeader: {traceHeaderJSON}}, din)
	if want.Code != http.StatusOK {
		t.Fatalf("local sweep = %d: %s", want.Code, want.Body)
	}
	for _, n := range []int{2, 3, 8} {
		got := doJSON(t, s, "POST", "/v1/explore-trace", http.Header{OptionsHeader: {distHeaderJSON(n)}}, din)
		if got.Code != http.StatusOK {
			t.Fatalf("shards=%d: %d: %s", n, got.Code, got.Body)
		}
		if got.Body.String() != want.Body.String() {
			t.Errorf("shards=%d: sharded-local sweep differs from unsharded", n)
		}
	}
}

// TestDistAutoShards: shards=-1 resolves to one shard per replica.
func TestDistAutoShards(t *testing.T) {
	coord, _, _ := distPair(t)
	din := kernelDin(t)
	dispatched := vars.distShardsDispatched.Value()
	w := doJSON(t, coord, "POST", "/v1/explore-trace", http.Header{OptionsHeader: {distHeaderJSON(-1)}}, din)
	if w.Code != http.StatusOK {
		t.Fatalf("auto shards = %d: %s", w.Code, w.Body)
	}
	if d := vars.distShardsDispatched.Value() - dispatched; d != 2 {
		t.Errorf("auto with 1 peer dispatched %d shards, want 2", d)
	}
}

// TestDistChildCancelOnParentDelete: DELETE on a distributed parent job
// cancels the shard job it dispatched to the peer.
func TestDistChildCancelOnParentDelete(t *testing.T) {
	coord, peer, _ := distPair(t)
	din := bigDin(t, 6_000_000)

	parent := submitJob(t, coord, distHeaderJSON(2), din)

	// Wait until the parent has dispatched its child.
	var childID string
	deadline := time.Now().Add(30 * time.Second)
	for childID == "" {
		cur := decodeRecord(t, doJSON(t, coord, "GET", "/v1/jobs/"+parent.ID, nil, nil))
		if len(cur.Children) > 0 {
			childID = cur.Children[0]
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("parent finished (%s) before dispatching a child; enlarge the trace", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("parent never dispatched a child job")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if w := doJSON(t, coord, "DELETE", "/v1/jobs/"+parent.ID, nil, nil); w.Code != http.StatusOK {
		t.Fatalf("cancel parent = %d: %s", w.Code, w.Body)
	}
	final := awaitJob(t, coord, parent.ID)
	if final.State != jobs.StateCanceled {
		t.Fatalf("parent final state = %s, want canceled", final.State)
	}
	child := awaitJob(t, peer, childID)
	if child.State != jobs.StateCanceled {
		t.Errorf("child final state = %s, want canceled (parent cancellation must propagate)", child.State)
	}
}
