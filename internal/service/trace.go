package service

// POST /v1/explore-trace: the external-trace sweep. Unlike the JSON
// endpoints the request body IS the trace — textual din or mxt binary,
// gzip transparently detected — streamed straight into the single-pass
// batched sweep without ever being materialized, so the body-size limit
// (not memory) bounds the trace. Sweep options ride in the
// X-Memexplore-Options header as a TraceRequest JSON document; the
// query-string form is kept as a deprecated alias. Supplying both is a
// conflicting_options error.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"memexplore/internal/core"
	"memexplore/internal/extrace"
)

// OptionsHeader carries a TraceRequest JSON document on endpoints whose
// request body is the trace itself and therefore cannot hold options.
const OptionsHeader = "X-Memexplore-Options"

// TraceRequest is the JSON options form of a trace sweep — the
// X-Memexplore-Options header value on /v1/explore-trace and on trace
// job submissions. Options goes through the same decoder as the JSON
// endpoints (full core.Options overlay, unknown fields rejected), which
// the query-string alias cannot express.
type TraceRequest struct {
	// Kind optionally names the request shape; "explore-trace" here.
	Kind string `json:"kind,omitempty"`
	// Options overrides DefaultOptions field-by-field, exactly as in
	// ExploreRequest.
	Options json.RawMessage `json:"options,omitempty"`
	// MaxRecords/SkipMalformed configure trace ingest (extrace.Options).
	MaxRecords    int64 `json:"max_records,omitempty"`
	SkipMalformed bool  `json:"skip_malformed,omitempty"`
	// CycleBound/EnergyBoundNJ add the paper's bounded selections.
	CycleBound    float64 `json:"cycle_bound,omitempty"`
	EnergyBoundNJ float64 `json:"energy_bound_nj,omitempty"`
	// Workers requests a simulation worker count (0 = server default);
	// clamped to the server-side cap.
	Workers int `json:"workers,omitempty"`
	// Shards requests distributed execution: the sweep's pass units are
	// partitioned into up to this many disjoint shards, shard 0 runs
	// locally and the rest are dispatched to the configured peer replicas
	// as child jobs, with per-shard metrics merged into a result
	// bit-identical to the local run. -1 means auto (one shard per
	// replica: peers + 1); 0 and 1 mean plain local execution.
	Shards int `json:"shards,omitempty"`
	// Shard marks a shard-execution request — the internal
	// coordinator-to-peer form. The receiving replica re-derives the
	// deterministic shard plan from (options, Shard.Count) and sweeps
	// only the pass units of Shard.Index. Mutually exclusive with Shards.
	Shard *ShardSpec `json:"shard,omitempty"`
	// TraceRef, when set, replaces the request body: the SHA-256 content
	// hash (hex) of a trace blob previously published to the shared
	// filesystem job store. The trace-upload-once path of distributed
	// sweeps; unresolvable refs fail with code unknown_trace_ref.
	TraceRef string `json:"trace_ref,omitempty"`
}

// ShardSpec addresses one shard of a distributed sweep's deterministic
// pass-unit partition: shard Index of the Count-way plan.
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// maxShards caps the shard count of a distributed sweep: beyond it the
// per-shard pass-unit slices get too thin for the dispatch overhead, and
// an unbounded count is a fan-out amplification hazard.
const maxShards = 64

// TraceExploreResponse is the POST /v1/explore-trace reply (and,
// marshaled, the result body of an "explore-trace" job): one Metrics
// per (T, L, S) configuration plus the ingest-time profile of the trace.
type TraceExploreResponse struct {
	ResultMeta
	Points  int                 `json:"points"`
	Metrics []core.Metrics      `json:"metrics"`
	Best    Best                `json:"best"`
	Ingest  extrace.IngestStats `json:"ingest"`
}

// traceQuery is the resolved option set of an explore-trace request,
// whichever wire form it arrived in.
type traceQuery struct {
	opts          core.Options
	ing           extrace.Options
	cycleBound    float64
	energyBoundNJ float64
	// workers is the client-requested simulation worker count (0 = server
	// default); the handler clamps it to the server-side cap before it
	// reaches core.Options.Workers.
	workers int
	// shards is the requested distributed shard count (-1 auto, 0/1
	// local); shard is the internal shard-execution spec; traceRef the
	// content hash standing in for the body. See TraceRequest.
	shards   int
	shard    *ShardSpec
	traceRef string
}

// resolveTraceRequest decodes a trace sweep's options from the
// X-Memexplore-Options header (the v1 form) or the query string (the
// deprecated alias). Supplying both is rejected rather than resolved by
// precedence: silently preferring one would mask a client bug.
func resolveTraceRequest(r *http.Request) (traceQuery, error) {
	header := r.Header.Get(OptionsHeader)
	if header == "" {
		return parseTraceQuery(r.URL.Query())
	}
	if len(r.URL.Query()) > 0 {
		return traceQuery{}, httpError(http.StatusBadRequest, CodeConflictingOptions,
			"sweep options supplied both in the "+OptionsHeader+" header and the query string; use the header", "")
	}
	var tr TraceRequest
	if err := decodeBody(strings.NewReader(header), &tr); err != nil {
		return traceQuery{}, httpError(http.StatusBadRequest, CodeInvalidOptions,
			OptionsHeader+" header: "+err.Error(), "")
	}
	return resolveTraceOptions(tr)
}

// resolveTraceOptions converts the JSON options form into a traceQuery
// through the same options decoder the JSON endpoints use.
func resolveTraceOptions(tr TraceRequest) (traceQuery, error) {
	if err := checkKind(tr.Kind, KindExploreTrace); err != nil {
		return traceQuery{}, err
	}
	if tr.Workers < 0 {
		return traceQuery{}, &core.ErrInvalidOptions{Field: "workers", Reason: "workers must be ≥ 0 (0 = server default)"}
	}
	if tr.Shards < -1 || tr.Shards > maxShards {
		return traceQuery{}, &core.ErrInvalidOptions{Field: "shards",
			Reason: fmt.Sprintf("shards must be between -1 (auto) and %d, got %d", maxShards, tr.Shards)}
	}
	if tr.Shard != nil {
		if tr.Shards != 0 {
			return traceQuery{}, &core.ErrInvalidOptions{Field: "shard", Reason: "shard (execute one shard) and shards (coordinate a distributed sweep) are mutually exclusive"}
		}
		if tr.Shard.Count < 1 || tr.Shard.Count > maxShards || tr.Shard.Index < 0 || tr.Shard.Index >= tr.Shard.Count {
			return traceQuery{}, &core.ErrInvalidOptions{Field: "shard",
				Reason: fmt.Sprintf("shard index must be in [0, count) with count in [1, %d], got %d/%d", maxShards, tr.Shard.Index, tr.Shard.Count)}
		}
	}
	if tr.TraceRef != "" && !isHex64(tr.TraceRef) {
		return traceQuery{}, &core.ErrInvalidOptions{Field: "trace_ref", Reason: "trace_ref must be a 64-character lowercase hex SHA-256"}
	}
	opts, err := resolveOptions(tr.Options)
	if err != nil {
		return traceQuery{}, err
	}
	return traceQuery{
		opts:          opts,
		ing:           extrace.Options{MaxRecords: tr.MaxRecords, SkipMalformed: tr.SkipMalformed},
		cycleBound:    tr.CycleBound,
		energyBoundNJ: tr.EnergyBoundNJ,
		workers:       tr.Workers,
		shards:        tr.Shards,
		shard:         tr.Shard,
		traceRef:      tr.TraceRef,
	}, nil
}

// isHex64 reports whether s is a 64-char lowercase hex string (a SHA-256).
func isHex64(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// parseTraceQuery decodes the deprecated query-string alias strictly:
// unknown keys and malformed values are errors, mirroring decodeBody's
// unknown-field policy. Recognized keys: sizes, lines, assocs
// (comma-separated ints), em (main-memory nJ/access), max_records,
// skip_malformed, cycle_bound, energy_bound_nj, workers, shards.
func parseTraceQuery(q url.Values) (traceQuery, error) {
	tq := traceQuery{opts: core.DefaultOptions()}
	for key, vals := range q {
		if len(vals) != 1 {
			return tq, &core.ErrInvalidOptions{Field: key, Reason: "parameter repeated"}
		}
		v := vals[0]
		var err error
		switch key {
		case "sizes":
			tq.opts.CacheSizes, err = parseIntList(v)
		case "lines":
			tq.opts.LineSizes, err = parseIntList(v)
		case "assocs":
			tq.opts.Assocs, err = parseIntList(v)
		case "em":
			var em float64
			if em, err = strconv.ParseFloat(v, 64); err == nil {
				tq.opts.Energy.Main.EmNJ = em
				tq.opts.Energy.Main.Name = "custom (em=" + v + " nJ)"
			}
		case "sample_rate":
			tq.opts.SampleRate, err = strconv.ParseFloat(v, 64)
		case "sample_seed":
			tq.opts.SampleSeed, err = strconv.ParseUint(v, 10, 64)
		case "dominant_eps":
			tq.opts.DominantEps, err = strconv.ParseFloat(v, 64)
		case "max_records":
			tq.ing.MaxRecords, err = strconv.ParseInt(v, 10, 64)
		case "skip_malformed":
			tq.ing.SkipMalformed, err = strconv.ParseBool(v)
		case "cycle_bound":
			tq.cycleBound, err = strconv.ParseFloat(v, 64)
		case "energy_bound_nj":
			tq.energyBoundNJ, err = strconv.ParseFloat(v, 64)
		case "workers":
			var n int
			if n, err = strconv.Atoi(v); err == nil && n < 0 {
				return tq, &core.ErrInvalidOptions{Field: key, Reason: "workers must be ≥ 0 (0 = server default)"}
			}
			tq.workers = n
		case "shards":
			var n int
			if n, err = strconv.Atoi(v); err == nil && (n < -1 || n > maxShards) {
				return tq, &core.ErrInvalidOptions{Field: key,
					Reason: fmt.Sprintf("shards must be between -1 (auto) and %d, got %d", maxShards, n)}
			}
			tq.shards = n
		default:
			return tq, &core.ErrInvalidOptions{Field: key, Reason: "unknown query parameter"}
		}
		if err != nil {
			return tq, &core.ErrInvalidOptions{Field: key, Reason: "bad value " + strconv.Quote(v)}
		}
	}
	tq.opts = tq.opts.Normalize()
	return tq, nil
}

// parseIntList parses "16,32,64".
func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func (s *Server) handleExploreTrace(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	vars.requests.Add(1)
	defer func() { vars.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	if s.rejectDraining(w) {
		return
	}
	tq, err := resolveTraceRequest(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var body io.Reader = r.Body
	if tq.traceRef != "" {
		data, err := s.resolveTraceRef(tq.traceRef)
		if err != nil {
			s.writeError(w, err)
			return
		}
		body = bytes.NewReader(data)
	}
	// Resolve the worker count here so the engine's observer reports the
	// actual shard count through the trace_workers gauge.
	tq.opts.Workers = s.traceWorkerCount(tq.workers)
	resp, err := s.runTrace(r.Context(), body, tq, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceWorkerCount resolves the simulation worker count of one trace
// sweep: the client's workers= request clamped to the server-side cap —
// Config.SweepWorkers when set, else GOMAXPROCS. A request of 0 (or no
// workers= at all) selects the cap.
func (s *Server) traceWorkerCount(requested int) int {
	cap := s.cfg.SweepWorkers
	if cap <= 0 {
		cap = runtime.GOMAXPROCS(0)
	}
	if requested <= 0 || requested > cap {
		return cap
	}
	return requested
}

// runTrace executes one streaming trace sweep end-to-end — worker pool,
// expvar accounting, envelope. The sync handler and the async job body
// both call it, which is what keeps their results byte-identical. A
// distributed request (shards ≥ 2 effective) takes the coordinator path,
// which yields merged metrics bit-identical to the local sweep and then
// flows through the very same envelope assembly below.
func (s *Server) runTrace(ctx context.Context, body io.Reader, tq traceQuery, tracked bool) (*TraceExploreResponse, error) {
	begin := time.Now()
	var (
		ms  []core.Metrics
		st  extrace.IngestStats
		err error
	)
	if n := s.effectiveShards(tq); n >= 2 {
		ms, st, err = s.distTraceSweep(ctx, body, tq, n, tracked)
	} else {
		ms, st, err = s.traceSweep(ctx, body, tq, tracked)
	}
	if err != nil {
		return nil, err
	}
	vars.points.Add(int64(len(ms)))
	vars.workloads.Add(1) // one pass over one external trace
	if saved := len(ms) - 1; saved > 0 {
		vars.passesSaved.Add(int64(saved))
	}
	meta := ResultMeta{Engine: core.EngineBatched.String()}
	if plan, perr := core.TraceSweepPlan(tq.opts); perr == nil {
		vars.inclusionGroups.Add(int64(plan.InclusionGroups))
		if u := plan.PassUnits(); u > 0 {
			vars.configsPerPass.Set(float64(plan.Points) / float64(u))
		}
		meta = resultMeta(false, tq.opts, plan, 1)
	}
	if len(ms) > 0 && (ms[0].SampleRate > 0 || ms[0].SampledRecords > 0) {
		var maxCI float64
		for _, m := range ms {
			if m.MissRateCI > maxCI {
				maxCI = m.MissRateCI
			}
		}
		meta.Sample = &SampleInfo{
			Rate:           ms[0].SampleRate,
			Seed:           tq.opts.SampleSeed,
			SampledRecords: ms[0].SampledRecords,
			SkippedShare:   ms[0].SkippedShare,
			MissRateCIMax:  maxCI,
			ChunksSkipped:  st.ChunksSkipped,
		}
		if st.StoredSampleRate > 0 {
			// A transcode-sampled artifact: the effective rate and seed are
			// the ones recorded in its footer, not the request's.
			meta.Sample.Stored = true
			meta.Sample.Seed = st.StoredSampleSeed
		}
		vars.traceSampledRecords.Add(ms[0].SampledRecords)
		vars.traceSampleRate.Set(ms[0].SampleRate)
	} else {
		vars.traceSampleRate.Set(0)
	}
	if secs := time.Since(begin).Seconds(); secs > 0 {
		vars.lastPointsPerSec.Set(float64(len(ms)) / secs)
	}
	return &TraceExploreResponse{
		ResultMeta: meta,
		Points:     len(ms),
		Metrics:    ms,
		Best:       bestOf(ms, tq.cycleBound, tq.energyBoundNJ),
		Ingest:     st,
	}, nil
}

// traceSweep runs the streaming sweep under a worker-pool slot; the body
// is consumed inside the slot. Ingest counters are recorded here so even
// failed sweeps account the bytes and records they consumed. tracked has
// the same meaning as in sweep().
func (s *Server) traceSweep(ctx context.Context, body io.Reader, tq traceQuery, tracked bool) ([]core.Metrics, extrace.IngestStats, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, extrace.IngestStats{}, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
	}
	defer func() { <-s.sem }()

	if tracked {
		s.inflight.Add(1)
		defer s.inflight.Done()
	}
	vars.inFlight.Add(1)
	defer vars.inFlight.Add(-1)

	// Dominant-block prefiltering reads the stream twice; an HTTP body
	// cannot rewind, so spool it to a temp file first. Job bodies arrive
	// as bytes.Readers and skip the spool.
	if tq.opts.DominantEps > 0 {
		if _, ok := body.(io.Seeker); !ok {
			f, err := os.CreateTemp("", "memexplore-trace-*")
			if err != nil {
				return nil, extrace.IngestStats{}, fmt.Errorf("service: spooling trace for the dominant-block prepass: %w", err)
			}
			defer os.Remove(f.Name())
			defer f.Close()
			if _, err := io.Copy(f, body); err != nil {
				// A MaxBytesError from the HTTP body limit propagates here.
				return nil, extrace.IngestStats{}, err
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return nil, extrace.IngestStats{}, fmt.Errorf("service: rewinding spooled trace: %w", err)
			}
			body = f
		}
	}

	var (
		ms  []core.Metrics
		st  extrace.IngestStats
		err error
	)
	if tq.shard != nil {
		// Shard execution (the peer side of a distributed sweep): same
		// stream, same filters, but the engine owns only the shard's pass
		// units. Metrics come back in the shard's own point order.
		ms, st, err = core.ExploreTraceShard(ctx, body, tq.opts, tq.ing, tq.shard.Index, tq.shard.Count)
	} else {
		ms, st, err = core.ExploreTraceReader(ctx, body, tq.opts, tq.ing)
	}
	vars.traceBytesRead.Add(st.BytesRead)
	vars.traceRecords.Add(st.Records)
	vars.traceRejects.Add(st.Rejects)
	vars.traceChunksSkipped.Add(st.ChunksSkipped)
	if st.Mmap {
		vars.traceMmapBytes.Add(st.BytesRead)
	}
	return ms, st, err
}
