package service

// POST /v1/explore-trace: the external-trace sweep. Unlike the JSON
// endpoints the request body IS the trace — textual din or mxt binary,
// gzip transparently detected — streamed straight into the single-pass
// batched sweep without ever being materialized, so the body-size limit
// (not memory) bounds the trace. Sweep options ride in the query string.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"time"

	"memexplore/internal/core"
	"memexplore/internal/extrace"
)

// TraceExploreResponse is the POST /v1/explore-trace reply: one Metrics
// per (T, L, S) configuration plus the ingest-time profile of the trace.
type TraceExploreResponse struct {
	Points  int                 `json:"points"`
	Metrics []core.Metrics      `json:"metrics"`
	Best    Best                `json:"best"`
	Ingest  extrace.IngestStats `json:"ingest"`
}

// traceQuery is the decoded query string of an explore-trace request.
type traceQuery struct {
	opts          core.Options
	ing           extrace.Options
	cycleBound    float64
	energyBoundNJ float64
	// workers is the client-requested simulation worker count (0 = server
	// default); the handler clamps it to the server-side cap before it
	// reaches core.Options.Workers.
	workers int
}

// parseTraceQuery decodes the query parameters strictly: unknown keys and
// malformed values are errors, mirroring decodeBody's unknown-field
// policy. Recognized keys: sizes, lines, assocs (comma-separated ints),
// em (main-memory nJ/access), max_records, skip_malformed,
// cycle_bound, energy_bound_nj, workers.
func parseTraceQuery(q url.Values) (traceQuery, error) {
	tq := traceQuery{opts: core.DefaultOptions()}
	for key, vals := range q {
		if len(vals) != 1 {
			return tq, &core.ErrInvalidOptions{Field: key, Reason: "parameter repeated"}
		}
		v := vals[0]
		var err error
		switch key {
		case "sizes":
			tq.opts.CacheSizes, err = parseIntList(v)
		case "lines":
			tq.opts.LineSizes, err = parseIntList(v)
		case "assocs":
			tq.opts.Assocs, err = parseIntList(v)
		case "em":
			var em float64
			if em, err = strconv.ParseFloat(v, 64); err == nil {
				tq.opts.Energy.Main.EmNJ = em
				tq.opts.Energy.Main.Name = "custom (em=" + v + " nJ)"
			}
		case "max_records":
			tq.ing.MaxRecords, err = strconv.ParseInt(v, 10, 64)
		case "skip_malformed":
			tq.ing.SkipMalformed, err = strconv.ParseBool(v)
		case "cycle_bound":
			tq.cycleBound, err = strconv.ParseFloat(v, 64)
		case "energy_bound_nj":
			tq.energyBoundNJ, err = strconv.ParseFloat(v, 64)
		case "workers":
			var n int
			if n, err = strconv.Atoi(v); err == nil && n < 0 {
				return tq, &core.ErrInvalidOptions{Field: key, Reason: "workers must be ≥ 0 (0 = server default)"}
			}
			tq.workers = n
		default:
			return tq, &core.ErrInvalidOptions{Field: key, Reason: "unknown query parameter"}
		}
		if err != nil {
			return tq, &core.ErrInvalidOptions{Field: key, Reason: "bad value " + strconv.Quote(v)}
		}
	}
	tq.opts = tq.opts.Normalize()
	return tq, nil
}

// parseIntList parses "16,32,64".
func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func (s *Server) handleExploreTrace(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	vars.requests.Add(1)
	defer func() { vars.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	if s.rejectDraining(w) {
		return
	}
	tq, err := parseTraceQuery(r.URL.Query())
	if err != nil {
		var inv *core.ErrInvalidOptions
		errors.As(err, &inv)
		s.fail(w, http.StatusBadRequest, "invalid_options", inv.Reason, inv.Field)
		return
	}

	// Resolve the worker count here so the engine's observer reports the
	// actual shard count through the trace_workers gauge.
	tq.opts.Workers = s.traceWorkerCount(tq.workers)

	// Trace sweeps use the worker pool like every sweep, but skip the
	// result cache: the trace streams through once and is never held, so
	// there is nothing content-addressable to key on.
	ms, st, err := s.traceSweep(r.Context(), r.Body, tq)
	vars.traceBytesRead.Add(st.BytesRead)
	vars.traceRecords.Add(st.Records)
	vars.traceRejects.Add(st.Rejects)
	if err != nil {
		s.failTraceSweep(w, err)
		return
	}
	vars.points.Add(int64(len(ms)))
	vars.workloads.Add(1) // one pass over one external trace
	if saved := len(ms) - 1; saved > 0 {
		vars.passesSaved.Add(int64(saved))
	}
	if plan, perr := core.TraceSweepPlan(tq.opts); perr == nil {
		vars.inclusionGroups.Add(int64(plan.InclusionGroups))
		if u := plan.PassUnits(); u > 0 {
			vars.configsPerPass.Set(float64(plan.Points) / float64(u))
		}
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		vars.lastPointsPerSec.Set(float64(len(ms)) / secs)
	}
	writeJSON(w, http.StatusOK, TraceExploreResponse{
		Points:  len(ms),
		Metrics: ms,
		Best:    bestOf(ms, tq.cycleBound, tq.energyBoundNJ),
		Ingest:  st,
	})
}

// traceWorkerCount resolves the simulation worker count of one trace
// sweep: the client's workers= request clamped to the server-side cap —
// Config.SweepWorkers when set, else GOMAXPROCS. A request of 0 (or no
// workers= at all) selects the cap.
func (s *Server) traceWorkerCount(requested int) int {
	cap := s.cfg.SweepWorkers
	if cap <= 0 {
		cap = runtime.GOMAXPROCS(0)
	}
	if requested <= 0 || requested > cap {
		return cap
	}
	return requested
}

// traceSweep runs the streaming sweep under a worker-pool slot with the
// drain bookkeeping of sweep(); the body is consumed inside the slot.
func (s *Server) traceSweep(ctx context.Context, body io.Reader, tq traceQuery) ([]core.Metrics, extrace.IngestStats, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, extrace.IngestStats{}, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
	}
	defer func() { <-s.sem }()

	s.inflight.Add(1)
	defer s.inflight.Done()
	vars.inFlight.Add(1)
	defer vars.inFlight.Add(-1)

	return core.ExploreTraceReader(ctx, body, tq.opts, tq.ing)
}

// failTraceSweep maps a trace-sweep error to its transport status:
// oversized bodies are 413, malformed traces and ingest-limit violations
// are 400 with the parse location in the message, cancellation is 499.
func (s *Server) failTraceSweep(w http.ResponseWriter, err error) {
	var (
		tooBig *http.MaxBytesError
		perr   *extrace.ParseError
	)
	switch {
	case errors.As(err, &tooBig):
		s.fail(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error(), "")
	case errors.As(err, &perr):
		s.fail(w, http.StatusBadRequest, "invalid_trace", perr.Error(), "")
	case errors.Is(err, extrace.ErrRecordLimit):
		s.fail(w, http.StatusBadRequest, "record_limit", err.Error(), "")
	case errors.Is(err, core.ErrEmptyTrace):
		s.fail(w, http.StatusBadRequest, "empty_trace", err.Error(), "")
	default:
		s.failSweep(w, err)
	}
}
