// Package service implements memexplored, the HTTP/JSON daemon that
// serves MemExplore sweeps as an API (stdlib only). Endpoints:
//
//	POST   /v1/explore          run (or recall) a sweep for one kernel
//	POST   /v1/explore-trace    stream an external trace through the sweep
//	POST   /v1/aggregate        §5 trip-count-weighted multi-kernel aggregation
//	POST   /v1/search           budgeted NSGA-II search over the config space
//	POST   /v1/jobs             submit an async sweep job (202 + id)
//	GET    /v1/jobs/{id}        job status, progress and result
//	DELETE /v1/jobs/{id}        cancel a running job
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/kernels          registered kernel names
//	GET    /healthz             liveness (503 while draining)
//	GET    /debug/vars          expvar counters (see metrics.go)
//
// Sweeps run on a bounded worker pool via core.ExploreParallelContext
// with the request context threaded through, so client disconnects and
// deadlines cancel work between config points. Completed results are
// kept in a content-addressed LRU cache keyed by the canonical hash of
// (kernel source, normalized options); identical queries are answered
// from memory. Async jobs run on a second bounded pool (internal/jobs)
// whose terminal records land in a Store — in-memory by default, a
// shareable filesystem directory with Config.JobsDir. Shutdown drains
// in-flight sweeps and accepted jobs while new work is rejected with
// 503. See docs/SERVICE.md for the wire reference.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memexplore/internal/core"
	"memexplore/internal/jobs"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
)

// StatusClientClosedRequest is the non-standard status reported when the
// client abandons a request mid-sweep (nginx's 499 convention). It is
// mostly visible in logs: the client is usually gone before it is sent.
const StatusClientClosedRequest = 499

// Config parameterizes a Server. The zero value is usable: every field
// falls back to its documented default.
type Config struct {
	// MaxConcurrentSweeps bounds the worker pool: at most this many
	// sweeps execute at once, the rest queue until a slot frees or their
	// context is canceled. Default 4.
	MaxConcurrentSweeps int
	// SweepWorkers is the per-sweep goroutine count handed to
	// core.ExploreParallelContext. Default 0 = GOMAXPROCS.
	SweepWorkers int
	// CacheEntries is the result-cache capacity. Default 128; negative
	// disables caching.
	CacheEntries int
	// MaxBodyBytes bounds request bodies. Default 8 MiB.
	MaxBodyBytes int64
	// MaxConcurrentJobs bounds the async job-runner pool: at most this
	// many jobs execute at once, the rest wait in queued state.
	// Default 2.
	MaxConcurrentJobs int
	// JobTTL is how long terminal job records stay readable in the
	// in-memory job store. Default 15 minutes. Ignored with JobsDir.
	JobTTL time.Duration
	// JobCapacity bounds the in-memory job store. Default 256 records.
	// Ignored with JobsDir.
	JobCapacity int
	// JobsDir, when set, stores terminal job records and content-keyed
	// results as files under this directory instead of in memory — a
	// directory shared by several replicas becomes a shared result tier.
	// JobTTL applies here too: a background janitor removes terminal
	// records (cascading through child shard jobs and content keys) and
	// trace blobs older than the TTL, so a shared directory never leaks.
	JobsDir string
	// Peers lists the base URLs of sibling replicas (e.g.
	// "http://10.0.0.2:8080") this server may dispatch distributed sweep
	// shards to. The list must not include the server itself. Empty means
	// distributed requests run every shard locally.
	Peers []string
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentSweeps <= 0 {
		c.MaxConcurrentSweeps = 4
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.JobCapacity <= 0 {
		c.JobCapacity = 256
	}
	return c
}

// Server is the memexplored HTTP handler plus its worker pool, result
// cache, async job runner and drain state. Create with New; it is safe
// for concurrent use.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *resultCache
	sem      chan struct{}
	runner   *jobs.Runner
	draining atomic.Bool
	inflight sync.WaitGroup
	// fsStore is non-nil when JobsDir is configured: the shared tier
	// distributed sweeps publish trace blobs to, and the store the
	// cleanup janitor sweeps.
	fsStore     *jobs.FSStore
	peerClient  *http.Client
	janitorStop chan struct{}
	janitorOnce sync.Once
}

// New builds a Server with the given configuration. It fails only when
// Config.JobsDir is set but unusable.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var store jobs.Store
	var fsStore *jobs.FSStore
	if cfg.JobsDir != "" {
		fs, err := jobs.NewFSStore(cfg.JobsDir)
		if err != nil {
			return nil, fmt.Errorf("service: opening job store: %w", err)
		}
		store, fsStore = fs, fs
	} else {
		store = jobs.NewMemStore(cfg.JobCapacity, cfg.JobTTL)
	}
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		cache:      newResultCache(cfg.CacheEntries),
		sem:        make(chan struct{}, cfg.MaxConcurrentSweeps),
		fsStore:    fsStore,
		peerClient: &http.Client{}, // per-request deadlines come from contexts
	}
	if fsStore != nil {
		s.janitorStop = make(chan struct{})
		go s.janitor(fsStore, cfg.JobTTL)
	}
	s.runner = jobs.NewRunner(store, cfg.MaxConcurrentJobs, mapJobError, jobHooks())
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("POST /v1/explore-trace", s.handleExploreTrace)
	s.mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	return s, nil
}

// MustNew is New for callers with a statically valid configuration
// (tests, the bench harness); it panics on error.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// Shutdown starts draining: new sweep requests and job submissions are
// rejected with 503 while in-flight sweeps and accepted jobs (queued or
// running) run to completion. It returns when everything has finished
// or ctx expires (then ctx.Err()). Callers cancel still-running sync
// sweeps by canceling the base context of their http.Server or closing
// client connections; running jobs finish on their own (cancel them
// individually via DELETE /v1/jobs/{id} for a hard stop).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.janitorStop != nil {
		s.janitorOnce.Do(func() { close(s.janitorStop) })
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return s.runner.Drain(ctx)
}

// Draining reports whether Shutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// janitor periodically sweeps expired terminal records (and their child
// shard jobs, content keys and blobs) out of the filesystem job store.
// It runs until Shutdown; several replicas sweeping the same directory
// are harmless — removal is idempotent.
func (s *Server) janitor(fs *jobs.FSStore, ttl time.Duration) {
	interval := ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_, _ = fs.Cleanup(ttl)
		case <-s.janitorStop:
			return
		}
	}
}

// --- wire types -------------------------------------------------------

// Job and request kinds — the "kind" discriminator of the shared wire
// forms. A synchronous endpoint accepts its own kind (or none); the
// jobs endpoint dispatches on it.
const (
	KindExplore      = "explore"
	KindExploreTrace = "explore-trace"
	KindSearch       = "search"
)

// ExploreRequest is the POST /v1/explore body and (as the "explore"
// kind) the POST /v1/jobs body. Exactly one of Kernel (a registered
// name) or Source (inline loop-nest text, the Nest.String grammar)
// selects the workload.
type ExploreRequest struct {
	// Kind optionally names the request shape; "explore" here. The jobs
	// endpoint dispatches on it, the sync endpoint merely checks it.
	Kind   string `json:"kind,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	Source string `json:"source,omitempty"`
	// Options overrides DefaultOptions field-by-field: absent fields keep
	// their defaults, candidate lists are normalized (sorted, deduped).
	Options json.RawMessage `json:"options,omitempty"`
	// CycleBound/EnergyBoundNJ, when positive, add the paper's bounded
	// selections to the response.
	CycleBound    float64 `json:"cycle_bound,omitempty"`
	EnergyBoundNJ float64 `json:"energy_bound_nj,omitempty"`
}

// Best collects the selection optima over a sweep. Bounded entries are
// present only when the request set the bound; absent also when no
// configuration meets it.
type Best struct {
	MinEnergy                 *core.Metrics `json:"min_energy,omitempty"`
	MinCycles                 *core.Metrics `json:"min_cycles,omitempty"`
	MinEDP                    *core.Metrics `json:"min_edp,omitempty"`
	MinEnergyUnderCycleBound  *core.Metrics `json:"min_energy_under_cycle_bound,omitempty"`
	MinCyclesUnderEnergyBound *core.Metrics `json:"min_cycles_under_energy_bound,omitempty"`
}

// ExploreResponse is the POST /v1/explore reply (and, marshaled, the
// result body of an "explore" job).
type ExploreResponse struct {
	ResultMeta
	Kernel  string         `json:"kernel"`
	Points  int            `json:"points"`
	Metrics []core.Metrics `json:"metrics"`
	Best    Best           `json:"best"`
}

// AggregateKernel names one weighted kernel of an aggregate request.
type AggregateKernel struct {
	Kernel string `json:"kernel,omitempty"`
	Source string `json:"source,omitempty"`
	Trip   int64  `json:"trip"`
}

// AggregateRequest is the POST /v1/aggregate body.
type AggregateRequest struct {
	Kernels       []AggregateKernel `json:"kernels"`
	Options       json.RawMessage   `json:"options,omitempty"`
	CycleBound    float64           `json:"cycle_bound,omitempty"`
	EnergyBoundNJ float64           `json:"energy_bound_nj,omitempty"`
}

// AggregateResponse is the POST /v1/aggregate reply. PerKernelBest maps
// each kernel to its individual minimum-energy configuration (Figure 10's
// per-kernel optima); Program carries the trip-weighted whole-program
// sweep.
type AggregateResponse struct {
	ResultMeta
	Points        int                     `json:"points"`
	Program       []core.Metrics          `json:"program"`
	Best          Best                    `json:"best"`
	PerKernelBest map[string]core.Metrics `json:"per_kernel_best"`
}

// KernelsResponse is the GET /v1/kernels reply.
type KernelsResponse struct {
	Kernels []string `json:"kernels"`
}

// ErrorBody is the JSON error envelope: {"error": {...}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail describes a failed request. Code is a stable machine-
// readable slug; Field is set for invalid_options errors.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, KernelsResponse{Kernels: kernels.Names()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	vars.requests.Add(1)
	defer func() { vars.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	if s.rejectDraining(w) {
		return
	}
	var req ExploreRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeError(w, invalidRequest(err))
		return
	}
	if err := checkKind(req.Kind, KindExplore); err != nil {
		s.writeError(w, err)
		return
	}
	p, err := resolveExplore(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.runExplore(r.Context(), p, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// exploreParams is a resolved explore request: the validated nest and
// normalized options plus the cache key they hash to — everything a
// sweep needs, computed up front so async submissions can reject bad
// requests synchronously.
type exploreParams struct {
	req  ExploreRequest
	nest *loopir.Nest
	opts core.Options
	key  string
}

// resolveExplore validates an explore request into its parameters.
func resolveExplore(req ExploreRequest) (exploreParams, error) {
	nest, err := resolveNest(req.Kernel, req.Source)
	if err != nil {
		return exploreParams{}, err
	}
	opts, err := resolveOptions(req.Options)
	if err != nil {
		return exploreParams{}, err
	}
	return exploreParams{
		req:  req,
		nest: nest,
		opts: opts,
		key:  cacheKey("explore", nest.String(), mustJSON(opts)),
	}, nil
}

// runExplore executes one explore sweep end-to-end — cache, worker
// pool, selection optima, envelope. The sync handler and the async job
// body both call it, which is what keeps their results identical.
func (s *Server) runExplore(ctx context.Context, p exploreParams, tracked bool) (*ExploreResponse, error) {
	res, cached, err := s.sweep(ctx, p.key, tracked, func(ctx context.Context) (any, sweepStats, error) {
		ms, err := core.ExploreParallelContext(ctx, p.nest, p.opts, s.cfg.SweepWorkers)
		return ms, planStats(p.opts.Plan(), 1), err
	})
	if err != nil {
		return nil, err
	}
	ms := res.([]core.Metrics)
	return &ExploreResponse{
		ResultMeta: resultMeta(cached, p.opts, p.opts.Plan(), 1),
		Kernel:     p.nest.Name,
		Points:     len(ms),
		Metrics:    ms,
		Best:       bestOf(ms, p.req.CycleBound, p.req.EnergyBoundNJ),
	}, nil
}

// aggregateResult is the cacheable part of an aggregate reply.
type aggregateResult struct {
	program       []core.Metrics
	perKernelBest map[string]core.Metrics
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	vars.requests.Add(1)
	defer func() { vars.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	if s.rejectDraining(w) {
		return
	}
	var req AggregateRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeError(w, invalidRequest(err))
		return
	}
	if len(req.Kernels) == 0 {
		s.writeError(w, httpError(http.StatusBadRequest, CodeInvalidRequest,
			"kernels must list at least one weighted kernel", ""))
		return
	}
	ws := make([]core.WeightedKernel, 0, len(req.Kernels))
	keyParts := []string{"aggregate"}
	for i, k := range req.Kernels {
		nest, err := resolveNest(k.Kernel, k.Source)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if k.Trip <= 0 {
			s.writeError(w, httpError(http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("kernels[%d]: trip must be positive, got %d", i, k.Trip), ""))
			return
		}
		ws = append(ws, core.WeightedKernel{Nest: nest, Trip: k.Trip})
		keyParts = append(keyParts, nest.String(), fmt.Sprint(k.Trip))
	}
	opts, err := resolveOptions(req.Options)
	if err != nil {
		s.writeError(w, err)
		return
	}
	keyParts = append(keyParts, mustJSON(opts))

	key := cacheKey(keyParts...)
	res, cached, err := s.sweep(r.Context(), key, true, func(ctx context.Context) (any, sweepStats, error) {
		program, perKernel, err := core.AggregateContext(ctx, ws, opts)
		if err != nil {
			return nil, sweepStats{}, err
		}
		agg := &aggregateResult{program: program, perKernelBest: make(map[string]core.Metrics, len(perKernel))}
		for name, ms := range perKernel {
			if best, ok := core.MinEnergy(ms); ok {
				agg.perKernelBest[name] = best
			}
		}
		// One explore sweep per kernel, each with the same pass plan.
		return agg, planStats(opts.Plan(), len(ws)), nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	agg := res.(*aggregateResult)
	writeJSON(w, http.StatusOK, AggregateResponse{
		ResultMeta:    resultMeta(cached, opts, opts.Plan(), len(ws)),
		Points:        len(agg.program),
		Program:       agg.program,
		Best:          bestOf(agg.program, req.CycleBound, req.EnergyBoundNJ),
		PerKernelBest: agg.perKernelBest,
	})
}

// --- request plumbing -------------------------------------------------

// decodeBody strictly decodes a JSON body into dst: unknown fields and
// trailing garbage are errors, so typos fail loudly instead of silently
// running a default sweep.
func decodeBody(body io.Reader, dst any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("request body has trailing data after the JSON object")
	}
	return nil
}

// invalidRequest wraps a body-decode failure in its envelope.
func invalidRequest(err error) *requestError {
	return httpError(http.StatusBadRequest, CodeInvalidRequest, err.Error(), "")
}

// checkKind validates the "kind" discriminator of a request against the
// endpoint's expected kind; absent is accepted.
func checkKind(got, want string) error {
	if got != "" && got != want {
		return httpError(http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("kind %q does not match this endpoint (want %q)", got, want), "kind")
	}
	return nil
}

// resolveNest turns a (kernel, source) pair into a validated nest.
func resolveNest(kernel, source string) (*loopir.Nest, error) {
	switch {
	case kernel != "" && source != "":
		return nil, httpError(http.StatusBadRequest, CodeInvalidRequest, "set exactly one of kernel and source, not both", "")
	case kernel != "":
		nest, err := kernels.ByName(kernel)
		if err != nil {
			if errors.Is(err, kernels.ErrUnknownKernel) {
				return nil, err // errorDetail maps this to 404 unknown_kernel
			}
			return nil, httpError(http.StatusBadRequest, CodeInvalidRequest, err.Error(), "")
		}
		return nest, nil
	case source != "":
		nest, err := loopir.Parse(source)
		if err != nil {
			return nil, httpError(http.StatusBadRequest, CodeInvalidKernel, err.Error(), "")
		}
		if err := nest.Validate(); err != nil {
			return nil, httpError(http.StatusBadRequest, CodeInvalidKernel, err.Error(), "")
		}
		return nest, nil
	default:
		return nil, httpError(http.StatusBadRequest, CodeInvalidRequest, "set one of kernel (registered name) or source (inline loop nest)", "")
	}
}

// resolveOptions overlays the raw options onto DefaultOptions, then
// normalizes and validates. The normalized form is what the sweep runs
// with AND what the cache key hashes, so wire-equivalent requests share
// cache entries. Validation failures surface as *core.ErrInvalidOptions
// for errorDetail to map.
func resolveOptions(raw json.RawMessage) (core.Options, error) {
	opts := core.DefaultOptions()
	if len(raw) > 0 {
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&opts); err != nil {
			return core.Options{}, httpError(http.StatusBadRequest, CodeInvalidOptions,
				fmt.Sprintf("decoding options: %v", err), "")
		}
	}
	opts = opts.Normalize()
	if err := opts.Validate(); err != nil {
		return core.Options{}, err
	}
	return opts, nil
}

// sweepStats is what a completed sweep reports for the expvar counters:
// how many config points it scored, how many distinct workload traces it
// generated and traversed to do so (equal to points for per-point
// sweeps; far fewer on the batched engine), and how those points
// partitioned into inclusion stack groups versus per-configuration pass
// units.
type sweepStats struct {
	points          int
	workloads       int
	inclusionGroups int
	passUnits       int
}

// planStats converts a sweep plan (core.Options.Plan) into the expvar
// report, optionally scaled by a kernel count for aggregate sweeps that
// repeat the same plan per kernel.
func planStats(plan core.SweepPlan, kernels int) sweepStats {
	return sweepStats{
		points:          plan.Points * kernels,
		workloads:       plan.Workloads * kernels,
		inclusionGroups: plan.InclusionGroups * kernels,
		passUnits:       plan.PassUnits() * kernels,
	}
}

// sweep serves a cache hit, or acquires a worker-pool slot and runs fn
// under the given context. fn reports the points/workloads it evaluated
// for the expvar counters. Results are cached only on success. tracked
// requests join the Shutdown drain group; job bodies pass false because
// the job runner already tracks them (and adding to the drain group
// after Shutdown started waiting on it would be a WaitGroup misuse).
func (s *Server) sweep(ctx context.Context, key string, tracked bool, fn func(context.Context) (any, sweepStats, error)) (res any, cached bool, err error) {
	if v, ok := s.cache.Get(key); ok {
		vars.cacheHits.Add(1)
		return v, true, nil
	}
	vars.cacheMisses.Add(1)

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
	}
	defer func() { <-s.sem }()

	if tracked {
		s.inflight.Add(1)
		defer s.inflight.Done()
	}
	vars.inFlight.Add(1)
	defer vars.inFlight.Add(-1)

	begin := time.Now()
	res, st, err := fn(ctx)
	if err != nil {
		return nil, false, err
	}
	vars.points.Add(int64(st.points))
	vars.workloads.Add(int64(st.workloads))
	if saved := st.points - st.workloads; saved > 0 {
		vars.passesSaved.Add(int64(saved))
	}
	vars.inclusionGroups.Add(int64(st.inclusionGroups))
	if st.passUnits > 0 {
		vars.configsPerPass.Set(float64(st.points) / float64(st.passUnits))
	}
	if secs := time.Since(begin).Seconds(); secs > 0 {
		vars.lastPointsPerSec.Set(float64(st.points) / secs)
	}
	s.cache.Add(key, res)
	return res, false, nil
}

// errDraining is the 503 rejection Shutdown puts in front of new work.
func errDraining() *requestError {
	return httpError(http.StatusServiceUnavailable, CodeDraining, "server is shutting down, not accepting new work", "")
}

// rejectDraining writes the 503 drain response and reports whether it did.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.writeError(w, errDraining())
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the client may be gone; nothing useful to do
}

// mustJSON marshals a value that cannot fail (plain structs, no cycles).
func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: marshaling %T: %v", v, err))
	}
	return string(b)
}

// bestOf computes the selection optima for a sweep.
func bestOf(ms []core.Metrics, cycleBound, energyBoundNJ float64) Best {
	var b Best
	set := func(dst **core.Metrics, m core.Metrics, ok bool) {
		if ok {
			cp := m
			*dst = &cp
		}
	}
	m, ok := core.MinEnergy(ms)
	set(&b.MinEnergy, m, ok)
	m, ok = core.MinCycles(ms)
	set(&b.MinCycles, m, ok)
	m, ok = core.MinEDP(ms)
	set(&b.MinEDP, m, ok)
	if cycleBound > 0 {
		m, ok = core.MinEnergyUnderCycleBound(ms, cycleBound)
		set(&b.MinEnergyUnderCycleBound, m, ok)
	}
	if energyBoundNJ > 0 {
		m, ok = core.MinCyclesUnderEnergyBound(ms, energyBoundNJ)
		set(&b.MinCyclesUnderEnergyBound, m, ok)
	}
	return b
}
