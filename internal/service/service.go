// Package service implements memexplored, the HTTP/JSON daemon that
// serves MemExplore sweeps as an API (stdlib only). Endpoints:
//
//	POST /v1/explore        run (or recall) a sweep for one kernel
//	POST /v1/explore-trace  stream an external trace through the sweep
//	POST /v1/aggregate      §5 trip-count-weighted multi-kernel aggregation
//	GET  /v1/kernels        registered kernel names
//	GET  /healthz           liveness (503 while draining)
//	GET  /debug/vars        expvar counters (see metrics.go)
//
// Sweeps run on a bounded worker pool via core.ExploreParallelContext
// with the request context threaded through, so client disconnects and
// deadlines cancel work between config points. Completed results are
// kept in a content-addressed LRU cache keyed by the canonical hash of
// (kernel source, normalized options); identical queries are answered
// from memory. Shutdown drains in-flight sweeps while new work is
// rejected with 503. See docs/SERVICE.md for the wire reference.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memexplore/internal/core"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
)

// StatusClientClosedRequest is the non-standard status reported when the
// client abandons a request mid-sweep (nginx's 499 convention). It is
// mostly visible in logs: the client is usually gone before it is sent.
const StatusClientClosedRequest = 499

// Config parameterizes a Server. The zero value is usable: every field
// falls back to its documented default.
type Config struct {
	// MaxConcurrentSweeps bounds the worker pool: at most this many
	// sweeps execute at once, the rest queue until a slot frees or their
	// context is canceled. Default 4.
	MaxConcurrentSweeps int
	// SweepWorkers is the per-sweep goroutine count handed to
	// core.ExploreParallelContext. Default 0 = GOMAXPROCS.
	SweepWorkers int
	// CacheEntries is the result-cache capacity. Default 128; negative
	// disables caching.
	CacheEntries int
	// MaxBodyBytes bounds request bodies. Default 8 MiB.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentSweeps <= 0 {
		c.MaxConcurrentSweeps = 4
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the memexplored HTTP handler plus its worker pool, result
// cache and drain state. Create with New; it is safe for concurrent use.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *resultCache
	sem      chan struct{}
	draining atomic.Bool
	inflight sync.WaitGroup
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		cache: newResultCache(cfg.CacheEntries),
		sem:   make(chan struct{}, cfg.MaxConcurrentSweeps),
	}
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("POST /v1/explore-trace", s.handleExploreTrace)
	s.mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// Shutdown starts draining: new sweep requests are rejected with 503
// while in-flight sweeps run to completion. It returns when every
// in-flight request has finished or ctx expires (then ctx.Err()).
// Callers cancel the still-running sweeps by canceling the base context
// of their http.Server, or simply by closing client connections.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// --- wire types -------------------------------------------------------

// ExploreRequest is the POST /v1/explore body. Exactly one of Kernel (a
// registered name) or Source (inline loop-nest text, the Nest.String
// grammar) selects the workload.
type ExploreRequest struct {
	Kernel string `json:"kernel,omitempty"`
	Source string `json:"source,omitempty"`
	// Options overrides DefaultOptions field-by-field: absent fields keep
	// their defaults, candidate lists are normalized (sorted, deduped).
	Options json.RawMessage `json:"options,omitempty"`
	// CycleBound/EnergyBoundNJ, when positive, add the paper's bounded
	// selections to the response.
	CycleBound    float64 `json:"cycle_bound,omitempty"`
	EnergyBoundNJ float64 `json:"energy_bound_nj,omitempty"`
}

// Best collects the selection optima over a sweep. Bounded entries are
// present only when the request set the bound; absent also when no
// configuration meets it.
type Best struct {
	MinEnergy                 *core.Metrics `json:"min_energy,omitempty"`
	MinCycles                 *core.Metrics `json:"min_cycles,omitempty"`
	MinEDP                    *core.Metrics `json:"min_edp,omitempty"`
	MinEnergyUnderCycleBound  *core.Metrics `json:"min_energy_under_cycle_bound,omitempty"`
	MinCyclesUnderEnergyBound *core.Metrics `json:"min_cycles_under_energy_bound,omitempty"`
}

// ExploreResponse is the POST /v1/explore reply.
type ExploreResponse struct {
	Kernel  string         `json:"kernel"`
	Cached  bool           `json:"cached"`
	Points  int            `json:"points"`
	Metrics []core.Metrics `json:"metrics"`
	Best    Best           `json:"best"`
}

// AggregateKernel names one weighted kernel of an aggregate request.
type AggregateKernel struct {
	Kernel string `json:"kernel,omitempty"`
	Source string `json:"source,omitempty"`
	Trip   int64  `json:"trip"`
}

// AggregateRequest is the POST /v1/aggregate body.
type AggregateRequest struct {
	Kernels       []AggregateKernel `json:"kernels"`
	Options       json.RawMessage   `json:"options,omitempty"`
	CycleBound    float64           `json:"cycle_bound,omitempty"`
	EnergyBoundNJ float64           `json:"energy_bound_nj,omitempty"`
}

// AggregateResponse is the POST /v1/aggregate reply. PerKernelBest maps
// each kernel to its individual minimum-energy configuration (Figure 10's
// per-kernel optima); Program carries the trip-weighted whole-program
// sweep.
type AggregateResponse struct {
	Cached        bool                    `json:"cached"`
	Points        int                     `json:"points"`
	Program       []core.Metrics          `json:"program"`
	Best          Best                    `json:"best"`
	PerKernelBest map[string]core.Metrics `json:"per_kernel_best"`
}

// KernelsResponse is the GET /v1/kernels reply.
type KernelsResponse struct {
	Kernels []string `json:"kernels"`
}

// ErrorBody is the JSON error envelope: {"error": {...}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail describes a failed request. Code is a stable machine-
// readable slug; Field is set for invalid_options errors.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, KernelsResponse{Kernels: kernels.Names()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	vars.requests.Add(1)
	defer func() { vars.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	if s.rejectDraining(w) {
		return
	}
	var req ExploreRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid_request", err.Error(), "")
		return
	}
	nest, ok := s.resolveNest(w, req.Kernel, req.Source)
	if !ok {
		return
	}
	opts, ok := s.resolveOptions(w, req.Options)
	if !ok {
		return
	}

	key := cacheKey("explore", nest.String(), mustJSON(opts))
	res, cached, err := s.sweep(r.Context(), key, func(ctx context.Context) (any, sweepStats, error) {
		ms, err := core.ExploreParallelContext(ctx, nest, opts, s.cfg.SweepWorkers)
		return ms, planStats(opts.Plan(), 1), err
	})
	if err != nil {
		s.failSweep(w, err)
		return
	}
	ms := res.([]core.Metrics)
	writeJSON(w, http.StatusOK, ExploreResponse{
		Kernel:  nest.Name,
		Cached:  cached,
		Points:  len(ms),
		Metrics: ms,
		Best:    bestOf(ms, req.CycleBound, req.EnergyBoundNJ),
	})
}

// aggregateResult is the cacheable part of an aggregate reply.
type aggregateResult struct {
	program       []core.Metrics
	perKernelBest map[string]core.Metrics
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	vars.requests.Add(1)
	defer func() { vars.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	if s.rejectDraining(w) {
		return
	}
	var req AggregateRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid_request", err.Error(), "")
		return
	}
	if len(req.Kernels) == 0 {
		s.fail(w, http.StatusBadRequest, "invalid_request", "kernels must list at least one weighted kernel", "")
		return
	}
	ws := make([]core.WeightedKernel, 0, len(req.Kernels))
	keyParts := []string{"aggregate"}
	for i, k := range req.Kernels {
		nest, ok := s.resolveNest(w, k.Kernel, k.Source)
		if !ok {
			return
		}
		if k.Trip <= 0 {
			s.fail(w, http.StatusBadRequest, "invalid_request",
				fmt.Sprintf("kernels[%d]: trip must be positive, got %d", i, k.Trip), "")
			return
		}
		ws = append(ws, core.WeightedKernel{Nest: nest, Trip: k.Trip})
		keyParts = append(keyParts, nest.String(), fmt.Sprint(k.Trip))
	}
	opts, ok := s.resolveOptions(w, req.Options)
	if !ok {
		return
	}
	keyParts = append(keyParts, mustJSON(opts))

	key := cacheKey(keyParts...)
	res, cached, err := s.sweep(r.Context(), key, func(ctx context.Context) (any, sweepStats, error) {
		program, perKernel, err := core.AggregateContext(ctx, ws, opts)
		if err != nil {
			return nil, sweepStats{}, err
		}
		agg := &aggregateResult{program: program, perKernelBest: make(map[string]core.Metrics, len(perKernel))}
		for name, ms := range perKernel {
			if best, ok := core.MinEnergy(ms); ok {
				agg.perKernelBest[name] = best
			}
		}
		// One explore sweep per kernel, each with the same pass plan.
		return agg, planStats(opts.Plan(), len(ws)), nil
	})
	if err != nil {
		s.failSweep(w, err)
		return
	}
	agg := res.(*aggregateResult)
	writeJSON(w, http.StatusOK, AggregateResponse{
		Cached:        cached,
		Points:        len(agg.program),
		Program:       agg.program,
		Best:          bestOf(agg.program, req.CycleBound, req.EnergyBoundNJ),
		PerKernelBest: agg.perKernelBest,
	})
}

// --- request plumbing -------------------------------------------------

// decodeBody strictly decodes a JSON body into dst: unknown fields and
// trailing garbage are errors, so typos fail loudly instead of silently
// running a default sweep.
func decodeBody(body io.Reader, dst any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("request body has trailing data after the JSON object")
	}
	return nil
}

// resolveNest turns a (kernel, source) pair into a validated nest,
// writing the error response itself when it fails.
func (s *Server) resolveNest(w http.ResponseWriter, kernel, source string) (*loopir.Nest, bool) {
	switch {
	case kernel != "" && source != "":
		s.fail(w, http.StatusBadRequest, "invalid_request", "set exactly one of kernel and source, not both", "")
		return nil, false
	case kernel != "":
		nest, err := kernels.ByName(kernel)
		if err != nil {
			if errors.Is(err, kernels.ErrUnknownKernel) {
				s.fail(w, http.StatusNotFound, "unknown_kernel", err.Error(), "")
			} else {
				s.fail(w, http.StatusBadRequest, "invalid_request", err.Error(), "")
			}
			return nil, false
		}
		return nest, true
	case source != "":
		nest, err := loopir.Parse(source)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "invalid_kernel", err.Error(), "")
			return nil, false
		}
		if err := nest.Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, "invalid_kernel", err.Error(), "")
			return nil, false
		}
		return nest, true
	default:
		s.fail(w, http.StatusBadRequest, "invalid_request", "set one of kernel (registered name) or source (inline loop nest)", "")
		return nil, false
	}
}

// resolveOptions overlays the raw options onto DefaultOptions, then
// normalizes and validates, writing the error response itself on failure.
// The normalized form is what the sweep runs with AND what the cache key
// hashes, so wire-equivalent requests share cache entries.
func (s *Server) resolveOptions(w http.ResponseWriter, raw json.RawMessage) (core.Options, bool) {
	opts := core.DefaultOptions()
	if len(raw) > 0 {
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&opts); err != nil {
			s.fail(w, http.StatusBadRequest, "invalid_options", fmt.Sprintf("decoding options: %v", err), "")
			return core.Options{}, false
		}
	}
	opts = opts.Normalize()
	if err := opts.Validate(); err != nil {
		var inv *core.ErrInvalidOptions
		if errors.As(err, &inv) {
			s.fail(w, http.StatusBadRequest, "invalid_options", inv.Reason, inv.Field)
		} else {
			s.fail(w, http.StatusBadRequest, "invalid_options", err.Error(), "")
		}
		return core.Options{}, false
	}
	return opts, true
}

// sweepStats is what a completed sweep reports for the expvar counters:
// how many config points it scored, how many distinct workload traces it
// generated and traversed to do so (equal to points for per-point
// sweeps; far fewer on the batched engine), and how those points
// partitioned into inclusion stack groups versus per-configuration pass
// units.
type sweepStats struct {
	points          int
	workloads       int
	inclusionGroups int
	passUnits       int
}

// planStats converts a sweep plan (core.Options.Plan) into the expvar
// report, optionally scaled by a kernel count for aggregate sweeps that
// repeat the same plan per kernel.
func planStats(plan core.SweepPlan, kernels int) sweepStats {
	return sweepStats{
		points:          plan.Points * kernels,
		workloads:       plan.Workloads * kernels,
		inclusionGroups: plan.InclusionGroups * kernels,
		passUnits:       plan.PassUnits() * kernels,
	}
}

// sweep serves a cache hit, or acquires a worker-pool slot and runs fn
// under the request context. fn reports the points/workloads it
// evaluated for the expvar counters. Results are cached only on success.
func (s *Server) sweep(ctx context.Context, key string, fn func(context.Context) (any, sweepStats, error)) (res any, cached bool, err error) {
	if v, ok := s.cache.Get(key); ok {
		vars.cacheHits.Add(1)
		return v, true, nil
	}
	vars.cacheMisses.Add(1)

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
	}
	defer func() { <-s.sem }()

	s.inflight.Add(1)
	defer s.inflight.Done()
	vars.inFlight.Add(1)
	defer vars.inFlight.Add(-1)

	begin := time.Now()
	res, st, err := fn(ctx)
	if err != nil {
		return nil, false, err
	}
	vars.points.Add(int64(st.points))
	vars.workloads.Add(int64(st.workloads))
	if saved := st.points - st.workloads; saved > 0 {
		vars.passesSaved.Add(int64(saved))
	}
	vars.inclusionGroups.Add(int64(st.inclusionGroups))
	if st.passUnits > 0 {
		vars.configsPerPass.Set(float64(st.points) / float64(st.passUnits))
	}
	if secs := time.Since(begin).Seconds(); secs > 0 {
		vars.lastPointsPerSec.Set(float64(st.points) / secs)
	}
	s.cache.Add(key, res)
	return res, false, nil
}

// rejectDraining writes the 503 drain response and reports whether it did.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.fail(w, http.StatusServiceUnavailable, "draining", "server is shutting down, not accepting new sweeps", "")
	return true
}

// failSweep maps a sweep error to its transport status.
func (s *Server) failSweep(w http.ResponseWriter, err error) {
	var inv *core.ErrInvalidOptions
	switch {
	case errors.Is(err, core.ErrCanceled):
		vars.canceled.Add(1)
		// The client has usually disconnected; the write is best-effort.
		writeJSON(w, StatusClientClosedRequest, ErrorBody{Error: ErrorDetail{Code: "canceled", Message: err.Error()}})
	case errors.As(err, &inv):
		s.fail(w, http.StatusBadRequest, "invalid_options", inv.Reason, inv.Field)
	default:
		s.fail(w, http.StatusInternalServerError, "internal", err.Error(), "")
	}
}

// fail writes the error envelope and bumps the failure counter.
func (s *Server) fail(w http.ResponseWriter, status int, code, message, field string) {
	vars.failed.Add(1)
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: message, Field: field}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the client may be gone; nothing useful to do
}

// mustJSON marshals a value that cannot fail (plain structs, no cycles).
func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: marshaling %T: %v", v, err))
	}
	return string(b)
}

// bestOf computes the selection optima for a sweep.
func bestOf(ms []core.Metrics, cycleBound, energyBoundNJ float64) Best {
	var b Best
	set := func(dst **core.Metrics, m core.Metrics, ok bool) {
		if ok {
			cp := m
			*dst = &cp
		}
	}
	m, ok := core.MinEnergy(ms)
	set(&b.MinEnergy, m, ok)
	m, ok = core.MinCycles(ms)
	set(&b.MinCycles, m, ok)
	m, ok = core.MinEDP(ms)
	set(&b.MinEDP, m, ok)
	if cycleBound > 0 {
		m, ok = core.MinEnergyUnderCycleBound(ms, cycleBound)
		set(&b.MinEnergyUnderCycleBound, m, ok)
	}
	if energyBoundNJ > 0 {
		m, ok = core.MinCyclesUnderEnergyBound(ms, energyBoundNJ)
		set(&b.MinCyclesUnderEnergyBound, m, ok)
	}
	return b
}
