package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memexplore/internal/jobs"
)

// traceHeaderJSON is the X-Memexplore-Options form of the test sweep
// space traceQueryString describes.
const traceHeaderJSON = `{"kind":"explore-trace","options":{"cache_sizes":[32,64],"line_sizes":[4,8],"assocs":[1]}}`

// bigDin repeats the matadd trace until it spans at least minRecords
// records, so a job emits multiple progress chunks and stays cancelable
// mid-run.
func bigDin(t *testing.T, minRecords int) []byte {
	t.Helper()
	din := kernelDin(t)
	records := bytes.Count(din, []byte("\n"))
	if records == 0 {
		t.Fatal("empty kernel trace")
	}
	repeat := minRecords/records + 1
	return bytes.Repeat(din, repeat)
}

// doJSON issues one request against the in-process server.
func doJSON(t *testing.T, s *Server, method, path string, header http.Header, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	for k, vs := range header {
		req.Header[k] = vs
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// decodeRecord decodes a job record response.
func decodeRecord(t *testing.T, w *httptest.ResponseRecorder) jobs.Record {
	t.Helper()
	var rec jobs.Record
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatalf("decoding record %q: %v", w.Body.String(), err)
	}
	return rec
}

// awaitJob polls GET /v1/jobs/{id} until the record is terminal.
func awaitJob(t *testing.T, s *Server, id string) jobs.Record {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		w := doJSON(t, s, "GET", "/v1/jobs/"+id, nil, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET job = %d: %s", w.Code, w.Body)
		}
		rec := decodeRecord(t, w)
		if rec.State.Terminal() {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, rec.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobExploreLifecycle: submit → 202 immediately → terminal record
// whose result is byte-identical to the synchronous endpoint's body.
func TestJobExploreLifecycle(t *testing.T) {
	body := fmt.Sprintf(`{"kind":"explore","kernel":"matadd","options":%s,"cycle_bound":1e9}`, tinyOptionsJSON)

	// An uncached sync twin on a separate server (same global options,
	// its own result cache) produces the reference bytes.
	sync := postJSON(t, MustNew(Config{MaxConcurrentSweeps: 2, CacheEntries: 8}), "/v1/explore", body)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync twin = %d: %s", sync.Code, sync.Body)
	}

	s := newTestServer(t)
	w := doJSON(t, s, "POST", "/v1/jobs", http.Header{"Content-Type": {"application/json"}}, []byte(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	rec := decodeRecord(t, w)
	if rec.ID == "" || rec.Kind != KindExplore || rec.State.Terminal() {
		t.Fatalf("accepted record = %+v", rec)
	}

	final := awaitJob(t, s, rec.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("final = %s (%+v)", final.State, final.Error)
	}
	if final.Progress.Points == 0 || final.Progress.PointsDone != final.Progress.Points {
		t.Errorf("progress totals = %+v", final.Progress)
	}
	want := strings.TrimSuffix(sync.Body.String(), "\n")
	if string(final.Result) != want {
		t.Fatalf("async result differs from sync body:\nasync %s\n sync %s", final.Result, want)
	}
}

// TestJobTraceByteIdentical pins the acceptance criterion: an async
// trace job's result is byte-identical to the synchronous
// /v1/explore-trace response for the same trace and options.
func TestJobTraceByteIdentical(t *testing.T) {
	s := newTestServer(t)
	din := kernelDin(t)
	hdr := http.Header{OptionsHeader: {traceHeaderJSON}}

	sync := doJSON(t, s, "POST", "/v1/explore-trace", hdr, din)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync trace = %d: %s", sync.Code, sync.Body)
	}

	w := doJSON(t, s, "POST", "/v1/jobs", hdr, din)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	rec := decodeRecord(t, w)
	if rec.Kind != KindExploreTrace {
		t.Fatalf("kind = %s", rec.Kind)
	}
	final := awaitJob(t, s, rec.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("final = %s (%+v)", final.State, final.Error)
	}
	want := strings.TrimSuffix(sync.Body.String(), "\n")
	if string(final.Result) != want {
		t.Fatalf("async trace result differs from sync body:\nasync %s\n sync %s", final.Result, want)
	}
	if final.Progress.Records == 0 {
		t.Error("trace job reported no record progress")
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  string
}

func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "id: "):
				ev.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unparseable SSE line %q", line)
			}
		}
		events = append(events, ev)
	}
	return events
}

// TestJobEventsSSE streams a long trace job and pins the acceptance
// criterion of at least two progress events before the terminal one.
func TestJobEventsSSE(t *testing.T) {
	s := newTestServer(t)
	// Large enough (~120 chunks, ~100ms of simulation) that the watcher
	// reliably observes intermediate versions even on a loaded machine.
	din := bigDin(t, 1000000)
	w := doJSON(t, s, "POST", "/v1/jobs", http.Header{OptionsHeader: {traceHeaderJSON}}, din)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	rec := decodeRecord(t, w)

	// The handler blocks until the stream ends (terminal event), so a
	// plain synchronous call collects the whole stream.
	ew := doJSON(t, s, "GET", "/v1/jobs/"+rec.ID+"/events", nil, nil)
	if ew.Code != http.StatusOK {
		t.Fatalf("events = %d: %s", ew.Code, ew.Body)
	}
	if ct := ew.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	events := parseSSE(t, ew.Body.String())
	if len(events) < 3 {
		t.Fatalf("got %d events, want ≥ 3: %+v", len(events), events)
	}
	progress := 0
	for i, ev := range events {
		if ev.id != fmt.Sprint(i) {
			t.Errorf("event %d has id %q", i, ev.id)
		}
		var evRec jobs.Record
		if err := json.Unmarshal([]byte(ev.data), &evRec); err != nil {
			t.Fatalf("event %d data: %v", i, err)
		}
		terminal := i == len(events)-1
		if terminal {
			if ev.event != "done" || evRec.State != jobs.StateDone || evRec.Result == nil {
				t.Fatalf("terminal event = %q state %s (result %d bytes)", ev.event, evRec.State, len(evRec.Result))
			}
		} else if ev.event != "progress" {
			t.Fatalf("event %d = %q, want progress", i, ev.event)
		} else {
			progress++
		}
	}
	if progress < 2 {
		t.Fatalf("only %d progress events before terminal, want ≥ 2", progress)
	}

	// Watching a finished job replays its terminal record once.
	replay := parseSSE(t, doJSON(t, s, "GET", "/v1/jobs/"+rec.ID+"/events", nil, nil).Body.String())
	if len(replay) != 1 || replay[0].event != "done" {
		t.Fatalf("replay = %+v", replay)
	}
}

// TestJobCancelMidRun: DELETE a running trace job and observe the
// canceled terminal state, then verify the server still drains cleanly
// (no stuck goroutine holding a pool slot).
func TestJobCancelMidRun(t *testing.T) {
	s := newTestServer(t)
	din := bigDin(t, 400000)
	w := doJSON(t, s, "POST", "/v1/jobs", http.Header{OptionsHeader: {traceHeaderJSON}}, din)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	rec := decodeRecord(t, w)

	// Wait until the job is demonstrably mid-sweep.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := decodeRecord(t, doJSON(t, s, "GET", "/v1/jobs/"+rec.ID, nil, nil))
		if cur.State == jobs.StateRunning && cur.Progress.Records > 0 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before it could be canceled (state %s); enlarge the trace", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached running state")
		}
		time.Sleep(2 * time.Millisecond)
	}

	dw := doJSON(t, s, "DELETE", "/v1/jobs/"+rec.ID, nil, nil)
	if dw.Code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", dw.Code, dw.Body)
	}
	final := awaitJob(t, s, rec.ID)
	if final.State != jobs.StateCanceled {
		t.Fatalf("state after DELETE = %s", final.State)
	}
	if final.Result != nil || final.Error != nil {
		t.Fatalf("canceled record carries result/error: %+v", final)
	}

	// A canceled job leaves no residue: the drain completes immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after cancel: %v", err)
	}
}

// TestJobsSharedResultTier drives the filesystem store: records survive
// a simulated restart, and a second replica sharing the directory
// recalls completed results without re-running the sweep.
func TestJobsSharedResultTier(t *testing.T) {
	dir := t.TempDir()
	s1 := MustNew(Config{MaxConcurrentSweeps: 2, JobsDir: dir})
	body := fmt.Sprintf(`{"kernel":"matadd","options":%s}`, tinyOptionsJSON)
	w := doJSON(t, s1, "POST", "/v1/jobs", http.Header{"Content-Type": {"application/json"}}, []byte(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	first := awaitJob(t, s1, decodeRecord(t, w).ID)
	if first.State != jobs.StateDone || first.Cached {
		t.Fatalf("first run = %+v", first)
	}

	// "Restart": a second server over the same directory serves the old
	// job id and recalls the result for an identical submission.
	s2 := MustNew(Config{MaxConcurrentSweeps: 2, JobsDir: dir})
	if got := decodeRecord(t, doJSON(t, s2, "GET", "/v1/jobs/"+first.ID, nil, nil)); got.State != jobs.StateDone {
		t.Fatalf("restarted replica Get = %+v", got)
	}
	hitsBefore := vars.jobsResultHits.Value()
	w2 := doJSON(t, s2, "POST", "/v1/jobs", http.Header{"Content-Type": {"application/json"}}, []byte(body))
	if w2.Code != http.StatusAccepted {
		t.Fatalf("resubmit = %d: %s", w2.Code, w2.Body)
	}
	recalled := decodeRecord(t, w2)
	if recalled.State != jobs.StateDone || !recalled.Cached {
		t.Fatalf("recalled record = state %s cached %v", recalled.State, recalled.Cached)
	}
	if string(recalled.Result) != string(first.Result) {
		t.Fatal("recalled result differs from the original")
	}
	if got := vars.jobsResultHits.Value() - hitsBefore; got != 1 {
		t.Errorf("jobs_result_hits advanced by %d, want 1", got)
	}
}

// TestJobSubmitValidation: submissions fail synchronously with the
// normal error envelope.
func TestJobSubmitValidation(t *testing.T) {
	s := newTestServer(t)
	jsonHdr := http.Header{"Content-Type": {"application/json"}}
	cases := []struct {
		name   string
		header http.Header
		body   string
		status int
		code   string
	}{
		{"malformed body", jsonHdr, `{nope`, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown kernel", jsonHdr, `{"kernel":"nope"}`, http.StatusNotFound, CodeUnknownKernel},
		{"bad options", jsonHdr, `{"kernel":"matadd","options":{"tilings":[0]}}`, http.StatusBadRequest, CodeInvalidOptions},
		{"trace kind in JSON body", jsonHdr, `{"kind":"explore-trace"}`, http.StatusBadRequest, CodeInvalidRequest},
		{"alien kind", jsonHdr, `{"kind":"aggregate","kernel":"matadd"}`, http.StatusBadRequest, CodeInvalidRequest},
		{"bad header options", http.Header{OptionsHeader: {`{"bogus":1}`}}, "0 10\n", http.StatusBadRequest, CodeInvalidOptions},
		{"bad kind in header", http.Header{OptionsHeader: {`{"kind":"explore"}`}}, "0 10\n", http.StatusBadRequest, CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doJSON(t, s, "POST", "/v1/jobs", tc.header, []byte(tc.body))
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d (%s)", w.Code, tc.status, w.Body)
			}
			if e := decodeError(t, w); e.Code != tc.code {
				t.Errorf("code = %q, want %q", e.Code, tc.code)
			}
		})
	}
}

// TestJobUnknownID: all three job readers 404 with the envelope.
func TestJobUnknownID(t *testing.T) {
	s := newTestServer(t)
	for _, req := range []struct{ method, path string }{
		{"GET", "/v1/jobs/zzz"},
		{"DELETE", "/v1/jobs/zzz"},
		{"GET", "/v1/jobs/zzz/events"},
	} {
		w := doJSON(t, s, req.method, req.path, nil, nil)
		if w.Code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", req.method, req.path, w.Code)
			continue
		}
		if e := decodeError(t, w); e.Code != CodeUnknownJob {
			t.Errorf("%s %s code = %q", req.method, req.path, e.Code)
		}
	}
}

// TestJobsDraining: Shutdown waits for accepted jobs and rejects new
// submissions with 503.
func TestJobsDraining(t *testing.T) {
	s := newTestServer(t)
	din := bigDin(t, 100000)
	w := doJSON(t, s, "POST", "/v1/jobs", http.Header{OptionsHeader: {traceHeaderJSON}}, din)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	rec := decodeRecord(t, w)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with running job: %v", err)
	}
	// The drain outlasted the job: it must be terminal and done.
	if got := decodeRecord(t, doJSON(t, s, "GET", "/v1/jobs/"+rec.ID, nil, nil)); got.State != jobs.StateDone {
		t.Fatalf("drained job = %s", got.State)
	}
	// New submissions bounce.
	w2 := doJSON(t, s, "POST", "/v1/jobs", http.Header{"Content-Type": {"application/json"}}, []byte(`{"kernel":"matadd"}`))
	if w2.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d", w2.Code)
	}
	if e := decodeError(t, w2); e.Code != CodeDraining {
		t.Errorf("code = %q", e.Code)
	}
}
