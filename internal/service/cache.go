package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// resultCache is a content-addressed LRU cache of completed sweep
// results. Keys are canonical hashes of (kernel source, normalized
// options) — see cacheKey — so two requests that describe the same sweep
// in different ways (shuffled candidate lists, defaulted fields) hit the
// same entry. Values are immutable once inserted: handlers must not
// mutate a cached result.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val any
}

// newResultCache builds a cache holding at most capacity entries;
// capacity ≤ 0 disables caching (every Get misses, Add is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *resultCache) Get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *resultCache) Add(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey hashes the canonical parts of a request into a content
// address. Parts are joined with a NUL separator so concatenation is
// unambiguous.
func cacheKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
