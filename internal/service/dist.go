package service

// The distributed sweep coordinator. A trace request with shards = N
// (≥ 2 effective) is split by the deterministic pass-unit partition
// core.TraceShardPlan derives from (options, N): shard 0 always runs in
// this process, the remaining shards are dispatched round-robin to the
// configured peer replicas as ordinary child jobs on the existing
// /v1/jobs wire — a TraceRequest whose Shard field addresses one slice
// of the plan. Peers re-derive the identical plan from the options, so
// the wire carries an index and a count, never a config list. When this
// replica has a shared filesystem job store, the trace body is published
// there once as a content-hash blob and children carry only the
// trace_ref; a peer that cannot resolve the ref (separate store, blob
// reaped) answers unknown_trace_ref and the coordinator re-ships the
// body to that peer only. Any other peer failure falls back to local
// execution of that shard, so a dead peer degrades throughput, never
// correctness. Merged metrics are bit-identical to the single-process
// sweep — the property the whole design is built around (see
// core/distsweep.go) — and the coordinator's own shard 0 pass supplies
// the IngestStats, which every shard computes identically.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"memexplore/internal/core"
	"memexplore/internal/extrace"
	"memexplore/internal/jobs"
)

// peerPollInterval paces child-job status polling. Peers are LAN-local
// replicas; a short interval keeps shard latency low without SSE
// plumbing.
const peerPollInterval = 20 * time.Millisecond

// effectiveShards resolves a request's distributed shard count: the
// explicit shards value, with -1 (auto) meaning one shard per replica
// (this one plus every peer). 0 or 1 — and any shard-execution request,
// which must never re-distribute — mean plain local execution.
func (s *Server) effectiveShards(tq traceQuery) int {
	if tq.shard != nil {
		return 0
	}
	n := tq.shards
	if n == -1 {
		n = len(s.cfg.Peers) + 1
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// resolveTraceRef fetches the trace blob a request's trace_ref names
// from the shared filesystem store.
func (s *Server) resolveTraceRef(ref string) ([]byte, error) {
	if s.fsStore == nil {
		return nil, httpError(http.StatusNotFound, CodeUnknownTraceRef,
			"trace_ref requires a shared filesystem job store (run with -jobs-dir)", "")
	}
	data, ok, err := s.fsStore.GetBlob(ref)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, httpError(http.StatusNotFound, CodeUnknownTraceRef,
			fmt.Sprintf("no trace blob %s in the shared store", ref), "")
	}
	return data, nil
}

// jobReporterKey carries the async job's *jobs.Reporter on the context,
// so the coordinator can register dispatched child jobs on the parent
// record (store cleanup cascades through them).
type jobReporterKey struct{}

func withJobReporter(ctx context.Context, rep *jobs.Reporter) context.Context {
	return context.WithValue(ctx, jobReporterKey{}, rep)
}

func jobReporterFrom(ctx context.Context) *jobs.Reporter {
	rep, _ := ctx.Value(jobReporterKey{}).(*jobs.Reporter)
	return rep
}

// distTraceSweep is the coordinator: buffer the trace, publish it to the
// shared blob tier, fan each shard of the n-way plan out to an executor
// (local for shard 0 and whenever there are no peers; a peer child job
// otherwise, with local fallback on failure), and merge the per-shard
// metrics back into Space() order. The merged result is bit-identical to
// traceSweep's on the same bytes.
func (s *Server) distTraceSweep(ctx context.Context, body io.Reader, tq traceQuery, n int, tracked bool) ([]core.Metrics, extrace.IngestStats, error) {
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, extrace.IngestStats{}, err
	}
	plan, err := core.TraceShardPlan(tq.opts, n)
	if err != nil {
		return nil, extrace.IngestStats{}, err
	}
	if len(plan) < 2 {
		// The sweep has a single pass unit: nothing to distribute.
		return s.traceSweep(ctx, bytes.NewReader(data), tq, tracked)
	}

	blobRef := ""
	if s.fsStore != nil && len(s.cfg.Peers) > 0 {
		sum := sha256.Sum256(data)
		ref := hex.EncodeToString(sum[:])
		if err := s.fsStore.PutBlob(ref, data); err == nil {
			blobRef = ref // best-effort: on failure the body ships instead
		}
	}

	progress := core.ProgressFromContext(ctx)
	rep := jobReporterFrom(ctx)
	type legResult struct {
		ms  []core.Metrics
		st  extrace.IngestStats
		err error
	}
	legs := make([]legResult, len(plan))
	var wg sync.WaitGroup
	for i := range plan {
		peer := ""
		if i > 0 && len(s.cfg.Peers) > 0 {
			peer = s.cfg.Peers[(i-1)%len(s.cfg.Peers)]
		}
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			vars.distShardsDispatched.Add(1)
			if peer != "" {
				ms, err := s.peerShard(ctx, peer, data, blobRef, tq, i, n, rep)
				if err == nil {
					legs[i] = legResult{ms: ms}
					if progress != nil {
						progress(core.ProgressEvent{Points: int64(len(plan[i]))})
					}
					return
				}
				if ctx.Err() != nil {
					// Canceled, not a peer fault; don't burn a local pass.
					legs[i] = legResult{err: err}
					return
				}
				vars.distPeerFailures.Add(1)
			}
			// Local execution: shard 0 always, peerless shards, and the
			// fallback leg of a failed peer dispatch.
			tqs := tq
			tqs.shards = 0
			tqs.shard = &ShardSpec{Index: i, Count: n}
			ms, st, err := s.traceSweep(ctx, bytes.NewReader(data), tqs, tracked)
			legs[i] = legResult{ms: ms, st: st, err: err}
			if err == nil && progress != nil {
				progress(core.ProgressEvent{Points: int64(len(plan[i]))})
			}
		}(i, peer)
	}
	wg.Wait()

	parts := make([][]core.Metrics, len(plan))
	var st extrace.IngestStats
	haveStats := false
	for i := range legs {
		if legs[i].err != nil {
			return nil, extrace.IngestStats{}, legs[i].err
		}
		parts[i] = legs[i].ms
		if !haveStats && legs[i].st.Records > 0 {
			// Every shard ingests the identical stream, so any local leg's
			// stats stand for the whole sweep; shard 0 is always local.
			st = legs[i].st
			haveStats = true
		}
	}
	merged, err := core.MergeTraceShards(tq.opts, n, parts)
	if err != nil {
		return nil, extrace.IngestStats{}, err
	}
	return merged, st, nil
}

// peerError is a failure reported by a peer replica's error envelope,
// preserving the machine-readable code for retry decisions.
type peerError struct {
	status int
	detail ErrorDetail
}

func (e *peerError) Error() string {
	return fmt.Sprintf("peer replied %d %s: %s", e.status, e.detail.Code, e.detail.Message)
}

// isUnknownTraceRef reports whether err is a peer rejecting a trace_ref
// it cannot resolve — the one failure the coordinator retries with the
// full body instead of falling back to local execution.
func isUnknownTraceRef(err error) bool {
	var pe *peerError
	return errors.As(err, &pe) && pe.detail.Code == CodeUnknownTraceRef
}

// shardHeader builds the X-Memexplore-Options document of a child shard
// job: the parent's normalized options (Workers and Engine are local
// knobs outside the wire form, so the peer resolves its own), the ingest
// limits that shape the metrics, and the shard address. Bounds are
// omitted: Best is recomputed by the coordinator over the merged sweep.
func shardHeader(tq traceQuery, index, count int, traceRef string) string {
	return mustJSON(TraceRequest{
		Kind:          KindExploreTrace,
		Options:       json.RawMessage(mustJSON(tq.opts)),
		MaxRecords:    tq.ing.MaxRecords,
		SkipMalformed: tq.ing.SkipMalformed,
		Shard:         &ShardSpec{Index: index, Count: count},
		TraceRef:      traceRef,
	})
}

// peerShard runs one shard on a peer replica: submit the child job
// (trace_ref first when a blob was published, body on unknown_trace_ref
// or when there is no shared store), poll it to a terminal state, and
// decode the shard metrics. Parent cancellation propagates: the child
// job is canceled on the peer before the error returns.
func (s *Server) peerShard(ctx context.Context, peer string, body []byte, blobRef string, tq traceQuery, index, count int, rep *jobs.Reporter) ([]core.Metrics, error) {
	var rec jobs.Record
	var err error
	if blobRef != "" {
		rec, err = s.submitPeerJob(ctx, peer, shardHeader(tq, index, count, blobRef), nil)
		if isUnknownTraceRef(err) {
			blobRef = "" // peer cannot see the blob: ship the bytes below
		} else if err != nil {
			return nil, err
		}
	}
	if blobRef == "" {
		rec, err = s.submitPeerJob(ctx, peer, shardHeader(tq, index, count, ""), body)
		if err != nil {
			return nil, err
		}
		vars.distBytesShipped.Add(int64(len(body)))
	}
	if rep != nil {
		rep.AddChild(rec.ID)
	}
	rec, err = s.awaitPeerJob(ctx, peer, rec.ID)
	if err != nil {
		return nil, err
	}
	switch rec.State {
	case jobs.StateDone:
		var resp TraceExploreResponse
		if err := json.Unmarshal(rec.Result, &resp); err != nil {
			return nil, fmt.Errorf("service: decoding shard %d/%d result from %s: %w", index, count, peer, err)
		}
		return resp.Metrics, nil
	case jobs.StateFailed:
		d := ErrorDetail{Code: CodeInternal, Message: "shard job failed without detail"}
		if rec.Error != nil {
			d = ErrorDetail{Code: rec.Error.Code, Message: rec.Error.Message, Field: rec.Error.Field}
		}
		return nil, &peerError{status: http.StatusInternalServerError, detail: d}
	default: // canceled on the peer (operator action): treat as peer failure
		return nil, fmt.Errorf("service: shard %d/%d job on %s ended %s", index, count, peer, rec.State)
	}
}

// submitPeerJob POSTs a child shard job to a peer's /v1/jobs.
func (s *Server) submitPeerJob(ctx context.Context, peer, header string, body []byte) (jobs.Record, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return jobs.Record{}, fmt.Errorf("service: building peer submission: %w", err)
	}
	req.Header.Set(OptionsHeader, header)
	return s.doPeerJob(req, http.StatusAccepted)
}

// awaitPeerJob polls a child job to a terminal state. On parent
// cancellation it cancels the child on the peer (best effort, fresh
// context — the parent's is already dead) before returning.
func (s *Server) awaitPeerJob(ctx context.Context, peer, id string) (jobs.Record, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/jobs/"+id, nil)
		if err != nil {
			return jobs.Record{}, fmt.Errorf("service: building peer poll: %w", err)
		}
		rec, err := s.doPeerJob(req, http.StatusOK)
		if err != nil {
			if ctx.Err() != nil {
				s.cancelPeerJob(peer, id)
				return jobs.Record{}, fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
			}
			return jobs.Record{}, err
		}
		if rec.State.Terminal() {
			return rec, nil
		}
		select {
		case <-time.After(peerPollInterval):
		case <-ctx.Done():
			s.cancelPeerJob(peer, id)
			return jobs.Record{}, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
		}
	}
}

// cancelPeerJob DELETEs a child job on its peer under a short fresh
// deadline; failures are ignored — the peer's own lifecycle (or the
// store janitor) collects orphans eventually.
func (s *Server) cancelPeerJob(peer, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, peer+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := s.peerClient.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// doPeerJob executes one peer request and decodes the job record reply,
// mapping non-success statuses through the peer's error envelope.
func (s *Server) doPeerJob(req *http.Request, wantStatus int) (jobs.Record, error) {
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return jobs.Record{}, fmt.Errorf("service: reaching peer %s: %w", req.URL.Host, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return jobs.Record{}, fmt.Errorf("service: reading peer reply: %w", err)
	}
	if resp.StatusCode != wantStatus {
		var eb ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Code != "" {
			return jobs.Record{}, &peerError{status: resp.StatusCode, detail: eb.Error}
		}
		return jobs.Record{}, &peerError{status: resp.StatusCode,
			detail: ErrorDetail{Code: CodeInternal, Message: fmt.Sprintf("unexpected peer status %d", resp.StatusCode)}}
	}
	var rec jobs.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return jobs.Record{}, fmt.Errorf("service: decoding peer job record: %w", err)
	}
	return rec, nil
}
