// Package report renders aligned text tables in the style of the paper's
// figures, for the CLI tools and the experiment harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row. Missing cells render empty; extra cells are an error.
func (t *Table) Add(cells ...string) error {
	if len(cells) > len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// MustAdd appends a row and panics on arity errors (programmer error).
func (t *Table) MustAdd(cells ...string) {
	if err := t.Add(cells...); err != nil {
		panic(err)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	formatRow := func(cells []string) string {
		var row strings.Builder
		for i, cell := range cells {
			if i > 0 {
				row.WriteString("  ")
			}
			row.WriteString(cell)
			row.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		return strings.TrimRight(row.String(), " ")
	}
	sb.WriteString(formatRow(t.Columns))
	sb.WriteByte('\n')
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total >= 2 {
		total -= 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		sb.WriteString(formatRow(row))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return sb.String()
}

// F formats a float compactly: integers without decimals, small values
// with four significant decimals.
func F(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v < 1 && v > -1 {
		return fmt.Sprintf("%.4f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// U formats a uint64.
func U(v uint64) string { return fmt.Sprintf("%d", v) }
