package report

import (
	"fmt"
	"io"
	"strings"
)

// BarRow is one bar of a chart.
type BarRow struct {
	Label string
	Value float64
}

// BarChart renders a horizontal ASCII bar chart — the terminal stand-in
// for the paper's figures. Bars scale to the maximum value; negative
// values are clamped to zero.
type BarChart struct {
	Title string
	// Width is the maximum bar width in characters (default 40).
	Width int
	rows  []BarRow
}

// NewBarChart creates a chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, Width: 40}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.rows = append(c.rows, BarRow{Label: label, Value: value})
}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	labelW := 0
	max := 0.0
	for _, r := range c.rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		if r.Value > max {
			max = r.Value
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for _, r := range c.rows {
		v := r.Value
		if v < 0 {
			v = 0
		}
		n := 0
		if max > 0 {
			n = int(v/max*float64(width) + 0.5)
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%-*s  %s %s\n", labelW, r.Label, strings.Repeat("#", n), F(r.Value))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		return fmt.Sprintf("report: chart render failed: %v", err)
	}
	return sb.String()
}
