package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("Figure X", "config", "missrate", "energy")
	tb.MustAdd("C16L4", "0.1250", "1234")
	tb.MustAdd("C512L64", "0.0100", "56789")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "Figure X" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "config ") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns align: "missrate" starts at the same offset in each row.
	hIdx := strings.Index(lines[1], "missrate")
	rIdx := strings.Index(lines[3], "0.1250")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
	// No trailing spaces.
	for i, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Errorf("line %d has trailing spaces: %q", i, l)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.MustAdd("1")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Errorf("empty title should not emit a blank line: %q", out)
	}
}

func TestAddArity(t *testing.T) {
	tb := New("t", "a", "b")
	if err := tb.Add("1"); err != nil {
		t.Errorf("short row should pad: %v", err)
	}
	if err := tb.Add("1", "2", "3"); err == nil {
		t.Error("long row should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on arity error")
		}
	}()
	tb.MustAdd("1", "2", "3")
}

func TestRows(t *testing.T) {
	tb := New("t", "a")
	if tb.Rows() != 0 {
		t.Error("fresh table should have 0 rows")
	}
	tb.MustAdd("x")
	if tb.Rows() != 1 {
		t.Error("Rows should count added rows")
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{0.5, "0.5000"},
		{0.12345, "0.1235"},
		{1234.56, "1234.6"},
	}
	for _, c := range cases {
		if got := F(c.v); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if I(7) != "7" {
		t.Error("I")
	}
	if U(9) != "9" {
		t.Error("U")
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("energy by config")
	c.Add("C16L4", 100)
	c.Add("C512L64", 50)
	c.Add("zero", 0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "energy by config" {
		t.Errorf("title = %q", lines[0])
	}
	big := strings.Count(lines[1], "#")
	small := strings.Count(lines[2], "#")
	none := strings.Count(lines[3], "#")
	if big != 40 {
		t.Errorf("max bar = %d, want 40", big)
	}
	if small != 20 {
		t.Errorf("half bar = %d, want 20", small)
	}
	if none != 0 {
		t.Errorf("zero bar = %d, want 0", none)
	}
}

func TestBarChartTinyValuesVisible(t *testing.T) {
	c := NewBarChart("")
	c.Add("huge", 1e9)
	c.Add("tiny", 1)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// With no title, lines[1] is the "tiny" bar.
	if strings.Count(lines[1], "#") < 1 {
		t.Error("tiny non-zero value should render at least one mark")
	}
	// Negative values clamp to zero-width bars.
	c2 := NewBarChart("")
	c2.Add("neg", -5)
	if strings.Contains(c2.String(), "#") {
		t.Error("negative bar should be empty")
	}
}

func TestBarChartCustomWidth(t *testing.T) {
	c := NewBarChart("")
	c.Width = 10
	c.Add("a", 10)
	if got := strings.Count(c.String(), "#"); got != 10 {
		t.Errorf("bar width = %d, want 10", got)
	}
	c.Width = 0 // falls back to default
	if got := strings.Count(c.String(), "#"); got != 40 {
		t.Errorf("default width = %d, want 40", got)
	}
}
