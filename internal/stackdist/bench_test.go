package stackdist

import (
	"testing"

	"memexplore/internal/trace"
)

// BenchmarkCompute measures the full-trace reuse-distance pass.
func BenchmarkCompute(b *testing.B) {
	tr := trace.Loop(0, 8192, 4, 4)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(tr, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputePerSet measures the per-set Mattson pass.
func BenchmarkComputePerSet(b *testing.B) {
	tr := trace.Loop(0, 8192, 4, 4)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputePerSet(tr, 8, 16); err != nil {
			b.Fatal(err)
		}
	}
}
