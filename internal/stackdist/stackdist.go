// Package stackdist computes LRU stack (reuse) distances and working-set
// profiles of memory-reference traces. One pass over a trace yields the
// miss rate of *every* fully associative LRU cache size simultaneously
// (Mattson's stack algorithm), which both cross-checks the trace-driven
// simulator and explains the capacity knees the exploration sweeps
// exhibit: a kernel's miss-rate-vs-size curve steps exactly where its
// reuse-distance histogram has mass.
//
// Distances are measured in cache lines for a given line size. Distance d
// means d distinct other lines were touched since the previous access to
// this line; a fully associative LRU cache of capacity > d lines hits it.
// First touches have infinite distance (compulsory misses).
package stackdist

import (
	"fmt"
	"sort"

	"memexplore/internal/trace"
)

// Histogram is the reuse-distance profile of a trace for one line size.
type Histogram struct {
	// LineBytes is the line granularity distances were measured at.
	LineBytes int
	// Counts[d] is the number of accesses with stack distance exactly d.
	// Index 0 means "the line is the most recently used" (immediate
	// re-reference).
	Counts []uint64
	// Cold is the number of first-touch (infinite-distance) accesses —
	// the distinct lines of the trace.
	Cold uint64
	// Total is the number of accesses profiled.
	Total uint64
}

// Compute builds the reuse-distance histogram of a trace at the given
// line size in O(N log N) time using Bennett & Kruskal's formulation:
// keep one marker per distinct line at its last-use time in a Fenwick
// tree; an access's stack distance is the number of markers strictly
// between its line's previous use and now.
func Compute(tr *trace.Trace, lineBytes int) (*Histogram, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("stackdist: line size %d must be a positive power of two", lineBytes)
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	h := &Histogram{LineBytes: lineBytes}
	n := tr.Len()
	bit := newFenwick(n + 1)
	lastUse := make(map[uint64]int, 64) // line -> 1-based time of last use
	for i := 0; i < n; i++ {
		la := tr.At(i).Addr >> shift
		t := i + 1
		h.Total++
		t0, seen := lastUse[la]
		if !seen {
			h.Cold++
		} else {
			// Markers strictly after t0: each is a distinct line touched
			// since (every line keeps exactly one marker, at its last use).
			d := bit.sum(n) - bit.sum(t0)
			for len(h.Counts) <= d {
				h.Counts = append(h.Counts, 0)
			}
			h.Counts[d]++
			bit.add(t0, -1)
		}
		bit.add(t, 1)
		lastUse[la] = t
	}
	return h, nil
}

// fenwick is a binary indexed tree over 1-based positions.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

// add adds v at position i (1-based).
func (f *fenwick) add(i, v int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += v
	}
}

// sum returns the prefix sum over [1, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// hitsBelow sums the histogram mass at distances strictly below bound —
// the hit count of a capacity-bound LRU cache. Shared by the
// fully-associative Histogram (bound = capacity in lines) and the
// per-set SetHistogram (bound = associativity).
func hitsBelow(counts []uint64, bound int) uint64 {
	if bound > len(counts) {
		bound = len(counts)
	}
	hits := uint64(0)
	for d := 0; d < bound; d++ {
		hits += counts[d]
	}
	return hits
}

// MissRate returns the miss rate of a fully associative LRU cache with
// the given number of lines: accesses whose distance ≥ capacity miss,
// plus all cold misses.
func (h *Histogram) MissRate(capacityLines int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Misses(capacityLines)) / float64(h.Total)
}

// Misses returns the absolute miss count at the given capacity.
func (h *Histogram) Misses(capacityLines int) uint64 {
	return h.Total - hitsBelow(h.Counts, capacityLines)
}

// Curve evaluates the miss-rate-vs-capacity curve at the given line
// counts, returning one rate per capacity.
func (h *Histogram) Curve(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = h.MissRate(c)
	}
	return out
}

// Knees returns the capacities (in lines) where the miss rate drops by at
// least minDrop, sorted ascending — the working-set sizes of the trace.
func (h *Histogram) Knees(minDrop float64) []int {
	var knees []int
	for d, c := range h.Counts {
		if h.Total == 0 {
			break
		}
		drop := float64(c) / float64(h.Total)
		if drop >= minDrop {
			knees = append(knees, d+1)
		}
	}
	sort.Ints(knees)
	return knees
}

// MaxDistance returns the largest finite distance observed (-1 if all
// accesses were cold).
func (h *Histogram) MaxDistance() int {
	for d := len(h.Counts) - 1; d >= 0; d-- {
		if h.Counts[d] > 0 {
			return d
		}
	}
	return -1
}

// WorkingSet reports the number of distinct lines the trace touches.
func (h *Histogram) WorkingSet() uint64 { return h.Cold }
