package stackdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memexplore/internal/cachesim"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

func TestComputeArgs(t *testing.T) {
	tr := trace.Sequential(0, 4, 1)
	for _, bad := range []int{0, -1, 3, 12} {
		if _, err := Compute(tr, bad); err == nil {
			t.Errorf("line size %d should be rejected", bad)
		}
	}
}

func TestSimpleDistances(t *testing.T) {
	// Lines (at L=1): A B A C B A
	tr := trace.FromRefs([]trace.Ref{
		{Addr: 0}, {Addr: 1}, {Addr: 0}, {Addr: 2}, {Addr: 1}, {Addr: 0},
	})
	h, err := Compute(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cold != 3 {
		t.Errorf("cold = %d, want 3", h.Cold)
	}
	if h.Total != 6 {
		t.Errorf("total = %d, want 6", h.Total)
	}
	// Distances: A@2 -> 1 (B above), B@4 -> 2 (C,A above), A@5 -> 2 (B,C).
	want := []uint64{0, 1, 2}
	if len(h.Counts) != len(want) {
		t.Fatalf("counts = %v", h.Counts)
	}
	for d, w := range want {
		if h.Counts[d] != w {
			t.Errorf("Counts[%d] = %d, want %d", d, h.Counts[d], w)
		}
	}
	if h.MaxDistance() != 2 {
		t.Errorf("max distance = %d", h.MaxDistance())
	}
	if h.WorkingSet() != 3 {
		t.Errorf("working set = %d", h.WorkingSet())
	}
}

func TestMissRateFromHistogram(t *testing.T) {
	tr := trace.FromRefs([]trace.Ref{
		{Addr: 0}, {Addr: 1}, {Addr: 0}, {Addr: 2}, {Addr: 1}, {Addr: 0},
	})
	h, _ := Compute(tr, 1)
	// Capacity 3: everything non-cold hits -> 3 misses of 6.
	if got := h.MissRate(3); got != 0.5 {
		t.Errorf("missrate(3) = %v, want 0.5", got)
	}
	// Capacity 2: distances 2 miss -> 5 misses of 6.
	if got := h.MissRate(2); got != 5.0/6.0 {
		t.Errorf("missrate(2) = %v", got)
	}
	if got := h.MissRate(0); got != 1 {
		t.Errorf("missrate(0) = %v, want 1", got)
	}
	if got := h.Misses(3); got != 3 {
		t.Errorf("misses(3) = %d", got)
	}
	if (&Histogram{}).MissRate(4) != 0 {
		t.Error("empty histogram should report 0")
	}
}

func TestCurveMonotone(t *testing.T) {
	n := kernels.SOR()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	h, err := Compute(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{1, 2, 4, 8, 16, 32, 64, 128}
	curve := h.Curve(caps)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Errorf("miss rate not non-increasing: %v", curve)
		}
	}
	// With capacity beyond the max distance only cold misses remain.
	rate := h.MissRate(h.MaxDistance() + 2)
	want := float64(h.Cold) / float64(h.Total)
	if rate != want {
		t.Errorf("asymptotic rate %v, want cold rate %v", rate, want)
	}
}

// The central cross-check: the histogram's predicted miss rate at
// capacity K must exactly equal the simulator's fully associative LRU
// cache of K lines, for every kernel and several geometries.
func TestMatchesFullyAssociativeSimulator(t *testing.T) {
	for _, n := range kernels.PaperBenchmarks() {
		tr, err := n.Generate(loopir.SequentialLayout(n, 0))
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		for _, geo := range []struct{ line, lines int }{{4, 8}, {8, 8}, {8, 16}, {16, 4}} {
			h, err := Compute(tr, geo.line)
			if err != nil {
				t.Fatal(err)
			}
			cfg := cachesim.DefaultConfig(geo.line*geo.lines, geo.line, geo.lines)
			st, err := cachesim.RunTrace(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := h.Misses(geo.lines), st.Misses; got != want {
				t.Errorf("%s at L%d/%d lines: stackdist misses %d, simulator %d",
					n.Name, geo.line, geo.lines, got, want)
			}
		}
	}
}

func TestKnees(t *testing.T) {
	// A loop over a 16-line region: every non-cold access has distance 15,
	// so the single knee is at capacity 16.
	tr := trace.Loop(0, 16*8, 8, 4)
	h, err := Compute(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	knees := h.Knees(0.1)
	if len(knees) != 1 || knees[0] != 16 {
		t.Errorf("knees = %v, want [16]", knees)
	}
	if got := h.Knees(0.99); len(got) != 0 {
		t.Errorf("impossible drop threshold should give no knees: %v", got)
	}
}

// Property: for random traces, histogram accounting holds: cold + sum of
// counts == total, and the capacity-∞ miss count equals cold.
func TestQuickAccounting(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.Random(rng, 0, 512, int(n%800)+1)
		h, err := Compute(tr, 4)
		if err != nil {
			return false
		}
		var hits uint64
		for _, c := range h.Counts {
			hits += c
		}
		if h.Cold+hits != h.Total {
			return false
		}
		return h.Misses(h.MaxDistance()+1) == h.Cold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: stackdist misses equal the fully associative simulator on
// random traces across random capacities.
func TestQuickMatchesSimulator(t *testing.T) {
	f := func(seed int64, capExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.Random(rng, 0, 1024, 500)
		lines := 1 << (capExp%5 + 1) // 2..32
		h, err := Compute(tr, 8)
		if err != nil {
			return false
		}
		cfg := cachesim.DefaultConfig(8*lines, 8, lines)
		st, err := cachesim.RunTrace(cfg, tr)
		if err != nil {
			return false
		}
		return h.Misses(lines) == st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(8)
	f.add(1, 1)
	f.add(4, 2)
	f.add(8, 3)
	if got := f.sum(0); got != 0 {
		t.Errorf("sum(0) = %d", got)
	}
	if got := f.sum(3); got != 1 {
		t.Errorf("sum(3) = %d", got)
	}
	if got := f.sum(4); got != 3 {
		t.Errorf("sum(4) = %d", got)
	}
	if got := f.sum(8); got != 6 {
		t.Errorf("sum(8) = %d", got)
	}
	f.add(4, -2)
	if got := f.sum(8); got != 4 {
		t.Errorf("after removal sum(8) = %d", got)
	}
}
