package stackdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memexplore/internal/cachesim"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

func TestComputePerSetArgs(t *testing.T) {
	tr := trace.Sequential(0, 4, 1)
	if _, err := ComputePerSet(tr, 3, 4); err == nil {
		t.Error("non-power-of-two line should fail")
	}
	if _, err := ComputePerSet(tr, 4, 3); err == nil {
		t.Error("non-power-of-two sets should fail")
	}
	if _, err := ComputePerSet(tr, 4, 0); err == nil {
		t.Error("zero sets should fail")
	}
}

// The headline property: one per-set pass predicts the exact miss count of
// every associativity, matching the simulator for A ∈ {1, 2, 4, 8}.
func TestPerSetMatchesSimulatorAllAssociativities(t *testing.T) {
	for _, n := range kernels.PaperBenchmarks() {
		tr, err := n.Generate(loopir.SequentialLayout(n, 0))
		if err != nil {
			t.Fatal(err)
		}
		const line, sets = 8, 8
		h, err := ComputePerSet(tr, line, sets)
		if err != nil {
			t.Fatal(err)
		}
		for _, assoc := range []int{1, 2, 4, 8} {
			cfg := cachesim.DefaultConfig(line*sets*assoc, line, assoc)
			st, err := cachesim.RunTrace(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := h.Misses(assoc), st.Misses; got != want {
				t.Errorf("%s A=%d: per-set predicts %d misses, simulator %d",
					n.Name, assoc, got, want)
			}
		}
	}
}

func TestPerSetAccounting(t *testing.T) {
	tr := trace.PingPong(0, 64, 10) // same set of an 8-set/8B mapping
	h, err := ComputePerSet(tr, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cold != 2 || h.Total != 20 {
		t.Errorf("cold=%d total=%d", h.Cold, h.Total)
	}
	// All non-cold accesses are at within-set distance 1.
	if h.Counts[1] != 18 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Misses(1) != 20 {
		t.Errorf("direct-mapped misses = %d, want 20", h.Misses(1))
	}
	if h.Misses(2) != 2 {
		t.Errorf("2-way misses = %d, want 2", h.Misses(2))
	}
	if h.Misses(0) != h.Total {
		t.Error("assoc 0 should miss everything")
	}
	if got := h.MissRate(2); got != 0.1 {
		t.Errorf("MissRate(2) = %v", got)
	}
	curve := h.AssocCurve([]int{1, 2, 4})
	if curve[0] != 1 || curve[1] != 0.1 || curve[2] != 0.1 {
		t.Errorf("curve = %v", curve)
	}
}

// TestPerSetWritebacksMatchSimulator checks the dirty-depth derivation:
// one per-set pass over a read/write trace predicts the exact write-back
// count of every write-back, write-allocate LRU associativity.
func TestPerSetWritebacksMatchSimulator(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.New(600)
		for i := 0; i < 600; i++ {
			kind := trace.Read
			if rng.Intn(3) == 0 {
				kind = trace.Write
			}
			// 4-aligned 4-byte references never span an 8-byte line, so the
			// per-reference profile and the simulator see the same touches.
			tr.Append(trace.Ref{Addr: uint64(rng.Intn(128)) * 4, Kind: kind, Size: 4})
		}
		const line, sets = 8, 4
		h, err := ComputePerSet(tr, line, sets)
		if err != nil {
			t.Fatal(err)
		}
		for _, assoc := range []int{1, 2, 4, 8} {
			cfg := cachesim.DefaultConfig(line*sets*assoc, line, assoc)
			st, err := cachesim.RunTraceFast(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := h.Writebacks(assoc), st.WriteBacks; got != want {
				t.Errorf("seed %d A=%d: per-set predicts %d write-backs, simulator %d",
					seed, assoc, got, want)
			}
			if got, want := h.Misses(assoc), st.Misses; got != want {
				t.Errorf("seed %d A=%d: per-set predicts %d misses, simulator %d",
					seed, assoc, got, want)
			}
		}
	}
}

func TestPerSetEmpty(t *testing.T) {
	h, err := ComputePerSet(trace.New(0), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.MissRate(4) != 0 {
		t.Error("empty trace should report 0")
	}
}

// Property: per-set misses are non-increasing in associativity (LRU
// inclusion), and agree with the simulator on random traces.
func TestQuickPerSetInclusionAndExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.Random(rng, 0, 1024, 400)
		h, err := ComputePerSet(tr, 8, 4)
		if err != nil {
			return false
		}
		prev := h.Misses(1)
		for _, a := range []int{2, 4, 8} {
			m := h.Misses(a)
			if m > prev {
				return false
			}
			prev = m
		}
		cfg := cachesim.DefaultConfig(8*4*2, 8, 2)
		st, err := cachesim.RunTrace(cfg, tr)
		if err != nil {
			return false
		}
		return h.Misses(2) == st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
