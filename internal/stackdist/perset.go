package stackdist

import (
	"fmt"

	"memexplore/internal/cachesim"
	"memexplore/internal/trace"
)

// SetHistogram is the per-set LRU stack-distance profile of a trace for a
// fixed (line size, set count) mapping. By Mattson's inclusion property,
// a set-associative LRU cache with A ways hits an access iff fewer than A
// distinct lines of the same set were touched since the line's previous
// access — so one pass yields the exact miss count of every
// associativity, and (via the dirty-depth markers the shared stack core
// keeps) the exact write-back count of every write-back cache too.
type SetHistogram struct {
	// LineBytes and Sets fix the mapping.
	LineBytes int
	Sets      int
	// Counts[d] is the number of accesses whose within-set stack distance
	// is exactly d.
	Counts []uint64
	// Cold counts first touches (distinct lines).
	Cold uint64
	// Total is the number of accesses profiled.
	Total uint64
	// WritebackCounts[a] is the number of write-backs an a-way write-back,
	// write-allocate LRU cache with this mapping performs (index 0
	// unused). Entries beyond the deepest stack position reached are
	// absent; Writebacks treats them as zero.
	WritebackCounts []uint64
}

// ComputePerSet builds the per-set stack-distance histogram on the
// simulator's shared per-set LRU stack core (cachesim.PerSetStacks), the
// same structure the inclusion sweep engine runs bounded. Distances are
// per reference at line granularity (the reference's address line; sizes
// are not expanded), and write references feed the dirty-depth markers
// that derive per-associativity write-back counts.
func ComputePerSet(tr *trace.Trace, lineBytes, sets int) (*SetHistogram, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("stackdist: line size %d must be a positive power of two", lineBytes)
	}
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("stackdist: set count %d must be a positive power of two", sets)
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	stacks, err := cachesim.NewPerSetStacks(sets, 0)
	if err != nil {
		return nil, fmt.Errorf("stackdist: %w", err)
	}
	h := &SetHistogram{LineBytes: lineBytes, Sets: sets}
	for i := 0; i < tr.Len(); i++ {
		r := tr.At(i)
		h.Total++
		d := stacks.Touch(r.Addr>>shift, r.Kind == trace.Write)
		if d < 0 {
			h.Cold++
			continue
		}
		for len(h.Counts) <= d {
			h.Counts = append(h.Counts, 0)
		}
		h.Counts[d]++
	}
	h.WritebackCounts = stacks.Writebacks()
	return h, nil
}

// Misses returns the exact miss count of an A-way LRU cache with this
// mapping: cold misses plus accesses at distance ≥ A.
func (h *SetHistogram) Misses(assoc int) uint64 {
	return h.Total - hitsBelow(h.Counts, assoc)
}

// MissRate is Misses(assoc)/Total.
func (h *SetHistogram) MissRate(assoc int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Misses(assoc)) / float64(h.Total)
}

// MissCurve evaluates the exact miss count at each associativity,
// returning one count per entry.
func (h *SetHistogram) MissCurve(assocs []int) []uint64 {
	out := make([]uint64, len(assocs))
	for i, a := range assocs {
		out[i] = h.Misses(a)
	}
	return out
}

// Writebacks returns the exact write-back count of an A-way write-back,
// write-allocate LRU cache with this mapping. Associativities beyond the
// deepest stack position reached write nothing back (they never evicted).
func (h *SetHistogram) Writebacks(assoc int) uint64 {
	if assoc < 1 || assoc >= len(h.WritebackCounts) {
		return 0
	}
	return h.WritebackCounts[assoc]
}

// AssocCurve evaluates the miss rate at each associativity.
func (h *SetHistogram) AssocCurve(assocs []int) []float64 {
	out := make([]float64, len(assocs))
	for i, a := range assocs {
		out[i] = h.MissRate(a)
	}
	return out
}
