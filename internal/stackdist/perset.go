package stackdist

import (
	"fmt"

	"memexplore/internal/trace"
)

// SetHistogram is the per-set LRU stack-distance profile of a trace for a
// fixed (line size, set count) mapping. By Mattson's inclusion property,
// a set-associative LRU cache with A ways hits an access iff fewer than A
// distinct lines of the same set were touched since the line's previous
// access — so one pass yields the exact miss count of every
// associativity.
type SetHistogram struct {
	// LineBytes and Sets fix the mapping.
	LineBytes int
	Sets      int
	// Counts[d] is the number of accesses whose within-set stack distance
	// is exactly d.
	Counts []uint64
	// Cold counts first touches (distinct lines).
	Cold uint64
	// Total is the number of accesses profiled.
	Total uint64
}

// ComputePerSet builds the per-set stack-distance histogram.
func ComputePerSet(tr *trace.Trace, lineBytes, sets int) (*SetHistogram, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("stackdist: line size %d must be a positive power of two", lineBytes)
	}
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("stackdist: set count %d must be a positive power of two", sets)
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	h := &SetHistogram{LineBytes: lineBytes, Sets: sets}
	stacks := make([][]uint64, sets)
	for i := 0; i < tr.Len(); i++ {
		la := tr.At(i).Addr >> shift
		si := la & uint64(sets-1)
		stack := stacks[si]
		h.Total++
		found := -1
		for j, resident := range stack {
			if resident == la {
				found = j
				break
			}
		}
		if found < 0 {
			h.Cold++
			stacks[si] = append([]uint64{la}, stack...)
			continue
		}
		for len(h.Counts) <= found {
			h.Counts = append(h.Counts, 0)
		}
		h.Counts[found]++
		copy(stack[1:found+1], stack[0:found])
		stack[0] = la
	}
	return h, nil
}

// Misses returns the exact miss count of an A-way LRU cache with this
// mapping: cold misses plus accesses at distance ≥ A.
func (h *SetHistogram) Misses(assoc int) uint64 {
	if assoc <= 0 {
		return h.Total
	}
	hits := uint64(0)
	for d, c := range h.Counts {
		if d < assoc {
			hits += c
		}
	}
	return h.Total - hits
}

// MissRate is Misses(assoc)/Total.
func (h *SetHistogram) MissRate(assoc int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Misses(assoc)) / float64(h.Total)
}

// AssocCurve evaluates the miss rate at each associativity.
func (h *SetHistogram) AssocCurve(assocs []int) []float64 {
	out := make([]float64, len(assocs))
	for i, a := range assocs {
		out[i] = h.MissRate(a)
	}
	return out
}
