package cachesim

import "sync"

// linePool recycles the flat per-cache backing arrays across batched
// sweeps: a wide exploration builds and discards a Cache per fallback
// configuration per workload group, and those arrays dominate the
// engine's allocation profile. Arrays are returned via Batch.Release /
// Sweep.Release once their statistics have been read out.
var linePool sync.Pool // stores *[]line

// newLines returns a zeroed line array of length n, reusing a pooled
// array when one is large enough.
func newLines(n int) []line {
	if p, _ := linePool.Get().(*[]line); p != nil && cap(*p) >= n {
		a := (*p)[:n]
		clear(a)
		return a
	}
	return make([]line, n)
}

// releaseLines returns a line array to the pool.
func releaseLines(a []line) {
	if cap(a) > 0 {
		linePool.Put(&a)
	}
}

// release returns the cache's backing array to the pool. The cache must
// not be used afterwards.
func (c *Cache) release() {
	if c.lines != nil {
		releaseLines(c.lines)
		c.lines, c.sets = nil, nil
	}
}
