package cachesim

import (
	"sync"
	"sync/atomic"
)

// linePool recycles the flat per-cache backing arrays across batched
// sweeps: a wide exploration builds and discards a Cache per fallback
// configuration per workload group, and those arrays dominate the
// engine's allocation profile. Arrays are returned via Batch.Release /
// Sweep.Release once their statistics have been read out.
var linePool sync.Pool // stores *[]line

// newLines returns a zeroed line array of length n, reusing a pooled
// array when one is large enough.
func newLines(n int) []line {
	if p, _ := linePool.Get().(*[]line); p != nil && cap(*p) >= n {
		a := (*p)[:n]
		clear(a)
		return a
	}
	return make([]line, n)
}

// poolPuts counts line arrays returned to the pool over the process
// lifetime — a monotonic test hook that lets sweep-teardown tests verify
// Release runs on every path (including error returns) without reaching
// into sync.Pool internals.
var poolPuts atomic.Uint64

// PoolPuts reports how many line arrays have been returned to the
// package pool so far. Tests compare deltas around an operation; the
// counter never decreases.
func PoolPuts() uint64 { return poolPuts.Load() }

// releaseLines returns a line array to the pool.
func releaseLines(a []line) {
	if cap(a) > 0 {
		linePool.Put(&a)
		poolPuts.Add(1)
	}
}

// release returns the cache's backing array to the pool. The cache must
// not be used afterwards.
func (c *Cache) release() {
	if c.lines != nil {
		releaseLines(c.lines)
		c.lines, c.sets = nil, nil
	}
}
