package cachesim

import (
	"math/rand"
	"reflect"
	"testing"

	"memexplore/internal/trace"
)

// shardTestConfigs builds a mixed sweep: several inclusion-eligible
// geometries (multiple associativities per (line, sets)) plus fallback
// configurations (FIFO replacement and singleton geometries).
func shardTestConfigs() []Config {
	var cfgs []Config
	for _, size := range []int{64, 128, 256} {
		for _, line := range []int{8, 16} {
			for _, assoc := range []int{1, 2, 4} {
				cfgs = append(cfgs, DefaultConfig(size, line, assoc))
			}
		}
	}
	fifo := DefaultConfig(128, 8, 2)
	fifo.Replacement = FIFO
	cfgs = append(cfgs, fifo)
	cfgs = append(cfgs, DefaultConfig(512, 64, 4)) // singleton geometry
	return cfgs
}

func shardTestTrace(nrefs int) *trace.Trace {
	rng := rand.New(rand.NewSource(99))
	tr := trace.New(nrefs)
	for i := 0; i < nrefs; i++ {
		kind := trace.Read
		if rng.Intn(4) == 0 {
			kind = trace.Write
		}
		tr.Append(trace.Ref{Addr: uint64(rng.Intn(8192)), Kind: kind, Size: uint8(rng.Intn(3) * 4)})
	}
	return tr
}

// TestShardsCoverAllUnits checks that every pass unit lands in exactly
// one shard, for worker counts below, at and above the unit count.
func TestShardsCoverAllUnits(t *testing.T) {
	cfgs := shardTestConfigs()
	for _, n := range []int{1, 2, 3, 7, 100} {
		s, err := NewSweep(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		shards := s.Shards(n)
		units, weight := 0, 0
		for _, sh := range shards {
			if sh.Units() == 0 {
				t.Errorf("n=%d: empty shard", n)
			}
			units += sh.Units()
			weight += sh.Weight()
		}
		if units != s.PassUnits() {
			t.Errorf("n=%d: shards cover %d units, sweep has %d", n, units, s.PassUnits())
		}
		if want := len(shards); n < want {
			t.Errorf("n=%d produced %d shards", n, want)
		}
		var wantWeight int
		for _, w := range s.unitWeights() {
			wantWeight += w
		}
		if weight != wantWeight {
			t.Errorf("n=%d: shard weights sum to %d, units sum to %d", n, weight, wantWeight)
		}
		s.Release()
	}
}

// TestShardedSweepMatchesSequential drives the same trace through a
// sequential sweep and a sharded one (shards fed round-robin, i.e. any
// serial interleaving) and requires bit-identical statistics.
func TestShardedSweepMatchesSequential(t *testing.T) {
	cfgs := shardTestConfigs()
	tr := shardTestTrace(6000)
	refs := tr.Refs()

	seq, err := NewSweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(refs); start += 512 {
		seq.AccessBlock(refs[start:min(start+512, len(refs))])
	}
	want := seq.Stats()
	seq.Release()

	for _, n := range []int{2, 3, 5, 64} {
		par, err := NewSweep(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		shards := par.Shards(n)
		for start := 0; start < len(refs); start += 512 {
			block := refs[start:min(start+512, len(refs))]
			for _, sh := range shards {
				sh.AccessBlock(block)
			}
		}
		if got := par.Stats(); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: sharded stats diverge from sequential", n)
		}
		par.Release()
	}
}

// TestShardUnitsMatchBuiltSweep pins the planning mirror: ShardUnits
// must predict exactly the partition Shards builds, for both grouping
// rules.
func TestShardUnitsMatchBuiltSweep(t *testing.T) {
	cfgs := shardTestConfigs()
	for _, inclusion := range []bool{true, false} {
		for _, n := range []int{1, 2, 4, 9, 50} {
			var (
				s   *Sweep
				err error
			)
			if inclusion {
				s, err = NewSweep(cfgs)
			} else {
				s, err = NewBatchSweep(cfgs)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := s.unitWeights(); true {
				want, err := unitWeightsFor(cfgs, inclusion)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("inclusion=%v: unitWeightsFor = %v, built sweep has %v", inclusion, want, got)
				}
			}
			var built []int
			for _, sh := range s.Shards(n) {
				built = append(built, sh.Units())
			}
			planned, err := ShardUnits(cfgs, inclusion, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(built, planned) {
				t.Errorf("inclusion=%v n=%d: ShardUnits = %v, Shards built %v", inclusion, n, planned, built)
			}
			s.Release()
		}
	}
}

// TestPartitionWeightsDeterministic pins the LPT partition: balanced,
// deterministic, canonical order within shards.
func TestPartitionWeightsDeterministic(t *testing.T) {
	weights := []int{12, 4, 4, 7, 3, 3, 3, 9}
	a := partitionWeights(weights, 3)
	b := partitionWeights(weights, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("partition not deterministic: %v vs %v", a, b)
	}
	seen := make(map[int]bool)
	for _, shard := range a {
		for i := 1; i < len(shard); i++ {
			if shard[i] <= shard[i-1] {
				t.Errorf("shard %v not in canonical order", shard)
			}
		}
		for _, u := range shard {
			if seen[u] {
				t.Errorf("unit %d assigned twice", u)
			}
			seen[u] = true
		}
	}
	if len(seen) != len(weights) {
		t.Errorf("partition covered %d of %d units", len(seen), len(weights))
	}
	// LPT on these weights keeps every shard within 2x of the ideal load.
	ideal := (12 + 4 + 4 + 7 + 3 + 3 + 3 + 9) / 3
	for si, shard := range a {
		load := 0
		for _, u := range shard {
			load += weights[u]
		}
		if load > 2*ideal {
			t.Errorf("shard %d load %d exceeds 2x ideal %d", si, load, ideal)
		}
	}
}

// TestShardConfigsPartition pins the config-index view of the shard
// plan: every config index appears in exactly one shard, indices are
// ascending within a shard, the plan is deterministic, inclusion groups
// never split across shards, and the per-shard unit counts agree with
// ShardUnits on the same inputs.
func TestShardConfigsPartition(t *testing.T) {
	cfgs := shardTestConfigs()
	for _, inclusion := range []bool{true, false} {
		for _, n := range []int{1, 2, 3, 5, 8, 50} {
			plan, err := ShardConfigs(cfgs, inclusion, n)
			if err != nil {
				t.Fatal(err)
			}
			again, err := ShardConfigs(cfgs, inclusion, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plan, again) {
				t.Fatalf("inclusion=%v n=%d: plan not deterministic", inclusion, n)
			}

			seen := make(map[int]int) // config index -> shard
			for si, shard := range plan {
				if len(shard) == 0 {
					t.Errorf("inclusion=%v n=%d: empty shard %d", inclusion, n, si)
				}
				for i, ci := range shard {
					if i > 0 && shard[i-1] >= ci {
						t.Errorf("inclusion=%v n=%d: shard %d not ascending: %v", inclusion, n, si, shard)
					}
					if ci < 0 || ci >= len(cfgs) {
						t.Fatalf("inclusion=%v n=%d: config index %d out of range", inclusion, n, ci)
					}
					if prev, dup := seen[ci]; dup {
						t.Errorf("inclusion=%v n=%d: config %d in shards %d and %d", inclusion, n, ci, prev, si)
					}
					seen[ci] = si
				}
			}
			if len(seen) != len(cfgs) {
				t.Errorf("inclusion=%v n=%d: plan covers %d of %d configs", inclusion, n, len(seen), len(cfgs))
			}

			units, err := ShardUnits(cfgs, inclusion, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(units) != len(plan) {
				t.Fatalf("inclusion=%v n=%d: ShardConfigs has %d shards, ShardUnits %d", inclusion, n, len(plan), len(units))
			}

			if inclusion {
				// Every inclusion group — ≥2 eligible configs sharing a
				// (line, sets) geometry — must land whole in one shard.
				type geom struct{ line, sets int }
				count := make(map[geom]int)
				for _, c := range cfgs {
					if InclusionEligible(c) {
						count[geom{c.LineBytes, c.NumSets()}]++
					}
				}
				home := make(map[geom]int)
				for ci, shard := range seen {
					c := cfgs[ci]
					g := geom{c.LineBytes, c.NumSets()}
					if !InclusionEligible(c) || count[g] < 2 {
						continue
					}
					if h, ok := home[g]; ok && h != shard {
						t.Errorf("n=%d: inclusion group %+v split across shards %d and %d", n, g, h, shard)
					}
					home[g] = shard
				}
			}
		}
	}
}
