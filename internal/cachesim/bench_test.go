package cachesim

import (
	"testing"

	"memexplore/internal/trace"
)

func benchTrace() *trace.Trace {
	return trace.Concat(
		trace.Loop(0, 4096, 4, 4),
		trace.PingPong(0, 8192, 2000),
	)
}

// BenchmarkAccessDirectMapped measures the per-access cost of the
// direct-mapped fast path.
func BenchmarkAccessDirectMapped(b *testing.B) {
	tr := benchTrace()
	cfg := DefaultConfig(1024, 16, 1)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTraceFast(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccess8Way measures the set-search cost at high associativity.
func BenchmarkAccess8Way(b *testing.B) {
	tr := benchTrace()
	cfg := DefaultConfig(1024, 16, 8)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTraceFast(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessClassified measures the 3C-classification overhead
// (shadow stack + seen set) relative to the fast path.
func BenchmarkAccessClassified(b *testing.B) {
	tr := benchTrace()
	cfg := DefaultConfig(1024, 16, 1)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrace(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatch8 measures the single-pass multi-configuration mode.
func BenchmarkBatch8(b *testing.B) {
	tr := benchTrace()
	var cfgs []Config
	for _, size := range []int{64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		cfgs = append(cfgs, DefaultConfig(size, 16, 2))
	}
	b.SetBytes(int64(tr.Len() * len(cfgs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(cfgs, tr); err != nil {
			b.Fatal(err)
		}
	}
}
