// Package cachesim is a trace-driven cache simulator in the spirit of
// Dinero IV (Edler & Hill, paper reference [11]). It simulates direct-mapped
// and N-way set-associative caches with LRU, FIFO or pseudo-random
// replacement, classifies misses into the 3C categories
// (compulsory/capacity/conflict), and reports the hit/miss statistics that
// feed the paper's cycle and energy models.
//
// The paper's authors chose closed-form expressions over porting their
// kernels to Dinero; this reproduction does the opposite and simulates the
// actual address streams, then validates the paper's analytical expressions
// against the simulator (see internal/reuse).
package cachesim

import (
	"fmt"
	"math/bits"
)

// Replacement selects the victim-choice policy within a set.
type Replacement int

const (
	// LRU evicts the least recently used line (the paper's implicit policy
	// for set-associative caches).
	LRU Replacement = iota
	// FIFO evicts the oldest-filled line regardless of use.
	FIFO
	// Random evicts a pseudo-randomly chosen line (deterministic xorshift,
	// reproducible across runs).
	Random
)

// String returns the policy name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Config describes one cache organization: the (T, L, S) triple of the
// paper plus simulator policies.
type Config struct {
	// SizeBytes is the total capacity T in bytes. Must be a power of two.
	SizeBytes int
	// LineBytes is the line (block) size L in bytes. Must be a power of
	// two and ≤ SizeBytes.
	LineBytes int
	// Assoc is the degree of set associativity S. 1 means direct-mapped.
	// Assoc = SizeBytes/LineBytes means fully associative. Must be a power
	// of two and divide the number of lines.
	Assoc int
	// Replacement is the within-set victim policy. Ignored for Assoc == 1.
	Replacement Replacement
	// WriteAllocate, when true (the default used throughout the paper's
	// experiments), fills a line on a write miss. When false, write misses
	// bypass the cache.
	WriteAllocate bool
	// WriteBack, when true, dirty lines are written to memory only on
	// eviction; when false the cache is write-through.
	WriteBack bool
	// VictimLines, when positive, attaches a small fully associative
	// victim buffer (Jouppi) of that many lines: lines evicted from the
	// main cache fall into it, and a main-cache miss that hits the buffer
	// swaps the line back without a memory access. It is the hardware
	// alternative to the paper's §4.1 software conflict elimination; the
	// ablation exhibit compares the two.
	VictimLines int
}

// DefaultConfig returns the paper's baseline policies for a (T, L, S)
// triple: write-allocate, write-back, LRU.
func DefaultConfig(sizeBytes, lineBytes, assoc int) Config {
	return Config{
		SizeBytes:     sizeBytes,
		LineBytes:     lineBytes,
		Assoc:         assoc,
		Replacement:   LRU,
		WriteAllocate: true,
		WriteBack:     true,
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks the geometry constraints.
func (c Config) Validate() error {
	if !isPow2(c.SizeBytes) {
		return fmt.Errorf("cachesim: cache size %d is not a positive power of two", c.SizeBytes)
	}
	if !isPow2(c.LineBytes) {
		return fmt.Errorf("cachesim: line size %d is not a positive power of two", c.LineBytes)
	}
	if c.LineBytes > c.SizeBytes {
		return fmt.Errorf("cachesim: line size %d exceeds cache size %d", c.LineBytes, c.SizeBytes)
	}
	if !isPow2(c.Assoc) {
		return fmt.Errorf("cachesim: associativity %d is not a positive power of two", c.Assoc)
	}
	if c.Assoc > c.NumLines() {
		return fmt.Errorf("cachesim: associativity %d exceeds number of lines %d", c.Assoc, c.NumLines())
	}
	switch c.Replacement {
	case LRU, FIFO, Random:
	default:
		return fmt.Errorf("cachesim: unknown replacement policy %d", int(c.Replacement))
	}
	if c.VictimLines < 0 {
		return fmt.Errorf("cachesim: negative victim buffer size %d", c.VictimLines)
	}
	return nil
}

// NumLines returns the total number of cache lines T/L.
func (c Config) NumLines() int { return c.SizeBytes / c.LineBytes }

// NumSets returns the number of sets T/(L·S).
func (c Config) NumSets() int { return c.NumLines() / c.Assoc }

// OffsetBits returns log2(LineBytes).
func (c Config) OffsetBits() int { return bits.TrailingZeros(uint(c.LineBytes)) }

// IndexBits returns log2(NumSets).
func (c Config) IndexBits() int { return bits.TrailingZeros(uint(c.NumSets())) }

// LineAddr maps a byte address to its line address (address / LineBytes).
func (c Config) LineAddr(addr uint64) uint64 { return addr >> uint(c.OffsetBits()) }

// SetIndex maps a byte address to its set index.
func (c Config) SetIndex(addr uint64) uint64 {
	return c.LineAddr(addr) & uint64(c.NumSets()-1)
}

// Tag returns the tag bits of a byte address.
func (c Config) Tag(addr uint64) uint64 {
	return c.LineAddr(addr) >> uint(c.IndexBits())
}

// String renders the configuration in the paper's CxxLyy style with the
// associativity and policy appended.
func (c Config) String() string {
	return fmt.Sprintf("C%dL%dS%d(%s)", c.SizeBytes, c.LineBytes, c.Assoc, c.Replacement)
}
