package cachesim

import (
	"context"
	"math/rand"
	"testing"

	"memexplore/internal/trace"
)

// randomMixedTrace builds a trace with reads, writes and fetches of mixed
// access widths (including line-spanning and set-wrapping references) over
// a span small enough to produce heavy reuse and evictions.
func randomMixedTrace(rng *rand.Rand, n int, span uint64) *trace.Trace {
	t := trace.New(n)
	sizes := []uint8{0, 1, 2, 4, 8, 16, 64}
	for i := 0; i < n; i++ {
		kind := trace.Read
		switch rng.Intn(10) {
		case 0, 1, 2:
			kind = trace.Write
		case 3:
			kind = trace.Fetch
		}
		t.Append(trace.Ref{
			Addr: uint64(rng.Int63n(int64(span))),
			Kind: kind,
			Size: sizes[rng.Intn(len(sizes))],
		})
	}
	return t
}

// sweepConfigs builds a mixed configuration set: the full (T, L, S)
// product under the given policies — multiple associativities per
// (L, sets) geometry, so NewSweep forms real inclusion groups — plus,
// when mixIneligible is set, interleaved FIFO/no-write-allocate/victim
// configs exercising the fallback batch.
func sweepConfigs(writeBack, mixIneligible bool) []Config {
	var cfgs []Config
	for _, t := range []int{32, 64, 128} {
		for _, l := range []int{4, 8, 16} {
			if l >= t {
				continue
			}
			for _, a := range []int{1, 2, 4, 8} {
				if a > t/l {
					continue
				}
				cfg := DefaultConfig(t, l, a)
				cfg.WriteBack = writeBack
				cfgs = append(cfgs, cfg)
				if !mixIneligible {
					continue
				}
				switch len(cfgs) % 3 {
				case 0:
					bad := cfg
					bad.Replacement = FIFO
					cfgs = append(cfgs, bad)
				case 1:
					bad := cfg
					bad.WriteAllocate = false
					cfgs = append(cfgs, bad)
				case 2:
					bad := cfg
					bad.VictimLines = 2
					cfgs = append(cfgs, bad)
				}
			}
		}
	}
	return cfgs
}

// TestSweepMatchesIndividualCaches is the engine's ground-truth property
// test: on random mixed traces, every configuration's Stats from the
// mixed inclusion/fallback Sweep must equal — field for field — a fresh
// per-configuration NewFast simulation.
func TestSweepMatchesIndividualCaches(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 3000, 2048)
		for _, writeBack := range []bool{true, false} {
			for _, mixIneligible := range []bool{false, true} {
				cfgs := sweepConfigs(writeBack, mixIneligible)
				s, err := NewSweep(cfgs)
				if err != nil {
					t.Fatal(err)
				}
				if s.InclusionGroups() == 0 {
					t.Fatal("configuration set formed no inclusion groups")
				}
				got, err := s.RunTraceContext(context.Background(), tr, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i, cfg := range cfgs {
					want, err := RunTraceFast(cfg, tr)
					if err != nil {
						t.Fatal(err)
					}
					if got[i] != want {
						t.Fatalf("seed %d wb=%v mixed=%v: %v diverges:\n sweep: %+v\n cache: %+v",
							seed, writeBack, mixIneligible, cfg, got[i], want)
					}
				}
			}
		}
	}
}

// TestSweepMixedWritePolicies shares one inclusion group between
// write-back and write-through members of the same geometry: residency is
// identical, so the group must serve both traffic accountings at once.
func TestSweepMixedWritePolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomMixedTrace(rng, 2000, 1024)
	var cfgs []Config
	for _, a := range []int{1, 2, 4} {
		// Fixed (L=8, sets=4) geometry: T scales with the associativity.
		wb := DefaultConfig(32*a, 8, a)
		wt := wb
		wt.WriteBack = false
		cfgs = append(cfgs, wb, wt)
	}
	s, err := NewSweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.InclusionGroups(); got != 1 {
		t.Fatalf("InclusionGroups = %d, want 1 (same geometry throughout)", got)
	}
	got, err := s.RunTraceContext(context.Background(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := RunTraceFast(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("%v diverges:\n sweep: %+v\n cache: %+v", cfg, got[i], want)
		}
	}
}

// TestSweepChunkingInvariance drives the same trace through AccessBlock
// in ragged chunks and checks the statistics match a one-shot pass —
// the contract the streaming external-trace path relies on.
func TestSweepChunkingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomMixedTrace(rng, 2500, 1024)
	cfgs := sweepConfigs(true, true)

	oneShot, err := NewSweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	oneShot.AccessBlock(tr.Refs())

	chunked, err := NewSweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	refs := tr.Refs()
	for start := 0; start < len(refs); {
		end := min(start+1+rng.Intn(97), len(refs))
		chunked.AccessBlock(refs[start:end])
		start = end
	}

	a, b := oneShot.Stats(), chunked.Stats()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("config %v: chunked stats diverge:\n one-shot: %+v\n chunked: %+v", cfgs[i], a[i], b[i])
		}
	}
}

// TestNewBatchSweep checks the forced-batched construction: no inclusion
// groups, identical statistics.
func TestNewBatchSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomMixedTrace(rng, 1500, 1024)
	cfgs := sweepConfigs(true, false)
	forced, err := NewBatchSweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if forced.InclusionGroups() != 0 || forced.FallbackConfigs() != len(cfgs) {
		t.Fatalf("NewBatchSweep formed %d groups / %d fallbacks, want 0 / %d",
			forced.InclusionGroups(), forced.FallbackConfigs(), len(cfgs))
	}
	got, err := forced.RunTraceContext(context.Background(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := RunTraceFast(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("%v diverges:\n sweep: %+v\n cache: %+v", cfg, got[i], want)
		}
	}
}

// TestSweepReset checks that a reset sweep reproduces its first run.
func TestSweepReset(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := randomMixedTrace(rng, 1200, 512)
	cfgs := sweepConfigs(true, true)
	s, err := NewSweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.RunTraceContext(context.Background(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	second, err := s.RunTraceContext(context.Background(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("config %v: run after Reset diverges", cfgs[i])
		}
	}
}

// TestSweepCancel checks the chunk-boundary context contract.
func TestSweepCancel(t *testing.T) {
	tr := trace.Sequential(0, 3*CancelCheckInterval, 4)
	s, err := NewSweep(sweepConfigs(true, false))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunTraceContext(ctx, tr, nil); err == nil {
		t.Fatal("canceled context did not stop the sweep")
	}
}

// TestSweepPassUnits pins the partition arithmetic on a known set: three
// assocs of one geometry plus one FIFO point and one lone geometry.
func TestSweepPassUnits(t *testing.T) {
	cfgs := []Config{
		// One (L=8, sets=8) group: T grows with the associativity.
		DefaultConfig(64, 8, 1),
		DefaultConfig(128, 8, 2),
		DefaultConfig(256, 8, 4),
		DefaultConfig(128, 16, 2), // lone (L=16, sets=4) geometry → fallback
	}
	fifo := DefaultConfig(512, 8, 8)
	fifo.Replacement = FIFO // ineligible policy → fallback
	cfgs = append(cfgs, fifo)

	s, err := NewSweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if s.InclusionGroups() != 1 || s.FallbackConfigs() != 2 || s.PassUnits() != 3 || s.Configs() != 5 {
		t.Fatalf("partition = %d groups, %d fallbacks, %d pass units (want 1, 2, 3)",
			s.InclusionGroups(), s.FallbackConfigs(), s.PassUnits())
	}
}

// TestBatchReleaseReuse checks the backing-array pool round trip: a
// released batch's arrays serve a subsequent batch without fresh zeroing
// bugs (the reused cache must start cold).
func TestBatchReleaseReuse(t *testing.T) {
	tr := trace.Sequential(0, 256, 4)
	cfg := DefaultConfig(64, 8, 2)
	b1, err := NewBatch([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	first, err := b1.RunTraceContext(context.Background(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	b1.Release()
	b2, err := NewBatch([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	second, err := b2.RunTraceContext(context.Background(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != second[0] {
		t.Fatalf("batch on pooled arrays diverges:\n first: %+v\n second: %+v", first[0], second[0])
	}
	b2.Release()
}
