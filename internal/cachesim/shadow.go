package cachesim

// lruShadow is a fully associative cache of line addresses with strict LRU
// replacement, used only to split non-compulsory misses into capacity
// (would miss even fully associative) versus conflict (mapping artifact).
// It is a map plus an intrusive doubly linked list; both operations are
// O(1).
type lruShadow struct {
	capacity int
	nodes    map[uint64]*shadowNode
	head     *shadowNode // most recently used
	tail     *shadowNode // least recently used
}

type shadowNode struct {
	lineAddr   uint64
	prev, next *shadowNode
}

func newLRUShadow(capacity int) *lruShadow {
	return &lruShadow{
		capacity: capacity,
		nodes:    make(map[uint64]*shadowNode, capacity+1),
	}
}

// touch records an access to lineAddr and reports whether it was resident
// (a fully-associative hit). On a miss the LRU entry is evicted if the
// shadow is full.
func (s *lruShadow) touch(lineAddr uint64) bool {
	if n, ok := s.nodes[lineAddr]; ok {
		s.moveToFront(n)
		return true
	}
	n := &shadowNode{lineAddr: lineAddr}
	s.nodes[lineAddr] = n
	s.pushFront(n)
	if len(s.nodes) > s.capacity {
		s.evictLRU()
	}
	return false
}

func (s *lruShadow) pushFront(n *shadowNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *lruShadow) unlink(n *shadowNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *lruShadow) moveToFront(n *shadowNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *lruShadow) evictLRU() {
	if s.tail == nil {
		return
	}
	victim := s.tail
	s.unlink(victim)
	delete(s.nodes, victim.lineAddr)
}

// len reports the number of resident lines (for tests).
func (s *lruShadow) len() int { return len(s.nodes) }
