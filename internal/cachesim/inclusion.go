package cachesim

import (
	"context"
	"fmt"

	"memexplore/internal/trace"
)

// This file implements the inclusion sweep engine: a Sweep partitions a
// batch of cache configurations into groups sharing (LineBytes, NumSets)
// whose policies the LRU stack model can represent exactly, simulates
// each group with ONE per-set stack pass (PerSetStacks, lrustack.go) that
// yields the exact Stats of every associativity in the group
// simultaneously, and falls back to a plain Batch for everything else
// (FIFO/Random replacement, no-write-allocate, victim buffers, and
// geometries with a single eligible config, where the per-cache fast
// paths win). The combined results are bit-identical to simulating every
// configuration individually with NewFast.

// InclusionEligible reports whether the inclusion engine can simulate the
// configuration exactly: LRU replacement with write-allocate and no
// victim buffer (DefaultConfig's policies). Both write-back and
// write-through caches qualify — the write policy changes traffic
// accounting, never which lines are resident.
func InclusionEligible(cfg Config) bool {
	return cfg.Replacement == LRU && cfg.WriteAllocate && cfg.VictimLines == 0
}

// sweepSlot maps one input configuration to where its statistics live:
// member `member` of inclusion group `group`, or — when group is -1 —
// cache `member` of the fallback batch.
type sweepSlot struct {
	group  int
	member int
}

// groupMember is one configuration of an inclusion group; only the
// associativity and the write policy distinguish members.
type groupMember struct {
	assoc     int
	writeBack bool
}

// inclusionGroup simulates every member configuration of one
// (LineBytes, NumSets) geometry in a single streaming pass.
type inclusionGroup struct {
	lineBytes int
	sets      int
	offShift  uint
	maxA      int // largest member associativity; also the stack depth
	members   []groupMember

	stacks *PerSetStacks
	// refHist[D][k] counts references of kind k (Read/Write/Fetch/other)
	// whose deepest spanned line-touch had stack distance D; bucket maxA
	// collects references with an untracked touch (cold or deeper than
	// every member). A reference hits the A-way cache iff D < A — a
	// spanning reference hits only if every spanned line hits.
	refHist [][4]uint64
	// lineHist[d] counts line touches at distance d (bucket maxA as
	// above): the A-way cache fetches exactly the touches with d ≥ A.
	lineHist []uint64
	// writeTouches counts write line-touches — the write-through traffic,
	// which is independent of associativity (hit, refill and spanning
	// writes all go through).
	writeTouches uint64
}

func newInclusionGroup(cfg Config) *inclusionGroup {
	return &inclusionGroup{
		lineBytes: cfg.LineBytes,
		sets:      cfg.NumSets(),
		offShift:  uint(cfg.OffsetBits()),
	}
}

// init sizes the stacks and histograms once all members are known.
func (g *inclusionGroup) init() error {
	for _, m := range g.members {
		if m.assoc > g.maxA {
			g.maxA = m.assoc
		}
	}
	st, err := NewPerSetStacks(g.sets, g.maxA)
	if err != nil {
		return err
	}
	g.stacks = st
	g.refHist = make([][4]uint64, g.maxA+1)
	g.lineHist = make([]uint64, g.maxA+1)
	return nil
}

// AccessBlock streams a block of references through the group's stacks.
func (g *inclusionGroup) AccessBlock(block []trace.Ref) {
	stacks, maxA := g.stacks, g.maxA
	for _, r := range block {
		first := r.Addr >> g.offShift
		last := r.LastByte() >> g.offShift
		isWrite := r.Kind == trace.Write
		maxD := 0
		for la := first; la <= last; la++ {
			d := stacks.Touch(la, isWrite)
			if d < 0 {
				d = maxA
			}
			g.lineHist[d]++
			if isWrite {
				g.writeTouches++
			}
			if d > maxD {
				maxD = d
			}
		}
		k := int(r.Kind)
		if k < 0 || k > 2 {
			k = 3 // unknown kinds count toward Accesses/Hits/Misses only
		}
		g.refHist[maxD][k]++
	}
}

// statsFor derives the exact Stats of one member from the shared
// histograms, matching NewFast semantics field for field (per-class miss
// counters report the aggregate-only Capacity placeholder, victim and
// compulsory counters stay zero).
func (g *inclusionGroup) statsFor(mi int) Stats {
	m := g.members[mi]
	var st Stats
	for d := 0; d <= g.maxA; d++ {
		kc := g.refHist[d]
		refs := kc[0] + kc[1] + kc[2] + kc[3]
		st.Accesses += refs
		st.Reads += kc[0]
		st.Writes += kc[1]
		st.Fetches += kc[2]
		if d < m.assoc {
			st.Hits += refs
			st.ReadHits += kc[0]
			st.WriteHits += kc[1]
		} else {
			st.Misses += refs
			st.ReadMisses += kc[0]
			st.WriteMisses += kc[1]
		}
	}
	st.CapacityMisses = st.Misses
	for d := m.assoc; d <= g.maxA; d++ {
		st.LinesFetched += g.lineHist[d]
	}
	if m.writeBack {
		st.WriteBacks = g.stacks.WritebacksAt(m.assoc)
	} else {
		st.WriteThroughs = g.writeTouches
	}
	return st
}

// Reset clears the group's stacks and histograms.
func (g *inclusionGroup) Reset() {
	g.stacks.Reset()
	clear(g.refHist)
	clear(g.lineHist)
	g.writeTouches = 0
}

// Sweep simulates many cache configurations in a single pass over a
// trace, like Batch, but collapses the associativity dimension of every
// inclusion-eligible (LineBytes, NumSets) group into one LRU stack pass.
// Statistics are bit-identical to per-configuration simulation; the
// fallback Batch covers ineligible configurations transparently.
type Sweep struct {
	groups []*inclusionGroup
	batch  *Batch // fallback; nil when every config joined a group
	slots  []sweepSlot
}

// NewSweep builds a sweep over the configurations, grouping
// inclusion-eligible configs (see InclusionEligible) that share
// (LineBytes, NumSets) into single-pass stack groups and simulating the
// rest — including geometries with only one eligible config, which the
// per-cache fast paths serve better — through a fallback Batch.
func NewSweep(cfgs []Config) (*Sweep, error) {
	return newSweep(cfgs, true)
}

// NewBatchSweep builds a Sweep that simulates every configuration
// individually through a Batch, with no inclusion groups — the forced
// "batched" engine for debugging and benchmarking comparisons.
func NewBatchSweep(cfgs []Config) (*Sweep, error) {
	return newSweep(cfgs, false)
}

func newSweep(cfgs []Config, inclusion bool) (*Sweep, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cachesim: sweep needs at least one configuration")
	}
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("cachesim: sweep config %d: %w", i, err)
		}
	}
	type geom struct{ lineBytes, sets int }
	s := &Sweep{slots: make([]sweepSlot, len(cfgs))}
	eligible := make(map[geom]int)
	if inclusion {
		for _, cfg := range cfgs {
			if InclusionEligible(cfg) {
				eligible[geom{cfg.LineBytes, cfg.NumSets()}]++
			}
		}
	}
	groupIdx := make(map[geom]int)
	var batchCfgs []Config
	for i, cfg := range cfgs {
		key := geom{cfg.LineBytes, cfg.NumSets()}
		if !inclusion || !InclusionEligible(cfg) || eligible[key] < 2 {
			s.slots[i] = sweepSlot{group: -1, member: len(batchCfgs)}
			batchCfgs = append(batchCfgs, cfg)
			continue
		}
		gi, ok := groupIdx[key]
		if !ok {
			gi = len(s.groups)
			groupIdx[key] = gi
			s.groups = append(s.groups, newInclusionGroup(cfg))
		}
		g := s.groups[gi]
		s.slots[i] = sweepSlot{group: gi, member: len(g.members)}
		g.members = append(g.members, groupMember{assoc: cfg.Assoc, writeBack: cfg.WriteBack})
	}
	for _, g := range s.groups {
		if err := g.init(); err != nil {
			return nil, err
		}
	}
	if len(batchCfgs) > 0 {
		b, err := NewBatch(batchCfgs)
		if err != nil {
			return nil, err
		}
		s.batch = b
	}
	return s, nil
}

// InclusionGroups returns how many single-pass stack groups the sweep
// formed.
func (s *Sweep) InclusionGroups() int { return len(s.groups) }

// FallbackConfigs returns how many configurations run on the fallback
// Batch.
func (s *Sweep) FallbackConfigs() int {
	if s.batch == nil {
		return 0
	}
	return len(s.batch.caches)
}

// PassUnits returns the number of independent simulation state machines
// consuming the trace: one per inclusion group plus one per fallback
// cache. Configs()/PassUnits() is the engine's collapse factor.
func (s *Sweep) PassUnits() int { return len(s.groups) + s.FallbackConfigs() }

// Configs returns the number of configurations the sweep covers.
func (s *Sweep) Configs() int { return len(s.slots) }

// AccessBlock feeds a block of references to every group and fallback
// cache, each consuming the whole block before the next runs (the
// cache-resident traversal of Batch.AccessBlock). It is the
// chunk-granular entry point for streaming callers; statistics are
// identical in any chunking.
func (s *Sweep) AccessBlock(block []trace.Ref) {
	for _, g := range s.groups {
		g.AccessBlock(block)
	}
	if s.batch != nil {
		s.batch.AccessBlock(block)
	}
}

// RunTraceContext drives an in-memory trace through the sweep in one
// pass, mirroring Batch.RunTraceContext: the context is checked every
// CancelCheckInterval references, and observe (when non-nil) sees every
// reference in the same traversal.
func (s *Sweep) RunTraceContext(ctx context.Context, tr *trace.Trace, observe func(trace.Ref)) ([]Stats, error) {
	refs := tr.Refs()
	for start := 0; ; start += CancelCheckInterval {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if start >= len(refs) {
			break
		}
		end := min(start+CancelCheckInterval, len(refs))
		block := refs[start:end]
		if observe != nil {
			for _, r := range block {
				observe(r)
			}
		}
		s.AccessBlock(block)
	}
	return s.Stats(), nil
}

// Stats returns the per-configuration statistics in input order.
func (s *Sweep) Stats() []Stats {
	var batchStats []Stats
	if s.batch != nil {
		batchStats = s.batch.Stats()
	}
	out := make([]Stats, len(s.slots))
	for i, sl := range s.slots {
		if sl.group < 0 {
			out[i] = batchStats[sl.member]
		} else {
			out[i] = s.groups[sl.group].statsFor(sl.member)
		}
	}
	return out
}

// Reset clears every group and fallback cache.
func (s *Sweep) Reset() {
	for _, g := range s.groups {
		g.Reset()
	}
	if s.batch != nil {
		s.batch.Reset()
	}
}

// Release returns the fallback caches' backing arrays to the package
// pool for reuse by later sweeps. Call after the final Stats(); the
// sweep must not be used afterwards.
func (s *Sweep) Release() {
	if s.batch != nil {
		s.batch.Release()
		s.batch = nil
	}
	s.groups, s.slots = nil, nil
}
