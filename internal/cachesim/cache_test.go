package cachesim

import (
	"testing"

	"memexplore/internal/trace"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", cfg, err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		DefaultConfig(16, 4, 1),
		DefaultConfig(64, 8, 2),
		DefaultConfig(1024, 32, 8),
		DefaultConfig(64, 8, 8), // fully associative
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", cfg, err)
		}
	}
	bad := []Config{
		DefaultConfig(0, 4, 1),
		DefaultConfig(48, 4, 1),   // size not pow2
		DefaultConfig(64, 6, 1),   // line not pow2
		DefaultConfig(64, 128, 1), // line > size
		DefaultConfig(64, 8, 3),   // assoc not pow2
		DefaultConfig(64, 8, 16),  // assoc > lines
		{SizeBytes: 64, LineBytes: 8, Assoc: 1, Replacement: Replacement(99)},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", cfg)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := DefaultConfig(128, 8, 2)
	if got := cfg.NumLines(); got != 16 {
		t.Errorf("NumLines = %d, want 16", got)
	}
	if got := cfg.NumSets(); got != 8 {
		t.Errorf("NumSets = %d, want 8", got)
	}
	if got := cfg.OffsetBits(); got != 3 {
		t.Errorf("OffsetBits = %d, want 3", got)
	}
	if got := cfg.IndexBits(); got != 3 {
		t.Errorf("IndexBits = %d, want 3", got)
	}
	if got := cfg.LineAddr(0x47); got != 8 {
		t.Errorf("LineAddr(0x47) = %d, want 8", got)
	}
	if got := cfg.SetIndex(0x47); got != 0 {
		t.Errorf("SetIndex(0x47) = %d, want 0", got)
	}
	if got := cfg.Tag(0x47); got != 1 {
		t.Errorf("Tag(0x47) = %d, want 1", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, DefaultConfig(64, 8, 1))
	r1 := c.Access(trace.Ref{Addr: 0, Kind: trace.Read})
	if r1.Hit {
		t.Error("first access should miss")
	}
	if r1.Class != Compulsory {
		t.Errorf("first miss class = %v, want compulsory", r1.Class)
	}
	r2 := c.Access(trace.Ref{Addr: 3, Kind: trace.Read}) // same line
	if !r2.Hit {
		t.Error("second access to same line should hit")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.CompulsoryMisses != 1 {
		t.Errorf("compulsory = %d, want 1", s.CompulsoryMisses)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 64B direct-mapped with 8B lines: addresses 0 and 64 map to set 0.
	c := mustCache(t, DefaultConfig(64, 8, 1))
	tr := trace.PingPong(0, 64, 10)
	st, err := c.Run(tr.Reader())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Hits != 0 {
		t.Errorf("ping-pong on conflicting lines should never hit, got %d hits", st.Hits)
	}
	if st.CompulsoryMisses != 2 {
		t.Errorf("compulsory = %d, want 2", st.CompulsoryMisses)
	}
	if st.ConflictMisses != 18 {
		t.Errorf("conflict = %d, want 18 (the rest)", st.ConflictMisses)
	}
	if st.CapacityMisses != 0 {
		t.Errorf("capacity = %d, want 0 (working set of 2 lines fits)", st.CapacityMisses)
	}
}

func TestAssociativityFixesConflict(t *testing.T) {
	// Same ping-pong, but 2-way: both lines fit in set 0.
	c := mustCache(t, DefaultConfig(64, 8, 2))
	st, err := c.Run(trace.PingPong(0, 64, 10).Reader())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (cold only)", st.Misses)
	}
	if st.Hits != 18 {
		t.Errorf("hits = %d, want 18", st.Hits)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 2 sets (32B, 8B lines). Touch three lines of set 0:
	// A=0, B=32, C=64. After A,B,C the LRU victim for C is A.
	c := mustCache(t, DefaultConfig(32, 8, 2))
	c.Access(trace.Ref{Addr: 0})
	c.Access(trace.Ref{Addr: 32})
	c.Access(trace.Ref{Addr: 64})
	if c.Contains(0) {
		t.Error("A should have been evicted (LRU)")
	}
	if !c.Contains(32) || !c.Contains(64) {
		t.Error("B and C should be resident")
	}
	// Touch B, then D=96: victim should be C (B is more recent).
	c.Access(trace.Ref{Addr: 32})
	c.Access(trace.Ref{Addr: 96})
	if c.Contains(64) {
		t.Error("C should have been evicted after B was re-touched")
	}
	if !c.Contains(32) {
		t.Error("B should survive")
	}
}

func TestFIFOEviction(t *testing.T) {
	cfg := DefaultConfig(32, 8, 2)
	cfg.Replacement = FIFO
	c := mustCache(t, cfg)
	c.Access(trace.Ref{Addr: 0})  // A filled first
	c.Access(trace.Ref{Addr: 32}) // B
	c.Access(trace.Ref{Addr: 0})  // touch A (FIFO ignores recency)
	c.Access(trace.Ref{Addr: 64}) // C evicts A, not B
	if c.Contains(0) {
		t.Error("FIFO should evict the oldest fill (A) despite recent use")
	}
	if !c.Contains(32) {
		t.Error("B should be resident")
	}
}

func TestRandomReplacementIsDeterministic(t *testing.T) {
	cfg := DefaultConfig(64, 8, 4)
	cfg.Replacement = Random
	tr := trace.Sequential(0, 500, 8)
	a, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("random replacement should be reproducible: %+v vs %+v", a, b)
	}
}

func TestWriteBackAndWriteThrough(t *testing.T) {
	// Write-back: dirty line written back on eviction only.
	wb := DefaultConfig(16, 8, 1) // 2 lines
	c := mustCache(t, wb)
	c.Access(trace.Ref{Addr: 0, Kind: trace.Write}) // miss, fill, dirty
	c.Access(trace.Ref{Addr: 16, Kind: trace.Read}) // set 0 conflict: evict dirty
	st := c.Stats()
	if st.WriteBacks != 1 {
		t.Errorf("write-backs = %d, want 1", st.WriteBacks)
	}
	if st.WriteThroughs != 0 {
		t.Errorf("write-throughs = %d, want 0", st.WriteThroughs)
	}

	// Write-through: every write goes to memory, no write-backs.
	wt := wb
	wt.WriteBack = false
	c2 := mustCache(t, wt)
	c2.Access(trace.Ref{Addr: 0, Kind: trace.Write})
	c2.Access(trace.Ref{Addr: 0, Kind: trace.Write})
	c2.Access(trace.Ref{Addr: 16, Kind: trace.Read})
	st2 := c2.Stats()
	if st2.WriteBacks != 0 {
		t.Errorf("write-throughs mode write-backs = %d, want 0", st2.WriteBacks)
	}
	if st2.WriteThroughs != 2 {
		t.Errorf("write-throughs = %d, want 2", st2.WriteThroughs)
	}
}

func TestNoWriteAllocate(t *testing.T) {
	cfg := DefaultConfig(16, 8, 1)
	cfg.WriteAllocate = false
	cfg.WriteBack = false
	c := mustCache(t, cfg)
	c.Access(trace.Ref{Addr: 0, Kind: trace.Write}) // miss, not allocated
	if c.Contains(0) {
		t.Error("write miss should not allocate")
	}
	r := c.Access(trace.Ref{Addr: 0, Kind: trace.Read})
	if r.Hit {
		t.Error("read after non-allocating write miss should miss")
	}
}

func TestLineSpanningAccess(t *testing.T) {
	c := mustCache(t, DefaultConfig(64, 8, 1))
	// 4-byte access at addr 6 spans lines 0 and 1.
	r := c.Access(trace.Ref{Addr: 6, Size: 4, Kind: trace.Read})
	if r.Hit {
		t.Error("cold spanning access should miss")
	}
	if r.LinesTouched != 2 {
		t.Errorf("LinesTouched = %d, want 2", r.LinesTouched)
	}
	st := c.Stats()
	if st.Accesses != 1 {
		t.Errorf("Accesses = %d, want 1", st.Accesses)
	}
	if st.LinesFetched != 2 {
		t.Errorf("LinesFetched = %d, want 2", st.LinesFetched)
	}
	// Now both lines are resident: the same access hits.
	if r2 := c.Access(trace.Ref{Addr: 6, Size: 4, Kind: trace.Read}); !r2.Hit {
		t.Error("repeat spanning access should hit")
	}
}

func TestCapacityMissClassification(t *testing.T) {
	// Stream over a region 4x the cache: all misses after cold ones are
	// capacity, not conflict (sequential lines spread over all sets).
	cfg := DefaultConfig(64, 8, 1)
	tr := trace.Loop(0, 256, 8, 3) // 32 lines, 3 passes
	st, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0 (region exceeds capacity)", st.Hits)
	}
	if st.CompulsoryMisses != 32 {
		t.Errorf("compulsory = %d, want 32", st.CompulsoryMisses)
	}
	if st.ConflictMisses != 0 {
		t.Errorf("conflict = %d, want 0, got stats %v", st.ConflictMisses, st)
	}
	if st.CapacityMisses != 64 {
		t.Errorf("capacity = %d, want 64", st.CapacityMisses)
	}
}

func TestFullyAssociativeHasNoConflictMisses(t *testing.T) {
	cfg := DefaultConfig(64, 8, 8) // fully associative
	tr := trace.Concat(
		trace.PingPong(0, 64, 50),
		trace.Loop(0, 512, 8, 2),
	)
	st, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.ConflictMisses != 0 {
		t.Errorf("fully associative LRU cache reported %d conflict misses", st.ConflictMisses)
	}
}

func TestResetRestoresColdState(t *testing.T) {
	c := mustCache(t, DefaultConfig(64, 8, 2))
	if _, err := c.Run(trace.Sequential(0, 100, 8).Reader()); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if got := c.Stats(); got != (Stats{}) {
		t.Errorf("stats after reset = %+v", got)
	}
	if got := c.ResidentLines(); got != 0 {
		t.Errorf("resident lines after reset = %d", got)
	}
	r := c.Access(trace.Ref{Addr: 0})
	if r.Hit || r.Class != Compulsory {
		t.Errorf("post-reset first access = %+v, want compulsory miss", r)
	}
}

func TestRunTraceFastMatchesAggregate(t *testing.T) {
	cfg := DefaultConfig(128, 16, 2)
	tr := trace.Concat(
		trace.Loop(0, 1024, 4, 3),
		trace.PingPong(0, 2048, 100),
	)
	full, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunTraceFast(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if full.Hits != fast.Hits || full.Misses != fast.Misses || full.Accesses != fast.Accesses {
		t.Errorf("fast path diverges: full=%v fast=%v", full, fast)
	}
	if fast.CompulsoryMisses != 0 || fast.ConflictMisses != 0 {
		t.Errorf("fast path should not classify: %+v", fast)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, Hits: 1, Reads: 1, ReadHits: 1, LinesFetched: 2}
	b := Stats{Accesses: 3, Misses: 3, Writes: 3, WriteMisses: 3, ConflictMisses: 1, WriteBacks: 1}
	a.Add(b)
	if a.Accesses != 4 || a.Hits != 1 || a.Misses != 3 || a.ConflictMisses != 1 || a.WriteBacks != 1 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestMissRateEdgeCases(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.HitRate() != 0 || s.ReadMissRate() != 0 {
		t.Error("empty stats should report zero rates")
	}
	s = Stats{Accesses: 4, Hits: 3, Misses: 1, Reads: 2, ReadMisses: 1}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v", got)
	}
	if got := s.ReadMissRate(); got != 0.5 {
		t.Errorf("ReadMissRate = %v", got)
	}
}

func TestMissClassString(t *testing.T) {
	names := map[MissClass]string{
		NotMiss: "hit", Compulsory: "compulsory", Capacity: "capacity",
		Conflict: "conflict", MissClass(9): "MissClass(9)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := LRU.String(); got != "LRU" {
		t.Errorf("LRU.String() = %q", got)
	}
	if got := FIFO.String(); got != "FIFO" {
		t.Errorf("FIFO.String() = %q", got)
	}
	if got := Random.String(); got != "random" {
		t.Errorf("Random.String() = %q", got)
	}
	if got := Replacement(42).String(); got != "Replacement(42)" {
		t.Errorf("unknown replacement String() = %q", got)
	}
}

func TestConfigString(t *testing.T) {
	if got := DefaultConfig(64, 8, 2).String(); got != "C64L8S2(LRU)" {
		t.Errorf("String = %q", got)
	}
}
