package cachesim

import "fmt"

// This file implements the shared per-set LRU stack core behind the
// inclusion engine (inclusion.go) and stackdist.ComputePerSet.
//
// By Mattson's inclusion property, the content of an A-way LRU set is
// always the top min(occupancy, A) entries of the set's LRU stack, so one
// stack holds the state of every associativity of a (line size, set
// count) geometry at once: an access at stack distance d hits every cache
// with A > d and misses (and refills in) every cache with A ≤ d.
//
// Write-back traffic is derived with the Cheetah-style "dirty level"
// trick: each entry keeps minDirty, the smallest associativity at which
// the line is dirty. Dirtiness is monotone in A — a write hit at distance
// d leaves the line dirty in the caches that held it (A > d) AND in the
// caches that just refilled it on the write miss (A ≤ d, write-allocate)
// so minDirty becomes 1, while a read at distance d refills a clean copy
// in every A ≤ d, raising minDirty to max(minDirty, d+1). When an entry
// slides from stack position p to p+1, the (p+1)-way cache is evicting
// its LRU line — exactly once per residency generation — and writes it
// back iff minDirty ≤ p+1.

// stackEntry is one line in a per-set LRU stack.
type stackEntry struct {
	la uint64
	// minDirty is the smallest associativity at which the line is dirty
	// under write-back, write-allocate semantics (dirtiness is monotone:
	// dirty at a implies dirty at every a' ≥ a while resident).
	// stackClean marks a line clean at every associativity.
	minDirty int32
}

// stackClean is the minDirty sentinel for "clean everywhere": larger than
// any real associativity, so minDirty ≤ a never holds.
const stackClean = int32(1) << 30

// PerSetStacks maintains per-set LRU stacks with dirty-depth markers over
// a stream of line-address touches. Depth-bounded stacks back the
// inclusion sweep engine (entries deeper than every tracked associativity
// are indistinguishable from cold and are dropped); unbounded stacks back
// stackdist.ComputePerSet, which needs exact distances at any depth.
// It is not safe for concurrent use.
type PerSetStacks struct {
	sets  int
	depth int // maximum tracked entries per set; 0 = unbounded
	mask  uint64

	// Bounded mode: set i occupies flat[i*depth : i*depth+occ[i]].
	flat []stackEntry
	occ  []int32

	// Unbounded mode: one growable stack per set.
	dyn [][]stackEntry

	// wb[a] is the number of write-backs an a-way write-back cache of
	// this geometry performs; index 0 is unused. Grown on demand in
	// unbounded mode.
	wb []uint64
}

// NewPerSetStacks builds stacks for a power-of-two set count. depth bounds
// the tracked entries per set (the largest associativity of interest);
// depth 0 keeps every entry.
func NewPerSetStacks(sets, depth int) (*PerSetStacks, error) {
	if !isPow2(sets) {
		return nil, fmt.Errorf("cachesim: set count %d is not a positive power of two", sets)
	}
	if depth < 0 {
		return nil, fmt.Errorf("cachesim: negative stack depth %d", depth)
	}
	s := &PerSetStacks{sets: sets, depth: depth, mask: uint64(sets - 1)}
	if depth > 0 {
		s.flat = make([]stackEntry, sets*depth)
		s.occ = make([]int32, sets)
		s.wb = make([]uint64, depth+1)
	} else {
		s.dyn = make([][]stackEntry, sets)
		s.wb = make([]uint64, 1)
	}
	return s, nil
}

// Sets returns the set count.
func (s *PerSetStacks) Sets() int { return s.sets }

// Depth returns the per-set entry bound (0 = unbounded).
func (s *PerSetStacks) Depth() int { return s.depth }

// Occupancy returns the number of entries currently tracked for the set.
func (s *PerSetStacks) Occupancy(set int) int {
	if s.depth > 0 {
		return int(s.occ[set])
	}
	return len(s.dyn[set])
}

// Touch records one touch of line address la and returns its within-set
// stack distance, or -1 when the line was not tracked (a cold miss or,
// in bounded mode, a reuse deeper than the bound — either way a miss at
// every tracked associativity). write marks the touch as a write for the
// dirty markers; write-back events are accumulated into Writebacks.
func (s *PerSetStacks) Touch(la uint64, write bool) int {
	si := int(la & s.mask)
	if s.depth > 0 {
		return s.touchBounded(si, la, write)
	}
	return s.touchUnbounded(si, la, write)
}

func (s *PerSetStacks) touchBounded(si int, la uint64, write bool) int {
	base := si * s.depth
	n := int(s.occ[si])
	stack := s.flat[base : base+n]
	for d := range stack {
		if stack[d].la != la {
			continue
		}
		e := stack[d]
		s.creditEvictions(stack[:d])
		if write {
			e.minDirty = 1
		} else if e.minDirty < int32(d)+1 {
			e.minDirty = int32(d) + 1
		}
		copy(stack[1:d+1], stack[:d])
		stack[0] = e
		return d
	}
	// Untracked: a miss (and an eviction, where full) at every tracked
	// associativity. At the bound the bottom entry falls off entirely —
	// it is non-resident in every tracked cache, so dropping it is exact.
	s.creditEvictions(stack)
	if n < s.depth {
		n++
		s.occ[si] = int32(n)
		stack = s.flat[base : base+n]
	}
	copy(stack[1:], stack[:n-1])
	stack[0] = newStackEntry(la, write)
	return -1
}

func (s *PerSetStacks) touchUnbounded(si int, la uint64, write bool) int {
	stack := s.dyn[si]
	for d := range stack {
		if stack[d].la != la {
			continue
		}
		e := stack[d]
		s.growWB(d)
		s.creditEvictions(stack[:d])
		if write {
			e.minDirty = 1
		} else if e.minDirty < int32(d)+1 {
			e.minDirty = int32(d) + 1
		}
		copy(stack[1:d+1], stack[:d])
		stack[0] = e
		return d
	}
	n := len(stack)
	s.growWB(n)
	s.creditEvictions(stack)
	stack = append(stack, stackEntry{})
	copy(stack[1:], stack[:n])
	stack[0] = newStackEntry(la, write)
	s.dyn[si] = stack
	return -1
}

func newStackEntry(la uint64, write bool) stackEntry {
	e := stackEntry{la: la, minDirty: stackClean}
	if write {
		e.minDirty = 1
	}
	return e
}

// creditEvictions charges the write-backs of one miss: every entry of
// displaced is about to slide down one position, so the (p+1)-way cache
// evicts the entry at position p and writes it back iff it is dirty there.
func (s *PerSetStacks) creditEvictions(displaced []stackEntry) {
	for p := range displaced {
		if displaced[p].minDirty <= int32(p)+1 {
			s.wb[p+1]++
		}
	}
}

// growWB extends wb so that evictions up to stack position n-1 (cache
// associativity n) can be credited. Bounded stacks preallocate.
func (s *PerSetStacks) growWB(n int) {
	for len(s.wb) <= n {
		s.wb = append(s.wb, 0)
	}
}

// Writebacks returns a copy of the accumulated write-back counts:
// Writebacks()[a] is the write-back count of an a-way write-back,
// write-allocate LRU cache of this geometry (index 0 unused). Entries
// beyond the largest occupancy reached are absent; callers should treat
// missing indices as zero.
func (s *PerSetStacks) Writebacks() []uint64 {
	return append([]uint64(nil), s.wb...)
}

// WritebacksAt returns Writebacks()[assoc] without copying, treating
// out-of-range associativities as zero (an a-way cache that never filled
// a set never evicted from it).
func (s *PerSetStacks) WritebacksAt(assoc int) uint64 {
	if assoc < 1 || assoc >= len(s.wb) {
		return 0
	}
	return s.wb[assoc]
}

// Reset clears all stacks and counters.
func (s *PerSetStacks) Reset() {
	if s.depth > 0 {
		clear(s.flat)
		clear(s.occ)
		clear(s.wb)
		return
	}
	for i := range s.dyn {
		s.dyn[i] = s.dyn[i][:0]
	}
	s.wb = s.wb[:1]
	s.wb[0] = 0
}
