package cachesim

// This file implements sweep sharding: a Sweep's pass units (inclusion
// groups and fallback caches) are mutually independent state machines
// that only ever read the shared reference stream, so they can be
// partitioned into disjoint shards and advanced by concurrent workers —
// each shard consuming every block in order — with statistics
// bit-identical to the sequential Sweep.AccessBlock traversal. The
// partition balances estimated per-reference cost, not unit count: one
// per-set stack group walking 8-deep lists costs more per reference
// than a direct-mapped fallback probe.

import "memexplore/internal/trace"

// Relative per-reference cost weights of the two pass-unit kinds. They
// only steer load balance (never correctness): an inclusion group's
// stack touch scans a per-set list of up to maxA entries, a fallback
// cache probe is an indexed compare plus a bounded way scan.
const (
	groupUnitBaseWeight = 4
	cacheUnitWeight     = 3
)

// SweepShard is a disjoint subset of a Sweep's pass units. Shards
// returned by one Shards call cover every unit exactly once, so feeding
// the same blocks to every shard (in any concurrent interleaving across
// shards, but in stream order within each) advances the parent Sweep
// exactly as sequential AccessBlock calls would; statistics are then
// read from the parent Sweep as usual.
type SweepShard struct {
	groups []*inclusionGroup
	caches []*Cache
	weight int
}

// AccessBlock feeds a block of references to every unit of the shard.
func (sh *SweepShard) AccessBlock(block []trace.Ref) {
	for _, g := range sh.groups {
		g.AccessBlock(block)
	}
	for _, c := range sh.caches {
		c.AccessBlock(block)
	}
}

// Units returns the number of pass units the shard owns.
func (sh *SweepShard) Units() int { return len(sh.groups) + len(sh.caches) }

// Weight returns the shard's estimated per-reference cost (the sum of
// its units' weights) — the quantity the partition balances.
func (sh *SweepShard) Weight() int { return sh.weight }

// unitWeights returns the estimated cost weight of every pass unit in
// canonical unit order: inclusion groups first (group order), then the
// fallback caches (configuration order).
func (s *Sweep) unitWeights() []int {
	w := make([]int, 0, s.PassUnits())
	for _, g := range s.groups {
		w = append(w, groupUnitBaseWeight+g.maxA)
	}
	if s.batch != nil {
		for range s.batch.caches {
			w = append(w, cacheUnitWeight)
		}
	}
	return w
}

// Shards partitions the sweep's pass units into at most n cost-balanced
// shards (fewer when the sweep has fewer units; one when n ≤ 1). The
// partition is deterministic for a given sweep and n. The shards borrow
// the sweep's state: use them instead of (never alongside) the parent's
// AccessBlock, and read Stats from the parent before Release as usual.
func (s *Sweep) Shards(n int) []*SweepShard {
	assign := partitionWeights(s.unitWeights(), n)
	shards := make([]*SweepShard, len(assign))
	for i, units := range assign {
		sh := &SweepShard{}
		for _, u := range units {
			if u < len(s.groups) {
				sh.groups = append(sh.groups, s.groups[u])
				sh.weight += groupUnitBaseWeight + s.groups[u].maxA
			} else {
				sh.caches = append(sh.caches, s.batch.caches[u-len(s.groups)])
				sh.weight += cacheUnitWeight
			}
		}
		shards[i] = sh
	}
	return shards
}

// partitionWeights assigns unit indices to at most n shards balancing
// total weight — the LPT greedy heuristic: units are placed heaviest
// first (ties broken by lower index) onto the currently lightest shard
// (ties broken by lower shard index), so the result is deterministic.
// Within a shard, units keep their canonical order. Shards that would
// stay empty (n exceeds the unit count) are dropped.
func partitionWeights(weights []int, n int) [][]int {
	if n > len(weights) {
		n = len(weights)
	}
	if n <= 1 {
		all := make([]int, len(weights))
		for i := range weights {
			all[i] = i
		}
		return [][]int{all}
	}
	// Order unit indices by descending weight, stable in index.
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort: unit counts are small
		for j := i; j > 0 && weights[order[j]] > weights[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	assign := make([][]int, n)
	load := make([]int, n)
	for _, u := range order {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[best] = append(assign[best], u)
		load[best] += weights[u]
	}
	for _, units := range assign {
		// Restore canonical unit order within the shard.
		for i := 1; i < len(units); i++ {
			for j := i; j > 0 && units[j] < units[j-1]; j-- {
				units[j], units[j-1] = units[j-1], units[j]
			}
		}
	}
	return assign
}

// ShardUnits reports the per-shard pass-unit counts that Shards would
// produce for the configurations, without building any simulator state —
// the planning mirror used by core's SweepPlan. inclusion selects
// between the NewSweep and NewBatchSweep grouping rules.
func ShardUnits(cfgs []Config, inclusion bool, n int) ([]int, error) {
	weights, err := unitWeightsFor(cfgs, inclusion)
	if err != nil {
		return nil, err
	}
	assign := partitionWeights(weights, n)
	units := make([]int, len(assign))
	for i, a := range assign {
		units[i] = len(a)
	}
	return units, nil
}

// ShardConfigs partitions the configurations into at most n shards at
// pass-unit granularity: each returned slice lists the configuration
// indices (ascending) whose pass units one shard owns, following exactly
// the LPT assignment Shards performs on the built sweep. Because the cut
// is at unit granularity, every inclusion group travels whole — the
// grouping rules re-form the identical groups inside each shard's
// configuration subset — which is what makes a shard-scoped sweep's
// per-configuration statistics bit-identical to the full sweep's. This
// is the serialization surface of distributed sweeps: a coordinator and
// its peers re-derive the same partition from (cfgs, inclusion, n)
// alone, so the wire carries only a shard index and count.
func ShardConfigs(cfgs []Config, inclusion bool, n int) ([][]int, error) {
	weights, units, err := unitConfigsFor(cfgs, inclusion)
	if err != nil {
		return nil, err
	}
	assign := partitionWeights(weights, n)
	out := make([][]int, len(assign))
	for i, us := range assign {
		var idx []int
		for _, u := range us {
			idx = append(idx, units[u]...)
		}
		// Units keep canonical order, but a fallback unit's configs can
		// interleave with group configs in Space() order — restore
		// ascending configuration order within the shard.
		for a := 1; a < len(idx); a++ { // insertion sort: shards are small
			for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
				idx[b], idx[b-1] = idx[b-1], idx[b]
			}
		}
		out[i] = idx
	}
	return out, nil
}

// unitConfigsFor mirrors unitWeightsFor but additionally reports, per
// pass unit, the configuration indices the unit covers — inclusion
// groups first (first-encounter order), then fallback configurations in
// configuration order, exactly as newSweep forms them.
func unitConfigsFor(cfgs []Config, inclusion bool) ([]int, [][]int, error) {
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, nil, err
		}
	}
	type geom struct{ lineBytes, sets int }
	eligible := make(map[geom]int)
	if inclusion {
		for _, cfg := range cfgs {
			if InclusionEligible(cfg) {
				eligible[geom{cfg.LineBytes, cfg.NumSets()}]++
			}
		}
	}
	groupIdx := make(map[geom]int)
	var groupMaxA []int
	var groupCfgs [][]int
	var fallback [][]int
	for ci, cfg := range cfgs {
		key := geom{cfg.LineBytes, cfg.NumSets()}
		if !inclusion || !InclusionEligible(cfg) || eligible[key] < 2 {
			fallback = append(fallback, []int{ci})
			continue
		}
		gi, ok := groupIdx[key]
		if !ok {
			gi = len(groupMaxA)
			groupIdx[key] = gi
			groupMaxA = append(groupMaxA, 0)
			groupCfgs = append(groupCfgs, nil)
		}
		if cfg.Assoc > groupMaxA[gi] {
			groupMaxA[gi] = cfg.Assoc
		}
		groupCfgs[gi] = append(groupCfgs[gi], ci)
	}
	weights := make([]int, 0, len(groupMaxA)+len(fallback))
	units := make([][]int, 0, len(groupMaxA)+len(fallback))
	for gi, maxA := range groupMaxA {
		weights = append(weights, groupUnitBaseWeight+maxA)
		units = append(units, groupCfgs[gi])
	}
	for _, f := range fallback {
		weights = append(weights, cacheUnitWeight)
		units = append(units, f)
	}
	return weights, units, nil
}

// unitWeightsFor computes the pass-unit cost weights newSweep would
// form for the configurations, in the same canonical unit order, with
// none of the construction cost (no stacks, no line arrays). Pinned
// against the built Sweep by TestShardUnitsMatchBuiltSweep.
func unitWeightsFor(cfgs []Config, inclusion bool) ([]int, error) {
	weights, _, err := unitConfigsFor(cfgs, inclusion)
	return weights, err
}
