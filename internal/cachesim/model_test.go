package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memexplore/internal/trace"
)

// refModel is an intentionally naive, obviously-correct set-associative LRU
// cache used to cross-check the optimized simulator: each set is a slice of
// line addresses ordered most-recently-used first.
type refModel struct {
	cfg  Config
	sets [][]uint64
}

func newRefModel(cfg Config) *refModel {
	return &refModel{cfg: cfg, sets: make([][]uint64, cfg.NumSets())}
}

func (m *refModel) access(addr uint64) bool {
	la := m.cfg.LineAddr(addr)
	si := la & uint64(m.cfg.NumSets()-1)
	set := m.sets[si]
	for i, resident := range set {
		if resident == la {
			// Move to front.
			copy(set[1:i+1], set[0:i])
			set[0] = la
			return true
		}
	}
	// Miss: insert at front, trim to associativity.
	set = append([]uint64{la}, set...)
	if len(set) > m.cfg.Assoc {
		set = set[:m.cfg.Assoc]
	}
	m.sets[si] = set
	return false
}

// TestQuickLRUMatchesReferenceModel drives random traces through both the
// simulator and the naive model across a range of geometries and demands
// identical per-access hit/miss outcomes.
func TestQuickLRUMatchesReferenceModel(t *testing.T) {
	geometries := []Config{
		DefaultConfig(16, 4, 1),
		DefaultConfig(32, 4, 2),
		DefaultConfig(64, 8, 4),
		DefaultConfig(64, 8, 8),
		DefaultConfig(256, 16, 2),
		DefaultConfig(1024, 32, 8),
	}
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		nRefs := int(n%2000) + 1
		tr := trace.Random(rng, 0, 4096, nRefs)
		for _, cfg := range geometries {
			c, err := New(cfg)
			if err != nil {
				return false
			}
			m := newRefModel(cfg)
			for i := 0; i < tr.Len(); i++ {
				r := tr.At(i)
				got := c.Access(r).Hit
				want := m.access(r.Addr)
				if got != want {
					t.Logf("cfg %v ref %d addr %#x: sim hit=%v model hit=%v", cfg, i, r.Addr, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickStatsInvariants checks the accounting identities that must hold
// for any trace and any configuration:
//
//	hits + misses == accesses
//	compulsory + capacity + conflict == misses
//	reads + writes + fetches == accesses
//	residentLines <= numLines
func TestQuickStatsInvariants(t *testing.T) {
	f := func(seed int64, sizeExp, lineExp, assocExp uint8) bool {
		size := 16 << (sizeExp % 7) // 16..1024
		line := 4 << (lineExp % 4)  // 4..32
		if line > size {
			line = size
		}
		maxAssoc := size / line
		assoc := 1 << (assocExp % 4) // 1..8
		if assoc > maxAssoc {
			assoc = maxAssoc
		}
		cfg := DefaultConfig(size, line, assoc)
		rng := rand.New(rand.NewSource(seed))
		tr := trace.New(600)
		for i := 0; i < 600; i++ {
			k := trace.Read
			if rng.Intn(3) == 0 {
				k = trace.Write
			}
			tr.Append(trace.Ref{Addr: uint64(rng.Intn(8192)), Kind: k})
		}
		c, err := New(cfg)
		if err != nil {
			t.Logf("New(%v): %v", cfg, err)
			return false
		}
		st, err := c.Run(tr.Reader())
		if err != nil {
			return false
		}
		if st.Hits+st.Misses != st.Accesses {
			return false
		}
		if st.CompulsoryMisses+st.CapacityMisses+st.ConflictMisses != st.Misses {
			return false
		}
		if st.Reads+st.Writes+st.Fetches != st.Accesses {
			return false
		}
		if st.ReadHits+st.ReadMisses != st.Reads {
			return false
		}
		if st.WriteHits+st.WriteMisses != st.Writes {
			return false
		}
		if c.ResidentLines() > cfg.NumLines() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMonotoneAssociativity: for a fixed size and line size, increasing
// associativity with LRU never increases the miss count on any trace
// (inclusion property of LRU within equal capacity does not hold in general
// across set mappings, but conflict misses cannot increase when sets merge
// under LRU for power-of-two geometries driven by the same stream — we
// assert the weaker, always-true property that the fully associative cache
// has the minimum conflict-miss count: zero).
func TestQuickFullyAssociativeZeroConflicts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.Random(rng, 0, 2048, 800)
		cfg := DefaultConfig(128, 8, 16) // fully associative: 16 lines
		st, err := RunTrace(cfg, tr)
		if err != nil {
			return false
		}
		return st.ConflictMisses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestShadowLRU(t *testing.T) {
	s := newLRUShadow(2)
	if s.touch(1) {
		t.Error("first touch of 1 should miss")
	}
	if s.touch(2) {
		t.Error("first touch of 2 should miss")
	}
	if !s.touch(1) {
		t.Error("1 should be resident")
	}
	if s.touch(3) {
		t.Error("first touch of 3 should miss")
	}
	// LRU of {1(recent),2} is 2 -> evicted by 3.
	if s.touch(2) {
		t.Error("2 should have been evicted")
	}
	if s.len() != 2 {
		t.Errorf("len = %d, want 2", s.len())
	}
}
