package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memexplore/internal/trace"
)

func TestBatchMatchesIndividual(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(32, 4, 1),
		DefaultConfig(64, 8, 2),
		DefaultConfig(256, 16, 4),
	}
	tr := trace.Concat(
		trace.Loop(0, 512, 4, 3),
		trace.PingPong(0, 1024, 200),
	)
	batch, err := RunBatch(cfgs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(cfgs) {
		t.Fatalf("batch results %d, want %d", len(batch), len(cfgs))
	}
	for i, cfg := range cfgs {
		solo, err := RunTraceFast(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != solo {
			t.Errorf("config %v: batch %+v != solo %+v", cfg, batch[i], solo)
		}
	}
}

// TestBatchAccessBlockChunkInvariant checks that feeding a trace through
// AccessBlock in arbitrary chunk sizes produces the same statistics as
// one whole-trace pass — the property the streaming external-trace sweep
// depends on.
func TestBatchAccessBlockChunkInvariant(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(32, 4, 1),
		DefaultConfig(64, 8, 2),
		DefaultConfig(256, 16, 4),
	}
	tr := trace.Concat(
		trace.Loop(0, 512, 4, 3),
		trace.PingPong(0, 1024, 200),
	)
	whole, err := RunBatch(cfgs, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, 1000, tr.Len() + 1} {
		b, err := NewBatch(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		refs := tr.Refs()
		for start := 0; start < len(refs); start += chunk {
			b.AccessBlock(refs[start:min(start+chunk, len(refs))])
		}
		for i, st := range b.Stats() {
			if st != whole[i] {
				t.Errorf("chunk %d config %d: %+v != whole-trace %+v", chunk, i, st, whole[i])
			}
		}
	}
}

func TestBatchErrors(t *testing.T) {
	if _, err := NewBatch(nil); err == nil {
		t.Error("empty batch should fail")
	}
	if _, err := NewBatch([]Config{DefaultConfig(60, 8, 1)}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestBatchReset(t *testing.T) {
	b, err := NewBatch([]Config{DefaultConfig(64, 8, 1)})
	if err != nil {
		t.Fatal(err)
	}
	b.Access(trace.Ref{Addr: 0})
	b.Reset()
	if got := b.Stats()[0]; got != (Stats{}) {
		t.Errorf("stats after reset: %+v", got)
	}
}

func TestVictimBufferRecoversConflicts(t *testing.T) {
	// Ping-pong between two lines mapping to the same direct-mapped set:
	// without a victim buffer every access misses; with one line of
	// victim storage everything after the cold misses hits.
	base := DefaultConfig(64, 8, 1)
	tr := trace.PingPong(0, 64, 50)
	plain, err := RunTrace(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Hits != 0 {
		t.Fatalf("baseline should thrash: %+v", plain)
	}
	withVictim := base
	withVictim.VictimLines = 1
	vc, err := RunTrace(withVictim, tr)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Misses != 2 {
		t.Errorf("victim cache should leave only cold misses: %+v", vc)
	}
	if vc.VictimHits != vc.Hits {
		t.Errorf("all hits here come from the victim buffer: hits=%d victim=%d", vc.Hits, vc.VictimHits)
	}
	if vc.Hits+vc.Misses != vc.Accesses {
		t.Errorf("accounting broken: %+v", vc)
	}
}

func TestVictimBufferCapacity(t *testing.T) {
	// Three conflicting lines, one-entry buffer: rotation evicts the
	// buffer before reuse, so it cannot help. A two-entry buffer can.
	cfg := DefaultConfig(64, 8, 1)
	var tr trace.Trace
	for i := 0; i < 30; i++ {
		tr.Append(trace.Ref{Addr: 0})
		tr.Append(trace.Ref{Addr: 64})
		tr.Append(trace.Ref{Addr: 128})
	}
	small := cfg
	small.VictimLines = 1
	one, err := RunTraceFast(small, &tr)
	if err != nil {
		t.Fatal(err)
	}
	big := cfg
	big.VictimLines = 2
	two, err := RunTraceFast(big, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if one.Hits != 0 {
		t.Errorf("1-entry buffer should not rescue a 3-line rotation: %+v", one)
	}
	if two.Misses != 3 {
		t.Errorf("2-entry buffer should leave only cold misses: %+v", two)
	}
}

func TestVictimDirtyWriteback(t *testing.T) {
	// A dirty line must survive a trip through the victim buffer and be
	// written back when finally dropped.
	cfg := DefaultConfig(16, 8, 1) // 2 lines
	cfg.VictimLines = 1
	c := mustCache(t, cfg)
	c.Access(trace.Ref{Addr: 0, Kind: trace.Write}) // dirty A
	c.Access(trace.Ref{Addr: 16, Kind: trace.Read}) // evict A -> victim
	c.Access(trace.Ref{Addr: 0, Kind: trace.Read})  // victim hit, A back (dirty), B -> victim
	c.Access(trace.Ref{Addr: 16, Kind: trace.Read}) // victim hit, B back, A(dirty) -> victim
	c.Access(trace.Ref{Addr: 32, Kind: trace.Read}) // evict B -> victim, drops A: writeback
	st := c.Stats()
	if st.WriteBacks != 1 {
		t.Errorf("write-backs = %d, want 1 (dirty line dropped from victim)", st.WriteBacks)
	}
	if st.VictimHits != 2 {
		t.Errorf("victim hits = %d, want 2", st.VictimHits)
	}
}

func TestVictimConfigValidation(t *testing.T) {
	cfg := DefaultConfig(64, 8, 1)
	cfg.VictimLines = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative victim size should fail")
	}
}

// Property: a victim buffer never increases the miss count, and the
// no-buffer configuration equals the original simulator.
func TestQuickVictimNeverHurts(t *testing.T) {
	f := func(seed int64, vExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.Random(rng, 0, 2048, 600)
		base := DefaultConfig(128, 8, 1)
		plain, err := RunTraceFast(base, tr)
		if err != nil {
			return false
		}
		vc := base
		vc.VictimLines = 1 << (vExp % 4) // 1..8
		withVictim, err := RunTraceFast(vc, tr)
		if err != nil {
			return false
		}
		if withVictim.Misses > plain.Misses {
			return false
		}
		return withVictim.Hits+withVictim.Misses == withVictim.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
