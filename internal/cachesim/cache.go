package cachesim

import (
	"fmt"
	"io"

	"memexplore/internal/trace"
)

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse is a monotonically increasing timestamp for LRU; fillTime is
	// the fill timestamp for FIFO.
	lastUse  uint64
	fillTime uint64
}

// Cache is a single-level cache simulator instance. It is not safe for
// concurrent use; create one Cache per goroutine.
type Cache struct {
	cfg   Config
	sets  [][]line
	lines []line // flat backing array for sets: set i is lines[i*Assoc : (i+1)*Assoc]
	clock uint64
	stats Stats

	// Geometry derived from cfg once at construction. The per-line lookup
	// is the simulator's hot loop; recomputing NumSets/IndexBits there
	// costs two integer divisions per line touch, which dominates small-set
	// scans in wide sweeps.
	offShift uint   // log2(LineBytes)
	idxShift uint   // log2(NumSets)
	setMask  uint64 // NumSets - 1

	// rngState drives the Random replacement policy (xorshift64).
	rngState uint64

	// seen tracks every line address ever touched, for compulsory-miss
	// classification. shadow is a fully-associative LRU cache of the same
	// capacity, for capacity-vs-conflict classification. classify3C can be
	// disabled to save time/memory in wide sweeps.
	classify3C bool
	seen       map[uint64]struct{}
	shadow     *lruShadow

	// victim is the optional victim buffer (Config.VictimLines > 0),
	// ordered most recently inserted first.
	victim []victimEntry
}

type victimEntry struct {
	lineAddr uint64
	dirty    bool
}

// New builds a cache for the given configuration with 3C classification
// enabled.
func New(cfg Config) (*Cache, error) {
	return newCache(cfg, true)
}

// NewFast builds a cache without 3C miss classification; Stats will report
// zero for the per-class counters. Useful in large exploration sweeps.
func NewFast(cfg Config) (*Cache, error) {
	return newCache(cfg, false)
}

func newCache(cfg Config, classify bool) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:        cfg,
		sets:       make([][]line, cfg.NumSets()),
		lines:      newLines(cfg.NumSets() * cfg.Assoc),
		offShift:   uint(cfg.OffsetBits()),
		idxShift:   uint(cfg.IndexBits()),
		setMask:    uint64(cfg.NumSets() - 1),
		rngState:   0x9e3779b97f4a7c15,
		classify3C: classify,
	}
	// Sets are views into one contiguous backing array: the whole cache
	// state stays in a few hardware cache lines during a simulation pass.
	for i := range c.sets {
		c.sets[i] = c.lines[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	if classify {
		c.seen = make(map[uint64]struct{})
		c.shadow = newLRUShadow(cfg.NumLines())
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears all cache contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
	c.rngState = 0x9e3779b97f4a7c15
	c.victim = nil
	if c.classify3C {
		c.seen = make(map[uint64]struct{})
		c.shadow = newLRUShadow(c.cfg.NumLines())
	}
}

// AccessResult reports the outcome of a single reference.
type AccessResult struct {
	Hit bool
	// Class is NotMiss on a hit, otherwise the 3C class of the (first)
	// missing line. Caches built with NewFast do not classify; their
	// misses all report Capacity and the per-class Stats counters stay 0.
	Class MissClass
	// LinesTouched is how many distinct cache lines the reference spans
	// (>1 only for references that straddle a line boundary).
	LinesTouched int
}

// Access simulates one reference and updates statistics. A reference that
// spans multiple lines counts as one access; it is a hit only if every
// spanned line hits. The LRU/FIFO clock advances once per spanned line
// (not per reference), so recency is totally ordered even within a
// spanning reference — the exact-LRU property the inclusion engine's
// stack model relies on.
func (c *Cache) Access(r trace.Ref) AccessResult {
	first := r.Addr >> c.offShift
	last := r.LastByte() >> c.offShift

	res := AccessResult{Hit: true, Class: NotMiss, LinesTouched: int(last-first) + 1}
	for la := first; la <= last; la++ {
		hit, class := c.accessLine(la, r.Kind)
		if !hit && res.Hit {
			res.Hit = false
			res.Class = class
		}
	}

	c.stats.Accesses++
	switch r.Kind {
	case trace.Read:
		c.stats.Reads++
	case trace.Write:
		c.stats.Writes++
	case trace.Fetch:
		c.stats.Fetches++
	}
	if res.Hit {
		c.stats.Hits++
		switch r.Kind {
		case trace.Read:
			c.stats.ReadHits++
		case trace.Write:
			c.stats.WriteHits++
		}
	} else {
		c.stats.Misses++
		switch r.Kind {
		case trace.Read:
			c.stats.ReadMisses++
		case trace.Write:
			c.stats.WriteMisses++
		}
		switch res.Class {
		case Compulsory:
			c.stats.CompulsoryMisses++
		case Capacity:
			c.stats.CapacityMisses++
		case Conflict:
			c.stats.ConflictMisses++
		}
	}
	return res
}

// AccessBlock simulates a slice of references in order, exactly
// equivalent to calling Access on each (same statistics, same cache
// contents), discarding the per-access results. Caches without 3C
// classification and without a victim buffer take a specialized hot
// path with the per-line lookup inlined — the batched sweep engine
// processes the trace in blocks so each cache's state stays resident
// while it runs, instead of fanning every reference across all caches.
func (c *Cache) AccessBlock(refs []trace.Ref) {
	if c.classify3C || c.cfg.VictimLines > 0 {
		for _, r := range refs {
			c.Access(r)
		}
		return
	}
	writeBack, writeAlloc := c.cfg.WriteBack, c.cfg.WriteAllocate
	if c.cfg.Assoc == 1 {
		// Direct-mapped: the set is a single line, so the way scan, empty-way
		// search and victim pick all collapse to one indexed compare (the
		// replacement policy is irrelevant when there is only one way).
		// Clock and statistics live in locals for the whole block — the loop
		// makes no calls, so they stay in registers.
		mask := c.setMask
		lines := c.lines[:mask+1]
		offShift, idxShift := c.offShift, c.idxShift
		clock := c.clock
		st := c.stats
		for _, r := range refs {
			first := r.Addr >> offShift
			last := r.LastByte() >> offShift
			isWrite := r.Kind == trace.Write
			hit := true
			for la := first; la <= last; la++ {
				clock++
				l := &lines[la&mask]
				tag := la >> idxShift
				if l.valid && l.tag == tag {
					l.lastUse = clock
					if isWrite {
						if writeBack {
							l.dirty = true
						} else {
							st.WriteThroughs++
						}
					}
					continue
				}
				hit = false
				if isWrite && !writeAlloc {
					// Write miss without allocation: goes straight to memory.
					st.WriteThroughs++
					continue
				}
				if l.valid && l.dirty {
					st.WriteBacks++
				}
				*l = line{tag: tag, valid: true, dirty: isWrite && writeBack, lastUse: clock, fillTime: clock}
				if isWrite && !writeBack {
					st.WriteThroughs++
				}
				st.LinesFetched++
			}
			st.tally(r.Kind, hit)
		}
		c.clock = clock
		c.stats = st
		return
	}
	for _, r := range refs {
		first := r.Addr >> c.offShift
		last := r.LastByte() >> c.offShift
		isWrite := r.Kind == trace.Write
		hit := true
		for la := first; la <= last; la++ {
			c.clock++
			setIdx := la & c.setMask
			tag := la >> c.idxShift
			set := c.sets[setIdx]
			found := false
			for i := range set {
				if set[i].valid && set[i].tag == tag {
					set[i].lastUse = c.clock
					if isWrite {
						if writeBack {
							set[i].dirty = true
						} else {
							c.stats.WriteThroughs++
						}
					}
					found = true
					break
				}
			}
			if found {
				continue
			}
			hit = false
			if isWrite && !writeAlloc {
				// Write miss without allocation: goes straight to memory.
				c.stats.WriteThroughs++
				continue
			}
			c.installLine(set, setIdx, tag, r.Kind, false)
			if isWrite && !writeBack {
				c.stats.WriteThroughs++
			}
			c.stats.LinesFetched++
		}
		c.stats.tally(r.Kind, hit)
	}
}

// tally applies the per-access statistics shared by the AccessBlock fast
// paths, mirroring the tail of Access for non-classified caches (every
// miss carries the Capacity placeholder class, see accessLine).
func (st *Stats) tally(kind trace.Kind, hit bool) {
	st.Accesses++
	switch kind {
	case trace.Read:
		st.Reads++
	case trace.Write:
		st.Writes++
	case trace.Fetch:
		st.Fetches++
	}
	if hit {
		st.Hits++
		switch kind {
		case trace.Read:
			st.ReadHits++
		case trace.Write:
			st.WriteHits++
		}
	} else {
		st.Misses++
		switch kind {
		case trace.Read:
			st.ReadMisses++
		case trace.Write:
			st.WriteMisses++
		}
		st.CapacityMisses++
	}
}

// accessLine performs the per-line lookup/fill and returns whether the line
// hit and, if not, its 3C class.
func (c *Cache) accessLine(lineAddr uint64, kind trace.Kind) (bool, MissClass) {
	setIdx := lineAddr & c.setMask
	tag := lineAddr >> c.idxShift
	set := c.sets[setIdx]
	c.clock++

	// Shadow structures are updated on every line touch so that the
	// classification reflects the same reference stream.
	var shadowHit, everSeen bool
	if c.classify3C {
		_, everSeen = c.seen[lineAddr]
		c.seen[lineAddr] = struct{}{}
		shadowHit = c.shadow.touch(lineAddr)
	}

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			if kind == trace.Write {
				if c.cfg.WriteBack {
					set[i].dirty = true
				} else {
					c.stats.WriteThroughs++
				}
			}
			return true, NotMiss
		}
	}

	// Main-cache miss: try the victim buffer before declaring a miss.
	if c.cfg.VictimLines > 0 {
		if entry, ok := c.victimTake(lineAddr); ok {
			c.stats.VictimHits++
			c.installLine(set, setIdx, tag, kind, entry.dirty)
			return true, NotMiss
		}
	}

	// Miss. Classify first.
	class := Conflict
	if c.classify3C {
		if !everSeen {
			class = Compulsory
		} else if !shadowHit {
			class = Capacity
		}
	} else {
		class = Capacity // aggregate-only placeholder; per-class stats stay 0
	}

	if kind == trace.Write && !c.cfg.WriteAllocate {
		// Write miss without allocation: goes straight to memory.
		c.stats.WriteThroughs++
		return false, class
	}

	c.installLine(set, setIdx, tag, kind, false)
	if kind == trace.Write && !c.cfg.WriteBack {
		c.stats.WriteThroughs++
	}
	c.stats.LinesFetched++
	return false, class
}

// installLine fills the line with the given tag into the set, evicting a
// victim way if needed. wasDirty carries dirtiness recovered from the
// victim buffer.
func (c *Cache) installLine(set []line, setIdx, tag uint64, kind trace.Kind, wasDirty bool) {
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = c.pickVictim(set)
	}
	if set[victim].valid {
		c.evictLine(set[victim], setIdx)
	}
	set[victim] = line{
		tag:      tag,
		valid:    true,
		dirty:    wasDirty || (kind == trace.Write && c.cfg.WriteBack),
		lastUse:  c.clock,
		fillTime: c.clock,
	}
}

// evictLine disposes of an evicted main-cache line: into the victim buffer
// when one is configured, else straight to memory (write-back if dirty).
func (c *Cache) evictLine(l line, setIdx uint64) {
	if c.cfg.VictimLines == 0 {
		if l.dirty {
			c.stats.WriteBacks++
		}
		return
	}
	lineAddr := l.tag<<c.idxShift | setIdx
	c.victimInsert(victimEntry{lineAddr: lineAddr, dirty: l.dirty})
}

// victimTake removes and returns the buffer entry for lineAddr.
func (c *Cache) victimTake(lineAddr uint64) (victimEntry, bool) {
	for i, e := range c.victim {
		if e.lineAddr == lineAddr {
			c.victim = append(c.victim[:i], c.victim[i+1:]...)
			return e, true
		}
	}
	return victimEntry{}, false
}

// victimInsert pushes an entry, evicting the oldest beyond capacity.
func (c *Cache) victimInsert(e victimEntry) {
	c.victim = append([]victimEntry{e}, c.victim...)
	if len(c.victim) > c.cfg.VictimLines {
		dropped := c.victim[len(c.victim)-1]
		c.victim = c.victim[:len(c.victim)-1]
		if dropped.dirty {
			c.stats.WriteBacks++
		}
	}
}

func (c *Cache) pickVictim(set []line) int {
	switch c.cfg.Replacement {
	case LRU:
		v, best := 0, set[0].lastUse
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < best {
				v, best = i, set[i].lastUse
			}
		}
		return v
	case FIFO:
		v, best := 0, set[0].fillTime
		for i := 1; i < len(set); i++ {
			if set[i].fillTime < best {
				v, best = i, set[i].fillTime
			}
		}
		return v
	case Random:
		// xorshift64
		x := c.rngState
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		c.rngState = x
		return int(x % uint64(len(set)))
	default:
		return 0
	}
}

// Run drains a Source through the cache and returns the statistics
// accumulated over the whole run (including any prior accesses).
func (c *Cache) Run(src trace.Source) (Stats, error) {
	for {
		r, err := src.Next()
		if err == io.EOF {
			return c.stats, nil
		}
		if err != nil {
			return c.stats, fmt.Errorf("cachesim: reading trace: %w", err)
		}
		c.Access(r)
	}
}

// RunTrace simulates an in-memory trace on a fresh cache of the given
// configuration and returns the statistics.
func RunTrace(cfg Config, tr *trace.Trace) (Stats, error) {
	c, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	return c.Run(tr.Reader())
}

// RunTraceFast is RunTrace without 3C classification.
func RunTraceFast(cfg Config, tr *trace.Trace) (Stats, error) {
	c, err := NewFast(cfg)
	if err != nil {
		return Stats{}, err
	}
	return c.Run(tr.Reader())
}

// Contains reports whether the line holding addr is currently resident.
// Intended for tests and invariant checks.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := c.cfg.LineAddr(addr)
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> c.idxShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// ResidentLines returns the number of valid lines currently in the cache.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
