package cachesim

import (
	"context"
	"fmt"
	"io"

	"memexplore/internal/trace"
)

// CancelCheckInterval is how many references RunContext and
// RunTraceContext process between context checks: a canceled context
// stops a running batch within one interval.
const CancelCheckInterval = 8192

// Batch simulates many cache configurations in a single pass over a
// trace — the classic Dinero IV trick for sweeps: the trace is read once
// and fanned out to every cache, which matters when trace generation or
// I/O dominates.
type Batch struct {
	caches []*Cache
}

// NewBatch builds a batch of caches, one per configuration, without 3C
// classification (use individual caches when classification is needed).
func NewBatch(cfgs []Config) (*Batch, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cachesim: batch needs at least one configuration")
	}
	b := &Batch{caches: make([]*Cache, len(cfgs))}
	for i, cfg := range cfgs {
		c, err := NewFast(cfg)
		if err != nil {
			return nil, fmt.Errorf("cachesim: batch config %d: %w", i, err)
		}
		b.caches[i] = c
	}
	return b, nil
}

// Access feeds one reference to every cache.
func (b *Batch) Access(r trace.Ref) {
	for _, c := range b.caches {
		c.Access(r)
	}
}

// Run drains a source through every cache and returns per-configuration
// statistics in input order.
func (b *Batch) Run(src trace.Source) ([]Stats, error) {
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cachesim: batch reading trace: %w", err)
		}
		b.Access(r)
	}
	return b.Stats(), nil
}

// RunContext is Run with cancellation: the context is checked every
// CancelCheckInterval references, so a canceled or expired context stops
// the pass within one interval and returns ctx.Err().
func (b *Batch) RunContext(ctx context.Context, src trace.Source) ([]Stats, error) {
	for n := 0; ; n++ {
		if n%CancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cachesim: batch reading trace: %w", err)
		}
		b.Access(r)
	}
	return b.Stats(), nil
}

// RunTraceContext drives an in-memory trace through every cache in one
// pass — the sweep engine's hot path. The context is checked every
// CancelCheckInterval references (a canceled context stops the pass
// within one interval and returns ctx.Err()); observe, when non-nil, is
// invoked for every reference in the same traversal, which lets callers
// fuse per-trace measurements (e.g. address-bus switching) into the
// simulation pass instead of re-scanning the trace.
// The trace is walked in CancelCheckInterval-sized blocks, and within a
// block each cache consumes the whole block before the next cache runs:
// the per-cache state stays resident instead of every reference fanning
// out across all caches, which dominates wall-clock for wide batches.
// Statistics and final state are identical either way — caches do not
// interact.
func (b *Batch) RunTraceContext(ctx context.Context, tr *trace.Trace, observe func(trace.Ref)) ([]Stats, error) {
	refs := tr.Refs()
	for start := 0; ; start += CancelCheckInterval {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if start >= len(refs) {
			break
		}
		end := min(start+CancelCheckInterval, len(refs))
		block := refs[start:end]
		if observe != nil {
			for _, r := range block {
				observe(r)
			}
		}
		for _, c := range b.caches {
			c.AccessBlock(block)
		}
	}
	return b.Stats(), nil
}

// AccessBlock feeds a block of references to every cache, letting each
// cache consume the whole block before the next runs (the cache-resident
// traversal of RunTraceContext). It is the chunk-granular entry point for
// streaming callers — e.g. the external-trace sweep, which reads a trace
// once in fixed-size chunks and fans each chunk out to the batch —
// producing statistics identical to per-reference Access in any chunking.
func (b *Batch) AccessBlock(block []trace.Ref) {
	for _, c := range b.caches {
		c.AccessBlock(block)
	}
}

// Stats returns the per-configuration statistics in input order.
func (b *Batch) Stats() []Stats {
	out := make([]Stats, len(b.caches))
	for i, c := range b.caches {
		out[i] = c.Stats()
	}
	return out
}

// Reset clears every cache in the batch.
func (b *Batch) Reset() {
	for _, c := range b.caches {
		c.Reset()
	}
}

// Release returns the caches' backing arrays to a package pool for reuse
// by later batches. Call after the final Stats(); the batch must not be
// used afterwards.
func (b *Batch) Release() {
	for _, c := range b.caches {
		c.release()
	}
	b.caches = nil
}

// RunBatch simulates a trace against every configuration in one pass.
func RunBatch(cfgs []Config, tr *trace.Trace) ([]Stats, error) {
	b, err := NewBatch(cfgs)
	if err != nil {
		return nil, err
	}
	return b.Run(tr.Reader())
}
