package cachesim

import (
	"fmt"
	"io"

	"memexplore/internal/trace"
)

// Batch simulates many cache configurations in a single pass over a
// trace — the classic Dinero IV trick for sweeps: the trace is read once
// and fanned out to every cache, which matters when trace generation or
// I/O dominates.
type Batch struct {
	caches []*Cache
}

// NewBatch builds a batch of caches, one per configuration, without 3C
// classification (use individual caches when classification is needed).
func NewBatch(cfgs []Config) (*Batch, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cachesim: batch needs at least one configuration")
	}
	b := &Batch{caches: make([]*Cache, len(cfgs))}
	for i, cfg := range cfgs {
		c, err := NewFast(cfg)
		if err != nil {
			return nil, fmt.Errorf("cachesim: batch config %d: %w", i, err)
		}
		b.caches[i] = c
	}
	return b, nil
}

// Access feeds one reference to every cache.
func (b *Batch) Access(r trace.Ref) {
	for _, c := range b.caches {
		c.Access(r)
	}
}

// Run drains a source through every cache and returns per-configuration
// statistics in input order.
func (b *Batch) Run(src trace.Source) ([]Stats, error) {
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cachesim: batch reading trace: %w", err)
		}
		b.Access(r)
	}
	return b.Stats(), nil
}

// Stats returns the per-configuration statistics in input order.
func (b *Batch) Stats() []Stats {
	out := make([]Stats, len(b.caches))
	for i, c := range b.caches {
		out[i] = c.Stats()
	}
	return out
}

// Reset clears every cache in the batch.
func (b *Batch) Reset() {
	for _, c := range b.caches {
		c.Reset()
	}
}

// RunBatch simulates a trace against every configuration in one pass.
func RunBatch(cfgs []Config, tr *trace.Trace) ([]Stats, error) {
	b, err := NewBatch(cfgs)
	if err != nil {
		return nil, err
	}
	return b.Run(tr.Reader())
}
