package cachesim

import (
	"math/rand"
	"testing"
)

// TestPerSetStacksBoundedMatchesUnbounded drives identical touch streams
// through bounded and unbounded stacks: the bounded stack must report the
// same distance whenever the unbounded distance is below the bound, -1
// otherwise, and identical write-back counts at every tracked
// associativity.
func TestPerSetStacksBoundedMatchesUnbounded(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, sets := range []int{1, 2, 8} {
			for _, depth := range []int{1, 2, 4, 8} {
				bounded, err := NewPerSetStacks(sets, depth)
				if err != nil {
					t.Fatal(err)
				}
				unbounded, err := NewPerSetStacks(sets, 0)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 4000; i++ {
					la := uint64(rng.Intn(64))
					write := rng.Intn(3) == 0
					db := bounded.Touch(la, write)
					du := unbounded.Touch(la, write)
					want := du
					if du < 0 || du >= depth {
						want = -1
					}
					if db != want {
						t.Fatalf("sets=%d depth=%d touch %d (la=%d): bounded %d, unbounded %d",
							sets, depth, i, la, db, du)
					}
				}
				for a := 1; a <= depth; a++ {
					if b, u := bounded.WritebacksAt(a), unbounded.WritebacksAt(a); b != u {
						t.Fatalf("sets=%d depth=%d: writebacks(%d) bounded %d, unbounded %d",
							sets, depth, a, b, u)
					}
				}
			}
		}
	}
}

// TestPerSetStacksReset checks that a reset stack replays to identical
// distances and write-back counts.
func TestPerSetStacksReset(t *testing.T) {
	s, err := NewPerSetStacks(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	las := make([]uint64, 500)
	for i := range las {
		las[i] = uint64(rng.Intn(32))
	}
	run := func() ([]int, []uint64) {
		ds := make([]int, len(las))
		for i, la := range las {
			ds[i] = s.Touch(la, la%3 == 0)
		}
		return ds, s.Writebacks()
	}
	d1, wb1 := run()
	s.Reset()
	d2, wb2 := run()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("touch %d: distance %d after Reset, want %d", i, d2[i], d1[i])
		}
	}
	for a := range wb1 {
		if wb1[a] != wb2[a] {
			t.Fatalf("writebacks(%d) = %d after Reset, want %d", a, wb2[a], wb1[a])
		}
	}
}

// FuzzPerSetStacks feeds arbitrary byte streams through bounded and
// unbounded stacks and checks the structural invariants: a distance is
// always below the set's occupancy at touch time, touches = hits + cold
// and out-of-bound misses, occupancy never exceeds the bound, and the
// bounded stack agrees with the unbounded oracle on distances and
// write-back counts.
func FuzzPerSetStacks(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 0xFF, 7}, uint8(2), uint8(2))
	f.Add([]byte("abcabcabc"), uint8(1), uint8(4))
	f.Add([]byte{}, uint8(8), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, setsRaw, depthRaw uint8) {
		sets := 1 << (setsRaw % 6)   // 1..32
		depth := 1 + int(depthRaw%8) // 1..8
		bounded, err := NewPerSetStacks(sets, depth)
		if err != nil {
			t.Fatal(err)
		}
		unbounded, err := NewPerSetStacks(sets, 0)
		if err != nil {
			t.Fatal(err)
		}
		hits, misses := 0, 0
		for i, b := range data {
			la := uint64(b &^ 1)
			write := b&1 != 0
			set := int(la) & (sets - 1)
			occ := bounded.Occupancy(set)
			if occ > depth {
				t.Fatalf("touch %d: occupancy %d exceeds depth %d", i, occ, depth)
			}
			d := bounded.Touch(la, write)
			du := unbounded.Touch(la, write)
			if d >= 0 {
				hits++
				if d >= occ {
					t.Fatalf("touch %d: distance %d not below prior occupancy %d", i, d, occ)
				}
				if d != du {
					t.Fatalf("touch %d: bounded distance %d, unbounded %d", i, d, du)
				}
			} else {
				misses++
				if du >= 0 && du < depth {
					t.Fatalf("touch %d: bounded missed but unbounded found depth %d < %d", i, du, depth)
				}
			}
		}
		if hits+misses != len(data) {
			t.Fatalf("hits %d + misses %d != touches %d", hits, misses, len(data))
		}
		for a := 1; a <= depth; a++ {
			if b, u := bounded.WritebacksAt(a), unbounded.WritebacksAt(a); b != u {
				t.Fatalf("writebacks(%d): bounded %d, unbounded %d", a, b, u)
			}
		}
	})
}
