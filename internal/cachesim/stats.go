package cachesim

import (
	"fmt"
	"math"
)

// MissClass categorizes a miss under the 3C model (Hill): a compulsory miss
// is the first touch of a line ever; a capacity miss would also miss in a
// fully associative LRU cache of the same total size; the remainder are
// conflict misses — the kind the paper's off-chip assignment (§4.1)
// eliminates.
type MissClass int

const (
	// NotMiss marks an access that hit.
	NotMiss MissClass = iota
	// Compulsory is a cold/first-reference miss.
	Compulsory
	// Capacity is a miss that a fully associative cache of equal size
	// would also incur.
	Capacity
	// Conflict is a miss caused purely by limited associativity / mapping.
	Conflict
)

// String returns the class name.
func (m MissClass) String() string {
	switch m {
	case NotMiss:
		return "hit"
	case Compulsory:
		return "compulsory"
	case Capacity:
		return "capacity"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("MissClass(%d)", int(m))
	}
}

// Stats accumulates simulation results.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64

	Reads       uint64
	ReadHits    uint64
	ReadMisses  uint64
	Writes      uint64
	WriteHits   uint64
	WriteMisses uint64
	Fetches     uint64

	// 3C decomposition of Misses.
	CompulsoryMisses uint64
	CapacityMisses   uint64
	ConflictMisses   uint64

	// Traffic: lines fetched from the next level and dirty lines written
	// back (write-back mode) or words written through (write-through mode
	// counts each write as one WriteThrough).
	LinesFetched  uint64
	WriteBacks    uint64
	WriteThroughs uint64

	// VictimHits counts main-cache misses recovered from the victim
	// buffer (counted within Hits, not Misses).
	VictimHits uint64
}

// MissRate returns Misses/Accesses, or 0 for an empty run.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns Hits/Accesses, or 0 for an empty run.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// ReadMissRate returns ReadMisses/Reads, or 0 if there were no reads.
func (s Stats) ReadMissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.Reads)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Reads += o.Reads
	s.ReadHits += o.ReadHits
	s.ReadMisses += o.ReadMisses
	s.Writes += o.Writes
	s.WriteHits += o.WriteHits
	s.WriteMisses += o.WriteMisses
	s.Fetches += o.Fetches
	s.CompulsoryMisses += o.CompulsoryMisses
	s.CapacityMisses += o.CapacityMisses
	s.ConflictMisses += o.ConflictMisses
	s.LinesFetched += o.LinesFetched
	s.WriteBacks += o.WriteBacks
	s.WriteThroughs += o.WriteThroughs
	s.VictimHits += o.VictimHits
}

// Scaled returns a copy with every count multiplied by f and rounded to
// the nearest integer — the rescaling step of sampled trace sweeps.
// Rounding each field independently means derived identities (for
// example Hits + Misses == Accesses) hold only to ±1; ratios such as
// MissRate are unaffected by the common factor up to that rounding.
func (s Stats) Scaled(f float64) Stats {
	sc := func(v uint64) uint64 {
		return uint64(math.Round(float64(v) * f))
	}
	return Stats{
		Accesses:         sc(s.Accesses),
		Hits:             sc(s.Hits),
		Misses:           sc(s.Misses),
		Reads:            sc(s.Reads),
		ReadHits:         sc(s.ReadHits),
		ReadMisses:       sc(s.ReadMisses),
		Writes:           sc(s.Writes),
		WriteHits:        sc(s.WriteHits),
		WriteMisses:      sc(s.WriteMisses),
		Fetches:          sc(s.Fetches),
		CompulsoryMisses: sc(s.CompulsoryMisses),
		CapacityMisses:   sc(s.CapacityMisses),
		ConflictMisses:   sc(s.ConflictMisses),
		LinesFetched:     sc(s.LinesFetched),
		WriteBacks:       sc(s.WriteBacks),
		WriteThroughs:    sc(s.WriteThroughs),
		VictimHits:       sc(s.VictimHits),
	}
}

// String summarizes the statistics in one line.
func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d hits=%d misses=%d missrate=%.4f (comp=%d cap=%d conf=%d)",
		s.Accesses, s.Hits, s.Misses, s.MissRate(),
		s.CompulsoryMisses, s.CapacityMisses, s.ConflictMisses)
}
