package cachesim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"memexplore/internal/trace"
)

// blockTestTrace mixes reads, writes and line-straddling references so the
// AccessBlock fast paths see every branch.
func blockTestTrace() *trace.Trace {
	rng := rand.New(rand.NewSource(7))
	tr := trace.Concat(
		trace.Loop(0, 1024, 4, 3),
		trace.PingPong(0, 256, 80),
		trace.Random(rng, 0, 4096, 400),
	)
	refs := tr.Refs()
	for i := range refs {
		switch i % 5 {
		case 1:
			refs[i].Kind = trace.Write
		case 2:
			refs[i].Kind = trace.Fetch
		case 3:
			// Straddle a line boundary: wide access at an odd offset.
			refs[i].Addr |= 3
			refs[i].Size = 8
		}
	}
	return tr
}

// TestAccessBlockMatchesAccess checks the batched per-block path against
// per-reference Access across policies, write modes and geometries,
// including the configurations that take the AccessBlock fallback path
// (victim buffers).
func TestAccessBlockMatchesAccess(t *testing.T) {
	tr := blockTestTrace()
	var cfgs []Config
	for _, geom := range [][3]int{{64, 8, 1}, {256, 16, 2}, {512, 8, 4}, {128, 16, 8}} {
		for _, repl := range []Replacement{LRU, FIFO, Random} {
			for _, wb := range []bool{true, false} {
				for _, wa := range []bool{true, false} {
					for _, victim := range []int{0, 2} {
						cfg := DefaultConfig(geom[0], geom[1], geom[2])
						cfg.Replacement = repl
						cfg.WriteBack = wb
						cfg.WriteAllocate = wa
						cfg.VictimLines = victim
						cfgs = append(cfgs, cfg)
					}
				}
			}
		}
	}
	for _, cfg := range cfgs {
		ref := mustCache(t, cfg)
		for _, r := range tr.Refs() {
			ref.Access(r)
		}
		blk := mustCache(t, cfg)
		// Uneven chunks exercise the block boundaries.
		refs := tr.Refs()
		for start := 0; start < len(refs); start += 97 {
			end := min(start+97, len(refs))
			blk.AccessBlock(refs[start:end])
		}
		if ref.Stats() != blk.Stats() {
			t.Errorf("%+v: AccessBlock stats %+v != Access stats %+v", cfg, blk.Stats(), ref.Stats())
		}
	}
}

func TestRunTraceContextMatchesRun(t *testing.T) {
	tr := blockTestTrace()
	cfgs := []Config{
		DefaultConfig(64, 8, 1),
		DefaultConfig(256, 16, 2),
		DefaultConfig(512, 8, 4),
	}
	want, err := RunBatch(cfgs, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var observed int
	got, err := b.RunTraceContext(context.Background(), tr, func(trace.Ref) { observed++ })
	if err != nil {
		t.Fatal(err)
	}
	if observed != tr.Len() {
		t.Errorf("observe saw %d refs, want %d", observed, tr.Len())
	}
	for i := range cfgs {
		if got[i] != want[i] {
			t.Errorf("config %d: RunTraceContext %+v != Run %+v", i, got[i], want[i])
		}
	}
}

func TestRunTraceContextCancel(t *testing.T) {
	// A long synthetic trace, canceled from the observe callback: the pass
	// must stop within one CancelCheckInterval of the cancellation point.
	var tr trace.Trace
	for i := 0; i < 3*CancelCheckInterval; i++ {
		tr.Append(trace.Ref{Addr: uint64(i % 4096)})
	}
	b, err := NewBatch([]Config{DefaultConfig(64, 8, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	processed := 0
	_, err = b.RunTraceContext(ctx, &tr, func(trace.Ref) {
		processed++
		if processed == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if processed > 10+CancelCheckInterval {
		t.Errorf("processed %d refs after canceling at 10; want within one interval (%d)", processed, CancelCheckInterval)
	}

	// A pre-canceled context returns before touching any reference.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	touched := 0
	if _, err := b.RunTraceContext(pre, &tr, func(trace.Ref) { touched++ }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled err = %v, want context.Canceled", err)
	}
	if touched != 0 {
		t.Errorf("pre-canceled pass touched %d refs, want 0", touched)
	}
}
