package kernels

import "memexplore/internal/loopir"

// The §5 case study decomposes an MPEG decoder into nine kernel programs:
// VLD, Dequant, IDCT, Plus, Display, Store, and Prediction's Addr, Fetch
// and Compute. The paper takes them from Thordarson's behavioral MPEG
// implementation [7], which is not publicly available; the nests below are
// synthesized equivalents over standard MPEG-1 data shapes (8×8 blocks,
// 16×16 macroblocks, CIF-sized frame slices) chosen so that each kernel
// has a distinct access-pattern mix — sequential streaming, table lookup,
// block transform, strided frame writes — giving the heterogeneous
// per-kernel optima the §5 aggregation experiment needs. See DESIGN.md
// "MPEG decoder kernels".

// MPEGKernel couples a kernel nest with its invocation count in one
// decoded frame — the trip(k) weight of the §5 aggregation formulas.
type MPEGKernel struct {
	Nest *loopir.Nest
	// Trip is how many times the kernel runs per frame: 396 macroblocks
	// in a CIF frame, 6 blocks per macroblock for block-level kernels.
	Trip int64
	// Description summarizes the kernel's role.
	Description string
}

// MPEGVLD models variable-length decoding: a sequential scan of the coded
// bitstream with a decode-table lookup and a coefficient store. The real
// table lookup is data-dependent (vtab[bits[i]]); the IR is affine-only, so
// the lookup is modeled as a second sequential stream over a table of the
// same footprint, which preserves the bus/cache behaviour of a
// streaming-plus-table kernel.
func MPEGVLD() *loopir.Nest {
	i := loopir.Var("i")
	return &loopir.Nest{
		Name: "mpeg_vld",
		Arrays: []loopir.Array{
			{Name: "bits", Dims: []int{384}},
			{Name: "vtab", Dims: []int{384}},
			{Name: "coef", Dims: []int{384}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 383)},
		Body: []loopir.Ref{
			loopir.Read("bits", i),
			loopir.Read("vtab", i),
			loopir.Store("coef", i),
		},
	}
}

// MPEGDequant is the block-level inverse quantizer: six 8×8 blocks per
// macroblock, each coefficient scaled by a quantization-table entry.
func MPEGDequant() *loopir.Nest {
	b, i, j := loopir.Var("b"), loopir.Var("i"), loopir.Var("j")
	return &loopir.Nest{
		Name: "mpeg_dequant",
		Arrays: []loopir.Array{
			{Name: "blk", Dims: []int{6, 8, 8}},
			{Name: "qt", Dims: []int{8, 8}},
		},
		Loops: []loopir.Loop{
			loopir.ConstLoop("b", 0, 5),
			loopir.ConstLoop("i", 0, 7),
			loopir.ConstLoop("j", 0, 7),
		},
		Body: []loopir.Ref{
			loopir.Read("blk", b, i, j),
			loopir.Read("qt", i, j),
			loopir.Store("blk", b, i, j),
		},
	}
}

// MPEGIDCT is one pass of the 8×8 inverse DCT as a small matrix product:
// tmp[i][j] += blk[i][k]·cs[k][j].
func MPEGIDCT() *loopir.Nest {
	i, j, k := loopir.Var("i"), loopir.Var("j"), loopir.Var("k")
	return &loopir.Nest{
		Name: "mpeg_idct",
		Arrays: []loopir.Array{
			{Name: "blk", Dims: []int{8, 8}},
			{Name: "cs", Dims: []int{8, 8}},
			{Name: "tmp", Dims: []int{8, 8}},
		},
		Loops: []loopir.Loop{
			loopir.ConstLoop("i", 0, 7),
			loopir.ConstLoop("j", 0, 7),
			loopir.ConstLoop("k", 0, 7),
		},
		Body: []loopir.Ref{
			loopir.Read("blk", i, k),
			loopir.Read("cs", k, j),
			loopir.Read("tmp", i, j),
			loopir.Store("tmp", i, j),
		},
	}
}

// MPEGPlus adds the decoded residual to the motion-compensated prediction
// over a 16×16 macroblock.
func MPEGPlus() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	return &loopir.Nest{
		Name: "mpeg_plus",
		Arrays: []loopir.Array{
			{Name: "pred", Dims: []int{16, 16}},
			{Name: "res", Dims: []int{16, 16}},
			{Name: "out", Dims: []int{16, 16}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 15), loopir.ConstLoop("j", 0, 15)},
		Body: []loopir.Ref{
			loopir.Read("pred", i, j),
			loopir.Read("res", i, j),
			loopir.Store("out", i, j),
		},
	}
}

// MPEGDisplay streams a reconstructed frame slice out to the display
// buffer: long sequential reads, one write per pixel.
func MPEGDisplay() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	return &loopir.Nest{
		Name: "mpeg_display",
		Arrays: []loopir.Array{
			{Name: "frame", Dims: []int{64, 64}},
			{Name: "screen", Dims: []int{64, 64}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 63), loopir.ConstLoop("j", 0, 63)},
		Body: []loopir.Ref{
			loopir.Read("frame", i, j),
			loopir.Store("screen", i, j),
		},
	}
}

// MPEGStore writes a reconstructed 16×16 macroblock into the frame store
// (strided writes: consecutive macroblock rows are a frame-row apart).
func MPEGStore() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	return &loopir.Nest{
		Name: "mpeg_store",
		Arrays: []loopir.Array{
			{Name: "mb", Dims: []int{16, 16}},
			{Name: "frame", Dims: []int{64, 64}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 15), loopir.ConstLoop("j", 0, 15)},
		Body: []loopir.Ref{
			loopir.Read("mb", i, j),
			loopir.Store("frame", i, j),
		},
	}
}

// MPEGAddr is the prediction address generator: a short 1D pass over the
// motion vectors producing fetch addresses.
func MPEGAddr() *loopir.Nest {
	i := loopir.Var("i")
	return &loopir.Nest{
		Name: "mpeg_addr",
		Arrays: []loopir.Array{
			{Name: "mv", Dims: []int{64}},
			{Name: "fa", Dims: []int{64}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 63)},
		Body: []loopir.Ref{
			loopir.Read("mv", i),
			loopir.Store("fa", i),
		},
	}
}

// MPEGFetch reads a 17×17 reference window (16×16 plus one row/column for
// half-pel interpolation) from the reference frame into the prediction
// buffer.
func MPEGFetch() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	jp1 := loopir.Affine(1, "j", 1)
	return &loopir.Nest{
		Name: "mpeg_fetch",
		Arrays: []loopir.Array{
			{Name: "ref", Dims: []int{64, 64}},
			{Name: "pbuf", Dims: []int{16, 16}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 15), loopir.ConstLoop("j", 0, 15)},
		Body: []loopir.Ref{
			loopir.Read("ref", i, j),
			loopir.Read("ref", i, jp1),
			loopir.Store("pbuf", i, j),
		},
	}
}

// MPEGCompute averages forward and backward predictions (B-frame
// interpolation): pred[i][j] = (f[i][j] + bk[i][j])/2.
func MPEGCompute() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	return &loopir.Nest{
		Name: "mpeg_compute",
		Arrays: []loopir.Array{
			{Name: "f", Dims: []int{16, 16}},
			{Name: "bk", Dims: []int{16, 16}},
			{Name: "pred", Dims: []int{16, 16}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 15), loopir.ConstLoop("j", 0, 15)},
		Body: []loopir.Ref{
			loopir.Read("f", i, j),
			loopir.Read("bk", i, j),
			loopir.Store("pred", i, j),
		},
	}
}

// MPEGKernels returns the nine decoder kernels with per-frame trip counts
// for a CIF-sized frame (396 macroblocks, 6 blocks per macroblock).
func MPEGKernels() []MPEGKernel {
	return []MPEGKernel{
		{Nest: MPEGVLD(), Trip: 396, Description: "variable-length decode of one macroblock's coefficients"},
		{Nest: MPEGDequant(), Trip: 396, Description: "inverse quantization of the 6 blocks of a macroblock"},
		{Nest: MPEGIDCT(), Trip: 2376, Description: "one 8×8 inverse-DCT pass per block"},
		{Nest: MPEGPlus(), Trip: 396, Description: "residual + prediction per macroblock"},
		{Nest: MPEGDisplay(), Trip: 4, Description: "stream a 64×64 reconstructed slice to the display"},
		{Nest: MPEGStore(), Trip: 396, Description: "write the reconstructed macroblock to the frame store"},
		{Nest: MPEGAddr(), Trip: 396, Description: "prediction address generation from motion vectors"},
		{Nest: MPEGFetch(), Trip: 396, Description: "reference-window fetch with half-pel neighbor"},
		{Nest: MPEGCompute(), Trip: 198, Description: "bidirectional prediction interpolation"},
	}
}
