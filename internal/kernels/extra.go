package kernels

import "memexplore/internal/loopir"

// The kernels below extend the paper's benchmark set with classic
// embedded/DSP loop nests from the same literature lineage (Wolf & Lam
// [9] and the Panda/Dutt suites). They exercise access-pattern shapes the
// five paper kernels do not cover — 1D sliding windows, triangular
// reuse, block-windowed search — and are used by the examples and by
// additional tests; no paper figure depends on them.

// FIR is a 64-tap finite-impulse-response filter over a 256-sample
// buffer: y[i] += x[i+k]·h[k]. The x window slides by one sample per
// output — heavy group-spatial reuse along k.
func FIR() *loopir.Nest {
	i, k := loopir.Var("i"), loopir.Var("k")
	return &loopir.Nest{
		Name: "fir",
		Arrays: []loopir.Array{
			{Name: "x", Dims: []int{320}},
			{Name: "h", Dims: []int{64}},
			{Name: "y", Dims: []int{256}},
		},
		Loops: []loopir.Loop{
			loopir.ConstLoop("i", 0, 255),
			loopir.ConstLoop("k", 0, 63),
		},
		Body: []loopir.Ref{
			loopir.Read("x", loopir.Affine(0, "i", 1, "k", 1)),
			loopir.Read("h", k),
			loopir.Read("y", i),
			loopir.Store("y", i),
		},
	}
}

// Conv2D is a 3×3 convolution over a 30×30 output window of a 32×32
// image: out[i][j] += img[i+u][j+v]·coef[u][v].
func Conv2D() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	u, v := loopir.Var("u"), loopir.Var("v")
	return &loopir.Nest{
		Name: "conv2d",
		Arrays: []loopir.Array{
			{Name: "img", Dims: []int{32, 32}},
			{Name: "coef", Dims: []int{3, 3}},
			{Name: "out", Dims: []int{30, 30}},
		},
		Loops: []loopir.Loop{
			loopir.ConstLoop("i", 0, 29),
			loopir.ConstLoop("j", 0, 29),
			loopir.ConstLoop("u", 0, 2),
			loopir.ConstLoop("v", 0, 2),
		},
		Body: []loopir.Ref{
			loopir.Read("img", loopir.Affine(0, "i", 1, "u", 1), loopir.Affine(0, "j", 1, "v", 1)),
			loopir.Read("coef", u, v),
			loopir.Read("out", i, j),
			loopir.Store("out", i, j),
		},
	}
}

// LU is the k-loop-outer right-looking LU update on a 24×24 matrix,
// restricted (for the affine IR) to the full trailing-submatrix sweep:
// a[i][j] -= a[i][k]·a[k][j]. The triangular iteration space of real LU
// is approximated by the rectangular sweep, which preserves the
// row-versus-column mixed-stride pattern that makes LU interesting for
// cache studies.
func LU() *loopir.Nest {
	i, j, k := loopir.Var("i"), loopir.Var("j"), loopir.Var("k")
	return &loopir.Nest{
		Name:   "lu",
		Arrays: []loopir.Array{{Name: "a", Dims: []int{24, 24}}},
		Loops: []loopir.Loop{
			loopir.ConstLoop("k", 0, 7),
			loopir.ConstLoop("i", 8, 23),
			loopir.ConstLoop("j", 8, 23),
		},
		Body: []loopir.Ref{
			loopir.Read("a", i, k),
			loopir.Read("a", k, j),
			loopir.Read("a", i, j),
			loopir.Store("a", i, j),
		},
	}
}

// DCT2DRow is the row pass of a block 2D DCT over a 32×32 image of 8×8
// blocks: for each block row, tmp[b][i][j] += img[b][i][k]·cs[k][j].
func DCT2DRow() *loopir.Nest {
	b, i, j, k := loopir.Var("b"), loopir.Var("i"), loopir.Var("j"), loopir.Var("k")
	return &loopir.Nest{
		Name: "dct2drow",
		Arrays: []loopir.Array{
			{Name: "img", Dims: []int{4, 8, 8}},
			{Name: "cs", Dims: []int{8, 8}},
			{Name: "tmp", Dims: []int{4, 8, 8}},
		},
		Loops: []loopir.Loop{
			loopir.ConstLoop("b", 0, 3),
			loopir.ConstLoop("i", 0, 7),
			loopir.ConstLoop("j", 0, 7),
			loopir.ConstLoop("k", 0, 7),
		},
		Body: []loopir.Ref{
			loopir.Read("img", b, i, k),
			loopir.Read("cs", k, j),
			loopir.Read("tmp", b, i, j),
			loopir.Store("tmp", b, i, j),
		},
	}
}

// MotionEst is a full-search motion estimation inner kernel: for each
// candidate displacement (u, v) in an 8×8 search window, accumulate the
// absolute difference of a 16×16 block against the reference frame —
// sad[u][v] += |cur[i][j] − ref[i+u][j+v]|.
func MotionEst() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	u, v := loopir.Var("u"), loopir.Var("v")
	return &loopir.Nest{
		Name: "motionest",
		Arrays: []loopir.Array{
			{Name: "cur", Dims: []int{16, 16}},
			{Name: "refw", Dims: []int{24, 24}},
			{Name: "sad", Dims: []int{8, 8}},
		},
		Loops: []loopir.Loop{
			loopir.ConstLoop("u", 0, 7),
			loopir.ConstLoop("v", 0, 7),
			loopir.ConstLoop("i", 0, 15),
			loopir.ConstLoop("j", 0, 15),
		},
		Body: []loopir.Ref{
			loopir.Read("cur", i, j),
			loopir.Read("refw", loopir.Affine(0, "i", 1, "u", 1), loopir.Affine(0, "j", 1, "v", 1)),
			loopir.Read("sad", u, v),
			loopir.Store("sad", u, v),
		},
	}
}

// Histogram8 is an 8-bin histogram pass approximated affinely: the input
// stream is read sequentially and a per-chunk bin is updated (real
// histograms index bins by data value, which an affine IR cannot express;
// the chunked form preserves the read-stream/update-point mix).
func Histogram8() *loopir.Nest {
	c, i := loopir.Var("c"), loopir.Var("i")
	return &loopir.Nest{
		Name: "histogram8",
		Arrays: []loopir.Array{
			{Name: "in", Dims: []int{8, 32}},
			{Name: "bins", Dims: []int{8}},
		},
		Loops: []loopir.Loop{
			loopir.ConstLoop("c", 0, 7),
			loopir.ConstLoop("i", 0, 31),
		},
		Body: []loopir.Ref{
			loopir.Read("in", c, i),
			loopir.Read("bins", c),
			loopir.Store("bins", c),
		},
	}
}

// ExtraBenchmarks returns the extension kernels (not part of the paper's
// figures).
func ExtraBenchmarks() []*loopir.Nest {
	return []*loopir.Nest{FIR(), Conv2D(), LU(), DCT2DRow(), MotionEst(), Histogram8()}
}
