package kernels

import (
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/loopir"
	"memexplore/internal/reuse"
)

func TestExtraBenchmarksRegistered(t *testing.T) {
	extras := ExtraBenchmarks()
	if len(extras) != 6 {
		t.Fatalf("extras = %d, want 6", len(extras))
	}
	for _, n := range extras {
		if _, err := ByName(n.Name); err != nil {
			t.Errorf("%s not in registry: %v", n.Name, err)
		}
	}
}

func TestFIRWindowReuse(t *testing.T) {
	n := FIR()
	refs, err := n.References()
	if err != nil {
		t.Fatal(err)
	}
	if refs != 256*64*4 {
		t.Errorf("references = %d, want %d", refs, 256*64*4)
	}
	// The 64-tap window (64 bytes) plus h (64) plus y point fit easily in
	// a 256B cache: the miss rate must be tiny.
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cachesim.RunTrace(cachesim.DefaultConfig(256, 8, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.MissRate() > 0.02 {
		t.Errorf("FIR window should be cache-resident: miss rate %v", st.MissRate())
	}
}

func TestConv2DCompatibility(t *testing.T) {
	// conv2d reads img with a single linear part (i+u, j+v) — compatible.
	ok, err := reuse.Compatible(Conv2D())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("conv2d should be compatible")
	}
}

func TestLUMixedStrides(t *testing.T) {
	// LU reads a along rows (a[i][k], a[i][j]) and columns (a[k][j]) —
	// incompatible by §4.1's definition (two linear parts on one array).
	ok, err := reuse.Compatible(LU())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("lu mixes row and column access; should be incompatible")
	}
}

func TestMotionEstWindowOverlap(t *testing.T) {
	n := MotionEst()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent candidates re-read 15/16 of the window: with a cache that
	// holds cur+refw (16·16 + 24·24 = 832 B), almost everything hits.
	st, err := cachesim.RunTrace(cachesim.DefaultConfig(1024, 16, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.MissRate() > 0.01 {
		t.Errorf("search window should be resident: miss rate %v", st.MissRate())
	}
	// And with a tiny cache, the strided window walk thrashes.
	small, err := cachesim.RunTrace(cachesim.DefaultConfig(64, 16, 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if small.MissRate() < 5*st.MissRate() {
		t.Errorf("tiny cache should be much worse: %v vs %v", small.MissRate(), st.MissRate())
	}
}

func TestExtraKernelsExploreCleanly(t *testing.T) {
	// Every extra kernel must survive tiling and the layout optimizer at a
	// couple of geometries (integration with the whole pipeline).
	for _, n := range ExtraBenchmarks() {
		n := n
		t.Run(n.Name, func(t *testing.T) {
			tiled, err := loopir.TileAll(n, 4)
			if err != nil {
				t.Fatalf("tile: %v", err)
			}
			if _, err := tiled.Generate(loopir.SequentialLayout(tiled, 0)); err != nil {
				t.Fatalf("generate tiled: %v", err)
			}
		})
	}
}
