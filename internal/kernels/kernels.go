// Package kernels defines the benchmark workloads of the paper as loopir
// nests: the five loop kernels of the exploration study (§2–4: Compress,
// Matrix Multiplication, PDE, SOR, Dequant — all with 31×31 iteration
// spaces), the two worked examples (Matrix Addition §4.1, Transpose §4.2),
// and the nine MPEG decoder kernels of the §5 case study.
//
// Element size is 1 byte throughout, matching the paper's address
// arithmetic (a[32][32] occupies 1024 bytes; a[1][0] sits at offset 32).
package kernels

import (
	"errors"
	"fmt"
	"sort"

	"memexplore/internal/loopir"
)

// Compress is the paper's Example 1:
//
//	int a[32][32]
//	for i = 1, 31
//	  for j = 1, 31
//	    a[i][j] = a[i][j] - a[i-1][j] - a[i][j-1] - 2*a[i-1][j-1]
//
// Two §3 equivalence classes: {a[i-1][j-1], a[i-1][j]} and
// {a[i][j-1], a[i][j]}.
func Compress() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	im1 := loopir.Affine(-1, "i", 1)
	jm1 := loopir.Affine(-1, "j", 1)
	return &loopir.Nest{
		Name:   "compress",
		Arrays: []loopir.Array{{Name: "a", Dims: []int{32, 32}}},
		Loops:  []loopir.Loop{loopir.ConstLoop("i", 1, 31), loopir.ConstLoop("j", 1, 31)},
		Body: []loopir.Ref{
			loopir.Read("a", i, j),
			loopir.Read("a", im1, j),
			loopir.Read("a", i, jm1),
			loopir.Read("a", im1, jm1),
			loopir.Store("a", i, j),
		},
	}
}

// MatMul is the textbook ijk matrix multiplication with a 31×31 (i,j)
// iteration space: c[i][j] += a[i][k]·b[k][j].
func MatMul() *loopir.Nest {
	i, j, k := loopir.Var("i"), loopir.Var("j"), loopir.Var("k")
	return &loopir.Nest{
		Name: "matmul",
		Arrays: []loopir.Array{
			{Name: "a", Dims: []int{32, 32}},
			{Name: "b", Dims: []int{32, 32}},
			{Name: "c", Dims: []int{32, 32}},
		},
		Loops: []loopir.Loop{
			loopir.ConstLoop("i", 1, 31),
			loopir.ConstLoop("j", 1, 31),
			loopir.ConstLoop("k", 1, 31),
		},
		Body: []loopir.Ref{
			loopir.Read("a", i, k),
			loopir.Read("b", k, j),
			loopir.Read("c", i, j),
			loopir.Store("c", i, j),
		},
	}
}

// PDE is a 2D five-point Jacobi relaxation step (Wolf & Lam [9]):
// b[i][j] = a[i][j-1] + a[i][j+1] + a[i-1][j] + a[i+1][j] - 4·a[i][j].
func PDE() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	im1, ip1 := loopir.Affine(-1, "i", 1), loopir.Affine(1, "i", 1)
	jm1, jp1 := loopir.Affine(-1, "j", 1), loopir.Affine(1, "j", 1)
	return &loopir.Nest{
		Name: "pde",
		Arrays: []loopir.Array{
			{Name: "a", Dims: []int{33, 33}},
			{Name: "b", Dims: []int{33, 33}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 1, 31), loopir.ConstLoop("j", 1, 31)},
		Body: []loopir.Ref{
			loopir.Read("a", i, jm1),
			loopir.Read("a", i, jp1),
			loopir.Read("a", im1, j),
			loopir.Read("a", ip1, j),
			loopir.Read("a", i, j),
			loopir.Store("b", i, j),
		},
	}
}

// SOR is in-place successive over-relaxation on the same five-point
// stencil: a[i][j] = 0.2·(a[i][j] + a[i-1][j] + a[i+1][j] + a[i][j-1] +
// a[i][j+1]).
func SOR() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	im1, ip1 := loopir.Affine(-1, "i", 1), loopir.Affine(1, "i", 1)
	jm1, jp1 := loopir.Affine(-1, "j", 1), loopir.Affine(1, "j", 1)
	return &loopir.Nest{
		Name:   "sor",
		Arrays: []loopir.Array{{Name: "a", Dims: []int{33, 33}}},
		Loops:  []loopir.Loop{loopir.ConstLoop("i", 1, 31), loopir.ConstLoop("j", 1, 31)},
		Body: []loopir.Ref{
			loopir.Read("a", i, j),
			loopir.Read("a", im1, j),
			loopir.Read("a", ip1, j),
			loopir.Read("a", i, jm1),
			loopir.Read("a", i, jp1),
			loopir.Store("a", i, j),
		},
	}
}

// Dequant is the inverse-quantization kernel from Panda/Dutt [1]:
// block[i][j] = block[i][j]·quant[i][j], over the paper's 31×31 iteration
// space.
func Dequant() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	return &loopir.Nest{
		Name: "dequant",
		Arrays: []loopir.Array{
			{Name: "block", Dims: []int{32, 32}},
			{Name: "quant", Dims: []int{32, 32}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 1, 31), loopir.ConstLoop("j", 1, 31)},
		Body: []loopir.Ref{
			loopir.Read("block", i, j),
			loopir.Read("quant", i, j),
			loopir.Store("block", i, j),
		},
	}
}

// MatAdd is the paper's Example 2 (§4.1): int a[6][6], b[6][6], c[6][6];
// c[i][j] = a[i][j] + b[i][j].
func MatAdd() *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	return &loopir.Nest{
		Name: "matadd",
		Arrays: []loopir.Array{
			{Name: "a", Dims: []int{6, 6}},
			{Name: "b", Dims: []int{6, 6}},
			{Name: "c", Dims: []int{6, 6}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 5), loopir.ConstLoop("j", 0, 5)},
		Body: []loopir.Ref{
			loopir.Read("a", i, j),
			loopir.Read("b", i, j),
			loopir.Store("c", i, j),
		},
	}
}

// Transpose is the paper's Example 3(a): a[i][j] = b[j][i] — the kernel
// whose stride-N access to b motivates tiling (§4.2). n is the extent of
// both loops (the paper leaves it symbolic).
func Transpose(n int) *loopir.Nest {
	i, j := loopir.Var("i"), loopir.Var("j")
	return &loopir.Nest{
		Name: "transpose",
		Arrays: []loopir.Array{
			{Name: "a", Dims: []int{n + 1, n + 1}},
			{Name: "b", Dims: []int{n + 1, n + 1}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 1, n), loopir.ConstLoop("j", 1, n)},
		Body: []loopir.Ref{
			loopir.Read("b", j, i),
			loopir.Store("a", i, j),
		},
	}
}

// PaperBenchmarks returns the five §2–4 exploration kernels in the order
// the paper's figures list them.
func PaperBenchmarks() []*loopir.Nest {
	return []*loopir.Nest{Compress(), MatMul(), PDE(), SOR(), Dequant()}
}

// All returns every standalone kernel (paper benchmarks, worked examples,
// MPEG kernels and the extension suite), for registry-style consumers.
func All() []*loopir.Nest {
	ns := PaperBenchmarks()
	ns = append(ns, MatAdd(), Transpose(32))
	for _, k := range MPEGKernels() {
		ns = append(ns, k.Nest)
	}
	ns = append(ns, ExtraBenchmarks()...)
	return ns
}

// ErrUnknownKernel is the sentinel wrapped by ByName for names that are
// not in the registry; detect it with errors.Is. The service layer maps
// it to HTTP 404.
var ErrUnknownKernel = errors.New("unknown kernel")

// ByName returns the kernel with the given nest name. For unregistered
// names the error wraps ErrUnknownKernel.
func ByName(name string) (*loopir.Nest, error) {
	for _, n := range All() {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("kernels: %w %q (have %v)", ErrUnknownKernel, name, Names())
}

// Names returns all registered kernel names, sorted.
func Names() []string {
	var names []string
	for _, n := range All() {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	return names
}
