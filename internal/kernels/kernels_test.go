package kernels

import (
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/loopir"
)

func TestAllKernelsValidateAndGenerate(t *testing.T) {
	for _, n := range All() {
		n := n
		t.Run(n.Name, func(t *testing.T) {
			if err := n.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			tr, err := n.Generate(loopir.SequentialLayout(n, 0))
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			refs, err := n.References()
			if err != nil {
				t.Fatal(err)
			}
			if int64(tr.Len()) != refs {
				t.Errorf("trace length %d, References() %d", tr.Len(), refs)
			}
			if tr.Writes() == 0 {
				t.Error("kernel issues no writes — every paper kernel stores a result")
			}
		})
	}
}

func TestPaperBenchmarksIterationSpace(t *testing.T) {
	// "In all these examples, the iteration space is 31*31" (§3). MatMul
	// carries an extra reduction loop over k.
	for _, n := range PaperBenchmarks() {
		iters, err := n.Iterations()
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		want := int64(31 * 31)
		if n.Name == "matmul" {
			want = 31 * 31 * 31
		}
		if iters != want {
			t.Errorf("%s iterations = %d, want %d", n.Name, iters, want)
		}
	}
}

func TestCompressClassesMatchPaper(t *testing.T) {
	// The §3 worked example: with layout base 0, a[0][0] is address 0 and
	// a[1][0] is address 32.
	n := Compress()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	// i=1,j=1: the fourth body ref is a[i-1][j-1] = a[0][0] = 0.
	if got := tr.At(3).Addr; got != 0 {
		t.Errorf("a[0][0] address = %d, want 0", got)
	}
	// a[1][0] would be address 32 (row stride 32).
	a, _ := n.Array("a")
	if got := a.RowStrides()[0]; got != 32 {
		t.Errorf("row stride = %d, want 32", got)
	}
}

func TestByName(t *testing.T) {
	n, err := ByName("compress")
	if err != nil || n.Name != "compress" {
		t.Fatalf("ByName(compress) = %v, %v", n, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel should fail")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Errorf("Names() length %d, All() %d", len(names), len(All()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestMatAddMatchesPaperExample(t *testing.T) {
	// §4.1: a stored at 0..35, b and c follow.
	n := MatAdd()
	l := loopir.SequentialLayout(n, 0)
	if l["a"].Base != 0 || l["b"].Base != 36 || l["c"].Base != 72 {
		t.Errorf("sequential layout = %v, want a=0 b=36 c=72", l)
	}
}

func TestTransposeStrides(t *testing.T) {
	n := Transpose(8)
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Body: read b[j][i], write a[i][j]. At fixed i, consecutive j steps
	// move b's address by a full row (stride 9) and a's by 1.
	b0 := tr.At(0).Addr
	b1 := tr.At(2).Addr
	if b1-b0 != 9 {
		t.Errorf("b stride = %d, want 9 (stride-N access)", b1-b0)
	}
	a0 := tr.At(1).Addr
	a1 := tr.At(3).Addr
	if a1-a0 != 1 {
		t.Errorf("a stride = %d, want 1", a1-a0)
	}
}

func TestMPEGKernels(t *testing.T) {
	ks := MPEGKernels()
	if len(ks) != 9 {
		t.Fatalf("MPEG kernel count = %d, want 9", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if k.Trip <= 0 {
			t.Errorf("%s trip = %d", k.Nest.Name, k.Trip)
		}
		if k.Description == "" {
			t.Errorf("%s has no description", k.Nest.Name)
		}
		if seen[k.Nest.Name] {
			t.Errorf("duplicate kernel %s", k.Nest.Name)
		}
		seen[k.Nest.Name] = true
		if err := k.Nest.Validate(); err != nil {
			t.Errorf("%s: %v", k.Nest.Name, err)
		}
	}
	// IDCT runs once per block: 6 × macroblock count.
	var vldTrip, idctTrip int64
	for _, k := range ks {
		switch k.Nest.Name {
		case "mpeg_vld":
			vldTrip = k.Trip
		case "mpeg_idct":
			idctTrip = k.Trip
		}
	}
	if idctTrip != 6*vldTrip {
		t.Errorf("idct trip %d, want 6× vld trip %d", idctTrip, vldTrip)
	}
}

func TestKernelsProduceDistinctBehaviour(t *testing.T) {
	// The §5 aggregation only makes sense if the kernels are actually
	// heterogeneous: their miss rates on a common small cache must not all
	// be equal.
	cfg := cachesim.DefaultConfig(64, 8, 1)
	rates := map[string]float64{}
	for _, k := range MPEGKernels() {
		tr, err := k.Nest.Generate(loopir.SequentialLayout(k.Nest, 0))
		if err != nil {
			t.Fatalf("%s: %v", k.Nest.Name, err)
		}
		st, err := cachesim.RunTrace(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		rates[k.Nest.Name] = st.MissRate()
	}
	distinct := map[float64]bool{}
	for _, r := range rates {
		distinct[r] = true
	}
	if len(distinct) < 4 {
		t.Errorf("MPEG kernels too homogeneous: miss rates %v", rates)
	}
}

// Every registered kernel must round-trip through the textual nest format
// (String → Parse → identical trace).
func TestAllKernelsRoundTripText(t *testing.T) {
	for _, n := range All() {
		n := n
		t.Run(n.Name, func(t *testing.T) {
			parsed, err := loopir.Parse(n.String())
			if err != nil {
				t.Fatalf("Parse(String()): %v\n%s", err, n)
			}
			a, err := n.Generate(loopir.SequentialLayout(n, 0))
			if err != nil {
				t.Fatal(err)
			}
			b, err := parsed.Generate(loopir.SequentialLayout(parsed, 0))
			if err != nil {
				t.Fatal(err)
			}
			if a.Len() != b.Len() {
				t.Fatalf("trace lengths differ: %d vs %d", a.Len(), b.Len())
			}
			for i := 0; i < a.Len(); i++ {
				if a.At(i) != b.At(i) {
					t.Fatalf("ref %d differs", i)
				}
			}
		})
	}
}
