package figures

import (
	"math"
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/kernels"
)

// TestGoldenNumbers locks the headline measured values recorded in
// EXPERIMENTS.md. The models and kernels are fully deterministic, so any
// change here means the recorded results (and possibly the paper claims)
// need re-examination — update EXPERIMENTS.md together with this table.
func TestGoldenNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("golden checks in -short mode")
	}
	type point struct {
		kernel    string
		cfg       core.ConfigPoint
		optimized bool
		missRate  float64
		energyNJ  float64
	}
	golden := []point{
		// Figure 5 row: Compress at C32L4, optimized vs sequential.
		{"compress", core.ConfigPoint{CacheSize: 32, LineSize: 4, Assoc: 1, Tiling: 1}, true, 0.1032, 13599.0},
		{"compress", core.ConfigPoint{CacheSize: 32, LineSize: 4, Assoc: 1, Tiling: 1}, false, 0.8065, 80904.7},
		// Figure 4 minimum: Compress C16L4.
		{"compress", core.ConfigPoint{CacheSize: 16, LineSize: 4, Assoc: 1, Tiling: 1}, true, 0.1032, 11753.9},
		// Figure 2 column C64L16 for dequant.
		{"dequant", core.ConfigPoint{CacheSize: 64, LineSize: 16, Assoc: 1, Tiling: 1}, true, 0.0430, 14304.7},
		// Figure 8 anchor: sor sequential at C64L8 SA4.
		{"sor", core.ConfigPoint{CacheSize: 64, LineSize: 8, Assoc: 4, Tiling: 1}, false, 0.0666, 24157.5},
	}
	for _, g := range golden {
		n, err := kernels.ByName(g.kernel)
		if err != nil {
			t.Fatal(err)
		}
		opts := pointOpts(core.DefaultOptions(), []core.ConfigPoint{g.cfg})
		opts.OptimizeLayout = g.optimized
		e, err := core.NewExplorer(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.Evaluate(cachesim.DefaultConfig(g.cfg.CacheSize, g.cfg.LineSize, g.cfg.Assoc), g.cfg.Tiling)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.MissRate-g.missRate) > 5e-5 {
			t.Errorf("%s %s opt=%v: miss rate %.4f, golden %.4f",
				g.kernel, m.Label(), g.optimized, m.MissRate, g.missRate)
		}
		if math.Abs(m.EnergyNJ-g.energyNJ) > 0.5 {
			t.Errorf("%s %s opt=%v: energy %.1f, golden %.1f",
				g.kernel, m.Label(), g.optimized, m.EnergyNJ, g.energyNJ)
		}
	}
}
