package figures

import (
	"memexplore/internal/bus"
	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/report"
	"memexplore/internal/reuse"
)

func kernelTranspose() *loopir.Nest { return kernels.Transpose(32) }

// Fig07 regenerates Figure 7: energy versus tiling size (B = 1..16) and
// versus set associativity (SA = 1..8) for Compress and Dequant at C64L8.
func Fig07() (*Result, error) {
	res := &Result{ID: "fig07", Title: "Figure 7: Compress and Dequant — energy vs tiling and vs set associativity (C64L8)"}
	pair := []*loopir.Nest{kernels.Compress(), kernels.Dequant()}

	var tilePoints []core.ConfigPoint
	for _, b := range []int{1, 2, 4, 8} {
		tilePoints = append(tilePoints, core.ConfigPoint{CacheSize: 64, LineSize: 8, Assoc: 1, Tiling: b})
	}
	tileTbl := report.New("energy (nJ) vs tiling", "kernel", "T1", "T2", "T4", "T8")
	for _, n := range pair {
		ms, err := evalPoints(n, pointOpts(core.DefaultOptions(), tilePoints), tilePoints)
		if err != nil {
			return nil, err
		}
		row := []string{n.Name}
		for _, m := range ms {
			row = append(row, report.F(m.EnergyNJ))
		}
		tileTbl.MustAdd(row...)
	}
	res.addTable(tileTbl)

	var saPoints []core.ConfigPoint
	for _, s := range []int{1, 2, 4, 8} {
		saPoints = append(saPoints, core.ConfigPoint{CacheSize: 64, LineSize: 8, Assoc: s, Tiling: 1})
	}
	// Sequential layout for the associativity half: with the §4.1
	// assignment in place there are no conflicts left for associativity to
	// absorb, so its benefit is visible on the baseline layout (the same
	// framing as Figure 8).
	saTbl := report.New("energy (nJ) vs set associativity (sequential layout)", "kernel", "SA1", "SA2", "SA4", "SA8")
	saHelps := false
	for _, n := range pair {
		opts := pointOpts(core.DefaultOptions(), saPoints)
		opts.OptimizeLayout = false
		ms, err := evalPoints(n, opts, saPoints)
		if err != nil {
			return nil, err
		}
		row := []string{n.Name}
		for _, m := range ms {
			row = append(row, report.F(m.EnergyNJ))
		}
		for i := 1; i < len(ms); i++ {
			if ms[i].EnergyNJ < ms[0].EnergyNJ {
				saHelps = true
			}
		}
		saTbl.MustAdd(row...)
	}
	res.addTable(saTbl)
	res.checkf(saHelps, "associativity reduces energy for at least one of Compress/Dequant at C64L8")
	return res, nil
}

// Sec3 regenerates the §3 analytical results: per-kernel minimum cache
// sizes from the class analysis, plus the bounded-selection examples
// (minimum-energy configuration under a cycle bound and minimum-time
// configuration under an energy bound) on Compress.
func Sec3() (*Result, error) {
	res := &Result{ID: "sec3", Title: "Section 3: minimum cache size and bounded selection"}

	minTbl := report.New("analytical minimum cache size", "kernel", "classes", "minlines(L=4)", "minsize(L=4)", "minsize(L=8)", "minsize(L=16)")
	for _, n := range fiveKernels() {
		classes, err := reuse.Classes(n)
		if err != nil {
			return nil, err
		}
		row := []string{n.Name, report.I(len(classes))}
		lines4, err := reuse.MinLines(n, 4)
		if err != nil {
			return nil, err
		}
		row = append(row, report.I(lines4))
		for _, l := range []int{4, 8, 16} {
			size, err := reuse.MinCacheSize(n, l)
			if err != nil {
				return nil, err
			}
			row = append(row, report.I(size))
		}
		minTbl.MustAdd(row...)
	}
	res.addTable(minTbl)

	compressLines, err := reuse.MinLines(kernels.Compress(), 4)
	if err != nil {
		return nil, err
	}
	res.checkf(compressLines == 4, "Compress needs 4 cache lines (two per class), minimum cache size 4L — paper §3")

	// Bounded selection on Compress over the full sweep. The paper bounds
	// cycles at 5,000 and energy at 5,500 nJ in its units; our absolute
	// scales differ, so the bounds are placed the same way relative to the
	// optima (between the unconstrained minimum and the opposite optimum).
	opts := core.DefaultOptions()
	opts.CacheSizes = []int{16, 32, 64, 128, 256, 512}
	opts.Assocs = []int{1}
	opts.Tilings = []int{1}
	ms, err := core.Explore(kernels.Compress(), opts)
	if err != nil {
		return nil, err
	}
	minE, _ := core.MinEnergy(ms)
	minC, _ := core.MinCycles(ms)
	cycleBound := minC.Cycles + 0.25*(minE.Cycles-minC.Cycles)
	energyBound := minE.EnergyNJ + 0.25*(minC.EnergyNJ-minE.EnergyNJ)
	underCycles, okC := core.MinEnergyUnderCycleBound(ms, cycleBound)
	underEnergy, okE := core.MinCyclesUnderEnergyBound(ms, energyBound)

	selTbl := report.New("bounded selection (Compress)", "query", "bound", "selected", "energy(nJ)", "cycles")
	selTbl.MustAdd("min energy (unbounded)", "-", minE.Label(), report.F(minE.EnergyNJ), report.F(minE.Cycles))
	selTbl.MustAdd("min cycles (unbounded)", "-", minC.Label(), report.F(minC.EnergyNJ), report.F(minC.Cycles))
	if okC {
		selTbl.MustAdd("min energy s.t. cycles ≤ bound", report.F(cycleBound), underCycles.Label(),
			report.F(underCycles.EnergyNJ), report.F(underCycles.Cycles))
	}
	if okE {
		selTbl.MustAdd("min cycles s.t. energy ≤ bound", report.F(energyBound), underEnergy.Label(),
			report.F(underEnergy.EnergyNJ), report.F(underEnergy.Cycles))
	}
	res.addTable(selTbl)
	res.checkf(okC && underCycles.Label() != minE.Label(),
		"a cycle bound forces a different configuration than the unconstrained energy optimum (%s vs %s)",
		underCycles.Label(), minE.Label())
	res.checkf(okE && underEnergy.Label() != minC.Label(),
		"an energy bound forces a different configuration than the unconstrained time optimum (%s vs %s)",
		underEnergy.Label(), minC.Label())
	return res, nil
}

// Ablations regenerates the design-choice studies DESIGN.md calls out:
// Gray versus binary address-bus encoding and the replacement policies.
func Ablations() (*Result, error) {
	res := &Result{ID: "ablation", Title: "Ablations: bus encoding and replacement policy"}

	// Gray vs binary switching on the real Compress trace.
	n := kernels.Compress()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		return nil, err
	}
	gray := bus.MeasureTrace(tr, bus.Gray)
	binary := bus.MeasureTrace(tr, bus.Binary)
	busTbl := report.New("address-bus switching per access (Compress)", "encoding", "add_bs")
	busTbl.MustAdd("gray", report.F(gray.AddBS()))
	busTbl.MustAdd("binary", report.F(binary.AddBS()))
	res.addTable(busTbl)
	res.checkf(gray.AddBS() < binary.AddBS(),
		"Gray coding reduces address-bus switching (%.3f vs %.3f switches/access)", gray.AddBS(), binary.AddBS())

	// Replacement policies at a contended geometry.
	polTbl := report.New("replacement policy at C64L8S4 (Compress, sequential layout)", "policy", "missrate")
	var rates []float64
	for _, pol := range []cachesim.Replacement{cachesim.LRU, cachesim.FIFO, cachesim.Random} {
		cfg := cachesim.DefaultConfig(64, 8, 4)
		cfg.Replacement = pol
		st, err := cachesim.RunTrace(cfg, tr)
		if err != nil {
			return nil, err
		}
		polTbl.MustAdd(pol.String(), report.F(st.MissRate()))
		rates = append(rates, st.MissRate())
	}
	res.addTable(polTbl)
	res.checkf(rates[0] <= rates[1] && rates[0] <= rates[2]+0.05,
		"LRU is the best (or near-best) policy on this reuse-heavy kernel")
	res.findf("trace: %d references", tr.Len())

	// What-if: deep-submicron leakage (absent from the paper's 0.8 µm
	// model) taxes capacity per cycle, pulling the energy optimum toward
	// even smaller caches.
	sweep := core.DefaultOptions()
	sweep.CacheSizes = []int{16, 32, 64, 128, 256, 512}
	sweep.Assocs = []int{1}
	sweep.Tilings = []int{1}
	baseMs, err := core.Explore(n, sweep)
	if err != nil {
		return nil, err
	}
	baseBest, _ := core.MinEnergy(baseMs)
	leakTbl := report.New("leakage what-if (Compress, nJ/cycle/KB)", "leakage", "min-energy config", "energy(nJ)")
	leakTbl.MustAdd("0 (paper)", baseBest.Label(), report.F(baseBest.EnergyNJ))
	shrank := true
	prevSize := baseBest.CacheSize
	for _, leak := range []float64{0.01, 0.05} {
		o := sweep
		o.Energy.LeakNJPerCycleKB = leak
		ms, err := core.Explore(n, o)
		if err != nil {
			return nil, err
		}
		best, _ := core.MinEnergy(ms)
		leakTbl.MustAdd(report.F(leak), best.Label(), report.F(best.EnergyNJ))
		if best.CacheSize > prevSize {
			shrank = false
		}
		prevSize = best.CacheSize
	}
	res.addTable(leakTbl)
	res.checkf(shrank, "adding leakage never grows the energy-optimal cache")

	// What-if: charging write-back traffic (the paper counts READ energy
	// only) raises every total without reordering the optimum drastically.
	wt := sweep
	wt.Energy.CountWriteTraffic = true
	wtMs, err := core.Explore(n, wt)
	if err != nil {
		return nil, err
	}
	wtBest, _ := core.MinEnergy(wtMs)
	res.findf("write-traffic accounting: min-energy %s at %.0f nJ (read-only model: %s at %.0f nJ)",
		wtBest.Label(), wtBest.EnergyNJ, baseBest.Label(), baseBest.EnergyNJ)
	res.checkf(wtBest.EnergyNJ > baseBest.EnergyNJ,
		"write traffic adds energy on top of the paper's read-only accounting")
	return res, nil
}
