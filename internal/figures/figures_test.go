package figures

import (
	"strings"
	"testing"
)

// TestAllExhibitsRun executes every exhibit and asserts that each produces
// tables and that every claim check comes back REPRODUCED — this is the
// repository's end-to-end validation of the paper's qualitative results.
func TestAllExhibitsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibits are slow in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result ID %q, want %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Error("exhibit produced no tables")
			}
			for _, tbl := range res.Tables {
				if tbl.Rows() == 0 {
					t.Errorf("table %q has no rows", tbl.Title)
				}
				if !strings.Contains(tbl.String(), "---") {
					t.Errorf("table %q did not render", tbl.Title)
				}
			}
			for _, f := range res.Findings {
				if strings.Contains(f, "[DIVERGED]") {
					t.Errorf("claim diverged: %s", f)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig05")
	if err != nil || e.ID != "fig05" {
		t.Fatalf("ByID(fig05) = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown exhibit should fail")
	}
}

func TestEntriesUniqueAndDescribed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate exhibit %s", e.ID)
		}
		seen[e.ID] = true
		if e.Desc == "" {
			t.Errorf("exhibit %s has no description", e.ID)
		}
		if e.Run == nil {
			t.Errorf("exhibit %s has no runner", e.ID)
		}
	}
	if len(seen) < 22 {
		t.Errorf("expected at least 22 exhibits, got %d", len(seen))
	}
}
