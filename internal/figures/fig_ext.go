package figures

import (
	"fmt"

	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/icache"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/report"
	"memexplore/internal/stackdist"
)

// ExtBreakdown decomposes the energy of the Figure 4 sweep into the §2.3
// components, exposing the mechanism behind the paper's headline: small
// caches are dominated by main-memory (miss) energy, large caches by the
// cell arrays, so the optimum sits in between.
func ExtBreakdown() (*Result, error) {
	res := &Result{ID: "ext-breakdown", Title: "Extension: §2.3 energy components across the Compress size sweep (Em=4.95 nJ)"}
	var points []core.ConfigPoint
	for _, c := range []int{16, 32, 64, 128, 256, 512} {
		points = append(points, core.ConfigPoint{CacheSize: c, LineSize: 4, Assoc: 1, Tiling: 1})
	}
	opts := pointOpts(core.DefaultOptions(), points)
	ms, err := evalPoints(kernels.Compress(), opts, points)
	if err != nil {
		return nil, err
	}
	tbl := report.New("", "config", "E_dec", "E_cell", "E_io", "E_main", "total(nJ)", "cell share", "main share")
	for _, m := range ms {
		tbl.MustAdd(cl(m.CacheSize, m.LineSize),
			report.F(m.Energy.DecNJ), report.F(m.Energy.CellNJ),
			report.F(m.Energy.IONJ), report.F(m.Energy.MainNJ),
			report.F(m.EnergyNJ),
			report.F(m.Energy.CellNJ/m.EnergyNJ),
			report.F(m.Energy.MainNJ/m.EnergyNJ))
	}
	res.addTable(tbl)
	small, large := ms[0], ms[len(ms)-1]
	res.checkf(small.Energy.MainNJ > small.Energy.CellNJ,
		"the smallest cache is main-memory dominated (%.0f vs %.0f nJ)", small.Energy.MainNJ, small.Energy.CellNJ)
	res.checkf(large.Energy.CellNJ > large.Energy.MainNJ,
		"the largest cache is cell-array dominated (%.0f vs %.0f nJ)", large.Energy.CellNJ, large.Energy.MainNJ)
	return res, nil
}

// ExtICache runs the paper's stated future-work extension: explore an
// instruction cache for the Compress kernel with the same metrics, then
// merge the I- and D-sweeps under a shared on-chip budget.
func ExtICache() (*Result, error) {
	res := &Result{ID: "ext-icache", Title: "Extension (§6): instruction-cache exploration and joint I+D selection"}
	gen := icache.DefaultCodeGen()
	n := kernels.Compress()
	code, err := icache.CodeBytes(n, gen)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.CacheSizes = []int{16, 32, 64, 128, 256}
	opts.LineSizes = []int{4, 8, 16}
	opts.Assocs = []int{1, 2}
	opts.Tilings = []int{1}
	instr, err := icache.Explore(n, gen, opts)
	if err != nil {
		return nil, err
	}
	data, err := core.Explore(n, opts)
	if err != nil {
		return nil, err
	}

	tbl := report.New(fmt.Sprintf("I-cache sweep (static code %d bytes)", code),
		"config", "missrate", "cycles", "energy(nJ)")
	shown := 0
	for _, m := range instr {
		if m.Assoc != 1 || m.LineSize != 8 {
			continue
		}
		tbl.MustAdd(cl(m.CacheSize, m.LineSize), report.F(m.MissRate), report.F(m.Cycles), report.F(m.EnergyNJ))
		shown++
	}
	res.addTable(tbl)

	iBest, _ := core.MinEnergy(instr)
	res.findf("min-energy I-cache: %s (miss rate %.4f) for %d bytes of loop code", iBest.Label(), iBest.MissRate, code)
	res.checkf(iBest.MissRate < 0.01,
		"the loop code is nearly cache-resident at the I-cache optimum (miss rate %.4f)", iBest.MissRate)

	jt := report.New("joint I+D selection under an on-chip budget", "budget(B)", "I-config", "D-config", "total energy(nJ)")
	var prev float64
	monotone := true
	for _, budget := range []int{32, 64, 128, 0} {
		choice, ok := icache.ExploreJoint(instr, data, budget)
		if !ok {
			jt.MustAdd(report.I(budget), "-", "-", "infeasible")
			continue
		}
		label := report.I(budget)
		if budget == 0 {
			label = "∞"
		}
		jt.MustAdd(label, choice.Instr.Label(), choice.Data.Label(), report.F(choice.TotalEnergy()))
		if prev != 0 && choice.TotalEnergy() > prev+1e-9 {
			monotone = false
		}
		prev = choice.TotalEnergy()
	}
	res.addTable(jt)
	res.checkf(monotone, "loosening the budget never increases the joint optimum's energy")
	_ = shown
	return res, nil
}

// ExtStackDist cross-checks the exploration's capacity knees against a
// single-pass reuse-distance analysis: the miss-rate-vs-size curve of a
// fully associative cache computed from the stack-distance histogram must
// match the simulator exactly, and its knees explain where the sweep's
// miss rates drop.
func ExtStackDist() (*Result, error) {
	res := &Result{ID: "ext-stackdist", Title: "Extension: reuse-distance (stack-distance) analysis of the benchmark kernels"}
	const line = 8
	caps := []int{4, 8, 16, 32, 64, 128}
	tbl := report.New(fmt.Sprintf("fully associative miss rate by capacity (lines of %dB)", line),
		"kernel", "ws(lines)", "c=4", "c=8", "c=16", "c=32", "c=64", "c=128")
	exact := true
	for _, n := range fiveKernels() {
		tr, err := n.Generate(loopir.SequentialLayout(n, 0))
		if err != nil {
			return nil, err
		}
		h, err := stackdist.Compute(tr, line)
		if err != nil {
			return nil, err
		}
		row := []string{n.Name, report.U(h.WorkingSet())}
		for _, rate := range h.Curve(caps) {
			row = append(row, report.F(rate))
		}
		tbl.MustAdd(row...)
		// Exactness check against the simulator at two capacities.
		for _, c := range []int{8, 32} {
			cfg := cachesim.DefaultConfig(line*c, line, c)
			st, err := cachesim.RunTrace(cfg, tr)
			if err != nil {
				return nil, err
			}
			if h.Misses(c) != st.Misses {
				exact = false
			}
		}
	}
	res.addTable(tbl)
	res.checkf(exact, "stack-distance predictions match the fully associative simulator exactly (Mattson)")
	return res, nil
}

// ExtWarm quantifies the §5 independence assumption: Aggregate composes
// cold per-kernel runs linearly, while a real decoder's kernels share a
// warm cache. The warm pipeline's miss rate should not exceed the cold
// composition's on a reasonably sized cache (cross-kernel reuse survives),
// while tiny caches show cross-kernel eviction.
func ExtWarm() (*Result, error) {
	res := &Result{ID: "ext-warm", Title: "Extension: warm pipeline vs the paper's cold per-kernel composition (§5)"}
	ws := []core.WeightedKernel{}
	for _, k := range kernels.MPEGKernels() {
		ws = append(ws, core.WeightedKernel{Nest: k.Nest, Trip: k.Trip})
	}
	// Scale trips down so the composite trace stays small (÷99: VLD 4x,
	// IDCT 24x, …).
	warm, err := core.WarmTrace(ws, 99)
	if err != nil {
		return nil, err
	}
	res.findf("composite warm trace: %d references", warm.Len())

	opts := core.DefaultOptions()
	cfgs := []cachesim.Config{
		cachesim.DefaultConfig(64, 8, 2),
		cachesim.DefaultConfig(256, 8, 2),
		cachesim.DefaultConfig(1024, 16, 4),
	}
	tbl := report.New("", "config", "warm missrate", "cold missrate", "warm/cold")
	improvedSomewhere := false
	// The bus activity depends only on the trace: measure once, score
	// every configuration against it.
	warmAddBS := core.TraceAddBS(warm)
	for _, cfg := range cfgs {
		warmM, err := core.EvaluateTraceMeasured(warm, warmAddBS, cfg, 1, opts.Energy, false)
		if err != nil {
			return nil, err
		}
		// Cold composition: per-kernel cold miss rates weighted by their
		// share of the composite trace.
		var coldMisses, total float64
		for _, k := range ws {
			tr, err := k.Nest.Generate(loopir.SequentialLayout(k.Nest, 0))
			if err != nil {
				return nil, err
			}
			st, err := cachesim.RunTraceFast(cfg, tr)
			if err != nil {
				return nil, err
			}
			rep := k.Trip / 99
			if rep < 1 {
				rep = 1
			}
			coldMisses += float64(st.Misses) * float64(rep)
			total += float64(st.Accesses) * float64(rep)
		}
		coldRate := coldMisses / total
		ratio := warmM.MissRate / coldRate
		tbl.MustAdd(cfg.String(), report.F(warmM.MissRate), report.F(coldRate), report.F(ratio))
		if ratio < 0.95 {
			improvedSomewhere = true
		}
	}
	res.addTable(tbl)
	res.checkf(improvedSomewhere,
		"on larger caches, cross-kernel warm reuse beats the paper's cold composition — the §5 numbers are conservative")
	return res, nil
}
