package figures

import (
	"fmt"

	"memexplore/internal/core"
	"memexplore/internal/kernels"
	"memexplore/internal/report"
)

// Fig05 regenerates Figure 5: the miss-rate reduction from the §4.1
// off-chip memory assignment for Compress at C32L4, C64L8 and C128L16.
func Fig05() (*Result, error) {
	res := &Result{ID: "fig05", Title: "Figure 5: Compress — miss rate, optimized vs unoptimized off-chip assignment"}
	points := []core.ConfigPoint{
		{CacheSize: 32, LineSize: 4, Assoc: 1, Tiling: 1},
		{CacheSize: 64, LineSize: 8, Assoc: 1, Tiling: 1},
		{CacheSize: 128, LineSize: 16, Assoc: 1, Tiling: 1},
	}
	n := kernels.Compress()

	optOpts := pointOpts(core.DefaultOptions(), points)
	optOpts.Classify = true
	opt, err := evalPoints(n, optOpts, points)
	if err != nil {
		return nil, err
	}
	unoptOpts := optOpts
	unoptOpts.OptimizeLayout = false
	unopt, err := evalPoints(n, unoptOpts, points)
	if err != nil {
		return nil, err
	}

	tbl := report.New("", "config", "missrate(opt)", "missrate(unopt)", "conflicts(opt)", "conflicts(unopt)")
	improved := true
	zeroConflicts := true
	for i := range points {
		tbl.MustAdd(cl(points[i].CacheSize, points[i].LineSize),
			report.F(opt[i].MissRate), report.F(unopt[i].MissRate),
			report.U(opt[i].ConflictMisses), report.U(unopt[i].ConflictMisses))
		if opt[i].MissRate > unopt[i].MissRate {
			improved = false
		}
		if opt[i].ConflictMisses != 0 {
			zeroConflicts = false
		}
	}
	res.addTable(tbl)
	res.checkf(improved, "optimized assignment never raises the miss rate")
	res.checkf(zeroConflicts, "optimized assignment eliminates conflict misses for Compress (compatible pattern)")
	return res, nil
}

// Fig09 regenerates Figure 9: the combined effect of set associativity and
// tiling, optimized vs unoptimized, for the five kernels at C64L8. The
// paper's (SA, TS) combinations are (1,1), (2,4) and (8,8); unoptimized
// values are in parentheses.
func Fig09() (*Result, error) {
	res := &Result{ID: "fig09", Title: "Figure 9: set associativity x tiling at C64L8, optimized (unoptimized)"}
	combos := []core.ConfigPoint{
		{CacheSize: 64, LineSize: 8, Assoc: 1, Tiling: 1},
		{CacheSize: 64, LineSize: 8, Assoc: 2, Tiling: 4},
		{CacheSize: 64, LineSize: 8, Assoc: 8, Tiling: 8},
	}
	metricNames := []string{"missrate", "cycles", "energy(nJ)"}
	tables := make([]*report.Table, len(metricNames))
	for mi, name := range metricNames {
		cols := []string{"kernel"}
		for _, p := range combos {
			cols = append(cols, fmt.Sprintf("SA%d/TS%d", p.Assoc, p.Tiling))
		}
		tables[mi] = report.New(name, cols...)
	}

	strictWinsAtDM := 0
	meanBetterKernels := 0
	for _, n := range fiveKernels() {
		optOpts := pointOpts(core.DefaultOptions(), combos)
		opt, err := evalPoints(n, optOpts, combos)
		if err != nil {
			return nil, err
		}
		unoptOpts := optOpts
		unoptOpts.OptimizeLayout = false
		unopt, err := evalPoints(n, unoptOpts, combos)
		if err != nil {
			return nil, err
		}
		rows := [3][]string{{n.Name}, {n.Name}, {n.Name}}
		var optMean, unoptMean float64
		for i := range combos {
			rows[0] = append(rows[0], fmt.Sprintf("%s (%s)", report.F(opt[i].MissRate), report.F(unopt[i].MissRate)))
			rows[1] = append(rows[1], fmt.Sprintf("%s (%s)", report.F(opt[i].Cycles), report.F(unopt[i].Cycles)))
			rows[2] = append(rows[2], fmt.Sprintf("%s (%s)", report.F(opt[i].EnergyNJ), report.F(unopt[i].EnergyNJ)))
			optMean += opt[i].MissRate
			unoptMean += unopt[i].MissRate
		}
		if opt[0].MissRate < unopt[0].MissRate-1e-12 {
			strictWinsAtDM++
		}
		if optMean <= unoptMean+1e-12 {
			meanBetterKernels++
		}
		for mi := range tables {
			tables[mi].MustAdd(rows[mi]...)
		}
	}
	for _, t := range tables {
		res.addTable(t)
	}
	// Paper claims: the unoptimized miss rate is so large that tiling and
	// associativity barely help, while the optimized assignment transforms
	// the picture. At the direct-mapped point the win must be strict for
	// most kernels (sequential packing is already conflict-free for some),
	// and averaged over the (SA, TS) combinations optimization must never
	// lose. At SA8 the cache is fully associative, so layout is irrelevant
	// there by construction.
	res.checkf(strictWinsAtDM >= 3,
		"off-chip assignment strictly reduces the direct-mapped miss rate for %d of 5 kernels", strictWinsAtDM)
	res.checkf(meanBetterKernels == 5,
		"averaged over the (SA, TS) combinations, optimization never loses (%d of 5 kernels)", meanBetterKernels)
	return res, nil
}
