package figures

import (
	"fmt"

	"memexplore/internal/core"
	"memexplore/internal/kernels"
	"memexplore/internal/report"
)

// mpegOptions is the sweep used for the §5 case study.
func mpegOptions() core.Options {
	o := core.DefaultOptions()
	o.CacheSizes = []int{16, 32, 64, 128, 256, 512}
	o.LineSizes = []int{4, 8, 16, 32}
	o.Assocs = []int{1, 2, 4, 8}
	o.Tilings = []int{1, 2, 4, 8, 16}
	return o
}

// Fig10 regenerates Figure 10: the minimum-energy cache configuration for
// each kernel program of the MPEG decoder.
func Fig10() (*Result, error) {
	res := &Result{ID: "fig10", Title: "Figure 10: minimum-energy cache configuration per MPEG decoder kernel"}
	opts := mpegOptions()
	tbl := report.New("", "kernel", "cache", "line", "assoc", "tiling", "energy(nJ)", "cycles")
	distinct := map[string]bool{}
	for _, k := range kernels.MPEGKernels() {
		ms, err := core.Explore(k.Nest, opts)
		if err != nil {
			return nil, err
		}
		minE, ok := core.MinEnergy(ms)
		if !ok {
			return nil, fmt.Errorf("figures: no metrics for %s", k.Nest.Name)
		}
		tbl.MustAdd(k.Nest.Name, report.I(minE.CacheSize), report.I(minE.LineSize),
			report.I(minE.Assoc), report.I(minE.Tiling),
			report.F(minE.EnergyNJ), report.F(minE.Cycles))
		distinct[minE.Label()] = true
	}
	res.addTable(tbl)
	res.checkf(len(distinct) > 1,
		"the per-kernel optima are heterogeneous (%d distinct configurations across 9 kernels)", len(distinct))
	return res, nil
}

// Sec5 regenerates the §5 aggregate result: the whole-decoder
// minimum-energy configuration versus the minimum-cycles configuration,
// using the trip-count-weighted composition of the nine kernels.
func Sec5() (*Result, error) {
	res := &Result{ID: "sec5", Title: "Section 5: MPEG decoder aggregate (trip-count weighted)"}
	var ws []core.WeightedKernel
	for _, k := range kernels.MPEGKernels() {
		ws = append(ws, core.WeightedKernel{Nest: k.Nest, Trip: k.Trip})
	}
	program, perKernel, err := core.Aggregate(ws, mpegOptions())
	if err != nil {
		return nil, err
	}
	minE, _ := core.MinEnergy(program)
	minC, _ := core.MinCycles(program)

	tbl := report.New("", "objective", "config", "energy(nJ)", "cycles", "missrate")
	tbl.MustAdd("min energy", minE.Label(), report.F(minE.EnergyNJ), report.F(minE.Cycles), report.F(minE.MissRate))
	tbl.MustAdd("min cycles", minC.Label(), report.F(minC.EnergyNJ), report.F(minC.Cycles), report.F(minC.MissRate))
	res.addTable(tbl)

	res.findf("paper: min-energy C64 L4 SA8 TS16 (293,000 nJ; 142,000 cycles); min-cycles C512 L16 SA8 TS8 (1,110,000 nJ; 121,000 cycles)")
	res.checkf(minE.Label() != minC.Label(),
		"minimum-energy (%s) differs from minimum-cycles (%s)", minE.Label(), minC.Label())
	res.checkf(minC.EnergyNJ > minE.EnergyNJ,
		"the time-optimal configuration costs more energy (%.0f nJ vs %.0f nJ)", minC.EnergyNJ, minE.EnergyNJ)
	res.checkf(minE.Cycles > minC.Cycles,
		"the energy-optimal configuration costs more cycles (%.0f vs %.0f)", minE.Cycles, minC.Cycles)

	anyKernelDiffers := false
	for name, ms := range perKernel {
		kMinE, ok := core.MinEnergy(ms)
		if ok && kMinE.Label() != minE.Label() {
			anyKernelDiffers = true
			_ = name
		}
	}
	res.checkf(anyKernelDiffers,
		"the whole-program optimum differs from at least one kernel's individual optimum")
	return res, nil
}
