// Package figures regenerates every table and figure of the paper's
// evaluation, one function per exhibit. Each returns a Result with the
// rendered tables and the headline findings the exhibit supports, so the
// same code backs cmd/paperfigs, the root-level benchmarks, and
// EXPERIMENTS.md.
//
// Absolute cycle and energy values differ from the paper's (per-reference
// accounting, simulated miss rates, calibrated energy scales — see
// DESIGN.md); the findings assert the paper's qualitative shapes instead.
package figures

import (
	"fmt"

	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/report"
)

// Result is one regenerated exhibit.
type Result struct {
	// ID is the exhibit identifier, e.g. "fig01".
	ID string
	// Title describes the exhibit.
	Title string
	// Tables are the regenerated data, paper-style.
	Tables []*report.Table
	// Findings are the qualitative checks: each line states a paper claim
	// and whether the regenerated data reproduces it.
	Findings []string
}

func (r *Result) addTable(t *report.Table) { r.Tables = append(r.Tables, t) }
func (r *Result) findf(format string, args ...any) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}
func (r *Result) checkf(ok bool, format string, args ...any) {
	status := "REPRODUCED"
	if !ok {
		status = "DIVERGED"
	}
	r.Findings = append(r.Findings, fmt.Sprintf("[%s] %s", status, fmt.Sprintf(format, args...)))
}

// Entry names one exhibit generator.
type Entry struct {
	ID   string
	Run  func() (*Result, error)
	Desc string
}

// All returns every exhibit in paper order.
func All() []Entry {
	return []Entry{
		{"fig01", Fig01, "Compress energy vs cache/line size for Em=43.56 nJ and Em=2.31 nJ"},
		{"fig02", Fig02, "miss rate, cycles, energy vs cache and line size for the five kernels"},
		{"fig03", Fig03, "Compress cycle count over the (C, L) grid"},
		{"fig04", Fig04, "Compress energy over the (C, L) grid, Em=4.95 nJ"},
		{"fig05", Fig05, "Compress miss-rate reduction from off-chip memory assignment"},
		{"fig06", Fig06, "miss rate, cycles, energy vs tiling size at C64L8"},
		{"fig07", Fig07, "energy vs tiling and vs set associativity, Compress and Dequant"},
		{"fig08", Fig08, "miss rate, cycles, energy vs set associativity at C64L8"},
		{"fig09", Fig09, "set associativity x tiling, optimized vs unoptimized"},
		{"fig10", Fig10, "minimum-energy cache configuration per MPEG kernel"},
		{"sec3", Sec3, "analytical minimum cache size and bounded selection"},
		{"sec5", Sec5, "MPEG decoder aggregate: min-energy vs min-cycles configuration"},
		{"ablation", Ablations, "ablations: Gray vs binary bus, replacement policies"},
		{"ext-breakdown", ExtBreakdown, "extension: §2.3 energy components across the size sweep"},
		{"ext-icache", ExtICache, "extension (§6): instruction-cache exploration and joint I+D budget"},
		{"ext-stackdist", ExtStackDist, "extension: reuse-distance analysis vs the simulator"},
		{"ext-warm", ExtWarm, "extension: warm pipeline vs the §5 cold composition"},
		{"ext-victim", ExtVictim, "extension: software layout vs hardware victim buffer"},
		{"ext-spm", ExtSPM, "extension: cache vs scratchpad at equal capacity"},
		{"ext-l2", ExtL2, "extension: two-level hierarchy vs single level"},
		{"ext-crossover", ExtCrossover, "extension: the Em crossover of the energy optimum"},
		{"ext-autotune", ExtAutotune, "extension: transformation x cache codesign search"},
	}
}

// ByID returns the entry with the given ID.
func ByID(id string) (Entry, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("figures: unknown exhibit %q", id)
}

// ---- shared helpers ----

// evalPoints evaluates a kernel at the given points with one Explorer.
func evalPoints(n *loopir.Nest, opts core.Options, points []core.ConfigPoint) ([]core.Metrics, error) {
	e, err := core.NewExplorer(n, opts)
	if err != nil {
		return nil, err
	}
	out := make([]core.Metrics, 0, len(points))
	for _, p := range points {
		m, err := e.Evaluate(cachesim.DefaultConfig(p.CacheSize, p.LineSize, p.Assoc), p.Tiling)
		if err != nil {
			return nil, fmt.Errorf("figures: %s at %+v: %w", n.Name, p, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// pointOpts builds Options restricted to the geometry values appearing in
// the points (Explore-space validation needs them listed).
func pointOpts(base core.Options, points []core.ConfigPoint) core.Options {
	sizes := map[int]bool{}
	lines := map[int]bool{}
	assocs := map[int]bool{}
	tilings := map[int]bool{}
	for _, p := range points {
		sizes[p.CacheSize] = true
		lines[p.LineSize] = true
		assocs[p.Assoc] = true
		tilings[p.Tiling] = true
	}
	toSlice := func(m map[int]bool) []int {
		var out []int
		for v := range m {
			out = append(out, v)
		}
		return out
	}
	base.CacheSizes = toSlice(sizes)
	base.LineSizes = toSlice(lines)
	base.Assocs = toSlice(assocs)
	base.Tilings = toSlice(tilings)
	return base
}

// clGrid returns the paper's (C, L) grid points with at least minLines
// cache lines, S=1, B=1.
func clGrid(cacheSizes, lineSizes []int, minLines int) []core.ConfigPoint {
	var out []core.ConfigPoint
	for _, c := range cacheSizes {
		for _, l := range lineSizes {
			if l >= c || c/l < minLines {
				continue
			}
			out = append(out, core.ConfigPoint{CacheSize: c, LineSize: l, Assoc: 1, Tiling: 1})
		}
	}
	return out
}

// clDiagonal is the paper's C16L4 → C512L64 family (fixed 4 lines).
func clDiagonal() []core.ConfigPoint {
	return []core.ConfigPoint{
		{CacheSize: 16, LineSize: 4, Assoc: 1, Tiling: 1},
		{CacheSize: 32, LineSize: 8, Assoc: 1, Tiling: 1},
		{CacheSize: 64, LineSize: 16, Assoc: 1, Tiling: 1},
		{CacheSize: 128, LineSize: 32, Assoc: 1, Tiling: 1},
		{CacheSize: 256, LineSize: 64, Assoc: 1, Tiling: 1},
	}
}

func cl(c, l int) string { return fmt.Sprintf("C%dL%d", c, l) }

// fiveKernels returns the §2–4 benchmark kernels.
func fiveKernels() []*loopir.Nest { return kernels.PaperBenchmarks() }
