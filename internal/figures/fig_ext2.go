package figures

import (
	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/energy"
	"memexplore/internal/kernels"
	"memexplore/internal/layout"
	"memexplore/internal/loopir"
	"memexplore/internal/report"
	"memexplore/internal/scratchpad"
)

// ExtVictim compares the two ways of killing conflict misses: the paper's
// software answer (§4.1 off-chip assignment) versus the classic hardware
// answer (a small fully associative victim buffer). Both should recover
// most of the conflict losses of the sequential layout; the software fix
// needs no extra silicon.
func ExtVictim() (*Result, error) {
	res := &Result{ID: "ext-victim", Title: "Extension: §4.1 software layout vs a hardware victim buffer"}
	tbl := report.New("miss rate at C32L4 (direct-mapped)",
		"kernel", "sequential", "victim(4 lines)", "optimized layout", "opt+victim")
	cfg := cachesim.DefaultConfig(32, 4, 1)
	vcfg := cfg
	vcfg.VictimLines = 4

	closeToVictim := 0
	victimHelps := 0
	nothingLeft := 0
	for _, n := range fiveKernels() {
		seqTr, err := n.Generate(loopir.SequentialLayout(n, 0))
		if err != nil {
			return nil, err
		}
		plan, err := layout.Optimize(n, cfg.LineBytes, cfg.NumLines())
		if err != nil {
			return nil, err
		}
		optTr, err := n.Generate(plan.Layout)
		if err != nil {
			return nil, err
		}
		seq, err := cachesim.RunTraceFast(cfg, seqTr)
		if err != nil {
			return nil, err
		}
		vic, err := cachesim.RunTraceFast(vcfg, seqTr)
		if err != nil {
			return nil, err
		}
		opt, err := cachesim.RunTraceFast(cfg, optTr)
		if err != nil {
			return nil, err
		}
		both, err := cachesim.RunTraceFast(vcfg, optTr)
		if err != nil {
			return nil, err
		}
		tbl.MustAdd(n.Name, report.F(seq.MissRate()), report.F(vic.MissRate()),
			report.F(opt.MissRate()), report.F(both.MissRate()))
		if opt.MissRate() <= 2*vic.MissRate()+1e-9 {
			closeToVictim++
		}
		if vic.MissRate() < seq.MissRate()-1e-9 {
			victimHelps++
		}
		if both.MissRate() >= opt.MissRate()-1e-9 {
			nothingLeft++
		}
	}
	res.addTable(tbl)
	res.findf("note: the 4-line victim buffer adds 16 bytes (+50%%) of storage to the 32-byte cache; the layout fix adds none")
	res.checkf(victimHelps >= 4,
		"the victim buffer recovers conflicts on the sequential layout for %d of 5 kernels — conflicts are the problem", victimHelps)
	res.checkf(closeToVictim >= 4,
		"the zero-hardware §4.1 layout gets within 2x of the victim buffer's miss rate for %d of 5 kernels", closeToVictim)
	res.checkf(nothingLeft >= 3,
		"after layout optimization the victim buffer finds nothing left to recover for %d of 5 kernels — the layout removed the conflicts", nothingLeft)
	return res, nil
}

// ExtSPM compares the explored cache against a software-managed
// scratchpad of equal capacity — the organization choice the paper's
// lineage ([1], [2]) frames. Caches win when the working set exceeds
// on-chip capacity but has locality; scratchpads win when a hot array
// fits exactly and tags/misses are pure overhead.
func ExtSPM() (*Result, error) {
	res := &Result{ID: "ext-spm", Title: "Extension: cache vs scratchpad at equal on-chip capacity"}
	part := energy.CypressCY7C()
	spmParams := scratchpad.DefaultParams(part)

	tbl := report.New("minimum-energy organization per kernel (capacity ≤ 1024 B)",
		"kernel", "cache config", "cache energy(nJ)", "spm capacity", "spm hitrate", "spm energy(nJ)", "winner")
	capacities := []int{64, 128, 256, 512, 1024}
	cacheWins, spmWins := 0, 0
	// The five paper kernels plus two with small hot arrays (FIR's
	// 64-byte tap table, Conv2D's 9-byte stencil) — the scratchpad's
	// natural territory.
	suite := append(fiveKernels(), kernels.FIR(), kernels.Conv2D())
	for _, n := range suite {
		opts := core.DefaultOptions()
		opts.CacheSizes = capacities
		opts.Energy = energy.DefaultParams(part)
		cms, err := core.Explore(n, opts)
		if err != nil {
			return nil, err
		}
		cBest, _ := core.MinEnergy(cms)
		sms, err := scratchpad.Explore(n, capacities, spmParams)
		if err != nil {
			return nil, err
		}
		sBest, ok := scratchpad.MinEnergy(sms)
		if !ok {
			continue
		}
		winner := "cache"
		if sBest.EnergyNJ < cBest.EnergyNJ {
			winner = "scratchpad"
			spmWins++
		} else {
			cacheWins++
		}
		tbl.MustAdd(n.Name, cBest.Label(), report.F(cBest.EnergyNJ),
			report.I(sBest.CapacityBytes), report.F(sBest.HitRate), report.F(sBest.EnergyNJ), winner)
	}
	res.addTable(tbl)
	res.checkf(cacheWins > 0 && spmWins > 0,
		"neither organization dominates (cache wins %d, scratchpad wins %d) — the exploration question is real",
		cacheWins, spmWins)

	// The FIR special case: the 64-byte tap table is read every iteration
	// and fits on-chip exactly — the scratchpad's sweet spot.
	sms, err := scratchpad.Explore(kernels.FIR(), capacities, spmParams)
	if err != nil {
		return nil, err
	}
	sBest, _ := scratchpad.MinEnergy(sms)
	res.checkf(sBest.HitRate > 0.2,
		"FIR's scratchpad optimum keeps the hot tap table on-chip (%d bytes, hit rate %.2f)",
		sBest.CapacityBytes, sBest.HitRate)
	return res, nil
}
