package figures

import (
	"fmt"

	"memexplore/internal/core"
	"memexplore/internal/energy"
	"memexplore/internal/kernels"
	"memexplore/internal/report"
)

// Fig01 regenerates Figure 1: Compress energy for different cache and line
// sizes under the two extreme main memories (Em = 43.56 nJ and 2.31 nJ).
// The paper's claim: with the expensive memory, energy falls as cache and
// line size grow; with the cheap memory the trend reverses.
func Fig01() (*Result, error) {
	res := &Result{
		ID:    "fig01",
		Title: "Figure 1: Compress — energy vs cache/line size for Em=43.56 nJ and Em=2.31 nJ",
	}
	n := kernels.Compress()
	points := clDiagonal()
	parts := []energy.SRAM{energy.Large16Mbit(), energy.LowPower2Mbit()}
	var diag [2][]core.Metrics
	for pi, part := range parts {
		opts := pointOpts(core.DefaultOptions(), points)
		opts.Energy = energy.DefaultParams(part)
		ms, err := evalPoints(n, opts, points)
		if err != nil {
			return nil, err
		}
		diag[pi] = ms
		tbl := report.New(fmt.Sprintf("Em = %.2f nJ (%s)", part.EmNJ, part.Name),
			"config", "missrate", "energy(nJ)")
		for _, m := range ms {
			tbl.MustAdd(cl(m.CacheSize, m.LineSize), report.F(m.MissRate), report.F(m.EnergyNJ))
		}
		res.addTable(tbl)
	}
	first, last := 0, len(points)-1
	res.checkf(diag[0][last].EnergyNJ < diag[0][first].EnergyNJ,
		"Em=43.56: energy decreases from %s (%.0f nJ) to %s (%.0f nJ)",
		cl(points[first].CacheSize, points[first].LineSize), diag[0][first].EnergyNJ,
		cl(points[last].CacheSize, points[last].LineSize), diag[0][last].EnergyNJ)
	res.checkf(diag[1][last].EnergyNJ > diag[1][first].EnergyNJ,
		"Em=2.31: energy increases from %s (%.0f nJ) to %s (%.0f nJ)",
		cl(points[first].CacheSize, points[first].LineSize), diag[1][first].EnergyNJ,
		cl(points[last].CacheSize, points[last].LineSize), diag[1][last].EnergyNJ)
	return res, nil
}

// Fig03 regenerates Figure 3: Compress cycle count over the (C, L) grid
// with at least 4 cache lines. Cycles must fall monotonically along the
// diagonal toward the paper's minimum-time configuration C512L64.
func Fig03() (*Result, error) {
	res := &Result{ID: "fig03", Title: "Figure 3: Compress — cycles for different cache and line sizes (≥4 lines)"}
	cacheSizes := []int{16, 32, 64, 128, 256, 512}
	lineSizes := []int{4, 8, 16, 32, 64}
	points := clGrid(cacheSizes, lineSizes, 4)
	opts := pointOpts(core.DefaultOptions(), points)
	ms, err := evalPoints(kernels.Compress(), opts, points)
	if err != nil {
		return nil, err
	}
	res.addTable(gridTable("cycles", cacheSizes, lineSizes, points, ms, func(m core.Metrics) string {
		return report.F(m.Cycles)
	}))

	minT, _ := core.MinCycles(ms)
	res.findf("minimum-time configuration: %s (%.0f cycles); paper: C512L64", cl(minT.CacheSize, minT.LineSize), minT.Cycles)
	// The Compress working set saturates below 512 bytes, so C256L64 and
	// C512L64 tie on cycles; the paper's pick must be co-optimal (within
	// 0.1%) and share the largest line size.
	paperPick, ok := core.Find(ms, core.ConfigPoint{CacheSize: 512, LineSize: 64, Assoc: 1, Tiling: 1})
	res.checkf(ok && paperPick.Cycles <= 1.001*minT.Cycles && minT.LineSize == 64,
		"the paper's C512L64 is (co-)optimal in time: %.0f cycles vs minimum %.0f at %s",
		paperPick.Cycles, minT.Cycles, cl(minT.CacheSize, minT.LineSize))
	return res, nil
}

// Fig04 regenerates Figure 4: Compress energy over the same grid with the
// CY7C memory (Em = 4.95 nJ). The paper reads C16L4 as the minimum-energy
// configuration and contrasts it with the C512L64 time optimum.
func Fig04() (*Result, error) {
	res := &Result{ID: "fig04", Title: "Figure 4: Compress — energy (nJ) for different cache and line sizes (Em=4.95 nJ)"}
	cacheSizes := []int{16, 32, 64, 128, 256, 512}
	lineSizes := []int{4, 8, 16, 32, 64}
	points := clGrid(cacheSizes, lineSizes, 4)
	opts := pointOpts(core.DefaultOptions(), points)
	ms, err := evalPoints(kernels.Compress(), opts, points)
	if err != nil {
		return nil, err
	}
	res.addTable(gridTable("energy(nJ)", cacheSizes, lineSizes, points, ms, func(m core.Metrics) string {
		return report.F(m.EnergyNJ)
	}))

	minE, _ := core.MinEnergy(ms)
	minT, _ := core.MinCycles(ms)
	res.findf("minimum-energy configuration: %s (%.0f nJ); paper: C16L4", cl(minE.CacheSize, minE.LineSize), minE.EnergyNJ)
	res.checkf(minE.CacheSize == 16 && minE.LineSize == 4,
		"minimum-energy configuration is C16L4 as in the paper (got %s)", cl(minE.CacheSize, minE.LineSize))
	res.checkf(minE.CacheSize != minT.CacheSize || minE.LineSize != minT.LineSize,
		"minimum-energy (%s) and minimum-time (%s) configurations differ",
		cl(minE.CacheSize, minE.LineSize), cl(minT.CacheSize, minT.LineSize))
	return res, nil
}

// gridTable renders a (C rows × L columns) table of one metric.
func gridTable(metric string, cacheSizes, lineSizes []int, points []core.ConfigPoint, ms []core.Metrics, cell func(core.Metrics) string) *report.Table {
	cols := []string{"cache\\line"}
	for _, l := range lineSizes {
		cols = append(cols, fmt.Sprintf("L%d", l))
	}
	tbl := report.New(metric, cols...)
	for _, c := range cacheSizes {
		row := []string{fmt.Sprintf("C%d", c)}
		for _, l := range lineSizes {
			val := "-"
			for i, p := range points {
				if p.CacheSize == c && p.LineSize == l {
					val = cell(ms[i])
					break
				}
			}
			row = append(row, val)
		}
		tbl.MustAdd(row...)
	}
	return tbl
}
