package figures

import (
	"fmt"

	"memexplore/internal/core"
	"memexplore/internal/loopir"
	"memexplore/internal/report"
)

// Fig02 regenerates Figure 2: miss rate, number of cycles and energy for
// the five kernels across the paper's (C, L) diagonal C16L4 … C128L32
// (S=1, B=1, Em=4.95 nJ).
func Fig02() (*Result, error) {
	res := &Result{ID: "fig02", Title: "Figure 2: miss rate, cycles, energy vs cache size and line size (Em=4.95 nJ)"}
	points := clDiagonal()[:4] // C16L4 .. C128L32, as in the figure
	perKernel := map[string][]core.Metrics{}
	for _, n := range fiveKernels() {
		opts := pointOpts(core.DefaultOptions(), points)
		ms, err := evalPoints(n, opts, points)
		if err != nil {
			return nil, err
		}
		perKernel[n.Name] = ms
	}
	res.addTable(kernelMetricTable("miss rate", points, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.MissRate) }))
	res.addTable(kernelMetricTable("cycles", points, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.Cycles) }))
	res.addTable(kernelMetricTable("energy (nJ)", points, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.EnergyNJ) }))

	// Paper claim: miss rate decreases with larger caches/lines for every
	// kernel, but energy does not decrease for all of them.
	missMonotone := true
	energyMonotone := true
	for _, ms := range perKernel {
		for i := 1; i < len(ms); i++ {
			if ms[i].MissRate > ms[i-1].MissRate+1e-12 {
				missMonotone = false
			}
		}
		if ms[len(ms)-1].EnergyNJ >= ms[0].EnergyNJ {
			energyMonotone = false
		}
	}
	res.checkf(missMonotone, "miss rate is non-increasing in cache/line size for all five kernels")
	res.checkf(!energyMonotone, "energy is NOT uniformly decreasing — at least one kernel pays for the larger cache")
	return res, nil
}

// Fig06 regenerates Figure 6: miss rate, cycles and energy versus tiling
// size at C64L8 (Em = 4.95 nJ). The paper's reading: tiling helps up to
// the number of cache lines (8 here), beyond which misses and energy grow.
func Fig06() (*Result, error) {
	res := &Result{ID: "fig06", Title: "Figure 6: miss rate, cycles, energy vs tiling size (C64L8, Em=4.95 nJ)"}
	tilings := []int{1, 2, 4, 8}
	var points []core.ConfigPoint
	for _, b := range tilings {
		points = append(points, core.ConfigPoint{CacheSize: 64, LineSize: 8, Assoc: 1, Tiling: b})
	}
	perKernel := map[string][]core.Metrics{}
	for _, n := range fiveKernels() {
		opts := pointOpts(core.DefaultOptions(), points)
		ms, err := evalPoints(n, opts, points)
		if err != nil {
			return nil, err
		}
		perKernel[n.Name] = ms
	}
	label := func(p core.ConfigPoint) string { return fmt.Sprintf("B%d", p.Tiling) }
	res.addTable(kernelMetricTableL("miss rate", points, label, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.MissRate) }))
	res.addTable(kernelMetricTableL("cycles", points, label, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.Cycles) }))
	res.addTable(kernelMetricTableL("energy (nJ)", points, label, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.EnergyNJ) }))

	// The over-tiling claim needs a kernel whose reuse tiling actually
	// restructures: the transpose of Example 3 is the paper's own
	// motivator, and matmul carries classic blocked reuse.
	if err := tilingOnTranspose(res); err != nil {
		return nil, err
	}
	mm := perKernel["matmul"]
	res.checkf(mm[len(mm)-1].MissRate < mm[0].MissRate,
		"tiling reduces the matmul miss rate (B8: %.4f vs B1: %.4f)",
		mm[len(mm)-1].MissRate, mm[0].MissRate)
	return res, nil
}

// tilingOnTranspose reproduces the §4.2 Example 3 claims on the transpose
// kernel: tiling sharply reduces the miss rate, and tile sizes beyond the
// number of cache lines (8 at C64L8) lose again.
func tilingOnTranspose(res *Result) error {
	n := kernelTranspose()
	tilings := []int{1, 2, 4, 8, 16}
	var points []core.ConfigPoint
	for _, b := range tilings {
		points = append(points, core.ConfigPoint{CacheSize: 64, LineSize: 8, Assoc: 1, Tiling: b})
	}
	opts := pointOpts(core.DefaultOptions(), points)
	ms, err := evalPoints(n, opts, points)
	if err != nil {
		return err
	}
	tbl := report.New("Example 3 (transpose a[i][j]=b[j][i], 32x32): tiling at C64L8",
		"tiling", "missrate", "cycles", "energy(nJ)")
	for _, m := range ms {
		tbl.MustAdd(fmt.Sprintf("B%d", m.Tiling), report.F(m.MissRate), report.F(m.Cycles), report.F(m.EnergyNJ))
	}
	res.addTable(tbl)
	b1, b8, b16 := ms[0], ms[3], ms[4]
	res.checkf(b8.MissRate < b1.MissRate/2,
		"tiling drastically reduces the transpose miss rate (B8: %.4f vs B1: %.4f)", b8.MissRate, b1.MissRate)
	res.checkf(b16.MissRate > b8.MissRate && b16.EnergyNJ > b8.EnergyNJ,
		"tile sizes beyond the number of cache lines lose again (B16 missrate %.4f > B8 %.4f)",
		b16.MissRate, b8.MissRate)
	return nil
}

// Fig08 regenerates Figure 8: miss rate, cycles and energy versus set
// associativity at C64L8 with tiling 1 (Em = 4.95 nJ). The sweep uses the
// sequential (unoptimized) layout: associativity's job here is to absorb
// the mapping conflicts the §4.1 assignment would otherwise remove, so the
// benefit is visible on the baseline layout (Figure 9 shows the optimized
// columns).
func Fig08() (*Result, error) {
	res := &Result{ID: "fig08", Title: "Figure 8: miss rate, cycles, energy vs set associativity (C64L8, B=1, Em=4.95 nJ, sequential layout)"}
	assocs := []int{1, 2, 4, 8}
	var points []core.ConfigPoint
	for _, s := range assocs {
		points = append(points, core.ConfigPoint{CacheSize: 64, LineSize: 8, Assoc: s, Tiling: 1})
	}
	perKernel := map[string][]core.Metrics{}
	for _, n := range fiveKernels() {
		opts := pointOpts(core.DefaultOptions(), points)
		opts.OptimizeLayout = false
		ms, err := evalPoints(n, opts, points)
		if err != nil {
			return nil, err
		}
		perKernel[n.Name] = ms
	}
	label := func(p core.ConfigPoint) string { return fmt.Sprintf("SA%d", p.Assoc) }
	res.addTable(kernelMetricTableL("miss rate", points, label, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.MissRate) }))
	res.addTable(kernelMetricTableL("cycles", points, label, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.Cycles) }))
	res.addTable(kernelMetricTableL("energy (nJ)", points, label, fiveKernels(), perKernel,
		func(m core.Metrics) string { return report.F(m.EnergyNJ) }))

	// Paper claims: (a) associativity can improve the hit rate — the best
	// set-associative point beats direct-mapped for most kernels; (b) the
	// improvement is not universal ("the number of processor cycles as
	// well as the energy values do not necessarily decrease").
	improved := 0
	someStepWorsens := false
	for _, ms := range perKernel {
		best := ms[0].MissRate
		for _, m := range ms[1:] {
			if m.MissRate < best {
				best = m.MissRate
			}
		}
		if best < ms[0].MissRate-1e-9 {
			improved++
		}
		for i := 1; i < len(ms); i++ {
			if ms[i].Cycles > ms[i-1].Cycles {
				someStepWorsens = true
			}
		}
	}
	res.checkf(improved >= 3,
		"associativity reduces the miss rate below direct-mapped for %d of 5 kernels", improved)
	res.checkf(someStepWorsens,
		"cycles do NOT always improve with associativity (hit-time cost and LRU effects)")
	return res, nil
}

// kernelMetricTable renders kernels × configurations for one metric, with
// configuration labels CxxLyy.
func kernelMetricTable(metric string, points []core.ConfigPoint, order []*loopir.Nest, perKernel map[string][]core.Metrics, cell func(core.Metrics) string) *report.Table {
	return kernelMetricTableL(metric, points, func(p core.ConfigPoint) string {
		return cl(p.CacheSize, p.LineSize)
	}, order, perKernel, cell)
}

func kernelMetricTableL(metric string, points []core.ConfigPoint, label func(core.ConfigPoint) string, order []*loopir.Nest, perKernel map[string][]core.Metrics, cell func(core.Metrics) string) *report.Table {
	cols := []string{"kernel"}
	for _, p := range points {
		cols = append(cols, label(p))
	}
	tbl := report.New(metric, cols...)
	for _, n := range order {
		row := []string{n.Name}
		for i := range points {
			row = append(row, cell(perKernel[n.Name][i]))
		}
		tbl.MustAdd(row...)
	}
	return tbl
}
