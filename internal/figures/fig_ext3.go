package figures

import (
	"memexplore/internal/autotune"
	"memexplore/internal/core"
	"memexplore/internal/energy"
	"memexplore/internal/hierarchy"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/report"
)

// ExtL2 asks whether a second cache level ever beats spending the same
// silicon on a bigger single level, for the paper's kernels and models.
// Expectation from the energy model: for these small working sets a
// second level mostly adds E_cell; the exception is a reuse-heavy kernel
// whose working set overflows any affordable L1 (matmul).
func ExtL2() (*Result, error) {
	res := &Result{ID: "ext-l2", Title: "Extension: two-level hierarchy vs single level at equal total capacity"}
	p := energy.DefaultParams(energy.CypressCY7C())

	tbl := report.New("best organization per kernel (total on-chip ≤ 1088 B)",
		"kernel", "single best", "E(nJ)", "two-level best", "E(nJ)", "winner")
	singleWins := 0
	for _, n := range append(fiveKernels(), kernels.MotionEst()) {
		tr, err := n.Generate(loopir.SequentialLayout(n, 0))
		if err != nil {
			return nil, err
		}
		// Single level: the core sweep restricted to ≤1024 B.
		opts := core.DefaultOptions()
		opts.CacheSizes = []int{16, 32, 64, 128, 256, 512, 1024}
		opts.Assocs = []int{1, 2}
		opts.Tilings = []int{1}
		opts.OptimizeLayout = false
		single, err := core.Explore(n, opts)
		if err != nil {
			return nil, err
		}
		sBest, _ := core.MinEnergy(single)

		two, err := hierarchy.Explore(tr, []int{16, 32, 64}, []int{128, 256, 512, 1024}, 8, 16, 1, p)
		if err != nil {
			return nil, err
		}
		tBest, _ := hierarchy.MinEnergy(two)

		winner := "single"
		if tBest.EnergyNJ < sBest.EnergyNJ {
			winner = "two-level"
		} else {
			singleWins++
		}
		tbl.MustAdd(n.Name, sBest.Label(), report.F(sBest.EnergyNJ),
			tBest.Config.String(), report.F(tBest.EnergyNJ), winner)
	}
	res.addTable(tbl)
	res.checkf(singleWins >= 4,
		"a single level wins for %d of 6 kernels — at these working-set sizes a second level mostly adds cell energy, consistent with the paper's single-level focus", singleWins)
	return res, nil
}

// ExtCrossover locates, by bisection, the main-memory energy Em* at which
// Compress's minimum-energy configuration flips from the small cache
// (C16L4) to a larger one — the quantitative version of Figure 1's "the
// trend depends on Em".
func ExtCrossover() (*Result, error) {
	res := &Result{ID: "ext-crossover", Title: "Extension: the Em crossover of the Compress energy optimum"}
	n := kernels.Compress()
	points := clGrid([]int{16, 32, 64, 128, 256, 512}, []int{4, 8, 16, 32, 64}, 4)

	bestAt := func(em float64) (core.Metrics, error) {
		opts := pointOpts(core.DefaultOptions(), points)
		part := energy.CypressCY7C()
		part.EmNJ = em
		opts.Energy = energy.DefaultParams(part)
		ms, err := evalPoints(n, opts, points)
		if err != nil {
			return core.Metrics{}, err
		}
		m, _ := core.MinEnergy(ms)
		return m, nil
	}

	lo, hi := 2.31, 43.56
	loBest, err := bestAt(lo)
	if err != nil {
		return nil, err
	}
	hiBest, err := bestAt(hi)
	if err != nil {
		return nil, err
	}
	tbl := report.New("", "Em (nJ)", "min-energy config", "energy(nJ)")
	tbl.MustAdd(report.F(lo), loBest.Label(), report.F(loBest.EnergyNJ))

	small := loBest.CacheSize
	// Bisect to the Em where the optimum leaves the small cache.
	for i := 0; i < 24 && hi-lo > 0.01; i++ {
		mid := (lo + hi) / 2
		b, err := bestAt(mid)
		if err != nil {
			return nil, err
		}
		if b.CacheSize == small {
			lo = mid
		} else {
			hi = mid
		}
	}
	crossBest, err := bestAt(hi)
	if err != nil {
		return nil, err
	}
	tbl.MustAdd(report.F(hi), crossBest.Label(), report.F(crossBest.EnergyNJ))
	tbl.MustAdd(report.F(43.56), hiBest.Label(), report.F(hiBest.EnergyNJ))
	res.addTable(tbl)

	res.findf("crossover Em* ≈ %.2f nJ: below it the small cache wins, above it the optimum moves to %s",
		hi, crossBest.Label())
	res.checkf(loBest.CacheSize < hiBest.CacheSize,
		"the optimum grows with Em (%s at %.2f nJ → %s at %.2f nJ) — Figure 1's reversal, quantified",
		loBest.Label(), 2.31, hiBest.Label(), 43.56)
	res.checkf(hi > 2.31 && hi < 43.56,
		"the crossover lies strictly between the paper's two memory parts (Em* ≈ %.2f nJ)", hi)
	return res, nil
}

// ExtAutotune runs the codesign searcher: loop-transformation variants ×
// data cache × instruction cache, under a shared on-chip budget, for the
// paper's tiling motivator (the Example 3 transpose).
func ExtAutotune() (*Result, error) {
	res := &Result{ID: "ext-autotune", Title: "Extension: transformation x cache codesign search (transpose)"}
	cfg := autotune.DefaultConfig()
	cfg.Options.CacheSizes = []int{32, 64, 128, 256}
	cfg.Options.LineSizes = []int{4, 8}
	cfg.Options.Assocs = []int{1, 2}
	cfg.Options.Tilings = []int{1, 4, 8}
	cfg.BudgetBytes = 384

	results, best, err := autotune.Tune(kernelTranspose(), cfg)
	if err != nil {
		return nil, err
	}
	tbl := report.New("variants under a 384-byte on-chip budget",
		"variant", "code(B)", "D-config", "I-config", "D-energy", "I-energy", "total(nJ)")
	var baseline *autotune.Result
	for i := range results {
		r := results[i]
		tbl.MustAdd(r.Variant.Name, report.I(r.CodeBytes), r.Data.Label(), r.Instr.Label(),
			report.F(r.Data.EnergyNJ), report.F(r.Instr.EnergyNJ), report.F(r.TotalEnergyNJ))
		if r.Variant.Name == "baseline" {
			baseline = &results[i]
		}
	}
	res.addTable(tbl)
	win := results[best]
	res.findf("best variant: %s with %s + %s (%.0f nJ total)",
		win.Variant.Name, win.Data.Label(), win.Instr.Label(), win.TotalEnergyNJ)
	res.checkf(baseline != nil && win.TotalEnergyNJ <= baseline.TotalEnergyNJ,
		"the searched optimum is at least as good as the untransformed baseline (%.0f vs %.0f nJ)",
		win.TotalEnergyNJ, baseline.TotalEnergyNJ)
	res.checkf(win.Data.Tiling > 1,
		"the winning configuration uses tiling (B=%d) — the §4.2 transformation wins inside the joint search",
		win.Data.Tiling)
	res.checkf(win.TotalSize <= 384,
		"the winner respects the on-chip budget (%d of 384 bytes)", win.TotalSize)
	return res, nil
}
