// Package bus models the switching activity of the address and data buses
// between the processor, the cache, and the off-chip memory. The paper's
// energy model (§2.3) needs two inputs from it:
//
//   - Add_bs — the average number of bit switches on the address bus per
//     access, computed assuming Gray-code encoding of the address lines;
//   - Data_bs — the data-bus activity factor, which the paper fixes as an
//     assumed constant (0.5 here; the sentence in the available text is
//     truncated, see DESIGN.md).
package bus

import "memexplore/internal/trace"

// ToGray converts a binary value to its reflected-binary Gray code.
func ToGray(v uint64) uint64 { return v ^ (v >> 1) }

// FromGray converts a reflected-binary Gray code back to binary.
func FromGray(g uint64) uint64 {
	v := g
	for shift := uint(1); shift < 64; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}

// popcount64 counts set bits.
func popcount64(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Encoding selects how addresses are driven onto the bus.
type Encoding int

const (
	// Gray drives addresses in reflected-binary Gray code, the paper's
	// assumption: consecutive addresses differ in exactly one bit.
	Gray Encoding = iota
	// Binary drives raw binary addresses, the ablation baseline.
	Binary
)

// String returns the encoding name.
func (e Encoding) String() string {
	if e == Gray {
		return "gray"
	}
	return "binary"
}

// SwitchCounter accumulates bit-switch counts on a bus that is driven with
// a sequence of values.
type SwitchCounter struct {
	enc      Encoding
	prev     uint64
	prevSet  bool
	switches uint64
	drives   uint64
}

// NewSwitchCounter returns a counter for the given encoding.
func NewSwitchCounter(enc Encoding) *SwitchCounter {
	return &SwitchCounter{enc: enc}
}

// Drive places v on the bus and accumulates the Hamming distance to the
// previous value under the configured encoding. The first drive switches
// no lines (the bus state before it is unknown/undefined).
func (c *SwitchCounter) Drive(v uint64) {
	enc := v
	if c.enc == Gray {
		enc = ToGray(v)
	}
	if c.prevSet {
		c.switches += uint64(popcount64(enc ^ c.prev))
	}
	c.prev = enc
	c.prevSet = true
	c.drives++
}

// Switches returns the total number of bit switches observed.
func (c *SwitchCounter) Switches() uint64 { return c.switches }

// Drives returns how many values were driven.
func (c *SwitchCounter) Drives() uint64 { return c.drives }

// PerDrive returns the average switches per drive (0 if nothing driven).
func (c *SwitchCounter) PerDrive() float64 {
	if c.drives == 0 {
		return 0
	}
	return float64(c.switches) / float64(c.drives)
}

// Reset clears the counter, including the remembered bus state.
func (c *SwitchCounter) Reset() {
	c.prev, c.prevSet, c.switches, c.drives = 0, false, 0, 0
}

// Activity summarizes the bus behaviour of a whole trace.
type Activity struct {
	// Encoding used on the address bus.
	Encoding Encoding
	// References driven.
	References uint64
	// AddrSwitches is the total address-bus bit switches.
	AddrSwitches uint64
}

// AddBS returns the average address-bus switches per reference — the
// Add_bs term of the paper's energy model.
func (a Activity) AddBS() float64 {
	if a.References == 0 {
		return 0
	}
	return float64(a.AddrSwitches) / float64(a.References)
}

// MeasureTrace drives every reference address of the trace over an address
// bus with the given encoding and returns the observed activity.
func MeasureTrace(tr *trace.Trace, enc Encoding) Activity {
	c := NewSwitchCounter(enc)
	for i := 0; i < tr.Len(); i++ {
		c.Drive(tr.At(i).Addr)
	}
	return Activity{Encoding: enc, References: c.Drives(), AddrSwitches: c.Switches()}
}

// DefaultDataActivity is the assumed data-bus switching factor Data_bs:
// the fraction of data-bus lines that switch per transferred word.
const DefaultDataActivity = 0.5
