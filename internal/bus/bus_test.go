package bus

import (
	"testing"
	"testing/quick"

	"memexplore/internal/trace"
)

func TestGrayKnownValues(t *testing.T) {
	// The classic 3-bit Gray sequence.
	want := []uint64{0, 1, 3, 2, 6, 7, 5, 4}
	for v, g := range want {
		if got := ToGray(uint64(v)); got != g {
			t.Errorf("ToGray(%d) = %d, want %d", v, got, g)
		}
	}
}

func TestQuickGrayRoundTrip(t *testing.T) {
	f := func(v uint64) bool { return FromGray(ToGray(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: consecutive integers differ by exactly one bit in Gray code —
// the property the paper's Add_bs assumption rests on.
func TestQuickGrayAdjacentSingleBit(t *testing.T) {
	f := func(v uint64) bool {
		if v == ^uint64(0) {
			v--
		}
		d := ToGray(v) ^ ToGray(v+1)
		return d != 0 && d&(d-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwitchCounterSequential(t *testing.T) {
	c := NewSwitchCounter(Gray)
	for v := uint64(0); v < 100; v++ {
		c.Drive(v)
	}
	// 99 transitions between consecutive values: exactly one switch each.
	if got := c.Switches(); got != 99 {
		t.Errorf("gray sequential switches = %d, want 99", got)
	}
	if got := c.Drives(); got != 100 {
		t.Errorf("drives = %d, want 100", got)
	}
	if got := c.PerDrive(); got != 0.99 {
		t.Errorf("per-drive = %v, want 0.99", got)
	}
}

func TestSwitchCounterBinaryWorseOnSequential(t *testing.T) {
	g := NewSwitchCounter(Gray)
	b := NewSwitchCounter(Binary)
	for v := uint64(0); v < 1024; v++ {
		g.Drive(v)
		b.Drive(v)
	}
	if g.Switches() >= b.Switches() {
		t.Errorf("gray (%d) should switch less than binary (%d) on a sequential walk",
			g.Switches(), b.Switches())
	}
	// Binary counting 0..2^k-1 switches 2^k - k - ... ; exact total for
	// 0..n-1 is sum of popcount(v^(v+1)) = 2n - popcount-ish; just check a
	// known small case instead.
	b2 := NewSwitchCounter(Binary)
	for _, v := range []uint64{0, 1, 2, 3} {
		b2.Drive(v)
	}
	// 0->1: 1 switch, 1->2: 2 switches, 2->3: 1 switch.
	if got := b2.Switches(); got != 4 {
		t.Errorf("binary 0..3 switches = %d, want 4", got)
	}
}

func TestSwitchCounterReset(t *testing.T) {
	c := NewSwitchCounter(Gray)
	c.Drive(0)
	c.Drive(1)
	c.Reset()
	if c.Switches() != 0 || c.Drives() != 0 || c.PerDrive() != 0 {
		t.Errorf("after reset: %d switches %d drives", c.Switches(), c.Drives())
	}
	c.Drive(7) // first drive after reset must not count switches
	if c.Switches() != 0 {
		t.Errorf("first drive after reset switched %d", c.Switches())
	}
}

func TestMeasureTrace(t *testing.T) {
	tr := trace.Sequential(0, 64, 1)
	act := MeasureTrace(tr, Gray)
	if act.References != 64 {
		t.Errorf("references = %d", act.References)
	}
	if act.AddrSwitches != 63 {
		t.Errorf("switches = %d, want 63", act.AddrSwitches)
	}
	if got, want := act.AddBS(), 63.0/64.0; got != want {
		t.Errorf("AddBS = %v, want %v", got, want)
	}
	if (Activity{}).AddBS() != 0 {
		t.Error("empty activity should report 0")
	}
}

func TestEncodingString(t *testing.T) {
	if Gray.String() != "gray" || Binary.String() != "binary" {
		t.Error("encoding names wrong")
	}
}

// Property: total switches measured over a trace equals the sum of Hamming
// distances of consecutive encoded addresses.
func TestQuickMeasureMatchesPairwise(t *testing.T) {
	f := func(addrs []uint64) bool {
		tr := trace.New(len(addrs))
		for _, a := range addrs {
			tr.Append(trace.Ref{Addr: a})
		}
		act := MeasureTrace(tr, Binary)
		var want uint64
		for i := 1; i < len(addrs); i++ {
			want += uint64(popcount64(addrs[i] ^ addrs[i-1]))
		}
		return act.AddrSwitches == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
