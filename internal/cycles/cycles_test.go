package cycles

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCyclesPerHitTable(t *testing.T) {
	want := map[int]float64{1: 1.0, 2: 1.1, 4: 1.12, 8: 1.14}
	for s, w := range want {
		got, err := CyclesPerHit(s)
		if err != nil {
			t.Fatalf("CyclesPerHit(%d): %v", s, err)
		}
		if got != w {
			t.Errorf("CyclesPerHit(%d) = %v, want %v", s, got, w)
		}
	}
	if _, err := CyclesPerHit(0); err == nil {
		t.Error("CyclesPerHit(0) should fail")
	}
	if _, err := CyclesPerHit(-2); err == nil {
		t.Error("CyclesPerHit(-2) should fail")
	}
	// Above-table associativity saturates.
	got, err := CyclesPerHit(16)
	if err != nil || got != 1.14 {
		t.Errorf("CyclesPerHit(16) = %v,%v want 1.14", got, err)
	}
	// In-between values fall back to next lower entry.
	got, err = CyclesPerHit(3)
	if err != nil || got != 1.1 {
		t.Errorf("CyclesPerHit(3) = %v,%v want 1.1", got, err)
	}
}

func TestCyclesPerMissTable(t *testing.T) {
	want := map[int]float64{4: 40, 8: 40, 16: 42, 32: 44, 64: 48, 128: 56, 256: 72}
	for l, w := range want {
		got, err := CyclesPerMiss(l)
		if err != nil {
			t.Fatalf("CyclesPerMiss(%d): %v", l, err)
		}
		if got != w {
			t.Errorf("CyclesPerMiss(%d) = %v, want %v", l, got, w)
		}
	}
	for _, l := range []int{0, 2, 3, 512} {
		if _, err := CyclesPerMiss(l); err == nil {
			t.Errorf("CyclesPerMiss(%d) should fail", l)
		}
	}
}

func TestCount(t *testing.T) {
	// Direct-mapped, L=8, no tiling: 100 hits + 10 misses.
	got, err := Count(Params{Assoc: 1, LineBytes: 8, TilingSize: 1}, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 100*1.0 + 10*(1+40.0)
	if got != want {
		t.Errorf("Count = %v, want %v", got, want)
	}
	// Tiling adds B to the miss penalty.
	got, err = Count(Params{Assoc: 1, LineBytes: 8, TilingSize: 8}, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	want = 100 + 10*(8+40.0)
	if got != want {
		t.Errorf("Count with tiling = %v, want %v", got, want)
	}
	// TilingSize 0 behaves like 1.
	a, _ := Count(Params{Assoc: 1, LineBytes: 8, TilingSize: 0}, 5, 5)
	b, _ := Count(Params{Assoc: 1, LineBytes: 8, TilingSize: 1}, 5, 5)
	if a != b {
		t.Errorf("B=0 (%v) should equal B=1 (%v)", a, b)
	}
}

func TestCountErrors(t *testing.T) {
	if _, err := Count(Params{Assoc: 0, LineBytes: 8}, 1, 1); err == nil {
		t.Error("invalid associativity should fail")
	}
	if _, err := Count(Params{Assoc: 1, LineBytes: 5}, 1, 1); err == nil {
		t.Error("invalid line size should fail")
	}
}

func TestSupportedTables(t *testing.T) {
	for _, l := range SupportedLineSizes() {
		if _, err := CyclesPerMiss(l); err != nil {
			t.Errorf("supported line size %d rejected: %v", l, err)
		}
	}
	for _, s := range SupportedAssociativities() {
		if _, err := CyclesPerHit(s); err != nil {
			t.Errorf("supported associativity %d rejected: %v", s, err)
		}
	}
}

// Property: cycles are monotone in hits, misses, and tiling size.
func TestQuickCountMonotone(t *testing.T) {
	f := func(hits, misses uint32, b uint8) bool {
		p := Params{Assoc: 2, LineBytes: 16, TilingSize: int(b%64) + 1}
		c1, err1 := Count(p, uint64(hits), uint64(misses))
		c2, err2 := Count(p, uint64(hits)+1, uint64(misses))
		c3, err3 := Count(p, uint64(hits), uint64(misses)+1)
		p2 := p
		p2.TilingSize++
		c4, err4 := Count(p2, uint64(hits), uint64(misses))
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		if c2 <= c1 || c3 <= c1 {
			return false
		}
		if c4 < c1 { // equal when misses == 0
			return false
		}
		if misses > 0 && c4 <= c1 {
			return false
		}
		return !math.IsNaN(c1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
