// Package cycles implements the paper's processor-cycle model (§2.2),
// adopted from Hennessy & Patterson [10]:
//
//	cycles = hits·(cycles per hit) + misses·(tiling size + cycles per miss)
//
// with cycles-per-hit depending on associativity (greater associativity
// costs hit time) and cycles-per-miss depending on line size (longer lines
// cost miss penalty). The paper states the formula per reference via
// hit_rate·trip_count; this package uses the equivalent absolute counts
// (see DESIGN.md on per-reference accounting).
package cycles

import "fmt"

// hitCycles maps degree of set associativity to cycles per hit (§2.2).
var hitCycles = map[int]float64{
	1: 1.0,
	2: 1.1,
	4: 1.12,
	8: 1.14,
}

// missCycles maps cache line size in bytes to cycles per miss (§2.2).
var missCycles = map[int]float64{
	4:   40,
	8:   40,
	16:  42,
	32:  44,
	64:  48,
	128: 56,
	256: 72,
}

// CyclesPerHit returns the hit latency for the given associativity.
// Associativities above 8 saturate at the 8-way value; the paper only
// explores S ≤ 8.
func CyclesPerHit(assoc int) (float64, error) {
	if assoc <= 0 {
		return 0, fmt.Errorf("cycles: invalid associativity %d", assoc)
	}
	if c, ok := hitCycles[assoc]; ok {
		return c, nil
	}
	if assoc > 8 {
		return hitCycles[8], nil
	}
	// Non-power-of-two between table entries: interpolate by next lower
	// power of two. The exploration only generates powers of two, so this
	// is defensive.
	for s := assoc; s >= 1; s-- {
		if c, ok := hitCycles[s]; ok {
			return c, nil
		}
	}
	return 0, fmt.Errorf("cycles: no hit-cycle entry for associativity %d", assoc)
}

// CyclesPerMiss returns the miss penalty for the given line size in bytes.
// Line sizes outside the paper's table (4..256) are an error.
func CyclesPerMiss(lineBytes int) (float64, error) {
	if c, ok := missCycles[lineBytes]; ok {
		return c, nil
	}
	return 0, fmt.Errorf("cycles: no miss-penalty entry for line size %d (want power of two in [4,256])", lineBytes)
}

// Params fixes the configuration-dependent inputs of the cycle model.
type Params struct {
	// Assoc is the degree of set associativity S.
	Assoc int
	// LineBytes is the cache line size L.
	LineBytes int
	// TilingSize is the tiling factor B; the paper adds it to the miss
	// penalty ("tiling size + number of cycles per miss"). Use 1 for an
	// untiled loop.
	TilingSize int
}

// Count computes the total processor cycles for the given hit and miss
// counts under the model.
func Count(p Params, hits, misses uint64) (float64, error) {
	cph, err := CyclesPerHit(p.Assoc)
	if err != nil {
		return 0, err
	}
	cpm, err := CyclesPerMiss(p.LineBytes)
	if err != nil {
		return 0, err
	}
	b := p.TilingSize
	if b < 1 {
		b = 1
	}
	return float64(hits)*cph + float64(misses)*(float64(b)+cpm), nil
}

// SupportedLineSizes returns the line sizes the model has penalties for,
// in increasing order.
func SupportedLineSizes() []int {
	return []int{4, 8, 16, 32, 64, 128, 256}
}

// SupportedAssociativities returns the associativities with exact hit-time
// entries, in increasing order.
func SupportedAssociativities() []int {
	return []int{1, 2, 4, 8}
}
