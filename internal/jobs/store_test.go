package jobs

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// sampleRecord builds a fully populated record so round-trips exercise
// every field.
func sampleRecord(id string) Record {
	created := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	started := created.Add(time.Second)
	finished := created.Add(2 * time.Second)
	return Record{
		ID:         id,
		Kind:       "explore",
		State:      StateDone,
		Cached:     true,
		CreatedAt:  created,
		StartedAt:  &started,
		FinishedAt: &finished,
		Progress:   Progress{Records: 10, Chunks: 2, Points: 8, PointsDone: 8, PassUnits: 4, PassUnitsDone: 4},
		ContentKey: "abc123",
		Result:     json.RawMessage(`{"points":8}`),
		Error:      nil,
	}
}

// recordsEqual compares records through their canonical JSON, which is
// also the fidelity the filesystem store guarantees.
func recordsEqual(t *testing.T, got, want Record) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Fatalf("record mismatch:\n got %s\nwant %s", g, w)
	}
}

// testStoreConformance is the suite both Store implementations must
// pass identically.
func testStoreConformance(t *testing.T, s Store) {
	t.Helper()

	// Missing key reads as absent, not as an error.
	if _, ok, err := s.Get("missing"); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v, want absent", ok, err)
	}

	// Round-trip preserves every field.
	rec := sampleRecord("job-1")
	if err := s.Put("job-1", rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("job-1")
	if err != nil || !ok {
		t.Fatalf("Get(job-1) = ok=%v err=%v", ok, err)
	}
	recordsEqual(t, got, rec)

	// The caller may mutate what Get returned without corrupting the
	// stored copy.
	got.Progress.Records = 999
	got.Result[0] = 'X'
	again, _, _ := s.Get("job-1")
	recordsEqual(t, again, rec)

	// Put replaces.
	rec2 := sampleRecord("job-1")
	rec2.State = StateFailed
	rec2.Error = &Failure{Code: "internal", Message: "boom"}
	rec2.Result = nil
	if err := s.Put("job-1", rec2); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get("job-1")
	recordsEqual(t, got, rec2)

	// Content keys are ordinary keys.
	if err := s.Put("content/abc123", rec); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("content/abc123"); !ok {
		t.Fatal("content-keyed record not readable")
	}

	// Delete removes; deleting a missing key is a no-op.
	if err := s.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("job-1"); ok {
		t.Fatal("record readable after Delete")
	}
	if err := s.Delete("job-1"); err != nil {
		t.Fatalf("double Delete: %v", err)
	}
}

func TestMemStoreConformance(t *testing.T) {
	testStoreConformance(t, NewMemStore(0, 0))
}

func TestFSStoreConformance(t *testing.T) {
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreConformance(t, fs)
}

// TestFSStoreRestart simulates a process restart: a fresh FSStore over
// the same directory serves everything the previous one persisted.
func TestFSStoreRestart(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord("survivor")
	if err := fs1.Put("survivor", rec); err != nil {
		t.Fatal(err)
	}
	if err := fs1.Put("content-key", rec); err != nil {
		t.Fatal(err)
	}

	fs2, err := NewFSStore(dir) // the "restarted" process
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := fs2.Get("survivor")
	if err != nil || !ok {
		t.Fatalf("restarted Get = ok=%v err=%v", ok, err)
	}
	recordsEqual(t, got, rec)
	if _, ok, _ := fs2.Get("content-key"); !ok {
		t.Fatal("content-keyed result did not survive the restart")
	}
}

func TestFSStoreNeedsDir(t *testing.T) {
	if _, err := NewFSStore(""); err == nil {
		t.Fatal("NewFSStore(\"\") succeeded")
	}
}

// TestMemStoreTTL drives the injectable clock past the TTL and checks
// lazy (Get) and eager (Put-sweep) expiry.
func TestMemStoreTTL(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s := NewMemStore(8, time.Minute)
	s.now = func() time.Time { return now }

	if err := s.Put("a", sampleRecord("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("a"); !ok {
		t.Fatal("fresh record absent")
	}

	now = now.Add(2 * time.Minute)
	if _, ok, _ := s.Get("a"); ok {
		t.Fatal("expired record still readable")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after expiry, want 0", got)
	}

	// A Put sweeps other expired entries even when their keys are never
	// read again.
	if err := s.Put("b", sampleRecord("b")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if err := s.Put("c", sampleRecord("c")); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d after sweep, want just the fresh record", got)
	}

	// Overwriting refreshes the clock.
	now = now.Add(30 * time.Second)
	if err := s.Put("c", sampleRecord("c")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(45 * time.Second) // 75s since first write, 45s since refresh
	if _, ok, _ := s.Get("c"); !ok {
		t.Fatal("refreshed record expired on the original clock")
	}
}

// TestMemStoreCapacity checks LRU-ordered eviction at the capacity
// bound.
func TestMemStoreCapacity(t *testing.T) {
	s := NewMemStore(2, 0)
	for _, k := range []string{"a", "b"} {
		if err := s.Put(k, sampleRecord(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU entry.
	if _, ok, _ := s.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if err := s.Put("c", sampleRecord("c")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("b"); ok {
		t.Fatal("LRU entry b survived over-capacity Put")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok, _ := s.Get(k); !ok {
			t.Fatalf("%s evicted, want b", k)
		}
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestFSStoreBlobs: the blob tier round-trips bytes and misses cleanly.
func TestFSStoreBlobs(t *testing.T) {
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fs.GetBlob("deadbeef"); err != nil || ok {
		t.Fatalf("missing blob: ok=%v err=%v", ok, err)
	}
	want := []byte("trace bytes")
	if err := fs.PutBlob("deadbeef", want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := fs.GetBlob("deadbeef")
	if err != nil || !ok || string(got) != string(want) {
		t.Fatalf("GetBlob = %q, %v, %v", got, ok, err)
	}
	// Overwrite is idempotent (content-addressed keys).
	if err := fs.PutBlob("deadbeef", want); err != nil {
		t.Fatal(err)
	}
}

// backdate pushes a store file's timestamps into the past so a short-TTL
// Cleanup sees it as expired.
func backdate(t *testing.T, path string, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

// TestFSStoreCleanupCascade is the sweep-then-stat contract of the
// janitor: expiring a terminal parent job removes its record, its
// content-key alias, its children's records and their aliases, and aged
// blobs — while fresh records, live (non-terminal) records, and fresh
// blobs survive.
func TestFSStoreCleanupCascade(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	finished := time.Now().Add(-time.Hour)
	put := func(rec Record) {
		t.Helper()
		if err := fs.Put(rec.ID, rec); err != nil {
			t.Fatal(err)
		}
		if rec.ContentKey != "" {
			if err := fs.Put(rec.ContentKey, rec); err != nil {
				t.Fatal(err)
			}
		}
	}

	child1 := Record{ID: "c1", Kind: "explore-trace", State: StateDone, ContentKey: "ck-c1", FinishedAt: &finished}
	child2 := Record{ID: "c2", Kind: "explore-trace", State: StateCanceled, ContentKey: "ck-c2", FinishedAt: &finished}
	parent := Record{ID: "p1", Kind: "explore-trace", State: StateDone, ContentKey: "ck-p1",
		FinishedAt: &finished, Children: []string{"c1", "c2"}}
	fresh := Record{ID: "f1", Kind: "explore-trace", State: StateDone, ContentKey: "ck-f1"}
	now := time.Now()
	fresh.FinishedAt = &now
	running := Record{ID: "r1", Kind: "explore-trace", State: StateRunning, CreatedAt: finished}
	put(child1)
	put(child2)
	put(parent)
	put(fresh)
	put(running)
	if err := fs.PutBlob("old-blob", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.PutBlob("new-blob", []byte("y")); err != nil {
		t.Fatal(err)
	}
	backdate(t, fs.blobPath("old-blob"), time.Hour)

	removed, err := fs.Cleanup(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// parent + alias, two children + aliases, one blob = 7 files.
	if removed != 7 {
		t.Errorf("Cleanup removed %d files, want 7", removed)
	}
	for _, key := range []string{"p1", "ck-p1", "c1", "ck-c1", "c2", "ck-c2"} {
		if _, ok, _ := fs.Get(key); ok {
			t.Errorf("expired record %q survived cleanup", key)
		}
	}
	if _, ok, _ := fs.GetBlob("old-blob"); ok {
		t.Error("aged blob survived cleanup")
	}
	for _, key := range []string{"f1", "ck-f1", "r1"} {
		if _, ok, _ := fs.Get(key); !ok {
			t.Errorf("record %q was removed by cleanup but is not expired", key)
		}
	}
	if _, ok, _ := fs.GetBlob("new-blob"); !ok {
		t.Error("fresh blob was reaped")
	}

	// Idempotent: a second sweep finds nothing left to remove.
	if n, err := fs.Cleanup(30 * time.Minute); err != nil || n != 0 {
		t.Errorf("second Cleanup = %d, %v", n, err)
	}
}
