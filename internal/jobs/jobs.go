// Package jobs implements memexplored's asynchronous job subsystem: a
// job is one sweep (kernel or external-trace) accepted with 202 and run
// in the background on a bounded runner pool, its lifecycle
//
//	queued → running → done | failed | canceled
//
// observable by polling and by a versioned watch stream (the SSE
// endpoint). Terminal jobs are persisted through a Store — the result
// tier. Two implementations ship: an in-memory store with TTL and
// capacity eviction, and a content-addressed filesystem store whose
// directory may be shared by several replicas, so a sweep finished on
// one replica is readable (and reusable, via content keys) on all of
// them.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is a job's cumulative progress snapshot. Totals (Points,
// PassUnits) are set from the sweep plan when the job starts; the
// *Done counters and the trace counters advance as the engines report.
type Progress struct {
	// Records is the number of trace references ingested and simulated
	// so far (external-trace jobs only).
	Records int64 `json:"records"`
	// Chunks is the number of trace chunks processed so far
	// (external-trace jobs only).
	Chunks int64 `json:"chunks"`
	// Points is the total number of sweep configuration points planned.
	Points int64 `json:"points"`
	// PointsDone is the number of configuration points completed.
	PointsDone int64 `json:"points_done"`
	// PassUnits is the total number of simulation pass units planned.
	PassUnits int64 `json:"pass_units"`
	// PassUnitsDone is the number of pass units completed.
	PassUnitsDone int64 `json:"pass_units_done"`
}

// Failure is the machine-readable error of a failed job — the same
// {code, message, field} shape the synchronous endpoints put in their
// error envelope, so clients handle both identically.
type Failure struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// Record is the serializable snapshot of a job: what GET /v1/jobs/{id}
// returns, what the Store persists, and what every watch event carries.
type Record struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Cached reports that the result was recalled from the shared result
	// tier (by content key) instead of running the sweep.
	Cached     bool       `json:"cached,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Progress   Progress   `json:"progress"`
	// ContentKey is the content address of the job's request (the same
	// canonical hash the synchronous result cache uses). Jobs sharing a
	// content key share a result in the store-backed tier.
	ContentKey string `json:"content_key,omitempty"`
	// Children lists the ids of child jobs this job fanned out — the
	// shard jobs of a distributed sweep. Store cleanup cascades through
	// them so an expired parent never strands shard results.
	Children []string `json:"children,omitempty"`
	// Result is the completed sweep's response body (present when
	// State == done); its shape equals the synchronous endpoint's reply.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the mapped failure (present when State == failed).
	Error *Failure `json:"error,omitempty"`
}

// Clone returns a deep copy of the record (the raw result and the
// failure are copied, so mutating one snapshot never aliases another).
func (r Record) Clone() Record {
	cp := r
	if r.Result != nil {
		cp.Result = append(json.RawMessage(nil), r.Result...)
	}
	if r.Children != nil {
		cp.Children = append([]string(nil), r.Children...)
	}
	if r.Error != nil {
		e := *r.Error
		cp.Error = &e
	}
	if r.StartedAt != nil {
		t := *r.StartedAt
		cp.StartedAt = &t
	}
	if r.FinishedAt != nil {
		t := *r.FinishedAt
		cp.FinishedAt = &t
	}
	return cp
}

// NewID returns a fresh 128-bit random job id in hex.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}
