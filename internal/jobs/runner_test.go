package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// awaitTerminal watches id to its terminal record (with a test
// timeout), returning every record version the watcher observed.
func awaitTerminal(t *testing.T, r *Runner, id string) []Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var seen []Record
	found, err := r.Watch(ctx, id, func(rec Record) error {
		seen = append(seen, rec)
		return nil
	})
	if err != nil || !found {
		t.Fatalf("Watch = found=%v err=%v", found, err)
	}
	return seen
}

func TestRunnerLifecycle(t *testing.T) {
	store := NewMemStore(0, 0)
	r := NewRunner(store, 1, nil, Hooks{})
	rec, err := r.Submit("explore", "", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		rep.SetTotals(4, 2)
		rep.Add(100, 1, 4, 2)
		return []byte(`{"ok":true}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" || rec.State != StateQueued || rec.CreatedAt.IsZero() {
		t.Fatalf("submit record = %+v", rec)
	}

	seen := awaitTerminal(t, r, rec.ID)
	final := seen[len(seen)-1]
	if final.State != StateDone {
		t.Fatalf("final state = %s (%+v)", final.State, final.Error)
	}
	if string(final.Result) != `{"ok":true}` {
		t.Fatalf("result = %s", final.Result)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatal("terminal record missing timestamps")
	}
	if final.Progress.Records != 100 || final.Progress.PointsDone != 4 || final.Progress.PassUnits != 2 {
		t.Fatalf("progress = %+v", final.Progress)
	}

	// The terminal record is persisted and served from the store.
	got, ok, err := r.Get(rec.ID)
	if err != nil || !ok {
		t.Fatalf("Get after settle = ok=%v err=%v", ok, err)
	}
	if got.State != StateDone {
		t.Fatalf("stored state = %s", got.State)
	}
	if _, ok, _ := store.Get(rec.ID); !ok {
		t.Fatal("record not in the store")
	}
}

// TestRunnerWatchOrdering pins the watch contract: versions are
// strictly ordered, states never regress, progress never decreases, and
// the terminal record is the last delivery.
func TestRunnerWatchOrdering(t *testing.T) {
	r := NewRunner(NewMemStore(0, 0), 1, nil, Hooks{})
	rec, err := r.Submit("explore", "", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		for i := 0; i < 50; i++ {
			rep.Add(10, 1, 0, 0)
		}
		return []byte(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := awaitTerminal(t, r, rec.ID)

	rank := map[State]int{StateQueued: 0, StateRunning: 1, StateDone: 2, StateFailed: 2, StateCanceled: 2}
	lastRank, lastRecords := -1, int64(-1)
	for i, s := range seen {
		if rank[s.State] < lastRank {
			t.Fatalf("state regressed at %d: %v", i, states(seen))
		}
		lastRank = rank[s.State]
		if s.Progress.Records < lastRecords {
			t.Fatalf("progress regressed at %d", i)
		}
		lastRecords = s.Progress.Records
		if s.State.Terminal() && i != len(seen)-1 {
			t.Fatalf("terminal state delivered mid-stream: %v", states(seen))
		}
	}
	if final := seen[len(seen)-1]; !final.State.Terminal() || final.Progress.Records != 500 {
		t.Fatalf("final = %s with %d records", final.State, final.Progress.Records)
	}

	// Watching a settled job delivers exactly its stored record.
	var replays []Record
	found, err := r.Watch(context.Background(), rec.ID, func(rec Record) error {
		replays = append(replays, rec)
		return nil
	})
	if err != nil || !found || len(replays) != 1 || replays[0].State != StateDone {
		t.Fatalf("settled watch = found=%v err=%v records=%d", found, err, len(replays))
	}
}

func states(recs []Record) []State {
	out := make([]State, len(recs))
	for i, r := range recs {
		out[i] = r.State
	}
	return out
}

func TestRunnerCancelWhileRunning(t *testing.T) {
	r := NewRunner(NewMemStore(0, 0), 1, nil, Hooks{})
	started := make(chan struct{})
	rec, err := r.Submit("explore", "", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok, err := r.Cancel(rec.ID); err != nil || !ok {
		t.Fatalf("Cancel = ok=%v err=%v", ok, err)
	}
	seen := awaitTerminal(t, r, rec.ID)
	final := seen[len(seen)-1]
	if final.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	if final.Error != nil || final.Result != nil {
		t.Fatalf("canceled record carries error/result: %+v", final)
	}
	// The runner fully drains afterwards: no goroutine is stuck.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("Drain after cancel: %v", err)
	}
}

func TestRunnerCancelWhileQueued(t *testing.T) {
	r := NewRunner(NewMemStore(0, 0), 1, nil, Hooks{})
	release := make(chan struct{})
	holding := make(chan struct{})
	blocker, err := r.Submit("explore", "", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		close(holding)
		<-release
		return []byte(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-holding // the slot is taken; the next job must queue
	var ran atomic.Bool
	queued, err := r.Submit("explore", "", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		ran.Store(true)
		return []byte(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Cancel(queued.ID); !ok {
		t.Fatal("Cancel(queued) not found")
	}
	final := awaitTerminal(t, r, queued.ID)
	if st := final[len(final)-1].State; st != StateCanceled {
		t.Fatalf("queued-cancel state = %s", st)
	}
	if final[len(final)-1].StartedAt != nil || ran.Load() {
		t.Fatal("queued-canceled job ran anyway")
	}
	close(release)
	awaitTerminal(t, r, blocker.ID)
}

func TestRunnerContentKeyRecall(t *testing.T) {
	var hooks struct{ submitted, completed, hits atomic.Int64 }
	r := NewRunner(NewMemStore(0, 0), 1, nil, Hooks{
		Submitted:  func() { hooks.submitted.Add(1) },
		Completed:  func() { hooks.completed.Add(1) },
		ResultHits: func() { hooks.hits.Add(1) },
	})
	first, err := r.Submit("explore", "key-1", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		return []byte(`{"answer":42}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitTerminal(t, r, first.ID)

	// Same content key: answered from the result tier, fn never runs.
	second, err := r.Submit("explore", "key-1", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		t.Error("recalled submission ran its fn")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached || string(second.Result) != `{"answer":42}` {
		t.Fatalf("recalled record = %+v", second)
	}
	if second.ID == first.ID {
		t.Fatal("recalled submission reused the original job id")
	}
	// The recalled job is itself readable under its own id.
	if got, ok, _ := r.Get(second.ID); !ok || got.State != StateDone {
		t.Fatalf("recalled job not readable: ok=%v %+v", ok, got)
	}
	if hooks.hits.Load() != 1 || hooks.submitted.Load() != 2 || hooks.completed.Load() != 2 {
		t.Fatalf("hooks = submitted %d completed %d hits %d",
			hooks.submitted.Load(), hooks.completed.Load(), hooks.hits.Load())
	}

	// A different key still runs.
	third, err := r.Submit("explore", "key-2", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		return []byte(`{"answer":7}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if third.State != StateQueued {
		t.Fatalf("fresh key state = %s", third.State)
	}
	awaitTerminal(t, r, third.ID)
}

func TestRunnerFailureMapping(t *testing.T) {
	mapErr := func(err error) Failure {
		return Failure{Code: "invalid_options", Message: err.Error(), Field: "sizes"}
	}
	r := NewRunner(NewMemStore(0, 0), 1, mapErr, Hooks{})
	rec, err := r.Submit("explore", "fail-key", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		return nil, errors.New("bad geometry")
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := awaitTerminal(t, r, rec.ID)
	final := seen[len(seen)-1]
	if final.State != StateFailed || final.Error == nil {
		t.Fatalf("final = %+v", final)
	}
	if final.Error.Code != "invalid_options" || final.Error.Field != "sizes" {
		t.Fatalf("failure = %+v", final.Error)
	}
	// Failed results are never published to the content tier.
	again, err := r.Submit("explore", "fail-key", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		return []byte(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateQueued {
		t.Fatal("failed result was recalled from the content tier")
	}
	awaitTerminal(t, r, again.ID)
}

func TestRunnerDrain(t *testing.T) {
	r := NewRunner(NewMemStore(0, 0), 1, nil, Hooks{})
	release := make(chan struct{})
	rec, err := r.Submit("explore", "", func(ctx context.Context, rep *Reporter) ([]byte, error) {
		<-release
		return []byte(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drain blocks on the running job (bounded ctx says so), and new
	// submissions are rejected.
	short, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := r.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with running job = %v", err)
	}
	if _, err := r.Submit("explore", "", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining = %v", err)
	}

	close(release)
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	if got, _, _ := r.Get(rec.ID); got.State != StateDone {
		t.Fatalf("drained job state = %s", got.State)
	}
}

func TestRunnerWatchUnknown(t *testing.T) {
	r := NewRunner(NewMemStore(0, 0), 1, nil, Hooks{})
	found, err := r.Watch(context.Background(), "nope", func(Record) error { return nil })
	if found || err != nil {
		t.Fatalf("Watch(unknown) = %v %v", found, err)
	}
	if _, ok, _ := r.Get("nope"); ok {
		t.Fatal("Get(unknown) found something")
	}
	if _, ok, _ := r.Cancel("nope"); ok {
		t.Fatal("Cancel(unknown) found something")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 32 || seen[id] {
			t.Fatalf("NewID() = %q (dup=%v)", id, seen[id])
		}
		seen[id] = true
	}
}

// TestRunnerSlotLimit checks the pool bound: with one slot, two jobs
// never run concurrently.
func TestRunnerSlotLimit(t *testing.T) {
	r := NewRunner(NewMemStore(0, 0), 1, nil, Hooks{})
	var running, maxRunning atomic.Int64
	body := func(ctx context.Context, rep *Reporter) ([]byte, error) {
		n := running.Add(1)
		for {
			m := maxRunning.Load()
			if n <= m || maxRunning.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		running.Add(-1)
		return []byte(`{}`), nil
	}
	var ids []string
	for i := 0; i < 3; i++ {
		rec, err := r.Submit("explore", fmt.Sprintf("k%d", i), body)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	for _, id := range ids {
		awaitTerminal(t, r, id)
	}
	if maxRunning.Load() != 1 {
		t.Fatalf("max concurrent jobs = %d, want 1", maxRunning.Load())
	}
}
