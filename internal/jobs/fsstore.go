package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// FSStore is the shareable Store: each record is one JSON file in a
// directory, written atomically (temp file + rename) and named by the
// SHA-256 of its key, so arbitrary keys — job ids and content-address
// hashes alike — map to safe, fixed-length, collision-free file names.
// Several replicas may point at the same directory (over a shared
// volume): a job finished on one replica is immediately readable on the
// others, and content-keyed results are recalled by every replica. A
// fresh FSStore over an existing directory sees everything already in
// it, which is also what makes results survive a process restart.
type FSStore struct {
	dir string
}

// NewFSStore opens (creating if needed) a filesystem store rooted at dir.
func NewFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: filesystem store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store directory: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FSStore) Dir() string { return s.dir }

// path maps a key to its file.
func (s *FSStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Put implements Store: marshal, write to a temp file in the same
// directory, fsync-free rename into place. Rename atomicity is what
// keeps concurrent replicas from ever observing a torn record.
func (s *FSStore) Put(key string, rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: marshaling record %s: %w", rec.ID, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("jobs: creating temp record: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: writing record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: closing record: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("jobs: publishing record: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *FSStore) Get(key string) (Record, bool, error) {
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return Record{}, false, nil
	}
	if err != nil {
		return Record{}, false, fmt.Errorf("jobs: reading record: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, false, fmt.Errorf("jobs: decoding record under %s: %w", key, err)
	}
	return rec, true, nil
}

// Delete implements Store.
func (s *FSStore) Delete(key string) error {
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobs: deleting record: %w", err)
	}
	return nil
}

// blobPath maps a blob key to its file. Blobs use a distinct extension
// so the record scan of Cleanup never tries to decode one.
func (s *FSStore) blobPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".blob")
}

// PutBlob stores an opaque byte blob under key — the trace-upload-once
// tier of distributed sweeps: a coordinator publishes the trace body by
// content hash, peers sharing the directory resolve it without the bytes
// ever crossing the wire again. Written with the same atomic
// temp-and-rename discipline as records.
func (s *FSStore) PutBlob(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".blob-*")
	if err != nil {
		return fmt.Errorf("jobs: creating temp blob: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: writing blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: closing blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.blobPath(key)); err != nil {
		return fmt.Errorf("jobs: publishing blob: %w", err)
	}
	return nil
}

// GetBlob returns the blob stored under key, if any.
func (s *FSStore) GetBlob(key string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.blobPath(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("jobs: reading blob: %w", err)
	}
	return data, true, nil
}

// Cleanup removes terminal job records older than ttl, cascading through
// each expired record's content-key entry and its children (the shard
// jobs of a distributed sweep) — without the cascade, a shared directory
// leaks shard results whose parent is long gone, because a child's
// content key is reachable only through its record. Blobs are reaped by
// modification time under the same ttl; a distributed dispatch whose
// blob is reaped mid-flight degrades gracefully (the peer reports
// unknown_trace_ref and the coordinator re-ships the body). Returns the
// number of files removed. Decode failures and fresh records are
// skipped, never fatal: cleanup is a janitor, not a transaction.
func (s *FSStore) Cleanup(ttl time.Duration) (int, error) {
	cutoff := time.Now().Add(-ttl)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("jobs: scanning store for cleanup: %w", err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		full := filepath.Join(s.dir, name)
		if strings.HasSuffix(name, ".blob") {
			if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
				if os.Remove(full) == nil {
					removed++
				}
			}
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(full)
		if err != nil {
			continue
		}
		var rec Record
		if json.Unmarshal(data, &rec) != nil || !rec.State.Terminal() {
			continue
		}
		at := rec.CreatedAt
		if rec.FinishedAt != nil {
			at = *rec.FinishedAt
		}
		if !at.Before(cutoff) {
			continue
		}
		removed += s.removeCascade(rec, full, 0)
	}
	return removed, nil
}

// removeCascade deletes one record file plus its content-key alias and,
// recursively, its children's records. depth bounds pathological cycles
// a corrupted store could otherwise loop on.
func (s *FSStore) removeCascade(rec Record, full string, depth int) int {
	if depth > 4 {
		return 0
	}
	removed := 0
	if os.Remove(full) == nil {
		removed++
	}
	if rec.ContentKey != "" {
		if os.Remove(s.path(rec.ContentKey)) == nil {
			removed++
		}
	}
	for _, child := range rec.Children {
		cp := s.path(child)
		data, err := os.ReadFile(cp)
		if err != nil {
			continue
		}
		var crec Record
		if json.Unmarshal(data, &crec) != nil {
			// Undecodable child: remove the file itself, nothing to cascade.
			if os.Remove(cp) == nil {
				removed++
			}
			continue
		}
		removed += s.removeCascade(crec, cp, depth+1)
	}
	return removed
}
