package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FSStore is the shareable Store: each record is one JSON file in a
// directory, written atomically (temp file + rename) and named by the
// SHA-256 of its key, so arbitrary keys — job ids and content-address
// hashes alike — map to safe, fixed-length, collision-free file names.
// Several replicas may point at the same directory (over a shared
// volume): a job finished on one replica is immediately readable on the
// others, and content-keyed results are recalled by every replica. A
// fresh FSStore over an existing directory sees everything already in
// it, which is also what makes results survive a process restart.
type FSStore struct {
	dir string
}

// NewFSStore opens (creating if needed) a filesystem store rooted at dir.
func NewFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: filesystem store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store directory: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FSStore) Dir() string { return s.dir }

// path maps a key to its file.
func (s *FSStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Put implements Store: marshal, write to a temp file in the same
// directory, fsync-free rename into place. Rename atomicity is what
// keeps concurrent replicas from ever observing a torn record.
func (s *FSStore) Put(key string, rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: marshaling record %s: %w", rec.ID, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("jobs: creating temp record: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: writing record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: closing record: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("jobs: publishing record: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *FSStore) Get(key string) (Record, bool, error) {
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return Record{}, false, nil
	}
	if err != nil {
		return Record{}, false, fmt.Errorf("jobs: reading record: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, false, fmt.Errorf("jobs: decoding record under %s: %w", key, err)
	}
	return rec, true, nil
}

// Delete implements Store.
func (s *FSStore) Delete(key string) error {
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobs: deleting record: %w", err)
	}
	return nil
}
