package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDraining is returned by Submit once Drain has started.
var ErrDraining = errors.New("jobs: runner is draining, not accepting new jobs")

// Fn is the body of a job: it runs the sweep under ctx, reports
// progress through rep, and returns the finished response body (the
// same JSON the synchronous endpoint would have written).
type Fn func(ctx context.Context, rep *Reporter) (result []byte, err error)

// MapError converts a job error into its machine-readable Failure —
// the service passes the same mapping its synchronous error envelope
// uses, so async failures carry exactly the sync error codes.
type MapError func(error) Failure

// Hooks are optional observability callbacks (any may be nil): gauge
// deltas for the queued/running states and counters for the terminal
// ones. They run on runner goroutines and must be cheap.
type Hooks struct {
	Submitted  func()
	Queued     func(delta int64)
	Running    func(delta int64)
	Completed  func()
	Failed     func()
	Canceled   func()
	ResultHits func() // submissions answered from the shared result tier
}

func (h Hooks) submitted()      { call0(h.Submitted) }
func (h Hooks) queued(d int64)  { call1(h.Queued, d) }
func (h Hooks) running(d int64) { call1(h.Running, d) }
func (h Hooks) completed()      { call0(h.Completed) }
func (h Hooks) failed()         { call0(h.Failed) }
func (h Hooks) canceled()       { call0(h.Canceled) }
func (h Hooks) resultHit()      { call0(h.ResultHits) }
func call0(f func()) {
	if f != nil {
		f()
	}
}
func call1(f func(int64), d int64) {
	if f != nil {
		f(d)
	}
}

// Runner owns the live jobs of one process: a bounded slot pool caps
// how many run at once (the rest wait in queued state), Cancel aborts a
// job through its context, and Drain waits for every accepted job to
// reach a terminal state. Terminal records are persisted to the Store
// and — when the job carries a content key — published to the shared
// result tier, where later submissions with the same key recall them
// without re-running the sweep.
type Runner struct {
	store    Store
	slots    chan struct{}
	mapErr   MapError
	hooks    Hooks
	draining atomic.Bool

	mu   sync.Mutex
	live map[string]*task

	wg sync.WaitGroup
}

// task is one live job: the mutable record plus the change-broadcast
// machinery watchers wait on.
type task struct {
	mu         sync.Mutex
	rec        Record
	seq        int64
	updated    chan struct{} // closed and replaced on every change
	cancelFn   context.CancelFunc
	userCancel bool
}

// bump applies mutate to the record under the lock and wakes watchers.
func (t *task) bump(mutate func(*Record)) {
	t.mu.Lock()
	mutate(&t.rec)
	t.seq++
	close(t.updated)
	t.updated = make(chan struct{})
	t.mu.Unlock()
}

// snapshot returns a copy of the record, its version, and the channel
// that will be closed on the next change.
func (t *task) snapshot() (Record, int64, <-chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec.Clone(), t.seq, t.updated
}

// NewRunner builds a runner executing at most slots jobs concurrently
// (≤ 0 means 2) over the given store. mapErr may be nil (failures then
// carry the "internal" code with the raw error text).
func NewRunner(store Store, slots int, mapErr MapError, hooks Hooks) *Runner {
	if slots <= 0 {
		slots = 2
	}
	if mapErr == nil {
		mapErr = func(err error) Failure {
			return Failure{Code: "internal", Message: err.Error()}
		}
	}
	return &Runner{
		store:  store,
		slots:  make(chan struct{}, slots),
		mapErr: mapErr,
		hooks:  hooks,
		live:   make(map[string]*task),
	}
}

// Submit accepts a job and returns its queued record immediately. When
// contentKey is non-empty and the shared result tier already holds a
// completed result under it, the returned record is already done (with
// Cached set) and fn never runs.
func (r *Runner) Submit(kind, contentKey string, fn Fn) (Record, error) {
	if r.draining.Load() {
		return Record{}, ErrDraining
	}
	now := time.Now().UTC()
	if contentKey != "" {
		if hit, ok, err := r.store.Get(contentKey); err == nil && ok && hit.State == StateDone {
			rec := Record{
				ID: NewID(), Kind: kind, State: StateDone, Cached: true,
				CreatedAt: now, StartedAt: &now, FinishedAt: &now,
				Progress: hit.Progress, ContentKey: contentKey, Result: hit.Result,
			}
			if err := r.store.Put(rec.ID, rec); err != nil {
				return Record{}, fmt.Errorf("jobs: persisting recalled result: %w", err)
			}
			r.hooks.submitted()
			r.hooks.resultHit()
			r.hooks.completed()
			return rec, nil
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	t := &task{
		rec: Record{
			ID: NewID(), Kind: kind, State: StateQueued,
			CreatedAt: now, ContentKey: contentKey,
		},
		updated:  make(chan struct{}),
		cancelFn: cancel,
	}
	r.mu.Lock()
	r.live[t.rec.ID] = t
	r.mu.Unlock()
	r.hooks.submitted()
	r.hooks.queued(+1)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer cancel()
		r.run(ctx, t, fn)
	}()
	rec, _, _ := t.snapshot()
	return rec, nil
}

// run executes one job: wait for a slot, flip to running, call fn, and
// settle the terminal state.
func (r *Runner) run(ctx context.Context, t *task, fn Fn) {
	select {
	case r.slots <- struct{}{}:
	case <-ctx.Done():
		// Canceled while still queued: never ran.
		r.hooks.queued(-1)
		r.settle(t, StateCanceled, nil, nil)
		return
	}
	defer func() { <-r.slots }()

	started := time.Now().UTC()
	t.bump(func(rec *Record) {
		rec.State = StateRunning
		rec.StartedAt = &started
	})
	r.hooks.queued(-1)
	r.hooks.running(+1)
	defer r.hooks.running(-1)

	result, err := fn(ctx, &Reporter{t: t})
	t.mu.Lock()
	userCancel := t.userCancel
	t.mu.Unlock()
	switch {
	case err == nil:
		r.settle(t, StateDone, result, nil)
	default:
		f := r.mapErr(err)
		if userCancel || f.Code == "canceled" {
			r.settle(t, StateCanceled, nil, nil)
		} else {
			r.settle(t, StateFailed, nil, &f)
		}
	}
}

// settle moves the task to its terminal state, persists the record, and
// publishes content-keyed results to the shared tier. The task leaves
// the live map only after a successful persist, so a failing store
// degrades to in-memory-only visibility instead of losing the job.
func (r *Runner) settle(t *task, state State, result []byte, failure *Failure) {
	finished := time.Now().UTC()
	t.bump(func(rec *Record) {
		rec.State = state
		rec.FinishedAt = &finished
		rec.Result = result
		rec.Error = failure
	})
	switch state {
	case StateDone:
		r.hooks.completed()
	case StateFailed:
		r.hooks.failed()
	case StateCanceled:
		r.hooks.canceled()
	}
	rec, _, _ := t.snapshot()
	if err := r.store.Put(rec.ID, rec); err != nil {
		return // keep the task live; Get still serves it from memory
	}
	if state == StateDone && rec.ContentKey != "" {
		// Best-effort publication to the shared result tier.
		_ = r.store.Put(rec.ContentKey, rec)
	}
	r.mu.Lock()
	delete(r.live, rec.ID)
	r.mu.Unlock()
}

// Get returns the job's current record: the live snapshot while it is
// queued or running, the persisted record afterwards.
func (r *Runner) Get(id string) (Record, bool, error) {
	r.mu.Lock()
	t := r.live[id]
	r.mu.Unlock()
	if t != nil {
		rec, _, _ := t.snapshot()
		return rec, true, nil
	}
	return r.store.Get(id)
}

// Cancel requests cancellation of a live job through its context and
// returns the job's current record. Canceling a job that already
// reached a terminal state is a no-op returning that state.
func (r *Runner) Cancel(id string) (Record, bool, error) {
	r.mu.Lock()
	t := r.live[id]
	r.mu.Unlock()
	if t == nil {
		return r.store.Get(id)
	}
	t.mu.Lock()
	t.userCancel = true
	t.mu.Unlock()
	t.cancelFn()
	rec, _, _ := t.snapshot()
	return rec, true, nil
}

// Watch streams the job's record versions to fn, starting with the
// current one, until the job reaches a terminal state (fn sees it as
// the final call, then Watch returns nil), ctx is done (ctx.Err()), or
// fn returns an error. Rapid successive updates may be coalesced: fn
// always sees the newest record, not necessarily every intermediate
// one, and versions are strictly ordered.
func (r *Runner) Watch(ctx context.Context, id string, fn func(Record) error) (found bool, err error) {
	r.mu.Lock()
	t := r.live[id]
	r.mu.Unlock()
	if t == nil {
		rec, ok, err := r.store.Get(id)
		if err != nil || !ok {
			return ok, err
		}
		return true, fn(rec)
	}
	last := int64(-1)
	for {
		rec, seq, updated := t.snapshot()
		if seq > last {
			last = seq
			if err := fn(rec); err != nil {
				return true, err
			}
			if rec.State.Terminal() {
				return true, nil
			}
			continue
		}
		select {
		case <-updated:
		case <-ctx.Done():
			return true, ctx.Err()
		}
	}
}

// Drain stops accepting submissions and waits until every accepted job
// has reached a terminal state, or ctx expires (then ctx.Err()).
// Running jobs are not canceled — callers wanting a hard stop Cancel
// them first.
func (r *Runner) Drain(ctx context.Context) error {
	r.draining.Store(true)
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Reporter feeds a running job's progress. All methods are safe for
// concurrent use from the sweep's worker goroutines.
type Reporter struct {
	t *task
}

// SetTotals records the sweep plan's totals (configuration points and
// simulation pass units) so clients can render completion ratios.
func (p *Reporter) SetTotals(points, passUnits int64) {
	p.t.bump(func(rec *Record) {
		rec.Progress.Points = points
		rec.Progress.PassUnits = passUnits
	})
}

// Add advances the progress counters by the given deltas and wakes
// watchers.
func (p *Reporter) Add(records, chunks, points, passUnits int64) {
	p.t.bump(func(rec *Record) {
		rec.Progress.Records += records
		rec.Progress.Chunks += chunks
		rec.Progress.PointsDone += points
		rec.Progress.PassUnitsDone += passUnits
	})
}

// AddChild records a child job id on the running job's record, so the
// parent-child link survives into the persisted record and store cleanup
// can cascade.
func (p *Reporter) AddChild(id string) {
	p.t.bump(func(rec *Record) {
		rec.Children = append(rec.Children, id)
	})
}
