package jobs

import (
	"container/list"
	"sync"
	"time"
)

// Store persists job records keyed by id (and, for the shared result
// tier, by content key — a content key is just another key). Records
// are stored by value: implementations own their copy, and Get returns
// a copy the caller may mutate freely. Implementations must be safe for
// concurrent use.
type Store interface {
	// Put inserts or replaces the record under key.
	Put(key string, rec Record) error
	// Get returns the record stored under key, if any.
	Get(key string) (Record, bool, error)
	// Delete removes the record under key (no-op when absent).
	Delete(key string) error
}

// MemStore is the in-process Store: an LRU-ordered map with a capacity
// bound and a TTL. Expired entries are dropped lazily on Get and
// eagerly swept on Put, so a quiet store still releases memory as it is
// written to.
type MemStore struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	now   func() time.Time // injectable clock for the TTL tests
	ll    *list.List       // front = most recently used
	items map[string]*list.Element
}

type memEntry struct {
	key     string
	rec     Record
	savedAt time.Time
}

// NewMemStore builds an in-memory store holding at most capacity
// records (≤ 0 means 256) for at most ttl (≤ 0 means no expiry).
func NewMemStore(capacity int, ttl time.Duration) *MemStore {
	if capacity <= 0 {
		capacity = 256
	}
	return &MemStore{
		cap:   capacity,
		ttl:   ttl,
		now:   time.Now,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// expired reports whether the entry's TTL has lapsed.
func (s *MemStore) expired(e *memEntry) bool {
	return s.ttl > 0 && s.now().Sub(e.savedAt) > s.ttl
}

// Put implements Store, evicting expired entries and then the least
// recently used ones until the store fits its capacity.
func (s *MemStore) Put(key string, rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*memEntry)
		e.rec = rec.Clone()
		e.savedAt = s.now()
		s.ll.MoveToFront(el)
		return nil
	}
	s.items[key] = s.ll.PushFront(&memEntry{key: key, rec: rec.Clone(), savedAt: s.now()})
	// Sweep from the LRU end: expired entries first, then plain LRU
	// eviction while over capacity.
	for el := s.ll.Back(); el != nil; {
		prev := el.Prev()
		if e := el.Value.(*memEntry); s.expired(e) {
			s.ll.Remove(el)
			delete(s.items, e.key)
		}
		el = prev
	}
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*memEntry).key)
	}
	return nil
}

// Get implements Store; an expired entry reads as absent and is dropped.
func (s *MemStore) Get(key string) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return Record{}, false, nil
	}
	e := el.Value.(*memEntry)
	if s.expired(e) {
		s.ll.Remove(el)
		delete(s.items, key)
		return Record{}, false, nil
	}
	s.ll.MoveToFront(el)
	return e.rec.Clone(), true, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.Remove(el)
		delete(s.items, key)
	}
	return nil
}

// Len reports the number of live (unexpired) records.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for el := s.ll.Front(); el != nil; el = el.Next() {
		if !s.expired(el.Value.(*memEntry)) {
			n++
		}
	}
	return n
}
