package icache

import (
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/kernels"
	"memexplore/internal/trace"
)

func TestCodeGenValidate(t *testing.T) {
	if err := DefaultCodeGen().Validate(); err != nil {
		t.Fatalf("default code model invalid: %v", err)
	}
	bad := []func(*CodeGen){
		func(g *CodeGen) { g.InstrBytes = 0 },
		func(g *CodeGen) { g.BodyInstrsPerRef = 0 },
		func(g *CodeGen) { g.LoopOverhead = 0 },
		func(g *CodeGen) { g.BodyOverhead = -1 },
	}
	for i, mutate := range bad {
		g := DefaultCodeGen()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
}

func TestCodeBytes(t *testing.T) {
	g := DefaultCodeGen()
	n := kernels.Compress() // 2 loops, 5 body refs
	got, err := CodeBytes(n, g)
	if err != nil {
		t.Fatal(err)
	}
	want := (2*3 + 5*3 + 4) * 4 // headers + body, 4 bytes each
	if got != want {
		t.Errorf("code bytes = %d, want %d", got, want)
	}
	if _, err := CodeBytes(n, CodeGen{}); err == nil {
		t.Error("zero code model should fail")
	}
}

func TestFetchTraceShape(t *testing.T) {
	g := DefaultCodeGen()
	n := kernels.Compress()
	tr, err := FetchTrace(n, g)
	if err != nil {
		t.Fatal(err)
	}
	// Every reference is a fetch inside the code segment.
	for i := 0; i < tr.Len(); i++ {
		r := tr.At(i)
		if r.Kind != trace.Fetch {
			t.Fatalf("ref %d kind = %v", i, r.Kind)
		}
		if r.Addr < g.BaseAddr {
			t.Fatalf("ref %d addr %#x below code base", i, r.Addr)
		}
	}
	// Expected volume: outer loop 31 iterations × header, inner 961 ×
	// header, body 961 × (5·3+4).
	want := 31*g.LoopOverhead + 961*g.LoopOverhead + 961*(5*g.BodyInstrsPerRef+g.BodyOverhead)
	if tr.Len() != want {
		t.Errorf("fetch count = %d, want %d", tr.Len(), want)
	}
}

func TestLoopCodeIsCacheResident(t *testing.T) {
	// The whole point of small loop kernels: once the loop body fits, the
	// I-cache miss rate collapses to compulsory only.
	g := DefaultCodeGen()
	n := kernels.Compress()
	tr, err := FetchTrace(n, g)
	if err != nil {
		t.Fatal(err)
	}
	code, err := CodeBytes(n, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cachesim.DefaultConfig(256, 16, 1) // 256 ≥ code size
	if code > 256 {
		t.Fatalf("test assumption broken: code %d bytes", code)
	}
	st, err := cachesim.RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != st.CompulsoryMisses {
		t.Errorf("resident code should only miss cold: %+v", st)
	}
	if st.MissRate() > 0.001 {
		t.Errorf("resident code miss rate %v too high", st.MissRate())
	}
}

func icacheOpts() core.Options {
	o := core.DefaultOptions()
	o.CacheSizes = []int{16, 32, 64, 128, 256}
	o.LineSizes = []int{4, 8, 16}
	o.Assocs = []int{1, 2}
	o.Tilings = []int{1}
	return o
}

func TestExplore(t *testing.T) {
	ms, err := Explore(kernels.Compress(), DefaultCodeGen(), icacheOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no metrics")
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if m.Tiling != 1 {
			t.Errorf("icache sweep must not tile: %+v", m)
		}
		if seen[m.Label()] {
			t.Errorf("duplicate point %s", m.Label())
		}
		seen[m.Label()] = true
		if m.Accesses == 0 || m.EnergyNJ <= 0 || m.Cycles <= 0 {
			t.Errorf("degenerate metrics %+v", m)
		}
	}
	// Min-energy I-cache for a tiny loop should be small (code ≈ 100 B).
	minE, ok := core.MinEnergy(ms)
	if !ok {
		t.Fatal("no optimum")
	}
	if minE.CacheSize > 128 {
		t.Errorf("min-energy I-cache suspiciously large: %s", minE.Label())
	}
	if minE.MissRate > 0.01 {
		t.Errorf("loop code should be nearly resident at the optimum: %v", minE.MissRate)
	}
}

func TestExploreJoint(t *testing.T) {
	instr, err := Explore(kernels.Compress(), DefaultCodeGen(), icacheOpts())
	if err != nil {
		t.Fatal(err)
	}
	data, err := core.Explore(kernels.Compress(), icacheOpts())
	if err != nil {
		t.Fatal(err)
	}

	unbounded, ok := ExploreJoint(instr, data, 0)
	if !ok {
		t.Fatal("unbounded joint exploration failed")
	}
	iBest, _ := core.MinEnergy(instr)
	dBest, _ := core.MinEnergy(data)
	if unbounded.TotalEnergy() != iBest.EnergyNJ+dBest.EnergyNJ {
		t.Errorf("unbounded joint energy %v, want %v",
			unbounded.TotalEnergy(), iBest.EnergyNJ+dBest.EnergyNJ)
	}

	// A tight budget must force a pair that fits and costs no less.
	budget := 64
	tight, ok := ExploreJoint(instr, data, budget)
	if !ok {
		t.Fatal("tight joint exploration failed")
	}
	if tight.TotalSize() > budget {
		t.Errorf("pair exceeds budget: %d > %d", tight.TotalSize(), budget)
	}
	if tight.TotalEnergy() < unbounded.TotalEnergy()-1e-9 {
		t.Error("bounded optimum cannot beat unbounded")
	}
	if tight.TotalCycles() <= 0 {
		t.Error("joint cycles degenerate")
	}

	// Impossible budget.
	if _, ok := ExploreJoint(instr, data, 8); ok {
		t.Error("budget below the smallest pair should fail")
	}
	if _, ok := ExploreJoint(nil, data, 0); ok {
		t.Error("empty instruction sweep should fail")
	}
}
