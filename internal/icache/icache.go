// Package icache implements the paper's stated extension (§1, §6): "The
// exploration procedure described here for data caches can be extended to
// instruction caches by merging the method of Kirovski et al [8] with
// ours."
//
// Kirovski's application-driven synthesis walks the program's basic
// blocks; here a loop nest is lowered to a small static code layout — a
// header block per loop level (test/increment/branch) and one body block —
// and executing the nest yields the instruction-fetch trace. The same
// simulator, cycle model and energy model then score candidate
// instruction caches, and ExploreJoint merges the instruction- and
// data-cache sweeps under a shared on-chip area budget (the paper's outer
// "for on-chip memory size M" loop applied to both caches at once).
package icache

import (
	"fmt"
	"sort"

	"memexplore/internal/bus"
	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/cycles"
	"memexplore/internal/energy"
	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

// CodeGen fixes the code-layout assumptions used to lower a loop nest to
// an instruction stream. The zero value is not useful; start from
// DefaultCodeGen.
type CodeGen struct {
	// InstrBytes is the instruction width (4 for a 32-bit embedded core).
	InstrBytes int
	// BaseAddr is the code segment base; it only needs to be disjoint
	// from the data segment, which starts at 0.
	BaseAddr uint64
	// BodyInstrsPerRef is how many instructions each memory reference of
	// the body costs (address arithmetic + the access itself).
	BodyInstrsPerRef int
	// BodyOverhead is the body's non-memory instruction count (the
	// arithmetic of the kernel statement).
	BodyOverhead int
	// LoopOverhead is the per-iteration loop-control instruction count
	// (compare, increment, branch).
	LoopOverhead int
}

// DefaultCodeGen returns a plausible 32-bit embedded code model.
func DefaultCodeGen() CodeGen {
	return CodeGen{
		InstrBytes:       4,
		BaseAddr:         0x100000,
		BodyInstrsPerRef: 3,
		BodyOverhead:     4,
		LoopOverhead:     3,
	}
}

// Validate rejects nonsensical code models.
func (g CodeGen) Validate() error {
	if g.InstrBytes <= 0 {
		return fmt.Errorf("icache: instruction width %d must be positive", g.InstrBytes)
	}
	if g.BodyInstrsPerRef < 1 || g.BodyOverhead < 0 || g.LoopOverhead < 1 {
		return fmt.Errorf("icache: invalid block sizes (%d/%d/%d)",
			g.BodyInstrsPerRef, g.BodyOverhead, g.LoopOverhead)
	}
	return nil
}

// block is one straight-line code region.
type block struct {
	addr   uint64
	instrs int
}

// layoutBlocks assigns sequential addresses: one header block per loop
// level (outermost first), then the body block.
func layoutBlocks(n *loopir.Nest, g CodeGen) (headers []block, body block) {
	addr := g.BaseAddr
	for range n.Loops {
		headers = append(headers, block{addr: addr, instrs: g.LoopOverhead})
		addr += uint64(g.LoopOverhead * g.InstrBytes)
	}
	body = block{addr: addr, instrs: g.BodyInstrsPerRef*len(n.Body) + g.BodyOverhead}
	return headers, body
}

// CodeBytes returns the static code footprint of the nest under the model.
func CodeBytes(n *loopir.Nest, g CodeGen) (int, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if err := n.Validate(); err != nil {
		return 0, err
	}
	headers, body := layoutBlocks(n, g)
	total := body.instrs
	for _, h := range headers {
		total += h.instrs
	}
	return total * g.InstrBytes, nil
}

// FetchTrace lowers the nest to its instruction-fetch trace: each
// iteration of loop level d fetches that level's header block, and each
// innermost iteration fetches the body block.
func FetchTrace(n *loopir.Nest, g CodeGen) (*trace.Trace, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	headers, body := layoutBlocks(n, g)
	tr := trace.New(1024)
	emit := func(b block) {
		for i := 0; i < b.instrs; i++ {
			tr.Append(trace.Ref{
				Addr: b.addr + uint64(i*g.InstrBytes),
				Kind: trace.Fetch,
				Size: uint8(g.InstrBytes),
			})
		}
	}
	env := make(map[string]int, len(n.Loops))
	var run func(depth int) error
	run = func(depth int) error {
		if depth == len(n.Loops) {
			emit(body)
			return nil
		}
		l := n.Loops[depth]
		lo, err := l.Lo.Eval(env)
		if err != nil {
			return err
		}
		hi, err := l.Hi.Eval(env)
		if err != nil {
			return err
		}
		for v := lo; v <= hi; v += l.Step {
			env[l.Var] = v
			emit(headers[depth])
			if err := run(depth + 1); err != nil {
				return err
			}
		}
		delete(env, l.Var)
		return nil
	}
	if err := run(0); err != nil {
		return nil, err
	}
	return tr, nil
}

// Explore sweeps instruction-cache configurations over the nest's fetch
// trace, reusing the §2.2 cycle and §2.3 energy models. Layout and tiling
// options are ignored (code placement is fixed); only the (T, L, S)
// dimensions of the options apply.
func Explore(n *loopir.Nest, g CodeGen, opts core.Options) ([]core.Metrics, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	tr, err := FetchTrace(n, g)
	if err != nil {
		return nil, err
	}
	addBS := bus.MeasureTrace(tr, bus.Gray).AddBS()
	var out []core.Metrics
	seen := map[core.ConfigPoint]bool{}
	for _, p := range opts.Space() {
		p.Tiling = 1
		if seen[p] {
			continue
		}
		seen[p] = true
		cfg := cachesim.DefaultConfig(p.CacheSize, p.LineSize, p.Assoc)
		st, err := cachesim.RunTraceFast(cfg, tr)
		if err != nil {
			return nil, err
		}
		cyc, err := cycles.Count(cycles.Params{Assoc: p.Assoc, LineBytes: p.LineSize, TilingSize: 1},
			st.Hits, st.Misses)
		if err != nil {
			return nil, err
		}
		en, err := energy.Total(opts.Energy, cfg, addBS, st.Hits, st.Misses)
		if err != nil {
			return nil, err
		}
		out = append(out, core.Metrics{
			CacheSize: p.CacheSize,
			LineSize:  p.LineSize,
			Assoc:     p.Assoc,
			Tiling:    1,
			Accesses:  st.Accesses,
			Hits:      st.Hits,
			Misses:    st.Misses,
			MissRate:  st.MissRate(),
			Cycles:    cyc,
			EnergyNJ:  en,
			AddBS:     addBS,
		})
	}
	return out, nil
}

// JointChoice is a combined instruction- and data-cache selection.
type JointChoice struct {
	Instr core.Metrics
	Data  core.Metrics
}

// TotalEnergy returns the summed energy of the pair.
func (j JointChoice) TotalEnergy() float64 { return j.Instr.EnergyNJ + j.Data.EnergyNJ }

// TotalCycles returns the summed cycles of the pair (fetch and data
// pipelines accounted independently, as in split-cache embedded cores).
func (j JointChoice) TotalCycles() float64 { return j.Instr.Cycles + j.Data.Cycles }

// TotalSize returns the combined on-chip capacity.
func (j JointChoice) TotalSize() int { return j.Instr.CacheSize + j.Data.CacheSize }

// ExploreJoint merges an instruction-cache sweep and a data-cache sweep
// under a shared on-chip budget M (the paper's outer loop): it returns
// the minimum-energy (instruction, data) pair with combined capacity
// ≤ budgetBytes. ok is false when no pair fits.
func ExploreJoint(instr, data []core.Metrics, budgetBytes int) (JointChoice, bool) {
	if len(instr) == 0 || len(data) == 0 {
		return JointChoice{}, false
	}
	// Keep only the energy-minimal entry per cache size on each side,
	// then scan size pairs.
	bestBySize := func(ms []core.Metrics) map[int]core.Metrics {
		best := map[int]core.Metrics{}
		for _, m := range ms {
			if b, ok := best[m.CacheSize]; !ok || m.EnergyNJ < b.EnergyNJ {
				best[m.CacheSize] = m
			}
		}
		return best
	}
	iBest := bestBySize(instr)
	dBest := bestBySize(data)
	var iSizes, dSizes []int
	for s := range iBest {
		iSizes = append(iSizes, s)
	}
	for s := range dBest {
		dSizes = append(dSizes, s)
	}
	sort.Ints(iSizes)
	sort.Ints(dSizes)
	var out JointChoice
	found := false
	for _, is := range iSizes {
		for _, ds := range dSizes {
			if budgetBytes > 0 && is+ds > budgetBytes {
				continue
			}
			c := JointChoice{Instr: iBest[is], Data: dBest[ds]}
			if !found || c.TotalEnergy() < out.TotalEnergy() {
				out = c
				found = true
			}
		}
	}
	return out, found
}
