// Package energy implements the paper's cache energy model (§2.3), a
// rectified version of Hicks/Walnock/Owens built on Su & Despain's
// hit-energy model:
//
//	Energy      = hits·Energy_hit + misses·Energy_miss
//	Energy_hit  = E_dec + E_cell
//	Energy_miss = E_dec + E_cell + E_io + E_main
//	E_dec  = α·Add_bs
//	E_cell = β·word_line_size·bit_line_size
//	E_io   = γ·(Data_bs·L + Add_bs)
//	E_main = γ·(Data_bs·L) + Em·L
//
// with α = 0.001, β = 2, γ = 20 for the paper's 0.8 µm CMOS process, Add_bs
// the Gray-coded address-bus switching per access (package bus), Data_bs an
// assumed data-bus activity factor, and Em the main-memory energy per
// access. The paper states the coefficients without units; here β and γ
// carry explicit pJ-scale factors (CellScale, IOScale, default 1/1000) so
// results come out in nanojoules with E_hit in the 0.1–10 nJ range and
// E_main = Em·L dominating misses — the regime all of the paper's tradeoff
// discussions assume. See DESIGN.md "Energy-model units".
package energy

import (
	"fmt"

	"memexplore/internal/cachesim"
)

// SRAM describes an off-chip main memory part by the only parameter the
// model needs — energy per access — plus the datasheet values the paper
// quotes for documentation.
type SRAM struct {
	// Name identifies the part.
	Name string `json:"name"`
	// Bits is the capacity in bits.
	Bits int64 `json:"bits,omitempty"`
	// AccessNS is the access time in nanoseconds.
	AccessNS float64 `json:"access_ns,omitempty"`
	// VoltageV is the supply voltage.
	VoltageV float64 `json:"voltage_v,omitempty"`
	// CurrentMA is the active current in milliamps.
	CurrentMA float64 `json:"current_ma,omitempty"`
	// EmNJ is the energy per memory access in nanojoules — the Em of the
	// model.
	EmNJ float64 `json:"em_nj"`
	// WordBytes is the access width: a cache line of L bytes costs
	// L/WordBytes memory accesses. The paper's formula Em·L corresponds to
	// a byte-wide (×8) part, WordBytes = 1.
	WordBytes int `json:"word_bytes"`
}

// CypressCY7C is the paper's reference part: a 2 Mbit SRAM, 4 ns access,
// 3.3 V, 375 mA, 4.95 nJ per access (§2.3).
func CypressCY7C() SRAM {
	return SRAM{
		Name: "Cypress CY7C (2 Mbit)", Bits: 2 << 20,
		AccessNS: 4, VoltageV: 3.3, CurrentMA: 375,
		EmNJ: 4.95, WordBytes: 1,
	}
}

// LowPower2Mbit is the low-energy end of the paper's §3 spectrum:
// Em = 2.31 nJ.
func LowPower2Mbit() SRAM {
	return SRAM{Name: "2 Mbit SRAM (low-power)", Bits: 2 << 20, EmNJ: 2.31, WordBytes: 1}
}

// Large16Mbit is the high-energy end of the paper's §3 spectrum:
// Em = 43.56 nJ.
func Large16Mbit() SRAM {
	return SRAM{Name: "16 Mbit SRAM", Bits: 16 << 20, EmNJ: 43.56, WordBytes: 1}
}

// Catalog returns the three parts the paper's experiments use.
func Catalog() []SRAM {
	return []SRAM{CypressCY7C(), LowPower2Mbit(), Large16Mbit()}
}

// Params holds the process and bus coefficients of the model. The zero
// value is not useful; start from DefaultParams.
type Params struct {
	// Alpha is the address-decoding-path coefficient α in nJ per
	// address-bus bit switch (0.001 for 0.8 µm CMOS).
	Alpha float64 `json:"alpha"`
	// Beta is the cell-array coefficient β (2 for 0.8 µm CMOS), applied as
	// Beta·CellScale nJ per cell on the activated word/bit lines.
	Beta float64 `json:"beta"`
	// Gamma is the I/O-pad coefficient γ (20 for 0.8 µm CMOS), applied as
	// Gamma·IOScale nJ per switched pad-line term.
	Gamma float64 `json:"gamma"`
	// CellScale converts β·cells to nJ. Default 1e-3 (β is pJ-scale).
	CellScale float64 `json:"cell_scale"`
	// IOScale converts γ·(…) to nJ. Default 1e-3 (γ is pJ-scale).
	IOScale float64 `json:"io_scale"`
	// DataActivity is Data_bs, the assumed data-bus switching factor per
	// transferred byte (0.5; the paper's exact value is truncated in the
	// available text).
	DataActivity float64 `json:"data_activity"`
	// Main is the off-chip memory part supplying Em.
	Main SRAM `json:"main"`

	// LeakNJPerCycleKB is an optional static-leakage term: nJ leaked per
	// processor cycle per KiB of cache capacity. The paper's 0.8 µm
	// process predates leakage concerns, so the default is 0; setting it
	// models deep-submicron what-if studies (the Ablations exhibit uses
	// it). Charged by the exploration core, which knows the cycle count.
	LeakNJPerCycleKB float64 `json:"leak_nj_per_cycle_kb,omitempty"`
	// CountWriteTraffic, when true, charges write-backs the same
	// I/O+main-memory energy as line fetches. The paper counts READ
	// energy only ("reads dominate processor cache accesses"), so the
	// default is false.
	CountWriteTraffic bool `json:"count_write_traffic,omitempty"`
}

// DefaultParams returns the paper's 0.8 µm coefficients with the given
// main-memory part. CellScale is calibrated to 1.5e-3 — the value at
// which the model reproduces the paper's §3 reference points (Compress
// minimum-energy configuration C16L4 for Em = 4.95 nJ, and the Figure 1
// trend reversal between Em = 43.56 nJ and Em = 2.31 nJ); see DESIGN.md
// "Energy-model units".
func DefaultParams(main SRAM) Params {
	return Params{
		Alpha:        0.001,
		Beta:         2,
		Gamma:        20,
		CellScale:    1.5e-3,
		IOScale:      1e-3,
		DataActivity: 0.5,
		Main:         main,
	}
}

// Validate rejects nonsensical parameters.
func (p Params) Validate() error {
	if p.Alpha < 0 || p.Beta < 0 || p.Gamma < 0 {
		return fmt.Errorf("energy: negative coefficient (α=%v β=%v γ=%v)", p.Alpha, p.Beta, p.Gamma)
	}
	if p.CellScale <= 0 || p.IOScale <= 0 {
		return fmt.Errorf("energy: scales must be positive (cell=%v io=%v)", p.CellScale, p.IOScale)
	}
	if p.DataActivity < 0 || p.DataActivity > 1 {
		return fmt.Errorf("energy: data activity %v outside [0,1]", p.DataActivity)
	}
	if p.Main.EmNJ <= 0 {
		return fmt.Errorf("energy: main memory %q has non-positive Em %v", p.Main.Name, p.Main.EmNJ)
	}
	if p.Main.WordBytes <= 0 {
		return fmt.Errorf("energy: main memory %q has non-positive word width %d", p.Main.Name, p.Main.WordBytes)
	}
	if p.LeakNJPerCycleKB < 0 {
		return fmt.Errorf("energy: negative leakage %v", p.LeakNJPerCycleKB)
	}
	return nil
}

// Geometry derives the cell-array dimensions of a cache configuration. The
// data array of a set-associative cache holds all ways of a set on one word
// line: word_line_size = 8·L·S cells, bit_line_size = number of sets.
// Their product is 8·T for any organization, so E_cell grows linearly with
// total cache size — the effect behind the paper's "bigger cache does not
// mean lower energy" observation.
type Geometry struct {
	WordLineCells int
	BitLineCells  int
}

// GeometryOf returns the cell-array geometry for a cache configuration.
func GeometryOf(cfg cachesim.Config) Geometry {
	return Geometry{
		WordLineCells: 8 * cfg.LineBytes * cfg.Assoc,
		BitLineCells:  cfg.NumSets(),
	}
}

// Breakdown is the per-access energy decomposition in nanojoules.
type Breakdown struct {
	EDec  float64 // address-decoding path (address bus)
	ECell float64 // cell array word/bit lines
	EIO   float64 // processor I/O pads, paid on misses
	EMain float64 // main-memory access, paid on misses
}

// Hit returns the energy of one cache hit.
func (b Breakdown) Hit() float64 { return b.EDec + b.ECell }

// Miss returns the energy of one cache miss.
func (b Breakdown) Miss() float64 { return b.EDec + b.ECell + b.EIO + b.EMain }

// PerAccess computes the hit/miss energy decomposition for a cache
// configuration, given the measured average address-bus switching addBS
// (bus.Activity.AddBS()).
func PerAccess(p Params, cfg cachesim.Config, addBS float64) (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	g := GeometryOf(cfg)
	l := float64(cfg.LineBytes)
	memAccessesPerLine := l / float64(p.Main.WordBytes)
	return Breakdown{
		EDec:  p.Alpha * addBS,
		ECell: p.Beta * float64(g.WordLineCells) * float64(g.BitLineCells) * p.CellScale,
		EIO:   p.Gamma * (p.DataActivity*l + addBS) * p.IOScale,
		EMain: p.Gamma*(p.DataActivity*l)*p.IOScale + p.Main.EmNJ*memAccessesPerLine,
	}, nil
}

// Total computes the total energy in nanojoules for the given hit and miss
// counts.
func Total(p Params, cfg cachesim.Config, addBS float64, hits, misses uint64) (float64, error) {
	b, err := PerAccess(p, cfg, addBS)
	if err != nil {
		return 0, err
	}
	return float64(hits)*b.Hit() + float64(misses)*b.Miss(), nil
}
