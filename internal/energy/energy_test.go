package energy

import (
	"math"
	"testing"
	"testing/quick"

	"memexplore/internal/cachesim"
)

func defParams() Params { return DefaultParams(CypressCY7C()) }

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 3 {
		t.Fatalf("catalog size %d", len(cat))
	}
	wantEm := []float64{4.95, 2.31, 43.56}
	for i, s := range cat {
		if s.EmNJ != wantEm[i] {
			t.Errorf("part %q Em = %v, want %v", s.Name, s.EmNJ, wantEm[i])
		}
		if s.WordBytes != 1 {
			t.Errorf("part %q word width = %d, want 1 (paper's Em·L form)", s.Name, s.WordBytes)
		}
	}
	cy := CypressCY7C()
	if cy.AccessNS != 4 || cy.VoltageV != 3.3 || cy.CurrentMA != 375 {
		t.Errorf("CY7C datasheet values wrong: %+v", cy)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := defParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Alpha = -1 },
		func(p *Params) { p.CellScale = 0 },
		func(p *Params) { p.IOScale = -1 },
		func(p *Params) { p.DataActivity = 1.5 },
		func(p *Params) { p.Main.EmNJ = 0 },
		func(p *Params) { p.Main.WordBytes = 0 },
	}
	for i, mutate := range bad {
		p := defParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate params", i)
		}
	}
}

func TestGeometryOf(t *testing.T) {
	cfg := cachesim.DefaultConfig(64, 8, 2)
	g := GeometryOf(cfg)
	if g.WordLineCells != 8*8*2 {
		t.Errorf("word line cells = %d, want 128", g.WordLineCells)
	}
	if g.BitLineCells != 4 {
		t.Errorf("bit line cells = %d, want 4", g.BitLineCells)
	}
	// Product is 8·T regardless of organization.
	for _, cfg := range []cachesim.Config{
		cachesim.DefaultConfig(64, 8, 1),
		cachesim.DefaultConfig(64, 8, 4),
		cachesim.DefaultConfig(64, 16, 2),
	} {
		g := GeometryOf(cfg)
		if got := g.WordLineCells * g.BitLineCells; got != 8*64 {
			t.Errorf("cells(%v) = %d, want 512", cfg, got)
		}
	}
}

func TestPerAccessComponents(t *testing.T) {
	p := defParams()
	cfg := cachesim.DefaultConfig(64, 8, 1)
	addBS := 2.0
	b, err := PerAccess(p, cfg, addBS)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.EDec, 0.001*2.0; got != want {
		t.Errorf("EDec = %v, want %v", got, want)
	}
	if got, want := b.ECell, p.Beta*float64(8*8*1)*float64(8)*p.CellScale; got != want {
		t.Errorf("ECell = %v, want %v", got, want)
	}
	if got, want := b.EIO, 20*(0.5*8+2)*1e-3; math.Abs(got-want) > 1e-12 {
		t.Errorf("EIO = %v, want %v", got, want)
	}
	if got, want := b.EMain, 20*(0.5*8)*1e-3+4.95*8; math.Abs(got-want) > 1e-12 {
		t.Errorf("EMain = %v, want %v", got, want)
	}
	if b.Hit() != b.EDec+b.ECell {
		t.Error("Hit() decomposition wrong")
	}
	if b.Miss() != b.EDec+b.ECell+b.EIO+b.EMain {
		t.Error("Miss() decomposition wrong")
	}
	if b.Miss() <= b.Hit() {
		t.Error("miss energy must exceed hit energy")
	}
}

func TestPerAccessRejectsBadInput(t *testing.T) {
	if _, err := PerAccess(Params{}, cachesim.DefaultConfig(64, 8, 1), 1); err == nil {
		t.Error("zero params should be rejected")
	}
	if _, err := PerAccess(defParams(), cachesim.DefaultConfig(60, 8, 1), 1); err == nil {
		t.Error("invalid cache config should be rejected")
	}
}

func TestTotal(t *testing.T) {
	p := defParams()
	cfg := cachesim.DefaultConfig(64, 8, 1)
	b, err := PerAccess(p, cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Total(p, cfg, 1.0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 100*b.Hit() + 10*b.Miss()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if _, err := Total(Params{}, cfg, 1, 1, 1); err == nil {
		t.Error("Total should propagate validation errors")
	}
}

// Paper §3 headline: the energy ordering of configurations can invert with
// Em. Verify the mechanism — hit energy grows with cache size while miss
// energy grows with Em·L — on the paper's (C,L) diagonal.
func TestEnergyTrendsWithEm(t *testing.T) {
	small := cachesim.DefaultConfig(16, 4, 1)
	large := cachesim.DefaultConfig(512, 64, 1)
	addBS := 2.0

	bigEm := DefaultParams(Large16Mbit())
	smallEm := DefaultParams(LowPower2Mbit())

	bSmallCfgBigEm, _ := PerAccess(bigEm, small, addBS)
	bLargeCfgBigEm, _ := PerAccess(bigEm, large, addBS)
	bSmallCfgSmallEm, _ := PerAccess(smallEm, small, addBS)
	bLargeCfgSmallEm, _ := PerAccess(smallEm, large, addBS)

	// Hit energy depends only on geometry, not on Em.
	if bSmallCfgBigEm.Hit() != bSmallCfgSmallEm.Hit() {
		t.Error("hit energy should not depend on Em")
	}
	if bLargeCfgBigEm.Hit() <= bSmallCfgBigEm.Hit() {
		t.Error("hit energy should grow with cache size")
	}
	// Miss energy grows with both L and Em.
	if bLargeCfgBigEm.Miss() <= bLargeCfgSmallEm.Miss() {
		t.Error("miss energy should grow with Em")
	}
	if bLargeCfgSmallEm.Miss() <= bSmallCfgSmallEm.Miss() {
		t.Error("miss energy should grow with line size")
	}
}

// Property: energy is non-negative and monotone in hits and misses for any
// valid configuration and switching level.
func TestQuickTotalMonotone(t *testing.T) {
	p := defParams()
	cfg := cachesim.DefaultConfig(128, 16, 2)
	f := func(hits, misses uint16, addBSRaw uint8) bool {
		addBS := float64(addBSRaw % 33)
		e0, err0 := Total(p, cfg, addBS, uint64(hits), uint64(misses))
		e1, err1 := Total(p, cfg, addBS, uint64(hits)+1, uint64(misses))
		e2, err2 := Total(p, cfg, addBS, uint64(hits), uint64(misses)+1)
		if err0 != nil || err1 != nil || err2 != nil {
			return false
		}
		return e0 >= 0 && e1 > e0 && e2 > e0 && e2 > e1-1e12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
