package core

// This file implements the two stream-thinning stages of the external-
// trace sweep, both applied on the coordinator before the chunk fan-out:
//
//   - SHARDS-style spatial sampling (Options.SampleRate): a seeded
//     hash threshold over block addresses keeps a deterministic ~R
//     fraction of the address space. Because the filter is spatial —
//     every reference to a kept block is kept, every reference to a
//     dropped block is dropped — each simulated cache sees an internally
//     consistent reference stream, and the resulting hit/miss counts are
//     unbiased estimates of the full-trace counts after rescaling.
//   - dominant-block prefiltering (Options.DominantEps): a cheap first
//     pass histograms block transitions (a proxy for misses) per granule
//     and marks the granules that carry ≥ (1−ε) of them as hot; the
//     sweep then skips references to cold granules, counting them as
//     hits of their kind — by construction they contribute at most an ε
//     share of the transitions the misses come from.
//
// Both filters hash/bucket at one shared granule — the larger of the
// sweep's maximum line size and the ingest statistics granule — so every
// cache configuration of the sweep sees the same spatial subset and
// results stay deterministic for any worker count.

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"memexplore/internal/cachesim"
	"memexplore/internal/extrace"
	"memexplore/internal/trace"
)

// sampleConfidenceZ is the normal quantile behind the reported miss-rate
// confidence interval (95% two-sided).
const sampleConfidenceZ = 1.96

// maxDominantGranules bounds the prepass histogram; a trace whose
// footprint exceeds it (at the filter granule) disables prefiltering
// rather than growing without bound.
const maxDominantGranules = 1 << 20

// mix64 is the splitmix64 finalizer — a cheap, well-distributed 64-bit
// hash for the sampling threshold test. It is the one shared definition
// (extrace.Mix64): transcode-time sampling stores artifacts thinned by
// exactly this hash, so a sweep over a stored sample and a live sample
// at the same rate/seed/granule keep the same granules.
func mix64(x uint64) uint64 { return extrace.Mix64(x) }

// traceFilter thins the reference stream on the coordinator goroutine.
// It is not safe for concurrent use; the engines call apply strictly
// between chunk barriers.
type traceFilter struct {
	gshift    uint   // log2 of the filter granule in bytes
	sampling  bool   // hash-threshold sampling enabled
	threshold uint64 // keep a granule when mix64(g^seed) < threshold
	seed      uint64
	hot       map[uint64]struct{} // non-nil: granules the sweep simulates

	simulated int64    // records that survived both filters
	cold      [3]int64 // sampled records skipped as cold, by trace.Kind
}

// filterGranule returns the shared spatial granule for a sweep: the
// largest candidate line size, floored at the ingest statistics granule.
func filterGranule(lineSizes []int) int {
	g := extrace.LineGranule
	for _, l := range lineSizes {
		if l > g {
			g = l
		}
	}
	return g
}

// newTraceFilter builds the filter for normalized, validated options
// with SampleRate > 0 or DominantEps > 0. The dominant-hot set, when
// requested, is attached separately after the prepass.
func newTraceFilter(opts Options) *traceFilter {
	f := &traceFilter{gshift: uint(bits.TrailingZeros(uint(filterGranule(opts.LineSizes))))}
	if opts.SampleRate > 0 {
		f.sampling = true
		f.seed = opts.SampleSeed
		// threshold/2^64 ≈ SampleRate; a rate so close to 1 that the
		// product saturates keeps everything.
		f.threshold = extrace.SampleThreshold(opts.SampleRate)
	}
	return f
}

// active reports whether the filter actually thins the stream (it can
// be a bare rescaling shell when sweeping a transcode-sampled artifact
// with no live filters).
func (f *traceFilter) active() bool {
	return f.sampling || f.hot != nil
}

// chunkVerdict is the extrace.ChunkPolicy of this filter: from an index
// entry's exact granule summary alone, decide whether any record of the
// chunk can survive filtering. The summary granule (extrace.IndexGranule)
// is at most the filter granule, so each summary granule right-shifts
// onto the granule the per-record path hashes — the verdict reproduces
// the decode-then-filter outcome exactly, never approximately:
//
//   - every granule fails the sampling hash → no record survives →
//     skip, dropping the records (ChunkSkipDrop);
//   - every granule passes the hash but none is hot → every record
//     would be counted a cold hit → skip, counting the entry's
//     kind totals as cold (ChunkSkipCold);
//   - anything mixed (or an overflowed summary) → decode and filter
//     per record.
//
// It runs on the decode goroutine and reads only filter state that is
// immutable once the stream starts.
func (f *traceFilter) chunkVerdict(e *extrace.ChunkIndexEntry) extrace.ChunkVerdict {
	gs := e.Granules
	if len(gs) == 0 {
		return extrace.ChunkDecode
	}
	shift := f.gshift - uint(bits.TrailingZeros(uint(extrace.IndexGranule)))
	anyKept, anyCold, anyDropped := false, false, false
	prev := ^uint64(0)
	for _, g64 := range gs {
		sg := g64 >> shift
		if sg == prev {
			continue // gs is ascending, so equal sweep granules are adjacent
		}
		prev = sg
		if f.sampling && mix64(sg^f.seed) >= f.threshold {
			anyDropped = true
			continue
		}
		if f.hot != nil {
			if _, ok := f.hot[sg]; !ok {
				anyCold = true
				continue
			}
		}
		anyKept = true
	}
	switch {
	case anyKept:
		return extrace.ChunkDecode
	case anyCold && anyDropped:
		// Per-record outcomes differ (some dropped, some cold hits): the
		// chunk totals cannot stand in for them.
		return extrace.ChunkDecode
	case anyCold:
		return extrace.ChunkSkipCold
	case anyDropped:
		return extrace.ChunkSkipDrop
	default:
		return extrace.ChunkDecode
	}
}

// foldSkips merges the reader's skipped-chunk accounting into the
// filter after the stream ends: cold-skipped records join the cold
// totals exactly as the per-record path would have counted them.
func (f *traceFilter) foldSkips(sum extrace.SkipSummary) {
	for k := range sum.Cold {
		f.cold[k] += sum.Cold[k]
	}
}

// apply compacts block in place to the records the sweep should
// simulate, accounting the rest. The backing array is the coordinator's
// chunk slab, exclusively owned until the chunk barrier completes.
func (f *traceFilter) apply(block []trace.Ref) []trace.Ref {
	w := 0
	for _, r := range block {
		g := r.Addr >> f.gshift
		if f.sampling && mix64(g^f.seed) >= f.threshold {
			continue // outside the spatial sample: dropped entirely
		}
		if f.hot != nil {
			if _, ok := f.hot[g]; !ok {
				f.cold[r.Kind]++ // cold granule: assumed hit
				continue
			}
		}
		block[w] = r
		w++
	}
	f.simulated += int64(w)
	return block[:w]
}

// coldSkipped returns the total records skipped as cold.
func (f *traceFilter) coldSkipped() int64 {
	return f.cold[0] + f.cold[1] + f.cold[2]
}

// samplePassed returns the records that passed the hash filter (whether
// simulated or skipped as cold).
func (f *traceFilter) samplePassed() int64 {
	return f.simulated + f.coldSkipped()
}

// rescale folds the cold-skipped records into sim as hits of their kind
// and scales the result so its access count estimates the full trace of
// total records. The second result is the half-width of the 95%
// binomial confidence interval on the final miss rate due to sampling
// (zero when sampling is off — the dominant filter's bias is bounded by
// ε, not by sampling noise).
func (f *traceFilter) rescale(sim cachesim.Stats, total int64, rate float64) (cachesim.Stats, float64) {
	cold := f.coldSkipped()
	var ci float64
	if rate > 0 && sim.Accesses > 0 {
		p := float64(sim.Misses) / float64(sim.Accesses)
		ci = sampleConfidenceZ * math.Sqrt(p*(1-p)/float64(sim.Accesses))
		// Cold-skipped records enter the final rate as assumed hits,
		// diluting the sampled estimate and its interval alike.
		ci *= float64(sim.Accesses) / float64(sim.Accesses+uint64(cold))
	}
	sim.Accesses += uint64(cold)
	sim.Hits += uint64(cold)
	sim.Reads += uint64(f.cold[trace.Read])
	sim.ReadHits += uint64(f.cold[trace.Read])
	sim.Writes += uint64(f.cold[trace.Write])
	sim.WriteHits += uint64(f.cold[trace.Write])
	sim.Fetches += uint64(f.cold[trace.Fetch])
	if passed := f.samplePassed(); passed > 0 && passed != total {
		sim = sim.Scaled(float64(total) / float64(passed))
	}
	return sim, ci
}

// dominantPrepass streams the whole trace once, histograms granule
// transitions (consecutive references touching different granules — the
// stream's upper bound on cold-start and reuse misses), and returns the
// smallest hot set of granules covering ≥ (1−ε) of them. r must be
// seekable: the prepass rewinds it to its starting position so the sweep
// pass reads the same stream. A footprint beyond maxDominantGranules
// returns a nil hot set (prefiltering disabled) rather than unbounded
// memory.
func dominantPrepass(ctx context.Context, r io.Reader, ing extrace.Options, gshift uint, eps float64) (map[uint64]struct{}, error) {
	seeker, ok := r.(io.Seeker)
	if !ok {
		return nil, invalidOptions("dominant_eps", "dominant-block prefiltering needs a seekable trace source (it reads the stream twice)")
	}
	start, err := seeker.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, fmt.Errorf("core: locating trace start for the dominant-block prepass: %w", err)
	}

	counts := make(map[uint64]int64)
	var total int64
	var prev uint64
	havePrev := false
	rd := extrace.NewReader(r, ing)
	chunk := make([]trace.Ref, traceChunkRefs)
	for {
		if err := ctx.Err(); err != nil {
			rd.Close()
			return nil, canceled(err)
		}
		n, rerr := rd.Read(chunk)
		for _, ref := range chunk[:n] {
			g := ref.Addr >> gshift
			if havePrev && g == prev {
				continue
			}
			if _, ok := counts[g]; !ok && len(counts) >= maxDominantGranules {
				counts = nil // histogram overflow: disable the filter
				break
			}
			counts[g]++
			total++
			prev, havePrev = g, true
		}
		if counts == nil || rerr == io.EOF {
			break
		}
		if rerr != nil {
			rd.Close()
			return nil, fmt.Errorf("core: dominant-block prepass: %w", rerr)
		}
	}
	rd.Close()
	if _, err := seeker.Seek(start, io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: rewinding trace after the dominant-block prepass: %w", err)
	}
	if counts == nil || total == 0 {
		return nil, nil
	}
	return hotSetFrom(counts, total, eps), nil
}

// hotSetFrom selects the smallest hot set covering ≥ (1−ε) of the
// histogram weight: granules by descending count, ties by ascending
// granule, for determinism. Shared by the decode prepass (transition
// counts) and the index prepass (chunk-presence counts).
func hotSetFrom(counts map[uint64]int64, total int64, eps float64) map[uint64]struct{} {
	type gc struct {
		g uint64
		c int64
	}
	all := make([]gc, 0, len(counts))
	for g, c := range counts {
		all = append(all, gc{g, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].g < all[j].g
	})
	need := int64(math.Ceil((1 - eps) * float64(total)))
	hot := make(map[uint64]struct{})
	var covered int64
	for _, e := range all {
		if covered >= need {
			break
		}
		hot[e.g] = struct{}{}
		covered += e.c
	}
	return hot
}

// dominantFromIndex builds the dominant hot set from an MXTI01 footer's
// per-chunk granule summaries alone — no decode pass, so `-dominant-eps`
// on an indexed artifact costs one footer read. The criterion is
// EXPLICITLY COARSER than dominantPrepass's: the footer records which
// granules each chunk touches (presence), not the transitions between
// them, so a granule's score here is the number of chunks it appears in
// rather than its share of the stream's block transitions. A granule hot
// by transitions is touched by the chunks carrying those transitions, so
// the two criteria agree on strongly dominant working sets, but the ε
// bound holds against chunk-presence mass, not transition mass — results
// under this prepass are equal to the exact sweep only within the usual
// ε tolerance, not bit-identical to the decode-prepass filter (pinned by
// TestDominantIndexPrepass). ok is false when the index cannot support
// the computation — no index, or a chunk whose summary overflowed — and
// the caller must fall back to the decode prepass. A hot==nil, ok==true
// result means the footprint overflowed maxDominantGranules and the
// filter is disabled, exactly as the decode prepass disables it.
func dominantFromIndex(ix *extrace.TraceIndex, gshift uint, eps float64) (hot map[uint64]struct{}, ok bool) {
	if ix == nil || len(ix.Chunks) == 0 {
		return nil, false
	}
	for i := range ix.Chunks {
		if len(ix.Chunks[i].Granules) == 0 {
			return nil, false // overflowed summary: the chunk's granules are unknown
		}
	}
	shift := gshift - uint(bits.TrailingZeros(uint(extrace.IndexGranule)))
	counts := make(map[uint64]int64)
	var total int64
	for i := range ix.Chunks {
		prev := ^uint64(0)
		for _, g64 := range ix.Chunks[i].Granules {
			sg := g64 >> shift
			if sg == prev {
				continue // ascending list: equal sweep granules are adjacent
			}
			prev = sg
			if _, ok := counts[sg]; !ok && len(counts) >= maxDominantGranules {
				return nil, true // footprint overflow: disable the filter
			}
			counts[sg]++
			total++
		}
	}
	if total == 0 {
		return nil, true
	}
	return hotSetFrom(counts, total, eps), true
}
