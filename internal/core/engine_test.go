package core

import (
	"testing"

	"memexplore/internal/cachesim"
)

// TestParseEngine pins the flag spellings and String round trip.
func TestParseEngine(t *testing.T) {
	for _, e := range []Engine{EngineAuto, EnginePerPoint, EngineBatched, EngineInclusion} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if e, err := ParseEngine(""); err != nil || e != EngineAuto {
		t.Errorf("ParseEngine(\"\") = %v, %v", e, err)
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("ParseEngine accepted an unknown engine")
	}
}

// TestPlanMatchesSweepPartition checks that Options.Plan predicts exactly
// the partition the engines build: the same workload grouping, and per
// workload the same inclusion-group/fallback split cachesim reports.
func TestPlanMatchesSweepPartition(t *testing.T) {
	for _, optimized := range []bool{false, true} {
		for _, repl := range []cachesim.Replacement{cachesim.LRU, cachesim.FIFO} {
			for _, eng := range []Engine{EngineAuto, EngineBatched} {
				opts := DefaultOptions()
				opts.OptimizeLayout = optimized
				opts.Replacement = repl
				opts.Engine = eng
				points := opts.Space()
				groups := groupWorkloads(opts, points)
				var wantGroups, wantIncl, wantFallback int
				for _, g := range groups {
					cfgs := make([]cachesim.Config, len(g.indices))
					for i, pi := range g.indices {
						p := points[pi]
						cfgs[i] = opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc)
					}
					s, err := newGroupSweep(opts, cfgs)
					if err != nil {
						t.Fatal(err)
					}
					wantGroups += s.InclusionGroups()
					wantFallback += s.FallbackConfigs()
					wantIncl += len(cfgs) - s.FallbackConfigs()
					s.Release()
				}
				plan := opts.Plan()
				if plan.Points != len(points) || plan.Workloads != len(groups) ||
					plan.InclusionGroups != wantGroups || plan.InclusionConfigs != wantIncl ||
					plan.FallbackConfigs != wantFallback {
					t.Errorf("opt=%v repl=%v eng=%v: Plan = %+v, engines built %d groups / %d inclusion / %d fallback over %d workloads",
						optimized, repl, eng, plan, wantGroups, wantIncl, wantFallback, len(groups))
				}
				if plan.PassUnits() != wantGroups+wantFallback {
					t.Errorf("PassUnits = %d, want %d", plan.PassUnits(), wantGroups+wantFallback)
				}
			}
		}
	}
}

// TestPlanPerPoint pins the degenerate plans: classified and forced
// per-point sweeps pay one trace pass per point and share nothing.
func TestPlanPerPoint(t *testing.T) {
	opts := DefaultOptions()
	opts.Classify = true
	plan := opts.Plan()
	n := len(opts.Space())
	if plan.Workloads != n || plan.FallbackConfigs != n || plan.InclusionGroups != 0 {
		t.Errorf("classified plan = %+v, want %d workloads and fallbacks", plan, n)
	}
	if plan.ConfigsPerPass() != 1 {
		t.Errorf("classified ConfigsPerPass = %g, want 1", plan.ConfigsPerPass())
	}
	opts.Classify = false
	opts.Engine = EnginePerPoint
	if got := opts.Plan(); got.Workloads != n || got.FallbackConfigs != n {
		t.Errorf("per-point plan = %+v, want %d workloads and fallbacks", got, n)
	}
}

// TestPlanInclusionAmplification documents the headline: the default
// sequential-layout sweep collapses most points into inclusion groups,
// so each pass unit serves well over one configuration.
func TestPlanInclusionAmplification(t *testing.T) {
	opts := DefaultOptions()
	opts.OptimizeLayout = false
	plan := opts.Plan()
	if plan.InclusionGroups == 0 {
		t.Fatal("default sequential sweep formed no inclusion groups")
	}
	if cpp := plan.ConfigsPerPass(); cpp < 1.5 {
		t.Errorf("ConfigsPerPass = %g, want ≥ 1.5 on the default sequential space", cpp)
	}
}
