package core

// This file implements the pipelined, group-parallel execution engine
// for chunked sweeps:
//
//   - a decode producer goroutine fills []trace.Ref chunk slabs from the
//     extrace.Reader into a small bounded ring, so parsing (and gzip
//     inflation) overlaps simulation instead of stalling it; slabs are
//     recycled through a sync.Pool;
//   - each filled chunk is broadcast read-only to N shard workers, each
//     owning a disjoint subset of the cachesim.Sweep's pass units
//     (cachesim.SweepShard), with the Gray-code bus counter running on
//     the coordinator as one more consumer;
//   - a barrier per chunk keeps every consumer chunk-synchronous, so the
//     engine's statistics are bit-identical to the sequential path in
//     any worker count (each unit sees the same references in the same
//     order; units never interact).
//
// The same fan-out drives in-memory kernel sweeps (runSweepTrace) when a
// workload group has more workers than the group count can absorb.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memexplore/internal/cachesim"
	"memexplore/internal/extrace"
	"memexplore/internal/trace"
)

// pipelineRingChunks bounds how many filled chunks may sit between the
// decode producer and the simulation coordinator: the producer runs at
// most this far ahead (triple buffering), which caps pipeline memory at
// a few chunk slabs while still absorbing decode jitter.
const pipelineRingChunks = 2

// chunkSlabPool recycles the pipeline's chunk slabs across sweeps.
var chunkSlabPool = sync.Pool{
	New: func() any {
		s := make([]trace.Ref, traceChunkRefs)
		return &s
	},
}

// PipelineObserver receives trace-pipeline events so callers (the
// memexplored service) can export gauges without the engine depending
// on a metrics system. Any callback may be nil. Callbacks run on the
// engine's goroutines and must be cheap and safe for concurrent use.
type PipelineObserver struct {
	// Workers reports the effective simulation worker count of a trace
	// sweep as it starts (1 for the sequential path).
	Workers func(n int)
	// ChunksInflight reports ring occupancy changes: +1 when the
	// producer fills a chunk, -1 when the coordinator retires it.
	ChunksInflight func(delta int)
	// ChunkStall reports how long the simulation coordinator waited for
	// the decode producer before each chunk — the pipeline's exposed
	// decode latency (zero when simulation is the bottleneck).
	ChunkStall func(d time.Duration)
}

var pipelineObs atomic.Pointer[PipelineObserver]

// SetPipelineObserver installs the process-wide pipeline observer (nil
// removes it). It is meant to be set once at service start-up.
func SetPipelineObserver(obs *PipelineObserver) { pipelineObs.Store(obs) }

func obsWorkers(n int) {
	if o := pipelineObs.Load(); o != nil && o.Workers != nil {
		o.Workers(n)
	}
}

func obsChunks(delta int) {
	if o := pipelineObs.Load(); o != nil && o.ChunksInflight != nil {
		o.ChunksInflight(delta)
	}
}

func obsStall(d time.Duration) {
	if o := pipelineObs.Load(); o != nil && o.ChunkStall != nil {
		o.ChunkStall(d)
	}
}

// effectiveWorkers resolves the Options.Workers knob: 0 (or negative)
// means GOMAXPROCS, 1 selects the exact sequential path.
func (o Options) effectiveWorkers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// sweepFanout owns a set of worker goroutines, each consuming a
// disjoint shard of a Sweep's pass units. process broadcasts one block
// to every worker and returns only when all of them have consumed it —
// the per-chunk barrier that keeps the sweep chunk-synchronous (and
// makes the block's backing slab reusable the moment process returns).
type sweepFanout struct {
	chans []chan []trace.Ref
	ack   chan struct{}
	wg    sync.WaitGroup
}

// newSweepFanout starts one goroutine per shard. Callers must stop() it
// before reading the sweep's statistics or releasing the sweep.
func newSweepFanout(shards []*cachesim.SweepShard) *sweepFanout {
	f := &sweepFanout{
		chans: make([]chan []trace.Ref, len(shards)),
		ack:   make(chan struct{}, len(shards)),
	}
	for i, sh := range shards {
		ch := make(chan []trace.Ref)
		f.chans[i] = ch
		f.wg.Add(1)
		go func(sh *cachesim.SweepShard, ch <-chan []trace.Ref) {
			defer f.wg.Done()
			for block := range ch {
				sh.AccessBlock(block)
				f.ack <- struct{}{}
			}
		}(sh, ch)
	}
	return f
}

// process broadcasts block to every shard worker, runs mid (when
// non-nil) on the calling goroutine while the workers chew — the trace
// engine drives the Gray-code bus counter there — and returns after
// every worker has acknowledged the block.
func (f *sweepFanout) process(block []trace.Ref, mid func()) {
	for _, ch := range f.chans {
		ch <- block
	}
	if mid != nil {
		mid()
	}
	for range f.chans {
		<-f.ack
	}
}

// stop shuts the workers down and joins them. It must not race a
// process call.
func (f *sweepFanout) stop() {
	for _, ch := range f.chans {
		close(ch)
	}
	f.wg.Wait()
}

// runSweepTrace drives an in-memory trace through the sweep in
// CancelCheckInterval blocks, fanning each block out across up to
// workers shard workers (sequentially when workers ≤ 1 or the sweep has
// a single pass unit). observe, when non-nil, sees every reference on
// the calling goroutine, overlapped with the shard workers. Statistics
// are bit-identical to Sweep.RunTraceContext in any worker count.
func runSweepTrace(ctx context.Context, sweep *cachesim.Sweep, tr *trace.Trace, observe func(trace.Ref), workers int) ([]cachesim.Stats, error) {
	if workers <= 1 || sweep.PassUnits() < 2 {
		return sweep.RunTraceContext(ctx, tr, observe)
	}
	shards := sweep.Shards(workers)
	if len(shards) <= 1 {
		return sweep.RunTraceContext(ctx, tr, observe)
	}
	f := newSweepFanout(shards)
	defer f.stop()
	refs := tr.Refs()
	for start := 0; start < len(refs); start += cachesim.CancelCheckInterval {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		block := refs[start:min(start+cachesim.CancelCheckInterval, len(refs))]
		var mid func()
		if observe != nil {
			mid = func() {
				for _, r := range block {
					observe(r)
				}
			}
		}
		f.process(block, mid)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sweep.Stats(), nil
}

// pipeChunk is one decoded chunk travelling from the producer to the
// coordinator. refs slices the recyclable slab; err is the reader's
// terminal state (io.EOF for a clean end) and may accompany refs.
type pipeChunk struct {
	slab *[]trace.Ref
	refs []trace.Ref
	err  error
}

// chunkProducer decodes the trace on its own goroutine, publishing
// filled chunks into a bounded ring. The final chunk carries the
// reader's terminal error (io.EOF on success); the channel closes once
// the producer exits, which also publishes every write it made to the
// extrace.Reader (ingest statistics) to the coordinator.
type chunkProducer struct {
	full chan pipeChunk
	done chan struct{} // closed by the coordinator to abandon the stream
	once sync.Once
	join chan struct{} // closed when the producer goroutine has exited
}

func startChunkProducer(rd *extrace.Reader) *chunkProducer {
	p := &chunkProducer{
		full: make(chan pipeChunk, pipelineRingChunks),
		done: make(chan struct{}),
		join: make(chan struct{}),
	}
	go func() {
		defer close(p.join)
		defer close(p.full)
		for {
			slab := chunkSlabPool.Get().(*[]trace.Ref)
			n, err := rd.Read((*slab)[:traceChunkRefs])
			if n == 0 && err == nil {
				// Defensive: a no-progress, no-error read; try again.
				chunkSlabPool.Put(slab)
				continue
			}
			if n > 0 {
				obsChunks(+1)
			}
			msg := pipeChunk{slab: slab, refs: (*slab)[:n], err: err}
			select {
			case p.full <- msg:
			case <-p.done:
				if n > 0 {
					obsChunks(-1)
				}
				chunkSlabPool.Put(slab)
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return p
}

// stop abandons the stream and joins the producer goroutine, then
// drains any chunks still in the ring. After stop returns the producer
// no longer touches the extrace.Reader, so the caller may snapshot its
// statistics. The join can block while the producer sits in a blocking
// Read — the same exposure as the sequential engine, which also only
// notices cancellation between reads.
func (p *chunkProducer) stop() {
	p.once.Do(func() { close(p.done) })
	<-p.join
	for msg := range p.full {
		if len(msg.refs) > 0 {
			obsChunks(-1)
		}
		chunkSlabPool.Put(msg.slab)
	}
}

// runTracePipeline is the parallel engine behind ExploreTraceReader: the
// decode producer overlaps the shard fan-out, the bus counter rides the
// coordinator, and a barrier per chunk keeps results bit-identical to
// the sequential path. It consumes the reader to its end (or to the
// first error / cancellation) and leaves the sweep ready for Stats.
func runTracePipeline(ctx context.Context, rd *extrace.Reader, sweep *cachesim.Sweep, drive func(uint64), workers int, filter *traceFilter) error {
	progress := progressFrom(ctx)
	shards := sweep.Shards(workers)
	obsWorkers(len(shards))
	fan := newSweepFanout(shards)
	defer fan.stop()
	prod := startChunkProducer(rd)
	defer prod.stop()

	for {
		if err := ctx.Err(); err != nil {
			return canceled(err)
		}
		wait := time.Now()
		msg, ok := <-prod.full
		if !ok {
			// Producer exited without a terminal chunk: only possible
			// after stop(), which we haven't called — treat as EOF.
			return nil
		}
		obsStall(time.Since(wait))
		if len(msg.refs) > 0 {
			// The filter runs here on the coordinator — chunks arrive in
			// stream order and the slab is exclusively ours until the
			// barrier — so thinning is deterministic at any worker count.
			refs := msg.refs
			if filter != nil {
				refs = filter.apply(refs)
			}
			if len(refs) > 0 {
				fan.process(refs, func() {
					for _, r := range refs {
						drive(r.Addr)
					}
				})
			}
			obsChunks(-1)
			if progress != nil {
				progress(ProgressEvent{Records: int64(len(msg.refs)), Chunks: 1})
			}
		}
		chunkSlabPool.Put(msg.slab)
		if msg.err == io.EOF {
			return nil
		}
		if msg.err != nil {
			return fmt.Errorf("core: ingesting trace: %w", msg.err)
		}
	}
}
