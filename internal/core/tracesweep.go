package core

// This file implements the external-trace sweep: the grouped engines of
// batch.go (the inclusion-property stack sweep with its batch fallback)
// driven not by a generated kernel trace but by an arbitrary application
// trace streamed through internal/extrace. The whole (T, L, S) space is
// evaluated in ONE sequential pass over the stream in constant memory —
// the trace is never materialized — with the Gray-code bus measurement
// fused into the same pass, exactly as the kernel engine fuses it into
// trace generation.

import (
	"context"
	"fmt"
	"io"

	"memexplore/internal/bus"
	"memexplore/internal/cachesim"
	"memexplore/internal/extrace"
	"memexplore/internal/trace"
)

// traceChunkRefs is the streaming chunk size: the reader fills a chunk,
// the bus counter and every cache of the batch consume it, and the
// context is checked before the next chunk. It matches the batch
// engine's cancellation granularity.
const traceChunkRefs = cachesim.CancelCheckInterval

// traceSpace restricts sweep options to what an external trace can vary.
// Tiling and the §4.1 layout are code/data transformations applied while
// generating a trace; an already-recorded trace has them baked in, so the
// sweep space is (T, L, S) with B pinned to 1 and layout optimization
// off. 3C classification is rejected: it needs per-point shadow caches,
// which would break the single-pass constant-memory contract.
func traceSpace(opts Options) (Options, error) {
	if opts.Classify {
		return Options{}, invalidOptions("classify", "3C classification is not supported for external-trace sweeps")
	}
	if opts.Engine == EnginePerPoint {
		return Options{}, invalidOptions("engine", "the per-point engine is not supported for external-trace sweeps: the stream is read once")
	}
	opts.Tilings = []int{1}
	opts.OptimizeLayout = false
	// Canonicalize the sampling knobs the way Normalize does, so a rate
	// of exactly 1 takes the exact path.
	if opts.SampleRate == 1 {
		opts.SampleRate = 0
	}
	if opts.SampleRate == 0 {
		opts.SampleSeed = 0
	}
	if err := opts.Validate(); err != nil {
		return Options{}, err
	}
	return opts, nil
}

// ExploreTraceReader runs the MemExplore sweep over an external
// application trace streamed from r — textual din or mxt binary format,
// transparently gzip-decompressed (see internal/extrace) — and returns
// one Metrics per legal (T, L, S) configuration in deterministic Space()
// order, together with the ingest-time statistics accumulated during the
// same pass. ing bounds and shapes the ingestion (record limits,
// malformed-record policy).
//
// The trace is read exactly once, in fixed-size chunks: every cache
// configuration of the sweep and the Gray-code address-bus measurement
// consume each chunk before the next is read, so memory use is constant
// in the trace length and a multi-gigabyte trace sweeps in one pass. The
// context is checked at every chunk boundary; cancellation returns an
// error wrapping ErrCanceled. Malformed input surfaces as
// *extrace.ParseError (with line number and byte offset) unless
// ing.SkipMalformed is set, and a stream with no records fails with
// ErrEmptyTrace. The IngestStats snapshot is valid even when an error is
// returned — it reports whatever was ingested up to the failure.
func ExploreTraceReader(ctx context.Context, r io.Reader, opts Options, ing extrace.Options) ([]Metrics, extrace.IngestStats, error) {
	return exploreTraceSubset(ctx, r, opts, ing, nil)
}

// exploreTraceSubset is ExploreTraceReader restricted to a subset of the
// sweep's configuration points (nil means all of them): the engine it
// builds owns only the subset's pass units, but the stream-thinning
// filters, the bus counter, and every rescaling decision are functions
// of (options, trace bytes) alone — identical for any subset — so the
// Metrics it returns are bit-for-bit the values the full sweep computes
// for those points. That property is what distributed shard execution
// (ExploreTraceShard) and its exact merge stand on. subset must be
// ascending point indices into opts.Space() after the trace restriction.
func exploreTraceSubset(ctx context.Context, r io.Reader, opts Options, ing extrace.Options, subset []int) ([]Metrics, extrace.IngestStats, error) {
	opts, err := traceSpace(opts)
	if err != nil {
		return nil, extrace.IngestStats{}, err
	}
	points := opts.Space()
	if len(points) == 0 {
		return nil, extrace.IngestStats{}, invalidOptions("cache_sizes", "the options admit no legal (T, L, S) configuration")
	}
	if subset != nil {
		sel := make([]ConfigPoint, len(subset))
		for i, pi := range subset {
			if pi < 0 || pi >= len(points) {
				return nil, extrace.IngestStats{}, fmt.Errorf("core: shard point index %d outside the %d-point space", pi, len(points))
			}
			sel[i] = points[pi]
		}
		points = sel
	}
	cfgs := make([]cachesim.Config, len(points))
	for i, p := range points {
		cfgs[i] = opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc)
	}
	sweep, err := newGroupSweep(opts, cfgs)
	if err != nil {
		return nil, extrace.IngestStats{}, fmt.Errorf("core: building trace-sweep engine: %w", err)
	}
	defer sweep.Release() // every return path must recycle the pooled arrays

	// A transcode-sampled artifact (mxt v2 with sampling recorded in its
	// MXTI01 footer) already lost the dropped granules: re-sampling it
	// would compound two filters with no way to rescale, and a sweep
	// whose filter granule is coarser than the stored hash granule would
	// see internally inconsistent blocks. Both are refused. Seekable
	// sources are checked up front; non-seekable streams only reveal
	// their footer at end of stream and are re-checked after the run.
	validateStored := func(ix *extrace.TraceIndex) error {
		if ix == nil || !ix.Sampled {
			return nil
		}
		if opts.SampleRate > 0 {
			return invalidOptions("sample_rate", "the trace was already sampled at transcode time (rate %g, seed %d): re-sampling would compound the filters; sweep it as-is or re-transcode from the original source", ix.SampleRate, ix.SampleSeed)
		}
		if g := filterGranule(opts.LineSizes); g > ix.SampleGranule {
			return invalidOptions("line_sizes", "the trace was sampled at transcode time at %d-byte granules, but line sizes up to %d bytes need a %d-byte filter granule: the stored sample is not spatially consistent at that size", ix.SampleGranule, g, g)
		}
		return nil
	}
	storedIdx := extrace.ProbeIndex(r)
	if err := validateStored(storedIdx); err != nil {
		return nil, extrace.IngestStats{}, err
	}

	// Stream-thinning stages (exact sweeps leave filter nil and are
	// bit-identical to previous releases): the dominant-block prepass
	// reads the stream once and rewinds it, then the filter rides the
	// coordinator of either engine.
	var filter *traceFilter
	if opts.SampleRate > 0 || opts.DominantEps > 0 {
		filter = newTraceFilter(opts)
		if opts.DominantEps > 0 {
			// Index-guided prepass first: an MXTI01 footer with exact
			// per-chunk granule summaries yields the hot set from the
			// footer alone (coarser presence criterion, same ε tolerance —
			// see dominantFromIndex). MaxRecords truncation must fall back:
			// the footer summarizes the whole artifact, not the prefix.
			hot, fromIndex := map[uint64]struct{}(nil), false
			if ing.MaxRecords == 0 {
				hot, fromIndex = dominantFromIndex(storedIdx, filter.gshift, opts.DominantEps)
			}
			if !fromIndex {
				hot, err = dominantPrepass(ctx, r, ing, filter.gshift, opts.DominantEps)
				if err != nil {
					return nil, extrace.IngestStats{}, err
				}
			}
			filter.hot = hot
		}
	}

	rd := extrace.NewReader(r, ing)
	defer rd.Close()
	if filter != nil && filter.active() {
		// Index-guided chunk skipping: when the MXTI01 index proves no
		// record of a chunk survives the filters, the reader seeks past
		// the chunk without decoding it. The verdict reproduces the
		// decode-then-filter outcome exactly (see chunkVerdict), and the
		// skipped records are folded back below, so Metrics stay
		// bit-identical to the full decode at any worker count.
		rd.SetChunkPolicy(filter.chunkVerdict)
	}
	ctr := bus.NewSwitchCounter(bus.Gray)
	if workers := opts.effectiveWorkers(); workers > 1 && sweep.PassUnits() > 1 {
		err = runTracePipeline(ctx, rd, sweep, ctr.Drive, workers, filter)
	} else {
		obsWorkers(1)
		err = runTraceSequential(ctx, rd, sweep, ctr.Drive, filter)
	}
	if err != nil {
		return nil, rd.Stats(), err
	}
	st := rd.Stats()
	if st.Records == 0 {
		return nil, st, ErrEmptyTrace
	}
	if storedIdx == nil {
		// The stream path discovers the footer only at EOF.
		if err := validateStored(rd.Index()); err != nil {
			return nil, st, err
		}
		storedIdx = rd.Index()
	}
	if filter != nil {
		filter.foldSkips(rd.SkipSummary())
	}

	// A transcode-sampled artifact rescales against the pre-sampling
	// source: the stored records ARE the sample, so the filter reduces
	// to a rescaling shell when no live filter ran.
	total, rate := st.Records, opts.SampleRate
	if storedIdx != nil && storedIdx.Sampled {
		total, rate = storedIdx.SourceRecords, storedIdx.SampleRate
		if filter == nil {
			filter = newTraceFilter(opts)
			filter.simulated = st.Records
		}
	}
	if filter != nil && filter.simulated == 0 {
		return nil, st, fmt.Errorf("%w (sampling at rate %g kept none of %d records)",
			ErrEmptyTrace, rate, total)
	}

	addBS := ctr.PerDrive()
	stats := sweep.Stats()
	out := make([]Metrics, len(points))
	for i, pt := range points {
		full := stats[i]
		var ci float64
		if filter != nil {
			full, ci = filter.rescale(full, total, rate)
		}
		m, err := scoreStats(cfgs[i], pt.Tiling, opts.Energy, full, addBS)
		if err != nil {
			return nil, st, fmt.Errorf("core: evaluating trace sweep %v: %w", pt, err)
		}
		if filter != nil {
			m.SampleRate = rate
			m.SampledRecords = filter.simulated
			m.MissRateCI = ci
			if passed := filter.samplePassed(); passed > 0 {
				m.SkippedShare = float64(filter.coldSkipped()) / float64(passed)
			}
		}
		out[i] = m
	}
	return out, st, nil
}

// runTraceSequential is the exact single-goroutine engine (the
// workers=1 path): read a chunk, drive the bus counter, feed every pass
// unit, check the context, repeat. The pipelined engine is pinned
// bit-identical to this loop by the equivalence tests.
func runTraceSequential(ctx context.Context, rd *extrace.Reader, sweep *cachesim.Sweep, drive func(uint64), filter *traceFilter) error {
	progress := progressFrom(ctx)
	chunk := make([]trace.Ref, traceChunkRefs)
	for {
		if err := ctx.Err(); err != nil {
			return canceled(err)
		}
		n, rerr := rd.Read(chunk)
		if n > 0 {
			block := chunk[:n]
			if filter != nil {
				block = filter.apply(block)
			}
			if len(block) > 0 {
				for _, ref := range block {
					drive(ref.Addr)
				}
				sweep.AccessBlock(block)
			}
			if progress != nil {
				// Progress counts the records read, not the (thinned)
				// records simulated, so percent-done tracks the stream.
				progress(ProgressEvent{Records: int64(n), Chunks: 1})
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return fmt.Errorf("core: ingesting trace: %w", rerr)
		}
	}
}

// ExploreTrace is ExploreTraceReader with a background context.
func ExploreTrace(r io.Reader, opts Options, ing extrace.Options) ([]Metrics, extrace.IngestStats, error) {
	return ExploreTraceReader(context.Background(), r, opts, ing)
}
