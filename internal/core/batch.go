package core

// This file implements the workload-grouped, single-pass batched sweep
// engine.
//
// A sweep point's reference trace depends only on its workload — the
// tiling, plus (for optimized layouts) the (L, sets) geometry the §4.1
// assignment targets — never on the cache's associativity or, for
// sequential layouts, on the cache geometry at all. The engine therefore
// partitions Options.Space() by traceKey, generates each workload's
// trace exactly once, measures its Gray-code address-bus switching in
// the same traversal, and drives every cache configuration of the group
// through one cachesim.Batch pass (the Dinero IV single-pass trick).
// Sequential-layout sweeps collapse the whole sizes×lines×assocs product
// into one pass per tiling; optimized-layout sweeps collapse the
// associativity dimension. Results are bit-identical to the per-point
// reference engine (ExplorePerPointContext), in the same deterministic
// Space() order.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"memexplore/internal/bus"
	"memexplore/internal/cachesim"
	"memexplore/internal/layout"
	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

// workloadKey computes the trace identity of a sweep point, mirroring
// Explorer.workload: sequential layouts share one trace per tiling;
// optimized layouts additionally key on the (L, T/L) geometry the §4.1
// assignment targets (associativity only merges sets, see Explorer).
func workloadKey(opts Options, p ConfigPoint) traceKey {
	key := traceKey{tiling: p.Tiling, optimized: opts.OptimizeLayout}
	if opts.OptimizeLayout {
		key.lineBytes = p.LineSize
		key.sets = p.CacheSize / p.LineSize
	}
	return key
}

// workloadGroup is one workload and the indices (into the Space() slice)
// of the sweep points that share its trace.
type workloadGroup struct {
	key     traceKey
	indices []int
}

// groupWorkloads partitions the sweep points by workload, preserving
// first-appearance order (and, within a group, Space() order).
func groupWorkloads(opts Options, points []ConfigPoint) []workloadGroup {
	order := make(map[traceKey]int)
	var groups []workloadGroup
	for i, p := range points {
		key := workloadKey(opts, p)
		gi, ok := order[key]
		if !ok {
			gi = len(groups)
			order[key] = gi
			groups = append(groups, workloadGroup{key: key})
		}
		groups[gi].indices = append(groups[gi].indices, i)
	}
	return groups
}

// Workloads reports how many distinct trace-generation workloads the
// options' space contains — the number of trace passes the batched
// engine performs for a non-classified sweep (the per-point reference
// engine performs one pass per point instead).
func (o Options) Workloads() int {
	seen := make(map[traceKey]struct{})
	for _, p := range o.Space() {
		seen[workloadKey(o, p)] = struct{}{}
	}
	return len(seen)
}

// workloadCache generates and caches workload traces. It is safe for
// concurrent use: the mutex guards the maps, and the per-entry once
// lets distinct workloads generate concurrently while a shared tiled
// nest is still built only once.
type workloadCache struct {
	nest *loopir.Nest

	mu     sync.Mutex
	tiled  map[int]*onceNest
	traces map[traceKey]*onceTrace
}

type onceNest struct {
	once sync.Once
	n    *loopir.Nest
	err  error
}

type onceTrace struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

func newWorkloadCache(n *loopir.Nest) *workloadCache {
	return &workloadCache{
		nest:   n,
		tiled:  make(map[int]*onceNest),
		traces: make(map[traceKey]*onceTrace),
	}
}

func (c *workloadCache) tiledNest(b int) (*loopir.Nest, error) {
	c.mu.Lock()
	e, ok := c.tiled[b]
	if !ok {
		e = &onceNest{}
		c.tiled[b] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.n, e.err = loopir.TileAll(c.nest, b) })
	return e.n, e.err
}

func (c *workloadCache) trace(key traceKey) (*trace.Trace, error) {
	c.mu.Lock()
	e, ok := c.traces[key]
	if !ok {
		e = &onceTrace{}
		c.traces[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = c.generate(key) })
	return e.tr, e.err
}

func (c *workloadCache) generate(key traceKey) (*trace.Trace, error) {
	n, err := c.tiledNest(key.tiling)
	if err != nil {
		return nil, err
	}
	var lay loopir.Layout
	if key.optimized {
		plan, err := layout.Optimize(n, key.lineBytes, key.sets)
		if err != nil {
			return nil, err
		}
		lay = plan.Layout
	} else {
		lay = loopir.SequentialLayout(n, 0)
	}
	return n.Generate(lay)
}

// newGroupSweep builds the simulation engine for one workload group's
// configurations: the mixed inclusion/batch sweep by default (default-
// policy configurations sharing a (line, sets) geometry collapse into
// one LRU stack pass each), or a pure batch when the options force the
// batched engine or use policies the stack model cannot represent.
func newGroupSweep(opts Options, cfgs []cachesim.Config) (*cachesim.Sweep, error) {
	if opts.Engine == EngineBatched || !opts.inclusionEligible() {
		return cachesim.NewBatchSweep(cfgs)
	}
	return cachesim.NewSweep(cfgs)
}

// groupConfigs builds the simulator configurations of one workload
// group's points, in group (= Space()) order.
func groupConfigs(opts Options, points []ConfigPoint, g workloadGroup) []cachesim.Config {
	cfgs := make([]cachesim.Config, len(g.indices))
	for i, pi := range g.indices {
		p := points[pi]
		cfgs[i] = opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc)
	}
	return cfgs
}

// runWorkloadGroup simulates every configuration of one workload group
// in a single pass over its trace, fusing the Gray-code bus measurement
// into the same traversal, and writes the scored Metrics into out at
// the group's point indices. fanWorkers > 1 fans each trace chunk out
// across that many pass-unit shards (see runSweepTrace); results are
// bit-identical at any value.
func (c *workloadCache) runWorkloadGroup(ctx context.Context, opts Options, points []ConfigPoint, g workloadGroup, out []Metrics, fanWorkers int) error {
	tr, err := c.trace(g.key)
	if err != nil {
		return fmt.Errorf("core: generating trace for %s/B%d: %w", c.nest.Name, g.key.tiling, err)
	}
	cfgs := groupConfigs(opts, points, g)
	sweep, err := newGroupSweep(opts, cfgs)
	if err != nil {
		return fmt.Errorf("core: building sweep for %s/B%d: %w", c.nest.Name, g.key.tiling, err)
	}
	ctr := bus.NewSwitchCounter(bus.Gray)
	stats, err := runSweepTrace(ctx, sweep, tr, func(r trace.Ref) { ctr.Drive(r.Addr) }, fanWorkers)
	if err != nil {
		// The only error source for an in-memory trace is the context.
		return canceled(err)
	}
	addBS := ctr.PerDrive()
	for i, pi := range g.indices {
		m, err := scoreStats(cfgs[i], points[pi].Tiling, opts.Energy, stats[i], addBS)
		if err != nil {
			return fmt.Errorf("core: evaluating %s/%v: %w", c.nest.Name, points[pi], err)
		}
		m.Optimized = opts.OptimizeLayout
		out[pi] = m
	}
	if progress := progressFrom(ctx); progress != nil {
		progress(ProgressEvent{Points: int64(len(g.indices)), PassUnits: int64(sweep.PassUnits())})
	}
	sweep.Release()
	return nil
}

// fanBudgets splits workers across groups when there are more workers
// than groups: every group gets one coordinator, and the spare workers
// are distributed proportionally to the groups' pass-unit counts (the
// estimated per-reference cost of each group's single pass) by largest
// remainder, ties to the earlier group — deterministic for given inputs.
func fanBudgets(unitCounts []int, workers int) []int {
	budgets := make([]int, len(unitCounts))
	for i := range budgets {
		budgets[i] = 1
	}
	extra := workers - len(unitCounts)
	total := 0
	for _, u := range unitCounts {
		total += u
	}
	if extra <= 0 || total == 0 {
		return budgets
	}
	rems := make([]int, len(unitCounts)) // remainder numerators, denominator total
	assigned := 0
	for i, u := range unitCounts {
		q := extra * u
		budgets[i] += q / total
		assigned += q / total
		rems[i] = q % total
	}
	for left := extra - assigned; left > 0; left-- {
		best := -1
		for i, r := range rems {
			if best < 0 || r > rems[best] {
				best = i
			}
		}
		budgets[best]++
		rems[best] = -1
	}
	return budgets
}

// exploreBatched is the workload-grouped engine behind ExploreContext
// and ExploreParallelContext for non-classified sweeps. workers > 1
// parallelizes across workload groups over a shared trace cache; when
// there are more workers than groups — the one-giant-group shape every
// external-trace-like sweep has — the surplus fans out inside groups
// across pass-unit shards instead of idling. The returned metrics are
// bit-identical to the per-point reference engine, in Space() order.
func exploreBatched(ctx context.Context, n *loopir.Nest, opts Options, workers int) ([]Metrics, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	points := opts.Space()
	groups := groupWorkloads(opts, points)
	out := make([]Metrics, len(points))
	cache := newWorkloadCache(n)

	if workers <= 1 {
		for _, g := range groups {
			if err := ctx.Err(); err != nil {
				return nil, canceled(err)
			}
			if err := cache.runWorkloadGroup(ctx, opts, points, g, out, 1); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	if workers > len(groups) {
		// More workers than groups: one goroutine per group, each given a
		// shard fan-out budget proportional to the group's pass-unit count.
		useInclusion := opts.Engine != EngineBatched && opts.inclusionEligible()
		unitCounts := make([]int, len(groups))
		for gi, g := range groups {
			su, err := cachesim.ShardUnits(groupConfigs(opts, points, g), useInclusion, 1)
			if err != nil {
				return nil, fmt.Errorf("core: planning group fan-out: %w", err)
			}
			unitCounts[gi] = su[0]
		}
		budgets := fanBudgets(unitCounts, workers)
		errs := make([]error, len(groups))
		var wg sync.WaitGroup
		for gi, g := range groups {
			wg.Add(1)
			go func(gi int, g workloadGroup) {
				defer wg.Done()
				if err := ctx.Err(); err != nil {
					errs[gi] = canceled(err)
					return
				}
				errs[gi] = cache.runWorkloadGroup(ctx, opts, points, g, out, budgets[gi])
			}(gi, g)
		}
		wg.Wait()
		if err := firstSweepError(errs); err != nil {
			return nil, err
		}
		return out, nil
	}

	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(groups) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = canceled(err)
					return
				}
				if err := cache.runWorkloadGroup(ctx, opts, points, groups[i], out, 1); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := firstSweepError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// firstSweepError reduces per-worker errors, preferring a
// non-cancellation error if any worker hit one: it is the more specific
// diagnosis.
func firstSweepError(errs []error) error {
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isCanceled(err) {
			cancelErr = err
			continue
		}
		return err
	}
	return cancelErr
}
