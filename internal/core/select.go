package core

import (
	"fmt"
	"sort"
)

// MinEnergy returns the configuration with the lowest energy; ties break
// toward fewer cycles, then smaller cache. ok is false for an empty slice.
func MinEnergy(ms []Metrics) (Metrics, bool) {
	return minBy(ms, func(a, b Metrics) bool {
		if a.EnergyNJ != b.EnergyNJ {
			return a.EnergyNJ < b.EnergyNJ
		}
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		return a.CacheSize < b.CacheSize
	})
}

// MinCycles returns the configuration with the fewest processor cycles;
// ties break toward lower energy, then smaller cache.
func MinCycles(ms []Metrics) (Metrics, bool) {
	return minBy(ms, func(a, b Metrics) bool {
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		if a.EnergyNJ != b.EnergyNJ {
			return a.EnergyNJ < b.EnergyNJ
		}
		return a.CacheSize < b.CacheSize
	})
}

// MinEDP returns the configuration with the lowest energy–delay product;
// ties break toward lower energy.
func MinEDP(ms []Metrics) (Metrics, bool) {
	return minBy(ms, func(a, b Metrics) bool {
		if a.EDP() != b.EDP() {
			return a.EDP() < b.EDP()
		}
		return a.EnergyNJ < b.EnergyNJ
	})
}

// MinEnergyUnderCycleBound implements the paper's "minimum energy cache
// configuration if time is the hard constraint": the lowest-energy
// configuration whose cycle count does not exceed bound. ok is false when
// no configuration meets the bound.
func MinEnergyUnderCycleBound(ms []Metrics, bound float64) (Metrics, bool) {
	return MinEnergy(filter(ms, func(m Metrics) bool { return m.Cycles <= bound }))
}

// MinCyclesUnderEnergyBound implements the paper's "minimum time cache
// configuration if energy is the hard constraint".
func MinCyclesUnderEnergyBound(ms []Metrics, boundNJ float64) (Metrics, bool) {
	return MinCycles(filter(ms, func(m Metrics) bool { return m.EnergyNJ <= boundNJ }))
}

// MinSizeUnderBounds returns the smallest cache meeting both bounds
// (either bound may be +Inf).
func MinSizeUnderBounds(ms []Metrics, cycleBound, energyBoundNJ float64) (Metrics, bool) {
	return minBy(filter(ms, func(m Metrics) bool {
		return m.Cycles <= cycleBound && m.EnergyNJ <= energyBoundNJ
	}), func(a, b Metrics) bool {
		if a.CacheSize != b.CacheSize {
			return a.CacheSize < b.CacheSize
		}
		return a.EnergyNJ < b.EnergyNJ
	})
}

// Dominates reports whether a Pareto-dominates b in the (cycles, energy)
// plane: no worse in both objectives and strictly better in at least one.
// Two points that tie in both objectives do not dominate each other. It
// is the primitive ParetoFrontier and the guided-search archive
// (internal/search) are built on.
func Dominates(a, b Metrics) bool {
	if a.Cycles > b.Cycles || a.EnergyNJ > b.EnergyNJ {
		return false
	}
	return a.Cycles < b.Cycles || a.EnergyNJ < b.EnergyNJ
}

// ParetoFrontier returns the configurations that are Pareto-optimal in the
// (cycles, energy) plane, sorted by increasing cycles. These are the
// energy–time tradeoff points the paper's conclusion describes. Of points
// that tie in both objectives, the first (in the sorted order, which is
// stable over the input order) is kept.
func ParetoFrontier(ms []Metrics) []Metrics {
	if len(ms) == 0 {
		return nil
	}
	sorted := append([]Metrics(nil), ms...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Cycles != sorted[j].Cycles {
			return sorted[i].Cycles < sorted[j].Cycles
		}
		return sorted[i].EnergyNJ < sorted[j].EnergyNJ
	})
	// After the sort, a candidate can only be dominated by (or tie) the
	// last point kept, so one comparison per element suffices.
	out := []Metrics{sorted[0]}
	for _, m := range sorted[1:] {
		last := out[len(out)-1]
		if Dominates(last, m) || (last.Cycles == m.Cycles && last.EnergyNJ == m.EnergyNJ) {
			continue
		}
		out = append(out, m)
	}
	return out
}

func filter(ms []Metrics, keep func(Metrics) bool) []Metrics {
	var out []Metrics
	for _, m := range ms {
		if keep(m) {
			out = append(out, m)
		}
	}
	return out
}

func minBy(ms []Metrics, less func(a, b Metrics) bool) (Metrics, bool) {
	if len(ms) == 0 {
		return Metrics{}, false
	}
	best := ms[0]
	for _, m := range ms[1:] {
		if less(m, best) {
			best = m
		}
	}
	return best, true
}

// Find returns the metrics for an exact (T, L, S, B) point, if present.
func Find(ms []Metrics, p ConfigPoint) (Metrics, bool) {
	for _, m := range ms {
		if m.CacheSize == p.CacheSize && m.LineSize == p.LineSize &&
			m.Assoc == p.Assoc && m.Tiling == p.Tiling {
			return m, true
		}
	}
	return Metrics{}, false
}

// String renders a metrics row compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("%s missrate=%.4f cycles=%.0f energy=%.0fnJ", m.Label(), m.MissRate, m.Cycles, m.EnergyNJ)
}
