package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"memexplore/internal/extrace"
	"memexplore/internal/trace"
)

// TestTraceShardPlanCovers: for any shard count the plan is a
// deterministic partition of the point space — every point index exactly
// once, ascending within a shard, never more shards than requested.
func TestTraceShardPlanCovers(t *testing.T) {
	opts := traceSweepOptions()
	// The trace space pins the kernel-only axes (tiling, layout), so
	// derive the point count from the trivial one-shard plan.
	whole, err := TraceShardPlan(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	points := 0
	for _, sh := range whole {
		points += len(sh)
	}
	if points < 8 {
		t.Fatalf("trace space has only %d points; widen traceSweepOptions", points)
	}
	for _, n := range []int{1, 2, 3, 5, 8, maxInt(1, points*2)} {
		plan, err := TraceShardPlan(opts, n)
		if err != nil {
			t.Fatal(err)
		}
		again, err := TraceShardPlan(opts, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Fatalf("n=%d: plan not deterministic", n)
		}
		if len(plan) > n {
			t.Fatalf("n=%d: plan has %d shards", n, len(plan))
		}
		seen := make(map[int]bool)
		for si, sh := range plan {
			if len(sh) == 0 {
				t.Errorf("n=%d: empty shard %d", n, si)
			}
			for i, pi := range sh {
				if i > 0 && sh[i-1] >= pi {
					t.Errorf("n=%d: shard %d not ascending: %v", n, si, sh)
				}
				if seen[pi] {
					t.Errorf("n=%d: point %d in two shards", n, pi)
				}
				seen[pi] = true
			}
		}
		if len(seen) != points {
			t.Errorf("n=%d: plan covers %d of %d points", n, len(seen), points)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestTraceShardMergeBitIdentical is the tentpole property: for any
// shard count, running every shard independently over the same trace
// bytes and merging yields Metrics bit-identical to the single-process
// sweep — and every shard reports the identical IngestStats, since each
// ingests the full stream. Swept across the filter variants (exact,
// sampled, dominant-prefiltered, both) because the filters must be pure
// functions of (options, bytes), never of shard membership.
func TestTraceShardMergeBitIdentical(t *testing.T) {
	payload := hotColdDin(120, 60)

	variants := []struct {
		name     string
		sample   float64
		dominant float64
	}{
		{"exact", 0, 0},
		{"sampled", 0.25, 0},
		{"dominant", 0, 0.10},
		{"sampled_dominant", 0.25, 0.10},
	}
	for _, v := range variants {
		opts := traceSweepOptions()
		opts.SampleRate = v.sample
		opts.SampleSeed = 7
		opts.DominantEps = v.dominant

		want, wantStats, err := ExploreTrace(bytes.NewReader(payload), opts, extrace.Options{})
		if err != nil {
			t.Fatalf("%s: full sweep: %v", v.name, err)
		}
		for _, n := range []int{1, 2, 3, 5, 8} {
			plan, err := TraceShardPlan(opts, n)
			if err != nil {
				t.Fatal(err)
			}
			parts := make([][]Metrics, len(plan))
			for si := range plan {
				ms, st, err := ExploreTraceShard(context.Background(), bytes.NewReader(payload), opts, extrace.Options{}, si, n)
				if err != nil {
					t.Fatalf("%s n=%d: shard %d: %v", v.name, n, si, err)
				}
				if len(ms) != len(plan[si]) {
					t.Fatalf("%s n=%d: shard %d returned %d metrics for %d points",
						v.name, n, si, len(ms), len(plan[si]))
				}
				if !reflect.DeepEqual(st, wantStats) {
					t.Errorf("%s n=%d: shard %d IngestStats diverge\nshard: %+v\nfull:  %+v",
						v.name, n, si, st, wantStats)
				}
				parts[si] = ms
			}
			merged, err := MergeTraceShards(opts, n, parts)
			if err != nil {
				t.Fatalf("%s n=%d: merge: %v", v.name, n, err)
			}
			if !reflect.DeepEqual(merged, want) {
				t.Errorf("%s n=%d: merged metrics diverge from the single-process sweep", v.name, n)
			}
		}
	}
}

// TestExploreTraceShardValidates: out-of-range shard indices are
// invalid-options errors, not panics or silent empties.
func TestExploreTraceShardValidates(t *testing.T) {
	opts := traceSweepOptions()
	plan, err := TraceShardPlan(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	var inv *ErrInvalidOptions
	for _, idx := range []int{-1, len(plan)} {
		_, _, err := ExploreTraceShard(context.Background(), bytes.NewReader(hotColdDin(5, 2)), opts, extrace.Options{}, idx, 3)
		if !errors.As(err, &inv) {
			t.Errorf("shard index %d: err = %v, want ErrInvalidOptions", idx, err)
		}
	}
}

// TestMergeTraceShardsValidates: a part list whose shape disagrees with
// the plan (wrong shard count, wrong per-shard length) is an error.
func TestMergeTraceShardsValidates(t *testing.T) {
	opts := traceSweepOptions()
	plan, err := TraceShardPlan(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeTraceShards(opts, 3, make([][]Metrics, len(plan)+1)); err == nil {
		t.Error("merge accepted a part list longer than the plan")
	}
	parts := make([][]Metrics, len(plan))
	for i := range parts {
		parts[i] = make([]Metrics, len(plan[i]))
	}
	parts[0] = parts[0][:len(parts[0])-1]
	if _, err := MergeTraceShards(opts, 3, parts); err == nil {
		t.Error("merge accepted a short shard part")
	}
}

// phaseLocalV2 encodes a deterministic hot/cold phase-local ref stream
// as mxt v2, indexed or bare. The cold phases sit in fresh 1MiB-aligned
// windows visited in runs longer than a chunk, so the per-chunk granule
// summaries are short and decisively cold.
func phaseLocalV2(t *testing.T, n int, noIndex bool) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	refs := make([]trace.Ref, 0, n)
	const hotBase = uint64(1) << 20
	coldBase := uint64(16) << 20
	for len(refs) < n {
		if rng.Intn(2) == 0 {
			seg := 2048 + rng.Intn(4096)
			off := uint64(rng.Intn(64)) * 64
			for i := 0; i < seg && len(refs) < n; i++ {
				off = (off + 64) % (4 << 10)
				refs = append(refs, trace.Ref{Addr: hotBase + off, Kind: trace.Kind(rng.Intn(3))})
			}
		} else {
			coldBase += uint64(1) << 20
			seg := 6144 + rng.Intn(8192)
			addr := coldBase
			for i := 0; i < seg && len(refs) < n; i++ {
				if rng.Intn(32) == 0 {
					addr = coldBase + uint64(rng.Intn(16))*64
				}
				refs = append(refs, trace.Ref{Addr: addr, Kind: trace.Read})
			}
		}
	}
	var buf bytes.Buffer
	if _, err := extrace.WriteBinaryV2Options(&buf, trace.FromRefs(refs).Reader(), extrace.V2WriterOptions{NoIndex: noIndex}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDominantIndexPrepass pins the index-only dominant hot-set
// (satellite of the distributed-sweep change): on an indexed artifact
// the prepass reads no records — it ranks granules by chunk presence
// from the MXTI01 summaries — and the filtered sweep must stay within
// the filter's estimation envelope of the exact sweep while the exact
// fields match bit-for-bit. The criterion is deliberately coarser than
// the decode prepass's transition counts; this test is the documented
// tolerance contract (see dominantFromIndex).
func TestDominantIndexPrepass(t *testing.T) {
	const eps = 0.10
	indexed := phaseLocalV2(t, 100_000, false)
	bare := phaseLocalV2(t, 100_000, true)

	opts := traceSweepOptions()
	exact, _, err := ExploreTrace(bytes.NewReader(bare), opts, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The index alone must produce a usable hot set on this artifact.
	ix := extrace.ProbeIndex(bytes.NewReader(indexed))
	if ix == nil {
		t.Fatal("indexed artifact has no MXTI01 footer")
	}
	gshift := uint(5) // any sweep granule ≥ IndexGranule works for the probe
	for uint64(1)<<gshift < extrace.IndexGranule {
		gshift++
	}
	hot, ok := dominantFromIndex(ix, gshift, eps)
	if !ok || hot == nil {
		t.Fatalf("dominantFromIndex: ok=%v hot=%v, want an index-derived hot set", ok, hot != nil)
	}

	dom := opts
	dom.DominantEps = eps
	ms, st, err := ExploreTrace(bytes.NewReader(indexed), dom, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].SkippedShare <= 0 {
		t.Error("index-prefiltered sweep skipped nothing; the test trace is not phase-local enough")
	}
	for i := range exact {
		if ms[i].Accesses != exact[i].Accesses {
			t.Errorf("point %d: Accesses %d != exact %d", i, ms[i].Accesses, exact[i].Accesses)
		}
		if d := math.Abs(ms[i].MissRate - exact[i].MissRate); d > 2*eps {
			t.Errorf("point %d: filtered miss rate %.4f vs exact %.4f beyond 2·eps", i, ms[i].MissRate, exact[i].MissRate)
		}
	}
	if st.Records != ix.Records {
		t.Errorf("ingested %d records, index says %d", st.Records, ix.Records)
	}

	// With any record limit set, the footer is no longer trusted to
	// describe exactly what will be swept, so the indexed artifact must
	// fall back to the decode prepass and match the bare artifact
	// bit-for-bit. (The limit equals the record count: it never trips,
	// it only flips the gate.)
	lim := dom
	limIng := extrace.Options{MaxRecords: ix.Records}
	msIdx, _, err := ExploreTrace(bytes.NewReader(indexed), lim, limIng)
	if err != nil {
		t.Fatal(err)
	}
	msBare, _, err := ExploreTrace(bytes.NewReader(bare), lim, limIng)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msIdx, msBare) {
		t.Error("with MaxRecords set, indexed and bare dominant sweeps must both take the decode prepass")
	}
}

// TestDominantIndexOverflowedChunk: a chunk that touched more granules
// than the index records (nil Granules) makes the presence histogram
// unknowable — dominantFromIndex must refuse so the sweep decodes.
func TestDominantIndexOverflowedChunk(t *testing.T) {
	// One chunk's worth of records, each at a fresh granule: > 512
	// distinct granules, so the writer stores an overflowed summary.
	refs := make([]trace.Ref, 1200)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(i) * extrace.IndexGranule, Kind: trace.Read}
	}
	var buf bytes.Buffer
	if _, err := extrace.WriteBinaryV2(&buf, trace.FromRefs(refs).Reader()); err != nil {
		t.Fatal(err)
	}
	ix := extrace.ProbeIndex(bytes.NewReader(buf.Bytes()))
	if ix == nil {
		t.Fatal("no index footer")
	}
	overflowed := false
	for _, c := range ix.Chunks {
		if len(c.Granules) == 0 {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatal("no chunk overflowed its granule summary; widen the address spread")
	}
	if _, ok := dominantFromIndex(ix, 6, 0.1); ok {
		t.Error("dominantFromIndex accepted an index with an overflowed chunk")
	}
}
