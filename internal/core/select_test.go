package core

import (
	"math"
	"testing"
)

func m(cycles, energyNJ float64) Metrics {
	return Metrics{Cycles: cycles, EnergyNJ: energyNJ}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		name string
		a, b Metrics
		want bool
	}{
		{"strictly better both", m(1, 1), m(2, 2), true},
		{"strictly worse both", m(2, 2), m(1, 1), false},
		{"tie cycles, better energy", m(1, 1), m(1, 2), true},
		{"tie cycles, worse energy", m(1, 2), m(1, 1), false},
		{"tie energy, better cycles", m(1, 1), m(2, 1), true},
		{"tie energy, worse cycles", m(2, 1), m(1, 1), false},
		{"identical", m(1, 1), m(1, 1), false},
		{"trade-off a faster", m(1, 2), m(2, 1), false},
		{"trade-off a cooler", m(2, 1), m(1, 2), false},
	}
	for _, tc := range cases {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: Dominates(%v, %v) = %v, want %v",
				tc.name, tc.a, tc.b, got, tc.want)
		}
	}
	// Mutual domination is impossible by construction.
	for _, tc := range cases {
		if Dominates(tc.a, tc.b) && Dominates(tc.b, tc.a) {
			t.Errorf("%s: mutual domination", tc.name)
		}
	}
}

func TestParetoFrontierTies(t *testing.T) {
	cases := []struct {
		name string
		in   []Metrics
		want []Metrics
	}{
		{"empty", nil, nil},
		{"single", []Metrics{m(1, 1)}, []Metrics{m(1, 1)}},
		{
			"duplicate point collapses",
			[]Metrics{m(2, 2), m(2, 2), m(2, 2)},
			[]Metrics{m(2, 2)},
		},
		{
			"tie in cycles keeps the lower energy",
			[]Metrics{m(1, 5), m(1, 3), m(2, 2)},
			[]Metrics{m(1, 3), m(2, 2)},
		},
		{
			"tie in energy keeps the lower cycles",
			[]Metrics{m(3, 1), m(2, 1), m(1, 2)},
			[]Metrics{m(1, 2), m(2, 1)},
		},
		{
			"dominated interior removed",
			[]Metrics{m(1, 4), m(3, 3), m(2, 2), m(4, 1)},
			[]Metrics{m(1, 4), m(2, 2), m(4, 1)},
		},
		{
			"all tied", []Metrics{m(1, 1), m(1, 1)},
			[]Metrics{m(1, 1)},
		},
	}
	for _, tc := range cases {
		got := ParetoFrontier(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("%s: frontier %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i].Cycles != tc.want[i].Cycles || got[i].EnergyNJ != tc.want[i].EnergyNJ {
				t.Errorf("%s: frontier[%d] = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
		// Frontier invariants: no member dominates another, and every
		// input is dominated by or equal to some member.
		for i := range got {
			for j := range got {
				if i != j && Dominates(got[i], got[j]) {
					t.Errorf("%s: frontier member dominates another", tc.name)
				}
			}
		}
	}
}

func TestBoundSelectors(t *testing.T) {
	ms := []Metrics{
		{CacheSize: 64, Cycles: 100, EnergyNJ: 10},
		{CacheSize: 128, Cycles: 80, EnergyNJ: 20},
		{CacheSize: 256, Cycles: 60, EnergyNJ: 40},
	}

	got, ok := MinEnergyUnderCycleBound(ms, 90)
	if !ok || got.CacheSize != 128 {
		t.Errorf("MinEnergyUnderCycleBound(90) = %+v ok=%v, want the 128-byte point", got, ok)
	}
	if _, ok := MinEnergyUnderCycleBound(ms, 10); ok {
		t.Error("MinEnergyUnderCycleBound: impossible bound reported ok")
	}
	if got, ok := MinEnergyUnderCycleBound(ms, math.Inf(1)); !ok || got.CacheSize != 64 {
		t.Errorf("MinEnergyUnderCycleBound(+Inf) = %+v ok=%v, want global min energy", got, ok)
	}

	got, ok = MinCyclesUnderEnergyBound(ms, 25)
	if !ok || got.CacheSize != 128 {
		t.Errorf("MinCyclesUnderEnergyBound(25) = %+v ok=%v, want the 128-byte point", got, ok)
	}
	if _, ok := MinCyclesUnderEnergyBound(ms, 5); ok {
		t.Error("MinCyclesUnderEnergyBound: impossible bound reported ok")
	}
	if got, ok := MinCyclesUnderEnergyBound(ms, math.Inf(1)); !ok || got.CacheSize != 256 {
		t.Errorf("MinCyclesUnderEnergyBound(+Inf) = %+v ok=%v, want global min cycles", got, ok)
	}

	got, ok = MinSizeUnderBounds(ms, 90, 25)
	if !ok || got.CacheSize != 128 {
		t.Errorf("MinSizeUnderBounds(90, 25) = %+v ok=%v, want the 128-byte point", got, ok)
	}
	if got, ok := MinSizeUnderBounds(ms, math.Inf(1), math.Inf(1)); !ok || got.CacheSize != 64 {
		t.Errorf("MinSizeUnderBounds(+Inf, +Inf) = %+v ok=%v, want smallest cache", got, ok)
	}
	if _, ok := MinSizeUnderBounds(ms, 10, 5); ok {
		t.Error("MinSizeUnderBounds: impossible bounds reported ok")
	}
	if _, ok := MinSizeUnderBounds(nil, math.Inf(1), math.Inf(1)); ok {
		t.Error("MinSizeUnderBounds(empty) reported ok")
	}
	// Equal cache sizes break the tie by energy.
	tied := []Metrics{
		{CacheSize: 64, Cycles: 50, EnergyNJ: 9},
		{CacheSize: 64, Cycles: 40, EnergyNJ: 7},
	}
	if got, ok := MinSizeUnderBounds(tied, math.Inf(1), math.Inf(1)); !ok || got.EnergyNJ != 7 {
		t.Errorf("MinSizeUnderBounds tie-break = %+v ok=%v, want the 7 nJ point", got, ok)
	}

	if _, ok := MinEnergyUnderCycleBound(nil, math.Inf(1)); ok {
		t.Error("MinEnergyUnderCycleBound(empty) reported ok")
	}
	if _, ok := MinCyclesUnderEnergyBound(nil, math.Inf(1)); ok {
		t.Error("MinCyclesUnderEnergyBound(empty) reported ok")
	}
}
