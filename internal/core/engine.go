package core

import (
	"fmt"

	"memexplore/internal/cachesim"
)

// Engine selects the sweep execution engine. The zero value (EngineAuto)
// picks the fastest exact engine for the options: the inclusion-grouped
// single-pass engine where the policies allow it, with transparent
// fallback to the batched engine per configuration and to the per-point
// reference engine for classified sweeps. The other values force one
// engine — a debugging and benchmarking knob (results are bit-identical
// across engines, so there is no reason to force one in production).
type Engine int

const (
	// EngineAuto lets the sweep pick: inclusion groups where eligible,
	// batched fallback otherwise, per-point for classified sweeps.
	EngineAuto Engine = iota
	// EnginePerPoint forces the per-point reference engine (one full
	// trace pass per configuration point).
	EnginePerPoint
	// EngineBatched forces the workload-grouped batched engine without
	// inclusion grouping (one trace pass per workload, one cache model
	// per configuration).
	EngineBatched
	// EngineInclusion behaves like EngineAuto: inclusion grouping with
	// per-configuration fallback. It exists so "-engine inclusion" reads
	// naturally next to "per-point" and "batched".
	EngineInclusion
)

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EnginePerPoint:
		return "per-point"
	case EngineBatched:
		return "batched"
	case EngineInclusion:
		return "inclusion"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine parses a flag spelling ("auto", "per-point", "batched",
// "inclusion"; "" means auto).
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "per-point", "perpoint", "per_point":
		return EnginePerPoint, nil
	case "batched", "batch":
		return EngineBatched, nil
	case "inclusion":
		return EngineInclusion, nil
	}
	return EngineAuto, fmt.Errorf("core: unknown engine %q (want auto, per-point, batched or inclusion)", s)
}

// SweepPlan describes how a sweep's points partition into simulation pass
// units before any trace is generated: how many distinct workload traces
// will be walked, and how the configurations of each workload split into
// inclusion groups (one per-set LRU stack pass covering every
// associativity of a (line, sets) geometry) versus per-configuration
// batch fallbacks. The service and CLI surface it as the "configs per
// pass" amplification figure.
type SweepPlan struct {
	// Points is the number of sweep points (len(Space())).
	Points int
	// Workloads is the number of distinct trace-generation workloads —
	// the number of trace passes.
	Workloads int
	// InclusionGroups is the number of (workload, line, sets) groups
	// simulated by one shared LRU stack pass each.
	InclusionGroups int
	// InclusionConfigs is the number of points covered by those groups.
	InclusionConfigs int
	// FallbackConfigs is the number of points simulated individually
	// (ineligible policies, singleton geometries, or a forced engine).
	FallbackConfigs int
	// Shards, when the plan is for a chunked trace sweep (TraceSweepPlan),
	// is the pass-unit count of each simulation shard the pipelined engine
	// will run under the options' worker setting — the cost-balanced
	// partition of PassUnits() across workers. len(Shards) == 1 means the
	// sweep runs sequentially. Nil for kernel-sweep plans.
	Shards []int
}

// PassUnits is the number of independent simulation units a trace pass
// drives: one per inclusion group plus one per fallback configuration.
func (p SweepPlan) PassUnits() int { return p.InclusionGroups + p.FallbackConfigs }

// ConfigsPerPass is the amplification of the plan: sweep points per
// simulation pass unit (1.0 means no sharing).
func (p SweepPlan) ConfigsPerPass() float64 {
	u := p.PassUnits()
	if u == 0 {
		return 0
	}
	return float64(p.Points) / float64(u)
}

// inclusionEligible reports whether the options' cache policies admit
// inclusion grouping at all: the per-set LRU stack model covers exactly
// the simulator's default policy corner (LRU, write-allocate, no victim
// buffer; write-back and write-through both — the write policy never
// changes residency).
func (o Options) inclusionEligible() bool {
	return o.Replacement == cachesim.LRU && !o.NoWriteAllocate && o.VictimLines == 0
}

// Plan computes the sweep's pass partition without running it, mirroring
// the grouping the engines perform: points group by workload (one trace
// pass each), and within a workload by (line, sets) geometry; geometries
// with at least two eligible configurations form inclusion groups, the
// rest fall back to per-configuration simulation.
func (o Options) Plan() SweepPlan {
	points := o.Space()
	plan := SweepPlan{Points: len(points)}
	if o.Classify || o.Engine == EnginePerPoint {
		// The per-point reference engine generates (or re-reads) the
		// workload trace once per point.
		plan.Workloads = len(points)
		plan.FallbackConfigs = len(points)
		return plan
	}
	groups := groupWorkloads(o, points)
	plan.Workloads = len(groups)
	useInclusion := o.Engine != EngineBatched && o.inclusionEligible()
	type geom struct{ line, sets int }
	for _, g := range groups {
		if !useInclusion {
			plan.FallbackConfigs += len(g.indices)
			continue
		}
		counts := make(map[geom]int)
		for _, pi := range g.indices {
			p := points[pi]
			counts[geom{p.LineSize, p.CacheSize / (p.LineSize * p.Assoc)}]++
		}
		for _, n := range counts {
			if n >= 2 {
				plan.InclusionGroups++
				plan.InclusionConfigs += n
			} else {
				plan.FallbackConfigs += n
			}
		}
	}
	return plan
}

// TraceSweepPlan is Plan for an external-trace sweep: the options are
// first restricted to what a recorded trace can vary (see
// ExploreTraceReader). The plan always has exactly one workload — the
// stream is read once.
func TraceSweepPlan(opts Options) (SweepPlan, error) {
	opts, err := traceSpace(opts)
	if err != nil {
		return SweepPlan{}, err
	}
	plan := opts.Plan()
	plan.Workloads = 1
	// Report the shard partition the pipelined engine will use, via the
	// cachesim planning mirror (pinned against the built sweep by test).
	points := opts.Space()
	cfgs := make([]cachesim.Config, len(points))
	for i, p := range points {
		cfgs[i] = opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc)
	}
	useInclusion := opts.Engine != EngineBatched && opts.inclusionEligible()
	shards, err := cachesim.ShardUnits(cfgs, useInclusion, opts.effectiveWorkers())
	if err != nil {
		return SweepPlan{}, fmt.Errorf("core: planning trace-sweep shards: %w", err)
	}
	plan.Shards = shards
	return plan, nil
}
