// Package core implements the paper's MemExplore algorithm (§1):
//
//	for on-chip memory size M (powers of 2)
//	  for cache size T ≤ M (powers of 2)
//	    for line size L < T (powers of 2)
//	      for set associativity S ≤ 8 (powers of 2)
//	        for tiling size B ≤ T/L (powers of 2)
//	          estimate miss rate, cycles C and energy E
//	select (T, L, S, B) that maximizes performance
//
// Estimation is by exact trace-driven simulation of the kernel (not the
// paper's closed forms — see DESIGN.md): the kernel is tiled (§4.2), its
// arrays are placed by the §4.1 off-chip assignment (or sequentially for
// the unoptimized baseline), the resulting reference trace is run through
// the cache simulator, and the §2.2 cycle and §2.3 energy models score the
// outcome. Selection helpers implement the paper's bounded queries —
// minimum-energy configuration under a cycle bound and vice versa — and
// the §5 trip-count-weighted aggregation for multi-kernel programs.
package core

import (
	"fmt"
	"sort"

	"memexplore/internal/bus"
	"memexplore/internal/cachesim"
	"memexplore/internal/cycles"
	"memexplore/internal/energy"
	"memexplore/internal/layout"
	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

// Metrics is the outcome of evaluating one kernel under one configuration.
type Metrics struct {
	// CacheSize, LineSize, Assoc, Tiling identify the configuration — the
	// paper's (T, L, S, B).
	CacheSize int
	LineSize  int
	Assoc     int
	Tiling    int
	// Optimized reports whether the §4.1 off-chip assignment was applied.
	Optimized bool

	// Accesses, Hits, Misses are absolute counts from the simulator;
	// MissRate is Misses/Accesses (per-reference accounting).
	Accesses uint64
	Hits     uint64
	Misses   uint64
	MissRate float64
	// ConflictMisses is filled only when Options.Classify is set.
	ConflictMisses uint64

	// Cycles is the §2.2 processor-cycle estimate.
	Cycles float64
	// EnergyNJ is the §2.3 energy estimate in nanojoules.
	EnergyNJ float64
	// Energy is the per-component decomposition of EnergyNJ.
	Energy EnergyBreakdown
	// AddBS is the measured Gray-code address-bus switching per access.
	AddBS float64
}

// EnergyBreakdown splits the total energy into the §2.3 components, in
// nanojoules: the address-decoding path, the cell arrays, the I/O pads,
// and main-memory accesses — plus the optional extension terms
// (static leakage and write-back traffic), which are zero under the
// paper's defaults.
type EnergyBreakdown struct {
	DecNJ   float64
	CellNJ  float64
	IONJ    float64
	MainNJ  float64
	LeakNJ  float64
	WriteNJ float64
}

// Total returns the summed components.
func (b EnergyBreakdown) Total() float64 {
	return b.DecNJ + b.CellNJ + b.IONJ + b.MainNJ + b.LeakNJ + b.WriteNJ
}

// add accumulates o scaled by w.
func (b *EnergyBreakdown) add(o EnergyBreakdown, w float64) {
	b.DecNJ += o.DecNJ * w
	b.CellNJ += o.CellNJ * w
	b.IONJ += o.IONJ * w
	b.MainNJ += o.MainNJ * w
	b.LeakNJ += o.LeakNJ * w
	b.WriteNJ += o.WriteNJ * w
}

// EDP returns the energy–delay product (nJ·cycles), a common derived
// objective for low-power design; selection by EDP is provided by MinEDP.
func (m Metrics) EDP() float64 { return m.EnergyNJ * m.Cycles }

// Config returns the cache configuration of the metrics.
func (m Metrics) Config() cachesim.Config {
	return cachesim.DefaultConfig(m.CacheSize, m.LineSize, m.Assoc)
}

// Label renders the configuration in the paper's style, e.g.
// "C64L8S2B4".
func (m Metrics) Label() string {
	return fmt.Sprintf("C%dL%dS%dB%d", m.CacheSize, m.LineSize, m.Assoc, m.Tiling)
}

// Options parameterizes an exploration sweep. The zero value is not
// useful; start from DefaultOptions.
type Options struct {
	// CacheSizes are the candidate T values in bytes (powers of two).
	CacheSizes []int
	// LineSizes are the candidate L values in bytes (powers of two; only
	// values with §2.2 miss-penalty entries are legal).
	LineSizes []int
	// Assocs are the candidate S values (1, 2, 4, 8).
	Assocs []int
	// Tilings are the candidate B values; each is additionally capped at
	// T/L during the sweep, per the algorithm.
	Tilings []int
	// MaxOnChip is M, the on-chip memory bound: configurations with
	// T > MaxOnChip are skipped. Zero means no bound.
	MaxOnChip int
	// OptimizeLayout applies the §4.1 off-chip assignment; when false the
	// arrays are packed sequentially (the "unoptimized" columns of
	// Figures 5 and 9).
	OptimizeLayout bool
	// Energy supplies the §2.3 coefficients and the main-memory part.
	Energy energy.Params
	// Classify enables 3C miss classification (slower; fills
	// ConflictMisses).
	Classify bool
	// Replacement overrides the within-set victim policy (default LRU,
	// the paper's implicit choice).
	Replacement cachesim.Replacement
	// WriteThrough switches the cache from write-back (the default) to
	// write-through.
	WriteThrough bool
	// NoWriteAllocate disables allocation on write misses.
	NoWriteAllocate bool
	// VictimLines attaches a fully associative victim buffer of that many
	// lines to every simulated cache (0 = none; an extension knob — the
	// ext-victim exhibit compares it against the §4.1 layout).
	VictimLines int
}

// cacheConfig builds the simulator configuration for a sweep point under
// the options' policies.
func (o Options) cacheConfig(size, line, assoc int) cachesim.Config {
	cfg := cachesim.DefaultConfig(size, line, assoc)
	cfg.Replacement = o.Replacement
	cfg.WriteBack = !o.WriteThrough
	cfg.WriteAllocate = !o.NoWriteAllocate
	cfg.VictimLines = o.VictimLines
	return cfg
}

// DefaultOptions returns the paper's sweep: T ∈ 16..1024, L ∈ 4..64,
// S ∈ {1,2,4,8}, B ∈ {1..16}, optimized layout, Cypress CY7C main memory.
func DefaultOptions() Options {
	return Options{
		CacheSizes:     []int{16, 32, 64, 128, 256, 512, 1024},
		LineSizes:      []int{4, 8, 16, 32, 64},
		Assocs:         []int{1, 2, 4, 8},
		Tilings:        []int{1, 2, 4, 8, 16},
		OptimizeLayout: true,
		Energy:         energy.DefaultParams(energy.CypressCY7C()),
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if len(o.CacheSizes) == 0 || len(o.LineSizes) == 0 || len(o.Assocs) == 0 || len(o.Tilings) == 0 {
		return fmt.Errorf("core: options must list at least one cache size, line size, associativity and tiling")
	}
	for _, l := range o.LineSizes {
		if _, err := cycles.CyclesPerMiss(l); err != nil {
			return fmt.Errorf("core: line size %d has no cycle-model entry: %w", l, err)
		}
	}
	for _, b := range o.Tilings {
		if b < 1 {
			return fmt.Errorf("core: tiling size %d must be ≥ 1", b)
		}
	}
	if o.VictimLines < 0 {
		return fmt.Errorf("core: negative victim buffer size %d", o.VictimLines)
	}
	return o.Energy.Validate()
}

// Explorer evaluates configurations for one kernel, caching generated
// traces (and their measured bus activity) across a sweep. A trace depends
// only on the tiling and the layout; sequential layouts are shared across
// all cache geometries, while optimized layouts are keyed by (L, sets).
type Explorer struct {
	nest *loopir.Nest
	opts Options

	tiled  map[int]*loopir.Nest
	traces map[traceKey]*tracedWorkload
}

type traceKey struct {
	tiling    int
	optimized bool
	lineBytes int // zero for sequential layouts
	sets      int // zero for sequential layouts
}

type tracedWorkload struct {
	tr    *trace.Trace
	addBS float64
}

// NewExplorer builds an explorer for one kernel.
func NewExplorer(n *loopir.Nest, opts Options) (*Explorer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &Explorer{
		nest:   n,
		opts:   opts,
		tiled:  map[int]*loopir.Nest{},
		traces: map[traceKey]*tracedWorkload{},
	}, nil
}

// Nest returns the kernel being explored.
func (e *Explorer) Nest() *loopir.Nest { return e.nest }

func (e *Explorer) tiledNest(b int) (*loopir.Nest, error) {
	if n, ok := e.tiled[b]; ok {
		return n, nil
	}
	n, err := loopir.TileAll(e.nest, b)
	if err != nil {
		return nil, err
	}
	e.tiled[b] = n
	return n, nil
}

func (e *Explorer) workload(tiling int, cfg cachesim.Config) (*tracedWorkload, error) {
	// The §4.1 assignment targets the direct-mapped mapping of the (T, L)
	// geometry — T/L sets — independent of S: associativity only merges
	// sets and can absorb residual overlaps, and keeping the layout fixed
	// across S isolates associativity's effect in the sweep.
	key := traceKey{tiling: tiling, optimized: e.opts.OptimizeLayout}
	if e.opts.OptimizeLayout {
		key.lineBytes = cfg.LineBytes
		key.sets = cfg.NumLines()
	}
	if w, ok := e.traces[key]; ok {
		return w, nil
	}
	n, err := e.tiledNest(tiling)
	if err != nil {
		return nil, err
	}
	var lay loopir.Layout
	if e.opts.OptimizeLayout {
		plan, err := layout.Optimize(n, cfg.LineBytes, cfg.NumLines())
		if err != nil {
			return nil, err
		}
		lay = plan.Layout
	} else {
		lay = loopir.SequentialLayout(n, 0)
	}
	tr, err := n.Generate(lay)
	if err != nil {
		return nil, err
	}
	w := &tracedWorkload{
		tr:    tr,
		addBS: bus.MeasureTrace(tr, bus.Gray).AddBS(),
	}
	e.traces[key] = w
	return w, nil
}

// Evaluate scores one (T, L, S, B) configuration.
func (e *Explorer) Evaluate(cfg cachesim.Config, tiling int) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	w, err := e.workload(tiling, cfg)
	if err != nil {
		return Metrics{}, err
	}
	var st cachesim.Stats
	if e.opts.Classify {
		st, err = cachesim.RunTrace(cfg, w.tr)
	} else {
		st, err = cachesim.RunTraceFast(cfg, w.tr)
	}
	if err != nil {
		return Metrics{}, err
	}
	m, err := scoreStats(cfg, tiling, e.opts.Energy, st, w.addBS)
	if err != nil {
		return Metrics{}, err
	}
	m.Optimized = e.opts.OptimizeLayout
	return m, nil
}

// scoreStats turns simulator statistics into Metrics under the §2.2 cycle
// model and the §2.3 energy model.
func scoreStats(cfg cachesim.Config, tiling int, p energy.Params, st cachesim.Stats, addBS float64) (Metrics, error) {
	cyc, err := cycles.Count(cycles.Params{
		Assoc:      cfg.Assoc,
		LineBytes:  cfg.LineBytes,
		TilingSize: tiling,
	}, st.Hits, st.Misses)
	if err != nil {
		return Metrics{}, err
	}
	ba, err := energy.PerAccess(p, cfg, addBS)
	if err != nil {
		return Metrics{}, err
	}
	hits, misses := float64(st.Hits), float64(st.Misses)
	breakdown := EnergyBreakdown{
		DecNJ:  (hits + misses) * ba.EDec,
		CellNJ: (hits + misses) * ba.ECell,
		IONJ:   misses * ba.EIO,
		MainNJ: misses * ba.EMain,
	}
	if p.LeakNJPerCycleKB > 0 {
		breakdown.LeakNJ = p.LeakNJPerCycleKB * float64(cfg.SizeBytes) / 1024 * cyc
	}
	if p.CountWriteTraffic {
		breakdown.WriteNJ = float64(st.WriteBacks+st.WriteThroughs) * (ba.EIO + ba.EMain)
	}
	return Metrics{
		CacheSize:      cfg.SizeBytes,
		LineSize:       cfg.LineBytes,
		Assoc:          cfg.Assoc,
		Tiling:         tiling,
		Accesses:       st.Accesses,
		Hits:           st.Hits,
		Misses:         st.Misses,
		MissRate:       st.MissRate(),
		ConflictMisses: st.ConflictMisses,
		Cycles:         cyc,
		EnergyNJ:       breakdown.Total(),
		Energy:         breakdown,
		AddBS:          addBS,
	}, nil
}

// EvaluateTrace scores an arbitrary pre-generated trace under one cache
// configuration, with 3C classification when classify is set. It is the
// building block for compositions the sweep does not cover (e.g. warm
// multi-kernel pipelines).
func EvaluateTrace(tr *trace.Trace, cfg cachesim.Config, tiling int, p energy.Params, classify bool) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	var (
		st  cachesim.Stats
		err error
	)
	if classify {
		st, err = cachesim.RunTrace(cfg, tr)
	} else {
		st, err = cachesim.RunTraceFast(cfg, tr)
	}
	if err != nil {
		return Metrics{}, err
	}
	addBS := bus.MeasureTrace(tr, bus.Gray).AddBS()
	return scoreStats(cfg, tiling, p, st, addBS)
}

// Space enumerates the legal (T, L, S, B) combinations of the options in
// deterministic order.
func (o Options) Space() []ConfigPoint {
	var out []ConfigPoint
	sizes := append([]int(nil), o.CacheSizes...)
	lines := append([]int(nil), o.LineSizes...)
	assocs := append([]int(nil), o.Assocs...)
	tilings := append([]int(nil), o.Tilings...)
	sort.Ints(sizes)
	sort.Ints(lines)
	sort.Ints(assocs)
	sort.Ints(tilings)
	for _, t := range sizes {
		if o.MaxOnChip > 0 && t > o.MaxOnChip {
			continue
		}
		for _, l := range lines {
			if l >= t { // the paper requires L < T
				continue
			}
			for _, s := range assocs {
				if s > t/l {
					continue
				}
				for _, b := range tilings {
					if b > t/l {
						continue
					}
					out = append(out, ConfigPoint{CacheSize: t, LineSize: l, Assoc: s, Tiling: b})
				}
			}
		}
	}
	return out
}

// ConfigPoint is one point of the exploration space.
type ConfigPoint struct {
	CacheSize int
	LineSize  int
	Assoc     int
	Tiling    int
}

// Config returns the cache configuration of the point.
func (p ConfigPoint) Config() cachesim.Config {
	return cachesim.DefaultConfig(p.CacheSize, p.LineSize, p.Assoc)
}

// Explore runs the full MemExplore sweep for a kernel and returns one
// Metrics per legal configuration, in deterministic order.
func Explore(n *loopir.Nest, opts Options) ([]Metrics, error) {
	e, err := NewExplorer(n, opts)
	if err != nil {
		return nil, err
	}
	points := opts.Space()
	out := make([]Metrics, 0, len(points))
	for _, p := range points {
		m, err := e.Evaluate(opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc), p.Tiling)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s/%v: %w", n.Name, p, err)
		}
		out = append(out, m)
	}
	return out, nil
}
