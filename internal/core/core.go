// Package core implements the paper's MemExplore algorithm (§1):
//
//	for on-chip memory size M (powers of 2)
//	  for cache size T ≤ M (powers of 2)
//	    for line size L < T (powers of 2)
//	      for set associativity S ≤ 8 (powers of 2)
//	        for tiling size B ≤ T/L (powers of 2)
//	          estimate miss rate, cycles C and energy E
//	select (T, L, S, B) that maximizes performance
//
// Estimation is by exact trace-driven simulation of the kernel (not the
// paper's closed forms — see DESIGN.md): the kernel is tiled (§4.2), its
// arrays are placed by the §4.1 off-chip assignment (or sequentially for
// the unoptimized baseline), the resulting reference trace is run through
// the cache simulator, and the §2.2 cycle and §2.3 energy models score the
// outcome. Selection helpers implement the paper's bounded queries —
// minimum-energy configuration under a cycle bound and vice versa — and
// the §5 trip-count-weighted aggregation for multi-kernel programs.
package core

import (
	"context"
	"fmt"
	"sort"

	"memexplore/internal/bus"
	"memexplore/internal/cachesim"
	"memexplore/internal/cycles"
	"memexplore/internal/energy"
	"memexplore/internal/layout"
	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

// Metrics is the outcome of evaluating one kernel under one configuration.
// The JSON tags are the wire form served by cmd/memexplored and written by
// cmd/memexplore -json; they are stable API.
type Metrics struct {
	// CacheSize, LineSize, Assoc, Tiling identify the configuration — the
	// paper's (T, L, S, B).
	CacheSize int `json:"cache_size"`
	LineSize  int `json:"line_size"`
	Assoc     int `json:"assoc"`
	Tiling    int `json:"tiling"`
	// Optimized reports whether the §4.1 off-chip assignment was applied.
	Optimized bool `json:"optimized"`

	// Accesses, Hits, Misses are absolute counts from the simulator;
	// MissRate is Misses/Accesses (per-reference accounting).
	Accesses uint64  `json:"accesses"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	MissRate float64 `json:"miss_rate"`
	// ConflictMisses is filled only when Options.Classify is set.
	ConflictMisses uint64 `json:"conflict_misses,omitempty"`

	// Cycles is the §2.2 processor-cycle estimate.
	Cycles float64 `json:"cycles"`
	// EnergyNJ is the §2.3 energy estimate in nanojoules.
	EnergyNJ float64 `json:"energy_nj"`
	// Energy is the per-component decomposition of EnergyNJ.
	Energy EnergyBreakdown `json:"energy_breakdown"`
	// AddBS is the measured Gray-code address-bus switching per access.
	AddBS float64 `json:"add_bs"`

	// SampleRate, SampledRecords, MissRateCI and SkippedShare form the
	// estimation envelope of a sampled external-trace sweep (see
	// Options.SampleRate and Options.DominantEps): the configured spatial
	// sampling rate, the records actually simulated, the half-width of
	// the 95% confidence interval on MissRate due to sampling, and the
	// share of the sampled stream skipped as dominant-filter cold (each
	// skipped reference counted as a hit). All four are zero — and absent
	// from the JSON form — for exact sweeps, so exact results are
	// byte-identical to previous releases.
	SampleRate     float64 `json:"sample_rate,omitempty"`
	SampledRecords int64   `json:"sampled_records,omitempty"`
	MissRateCI     float64 `json:"miss_rate_ci,omitempty"`
	SkippedShare   float64 `json:"skipped_share,omitempty"`
}

// EnergyBreakdown splits the total energy into the §2.3 components, in
// nanojoules: the address-decoding path, the cell arrays, the I/O pads,
// and main-memory accesses — plus the optional extension terms
// (static leakage and write-back traffic), which are zero under the
// paper's defaults.
type EnergyBreakdown struct {
	DecNJ   float64 `json:"dec_nj"`
	CellNJ  float64 `json:"cell_nj"`
	IONJ    float64 `json:"io_nj"`
	MainNJ  float64 `json:"main_nj"`
	LeakNJ  float64 `json:"leak_nj,omitempty"`
	WriteNJ float64 `json:"write_nj,omitempty"`
}

// Total returns the summed components.
func (b EnergyBreakdown) Total() float64 {
	return b.DecNJ + b.CellNJ + b.IONJ + b.MainNJ + b.LeakNJ + b.WriteNJ
}

// add accumulates o scaled by w.
func (b *EnergyBreakdown) add(o EnergyBreakdown, w float64) {
	b.DecNJ += o.DecNJ * w
	b.CellNJ += o.CellNJ * w
	b.IONJ += o.IONJ * w
	b.MainNJ += o.MainNJ * w
	b.LeakNJ += o.LeakNJ * w
	b.WriteNJ += o.WriteNJ * w
}

// EDP returns the energy–delay product (nJ·cycles), a common derived
// objective for low-power design; selection by EDP is provided by MinEDP.
func (m Metrics) EDP() float64 { return m.EnergyNJ * m.Cycles }

// Config returns the cache configuration of the metrics.
func (m Metrics) Config() cachesim.Config {
	return cachesim.DefaultConfig(m.CacheSize, m.LineSize, m.Assoc)
}

// Label renders the configuration in the paper's style, e.g.
// "C64L8S2B4".
func (m Metrics) Label() string {
	return fmt.Sprintf("C%dL%dS%dB%d", m.CacheSize, m.LineSize, m.Assoc, m.Tiling)
}

// Options parameterizes an exploration sweep. The zero value is not
// useful; start from DefaultOptions, or call Normalize to fill defaults.
// The JSON tags are the wire form accepted by cmd/memexplored; they are
// stable API.
type Options struct {
	// CacheSizes are the candidate T values in bytes (powers of two).
	CacheSizes []int `json:"cache_sizes"`
	// LineSizes are the candidate L values in bytes (powers of two; only
	// values with §2.2 miss-penalty entries are legal).
	LineSizes []int `json:"line_sizes"`
	// Assocs are the candidate S values (1, 2, 4, 8).
	Assocs []int `json:"assocs"`
	// Tilings are the candidate B values; each is additionally capped at
	// T/L during the sweep, per the algorithm.
	Tilings []int `json:"tilings"`
	// MaxOnChip is M, the on-chip memory bound: configurations with
	// T > MaxOnChip are skipped. Zero means no bound.
	MaxOnChip int `json:"max_on_chip,omitempty"`
	// OptimizeLayout applies the §4.1 off-chip assignment; when false the
	// arrays are packed sequentially (the "unoptimized" columns of
	// Figures 5 and 9).
	OptimizeLayout bool `json:"optimize_layout"`
	// Energy supplies the §2.3 coefficients and the main-memory part.
	Energy energy.Params `json:"energy"`
	// Classify enables 3C miss classification (slower; fills
	// ConflictMisses).
	Classify bool `json:"classify,omitempty"`
	// Replacement overrides the within-set victim policy (default LRU,
	// the paper's implicit choice).
	Replacement cachesim.Replacement `json:"replacement,omitempty"`
	// WriteThrough switches the cache from write-back (the default) to
	// write-through.
	WriteThrough bool `json:"write_through,omitempty"`
	// NoWriteAllocate disables allocation on write misses.
	NoWriteAllocate bool `json:"no_write_allocate,omitempty"`
	// VictimLines attaches a fully associative victim buffer of that many
	// lines to every simulated cache (0 = none; an extension knob — the
	// ext-victim exhibit compares it against the §4.1 layout).
	VictimLines int `json:"victim_lines,omitempty"`
	// SampleRate, when in (0, 1), turns on SHARDS-style spatial sampling
	// for external-trace sweeps: a seeded hash threshold over block
	// addresses keeps a deterministic ~SampleRate fraction of the address
	// space, counts are rescaled, and each Metrics carries the estimation
	// envelope (SampledRecords, MissRateCI). 0 or 1 is exact. Unlike
	// Engine and Workers, sampling changes results, so these fields ARE
	// part of the wire form and the cache key. Kernel sweeps reject it:
	// generated traces are cheap to produce exactly.
	SampleRate float64 `json:"sample_rate,omitempty"`
	// SampleSeed seeds the sampling hash; distinct seeds draw distinct
	// spatial samples. Meaningful only with SampleRate set.
	SampleSeed uint64 `json:"sample_seed,omitempty"`
	// DominantEps, when in (0, 0.5], turns on dominant-block
	// prefiltering for external-trace sweeps: a cheap first pass finds
	// the block granules carrying ≥ (1−ε) of the stream's granule
	// transitions, and the sweep skips (counts as hits) references
	// outside them, trading ≤ ~ε of the miss mass for speed. Needs a
	// seekable trace source. Like SampleRate it is part of the wire form
	// and the cache key.
	DominantEps float64 `json:"dominant_eps,omitempty"`
	// Engine forces a sweep execution engine (default auto). Results are
	// bit-identical across engines, so the choice is not part of the wire
	// form or the cache key — it is a local debugging/benchmarking knob.
	Engine Engine `json:"-"`
	// Workers is the simulation worker count for chunked sweeps: the
	// sweep's pass units are partitioned into that many cost-balanced
	// shards, each advanced by its own goroutine with a barrier per
	// chunk. 0 means GOMAXPROCS; 1 selects the exact sequential engine.
	// Like Engine, results are bit-identical at any value, so Workers is
	// not part of the wire form or the cache key.
	Workers int `json:"-"`
}

// cacheConfig builds the simulator configuration for a sweep point under
// the options' policies.
func (o Options) cacheConfig(size, line, assoc int) cachesim.Config {
	cfg := cachesim.DefaultConfig(size, line, assoc)
	cfg.Replacement = o.Replacement
	cfg.WriteBack = !o.WriteThrough
	cfg.WriteAllocate = !o.NoWriteAllocate
	cfg.VictimLines = o.VictimLines
	return cfg
}

// DefaultOptions returns the paper's sweep: T ∈ 16..1024, L ∈ 4..64,
// S ∈ {1,2,4,8}, B ∈ {1..16}, optimized layout, Cypress CY7C main memory.
func DefaultOptions() Options {
	return Options{
		CacheSizes:     []int{16, 32, 64, 128, 256, 512, 1024},
		LineSizes:      []int{4, 8, 16, 32, 64},
		Assocs:         []int{1, 2, 4, 8},
		Tilings:        []int{1, 2, 4, 8, 16},
		OptimizeLayout: true,
		Energy:         energy.DefaultParams(energy.CypressCY7C()),
	}
}

// Validate checks the options. Structural problems are reported as
// *ErrInvalidOptions with the offending wire field named.
func (o Options) Validate() error {
	for _, c := range []struct {
		field string
		vals  []int
	}{
		{"cache_sizes", o.CacheSizes},
		{"line_sizes", o.LineSizes},
		{"assocs", o.Assocs},
		{"tilings", o.Tilings},
	} {
		if len(c.vals) == 0 {
			return invalidOptions(c.field, "must list at least one candidate")
		}
	}
	for _, l := range o.LineSizes {
		if _, err := cycles.CyclesPerMiss(l); err != nil {
			return invalidOptions("line_sizes", "line size %d has no cycle-model entry: %v", l, err)
		}
	}
	for _, b := range o.Tilings {
		if b < 1 {
			return invalidOptions("tilings", "tiling size %d must be ≥ 1", b)
		}
	}
	if o.VictimLines < 0 {
		return invalidOptions("victim_lines", "negative victim buffer size %d", o.VictimLines)
	}
	if o.SampleRate < 0 || o.SampleRate > 1 || (o.SampleRate != o.SampleRate) {
		return invalidOptions("sample_rate", "sampling rate %g must be in [0, 1]", o.SampleRate)
	}
	if o.DominantEps < 0 || o.DominantEps > 0.5 || (o.DominantEps != o.DominantEps) {
		return invalidOptions("dominant_eps", "dominant-block epsilon %g must be in [0, 0.5]", o.DominantEps)
	}
	if err := o.Energy.Validate(); err != nil {
		return invalidOptions("energy", "%v", err)
	}
	return nil
}

// Normalize returns a canonical copy of the options: empty candidate
// lists and a zero Energy are filled from DefaultOptions, and every
// candidate list is sorted ascending with duplicates removed. Two Options
// values that describe the same sweep normalize to identical structs, so
// the normalized form (and its JSON encoding) is a sound cache key — the
// service layer relies on this. Normalize does not validate; an absurd
// but non-empty list survives it and is caught by Validate.
func (o Options) Normalize() Options {
	d := DefaultOptions()
	norm := func(vals, def []int) []int {
		if len(vals) == 0 {
			return def
		}
		out := append([]int(nil), vals...)
		sort.Ints(out)
		w := 1
		for i := 1; i < len(out); i++ {
			if out[i] != out[w-1] {
				out[w] = out[i]
				w++
			}
		}
		return out[:w]
	}
	o.CacheSizes = norm(o.CacheSizes, d.CacheSizes)
	o.LineSizes = norm(o.LineSizes, d.LineSizes)
	o.Assocs = norm(o.Assocs, d.Assocs)
	o.Tilings = norm(o.Tilings, d.Tilings)
	if o.Energy == (energy.Params{}) {
		o.Energy = d.Energy
	}
	// A rate of 1 is the exact sweep; canonicalize it to 0 so both
	// spellings share one cache key. Without sampling the seed is inert —
	// zero it for the same reason.
	if o.SampleRate == 1 {
		o.SampleRate = 0
	}
	if o.SampleRate == 0 {
		o.SampleSeed = 0
	}
	return o
}

// rejectSampling refuses the trace-only thinning knobs for kernel
// sweeps, whose traces are generated and therefore cheap to run exactly.
func (o Options) rejectSampling() error {
	if o.SampleRate != 0 {
		return invalidOptions("sample_rate", "trace sampling applies only to external-trace sweeps")
	}
	if o.DominantEps != 0 {
		return invalidOptions("dominant_eps", "dominant-block prefiltering applies only to external-trace sweeps")
	}
	return nil
}

// Explorer evaluates configurations for one kernel, caching generated
// traces (and their measured bus activity) across a sweep. A trace depends
// only on the tiling and the layout; sequential layouts are shared across
// all cache geometries, while optimized layouts are keyed by (L, sets).
type Explorer struct {
	nest *loopir.Nest
	opts Options

	tiled  map[int]*loopir.Nest
	traces map[traceKey]*tracedWorkload
}

type traceKey struct {
	tiling    int
	optimized bool
	lineBytes int // zero for sequential layouts
	sets      int // zero for sequential layouts
}

type tracedWorkload struct {
	tr    *trace.Trace
	addBS float64
}

// NewExplorer builds an explorer for one kernel.
func NewExplorer(n *loopir.Nest, opts Options) (*Explorer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &Explorer{
		nest:   n,
		opts:   opts,
		tiled:  map[int]*loopir.Nest{},
		traces: map[traceKey]*tracedWorkload{},
	}, nil
}

// Nest returns the kernel being explored.
func (e *Explorer) Nest() *loopir.Nest { return e.nest }

func (e *Explorer) tiledNest(b int) (*loopir.Nest, error) {
	if n, ok := e.tiled[b]; ok {
		return n, nil
	}
	n, err := loopir.TileAll(e.nest, b)
	if err != nil {
		return nil, err
	}
	e.tiled[b] = n
	return n, nil
}

func (e *Explorer) workload(tiling int, cfg cachesim.Config) (*tracedWorkload, error) {
	// The §4.1 assignment targets the direct-mapped mapping of the (T, L)
	// geometry — T/L sets — independent of S: associativity only merges
	// sets and can absorb residual overlaps, and keeping the layout fixed
	// across S isolates associativity's effect in the sweep.
	key := traceKey{tiling: tiling, optimized: e.opts.OptimizeLayout}
	if e.opts.OptimizeLayout {
		key.lineBytes = cfg.LineBytes
		key.sets = cfg.NumLines()
	}
	if w, ok := e.traces[key]; ok {
		return w, nil
	}
	n, err := e.tiledNest(tiling)
	if err != nil {
		return nil, err
	}
	var lay loopir.Layout
	if e.opts.OptimizeLayout {
		plan, err := layout.Optimize(n, cfg.LineBytes, cfg.NumLines())
		if err != nil {
			return nil, err
		}
		lay = plan.Layout
	} else {
		lay = loopir.SequentialLayout(n, 0)
	}
	tr, err := n.Generate(lay)
	if err != nil {
		return nil, err
	}
	w := &tracedWorkload{
		tr:    tr,
		addBS: bus.MeasureTrace(tr, bus.Gray).AddBS(),
	}
	e.traces[key] = w
	return w, nil
}

// Evaluate scores one (T, L, S, B) configuration.
func (e *Explorer) Evaluate(cfg cachesim.Config, tiling int) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	w, err := e.workload(tiling, cfg)
	if err != nil {
		return Metrics{}, err
	}
	var st cachesim.Stats
	if e.opts.Classify {
		st, err = cachesim.RunTrace(cfg, w.tr)
	} else {
		st, err = cachesim.RunTraceFast(cfg, w.tr)
	}
	if err != nil {
		return Metrics{}, err
	}
	m, err := scoreStats(cfg, tiling, e.opts.Energy, st, w.addBS)
	if err != nil {
		return Metrics{}, err
	}
	m.Optimized = e.opts.OptimizeLayout
	return m, nil
}

// scoreStats turns simulator statistics into Metrics under the §2.2 cycle
// model and the §2.3 energy model.
func scoreStats(cfg cachesim.Config, tiling int, p energy.Params, st cachesim.Stats, addBS float64) (Metrics, error) {
	cyc, err := cycles.Count(cycles.Params{
		Assoc:      cfg.Assoc,
		LineBytes:  cfg.LineBytes,
		TilingSize: tiling,
	}, st.Hits, st.Misses)
	if err != nil {
		return Metrics{}, err
	}
	ba, err := energy.PerAccess(p, cfg, addBS)
	if err != nil {
		return Metrics{}, err
	}
	hits, misses := float64(st.Hits), float64(st.Misses)
	breakdown := EnergyBreakdown{
		DecNJ:  (hits + misses) * ba.EDec,
		CellNJ: (hits + misses) * ba.ECell,
		IONJ:   misses * ba.EIO,
		MainNJ: misses * ba.EMain,
	}
	if p.LeakNJPerCycleKB > 0 {
		breakdown.LeakNJ = p.LeakNJPerCycleKB * float64(cfg.SizeBytes) / 1024 * cyc
	}
	if p.CountWriteTraffic {
		breakdown.WriteNJ = float64(st.WriteBacks+st.WriteThroughs) * (ba.EIO + ba.EMain)
	}
	return Metrics{
		CacheSize:      cfg.SizeBytes,
		LineSize:       cfg.LineBytes,
		Assoc:          cfg.Assoc,
		Tiling:         tiling,
		Accesses:       st.Accesses,
		Hits:           st.Hits,
		Misses:         st.Misses,
		MissRate:       st.MissRate(),
		ConflictMisses: st.ConflictMisses,
		Cycles:         cyc,
		EnergyNJ:       breakdown.Total(),
		Energy:         breakdown,
		AddBS:          addBS,
	}, nil
}

// EvaluateTrace scores an arbitrary pre-generated trace under one cache
// configuration, with 3C classification when classify is set. It is the
// building block for compositions the sweep does not cover (e.g. warm
// multi-kernel pipelines). It re-measures the trace's bus activity on
// every call; when scoring one trace under many configurations, measure
// once with TraceAddBS and use EvaluateTraceMeasured instead.
func EvaluateTrace(tr *trace.Trace, cfg cachesim.Config, tiling int, p energy.Params, classify bool) (Metrics, error) {
	return EvaluateTraceMeasured(tr, TraceAddBS(tr), cfg, tiling, p, classify)
}

// TraceAddBS measures the Gray-coded address-bus switching per access of
// a trace — the Add_bs input of the §2.3 energy model and of
// EvaluateTraceMeasured. The value depends only on the trace, so callers
// scoring one trace under many configurations should measure once and
// reuse it.
func TraceAddBS(tr *trace.Trace) float64 {
	return bus.MeasureTrace(tr, bus.Gray).AddBS()
}

// EvaluateTraceMeasured is EvaluateTrace with the trace's measured
// AddBS supplied by the caller (see TraceAddBS), so compositions that
// score one trace under many configurations — WarmTrace pipelines, the
// hierarchy sweeps — don't re-scan the trace per configuration.
func EvaluateTraceMeasured(tr *trace.Trace, addBS float64, cfg cachesim.Config, tiling int, p energy.Params, classify bool) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	var (
		st  cachesim.Stats
		err error
	)
	if classify {
		st, err = cachesim.RunTrace(cfg, tr)
	} else {
		st, err = cachesim.RunTraceFast(cfg, tr)
	}
	if err != nil {
		return Metrics{}, err
	}
	return scoreStats(cfg, tiling, p, st, addBS)
}

// Space enumerates the legal (T, L, S, B) combinations of the options in
// deterministic order.
func (o Options) Space() []ConfigPoint {
	var out []ConfigPoint
	sizes := append([]int(nil), o.CacheSizes...)
	lines := append([]int(nil), o.LineSizes...)
	assocs := append([]int(nil), o.Assocs...)
	tilings := append([]int(nil), o.Tilings...)
	sort.Ints(sizes)
	sort.Ints(lines)
	sort.Ints(assocs)
	sort.Ints(tilings)
	for _, t := range sizes {
		if o.MaxOnChip > 0 && t > o.MaxOnChip {
			continue
		}
		for _, l := range lines {
			if l >= t { // the paper requires L < T
				continue
			}
			for _, s := range assocs {
				if s > t/l {
					continue
				}
				for _, b := range tilings {
					if b > t/l {
						continue
					}
					out = append(out, ConfigPoint{CacheSize: t, LineSize: l, Assoc: s, Tiling: b})
				}
			}
		}
	}
	return out
}

// ConfigPoint is one point of the exploration space. The JSON tags are
// stable wire API, matching the identifying fields of Metrics.
type ConfigPoint struct {
	CacheSize int `json:"cache_size"`
	LineSize  int `json:"line_size"`
	Assoc     int `json:"assoc"`
	Tiling    int `json:"tiling"`
}

// Config returns the cache configuration of the point.
func (p ConfigPoint) Config() cachesim.Config {
	return cachesim.DefaultConfig(p.CacheSize, p.LineSize, p.Assoc)
}

// Explore runs the full MemExplore sweep for a kernel and returns one
// Metrics per legal configuration, in deterministic order. It is
// ExploreContext with a background context.
func Explore(n *loopir.Nest, opts Options) ([]Metrics, error) {
	return ExploreContext(context.Background(), n, opts)
}

// ExploreContext is Explore with cancellation: the context is checked
// between workload groups and every few thousand references inside a
// running batch, so a canceled or expired context stops the sweep within
// one check interval. The returned error then wraps both ErrCanceled and
// ctx.Err().
//
// Non-classified sweeps run on the workload-grouped engine (see
// batch.go): each distinct trace is generated and traversed once for all
// cache configurations that share it, and within a pass the default-
// policy configurations further collapse into inclusion groups — one
// per-set LRU stack per (line, sets) geometry yields every associativity
// at once (see internal/cachesim's inclusion engine). Classified sweeps
// (Options.Classify) keep the per-point reference path, because 3C
// classification carries per-cache shadow state that dominates the cost
// anyway; Options.Engine forces a specific engine for debugging.
func ExploreContext(ctx context.Context, n *loopir.Nest, opts Options) ([]Metrics, error) {
	if err := opts.rejectSampling(); err != nil {
		return nil, err
	}
	if opts.Classify || opts.Engine == EnginePerPoint {
		return ExplorePerPointContext(ctx, n, opts)
	}
	return exploreBatched(ctx, n, opts, 1)
}

// ExplorePerPointContext is the reference engine: one full
// trace-simulation pass per configuration point, exactly the paper's §1
// loop nest. ExploreContext routes here for classified sweeps; it also
// serves as the independent oracle the batched engine is equivalence-
// tested and benchmarked against. Results are identical to
// ExploreContext (same points, same deterministic order).
func ExplorePerPointContext(ctx context.Context, n *loopir.Nest, opts Options) ([]Metrics, error) {
	if err := opts.rejectSampling(); err != nil {
		return nil, err
	}
	e, err := NewExplorer(n, opts)
	if err != nil {
		return nil, err
	}
	points := opts.Space()
	progress := progressFrom(ctx)
	out := make([]Metrics, 0, len(points))
	for _, p := range points {
		if err := ctx.Err(); err != nil {
			return nil, canceled(err)
		}
		m, err := e.Evaluate(opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc), p.Tiling)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s/%v: %w", n.Name, p, err)
		}
		out = append(out, m)
		if progress != nil {
			progress(ProgressEvent{Points: 1, PassUnits: 1})
		}
	}
	return out, nil
}
