package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/kernels"
)

// TestBatchedMatchesPerPoint pins the tentpole invariant: the
// workload-grouped engine — mixed inclusion/batch by default, and with
// each engine forced explicitly — returns bit-identical metrics to the
// per-point reference engine for every layout/policy combination, in the
// same Space() order. Write traffic is charged into the energy model so
// a write-back accounting bug cannot hide.
func TestBatchedMatchesPerPoint(t *testing.T) {
	n := kernels.Compress()
	base := DefaultOptions()
	base.CacheSizes = []int{16, 64, 256}
	base.LineSizes = []int{4, 8}
	base.Assocs = []int{1, 2, 4}
	base.Tilings = []int{1, 4}
	base.Energy.CountWriteTraffic = true

	for _, optimized := range []bool{false, true} {
		for _, repl := range []cachesim.Replacement{cachesim.LRU, cachesim.FIFO, cachesim.Random} {
			for _, writeThrough := range []bool{false, true} {
				for _, noWriteAlloc := range []bool{false, true} {
					for _, victim := range []int{0, 2} {
						opts := base
						opts.OptimizeLayout = optimized
						opts.Replacement = repl
						opts.WriteThrough = writeThrough
						opts.NoWriteAllocate = noWriteAlloc
						opts.VictimLines = victim
						name := fmt.Sprintf("opt=%v/repl=%v/wt=%v/nwa=%v/victim=%d",
							optimized, repl, writeThrough, noWriteAlloc, victim)
						t.Run(name, func(t *testing.T) {
							ctx := context.Background()
							want, err := ExplorePerPointContext(ctx, n, opts)
							if err != nil {
								t.Fatal(err)
							}
							got, err := ExploreContext(ctx, n, opts)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got, want) {
								t.Errorf("batched metrics differ from per-point reference")
								reportFirstDiff(t, got, want)
							}
							par, err := ExploreParallelContext(ctx, n, opts, 4)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(par, want) {
								t.Errorf("parallel batched metrics differ from per-point reference")
								reportFirstDiff(t, par, want)
							}
							for _, eng := range []Engine{EnginePerPoint, EngineBatched, EngineInclusion} {
								fopts := opts
								fopts.Engine = eng
								forced, err := ExploreContext(ctx, n, fopts)
								if err != nil {
									t.Fatal(err)
								}
								if !reflect.DeepEqual(forced, want) {
									t.Errorf("forced %v engine differs from per-point reference", eng)
									reportFirstDiff(t, forced, want)
								}
							}
						})
					}
				}
			}
		}
	}
}

func reportFirstDiff(t *testing.T, got, want []Metrics) {
	t.Helper()
	if len(got) != len(want) {
		t.Logf("length %d, want %d", len(got), len(want))
		return
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Logf("first difference at point %d:\n got %+v\nwant %+v", i, got[i], want[i])
			return
		}
	}
}

// TestBatchedMatchesPerPointClassify checks the classified sweep too:
// Classify routes both entry points through the per-point engine, so the
// results must trivially agree — this pins the routing.
func TestBatchedMatchesPerPointClassify(t *testing.T) {
	n := kernels.Compress()
	opts := DefaultOptions()
	opts.CacheSizes = []int{16, 64}
	opts.LineSizes = []int{4, 8}
	opts.Assocs = []int{1, 2}
	opts.Tilings = []int{1, 4}
	opts.OptimizeLayout = false
	opts.Classify = true
	ctx := context.Background()
	want, err := ExplorePerPointContext(ctx, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreContext(ctx, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("classified sweep differs between entry points")
	}
	par, err := ExploreParallelContext(ctx, n, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, want) {
		t.Error("classified parallel sweep differs from reference")
	}
}

// TestWorkloads pins the workload count arithmetic the service metrics
// report: a sequential-layout space collapses to one workload per tiling;
// an optimized-layout space keys on (tiling, line, sets) as well.
func TestWorkloads(t *testing.T) {
	opts := DefaultOptions()
	opts.OptimizeLayout = false
	if got, want := opts.Workloads(), len(opts.Tilings); got != want {
		t.Errorf("sequential workloads = %d, want %d (one per tiling)", got, want)
	}
	opts.OptimizeLayout = true
	points := opts.Space()
	seen := map[[3]int]bool{}
	for _, p := range points {
		seen[[3]int{p.Tiling, p.LineSize, p.CacheSize / p.LineSize}] = true
	}
	if got := opts.Workloads(); got != len(seen) {
		t.Errorf("optimized workloads = %d, want %d", got, len(seen))
	}
	if got := opts.Workloads(); got >= len(points) {
		t.Errorf("grouping saved nothing: %d workloads for %d points", got, len(points))
	}
}
