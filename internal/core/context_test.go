package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"memexplore/internal/kernels"
)

// countingCtx cancels itself after Err has been consulted limit times —
// a deterministic way to stop a sweep mid-flight.
type countingCtx struct {
	context.Context
	calls atomic.Int64
	limit int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func ctxOptions() Options {
	o := DefaultOptions()
	o.CacheSizes = []int{32, 64, 128}
	o.LineSizes = []int{4, 8}
	o.Assocs = []int{1, 2}
	o.Tilings = []int{1, 2}
	return o
}

func TestExploreContextCancelMidSweep(t *testing.T) {
	opts := ctxOptions()
	full, err := Explore(kernels.Compress(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 4 {
		t.Fatalf("sweep too small to test cancellation: %d points", len(full))
	}

	ctx := &countingCtx{Context: context.Background(), limit: 3}
	ms, err := ExploreContext(ctx, kernels.Compress(), opts)
	if err == nil {
		t.Fatalf("canceled sweep returned %d points and no error", len(ms))
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	// The context was consulted at most limit+1 times before the sweep
	// stopped, i.e. well before all len(full) points were evaluated.
	if got := ctx.calls.Load(); got > int64(len(full)) {
		t.Errorf("context consulted %d times, sweep did not stop early (space has %d points)", got, len(full))
	}
}

func TestExploreContextUncanceledMatchesExplore(t *testing.T) {
	opts := ctxOptions()
	want, err := Explore(kernels.Compress(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreContext(context.Background(), kernels.Compress(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("ExploreContext(Background) diverges from Explore")
	}
}

func TestExploreParallelContextCancel(t *testing.T) {
	opts := DefaultOptions() // big enough that the parallel path engages
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExploreParallelContext(ctx, kernels.Compress(), opts, 4)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled parallel sweep: %v", err)
	}
}

func TestExploreContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := ExploreContext(ctx, kernels.Compress(), ctxOptions())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: %v", err)
	}
}

func TestAggregateContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ks := []WeightedKernel{{Nest: kernels.Compress(), Trip: 1}}
	_, _, err := AggregateContext(ctx, ks, ctxOptions())
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled aggregate: %v", err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Options)
		field string
	}{
		{"no cache sizes", func(o *Options) { o.CacheSizes = nil }, "cache_sizes"},
		{"no line sizes", func(o *Options) { o.LineSizes = nil }, "line_sizes"},
		{"no assocs", func(o *Options) { o.Assocs = nil }, "assocs"},
		{"no tilings", func(o *Options) { o.Tilings = nil }, "tilings"},
		{"bad line size", func(o *Options) { o.LineSizes = []int{3} }, "line_sizes"},
		{"bad tiling", func(o *Options) { o.Tilings = []int{0} }, "tilings"},
		{"negative victim", func(o *Options) { o.VictimLines = -1 }, "victim_lines"},
		{"bad energy", func(o *Options) { o.Energy.CellScale = -1 }, "energy"},
	}
	for _, c := range cases {
		o := DefaultOptions()
		c.mut(&o)
		err := o.Validate()
		var inv *ErrInvalidOptions
		if !errors.As(err, &inv) {
			t.Errorf("%s: error %v is not *ErrInvalidOptions", c.name, err)
			continue
		}
		if inv.Field != c.field {
			t.Errorf("%s: field = %q, want %q", c.name, inv.Field, c.field)
		}
	}
}

func TestErrUnknownKernel(t *testing.T) {
	_, err := kernels.ByName("no-such-kernel")
	if !errors.Is(err, kernels.ErrUnknownKernel) {
		t.Errorf("ByName error %v does not wrap ErrUnknownKernel", err)
	}
}

func TestNormalize(t *testing.T) {
	o := Options{
		CacheSizes: []int{128, 32, 32, 64},
		LineSizes:  []int{8, 4, 8},
		Assocs:     []int{2, 1, 2},
	}
	n := o.Normalize()
	if !reflect.DeepEqual(n.CacheSizes, []int{32, 64, 128}) {
		t.Errorf("CacheSizes = %v", n.CacheSizes)
	}
	if !reflect.DeepEqual(n.LineSizes, []int{4, 8}) {
		t.Errorf("LineSizes = %v", n.LineSizes)
	}
	if !reflect.DeepEqual(n.Assocs, []int{1, 2}) {
		t.Errorf("Assocs = %v", n.Assocs)
	}
	d := DefaultOptions()
	if !reflect.DeepEqual(n.Tilings, d.Tilings) {
		t.Errorf("empty Tilings not defaulted: %v", n.Tilings)
	}
	if n.Energy != d.Energy {
		t.Error("zero Energy not defaulted")
	}
	// Idempotent, and a normalized default equals itself.
	if !reflect.DeepEqual(n.Normalize(), n) {
		t.Error("Normalize is not idempotent")
	}
	if !reflect.DeepEqual(d.Normalize(), d) {
		t.Error("DefaultOptions is not already normal")
	}
	// Normalize must not mutate the receiver's slices.
	if o.CacheSizes[0] != 128 {
		t.Error("Normalize mutated its receiver")
	}
}

func TestOptionsJSONRoundTrip(t *testing.T) {
	d := DefaultOptions()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Options
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, d) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", back, d)
	}
	// The wire form uses the stable snake_case names.
	for _, key := range []string{`"cache_sizes"`, `"line_sizes"`, `"assocs"`, `"tilings"`, `"optimize_layout"`, `"energy"`, `"em_nj"`} {
		if !containsBytes(b, key) {
			t.Errorf("marshaled options missing %s: %s", key, b)
		}
	}
}

func TestMetricsJSONTags(t *testing.T) {
	m := Metrics{CacheSize: 64, LineSize: 8, Assoc: 2, Tiling: 4, EnergyNJ: 1.5}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"cache_size":64`, `"line_size":8`, `"assoc":2`, `"tiling":4`, `"energy_nj":1.5`, `"energy_breakdown"`} {
		if !containsBytes(b, key) {
			t.Errorf("marshaled metrics missing %s: %s", key, b)
		}
	}
	var back Metrics
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("metrics round trip: %+v != %+v", back, m)
	}
}

func containsBytes(b []byte, sub string) bool { return strings.Contains(string(b), sub) }
