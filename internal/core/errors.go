package core

import (
	"errors"
	"fmt"
)

// ErrCanceled reports that an exploration stopped early because its
// context was canceled or its deadline expired. Errors returned by the
// *Context entry points wrap both ErrCanceled and the context's own
// cause, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) keep working.
var ErrCanceled = errors.New("core: exploration canceled")

// canceled wraps a context error with ErrCanceled.
func canceled(cause error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// isCanceled reports whether err stems from context cancellation.
func isCanceled(err error) bool { return errors.Is(err, ErrCanceled) }

// ErrEmptyTrace reports that an external trace stream ended without a
// single accepted record: there is nothing to sweep.
var ErrEmptyTrace = errors.New("core: trace contains no records")

// ErrInvalidOptions reports a structurally invalid Options value. Field
// names the offending wire field (the JSON tag, e.g. "line_sizes");
// Reason says what is wrong with it. Retrieve it with errors.As:
//
//	var inv *core.ErrInvalidOptions
//	if errors.As(err, &inv) { ... inv.Field ... }
type ErrInvalidOptions struct {
	Field  string
	Reason string
}

func (e *ErrInvalidOptions) Error() string {
	return fmt.Sprintf("core: invalid options: %s: %s", e.Field, e.Reason)
}

// invalidOptions builds an *ErrInvalidOptions with a formatted reason.
func invalidOptions(field, format string, args ...any) error {
	return &ErrInvalidOptions{Field: field, Reason: fmt.Sprintf(format, args...)}
}
