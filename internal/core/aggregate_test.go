package core

import (
	"math"
	"testing"

	"memexplore/internal/kernels"
)

func mpegWeighted() []WeightedKernel {
	var ws []WeightedKernel
	for _, k := range kernels.MPEGKernels() {
		ws = append(ws, WeightedKernel{Nest: k.Nest, Trip: k.Trip})
	}
	return ws
}

func tinyOptions() Options {
	o := DefaultOptions()
	o.CacheSizes = []int{32, 64, 128}
	o.LineSizes = []int{4, 8}
	o.Assocs = []int{1, 2}
	o.Tilings = []int{1, 2}
	return o
}

func TestAggregateErrors(t *testing.T) {
	if _, _, err := Aggregate(nil, tinyOptions()); err == nil {
		t.Error("empty kernel list should fail")
	}
	bad := []WeightedKernel{{Nest: kernels.Compress(), Trip: 0}}
	if _, _, err := Aggregate(bad, tinyOptions()); err == nil {
		t.Error("zero trip should fail")
	}
}

func TestAggregateFormulas(t *testing.T) {
	ws := []WeightedKernel{
		{Nest: kernels.Dequant(), Trip: 3},
		{Nest: kernels.MatAdd(), Trip: 7},
	}
	o := tinyOptions()
	program, perKernel, err := Aggregate(ws, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(program) != len(o.Space()) {
		t.Fatalf("program rows %d, space %d", len(program), len(o.Space()))
	}
	dq := perKernel["dequant"]
	ma := perKernel["matadd"]
	for i, agg := range program {
		wantCycles := dq[i].Cycles*3 + ma[i].Cycles*7
		if math.Abs(agg.Cycles-wantCycles) > 1e-6 {
			t.Fatalf("row %d cycles %v, want %v", i, agg.Cycles, wantCycles)
		}
		wantEnergy := dq[i].EnergyNJ*3 + ma[i].EnergyNJ*7
		if math.Abs(agg.EnergyNJ-wantEnergy) > 1e-6 {
			t.Fatalf("row %d energy %v, want %v", i, agg.EnergyNJ, wantEnergy)
		}
		wantMR := (dq[i].MissRate*3 + ma[i].MissRate*7) / 10
		if math.Abs(agg.MissRate-wantMR) > 1e-12 {
			t.Fatalf("row %d missrate %v, want %v", i, agg.MissRate, wantMR)
		}
	}
}

// The §5 headline: the whole-program minimum-energy configuration differs
// from the minimum-cycles configuration, and from at least one kernel's
// individual optimum.
func TestMPEGAggregateHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full MPEG sweep in -short mode")
	}
	o := DefaultOptions()
	o.CacheSizes = []int{16, 32, 64, 128, 256, 512}
	o.Tilings = []int{1, 2, 4, 8, 16}
	program, perKernel, err := Aggregate(mpegWeighted(), o)
	if err != nil {
		t.Fatal(err)
	}
	minE, ok := MinEnergy(program)
	if !ok {
		t.Fatal("no aggregate metrics")
	}
	minC, ok := MinCycles(program)
	if !ok {
		t.Fatal("no aggregate metrics")
	}
	if minE.Label() == minC.Label() {
		t.Errorf("min-energy (%s) and min-cycles (%s) configurations coincide — the §5 tradeoff vanished",
			minE.Label(), minC.Label())
	}
	differs := false
	for name, ms := range perKernel {
		kMinE, ok := MinEnergy(ms)
		if !ok {
			t.Fatalf("no metrics for %s", name)
		}
		if kMinE.Label() != minE.Label() {
			differs = true
		}
	}
	if !differs {
		t.Error("every kernel's optimum equals the program optimum — heterogeneity lost")
	}
	// Energy at the cycle optimum must exceed the energy optimum (strictly,
	// or the tradeoff is degenerate).
	if minC.EnergyNJ <= minE.EnergyNJ {
		t.Errorf("cycle-optimal config has energy %v ≤ energy-optimal %v", minC.EnergyNJ, minE.EnergyNJ)
	}
}
