package core

import (
	"context"
	"fmt"

	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

// WeightedKernel pairs a kernel with its invocation count in the composite
// program — the trip(k) of the paper's §5 formulas.
type WeightedKernel struct {
	Nest *loopir.Nest
	Trip int64
}

// Aggregate implements the §5 whole-program evaluation: every kernel is
// explored over the same configuration space, and for each configuration
// the program-level metrics are
//
//	MISS_R = Σ mr(k)·trip(k) / Σ trip(k)
//	CYCLES = Σ C(k)·trip(k)
//	ENERGY = Σ E(k)·trip(k)
//
// Each kernel invocation is simulated cold (the paper evaluates kernels
// independently and composes by trip count; inter-kernel cache reuse is
// outside its model). The per-kernel sweeps are returned alongside the
// aggregate so callers can reproduce Figure 10's per-kernel optima.
// It is AggregateContext with a background context.
func Aggregate(kernels []WeightedKernel, opts Options) (program []Metrics, perKernel map[string][]Metrics, err error) {
	return AggregateContext(context.Background(), kernels, opts)
}

// AggregateContext is Aggregate with cancellation: each per-kernel sweep
// runs under the context (checked between config points), so a canceled
// or expired context stops the aggregation early. The returned error
// then wraps both ErrCanceled and ctx.Err().
func AggregateContext(ctx context.Context, kernels []WeightedKernel, opts Options) (program []Metrics, perKernel map[string][]Metrics, err error) {
	if len(kernels) == 0 {
		return nil, nil, fmt.Errorf("core: Aggregate needs at least one kernel")
	}
	var totalTrip int64
	for _, k := range kernels {
		if k.Trip <= 0 {
			return nil, nil, fmt.Errorf("core: kernel %q has non-positive trip %d", k.Nest.Name, k.Trip)
		}
		totalTrip += k.Trip
	}

	perKernel = make(map[string][]Metrics, len(kernels))
	for _, k := range kernels {
		ms, err := ExploreContext(ctx, k.Nest, opts)
		if err != nil {
			if isCanceled(err) {
				return nil, nil, err
			}
			return nil, nil, fmt.Errorf("core: exploring %q: %w", k.Nest.Name, err)
		}
		perKernel[k.Nest.Name] = ms
	}

	// All kernels share the options, hence the same configuration space.
	first := perKernel[kernels[0].Nest.Name]
	program = make([]Metrics, len(first))
	for i := range first {
		agg := Metrics{
			CacheSize: first[i].CacheSize,
			LineSize:  first[i].LineSize,
			Assoc:     first[i].Assoc,
			Tiling:    first[i].Tiling,
			Optimized: first[i].Optimized,
		}
		var missAcc float64
		for _, k := range kernels {
			m := perKernel[k.Nest.Name][i]
			if m.CacheSize != agg.CacheSize || m.LineSize != agg.LineSize ||
				m.Assoc != agg.Assoc || m.Tiling != agg.Tiling {
				return nil, nil, fmt.Errorf("core: configuration spaces diverged between kernels at index %d", i)
			}
			w := float64(k.Trip)
			missAcc += m.MissRate * w
			agg.Cycles += m.Cycles * w
			agg.EnergyNJ += m.EnergyNJ * w
			agg.Energy.add(m.Energy, w)
			agg.Accesses += m.Accesses * uint64(k.Trip)
			agg.Hits += m.Hits * uint64(k.Trip)
			agg.Misses += m.Misses * uint64(k.Trip)
			agg.ConflictMisses += m.ConflictMisses * uint64(k.Trip)
		}
		agg.MissRate = missAcc / float64(totalTrip)
		program[i] = agg
	}
	return program, perKernel, nil
}

// WarmTrace builds one composite reference trace that executes the
// kernels back to back — trip counts divided by scale (minimum 1
// invocation each) — with every kernel's arrays placed in a disjoint
// region of the address space. It models what Aggregate's independent-
// kernel assumption ignores: a shared cache stays warm across kernel
// boundaries and kernels evict each other's data. The paper evaluates
// kernels cold and composes linearly (§5); comparing both is the
// "ext-warm" ablation.
func WarmTrace(kernels []WeightedKernel, scale int64) (*trace.Trace, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("core: WarmTrace needs at least one kernel")
	}
	if scale < 1 {
		scale = 1
	}
	// Pre-generate each kernel's trace at its region base.
	var parts []*trace.Trace
	var reps []int64
	base := uint64(0)
	for _, k := range kernels {
		if k.Trip <= 0 {
			return nil, fmt.Errorf("core: kernel %q has non-positive trip %d", k.Nest.Name, k.Trip)
		}
		lay := loopir.SequentialLayout(k.Nest, base)
		tr, err := k.Nest.Generate(lay)
		if err != nil {
			return nil, fmt.Errorf("core: generating %q: %w", k.Nest.Name, err)
		}
		parts = append(parts, tr)
		rep := k.Trip / scale
		if rep < 1 {
			rep = 1
		}
		reps = append(reps, rep)
		for _, a := range k.Nest.Arrays {
			base += uint64(a.SizeBytes())
		}
		// Round each kernel's region up to a 64-byte boundary so regions
		// never share a cache line.
		base = (base + 63) &^ 63
	}
	// Interleave invocation-by-invocation, round-robin, until all
	// repetitions are spent — a crude but order-realistic pipeline.
	total := 0
	for i, tr := range parts {
		total += tr.Len() * int(reps[i])
	}
	out := trace.New(total)
	remaining := append([]int64(nil), reps...)
	for {
		done := true
		for i, tr := range parts {
			if remaining[i] <= 0 {
				continue
			}
			done = false
			remaining[i]--
			for j := 0; j < tr.Len(); j++ {
				out.Append(tr.At(j))
			}
		}
		if done {
			return out, nil
		}
	}
}
